package durable

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func testState() [][]uint64 {
	return [][]uint64{
		{1, 2, 3, 0xdeadbeefcafe},
		{},
		{42},
		{0, ^uint64(0)},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	state := testState()
	var buf bytes.Buffer
	n, err := Encode(&buf, Meta{Round: 7, Fingerprint: "fp"}, state)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("Encode reported %d bytes, wrote %d", n, buf.Len())
	}
	meta, got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if meta.Schema != Schema || meta.Round != 7 || meta.Machines != len(state) || meta.Fingerprint != "fp" {
		t.Fatalf("meta = %+v", meta)
	}
	if meta.StateWords != 7 {
		t.Fatalf("StateWords = %d, want 7", meta.StateWords)
	}
	if len(got) != len(state) {
		t.Fatalf("machines = %d, want %d", len(got), len(state))
	}
	for m := range state {
		if len(got[m]) != len(state[m]) {
			t.Fatalf("machine %d: %d words, want %d", m, len(got[m]), len(state[m]))
		}
		for i := range state[m] {
			if got[m][i] != state[m][i] {
				t.Fatalf("machine %d word %d: %#x != %#x", m, i, got[m][i], state[m][i])
			}
		}
	}
}

func TestEncodeByteDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	meta := Meta{Round: 3, Fingerprint: "fp"}
	if _, err := Encode(&a, meta, testState()); err != nil {
		t.Fatal(err)
	}
	if _, err := Encode(&b, meta, testState()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two encodes of the same checkpoint differ")
	}
}

func TestDecodeDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Encode(&buf, Meta{Round: 1}, testState()); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Flip one bit at every offset class: magic, meta record, state records.
	for _, off := range []int{0, len(magic) + 9, len(good) - 3} {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x40
		if _, _, err := Decode(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("bit flip at %d: err = %v, want ErrCorrupt", off, err)
		}
	}
	// Truncation at every prefix length must be ErrCorrupt, never a success
	// or a panic — this is the torn-write case.
	for cut := 0; cut < len(good); cut += 7 {
		if _, _, err := Decode(bytes.NewReader(good[:cut])); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated to %d bytes: err = %v, want ErrCorrupt", cut, err)
		}
	}
	// Trailing garbage after a valid checkpoint is also corruption.
	if _, _, err := Decode(bytes.NewReader(append(append([]byte(nil), good...), 0))); !errors.Is(err, ErrCorrupt) {
		t.Fatal("trailing byte not detected")
	}
}

func TestStorePersistLoad(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "fp", 0)
	if err != nil {
		t.Fatal(err)
	}
	state := testState()
	n, err := s.Persist(4, state)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 || s.BytesWritten() != n {
		t.Fatalf("bytes: persist=%d total=%d", n, s.BytesWritten())
	}
	meta, got, err := s.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if meta.Round != 4 || len(got) != len(state) || got[0][3] != state[0][3] {
		t.Fatalf("loaded meta=%+v", meta)
	}

	// A second store on the same dir (a restarted process) resumes cleanly.
	s2, err := Open(dir, "fp", 0)
	if err != nil {
		t.Fatal(err)
	}
	meta, _, err = s2.LoadLatest()
	if err != nil || meta.Round != 4 {
		t.Fatalf("reopened load: meta=%+v err=%v", meta, err)
	}
}

func TestStoreRetentionGC(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "fp", 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{1, 5, 9, 13} {
		if _, err := s.Persist(r, testState()); err != nil {
			t.Fatalf("persist %d: %v", r, err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var ckpts []string
	for _, e := range entries {
		if _, ok := roundOf(e.Name()); ok {
			ckpts = append(ckpts, e.Name())
		}
	}
	if len(ckpts) != 2 {
		t.Fatalf("retained %v, want exactly 2 files", ckpts)
	}
	meta, _, err := s.LoadLatest()
	if err != nil || meta.Round != 13 {
		t.Fatalf("latest after gc: meta=%+v err=%v", meta, err)
	}
	man, err := s.readManifest()
	if err != nil {
		t.Fatal(err)
	}
	if man.Schema != ManifestSchema || len(man.Checkpoints) != 2 ||
		man.Checkpoints[0].Round != 9 || man.Checkpoints[1].Round != 13 {
		t.Fatalf("manifest = %+v", man)
	}
}

func TestLoadLatestFallsBackPastCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "fp", 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Persist(2, testState()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Persist(6, testState()); err != nil {
		t.Fatal(err)
	}
	// Tear the newest checkpoint (simulating death mid-write after rename —
	// or bit rot); load must fall back to round 2.
	newest := filepath.Join(dir, fileFor(6))
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	meta, _, err := s.LoadLatest()
	if err != nil {
		t.Fatalf("fallback load: %v", err)
	}
	if meta.Round != 2 {
		t.Fatalf("fell back to round %d, want 2", meta.Round)
	}
	// Corrupting every checkpoint leaves ErrNoCheckpoint.
	older := filepath.Join(dir, fileFor(2))
	if err := os.WriteFile(older, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.LoadLatest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("all-corrupt load: err = %v, want ErrNoCheckpoint", err)
	}
}

func TestFingerprintMismatchIsHard(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, "fp-a", 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Persist(3, testState()); err != nil {
		t.Fatal(err)
	}
	// Open with a different fingerprint: rejected by the manifest guard.
	if _, err := Open(dir, "fp-b", 3); !errors.Is(err, ErrFingerprint) {
		t.Fatalf("Open with wrong fingerprint: err = %v, want ErrFingerprint", err)
	}
	// Bypass the manifest guard (delete it): LoadLatest must still refuse the
	// intact-but-foreign checkpoint, not skip it like corruption.
	if err := os.Remove(filepath.Join(dir, ManifestName)); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, "fp-b", 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s2.LoadLatest(); !errors.Is(err, ErrFingerprint) {
		t.Fatalf("LoadLatest with wrong fingerprint: err = %v, want ErrFingerprint", err)
	}
}

func TestLoadLatestEmptyDir(t *testing.T) {
	s, err := Open(t.TempDir(), "fp", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.LoadLatest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty dir: err = %v, want ErrNoCheckpoint", err)
	}
}

func TestRoundOf(t *testing.T) {
	if r, ok := roundOf(fileFor(123)); !ok || r != 123 {
		t.Fatalf("roundOf(fileFor(123)) = %d, %v", r, ok)
	}
	for _, bad := range []string{"MANIFEST.json", "ckpt-12.ckpt.tmp", "ckpt-x.ckpt", "ckpt-.ckpt", "other"} {
		if _, ok := roundOf(bad); ok {
			t.Fatalf("roundOf(%q) accepted", bad)
		}
	}
}
