package experiments

import (
	"fmt"

	"github.com/rulingset/mprs/internal/graph"
	"github.com/rulingset/mprs/internal/metrics"
	"github.com/rulingset/mprs/internal/rulingset"
)

// O1CommunicationSkew measures per-phase communication skew through the trace
// spans (EXPERIMENTS.md O1). Every superstep is annotated with its algorithm
// phase (sparsify / seed-search / gather / finish), and the simulators
// aggregate words, per-machine maxima and Gini imbalance per span. Predicted
// shape, in three parts:
//
//  1. Concentration: the sample-and-sparsify phases carry the bulk of the
//     total communication — the phase the theory bounds is the phase the
//     meter shows dominating.
//
//  2. Gather skew: the residual gather routes the whole surviving instance
//     to one machine, so its receive-side Gini sits at the M-machine
//     concentration ceiling (M−1)/M.
//
//  3. Budget: for the paper's 2-ruling-set algorithms, per-machine per-round
//     receive maxima stay within the regime budget S = 4n in every span —
//     zero violations, the same bound the model charges. (The Luby baseline
//     is metered alongside but genuinely brushes past S on its dense view
//     exchange — visible in the table, and part of why the relaxation wins.)
func O1CommunicationSkew(cfg Config) (Report, error) {
	n := 8192
	if cfg.Quick {
		n = 1024
	}
	g := mustGNP(n, 16, cfg.Seed)
	budget := 4 * n

	algos := []struct {
		name string
		run  func(*graph.Graph, rulingset.Options) (rulingset.Result, error)
	}{
		{name: "LubyMIS", run: rulingset.LubyMIS},
		{name: "DetLubyMIS", run: rulingset.DetLubyMIS},
		{name: "RandRuling2", run: rulingset.RandRuling2},
		{name: "DetRuling2", run: rulingset.DetRuling2},
	}
	table := metrics.NewTable(
		fmt.Sprintf("O1: per-span communication skew — MPC, G(n=%d, 16/n), 8 machines, S=4n=%d", n, budget),
		"algorithm", "span", "rounds", "words", "share", "max sent", "max recv", "gini sent", "gini recv")

	const machines = 8
	giniCeiling := float64(machines-1) / float64(machines)
	gatherAtCeiling := true
	withinBudget := true
	concentrated := true
	for _, a := range algos {
		res, err := a.run(g, rulingset.Options{Seed: cfg.Seed, ChunkBits: 4})
		if err != nil {
			return Report{}, err
		}
		isRulingSet := a.name == "RandRuling2" || a.name == "DetRuling2"
		if isRulingSet && len(res.Stats.Violations) > 0 {
			withinBudget = false
		}
		var commWords, totalWords int64 // sparsify+seed-search vs everything
		gatherGini := giniCeiling
		for _, sp := range res.Stats.Spans {
			totalWords += sp.Words
			switch sp.Span {
			case "sparsify", "seed-search":
				commWords += sp.Words
			case "gather":
				gatherGini = sp.GiniRecv
			}
			if isRulingSet && sp.MaxRecv > budget {
				withinBudget = false
			}
			share := 0.0
			if res.Stats.Words > 0 {
				share = float64(sp.Words) / float64(res.Stats.Words)
			}
			table.AddRow(a.name, sp.Span, sp.Rounds, sp.Words, share,
				sp.MaxSent, sp.MaxRecv, sp.GiniSent, sp.GiniRecv)
		}
		if totalWords > 0 && float64(commWords)/float64(totalWords) < 0.5 {
			concentrated = false
		}
		// Only the ruling-set algorithms have a gather span (Luby solves in
		// place); the whole residual lands on machine 0, so the receive Gini
		// must sit at the (M−1)/M single-receiver ceiling.
		if gatherGini < giniCeiling-1e-9 {
			gatherAtCeiling = false
		}
	}

	// The congested-clique implementations share the span schema: one node
	// per vertex, so the gather-side skew is even starker.
	cliqueTable := metrics.NewTable(
		fmt.Sprintf("O1: per-span communication skew — congested clique, G(n=%d, 16/n)", n),
		"algorithm", "span", "rounds", "words", "max sent", "max recv", "gini sent", "gini recv")
	cliqueAlgos := []struct {
		name string
		run  func(*graph.Graph, rulingset.Options) (rulingset.CliqueResult, error)
	}{
		{name: "CliqueRandRuling2", run: rulingset.CliqueRandRuling2},
		{name: "CliqueDetRuling2", run: rulingset.CliqueDetRuling2},
	}
	cliqueGatherSkewed := true
	for _, a := range cliqueAlgos {
		res, err := a.run(g, rulingset.Options{Seed: cfg.Seed, ChunkBits: 4})
		if err != nil {
			return Report{}, err
		}
		var gatherGini float64
		for _, sp := range res.Stats.Spans {
			if sp.Span == "gather" {
				gatherGini = sp.GiniRecv
			}
			cliqueTable.AddRow(a.name, sp.Span, sp.Rounds, sp.Words,
				sp.MaxSent, sp.MaxRecv, sp.GiniSent, sp.GiniRecv)
		}
		if gatherGini < 0.9 {
			cliqueGatherSkewed = false
		}
	}

	return Report{
		ID:     "O1",
		Title:  "per-phase communication skew",
		Tables: []*metrics.Table{table, cliqueTable},
		Notes: []string{
			fmt.Sprintf("shape: sparsify+seed-search phases carry >= 50%% of each algorithm's words: %v", concentrated),
			fmt.Sprintf("shape: gather receive Gini at the single-receiver ceiling (M-1)/M = %.3f: %v", giniCeiling, gatherAtCeiling),
			fmt.Sprintf("shape: 2-ruling-set receive maxima within budget S in every span, zero violations: %v", withinBudget),
			fmt.Sprintf("shape: clique gather Gini >= 0.9 (whole residual routed to node 0 of n): %v", cliqueGatherSkewed),
		},
	}, nil
}
