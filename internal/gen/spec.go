package gen

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"github.com/rulingset/mprs/internal/graph"
)

// Spec is a parsed textual workload description of the form
//
//	family:key=value,key=value,...
//
// e.g. "gnp:n=4096,p=0.004" or "grid:rows=64,cols=64,wrap=true". It is the
// single workload vocabulary shared by the CLI, the experiment harness and
// the benchmarks.
type Spec struct {
	Family string
	Params map[string]string
}

// ParseSpec parses the textual form of a Spec. It validates syntax only;
// family/parameter validation happens in Build.
func ParseSpec(s string) (Spec, error) {
	family, rest, _ := strings.Cut(s, ":")
	family = strings.TrimSpace(family)
	if family == "" {
		return Spec{}, fmt.Errorf("gen: empty family in spec %q", s)
	}
	spec := Spec{Family: family, Params: make(map[string]string)}
	if strings.TrimSpace(rest) == "" {
		return spec, nil
	}
	for _, kv := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return Spec{}, fmt.Errorf("gen: malformed parameter %q in spec %q", kv, s)
		}
		spec.Params[strings.TrimSpace(k)] = strings.TrimSpace(v)
	}
	return spec, nil
}

// String renders the spec back to its textual form with parameters in
// insertion-independent (sorted) order.
func (s Spec) String() string {
	if len(s.Params) == 0 {
		return s.Family
	}
	keys := make([]string, 0, len(s.Params))
	for k := range s.Params {
		keys = append(keys, k)
	}
	// Small n; insertion order is irrelevant, keep deterministic.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+s.Params[k])
	}
	return s.Family + ":" + strings.Join(parts, ",")
}

func (s Spec) intParam(key string, def int) (int, error) {
	v, ok := s.Params[key]
	if !ok {
		return def, nil
	}
	i, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("gen: parameter %s=%q: %w", key, v, err)
	}
	return i, nil
}

func (s Spec) floatParam(key string, def float64) (float64, error) {
	v, ok := s.Params[key]
	if !ok {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("gen: parameter %s=%q: %w", key, v, err)
	}
	return f, nil
}

func (s Spec) boolParam(key string, def bool) (bool, error) {
	v, ok := s.Params[key]
	if !ok {
		return def, nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, fmt.Errorf("gen: parameter %s=%q: %w", key, v, err)
	}
	return b, nil
}

// Build instantiates the workload described by the spec. Randomized families
// consume the given seed; deterministic families ignore it.
func (s Spec) Build(seed int64) (*graph.Graph, error) {
	rng := rand.New(rand.NewSource(seed))
	n, err := s.intParam("n", 1024)
	if err != nil {
		return nil, err
	}
	switch s.Family {
	case "gnp":
		p, err := s.floatParam("p", 0.01)
		if err != nil {
			return nil, err
		}
		return GNP(n, p, rng)
	case "regular":
		d, err := s.intParam("d", 8)
		if err != nil {
			return nil, err
		}
		return RandomRegular(n, d, rng)
	case "powerlaw":
		gamma, err := s.floatParam("gamma", 2.5)
		if err != nil {
			return nil, err
		}
		avg, err := s.floatParam("avg", 8)
		if err != nil {
			return nil, err
		}
		return ChungLu(n, gamma, avg, rng)
	case "geometric":
		r, err := s.floatParam("r", 0.05)
		if err != nil {
			return nil, err
		}
		return Geometric(n, r, rng)
	case "grid":
		rows, err := s.intParam("rows", 32)
		if err != nil {
			return nil, err
		}
		cols, err := s.intParam("cols", 32)
		if err != nil {
			return nil, err
		}
		wrap, err := s.boolParam("wrap", false)
		if err != nil {
			return nil, err
		}
		return Grid(rows, cols, wrap)
	case "path":
		return Path(n)
	case "cycle":
		return Cycle(n)
	case "star":
		return Star(n)
	case "complete":
		return Complete(n)
	case "bipartite":
		a, err := s.intParam("a", 32)
		if err != nil {
			return nil, err
		}
		b, err := s.intParam("b", 32)
		if err != nil {
			return nil, err
		}
		return CompleteBipartite(a, b)
	case "tree":
		return RandomTree(n, rng)
	case "prufer":
		return PruferTree(n, rng)
	case "caterpillar":
		spine, err := s.intParam("spine", 64)
		if err != nil {
			return nil, err
		}
		legs, err := s.intParam("legs", 4)
		if err != nil {
			return nil, err
		}
		return Caterpillar(spine, legs)
	case "barbell":
		k, err := s.intParam("k", 32)
		if err != nil {
			return nil, err
		}
		path, err := s.intParam("path", 8)
		if err != nil {
			return nil, err
		}
		return Barbell(k, path)
	case "rmat":
		scale, err := s.intParam("scale", 10)
		if err != nil {
			return nil, err
		}
		ef, err := s.intParam("ef", 8)
		if err != nil {
			return nil, err
		}
		return RMAT(scale, ef, rng)
	case "hypercube":
		d, err := s.intParam("d", 10)
		if err != nil {
			return nil, err
		}
		return Hypercube(d)
	default:
		return nil, fmt.Errorf("gen: unknown workload family %q", s.Family)
	}
}

// MustBuild is Build but panics on error; for tests and benchmarks whose
// specs are literals.
func MustBuild(spec string, seed int64) *graph.Graph {
	s, err := ParseSpec(spec)
	if err != nil {
		panic(err)
	}
	g, err := s.Build(seed)
	if err != nil {
		panic(err)
	}
	return g
}
