package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Binary format: magic "MPRSG1\n", then n (uint64), then len(adj) (uint64),
// then offsets as uint32 deltas... kept deliberately simple: offsets and adj
// written verbatim as little-endian int32.
var _binaryMagic = []byte("MPRSG1\n")

// Format limits for untrusted inputs: parsers reject headers claiming more
// than these, so a tiny corrupt file cannot demand a giant allocation.
const (
	_maxVertices = 1 << 24
	_maxAdjWords = 1 << 26
)

// WriteBinary serializes the graph in the library's compact binary format.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(_binaryMagic); err != nil {
		return fmt.Errorf("graph: write magic: %w", err)
	}
	header := []uint64{uint64(g.N()), uint64(len(g.adj))}
	for _, h := range header {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return fmt.Errorf("graph: write header: %w", err)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.offsets); err != nil {
		return fmt.Errorf("graph: write offsets: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, g.adj); err != nil {
		return fmt.Errorf("graph: write adjacency: %w", err)
	}
	return bw.Flush()
}

// ReadBinary reads a graph previously written by WriteBinary and validates
// its structural invariants.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(_binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: read magic: %w", err)
	}
	if string(magic) != string(_binaryMagic) {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	var n, adjLen uint64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("graph: read n: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, &adjLen); err != nil {
		return nil, fmt.Errorf("graph: read m: %w", err)
	}
	if n > _maxVertices || adjLen > _maxAdjWords {
		return nil, fmt.Errorf("graph: header sizes out of range (n=%d, adj=%d)", n, adjLen)
	}
	g := &Graph{
		offsets: make([]int32, n+1),
		adj:     make([]int32, adjLen),
	}
	if err := binary.Read(br, binary.LittleEndian, &g.offsets); err != nil {
		return nil, fmt.Errorf("graph: read offsets: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, &g.adj); err != nil {
		return nil, fmt.Errorf("graph: read adjacency: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// WriteEdgeList writes the graph in a plain-text edge-list format: a header
// line "n m" followed by one "u v" line per edge with u < v. Lines beginning
// with '#' are comments on read.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.N(), g.M()); err != nil {
		return fmt.Errorf("graph: write header: %w", err)
	}
	var werr error
	g.ForEachEdge(func(u, v int32) {
		if werr != nil {
			return
		}
		_, werr = fmt.Fprintf(bw, "%d %d\n", u, v)
	})
	if werr != nil {
		return fmt.Errorf("graph: write edge: %w", werr)
	}
	return bw.Flush()
}

// ReadEdgeList parses the text edge-list format written by WriteEdgeList.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var (
		n, m      int
		haveHead  bool
		edges     []Edge
		lineCount int
	)
	for sc.Scan() {
		lineCount++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: line %d: want 2 fields, got %d", lineCount, len(fields))
		}
		a, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineCount, err)
		}
		b, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineCount, err)
		}
		if !haveHead {
			if a < 0 || b < 0 || a > _maxVertices || b > _maxAdjWords {
				return nil, fmt.Errorf("graph: line %d: header values out of range (%d %d)", lineCount, a, b)
			}
			n, m = a, b
			haveHead = true
			edges = make([]Edge, 0, min(m, 1<<20)) // capacity hint, distrusting the header
			continue
		}
		if a < 0 || b < 0 || a >= n || b >= n {
			return nil, fmt.Errorf("graph: line %d: endpoint out of range for n=%d", lineCount, n)
		}
		edges = append(edges, Edge{U: int32(a), V: int32(b)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: scan: %w", err)
	}
	if !haveHead {
		return nil, fmt.Errorf("graph: missing header line")
	}
	g, err := New(n, edges)
	if err != nil {
		return nil, err
	}
	if g.M() != m {
		return nil, fmt.Errorf("graph: header claims %d edges, parsed %d", m, g.M())
	}
	return g, nil
}
