package trace

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
)

func TestJSONLDeterministicAndShape(t *testing.T) {
	evs := []Event{
		{Round: 1, Step: "a", Span: "setup", Sent: []int{3, 0}, Recv: []int{0, 3}, Messages: 1, Words: 3, MaxSent: 3, MaxRecv: 3, GiniSent: 0.5, GiniRecv: 0.5},
		{Round: 2, Step: "b", Span: "sparsify", Charged: true},
		{Round: 3, Step: "c", Span: "finish", Crashes: 1, RecoveryRounds: 2, ReplayedWords: 7, Dropped: 1, Duplicated: 2, Stalls: 3},
	}
	render := func() string {
		var b bytes.Buffer
		tr := NewJSONL(&b)
		for _, ev := range evs {
			tr.Superstep(ev)
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	first := render()
	if second := render(); second != first {
		t.Fatalf("identical event streams encoded differently:\n%s\nvs\n%s", first, second)
	}
	lines := strings.Split(strings.TrimSuffix(first, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), first)
	}
	if want := `{"round":1,"step":"a","span":"setup","sent":[3,0],"recv":[0,3],"messages":1,"words":3,"max_sent":3,"max_recv":3,"gini_sent":0.5,"gini_recv":0.5}`; lines[0] != want {
		t.Errorf("line 1 = %s\nwant     %s", lines[0], want)
	}
	// omitempty: charged rounds carry no zero-valued traffic fields, and
	// fault counters appear only when non-zero.
	if strings.Contains(lines[1], "crashes") || strings.Contains(lines[1], `"sent"`) {
		t.Errorf("charged event carries empty fields: %s", lines[1])
	}
	for _, want := range []string{`"crashes":1`, `"recovery_rounds":2`, `"replayed_words":7`, `"dropped":1`, `"duplicated":2`, `"stalls":3`} {
		if !strings.Contains(lines[2], want) {
			t.Errorf("line 3 missing %s: %s", lines[2], want)
		}
	}
}

type failWriter struct{ failAfter int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.failAfter <= 0 {
		return 0, errors.New("disk full")
	}
	w.failAfter--
	return len(p), nil
}

func TestJSONLStickyError(t *testing.T) {
	tr := NewJSONL(&failWriter{failAfter: 0})
	for i := 0; i < 4100; i++ { // enough to overflow the bufio buffer
		tr.Superstep(Event{Round: i})
	}
	if err := tr.Close(); err == nil {
		t.Fatal("write error not surfaced")
	}
	if tr.Err() == nil {
		t.Fatal("Err() lost the sticky error")
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(3)
	if got := r.Events(); len(got) != 0 {
		t.Fatalf("fresh ring has %d events", len(got))
	}
	for i := 1; i <= 5; i++ {
		r.Superstep(Event{Round: i})
	}
	if r.Total() != 5 {
		t.Fatalf("total %d, want 5", r.Total())
	}
	got := r.Events()
	if len(got) != 3 {
		t.Fatalf("retained %d, want 3", len(got))
	}
	for i, want := range []int{3, 4, 5} {
		if got[i].Round != want {
			t.Fatalf("events %v, want rounds [3 4 5]", got)
		}
	}
}

func TestRingMinimumCapacity(t *testing.T) {
	r := NewRing(0)
	r.Superstep(Event{Round: 1})
	r.Superstep(Event{Round: 2})
	got := r.Events()
	if len(got) != 1 || got[0].Round != 2 {
		t.Fatalf("events %v, want just round 2", got)
	}
}

func TestMulti(t *testing.T) {
	a, b := NewRing(4), NewRing(4)
	m := Multi{a, nil, b}
	m.Superstep(Event{Round: 1})
	if a.Total() != 1 || b.Total() != 1 {
		t.Fatalf("fan-out missed a sink: %d, %d", a.Total(), b.Total())
	}
}

func TestGini(t *testing.T) {
	tests := []struct {
		name string
		xs   []int
		want float64
	}{
		{name: "empty", xs: nil, want: 0},
		{name: "all zero", xs: []int{0, 0, 0}, want: 0},
		{name: "balanced", xs: []int{5, 5, 5, 5}, want: 0},
		{name: "one carries all of two", xs: []int{0, 10}, want: 0.5},
		{name: "one carries all of four", xs: []int{0, 0, 0, 8}, want: 0.75},
		{name: "unsorted input", xs: []int{8, 0, 0, 0}, want: 0.75},
	}
	for _, tt := range tests {
		if got := Gini(append([]int(nil), tt.xs...)); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("%s: Gini = %v, want %v", tt.name, got, tt.want)
		}
	}
	// n nodes, one carrying everything: G = (n-1)/n → 1.
	big := make([]int, 100)
	big[7] = 1000
	if got, want := Gini(big), 0.99; math.Abs(got-want) > 1e-12 {
		t.Errorf("concentrated: Gini = %v, want %v", got, want)
	}
}

// TestGiniExactEdgeCases pins the degenerate inputs the skew aggregation
// feeds Gini in real runs — single-machine clusters, rounds with no traffic,
// and perfectly concentrated (one-hot) rounds — and requires the closed-form
// answers exactly (==, no tolerance): 0 for the first two, (m−1)/m for a
// one-hot round over m machines. These are the boundary values the span
// aggregation's max-folding relies on.
func TestGiniExactEdgeCases(t *testing.T) {
	oneHot := func(m, hot, words int) []int {
		xs := make([]int, m)
		xs[hot] = words
		return xs
	}
	tests := []struct {
		name string
		xs   []int
		want float64
	}{
		{name: "single machine with traffic", xs: []int{42}, want: 0},
		{name: "single machine no traffic", xs: []int{0}, want: 0},
		{name: "all-zero round m=5", xs: []int{0, 0, 0, 0, 0}, want: 0},
		{name: "one-hot m=2", xs: oneHot(2, 1, 9), want: 1.0 / 2},
		{name: "one-hot m=4 first machine", xs: oneHot(4, 0, 1), want: 3.0 / 4},
		{name: "one-hot m=8 mid machine", xs: oneHot(8, 3, 1000), want: 7.0 / 8},
		{name: "one-hot m=8192 (clique gather ceiling)", xs: oneHot(8192, 0, 12345), want: 8191.0 / 8192},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Gini(append([]int(nil), tt.xs...)); got != tt.want {
				t.Errorf("Gini = %v, want exactly %v", got, tt.want)
			}
		})
	}
	// The scratch buffer is sorted in place by design; calling again on the
	// now-sorted slice must give the same answer (order invariance).
	xs := oneHot(16, 15, 7)
	first := Gini(xs)
	if second := Gini(xs); second != first {
		t.Errorf("Gini not order-invariant: %v then %v", first, second)
	}
	if want := 15.0 / 16; first != want {
		t.Errorf("one-hot m=16: Gini = %v, want exactly %v", first, want)
	}
}

func TestFromRoundSplice(t *testing.T) {
	full := NewRing(16)
	spliced := NewRing(16)
	filter := FromRound{Sink: spliced, After: 3}
	for r := 1; r <= 6; r++ {
		ev := Event{Round: r, Step: "tick", Words: r * 10}
		full.Superstep(ev)
		filter.Superstep(ev)
	}
	got := spliced.Events()
	if len(got) != 3 {
		t.Fatalf("filter kept %d events, want 3", len(got))
	}
	for i, ev := range got {
		if ev.Round != 4+i {
			t.Fatalf("spliced event %d has round %d, want %d", i, ev.Round, 4+i)
		}
	}
	// Concatenating the interrupted prefix (rounds 1..3) with the spliced
	// suffix reconstructs the uninterrupted stream.
	joined := append(full.Events()[:3:3], got...)
	if len(joined) != 6 {
		t.Fatalf("splice reconstruction has %d events", len(joined))
	}
	for i, ev := range joined {
		if ev.Round != i+1 || ev.Words != (i+1)*10 {
			t.Fatalf("reconstructed event %d = %+v", i, ev)
		}
	}
	// Nil sink is a no-op, not a panic.
	FromRound{After: 1}.Superstep(Event{Round: 5})
}
