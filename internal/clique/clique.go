// Package clique simulates the congested clique model — the distributed
// model in which the sample-and-sparsify ruling-set algorithms (and their
// derandomizations) were originally developed, and to which near-linear-
// memory MPC is equivalent up to constants.
//
// There are n nodes, one per graph vertex; every node initially knows its
// own incident edges. Computation proceeds in synchronous rounds: in each
// round every ORDERED PAIR of nodes may exchange at most PairWords machine
// words (one word models the O(log n)-bit messages of the model). So a node
// may receive up to n−1 words per round — the all-to-all "congested" power
// that makes O(1)-round collectives possible — but may not shove a large
// payload down a single pair link.
//
// Lenzen's routing theorem (any communication pattern where every node sends
// and receives at most n messages can be scheduled in O(1) rounds) is
// exposed as RouteStep: per-node budgets of n·PairWords words instead of
// per-pair budgets, charged as LenzenRounds rounds.
//
// As in the mpc package, accounting (rounds, words, budget violations) is
// the point: the quantities the theory bounds are metered on every run, and
// execution is deterministic regardless of goroutine scheduling.
package clique

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/rulingset/mprs/internal/mpc"
	"github.com/rulingset/mprs/internal/trace"
)

// LenzenRounds is the constant number of rounds charged for one Lenzen
// routing step (the theorem's constant; 2 matches the standard statement's
// small constant without claiming tightness).
const LenzenRounds = 2

// Config describes a simulated congested clique.
type Config struct {
	// PairWords is the per-ordered-pair per-round bandwidth in words;
	// default 1 (one O(log n)-bit message).
	PairWords int
	// Strict makes violations errors instead of recorded statistics.
	Strict bool
	// Faults, when non-nil and enabled, injects the same deterministic
	// fault schedule as the MPC simulator (see mpc.FaultPlan): node crashes
	// abort and re-execute the round from the barrier-committed state,
	// message drops are retransmitted, duplicates deduplicated, stragglers
	// stall the barrier — all recovered, so delivered inboxes (and the
	// algorithm's output) stay bit-identical to the fault-free run, with the
	// robustness cost metered in the fault fields of Stats.
	Faults *mpc.FaultPlan
	// Tracer, when non-nil, receives one trace.Event per committed round
	// (per-node words sent/received, recovery activity). Deterministic; costs
	// nothing when nil.
	Tracer trace.Tracer
	// Context, when non-nil, is checked at every round barrier: once it is
	// done, Step/RouteStep return a *CancelError wrapping mpc.ErrCanceled or
	// mpc.ErrDeadline with the committed round and full Stats. See
	// RunContext.
	Context context.Context
	// Transport, when non-nil, carries every committed round's sorted
	// per-destination message boxes, exactly as in the MPC simulator (the
	// shared mpc.Transport interface; Message is an alias of mpc.Message, so
	// one transport implementation serves both simulators). nil is the
	// in-memory router. A failed exchange aborts the round cleanly with a
	// *TransportError.
	Transport mpc.Transport
	// Parallelism bounds the worker pool executing node step closures within
	// one round: 0 (the default) means GOMAXPROCS, 1 forces the serial
	// reference path (every node runs on the calling goroutine, in node
	// order). Outputs, Stats and traces are bit-identical at every level.
	Parallelism int
}

// Violation records a bandwidth breach.
type Violation struct {
	Round int
	Src   int
	Dst   int // -1 for per-node budget breaches
	Kind  string
	Words int
	Limit int
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	if v.Dst >= 0 {
		return fmt.Sprintf("round %d: pair (%d→%d) carried %d words > %d", v.Round, v.Src, v.Dst, v.Words, v.Limit)
	}
	return fmt.Sprintf("round %d: node %d %s %d words > %d", v.Round, v.Src, v.Kind, v.Words, v.Limit)
}

// Stats aggregates model measurements of a simulation. As in the mpc
// package, Rounds/Messages/Words count only committed rounds and delivered
// traffic (bit-identical to the fault-free run); recovery overhead is
// metered separately in the fault fields.
type Stats struct {
	Rounds     int
	Messages   int64
	Words      int64
	PeakRecv   int // max words received by one node in one round
	Violations []Violation

	// Spans aggregates rounds/traffic/skew per named trace span (algorithm
	// phase), in order of first appearance (see Cluster.Span). The per-span
	// schema is shared with the MPC simulator.
	Spans []mpc.SpanStat
	// SkewSent and SkewRecv are the worst per-round imbalance ratios across
	// nodes: max words sent (received) by one node divided by the round mean.
	SkewSent float64
	SkewRecv float64
	// GiniSent and GiniRecv are the worst per-round Gini imbalance
	// coefficients across nodes (see trace.Gini).
	GiniSent float64
	GiniRecv float64

	// RecoveredCrashes counts injected node crashes recovered at the barrier.
	RecoveredCrashes int
	// RecoveryRounds counts extra rounds spent on crash re-execution and
	// drop retransmission.
	RecoveryRounds int
	// ReplayedWords counts words re-sent during recovery.
	ReplayedWords int64
	// DroppedMessages counts transit losses repaired by retransmission.
	DroppedMessages int
	// DupMessages counts transit duplicates removed by receiver dedup.
	DupMessages int
	// StallRounds counts barrier rounds lost to straggler stalls.
	StallRounds int
}

// ErrBandwidth is wrapped by errors returned in Strict mode.
var ErrBandwidth = errors.New("clique: bandwidth budget exceeded")

// Message is a payload received from node Src. It is an alias of
// mpc.Message so both simulators share one message shape — and therefore one
// Transport implementation (see Config.Transport).
type Message = mpc.Message

// TransportError reports a round whose message exchange failed (see
// mpc.TransportError — this is the clique-model counterpart, carrying clique
// Stats). The round was not committed and nothing was delivered.
type TransportError struct {
	// Round is the number of committed rounds when the exchange failed.
	Round int
	// Stats is the full accumulated statistics at the failure barrier.
	Stats Stats
	// Err is the underlying transport failure.
	Err error
}

// Error implements error.
func (e *TransportError) Error() string {
	return fmt.Sprintf("clique: transport failed after %d committed rounds: %v", e.Round, e.Err)
}

// Unwrap exposes the underlying transport failure.
func (e *TransportError) Unwrap() error { return e.Err }

// Cluster is a simulated congested clique on n nodes.
type Cluster struct {
	cfg     Config
	n       int
	stats   Stats
	inboxes [][]Message

	// mu guards the sticky late-send error; message sends never touch it
	// (each worker buffers its block's sends in its own stepOutbox).
	mu      sync.Mutex
	lateErr error

	// fired records crash events already injected, so the re-executed round
	// does not crash again (a fault fires once per (round, node)).
	fired map[[2]int]struct{}

	// Observability state: the registered tracer, the active span label
	// (atomic: drivers may switch spans while a round's workers still run —
	// each barrier pins the label once, see step), and reusable per-node
	// scratch buffers so skew accounting allocates nothing per round.
	tracer  trace.Tracer
	span    atomic.Pointer[string]
	sentW   []int
	recvW   []int
	sortBuf []int
}

// NewCluster creates an n-node congested clique.
func NewCluster(cfg Config, n int) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("clique: n %d < 1", n)
	}
	if cfg.PairWords == 0 {
		cfg.PairWords = 1
	}
	if cfg.PairWords < 0 {
		return nil, fmt.Errorf("clique: pair bandwidth %d < 0", cfg.PairWords)
	}
	if cfg.Parallelism < 0 {
		return nil, fmt.Errorf("clique: parallelism %d < 0", cfg.Parallelism)
	}
	c := &Cluster{
		cfg:     cfg,
		n:       n,
		inboxes: make([][]Message, n),
		tracer:  cfg.Tracer,
		sentW:   make([]int, n),
		recvW:   make([]int, n),
		sortBuf: make([]int, n),
	}
	setup := "setup"
	c.span.Store(&setup)
	return c, nil
}

// parallelism resolves the configured worker-pool size: 0 means GOMAXPROCS.
func (c *Cluster) parallelism() int {
	if p := c.cfg.Parallelism; p > 0 {
		return p
	}
	return runtime.GOMAXPROCS(0)
}

// SetTracer registers (or, with nil, removes) the round tracer.
func (c *Cluster) SetTracer(t trace.Tracer) { c.tracer = t }

// Span sets the active trace-span label; subsequent rounds are attributed to
// it in Stats.Spans and emitted trace events (same labels as the MPC
// simulator: "sparsify", "seed-search", "gather", "finish"; default "setup").
// A tracer implementing trace.SpanObserver is notified immediately, so live
// introspection sees the phase change before its first round commits.
//
// Safe to call concurrently with a running step: the label is stored
// atomically and pinned once per barrier, so a mid-step switch attributes
// the in-flight round entirely to the old label.
func (c *Cluster) Span(name string) {
	c.span.Store(&name)
	if o, ok := c.tracer.(trace.SpanObserver); ok {
		o.SpanChange(name)
	}
}

// CurrentSpan returns the active trace-span label.
func (c *Cluster) CurrentSpan() string { return *c.span.Load() }

// N returns the node count.
func (c *Cluster) N() int { return c.n }

// Config returns the configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Stats returns a copy of the accumulated statistics.
func (c *Cluster) Stats() Stats {
	out := c.stats
	out.Violations = append([]Violation(nil), c.stats.Violations...)
	out.Spans = append([]mpc.SpanStat(nil), c.stats.Spans...)
	return out
}

// ChargeRounds accounts for k analytically modeled rounds.
func (c *Cluster) ChargeRounds(k int) {
	span := c.CurrentSpan()
	for i := 0; i < k; i++ {
		c.stats.Rounds++
		c.bumpSpan(span, 1, 0, 0, 0, 0, 0, 0)
		if c.tracer != nil {
			c.tracer.Superstep(trace.Event{
				Round:   c.stats.Rounds,
				Step:    "charged",
				Span:    span,
				Charged: true,
			})
		}
	}
}

// findSpan returns the (possibly new) aggregate for the named span; the
// last entry is checked first so consecutive rounds in one phase are O(1).
func (c *Cluster) findSpan(span string) *mpc.SpanStat {
	if n := len(c.stats.Spans); n > 0 && c.stats.Spans[n-1].Span == span {
		return &c.stats.Spans[n-1]
	}
	for i := range c.stats.Spans {
		if c.stats.Spans[i].Span == span {
			return &c.stats.Spans[i]
		}
	}
	c.stats.Spans = append(c.stats.Spans, mpc.SpanStat{Span: span})
	return &c.stats.Spans[len(c.stats.Spans)-1]
}

// bumpSpan folds one committed round (or several, for Lenzen-routed and
// charged steps) into the named span's aggregate. Runs single-threaded at
// the barrier, with the span label pinned by the caller.
func (c *Cluster) bumpSpan(span string, rounds int, messages, words int64, maxSent, maxRecv int, giniSent, giniRecv float64) {
	sp := c.findSpan(span)
	sp.Rounds += rounds
	sp.Messages += messages
	sp.Words += words
	if maxSent > sp.MaxSent {
		sp.MaxSent = maxSent
	}
	if maxRecv > sp.MaxRecv {
		sp.MaxRecv = maxRecv
	}
	if giniSent > sp.GiniSent {
		sp.GiniSent = giniSent
	}
	if giniRecv > sp.GiniRecv {
		sp.GiniRecv = giniRecv
	}
}

// Ctx is one node's view within a step.
//
// A Ctx is valid only for the duration of its step: once the step commits
// (or aborts) the context is invalidated, and late Send calls are dropped
// and surfaced as an error (wrapping mpc.ErrStaleCtx) from the next step,
// instead of corrupting the next round's traffic.
type Ctx struct {
	Node int

	c     *Cluster
	round int
	inbox []Message
	ob    *stepOutbox

	crashed  bool
	panicked any
	stack    []byte
}

// stepOutbox buffers the sends of one worker's contiguous node block during
// one round attempt — the same per-worker buffering-and-merge discipline as
// the MPC simulator (see mpc.Cluster and DESIGN.md §8). The mutex serves
// step closures that spawn their own joined sender goroutines, and the seal
// at the barrier, which turns late sends into mpc.ErrStaleCtx.
type stepOutbox struct {
	mu     sync.Mutex
	sealed bool
	boxes  [][]Message // indexed by destination node
}

// Inbox returns the messages delivered at the end of the previous step,
// ordered by sender.
func (x *Ctx) Inbox() []Message { return x.inbox }

// Send queues payload words to node dst for delivery at the end of the
// step. The payload is copied. Sending on an invalidated context (after its
// step completed) drops the payload and records mpc.ErrStaleCtx, returned by
// the cluster's next step.
func (x *Ctx) Send(dst int, payload ...uint64) {
	cp := make([]uint64, len(payload))
	copy(cp, payload)
	ob := x.ob
	ob.mu.Lock()
	if ob.sealed {
		ob.mu.Unlock()
		x.c.noteLateSend(x.Node, x.round, len(cp))
		return
	}
	ob.boxes[dst] = append(ob.boxes[dst], Message{Src: x.Node, Payload: cp})
	ob.mu.Unlock()
}

// noteLateSend records the sticky stale-context error surfaced by the next
// step.
func (c *Cluster) noteLateSend(node, round, words int) {
	c.mu.Lock()
	if c.lateErr == nil {
		c.lateErr = fmt.Errorf("clique: node %d sent %d words after its round (%d) completed: %w",
			node, words, round, mpc.ErrStaleCtx)
	}
	c.mu.Unlock()
}

// takeLateErr returns and clears the sticky late-send error.
func (c *Cluster) takeLateErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	err := c.lateErr
	c.lateErr = nil
	return err
}

// Step executes one synchronous round under the per-pair bandwidth budget.
func (c *Cluster) Step(name string, f func(x *Ctx)) error {
	return c.step(name, f, false)
}

// RouteStep executes one Lenzen-routed exchange: per-node send/receive
// budgets of n·PairWords words, charged as LenzenRounds rounds.
func (c *Cluster) RouteStep(name string, f func(x *Ctx)) error {
	return c.step(name, f, true)
}

// crashNow consumes one injected crash for (round, v); a fault fires only
// once, so the round's re-execution after recovery does not crash again.
func (c *Cluster) crashNow(round, v int) bool {
	if !c.cfg.Faults.CrashesAt(round, v) {
		return false
	}
	key := [2]int{round, v}
	if _, ok := c.fired[key]; ok {
		return false
	}
	if c.fired == nil {
		c.fired = make(map[[2]int]struct{})
	}
	c.fired[key] = struct{}{}
	return true
}

// attempt is the transient state of one round execution attempt: the
// per-node contexts and the per-worker outbox buffers they fed. The buffers
// live and die with the attempt, so an aborted attempt can never leak
// traffic into the next round.
type attempt struct {
	ctxs    []*Ctx
	outs    []*stepOutbox // one per worker, in ascending node-block order
	crashed []int
	merr    *mpc.MachineError
}

// seal closes every outbox of a finished (or aborted) attempt so late sends
// error instead of leaking into the next round.
func (at *attempt) seal() {
	for _, ob := range at.outs {
		ob.mu.Lock()
		ob.sealed = true
		ob.mu.Unlock()
	}
}

// mergeOutboxes concatenates the per-worker buffers destination by
// destination, workers in ascending node-block order — the canonical
// (sender id, send order) sequence at every parallelism level, identical to
// what the serial path produces. The order is verified (and, for step
// closures whose joined goroutines interleaved sends across nodes of one
// block, restored by a stable sort) before the boxes reach the transport,
// which assumes it.
func (at *attempt) mergeOutboxes(n int) [][]Message {
	boxes := make([][]Message, n)
	for dst := 0; dst < n; dst++ {
		total := 0
		for _, ob := range at.outs {
			total += len(ob.boxes[dst])
		}
		if total == 0 {
			continue
		}
		box := make([]Message, 0, total)
		for _, ob := range at.outs {
			box = append(box, ob.boxes[dst]...)
		}
		for i := 1; i < len(box); i++ {
			if box[i].Src < box[i-1].Src {
				sort.SliceStable(box, func(i, j int) bool { return box[i].Src < box[j].Src })
				break
			}
		}
		boxes[dst] = box
	}
	return boxes
}

// chargeDiscarded charges the aborted attempt's buffered traffic to
// ReplayedWords (it is re-sent by the re-execution).
func (at *attempt) chargeDiscarded(c *Cluster) {
	for _, ob := range at.outs {
		for _, box := range ob.boxes {
			for _, msg := range box {
				c.stats.ReplayedWords += int64(len(msg.Payload))
			}
		}
	}
}

// runAttempt executes one attempt of a round: f runs on every non-crashed
// node via a bounded worker pool (Config.Parallelism workers; 1 runs every
// node inline on the calling goroutine, in node order), panics recovered per
// node. Crash decisions (which consume once-only fault events) are taken
// sequentially before any worker starts.
func (c *Cluster) runAttempt(round int, f func(x *Ctx)) *attempt {
	at := &attempt{ctxs: make([]*Ctx, c.n)}
	for v := 0; v < c.n; v++ {
		at.ctxs[v] = &Ctx{Node: v, c: c, round: round, inbox: c.inboxes[v]}
		if c.crashNow(round, v) {
			at.ctxs[v].crashed = true
			at.crashed = append(at.crashed, v)
		}
	}
	run := func(x *Ctx) {
		defer func() {
			if r := recover(); r != nil {
				x.panicked = r
				x.stack = debug.Stack()
			}
		}()
		f(x)
	}
	// Bounded worker pool: n can be thousands of nodes.
	workers := c.parallelism()
	if workers > c.n {
		workers = c.n
	}
	var wg sync.WaitGroup
	per := (c.n + workers - 1) / workers
	for w := 0; w*per < c.n; w++ {
		lo, hi := w*per, (w+1)*per
		if hi > c.n {
			hi = c.n
		}
		ob := &stepOutbox{boxes: make([][]Message, c.n)}
		at.outs = append(at.outs, ob)
		for v := lo; v < hi; v++ {
			at.ctxs[v].ob = ob
		}
		block := func(lo, hi int) {
			for v := lo; v < hi; v++ {
				if !at.ctxs[v].crashed {
					run(at.ctxs[v])
				}
			}
		}
		if workers == 1 {
			block(lo, hi)
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			block(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	for v := 0; v < c.n; v++ {
		if at.ctxs[v].panicked != nil {
			at.merr = &mpc.MachineError{Machine: v, Round: round, Panic: at.ctxs[v].panicked, Stack: at.ctxs[v].stack}
			break
		}
	}
	return at
}

func (c *Cluster) step(name string, f func(x *Ctx), routed bool) error {
	if err := c.takeLateErr(); err != nil {
		return err
	}
	if err := c.barrierErr(); err != nil {
		return err
	}
	round := c.stats.Rounds + 1
	// Pin the span label once per barrier: a driver switching spans while
	// workers still run attributes this round entirely to the old label.
	span := c.CurrentSpan()
	preCrashes := c.stats.RecoveredCrashes
	preRecovery := c.stats.RecoveryRounds
	preReplayed := c.stats.ReplayedWords
	preDropped := c.stats.DroppedMessages
	preDups := c.stats.DupMessages
	preStalls := c.stats.StallRounds
	preMsgs := c.stats.Messages
	preWords := c.stats.Words
	var at *attempt
	for {
		at = c.runAttempt(round, f)
		at.seal()
		if at.merr != nil {
			return at.merr
		}
		if len(at.crashed) == 0 {
			break
		}
		// Crashed nodes restart from the barrier-committed state of the
		// previous round and the round re-executes (node computation is
		// deterministic, so the re-execution reproduces the fault-free
		// messages exactly). The aborted attempt's buffers die with it;
		// their word count is charged as replay.
		c.stats.RecoveredCrashes += len(at.crashed)
		c.stats.RecoveryRounds++
		at.chargeDiscarded(c)
	}
	if p := c.cfg.Faults; p != nil {
		for v := 0; v < c.n; v++ {
			if p.StallsAt(round, v) {
				c.stats.StallRounds++
			}
		}
	}

	// Canonicalize the exchange: merge the per-worker buffers in fixed node
	// order (see mergeOutboxes) and, when a transport is configured, hand
	// all boxes to it before any accounting — exactly the MPC simulator's
	// contract, so one transport implementation serves both models. A failed
	// exchange aborts before the round commits.
	boxes := at.mergeOutboxes(c.n)
	if c.cfg.Transport != nil {
		exchanged, err := c.cfg.Transport.Exchange(round, boxes)
		if err != nil {
			return &TransportError{Round: c.stats.Rounds, Stats: c.Stats(), Err: err}
		}
		boxes = exchanged
	}

	if routed {
		c.stats.Rounds += LenzenRounds
	} else {
		c.stats.Rounds++
	}

	var firstErr error
	droppedThisRound := false
	sentByNode := c.sentW
	clear(sentByNode)
	maxRecv := 0
	for dst := 0; dst < c.n; dst++ {
		box := boxes[dst]
		recv := 0
		pairWords := 0
		prevSrc := -1
		seq := 0
		for _, msg := range box {
			if msg.Src != prevSrc {
				pairWords = 0
				seq = 0
				prevSrc = msg.Src
			}
			// Transport faults, decided on the sorted (schedule-independent)
			// order: drops are retransmitted, duplicates deduplicated, so
			// the delivered box is always exactly the sent messages.
			if pf := c.cfg.Faults; pf != nil {
				if pf.DropsMessage(round, msg.Src, dst, seq) {
					c.stats.DroppedMessages++
					c.stats.ReplayedWords += int64(len(msg.Payload))
					droppedThisRound = true
				}
				if pf.DupsMessage(round, msg.Src, dst, seq) {
					c.stats.DupMessages++
				}
			}
			seq++
			pairWords += len(msg.Payload)
			recv += len(msg.Payload)
			sentByNode[msg.Src] += len(msg.Payload)
			c.stats.Messages++
			c.stats.Words += int64(len(msg.Payload))
			if !routed && pairWords > c.cfg.PairWords {
				if err := c.violate(Violation{
					Round: c.stats.Rounds, Src: msg.Src, Dst: dst,
					Kind: "pair", Words: pairWords, Limit: c.cfg.PairWords,
				}); err != nil && firstErr == nil {
					firstErr = err
				}
				pairWords = -1 << 30 // flag once per pair per round
			}
		}
		c.recvW[dst] = recv
		if recv > maxRecv {
			maxRecv = recv
		}
		if recv > c.stats.PeakRecv {
			c.stats.PeakRecv = recv
		}
		nodeLimit := c.n * c.cfg.PairWords
		if recv > nodeLimit {
			if err := c.violate(Violation{
				Round: c.stats.Rounds, Src: dst, Dst: -1,
				Kind: "received", Words: recv, Limit: nodeLimit,
			}); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		c.inboxes[dst] = box
	}
	if routed {
		nodeLimit := c.n * c.cfg.PairWords
		for v, sent := range sentByNode {
			if sent > nodeLimit {
				if err := c.violate(Violation{
					Round: c.stats.Rounds, Src: v, Dst: -1,
					Kind: "routed", Words: sent, Limit: nodeLimit,
				}); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
	}
	if droppedThisRound {
		c.stats.RecoveryRounds++
	}
	// Skew accounting across nodes: max/mean ratios and Gini coefficients
	// (computed on the reusable scratch buffer — no allocation per round).
	maxSent := 0
	for _, s := range sentByNode {
		if s > maxSent {
			maxSent = s
		}
	}
	roundMsgs := c.stats.Messages - preMsgs
	roundWords := c.stats.Words - preWords
	copy(c.sortBuf, sentByNode)
	giniSent := trace.Gini(c.sortBuf)
	copy(c.sortBuf, c.recvW)
	giniRecv := trace.Gini(c.sortBuf)
	if roundWords > 0 {
		mean := float64(roundWords) / float64(c.n)
		if s := float64(maxSent) / mean; s > c.stats.SkewSent {
			c.stats.SkewSent = s
		}
		if s := float64(maxRecv) / mean; s > c.stats.SkewRecv {
			c.stats.SkewRecv = s
		}
	}
	if giniSent > c.stats.GiniSent {
		c.stats.GiniSent = giniSent
	}
	if giniRecv > c.stats.GiniRecv {
		c.stats.GiniRecv = giniRecv
	}
	charged := 1
	if routed {
		charged = LenzenRounds
	}
	c.bumpSpan(span, charged, roundMsgs, roundWords, maxSent, maxRecv, giniSent, giniRecv)
	if c.tracer != nil {
		// Event slices are freshly allocated: sinks may retain them. The
		// clique model has no memory budget, so Resident stays nil.
		c.tracer.Superstep(trace.Event{
			Round:          c.stats.Rounds,
			Step:           name,
			Span:           span,
			Sent:           append([]int(nil), sentByNode...),
			Recv:           append([]int(nil), c.recvW...),
			Messages:       int(roundMsgs),
			Words:          int(roundWords),
			MaxSent:        maxSent,
			MaxRecv:        maxRecv,
			GiniSent:       giniSent,
			GiniRecv:       giniRecv,
			Crashes:        c.stats.RecoveredCrashes - preCrashes,
			RecoveryRounds: c.stats.RecoveryRounds - preRecovery,
			ReplayedWords:  c.stats.ReplayedWords - preReplayed,
			Dropped:        c.stats.DroppedMessages - preDropped,
			Duplicated:     c.stats.DupMessages - preDups,
			Stalls:         c.stats.StallRounds - preStalls,
		})
	}
	return firstErr
}

func (c *Cluster) violate(v Violation) error {
	c.stats.Violations = append(c.stats.Violations, v)
	if c.cfg.Strict {
		return fmt.Errorf("%w: %s", ErrBandwidth, v)
	}
	return nil
}

// Drain empties and returns node v's inbox — the node-local consumption of
// delivered messages between steps.
func (c *Cluster) Drain(v int) []Message {
	box := c.inboxes[v]
	c.inboxes[v] = nil
	return box
}

// SumToZero has every node contribute one word, summed at node 0 in one
// round (each contribution travels a distinct pair link). Returns the sum.
func (c *Cluster) SumToZero(name string, local func(v int) uint64) (uint64, error) {
	if err := c.Step(name, func(x *Ctx) {
		x.Send(0, local(x.Node))
	}); err != nil {
		return 0, err
	}
	var sum uint64
	for _, msg := range c.Drain(0) {
		for _, w := range msg.Payload {
			sum += w
		}
	}
	return sum, nil
}

// MaxToZero is SumToZero with max instead of sum.
func (c *Cluster) MaxToZero(name string, local func(v int) uint64) (uint64, error) {
	if err := c.Step(name, func(x *Ctx) {
		x.Send(0, local(x.Node))
	}); err != nil {
		return 0, err
	}
	var best uint64
	for _, msg := range c.Drain(0) {
		for _, w := range msg.Payload {
			if w > best {
				best = w
			}
		}
	}
	return best, nil
}

// BroadcastWord has node 0 send one word to every node in one round.
func (c *Cluster) BroadcastWord(name string, word uint64) error {
	if err := c.Step(name, func(x *Ctx) {
		if x.Node != 0 {
			return
		}
		for dst := 1; dst < c.n; dst++ {
			x.Send(dst, word)
		}
	}); err != nil {
		return err
	}
	for v := 1; v < c.n; v++ {
		c.inboxes[v] = nil
	}
	return nil
}

// ScatterAggregate is the congested clique's O(1)-round vector reduction:
// every node holds nExt values (nExt <= n); coordinate e is summed at
// aggregator node e — every contribution rides a distinct pair link as a
// single word — and the aggregated vector is collected at node 0, each
// aggregator's sum again one word on its own link. Two rounds total,
// independent of nExt.
//
// This primitive is what makes a conditional-expectation chunk O(1) rounds
// in the clique for any chunk width up to log₂ n — the collective the MPC
// simulator must pay ⌈·⌉ gathers for.
func (c *Cluster) ScatterAggregate(name string, nExt int, local func(v, e int) uint64) ([]uint64, error) {
	if nExt > c.n {
		return nil, fmt.Errorf("clique: %d extensions exceed scatter capacity n=%d", nExt, c.n)
	}
	if err := c.Step(name+"/scatter", func(x *Ctx) {
		for e := 0; e < nExt; e++ {
			x.Send(e, local(x.Node, e))
		}
	}); err != nil {
		return nil, err
	}
	// Aggregators sum their coordinate locally, then forward to node 0; the
	// sender id identifies the coordinate.
	partial := make([]uint64, nExt)
	for agg := 0; agg < nExt; agg++ {
		for _, msg := range c.Drain(agg) {
			for _, w := range msg.Payload {
				partial[agg] += w
			}
		}
	}
	if err := c.Step(name+"/collect", func(x *Ctx) {
		if x.Node < nExt {
			x.Send(0, partial[x.Node])
		}
	}); err != nil {
		return nil, err
	}
	sums := make([]uint64, nExt)
	for _, msg := range c.Drain(0) {
		if msg.Src < nExt && len(msg.Payload) == 1 {
			sums[msg.Src] = msg.Payload[0]
		}
	}
	return sums, nil
}

// ScatterAggregateFloat is ScatterAggregate for float64 contributions
// (transported as IEEE-754 bit patterns, summed as floats at aggregators).
func (c *Cluster) ScatterAggregateFloat(name string, nExt int, local func(v, e int) float64) ([]float64, error) {
	if nExt > c.n {
		return nil, fmt.Errorf("clique: %d extensions exceed scatter capacity n=%d", nExt, c.n)
	}
	if err := c.Step(name+"/scatter", func(x *Ctx) {
		for e := 0; e < nExt; e++ {
			x.Send(e, math.Float64bits(local(x.Node, e)))
		}
	}); err != nil {
		return nil, err
	}
	partial := make([]float64, nExt)
	for agg := 0; agg < nExt; agg++ {
		for _, msg := range c.Drain(agg) {
			for _, w := range msg.Payload {
				partial[agg] += math.Float64frombits(w)
			}
		}
	}
	if err := c.Step(name+"/collect", func(x *Ctx) {
		if x.Node < nExt {
			x.Send(0, math.Float64bits(partial[x.Node]))
		}
	}); err != nil {
		return nil, err
	}
	sums := make([]float64, nExt)
	for _, msg := range c.Drain(0) {
		if msg.Src < nExt && len(msg.Payload) == 1 {
			sums[msg.Src] = math.Float64frombits(msg.Payload[0])
		}
	}
	return sums, nil
}
