package supervise

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/rulingset/mprs/internal/chaos"
)

// The chaos oracle: every survivable fault schedule must yield Members,
// canonical Stats and trace bytes identical to a fault-free in-process run;
// every non-survivable one must yield a structured error — never a panic,
// never a silently wrong answer.

// chaosConfig builds a test supervisor config carrying the parsed plan.
func chaosConfig(t *testing.T, workers int, plan string) Config {
	t.Helper()
	cfg := testConfig(workers)
	p, err := chaos.Parse(plan, 7)
	if err != nil {
		t.Fatalf("chaos plan %q: %v", plan, err)
	}
	cfg.Chaos = p
	return cfg
}

// TestChaosWireBenignOracle: wire faults the transport absorbs without any
// restart — duplicated, delayed (uplink) and reordered (downlink) frames —
// leave the run bit-identical with a zero restart budget.
func TestChaosWireBenignOracle(t *testing.T) {
	dir := t.TempDir()
	inSpec := testSpec(t, "det2")
	inSpec.TraceFile = filepath.Join(dir, "in.trace")
	inRes, err := InProc{}.Run(inSpec)
	if err != nil {
		t.Fatalf("inproc: %v", err)
	}
	for _, plan := range []string{
		"wire:dup@6:1",
		"wire:delay@6:1",
		"wire:reorder@6:2",
		"wire:dup@5:0,wire:delay@9:2,wire:reorder@7:1",
	} {
		t.Run(plan, func(t *testing.T) {
			sub := t.TempDir()
			spec := testSpec(t, "det2")
			spec.TraceFile = filepath.Join(sub, "mp.trace")
			cfg := chaosConfig(t, 3, plan)
			cfg.MaxRestarts = 0 // benign faults must not need the restart machinery
			var lifecycle bytes.Buffer
			cfg.Lifecycle = &lifecycle
			res, err := Run(spec, cfg)
			if err != nil {
				t.Fatalf("chaos %q: %v\nlifecycle:\n%s", plan, err, lifecycle.String())
			}
			requireSameResult(t, inRes, res)
			requireSameFile(t, inSpec.TraceFile, spec.TraceFile)
			if !strings.Contains(lifecycle.String(), `"kind":"chaos"`) {
				t.Errorf("lifecycle records no chaos event:\n%s", lifecycle.String())
			}
		})
	}
}

// TestChaosWireSeverOracle: corrupt and truncated frames are stream-level
// damage the framing layer must catch (ErrFraming, never a bad payload); the
// supervisor treats them as a crash, restarts from checkpoint, and the run
// stays bit-identical — including worker 0, the trace writer.
func TestChaosWireSeverOracle(t *testing.T) {
	dir := t.TempDir()
	inSpec := testSpec(t, "det2")
	inSpec.CheckpointEvery = 4
	inSpec.CheckpointDir = filepath.Join(dir, "ck-in")
	inSpec.TraceFile = filepath.Join(dir, "in.trace")
	inRes, err := InProc{}.Run(inSpec)
	if err != nil {
		t.Fatalf("inproc: %v", err)
	}
	for _, tc := range []struct {
		plan string
		note string
	}{
		{"wire:corrupt@8:1", "wire:corrupt@8:1"},
		{"wire:trunc@8:0", "wire:trunc@8:0"},
	} {
		t.Run(tc.plan, func(t *testing.T) {
			sub := t.TempDir()
			spec := testSpec(t, "det2")
			spec.CheckpointEvery = 4
			spec.CheckpointDir = filepath.Join(sub, "ck")
			spec.TraceFile = filepath.Join(sub, "mp.trace")
			cfg := chaosConfig(t, 3, tc.plan)
			cfg.MaxRestarts = 2
			cfg.BackoffInitial = 20 * time.Millisecond
			var lifecycle bytes.Buffer
			cfg.Lifecycle = &lifecycle
			res, err := Run(spec, cfg)
			if err != nil {
				t.Fatalf("chaos %q: %v\nlifecycle:\n%s", tc.plan, err, lifecycle.String())
			}
			requireSameResult(t, inRes, res)
			requireSameFile(t, inSpec.TraceFile, spec.TraceFile)
			life := lifecycle.String()
			for _, want := range []string{tc.note, `"kind":"crash"`, `"kind":"restart"`} {
				if !strings.Contains(life, want) {
					t.Errorf("lifecycle missing %s:\n%s", want, life)
				}
			}
		})
	}
}

// TestChaosHeartbeatOracle: dropped and garbled heartbeat telemetry is an
// observability wound, never a correctness one — liveness rides on the other
// frames and the deterministic outputs are untouched.
func TestChaosHeartbeatOracle(t *testing.T) {
	inRes, err := InProc{}.Run(testSpec(t, "det2"))
	if err != nil {
		t.Fatalf("inproc: %v", err)
	}
	cfg := chaosConfig(t, 2, "wire:hbdrop@1:1,wire:hbgarble@2:1")
	cfg.MaxRestarts = 0
	cfg.Heartbeat = 600 * time.Millisecond // fast beats so the attacked ordinals actually occur
	res, err := Run(testSpec(t, "det2"), cfg)
	if err != nil {
		t.Fatalf("heartbeat chaos: %v", err)
	}
	requireSameResult(t, inRes, res)
}

// TestChaosDiskTornCheckpointOracle: a torn checkpoint write reports success
// (the lying-disk model), so only a later restart exposes it — the restarted
// worker must skip the torn round-8 file, resume from round 4, and stay
// bit-identical.
func TestChaosDiskTornCheckpointOracle(t *testing.T) {
	dir := t.TempDir()
	inSpec := testSpec(t, "det2")
	inSpec.CheckpointEvery = 4
	inSpec.CheckpointDir = filepath.Join(dir, "ck-in")
	inSpec.TraceFile = filepath.Join(dir, "in.trace")
	inRes, err := InProc{}.Run(inSpec)
	if err != nil {
		t.Fatalf("inproc: %v", err)
	}
	spec := testSpec(t, "det2")
	spec.CheckpointEvery = 4
	spec.CheckpointDir = filepath.Join(dir, "ck-mp")
	spec.TraceFile = filepath.Join(dir, "mp.trace")
	cfg := chaosConfig(t, 2, "disk:torn@8:0,proc:kill@12:0")
	cfg.MaxRestarts = 2
	cfg.BackoffInitial = 20 * time.Millisecond
	var lifecycle bytes.Buffer
	cfg.Lifecycle = &lifecycle
	res, err := Run(spec, cfg)
	if err != nil {
		t.Fatalf("torn-checkpoint chaos: %v\nlifecycle:\n%s", err, lifecycle.String())
	}
	requireSameResult(t, inRes, res)
	requireSameFile(t, inSpec.TraceFile, spec.TraceFile)
}

// TestChaosDiskENOSPCRetryableOracle: a failed persist is an environmental
// error — the worker reports it as retryable, the supervisor restarts
// instead of aborting, and the retry (chaos disk events fire only at
// attempt 0) completes bit-identically.
func TestChaosDiskENOSPCRetryableOracle(t *testing.T) {
	dir := t.TempDir()
	inSpec := testSpec(t, "det2")
	inSpec.CheckpointEvery = 4
	inSpec.CheckpointDir = filepath.Join(dir, "ck-in")
	inRes, err := InProc{}.Run(inSpec)
	if err != nil {
		t.Fatalf("inproc: %v", err)
	}
	for _, plan := range []string{"disk:enospc@4:1", "disk:fsyncerr@4:1"} {
		t.Run(plan, func(t *testing.T) {
			sub := t.TempDir()
			spec := testSpec(t, "det2")
			spec.CheckpointEvery = 4
			spec.CheckpointDir = filepath.Join(sub, "ck")
			cfg := chaosConfig(t, 2, plan)
			cfg.MaxRestarts = 2
			cfg.BackoffInitial = 20 * time.Millisecond
			var lifecycle bytes.Buffer
			cfg.Lifecycle = &lifecycle
			res, err := Run(spec, cfg)
			if err != nil {
				t.Fatalf("chaos %q: %v\nlifecycle:\n%s", plan, err, lifecycle.String())
			}
			requireSameResult(t, inRes, res)
			if !strings.Contains(lifecycle.String(), "retryable: ") {
				t.Errorf("lifecycle does not classify the persist failure as retryable:\n%s", lifecycle.String())
			}
		})
	}
}

// TestChaosProcKillOracle: proc:kill@R:W is the chaos-grammar spelling of
// the KillAt schedule — a real SIGKILL at deterministic progress, restarted
// and bit-identical.
func TestChaosProcKillOracle(t *testing.T) {
	inRes, err := InProc{}.Run(testSpec(t, "det2"))
	if err != nil {
		t.Fatalf("inproc: %v", err)
	}
	cfg := chaosConfig(t, 3, "proc:kill@10:1")
	cfg.MaxRestarts = 1
	cfg.BackoffInitial = 20 * time.Millisecond
	res, err := Run(testSpec(t, "det2"), cfg)
	if err != nil {
		t.Fatalf("proc:kill chaos: %v", err)
	}
	requireSameResult(t, inRes, res)
}

// TestChaosFlapQuarantineDegrades is the graceful-degradation contract: a
// flapping worker (proc:flap kills it at the same round on every
// incarnation) is quarantined after FlapLimit consecutive same-round
// crashes, the fleet is torn down, and with DegradedFallback the job is
// finished by a single in-process run resumed from the newest valid
// checkpoint. Run returns the structured *DegradedError ALONGSIDE a result
// whose members, canonical stats and trace bytes are identical to a clean
// run's.
func TestChaosFlapQuarantineDegrades(t *testing.T) {
	dir := t.TempDir()
	inSpec := testSpec(t, "det2")
	inSpec.CheckpointEvery = 4
	inSpec.CheckpointDir = filepath.Join(dir, "ck-in")
	inSpec.TraceFile = filepath.Join(dir, "in.trace")
	inRes, err := InProc{}.Run(inSpec)
	if err != nil {
		t.Fatalf("inproc: %v", err)
	}
	spec := testSpec(t, "det2")
	spec.CheckpointEvery = 4
	spec.CheckpointDir = filepath.Join(dir, "ck-mp")
	spec.TraceFile = filepath.Join(dir, "mp.trace")
	cfg := chaosConfig(t, 3, "proc:flap@10:1")
	cfg.MaxRestarts = 5
	cfg.BackoffInitial = 20 * time.Millisecond
	cfg.DegradedFallback = true
	var lifecycle bytes.Buffer
	cfg.Lifecycle = &lifecycle
	res, err := Run(spec, cfg)
	var derr *DegradedError
	if !errors.As(err, &derr) {
		t.Fatalf("want *DegradedError, got %v\nlifecycle:\n%s", err, lifecycle.String())
	}
	if derr.Worker != 1 || !derr.Quarantined {
		t.Errorf("DegradedError identity: %+v", derr)
	}
	if derr.Attempts < DefaultFlapLimit-1 {
		t.Errorf("Attempts = %d, want >= %d (flap limit crashes)", derr.Attempts, DefaultFlapLimit-1)
	}
	if derr.CommittedRound <= 0 {
		t.Errorf("CommittedRound = %d, want > 0", derr.CommittedRound)
	}
	if derr.ResumedFrom <= 0 {
		t.Errorf("ResumedFrom = %d, want > 0 (checkpoints were persisted)", derr.ResumedFrom)
	}
	if derr.Stats.Rounds == 0 {
		t.Errorf("degraded Stats empty: %+v", derr.Stats)
	}
	// The degraded answer is still the right answer, bit for bit.
	requireSameResult(t, inRes, res)
	requireSameFile(t, inSpec.TraceFile, spec.TraceFile)
	life := lifecycle.String()
	for _, want := range []string{`"kind":"quarantine"`, `"kind":"degrade"`, "degraded fallback"} {
		if !strings.Contains(life, want) {
			t.Errorf("lifecycle missing %s:\n%s", want, life)
		}
	}
}

// TestChaosFleetBudgetAborts: the fleet-wide restart budget is distinct from
// the per-worker one — two crashes on two different workers exhaust a budget
// of one even though neither worker hit MaxRestarts, and without
// DegradedFallback that is a structured abort.
func TestChaosFleetBudgetAborts(t *testing.T) {
	cfg := chaosConfig(t, 3, "proc:kill@6:0,proc:kill@10:1")
	cfg.MaxRestarts = 5
	cfg.MaxFleetRestarts = 1
	cfg.BackoffInitial = 20 * time.Millisecond
	var lifecycle bytes.Buffer
	cfg.Lifecycle = &lifecycle
	_, err := Run(testSpec(t, "det2"), cfg)
	var serr *SupervisorError
	if !errors.As(err, &serr) {
		t.Fatalf("want *SupervisorError, got %v\nlifecycle:\n%s", err, lifecycle.String())
	}
	if serr.Worker != 1 {
		t.Errorf("aborting worker = %d, want 1 (the one denied a restart): %+v", serr.Worker, serr)
	}
	if !strings.Contains(err.Error(), "fleet restart budget") {
		t.Errorf("error does not name the fleet budget: %v", err)
	}
	if !strings.Contains(lifecycle.String(), `"kind":"quarantine"`) {
		t.Errorf("lifecycle missing quarantine:\n%s", lifecycle.String())
	}
}

// TestChaosPlanValidation: a plan targeting a worker the fleet does not have
// is a configuration error before any process spawns.
func TestChaosPlanValidation(t *testing.T) {
	for _, plan := range []string{"wire:dup@5:7", "disk:torn@4:3", "proc:kill@5:2"} {
		cfg := chaosConfig(t, 2, plan)
		if _, err := Run(testSpec(t, "det2"), cfg); err == nil {
			t.Errorf("plan %q accepted with 2 workers", plan)
		}
	}
}
