// Package bitset provides a compact, fixed-capacity bit set used throughout
// the simulator for vertex sets (active sets, marks, membership flags).
//
// The zero value is an empty set with zero capacity; use New to allocate a
// set that can hold indices in [0, n).
package bitset

import "math/bits"

const wordBits = 64

// Set is a fixed-capacity bit set over indices [0, n).
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set with capacity for indices in [0, n).
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{
		words: make([]uint64, (n+wordBits-1)/wordBits),
		n:     n,
	}
}

// Len returns the capacity n the set was created with.
func (s *Set) Len() int { return s.n }

// Add inserts i into the set. Indices outside [0, n) are ignored.
func (s *Set) Add(i int) {
	if i < 0 || i >= s.n {
		return
	}
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Remove deletes i from the set. Indices outside [0, n) are ignored.
func (s *Set) Remove(i int) {
	if i < 0 || i >= s.n {
		return
	}
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Contains reports whether i is in the set.
func (s *Set) Contains(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Count returns the number of elements in the set.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clear removes all elements.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill adds every index in [0, n).
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trimTail()
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{
		words: make([]uint64, len(s.words)),
		n:     s.n,
	}
	copy(c.words, s.words)
	return c
}

// Union adds every element of o to s. Sets must have equal capacity; if they
// differ, only the overlapping words are merged.
func (s *Set) Union(o *Set) {
	k := min(len(s.words), len(o.words))
	for i := 0; i < k; i++ {
		s.words[i] |= o.words[i]
	}
	s.trimTail()
}

// Intersect keeps only elements present in both s and o.
func (s *Set) Intersect(o *Set) {
	k := min(len(s.words), len(o.words))
	for i := 0; i < k; i++ {
		s.words[i] &= o.words[i]
	}
	for i := k; i < len(s.words); i++ {
		s.words[i] = 0
	}
}

// Subtract removes every element of o from s.
func (s *Set) Subtract(o *Set) {
	k := min(len(s.words), len(o.words))
	for i := 0; i < k; i++ {
		s.words[i] &^= o.words[i]
	}
}

// Equal reports whether s and o contain exactly the same elements.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// ForEach calls f for every element in ascending order. Iteration stops if f
// returns false.
func (s *Set) ForEach(f func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !f(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Elements returns the elements in ascending order.
func (s *Set) Elements() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// PackRange serializes membership of the indices in [lo, hi) into
// ⌈(hi−lo)/64⌉ words: bit j of the result holds membership of index lo+j.
// The range is clamped to [0, n). Used by checkpointing to snapshot one
// machine's slice of a vertex set.
func (s *Set) PackRange(lo, hi int) []uint64 {
	if lo < 0 {
		lo = 0
	}
	if hi > s.n {
		hi = s.n
	}
	if hi < lo {
		hi = lo
	}
	out := make([]uint64, (hi-lo+wordBits-1)/wordBits)
	for i := lo; i < hi; i++ {
		if s.Contains(i) {
			j := i - lo
			out[j/wordBits] |= 1 << uint(j%wordBits)
		}
	}
	return out
}

// UnpackRange overwrites membership of the indices in [lo, hi) from a
// PackRange payload (bit j of data holds membership of index lo+j; missing
// words clear). Indices outside the range are untouched.
func (s *Set) UnpackRange(lo, hi int, data []uint64) {
	if lo < 0 {
		lo = 0
	}
	if hi > s.n {
		hi = s.n
	}
	for i := lo; i < hi; i++ {
		j := i - lo
		w := j / wordBits
		if w < len(data) && data[w]&(1<<uint(j%wordBits)) != 0 {
			s.Add(i)
		} else {
			s.Remove(i)
		}
	}
}

// trimTail clears bits at positions >= n in the final word so Count and
// iteration never observe out-of-range indices.
func (s *Set) trimTail() {
	if r := s.n % wordBits; r != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(r)) - 1
	}
}
