package mpc

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

func TestCancelAtBarrierReturnsStructuredError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	stats, err := RunContext(ctx, Config{Machines: 4}, 16, func(c *Cluster) error {
		for r := 0; r < 10; r++ {
			if r == 3 {
				cancel() // external cancellation lands between supersteps
			}
			if err := c.Step("work", echoStep); err != nil {
				return err
			}
		}
		return nil
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v also matches ErrDeadline", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v does not unwrap to context.Canceled", err)
	}
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %T, want *CancelError", err)
	}
	// Cancel fired before the 4th Step started: exactly 3 committed rounds,
	// and the error's Stats agree with the cluster's.
	if ce.Round != 3 || ce.Stats.Rounds != 3 {
		t.Fatalf("CancelError round = %d, stats rounds = %d, want 3", ce.Round, ce.Stats.Rounds)
	}
	if stats.Rounds != 3 || stats.Words != ce.Stats.Words {
		t.Fatalf("RunContext stats %+v disagree with CancelError stats %+v", stats, ce.Stats)
	}
}

func TestDeadlineAtBarrierReturnsErrDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), -time.Second)
	defer cancel()
	<-ctx.Done() // already expired; wait to make the test deterministic
	_, err := RunContext(ctx, Config{Machines: 2}, 8, func(c *Cluster) error {
		return c.Step("never", echoStep)
	})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v does not unwrap to context.DeadlineExceeded", err)
	}
	var ce *CancelError
	if !errors.As(err, &ce) || ce.Round != 0 {
		t.Fatalf("err = %v, want *CancelError at round 0", err)
	}
}

func TestChargeRoundsChecksContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c, err := NewCluster(Config{Machines: 2, Context: ctx}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ChargeRounds("exp", 2); !errors.Is(err, ErrCanceled) {
		t.Fatalf("ChargeRounds err = %v, want ErrCanceled", err)
	}
	if c.Stats().Rounds != 0 {
		t.Fatalf("canceled ChargeRounds still charged %d rounds", c.Stats().Rounds)
	}
}

// TestCancelLeaksNoGoroutines pins the no-leak claim (run under -race in
// CI): cancellation is only ever observed at the superstep barrier, after
// every machine goroutine of the previous superstep has been joined, so a
// canceled run leaves nothing behind.
func TestCancelLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		_, err := RunContext(ctx, Config{Machines: 8}, 64, func(c *Cluster) error {
			for r := 0; ; r++ {
				if r == 2 {
					cancel()
				}
				if err := c.Step("work", func(x *Ctx) {
					x.Send((x.Machine+1)%8, uint64(x.Machine))
				}); err != nil {
					return err
				}
			}
		})
		cancel()
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("run %d: err = %v", i, err)
		}
	}
	// Allow the runtime to retire any transient goroutines before counting
	// (bounded retries instead of a wall-clock deadline).
	after := runtime.NumGoroutine()
	for attempt := 0; attempt < 200 && after > before; attempt++ {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
		after = runtime.NumGoroutine()
	}
	if after > before {
		t.Fatalf("goroutines grew from %d to %d across canceled runs", before, after)
	}
}

func TestCancelErrorMessage(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c, err := NewCluster(Config{Machines: 2, Context: ctx}, 8)
	if err != nil {
		t.Fatal(err)
	}
	err = c.Step("s", echoStep)
	if err == nil {
		t.Fatal("canceled Step returned nil")
	}
	want := "run canceled after 0 committed rounds"
	if got := err.Error(); !contains(got, want) {
		t.Fatalf("error %q does not mention %q", got, want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
