package buildinfo

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestGetIsStableAndStamped(t *testing.T) {
	a, b := Get(), Get()
	if a != b {
		t.Fatalf("Get is not a pure function of the binary: %+v vs %+v", a, b)
	}
	if a.GoVersion == "" {
		t.Error("stamp missing the go toolchain version")
	}
	// Test binaries are built with module support, so the module path is
	// available even when VCS stamping is not.
	if a.Module == "" {
		t.Error("stamp missing the main module path")
	}
}

func TestStringForms(t *testing.T) {
	tests := []struct {
		name  string
		stamp Stamp
		want  []string
	}{
		{
			name:  "zero stamp still renders",
			stamp: Stamp{},
			want:  []string{"unknown module"},
		},
		{
			name:  "revision is truncated and dirty flagged",
			stamp: Stamp{Module: "m", Version: "v1.2.3", GoVersion: "go1.22.0", VCSRevision: "abcdef0123456789", VCSModified: true},
			want:  []string{"m v1.2.3 go1.22.0", "rev abcdef012345", "(modified)"},
		},
		{
			name:  "short revision kept whole",
			stamp: Stamp{Module: "m", VCSRevision: "abc123"},
			want:  []string{"rev abc123"},
		},
	}
	for _, tt := range tests {
		got := tt.stamp.String()
		for _, want := range tt.want {
			if !strings.Contains(got, want) {
				t.Errorf("%s: %q missing %q", tt.name, got, want)
			}
		}
	}
	if s := (Stamp{Module: "m", VCSRevision: "abc"}).String(); strings.Contains(s, "modified") {
		t.Errorf("clean build rendered as modified: %q", s)
	}
}

func TestJSONOmitsEmptyFields(t *testing.T) {
	data, err := json.Marshal(Stamp{GoVersion: "go1.22.0"})
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"go_version":"go1.22.0"}`; string(data) != want {
		t.Errorf("marshal = %s, want %s", data, want)
	}
}

func TestCLIVersionMentionsCommand(t *testing.T) {
	if got := CLIVersion("mprs-bench"); !strings.HasPrefix(got, "mprs-bench ") {
		t.Errorf("CLIVersion = %q", got)
	}
}
