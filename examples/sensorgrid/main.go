// Sensor grid: leader election on a torus-shaped sensor network, exploring
// the β-ruling tradeoff. Growing β shrinks the leader population (fewer
// radio-active coordinators → less energy) at the cost of longer routes to a
// leader (higher latency). β=1 is an MIS; β>=2 uses the paper's recursive
// deterministic sparsification.
package main

import (
	"fmt"
	"log"

	mprs "github.com/rulingset/mprs"
)

func main() {
	// Random geometric (unit-disk) graph: 8000 sensors scattered uniformly,
	// radio range 0.035 — the standard wireless sensor-network model.
	g, err := mprs.BuildGraph("geometric:n=8000,r=0.035", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensor network: %v (unit-disk)\n", g)
	fmt.Println()
	fmt.Printf("%-6s %-9s %-8s %-14s %-10s\n", "beta", "leaders", "rounds", "radius (meas.)", "words")

	for beta := 1; beta <= 4; beta++ {
		res, err := mprs.DetRulingSet(g, beta, mprs.Options{Machines: 8, ChunkBits: 4})
		if err != nil {
			log.Fatal(err)
		}
		if err := mprs.Check(g, res); err != nil {
			log.Fatalf("beta=%d: %v", beta, err)
		}
		radius := mprs.RulingRadius(g, res.Members)
		fmt.Printf("%-6d %-9d %-8d %-14d %-10d\n",
			beta, len(res.Members), res.Stats.Rounds, radius, res.Stats.Words)
	}

	fmt.Println()
	fmt.Println("tradeoff: larger beta -> fewer leaders (less coordination energy),")
	fmt.Println("longer worst-case route to a leader (higher latency), and a smaller")
	fmt.Println("residual instance for the final local solve.")

	// An (α,β)-ruling set spaces leaders at pairwise distance >= α — useful
	// when leaders carry interfering radios.
	spaced, err := mprs.DetRulingSetAlphaBeta(g, 3, 2, mprs.Options{Machines: 8, ChunkBits: 4})
	if err != nil {
		log.Fatal(err)
	}
	if err := mprs.Check(g, spaced); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n(3,2)-ruling set: %d leaders, pairwise distance >= 3, coverage radius <= %d\n",
		len(spaced.Members), spaced.Beta)
}
