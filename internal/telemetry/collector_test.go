package telemetry

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/rulingset/mprs/internal/trace"
)

// fakeClock hands out instants advanced by Tick.
type fakeClock struct{ at time.Time }

func (c *fakeClock) now() time.Time        { return c.at }
func (c *fakeClock) tick(d time.Duration)  { c.at = c.at.Add(d) }
func newFakeClock() *fakeClock             { return &fakeClock{at: time.Unix(1000, 0)} }
func points(g Gatherer) map[string][]Point { return indexPoints(g.Gather()) }
func indexPoints(ps []Point) map[string][]Point {
	m := make(map[string][]Point)
	for _, p := range ps {
		m[p.Name] = append(m[p.Name], p)
	}
	return m
}

func value(t *testing.T, m map[string][]Point, name string) float64 {
	t.Helper()
	ps := m[name]
	if len(ps) != 1 {
		t.Fatalf("%s: %d series, want 1", name, len(ps))
	}
	return ps[0].Value
}

// TestCollectorSeries folds a synthetic superstep stream through the
// collector and checks every derived series.
func TestCollectorSeries(t *testing.T) {
	c := NewCollector(CollectorOptions{})
	c.Superstep(trace.Event{
		Round: 1, Step: "a", Span: "phase1", Messages: 10, Words: 40,
		MaxSent: 9, MaxRecv: 8, GiniSent: 0.2, GiniRecv: 0.1,
		Sent: []int{20, 20}, Recv: []int{25, 15}, Resident: []int{100, 90},
	})
	c.Superstep(trace.Event{
		Round: 2, Step: "b", Span: "phase1", Messages: 5, Words: 10,
		MaxSent: 4, MaxRecv: 3, GiniSent: 0.5, GiniRecv: 0.05,
		Sent: []int{5, 5}, Recv: []int{5, 5}, Resident: []int{80, 120},
		Crashes: 1, RecoveryRounds: 2, ReplayedWords: 7, Dropped: 3, Duplicated: 4, Stalls: 5,
	})
	m := points(c)
	for name, want := range map[string]float64{
		"mprs_committed_round":           2,
		"mprs_supersteps_total":          2,
		"mprs_messages_total":            15,
		"mprs_words_total":               50,
		"mprs_peak_sent_words":           9,
		"mprs_peak_recv_words":           8,
		"mprs_mean_sent_words":           5, // latest round: 10 words / 2 machines
		"mprs_gini_sent":                 0.5,
		"mprs_gini_recv":                 0.1,
		"mprs_peak_resident_words":       120,
		"mprs_recovered_crashes_total":   1,
		"mprs_recovery_rounds_total":     2,
		"mprs_replayed_words_total":      7,
		"mprs_dropped_messages_total":    3,
		"mprs_duplicated_messages_total": 4,
		"mprs_stall_rounds_total":        5,
		"mprs_checkpoint_bytes_total":    0,
	} {
		if got := value(t, m, name); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
}

// TestCollectorSpanLatency drives SpanChange with a fake clock and checks
// the per-span histogram: the residence time of the span that just ended is
// observed, labeled with that span's name.
func TestCollectorSpanLatency(t *testing.T) {
	clk := newFakeClock()
	c := NewCollector(CollectorOptions{Now: clk.now})
	c.SpanChange("sparsify")
	clk.tick(30 * time.Millisecond)
	c.SpanChange("gather")
	clk.tick(700 * time.Millisecond)
	c.SpanChange("finish")

	var spans []Point
	for _, p := range c.Gather() {
		if p.Name == "mprs_span_seconds" {
			spans = append(spans, p)
		}
	}
	if len(spans) != 2 {
		t.Fatalf("got %d span series, want 2 (finish is still open): %+v", len(spans), spans)
	}
	bySpan := make(map[string]Point)
	for _, p := range spans {
		bySpan[p.Labels[0].Value] = p
	}
	if p := bySpan["sparsify"]; p.Count != 1 || p.Sum != 0.03 {
		t.Errorf("sparsify histogram = count %d sum %v, want 1 / 0.03", p.Count, p.Sum)
	}
	if p := bySpan["gather"]; p.Count != 1 || p.Sum != 0.7 {
		t.Errorf("gather histogram = count %d sum %v, want 1 / 0.7", p.Count, p.Sum)
	}
	// Repeating the current span is not a transition.
	clk.tick(time.Second)
	c.SpanChange("finish")
	if _, ok := indexPoints(c.Gather())["mprs_span_seconds"]; !ok {
		t.Fatal("span histogram vanished")
	}
	for _, p := range c.Gather() {
		if p.Name == "mprs_span_seconds" && p.Labels[0].Value == "finish" {
			t.Error("same-span SpanChange observed a latency for the still-open span")
		}
	}
}

// TestCollectorRing pins the flight ring's bound and emission order across
// wraparound.
func TestCollectorRing(t *testing.T) {
	c := NewCollector(CollectorOptions{FlightCap: 4})
	for r := 1; r <= 10; r++ {
		c.Superstep(trace.Event{Round: r})
	}
	got := c.Recent()
	if len(got) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(got))
	}
	for i, ev := range got {
		if want := 7 + i; ev.Round != want {
			t.Errorf("ring[%d].Round = %d, want %d", i, ev.Round, want)
		}
	}
}

// TestWireRoundTrip pins the heartbeat payload: points and the ring survive
// encode/decode, and the same version-skew tolerance as snapshots applies.
func TestWireRoundTrip(t *testing.T) {
	c := NewCollector(CollectorOptions{FlightCap: 2})
	c.Superstep(trace.Event{Round: 1, Words: 10})
	c.Superstep(trace.Event{Round: 2, Words: 20})
	data, err := c.Wire()
	if err != nil {
		t.Fatal(err)
	}
	p, err := DecodeWire(data)
	if err != nil {
		t.Fatal(err)
	}
	if p.Schema != SnapshotSchema {
		t.Errorf("wire schema = %q", p.Schema)
	}
	if len(p.Recent) != 2 || p.Recent[1].Round != 2 {
		t.Errorf("wire recent = %+v", p.Recent)
	}
	if got := value(t, indexPoints(p.Points), "mprs_words_total"); got != 30 {
		t.Errorf("wire words_total = %v, want 30", got)
	}
	if _, err := DecodeWire([]byte(`{"schema":"mprs-telemetry/3","future":1}`)); err != nil {
		t.Errorf("future wire schema rejected: %v", err)
	}
	if _, err := DecodeWire([]byte(`{"schema":"mprs-lifecycle/1"}`)); err == nil {
		t.Error("foreign wire schema accepted")
	}
}

// recordingSink counts Persist calls and returns a scripted size/error.
type recordingSink struct {
	calls int
	n     int64
	err   error
}

func (s *recordingSink) Persist(round int, state [][]uint64) (int64, error) {
	s.calls++
	return s.n, s.err
}

// TestWrapCheckpointSink pins the metering decorator: a pure pass-through
// (same size, same error, inner always called) that accumulates only
// successful persists.
func TestWrapCheckpointSink(t *testing.T) {
	c := NewCollector(CollectorOptions{})
	inner := &recordingSink{n: 128}
	sink := c.WrapCheckpointSink(inner)
	if n, err := sink.Persist(3, nil); n != 128 || err != nil {
		t.Errorf("Persist = (%d, %v), want (128, nil)", n, err)
	}
	inner.err = errors.New("disk full")
	if _, err := sink.Persist(4, nil); err == nil {
		t.Error("error swallowed")
	}
	if inner.calls != 2 {
		t.Errorf("inner called %d times, want 2", inner.calls)
	}
	if got := value(t, points(c), "mprs_checkpoint_bytes_total"); got != 128 {
		t.Errorf("checkpoint bytes = %v, want 128 (failed persist must not count)", got)
	}
	if c.WrapCheckpointSink(nil) != nil {
		t.Error("wrapping a nil sink must stay nil")
	}
}

// TestCollectorObserverPurity documents the observer contract at the type
// level: the collector implements the trace hooks by value inspection only —
// feeding N events twice yields doubled counters but the events themselves
// are never mutated.
func TestCollectorObserverPurity(t *testing.T) {
	ev := trace.Event{Round: 1, Messages: 3, Words: 9, Sent: []int{9}}
	want := fmt.Sprintf("%+v", ev)
	c := NewCollector(CollectorOptions{})
	c.Superstep(ev)
	if got := fmt.Sprintf("%+v", ev); got != want {
		t.Errorf("Superstep mutated its event:\n%s\nwas\n%s", got, want)
	}
}
