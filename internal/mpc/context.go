package mpc

import (
	"context"
	"errors"
	"fmt"
)

// Cooperative cancellation. A cluster built with Config.Context checks the
// context at every superstep barrier — the top of Step and of ChargeRounds —
// and, once the context is done, refuses to start the next superstep.
// Nothing is interrupted mid-round: the machine goroutines of the current
// superstep always run to the barrier (runAttempt waits on all of them), so
// cancellation can never leak a goroutine or tear driver state. The returned
// *CancelError carries the committed round and the full Stats at the moment
// of cancellation, so a canceled run is still a complete measurement of the
// work it did commit.

// ErrCanceled is wrapped by the error returned when the run's context is
// canceled at a superstep barrier.
var ErrCanceled = errors.New("mpc: run canceled")

// ErrDeadline is wrapped instead when the context's deadline expired.
var ErrDeadline = errors.New("mpc: run deadline exceeded")

// CancelError reports a run stopped at a superstep barrier by its context.
// It wraps ErrCanceled or ErrDeadline (errors.Is selects which) and the
// context's own cause (so errors.Is(err, context.Canceled) works too).
type CancelError struct {
	// Round is the number of committed supersteps when the run stopped; no
	// partial superstep is reflected anywhere.
	Round int
	// Stats is the full accumulated statistics at the stop barrier.
	Stats Stats

	sentinel error // ErrCanceled or ErrDeadline
	cause    error // the context's error (or cause)
}

// Error implements error.
func (e *CancelError) Error() string {
	return fmt.Sprintf("%v after %d committed rounds: %v", e.sentinel, e.Round, e.cause)
}

// Unwrap exposes both the mpc sentinel and the context error.
func (e *CancelError) Unwrap() []error { return []error{e.sentinel, e.cause} }

// barrierErr checks the configured context at a superstep barrier, returning
// a *CancelError once it is done and nil otherwise (including when no
// context is configured — the zero-cost default).
func (c *Cluster) barrierErr() error {
	ctx := c.cfg.Context
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		cause := context.Cause(ctx)
		sentinel := ErrCanceled
		if errors.Is(cause, context.DeadlineExceeded) {
			sentinel = ErrDeadline
		}
		return &CancelError{Round: c.stats.Rounds, Stats: c.Stats(), sentinel: sentinel, cause: cause}
	default:
		return nil
	}
}

// RunContext builds a cluster wired to ctx and executes driver on it,
// returning the accumulated Stats alongside driver's error. When ctx is
// canceled (or its deadline passes), the driver's next Step or ChargeRounds
// returns a *CancelError wrapping ErrCanceled/ErrDeadline with the committed
// round — the structured-degradation entry point the CLIs use for deadlines
// and SIGINT.
func RunContext(ctx context.Context, cfg Config, n int, driver func(*Cluster) error) (Stats, error) {
	cfg.Context = ctx
	c, err := NewCluster(cfg, n)
	if err != nil {
		return Stats{}, err
	}
	err = driver(c)
	return c.Stats(), err
}
