//go:build !unix

package main

import "os/exec"

// setTestProcGroup is a no-op on platforms without process groups.
func setTestProcGroup(cmd *exec.Cmd) {}

// killTestProcGroup kills the subprocess itself; grandchildren may survive
// on platforms without process groups.
func killTestProcGroup(cmd *exec.Cmd) {
	if cmd == nil || cmd.Process == nil {
		return
	}
	if err := cmd.Process.Kill(); err != nil {
		_ = err // already exited
	}
}
