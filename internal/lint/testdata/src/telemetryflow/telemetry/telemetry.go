// Package telemetry plays the role of an observer package
// (internal/telemetry): it measures wall-clock latencies and exports them as
// advisory series. Its encoders share method names with the deterministic
// sinks (Superstep, Encode) on purpose — the observer-package rule must keep
// them out of the sink set even when every package is forced critical.
package telemetry

import "time"

// series is the exported measurement stream — advisory, never read back by
// the deterministic core.
var series []float64

// Collector mimics the observer's trace hook.
type Collector struct{ last float64 }

// Superstep has the deterministic trace sink's name and shape; in an
// observer package it records a wall-clock timestamp instead.
func (c *Collector) Superstep(round int) {
	_ = round
	c.last = float64(time.Now().UnixNano())
}

// Encode has the durable sink's name; here it serializes the advisory
// snapshot.
func (c *Collector) Encode(buf []byte) []byte {
	return append(buf, byte(len(series)))
}

// Observe appends one measurement to the advisory stream.
func Observe(v float64) {
	series = append(series, v)
}

// Elapsed returns a wall-clock-derived measurement: tainted data leaving
// the observer.
func Elapsed() float64 {
	return float64(time.Now().UnixNano())
}
