package chaos

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"github.com/rulingset/mprs/internal/durable"
)

// ErrInjected is wrapped by every error a DiskFS fabricates, so tests can
// tell an injected failure from a real one.
var ErrInjected = errors.New("chaos: injected fault")

// NewDiskFS returns the durable.FS a worker process should open its
// checkpoint store through. When the plan has no disk event for this worker
// — or this is a restarted incarnation (attempt > 0) — the result is the
// plain OS filesystem: disk chaos models a transient environment failure
// (full disk, dying device), so a supervisor-driven retry must run clean.
// That asymmetry is the point of the attempt gate: it proves end-to-end
// that classifying persist failures as retryable actually recovers the run.
func NewDiskFS(plan *Plan, worker, attempt int) durable.FS {
	if !plan.HasDisk(worker) || attempt > 0 {
		return durable.OSFS{}
	}
	return &diskFS{plan: plan, worker: worker, fired: make(map[int]bool), lastCkptRound: -1}
}

// diskFS interposes on the three write seams Persist crosses: the
// checkpoint temp file (torn/enospc/fsyncerr), the temp-to-final rename
// (renamecrash), and the manifest rewrite (manifesttorn). Reads pass
// through untouched — recovery is the code under test.
type diskFS struct {
	durable.OSFS
	plan   *Plan
	worker int

	mu            sync.Mutex
	fired         map[int]bool
	lastCkptRound int // round of the newest checkpoint temp opened
}

// claim fires event i once.
func (d *diskFS) claim(i int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.fired[i] {
		return false
	}
	d.fired[i] = true
	return true
}

// event finds the first unfired disk event matching (op, round) for this
// worker and claims it.
func (d *diskFS) event(op DiskOp, round int) bool {
	for i, ev := range d.plan.Disk {
		if ev.Worker == d.worker && ev.Op == op && ev.Round == round && d.claim(i) {
			return true
		}
	}
	return false
}

// OpenFile interposes on checkpoint temp-file creation.
func (d *diskFS) OpenFile(name string, flag int, perm os.FileMode) (durable.File, error) {
	round, tmp, ok := durable.ParseCheckpointName(filepath.Base(name))
	if !ok || !tmp {
		return d.OSFS.OpenFile(name, flag, perm)
	}
	d.mu.Lock()
	d.lastCkptRound = round
	d.mu.Unlock()
	f, err := d.OSFS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	switch {
	case d.event(DiskTorn, round):
		// A torn write reports success all the way through Sync and Close;
		// only the decode-time CRC can catch it.
		budget := 8 + int(d.plan.mix(uint64(DiskTorn), uint64(round), uint64(d.worker))%33)
		return &tornFile{File: f, budget: budget}, nil
	case d.event(DiskENOSPC, round):
		return &enospcFile{File: f}, nil
	case d.event(DiskFsyncErr, round):
		return &fsyncErrFile{File: f}, nil
	}
	return f, nil
}

// Rename interposes on installing a checkpoint: renamecrash models a
// process dying between the temp write and the rename, leaving only the
// temp file behind.
func (d *diskFS) Rename(oldpath, newpath string) error {
	if round, tmp, ok := durable.ParseCheckpointName(filepath.Base(newpath)); ok && !tmp && d.event(DiskRenameCrash, round) {
		return fmt.Errorf("%w: crash before rename of %s", ErrInjected, filepath.Base(newpath))
	}
	return d.OSFS.Rename(oldpath, newpath)
}

// WriteFile interposes on the manifest rewrite that follows installing a
// checkpoint: manifesttorn silently halves it, leaving an unparseable
// manifest that the (advisory) load path must shrug off.
func (d *diskFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	if strings.HasPrefix(filepath.Base(name), durable.ManifestName) {
		d.mu.Lock()
		round := d.lastCkptRound
		d.mu.Unlock()
		if round >= 0 && d.event(DiskManifestTorn, round) {
			return d.OSFS.WriteFile(name, data[:len(data)/2], perm)
		}
	}
	return d.OSFS.WriteFile(name, data, perm)
}

// tornFile writes through only the first budget bytes and silently swallows
// the rest, reporting success for everything including Sync.
type tornFile struct {
	durable.File
	budget int
}

func (f *tornFile) Write(p []byte) (int, error) {
	if f.budget > 0 {
		n := len(p)
		if n > f.budget {
			n = f.budget
		}
		f.budget -= n
		if _, err := f.File.Write(p[:n]); err != nil {
			return 0, err
		}
	}
	return len(p), nil
}

// enospcFile fails every write as a full disk would.
type enospcFile struct{ durable.File }

func (f *enospcFile) Write(p []byte) (int, error) {
	return 0, fmt.Errorf("%w: no space left on device", ErrInjected)
}

// fsyncErrFile lets writes land but fails the fsync.
type fsyncErrFile struct{ durable.File }

func (f *fsyncErrFile) Sync() error {
	return fmt.Errorf("%w: fsync failed", ErrInjected)
}
