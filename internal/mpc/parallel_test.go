package mpc

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// TestStableSortBySrcTotalOrder pins the tie-breaking contract directly:
// sorting a destination box with duplicate sender ids orders by ascending
// src while preserving each sender's send sequence (stability). A non-stable
// sort would scramble the within-src order and break the canonical delivery
// order the simulators promise.
func TestStableSortBySrcTotalOrder(t *testing.T) {
	// Three senders' messages interleaved out of src order, each sender's
	// payloads numbered in its own send sequence.
	box := []Message{
		{Src: 2, Payload: []uint64{20}},
		{Src: 0, Payload: []uint64{0}},
		{Src: 2, Payload: []uint64{21}},
		{Src: 1, Payload: []uint64{10}},
		{Src: 0, Payload: []uint64{1}},
		{Src: 1, Payload: []uint64{11}},
		{Src: 0, Payload: []uint64{2}},
	}
	stableSortBySrc(box)
	want := []uint64{0, 1, 2, 10, 11, 20, 21}
	for i, msg := range box {
		if msg.Payload[0] != want[i] {
			t.Fatalf("position %d: got payload %d, want %d (box %v)", i, msg.Payload[0], want[i], box)
		}
	}
}

// TestDuplicateSrcFanIn is the end-to-end regression for duplicate-src
// fan-in: every machine sends several separate messages to one destination
// in one step, so the destination's box holds runs of equal Src values. The
// committed inbox must order them (src ascending, then send sequence) — and
// identically at every parallelism level.
func TestDuplicateSrcFanIn(t *testing.T) {
	const M, K = 5, 4
	run := func(parallelism int) []Message {
		c, err := NewCluster(Config{Machines: M, Parallelism: parallelism}, 64)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Step("fanin", func(x *Ctx) {
			for k := 0; k < K; k++ {
				// Distinct payloads encode (src, send sequence) so ordering
				// violations are visible, not just miscounts.
				x.Send(0, uint64(x.Machine), uint64(k))
			}
		}); err != nil {
			t.Fatal(err)
		}
		var got []Message
		if err := c.Step("inspect", func(x *Ctx) {
			if x.Machine == 0 {
				got = append([]Message(nil), x.Inbox()...)
			}
		}); err != nil {
			t.Fatal(err)
		}
		return got
	}

	serial := run(1)
	if len(serial) != M*K {
		t.Fatalf("machine 0 received %d messages, want %d", len(serial), M*K)
	}
	for i, msg := range serial {
		if wantSrc, wantSeq := i/K, uint64(i%K); msg.Src != wantSrc || msg.Payload[1] != wantSeq {
			t.Fatalf("position %d: got src=%d seq=%d, want src=%d seq=%d",
				i, msg.Src, msg.Payload[1], wantSrc, wantSeq)
		}
	}
	for _, p := range []int{2, 3, M, M + 3} {
		if got := run(p); !reflect.DeepEqual(got, serial) {
			t.Errorf("parallelism %d delivery order diverges from serial:\n got %v\nwant %v", p, got, serial)
		}
	}
}

// TestJoinedSenderGoroutinesStaySorted exercises the documented escape
// hatch: a step closure may spawn its own sender goroutines as long as it
// joins them before returning. Same-machine concurrent sends interleave
// nondeterministically (so each goroutine here sends exactly one message),
// but the per-worker outbox mutex must keep the box intact, and the merge's
// defensive stableSortBySrc fallback must still produce the canonical
// src-ascending order. Run under -race this also proves Send is safe to call
// from closure-spawned goroutines.
func TestJoinedSenderGoroutinesStaySorted(t *testing.T) {
	const M = 4
	c, err := NewCluster(Config{Machines: M, Parallelism: M}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Step("spawned", func(x *Ctx) {
		var wg sync.WaitGroup
		for dst := 0; dst < M; dst++ {
			wg.Add(1)
			go func(dst int) {
				defer wg.Done()
				x.Send(dst, uint64(x.Machine))
			}(dst)
		}
		wg.Wait()
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Step("inspect", func(x *Ctx) {
		inbox := x.Inbox()
		if len(inbox) != M {
			panic(fmt.Sprintf("machine %d: got %d messages, want %d", x.Machine, len(inbox), M))
		}
		for i, msg := range inbox {
			if msg.Src != i || msg.Payload[0] != uint64(i) {
				panic(fmt.Sprintf("machine %d position %d: src=%d payload=%d", x.Machine, i, msg.Src, msg.Payload[0]))
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// TestSpanSwitchDuringStep pins the barrier-pinned span rule: a driver
// goroutine flipping Span labels while a step's workers are mid-flight must
// neither race (this test runs under -race in CI) nor split the in-flight
// round's accounting — the whole round lands on the label current when its
// barrier began.
func TestSpanSwitchDuringStep(t *testing.T) {
	c, err := NewCluster(Config{Machines: 4, Parallelism: 4}, 64)
	if err != nil {
		t.Fatal(err)
	}
	c.Span("pinned")
	release := make(chan struct{})
	switched := make(chan struct{})
	var once sync.Once
	if err := c.Step("mid", func(x *Ctx) {
		once.Do(func() {
			go func() {
				c.Span("late") // concurrent with the running step
				close(switched)
			}()
			<-switched
			close(release)
		})
		<-release
		x.Send((x.Machine+1)%4, 1)
	}); err != nil {
		t.Fatal(err)
	}
	stats := c.Stats()
	var pinned *SpanStat
	for i := range stats.Spans {
		if stats.Spans[i].Span == "pinned" {
			pinned = &stats.Spans[i]
		}
		if stats.Spans[i].Span == "late" && stats.Spans[i].Rounds != 0 {
			t.Errorf("in-flight round leaked onto the switched-to span: %+v", stats.Spans[i])
		}
	}
	if pinned == nil || pinned.Rounds != 1 || pinned.Words != 4 {
		t.Fatalf("round not attributed to the span pinned at its barrier: %+v", stats.Spans)
	}
	if got := c.CurrentSpan(); got != "late" {
		t.Fatalf("CurrentSpan = %q, want the switched label", got)
	}
}
