package telemetry

import (
	"sort"
	"strconv"
	"sync"

	"github.com/rulingset/mprs/internal/trace"
)

// Fleet is the supervisor-side view of a multi-process run: the newest
// telemetry payload per worker (delivered on heartbeat frames) plus the
// lifecycle state the supervisor itself knows (running/backoff/done, restart
// counts, backoff). Gather merges everything into one labeled series set —
// each worker's series tagged worker="<id>" plus fleet-level aggregates — so
// one /metrics scrape shows the whole fleet.
type Fleet struct {
	mu       sync.Mutex
	workers  map[int]*fleetWorker
	degraded bool
}

type fleetWorker struct {
	points    []Point
	recent    []trace.Event
	state     string
	attempts  int
	backoffMS int64
	lastRound int
}

// NewFleet creates an empty fleet view.
func NewFleet() *Fleet {
	return &Fleet{workers: make(map[int]*fleetWorker)}
}

func (f *Fleet) worker(id int) *fleetWorker {
	w, ok := f.workers[id]
	if !ok {
		w = &fleetWorker{}
		f.workers[id] = w
	}
	return w
}

// UpdateTelemetry stores worker id's newest heartbeat telemetry payload.
// Undecodable payloads (a diverged build speaking a future schema) are
// reported but leave the previous snapshot in place.
func (f *Fleet) UpdateTelemetry(id int, payload []byte) error {
	p, err := DecodeWire(payload)
	if err != nil {
		return err
	}
	f.mu.Lock()
	w := f.worker(id)
	if p.Points != nil {
		w.points = p.Points
	}
	if p.Recent != nil {
		w.recent = p.Recent
	}
	f.mu.Unlock()
	return nil
}

// SetLifecycle records the supervisor's view of worker id: its state
// (running, backoff, done, dead), restart count and current backoff.
func (f *Fleet) SetLifecycle(id int, state string, attempts int, backoffMS int64) {
	f.mu.Lock()
	w := f.worker(id)
	w.state, w.attempts, w.backoffMS = state, attempts, backoffMS
	f.mu.Unlock()
}

// SetRound records the newest round worker id is known to have entered.
func (f *Fleet) SetRound(id, round int) {
	f.mu.Lock()
	w := f.worker(id)
	if round > w.lastRound {
		w.lastRound = round
	}
	f.mu.Unlock()
}

// Recent returns worker id's last-reported flight-recorder ring (the events
// flushed into a flight artifact when the supervisor kills or loses the
// worker).
func (f *Fleet) Recent(id int) []trace.Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	w, ok := f.workers[id]
	if !ok {
		return nil
	}
	return append([]trace.Event(nil), w.recent...)
}

// fleet worker states (SetLifecycle's state values).
const (
	WorkerRunning = "running"
	WorkerBackoff = "backoff"
	WorkerDone    = "done"
	WorkerDead    = "dead"
	// WorkerQuarantined marks a worker the supervisor retired permanently:
	// flapping (consecutive crashes at one round) or a blown fleet-wide
	// restart budget.
	WorkerQuarantined = "quarantined"
)

// SetDegraded records that the supervisor abandoned multi-process execution
// and fell back to a single in-process run.
func (f *Fleet) SetDegraded(v bool) {
	f.mu.Lock()
	f.degraded = v
	f.mu.Unlock()
}

// Gather implements Gatherer: fleet aggregates, per-worker lifecycle gauges,
// and every worker's own series re-labeled with worker="<id>", sorted by
// (name, labels) like a Registry gather.
func (f *Fleet) Gather() []Point {
	f.mu.Lock()
	defer f.mu.Unlock()
	ids := make([]int, 0, len(f.workers))
	for id := range f.workers {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	var out []Point
	running, quarantined, restarts, committed := 0, 0, 0, 0
	for _, id := range ids {
		w := f.workers[id]
		if w.state == WorkerRunning {
			running++
		}
		if w.state == WorkerQuarantined {
			quarantined++
		}
		restarts += w.attempts
		if w.lastRound > committed {
			committed = w.lastRound
		}
		wl := Label{Name: "worker", Value: strconv.Itoa(id)}
		if w.state != "" {
			out = append(out, Point{Name: "mprs_worker_state", Help: "Supervisor view of the worker (1 on the current state's series).",
				Kind: KindGauge, Labels: []Label{wl, {Name: "state", Value: w.state}}, Value: 1})
		}
		out = append(out,
			Point{Name: "mprs_worker_restarts_total", Help: "Times the supervisor restarted this worker.",
				Kind: KindCounter, Labels: []Label{wl}, Value: float64(w.attempts)},
			Point{Name: "mprs_worker_backoff_ms", Help: "Current restart backoff in milliseconds (0 while running).",
				Kind: KindGauge, Labels: []Label{wl}, Value: float64(w.backoffMS)},
			Point{Name: "mprs_worker_last_round", Help: "Newest round the worker reported entering.",
				Kind: KindGauge, Labels: []Label{wl}, Value: float64(w.lastRound)},
		)
		for _, p := range w.points {
			p.Labels = append(append([]Label(nil), p.Labels...), wl)
			out = append(out, p)
		}
	}
	out = append(out,
		Point{Name: "mprs_fleet_workers", Help: "Worker processes the supervisor knows.", Kind: KindGauge, Value: float64(len(ids))},
		Point{Name: "mprs_fleet_workers_running", Help: "Workers currently in the running state.", Kind: KindGauge, Value: float64(running)},
		Point{Name: "mprs_fleet_workers_quarantined", Help: "Workers permanently retired by quarantine.", Kind: KindGauge, Value: float64(quarantined)},
		Point{Name: "mprs_fleet_restarts_total", Help: "Worker restarts across the fleet.", Kind: KindCounter, Value: float64(restarts)},
		Point{Name: "mprs_fleet_committed_round", Help: "Newest round any worker reported entering.", Kind: KindGauge, Value: float64(committed)},
		Point{Name: "mprs_fleet_degraded", Help: "1 after the supervisor fell back to a single in-process run.", Kind: KindGauge, Value: boolGauge(f.degraded)},
	)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return labelKey(out[i].Labels) < labelKey(out[j].Labels)
	})
	return out
}

func boolGauge(v bool) float64 {
	if v {
		return 1
	}
	return 0
}
