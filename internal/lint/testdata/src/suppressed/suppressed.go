// Package suppressed exercises //detlint:ok suppression: every violation
// here carries a justified annotation, so a run must report zero findings.
package suppressed

// CountAll sweeps a map where only the total matters, never the order.
func CountAll(m map[string]int) int {
	n := 0
	//detlint:ok maporder -- only the entry count is observed, order-free
	for range m {
		n++
	}
	return n
}

// SameLine suppresses with an annotation trailing the statement itself.
func SameLine(m map[int]bool) int {
	n := 0
	for k := range m { //detlint:ok maporder -- commutative XOR fold, order-free
		n ^= k
	}
	return n
}
