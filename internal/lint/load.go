package lint

import (
	"bufio"
	"bytes"
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
)

// loader parses and typechecks packages of the enclosing module using only
// the standard library: module-internal imports are typechecked recursively
// from source, and standard-library imports go through the stdlib source
// importer (which resolves GOROOT packages without invoking the go tool).
// Keeping the loader dependency-free is what lets detlint run as a plain
// `go run ./cmd/detlint` with an unchanged go.mod.
type loader struct {
	fset       *token.FileSet
	base       string // directory patterns are resolved from (absolute)
	moduleRoot string // directory containing go.mod (absolute)
	modulePath string // module path declared in go.mod

	parsed  map[string]*dirFiles      // absolute dir → parse result
	typed   map[string]*types.Package // import path → lib-only package
	loading map[string]bool           // import-cycle guard
	stdlib  types.Importer
}

// dirFiles is the parsed content of one package directory, partitioned the
// way go/types needs it: library files, in-package test files, and external
// (_test-suffixed package) test files.
type dirFiles struct {
	dir     string // absolute
	rel     string // module-root-relative, slash-separated ("" = root)
	path    string // import path
	libName string
	lib     []*ast.File
	test    []*ast.File
	xtest   []*ast.File
}

// unit is one typecheckable file set: the library package together with its
// in-package tests, or the external test package.
type unit struct {
	path  string
	files []*ast.File
}

// units returns the typecheck units of the directory in analysis order.
func (df *dirFiles) units(skipTests bool) []unit {
	var out []unit
	lib := df.lib
	if !skipTests {
		lib = append(append([]*ast.File(nil), df.lib...), df.test...)
	}
	if len(lib) > 0 {
		out = append(out, unit{path: df.path, files: lib})
	}
	if !skipTests && len(df.xtest) > 0 {
		out = append(out, unit{path: df.path + "_test", files: df.xtest})
	}
	return out
}

func newLoader(dir string) (*loader, error) {
	if dir == "" {
		dir = "."
	}
	base, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := base
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", base)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := regexp.MustCompile(`(?m)^module\s+(\S+)`).FindSubmatch(data)
	if m == nil {
		return nil, fmt.Errorf("lint: no module directive in %s", filepath.Join(root, "go.mod"))
	}
	ld := &loader{
		fset:       token.NewFileSet(),
		base:       base,
		moduleRoot: root,
		modulePath: string(m[1]),
		parsed:     make(map[string]*dirFiles),
		typed:      make(map[string]*types.Package),
		loading:    make(map[string]bool),
	}
	ld.stdlib = importer.ForCompiler(ld.fset, "source", nil)
	return ld, nil
}

// relPos converts a token position to one whose filename is module-root
// relative, so diagnostics are stable across machines.
func (ld *loader) relPos(pos token.Pos) token.Position {
	p := ld.fset.Position(pos)
	if rel, err := filepath.Rel(ld.moduleRoot, p.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		p.Filename = filepath.ToSlash(rel)
	}
	return p
}

// moduleRel maps an import path inside the module to its module-relative
// directory; ok is false for paths outside the module.
func (ld *loader) moduleRel(path string) (string, bool) {
	if path == ld.modulePath {
		return "", true
	}
	if rest, ok := strings.CutPrefix(path, ld.modulePath+"/"); ok {
		return rest, true
	}
	return "", false
}

// expand resolves package patterns to absolute package directories.
// "dir/..." walks recursively, skipping testdata, vendor and hidden
// directories; a plain directory is taken verbatim (so fixtures under
// testdata can be linted when named explicitly).
func (ld *loader) expand(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." {
			pat, recursive = ".", true
		} else if strings.HasSuffix(pat, "/...") {
			pat, recursive = strings.TrimSuffix(pat, "/..."), true
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(ld.base, dir)
		}
		fi, err := os.Stat(dir)
		if err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q does not name a directory", pat)
		}
		if !recursive {
			add(dir)
			continue
		}
		err = filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != dir && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(p)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// parseDir parses every .go file of dir (with comments, for annotations).
// Returns nil if the directory contains no Go files.
func (ld *loader) parseDir(dir string) (*dirFiles, error) {
	if df, ok := ld.parsed[dir]; ok {
		return df, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(ld.moduleRoot, dir)
	if err != nil {
		return nil, err
	}
	rel = filepath.ToSlash(rel)
	if rel == "." {
		rel = ""
	}
	path := ld.modulePath
	if rel != "" {
		path = ld.modulePath + "/" + rel
	}
	df := &dirFiles{dir: dir, rel: rel, path: path}
	type parsedFile struct {
		name string
		file *ast.File
	}
	var files []parsedFile
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if !buildConstraintsMatch(src) {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, parsedFile{name: name, file: f})
	}
	if len(files) == 0 {
		ld.parsed[dir] = nil
		return nil, nil
	}
	for _, pf := range files {
		if !strings.HasSuffix(pf.name, "_test.go") {
			df.libName = pf.file.Name.Name
			break
		}
	}
	for _, pf := range files {
		pkgName := pf.file.Name.Name
		switch {
		case !strings.HasSuffix(pf.name, "_test.go"):
			df.lib = append(df.lib, pf.file)
		case df.libName != "" && pkgName == df.libName:
			df.test = append(df.test, pf.file)
		case strings.HasSuffix(pkgName, "_test"):
			df.xtest = append(df.xtest, pf.file)
		default:
			// Test files in a directory without library files (a pure test
			// package): treat as the in-package unit.
			df.libName = pkgName
			df.test = append(df.test, pf.file)
		}
	}
	ld.parsed[dir] = df
	return df, nil
}

// unixGOOS mirrors the go tool's "unix" build-tag set (cmd/dist's unixOS).
var unixGOOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "hurd": true, "illumos": true, "ios": true,
	"linux": true, "netbsd": true, "openbsd": true, "solaris": true,
}

// buildConstraintsMatch evaluates a file's //go:build line (if any) against
// the host GOOS/GOARCH, so platform-variant files — the supervisor's
// process-group control has unix and !unix implementations — do not
// typecheck as redeclarations. Only the //go:build form is recognized; this
// repo does not use legacy +build lines or filename GOOS suffixes.
func buildConstraintsMatch(src []byte) bool {
	sc := bufio.NewScanner(bytes.NewReader(src))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "package ") {
			break // constraints must precede the package clause
		}
		if !constraint.IsGoBuild(line) {
			continue
		}
		expr, err := constraint.Parse(line)
		if err != nil {
			return true // malformed: let the compiler report it, not the linter
		}
		return expr.Eval(func(tag string) bool {
			switch tag {
			case runtime.GOOS, runtime.GOARCH:
				return true
			case "unix":
				return unixGOOS[runtime.GOOS]
			}
			return false
		})
	}
	return true
}

// Import implements types.Importer: module-internal packages are typechecked
// recursively from source (library files only — importers never see test
// files), everything else is delegated to the stdlib source importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	if pkg, ok := ld.typed[path]; ok {
		return pkg, nil
	}
	rel, ok := ld.moduleRel(path)
	if !ok {
		return ld.stdlib.Import(path)
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)
	df, err := ld.parseDir(filepath.Join(ld.moduleRoot, filepath.FromSlash(rel)))
	if err != nil {
		return nil, err
	}
	if df == nil || len(df.lib) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", path)
	}
	pkg, _, err := ld.typecheck(path, df.lib, nil)
	if err != nil {
		return nil, err
	}
	ld.typed[path] = pkg
	return pkg, nil
}

// check typechecks one analysis unit with full type information.
func (ld *loader) check(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, _, err := ld.typecheck(path, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

func (ld *loader) typecheck(path string, files []*ast.File, info *types.Info) (*types.Package, *types.Info, error) {
	var errs []error
	conf := types.Config{
		Importer: ld,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(err error) { errs = append(errs, err) },
	}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if len(errs) > 0 {
		max := 5
		if len(errs) < max {
			max = len(errs)
		}
		msgs := make([]string, 0, max)
		for _, e := range errs[:max] {
			msgs = append(msgs, e.Error())
		}
		return nil, nil, fmt.Errorf("lint: type errors in %s:\n  %s", path, strings.Join(msgs, "\n  "))
	}
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}
