// Clustering: use a 2-ruling set as cluster heads in a power-law "social
// network" — the classic downstream application of ruling sets. Every vertex
// is within two hops of a head, so assigning each vertex to its nearest head
// yields a clustering with radius <= 2, computed in Θ(log log Δ) MPC phases
// instead of the Θ(log n) an MIS-based clustering would need.
package main

import (
	"fmt"
	"log"
	"sort"

	mprs "github.com/rulingset/mprs"
)

func main() {
	// Chung–Lu power-law graph: heavy-tailed degrees like a social network.
	g, err := mprs.BuildGraph("powerlaw:n=20000,gamma=2.3,avg=10", 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("social graph: %v\n", g)

	heads, err := mprs.DetRulingSet2(g, mprs.Options{Machines: 16, ChunkBits: 4})
	if err != nil {
		log.Fatal(err)
	}
	if err := mprs.Check(g, heads); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster heads: %d (deterministic, %d MPC rounds)\n",
		len(heads.Members), heads.Stats.Rounds)

	// Assign every vertex to its nearest head by multi-source BFS, breaking
	// ties toward the smaller head id (both are deterministic).
	cluster := assignClusters(g, heads.Members)

	sizes := make(map[int32]int)
	for _, c := range cluster {
		if c >= 0 {
			sizes[c]++
		}
	}
	dist := make([]int, 0, len(sizes))
	for _, s := range sizes {
		dist = append(dist, s)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(dist)))
	fmt.Printf("clusters: %d, largest %d, median %d, smallest %d\n",
		len(dist), dist[0], dist[len(dist)/2], dist[len(dist)-1])

	// Radius check: no vertex is more than 2 hops from its head.
	if r := mprs.RulingRadius(g, heads.Members); r > 2 {
		log.Fatalf("radius %d exceeds 2", r)
	}
	fmt.Println("every vertex within 2 hops of its cluster head")
}

// assignClusters labels each vertex with the head that reaches it first in a
// simultaneous BFS from all heads (ties to the smaller head id).
func assignClusters(g *mprs.Graph, heads []int32) []int32 {
	cluster := make([]int32, g.N())
	dist := make([]int32, g.N())
	for i := range cluster {
		cluster[i] = -1
		dist[i] = -1
	}
	queue := make([]int32, 0, g.N())
	for _, h := range heads {
		cluster[h] = h
		dist[h] = 0
		queue = append(queue, h)
	}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, u := range g.Neighbors(int(v)) {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				cluster[u] = cluster[v]
				queue = append(queue, u)
			} else if dist[u] == dist[v]+1 && cluster[v] < cluster[u] {
				cluster[u] = cluster[v]
			}
		}
	}
	return cluster
}
