// Package telemetryflow pins the one-directional observer contract: the
// deterministic core may hand wall-clock measurements TO the telemetry
// observer (that is the observer's whole job, so no findings), but telemetry
// measurements flowing BACK into a deterministic record — a Stats column or
// a message payload — are detflow findings. The run forces every package
// critical, so the silence on the forward direction is the observer-package
// rule working, not a scoping accident.
package telemetryflow

import (
	"time"

	"github.com/rulingset/mprs/internal/lint/testdata/src/telemetryflow/telemetry"
)

// Ctx mimics the simulator context; Send is a deterministic sink by the
// critical-package API contract.
type Ctx struct{ out []uint64 }

// Send appends to the message payload stream.
func (x *Ctx) Send(dst int, payload ...uint64) {
	_ = dst
	x.out = append(x.out, payload...)
}

// Stats mimics the simulator's deterministic columns.
type Stats struct {
	Rounds int
	Words  uint64
}

// observeClean: handing a wall-clock measurement to the observer's
// registry is the sanctioned direction — no finding even under AllCritical.
func observeClean() {
	telemetry.Observe(float64(time.Now().UnixNano()))
}

// collectorClean: Collector.Superstep shares the trace sink's name, and the
// argument is wall-clock tainted; the observer-package rule keeps it out of
// the sink set.
func collectorClean(c *telemetry.Collector) {
	c.Superstep(int(telemetry.Elapsed()))
}

// encodeClean: same for the Encode name — the observer's serializer is not
// the durable byte stream.
func encodeClean(c *telemetry.Collector) {
	_ = c.Encode(nil)
}

// statsBackflow: a telemetry measurement written into a deterministic Stats
// column is the forbidden direction.
func statsBackflow(st *Stats) {
	st.Words = uint64(telemetry.Elapsed()) // want `wall-clock read \(time\.Now\).*via telemetry\.Elapsed.*flows into the telemetryflow\.Stats field Words`
}

// payloadBackflow: the same measurement reaching a message payload.
func payloadBackflow(x *Ctx) {
	x.Send(1, uint64(telemetry.Elapsed())) // want `wall-clock read \(time\.Now\).*via telemetry\.Elapsed.*flows into the Ctx\.Send message payload`
}
