// Package wallclock is a negative fixture for the wallclock analyzer.
package wallclock

import "time"

// elapsed reads the wall clock twice: both reads flagged.
func elapsed() time.Duration {
	start := time.Now() // want `time\.Now reads the wall clock`
	work()
	return time.Since(start) // want `time\.Since reads the wall clock`
}

// deadline uses time.Until: flagged.
func deadline(t time.Time) time.Duration {
	return time.Until(t) // want `time\.Until reads the wall clock`
}

// constants and arithmetic on time values are fine.
func budget() time.Duration {
	return 3 * time.Second
}

func work() {}
