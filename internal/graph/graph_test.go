package graph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func path5(t *testing.T) *Graph {
	t.Helper()
	g, err := New(5, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewBasics(t *testing.T) {
	g := path5(t)
	if g.N() != 5 || g.M() != 4 {
		t.Fatalf("n=%d m=%d, want 5, 4", g.N(), g.M())
	}
	if g.Degree(0) != 1 || g.Degree(2) != 2 {
		t.Fatalf("degrees wrong: %d %d", g.Degree(0), g.Degree(2))
	}
	if g.MaxDegree() != 2 {
		t.Fatalf("max degree = %d", g.MaxDegree())
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) || g.HasEdge(0, 2) {
		t.Fatalf("HasEdge wrong")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestNewRejectsBadEdges(t *testing.T) {
	if _, err := New(3, []Edge{{U: 0, V: 3}}); !errors.Is(err, ErrVertexRange) {
		t.Errorf("out-of-range edge: got %v", err)
	}
	if _, err := New(3, []Edge{{U: -1, V: 1}}); !errors.Is(err, ErrVertexRange) {
		t.Errorf("negative endpoint: got %v", err)
	}
	if _, err := New(3, []Edge{{U: 1, V: 1}}); err == nil {
		t.Errorf("self-loop accepted")
	}
	if _, err := New(-1, nil); err == nil {
		t.Errorf("negative n accepted")
	}
}

func TestDuplicateEdgesMerged(t *testing.T) {
	g, err := New(3, []Edge{{U: 0, V: 1}, {U: 1, V: 0}, {U: 0, V: 1}, {U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("m = %d, want 2 after dedupe", g.M())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 2 {
		t.Fatalf("degrees after dedupe: %d %d", g.Degree(0), g.Degree(1))
	}
}

func TestEmptyGraph(t *testing.T) {
	g, err := New(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 0 || g.M() != 0 || g.MaxDegree() != 0 || g.AvgDegree() != 0 {
		t.Fatalf("empty graph stats wrong")
	}
	var zero Graph
	if zero.N() != 0 {
		t.Fatalf("zero value N = %d", zero.N())
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := path5(t)
	edges := g.Edges()
	if len(edges) != g.M() {
		t.Fatalf("Edges returned %d, want %d", len(edges), g.M())
	}
	g2, err := New(g.N(), edges)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != g2.Degree(v) {
			t.Fatalf("degree mismatch at %d", v)
		}
	}
}

func TestBFSFrom(t *testing.T) {
	g := path5(t)
	dist := g.BFSFrom([]int32{0})
	want := []int32{0, 1, 2, 3, 4}
	for i, d := range dist {
		if d != want[i] {
			t.Errorf("dist[%d] = %d, want %d", i, d, want[i])
		}
	}
	dist = g.BFSFrom([]int32{0, 4})
	want = []int32{0, 1, 2, 1, 0}
	for i, d := range dist {
		if d != want[i] {
			t.Errorf("multi-source dist[%d] = %d, want %d", i, d, want[i])
		}
	}
	dist = g.BFSFrom(nil)
	for i, d := range dist {
		if d != -1 {
			t.Errorf("no-source dist[%d] = %d, want -1", i, d)
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	g, err := New(6, []Edge{{U: 0, V: 1}, {U: 2, V: 3}, {U: 3, V: 4}})
	if err != nil {
		t.Fatal(err)
	}
	comp, count := g.ConnectedComponents()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[3] != comp[4] {
		t.Errorf("components grouped wrong: %v", comp)
	}
	if comp[0] == comp[2] || comp[2] == comp[5] {
		t.Errorf("distinct components merged: %v", comp)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := path5(t)
	sub, toSub, toOrig := g.InducedSubgraph(func(v int) bool { return v != 2 })
	if sub.N() != 4 {
		t.Fatalf("sub n = %d, want 4", sub.N())
	}
	if sub.M() != 2 { // edges 0-1 and 3-4 survive
		t.Fatalf("sub m = %d, want 2", sub.M())
	}
	if toSub[2] != -1 {
		t.Fatalf("dropped vertex mapped to %d", toSub[2])
	}
	for v := 0; v < sub.N(); v++ {
		if toSub[toOrig[v]] != int32(v) {
			t.Fatalf("mapping not inverse at %d", v)
		}
	}
}

func TestPower(t *testing.T) {
	g := path5(t)
	p2, err := g.Power(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Path 0-1-2-3-4 squared: edges at distance 1 or 2.
	wantEdges := 4 + 3
	if p2.M() != wantEdges {
		t.Fatalf("P^2 m = %d, want %d", p2.M(), wantEdges)
	}
	if !p2.HasEdge(0, 2) || p2.HasEdge(0, 3) {
		t.Fatalf("P^2 adjacency wrong")
	}
	p4, err := g.Power(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p4.M() != 9 { // all pairs except 0-4? no: dist(0,4)=4 <= 4, so complete: C(5,2)=10
		if p4.M() != 10 {
			t.Fatalf("P^4 m = %d", p4.M())
		}
	}
	if _, err := g.Power(0, 0); err == nil {
		t.Errorf("power 0 accepted")
	}
	if _, err := g.Power(2, 3); err == nil {
		t.Errorf("edge budget not enforced")
	}
}

func TestPowerDistanceSemantics(t *testing.T) {
	// Property: u~v in G^k iff 1 <= dist_G(u,v) <= k, on random graphs.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		n := 8 + rng.Intn(12)
		var edges []Edge
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.15 {
					edges = append(edges, Edge{U: int32(u), V: int32(v)})
				}
			}
		}
		g, err := New(n, edges)
		if err != nil {
			t.Fatal(err)
		}
		k := 1 + rng.Intn(3)
		p, err := g.Power(k, 0)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < n; u++ {
			dist := g.BFSFrom([]int32{int32(u)})
			for v := 0; v < n; v++ {
				if v == u {
					continue
				}
				want := dist[v] > 0 && int(dist[v]) <= k
				if got := p.HasEdge(u, v); got != want {
					t.Fatalf("trial %d: G^%d edge (%d,%d) = %v, want %v (dist %d)", trial, k, u, v, got, want, dist[v])
				}
			}
		}
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := path5(t)
	h := g.DegreeHistogram()
	if h[1] != 2 || h[2] != 3 {
		t.Fatalf("histogram = %v", h)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := path5(t)
	g.adj[0] = 99 // corrupt: out of range
	if err := g.Validate(); err == nil {
		t.Fatalf("validate accepted corrupted adjacency")
	}
}

func TestRandomGraphInvariants(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		var edges []Edge
		for i := 0; i < n*2; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				edges = append(edges, Edge{U: int32(u), V: int32(v)})
			}
		}
		g, err := New(n, edges)
		if err != nil {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		// Handshake lemma.
		sum := 0
		for v := 0; v < n; v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
