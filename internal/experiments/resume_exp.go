package experiments

import (
	"fmt"
	"os"
	"reflect"
	"slices"

	"github.com/rulingset/mprs/internal/durable"
	"github.com/rulingset/mprs/internal/metrics"
	"github.com/rulingset/mprs/internal/mpc"
	"github.com/rulingset/mprs/internal/rulingset"
)

// collectSink is an in-memory CheckpointSink retaining every persisted
// snapshot, so the experiment can resume from any checkpoint round.
type collectSink struct {
	rounds []int
	states map[int][][]uint64
}

func (s *collectSink) Persist(round int, state [][]uint64) (int64, error) {
	if s.states == nil {
		s.states = make(map[int][][]uint64)
	}
	cp := make([][]uint64, len(state))
	var n int64
	for m, words := range state {
		cp[m] = slices.Clone(words)
		n += int64(8 * len(words))
	}
	s.rounds = append(s.rounds, round)
	s.states[round] = cp
	return n, nil
}

// countingSink wraps a CheckpointSink, counting persists.
type countingSink struct {
	mpc.CheckpointSink
	n int64
}

func (s *countingSink) Persist(round int, state [][]uint64) (int64, error) {
	s.n++
	return s.CheckpointSink.Persist(round, state)
}

// R2DurableResume measures the durable-checkpoint and resume layer
// (EXPERIMENTS.md R2). Predicted shape, in two parts:
//
//  1. Checkpoint cost: the per-checkpoint file size is a near-constant of
//     the run configuration (machines × state words dominate; the framing
//     varies by a few bytes with the round number's digits), so total
//     CheckpointBytes is linear in the number of checkpoints taken — i.e.
//     inverse-linear in CheckpointEvery for a fixed round count.
//
//  2. Resume overhead: a run resumed from durable round R deterministically
//     replays rounds 1..R before new work happens, so ResumeReplayRounds
//     equals R exactly (linear, slope 1) — while members and every
//     deterministic Stats field are bit-identical to the uninterrupted run.
func R2DurableResume(cfg Config) (Report, error) {
	n := 2048
	if cfg.Quick {
		n = 512
	}
	g := mustGNP(n, 12, cfg.Seed)

	// Part 1: durable checkpoint bytes vs cadence, through the real store
	// (CRC-framed records, atomic rename, manifest).
	cadences := []int{1, 2, 4, 8, 16}
	cost := metrics.NewTable("R2: durable checkpoint cost vs cadence (DetRuling2, z=4)",
		"checkpoint every", "checkpoints", "checkpoint bytes", "bytes/checkpoint", "rounds")
	var costSeries metrics.Series
	costSeries.Name = "checkpoint bytes"
	linearBytes := true
	perCkpt := int64(0)
	for _, every := range cadences {
		dir, err := os.MkdirTemp("", "mprs-r2-*")
		if err != nil {
			return Report{}, err
		}
		defer os.RemoveAll(dir)
		store, err := durable.Open(dir, "r2", 0)
		if err != nil {
			return Report{}, err
		}
		counted := &countingSink{CheckpointSink: store}
		res, err := rulingset.DetRuling2(g, rulingset.Options{
			Seed: cfg.Seed, ChunkBits: 4, CheckpointEvery: every, CheckpointSink: counted,
		})
		if err != nil {
			return Report{}, err
		}
		count := counted.n
		per := int64(0)
		if count > 0 {
			per = res.Stats.CheckpointBytes / count
		}
		// Linear within framing noise: the payload is identical per
		// checkpoint; only the meta record's round digits differ.
		if perCkpt == 0 {
			perCkpt = per
		} else if d := per - perCkpt; d < -perCkpt/100-16 || d > perCkpt/100+16 {
			linearBytes = false
		}
		cost.AddRow(every, count, res.Stats.CheckpointBytes, per, res.Stats.Rounds)
		costSeries.X = append(costSeries.X, float64(count))
		costSeries.Y = append(costSeries.Y, float64(res.Stats.CheckpointBytes))
	}

	// Part 2: resume overhead vs resume round. One checkpointed reference
	// run collects every snapshot; each is then used to resume a fresh run.
	sink := &collectSink{}
	refOpts := rulingset.Options{Seed: cfg.Seed, ChunkBits: 4, CheckpointEvery: 4, CheckpointSink: sink}
	ref, err := rulingset.DetRuling2(g, refOpts)
	if err != nil {
		return Report{}, err
	}
	overhead := metrics.NewTable("R2: resume overhead vs resume round (DetRuling2, checkpoint every 4)",
		"resume round", "replay rounds", "identical members", "identical stats", "rounds")
	var replaySeries metrics.Series
	replaySeries.Name = "resume replay rounds"
	allIdentical := true
	linearReplay := true
	picks := sink.rounds
	if cfg.Quick && len(picks) > 6 {
		picks = append(append([]int(nil), picks[:3]...), picks[len(picks)-3:]...)
	}
	for _, round := range picks {
		res, err := rulingset.DetRuling2(g, rulingset.Options{
			Seed: cfg.Seed, ChunkBits: 4, CheckpointEvery: 4,
			CheckpointSink: &collectSink{},
			Resume:         &mpc.ResumeState{Round: round, State: sink.states[round]},
		})
		if err != nil {
			return Report{}, err
		}
		sameMembers := reflect.DeepEqual(ref.Members, res.Members)
		refStats, resStats := ref.Stats, res.Stats
		refStats.CheckpointBytes, resStats.CheckpointBytes = 0, 0
		refStats.ResumeReplayRounds, resStats.ResumeReplayRounds = 0, 0
		sameStats := reflect.DeepEqual(refStats, resStats)
		allIdentical = allIdentical && sameMembers && sameStats
		if res.Stats.ResumeReplayRounds != round {
			linearReplay = false
		}
		overhead.AddRow(round, res.Stats.ResumeReplayRounds, sameMembers, sameStats, res.Stats.Rounds)
		replaySeries.X = append(replaySeries.X, float64(round))
		replaySeries.Y = append(replaySeries.Y, float64(res.Stats.ResumeReplayRounds))
	}

	return Report{
		ID:     "R2",
		Title:  "durable checkpoints and crash-restart resume",
		Tables: []*metrics.Table{cost, overhead},
		Figures: []Figure{
			{Title: "R2: checkpoint bytes vs checkpoint count", Series: []metrics.Series{costSeries}},
			{Title: "R2: replay rounds vs resume round", Series: []metrics.Series{replaySeries}},
		},
		Notes: []string{
			fmt.Sprintf("shape: checkpoint bytes linear in checkpoint count (constant bytes/checkpoint): %v", linearBytes),
			fmt.Sprintf("shape: replay rounds == resume round (linear, slope 1): %v", linearReplay),
			fmt.Sprintf("resumed output and deterministic stats bit-identical to uninterrupted run: %v", allIdentical),
		},
	}, nil
}
