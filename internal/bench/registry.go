package bench

import "fmt"

// Workload is one named, seeded bench configuration. Each workload pins the
// graph spec at two scales (full and the -quick CI tier), the simulator
// knobs, and the algorithm set it exercises; its Experiment field anchors it
// to the EXPERIMENTS.md table whose regime it covers.
type Workload struct {
	// Name is the stable registry key (also the diff key prefix).
	Name string
	// Experiment is the EXPERIMENTS.md anchor this workload regresses
	// (T1, T2, T8, O1, R1).
	Experiment string
	// Doc is a one-line description for `mprs-bench list`.
	Doc string
	// Spec and QuickSpec are the gen workload specs for the full and -quick
	// tiers.
	Spec, QuickSpec string
	// Machines is the MPC machine count (the clique always uses n nodes).
	Machines int
	// ChunkBits is the derandomizer chunk width z.
	ChunkBits int
	// Slack is the linear-regime budget multiplier (0 = simulator default).
	Slack int
	// Beta/Alpha parameterize the beta/alpha-beta algorithms.
	Beta, Alpha int
	// Faults, when non-empty, is an mpc.ParseFaultPlan spec injected into
	// every run of the workload (the R1 recovery regime).
	Faults string
	// CheckpointEvery enables periodic snapshots under faults.
	CheckpointEvery int
	// Parallelism, when non-empty, sweeps the step-execution worker-pool
	// size: each algorithm runs once per level, rows keyed with an @p<level>
	// suffix. Every deterministic column must be identical across levels (the
	// simulators' bit-identity contract), so the sweep doubles as an
	// equivalence regression while its wall-clock ratio feeds the speedup_x
	// column. Empty means one run at the simulator default (GOMAXPROCS).
	Parallelism []int
	// Algos is the algorithm set to run (names from Algorithms).
	Algos []string
}

// Registry returns the workload registry in canonical order. Workload
// configurations are part of the regression contract: changing one
// invalidates BENCH_baseline.json and requires regenerating it (see README
// "Benchmarking & regression").
func Registry() []Workload {
	return []Workload{
		{
			Name:       "t1-gnp-rounds",
			Experiment: "T1",
			Doc:        "rounds/phases vs n regime: G(n,16/n), the four MPC algorithms",
			Spec:       "gnp:n=4096,p=0.0039",
			QuickSpec:  "gnp:n=512,p=0.03",
			Machines:   8,
			ChunkBits:  4,
			Algos:      []string{"luby", "detluby", "rand2", "det2"},
		},
		{
			Name:       "t2-powerlaw",
			Experiment: "T2",
			Doc:        "heavy-tailed degree regime: Chung-Lu power law, 2-ruling sets",
			Spec:       "powerlaw:n=4096,gamma=2.5,avg=8",
			QuickSpec:  "powerlaw:n=512,gamma=2.5,avg=8",
			Machines:   8,
			ChunkBits:  4,
			Algos:      []string{"rand2", "det2"},
		},
		{
			Name:       "t2-star",
			Experiment: "T2",
			Doc:        "adversarial max-degree regime: star graph, 2-ruling sets",
			Spec:       "star:n=4096",
			QuickSpec:  "star:n=256",
			Machines:   8,
			ChunkBits:  4,
			Algos:      []string{"rand2", "det2"},
		},
		{
			Name:        "t8-clique",
			Experiment:  "T8",
			Doc:         "congested-clique regime: one node per vertex, Lenzen-routed residual",
			Spec:        "gnp:n=2048,p=0.0059",
			QuickSpec:   "gnp:n=256,p=0.05",
			Machines:    8,
			ChunkBits:   4,
			Parallelism: []int{1, 4},
			Algos:       []string{"clique2", "cliquedet2"},
		},
		{
			Name:        "o1-skew",
			Experiment:  "O1",
			Doc:         "communication-skew regime: per-span words/Gini under budget",
			Spec:        "gnp:n=8192,p=0.002",
			QuickSpec:   "gnp:n=1024,p=0.016",
			Machines:    8,
			ChunkBits:   4,
			Slack:       16,
			Beta:        3,
			Parallelism: []int{1, 4},
			Algos:       []string{"det2", "detbeta"},
		},
		{
			Name:            "r1-faults",
			Experiment:      "R1",
			Doc:             "recovery regime: drops+dups+pinned crashes, checkpoint every 4",
			Spec:            "gnp:n=2048,p=0.0059",
			QuickSpec:       "gnp:n=512,p=0.023",
			Machines:        8,
			ChunkBits:       4,
			Faults:          "drop=0.02,dup=0.01,crash@1:0,crash@3:2",
			CheckpointEvery: 4,
			Algos:           []string{"rand2", "det2"},
		},
	}
}

// Names returns the registry workload names in canonical order.
func Names() []string {
	reg := Registry()
	out := make([]string, len(reg))
	for i, w := range reg {
		out[i] = w.Name
	}
	return out
}

// Lookup resolves a workload by name.
func Lookup(name string) (Workload, error) {
	for _, w := range Registry() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("bench: unknown workload %q (have %v)", name, Names())
}
