package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/rulingset/mprs/internal/metrics"
	"github.com/rulingset/mprs/internal/supervise"
)

// sniffSchema reads the schema field of a JSONL file's first line without
// consuming the file, so traceview can dispatch between superstep traces
// (mprs-trace/*) and supervisor lifecycle streams (mprs-lifecycle/*).
func sniffSchema(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	var first struct {
		Schema string `json:"schema"`
	}
	sc := bufio.NewScanner(f)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return "", err
		}
		return "", fmt.Errorf("%s: empty file", path)
	}
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		return "", fmt.Errorf("%s: first line is not JSON: %w", path, err)
	}
	return first.Schema, nil
}

// LifecycleReport is the analysis of one supervisor lifecycle stream.
type LifecycleReport struct {
	Header  supervise.LifecycleHeader  `json:"header"`
	Events  []supervise.LifecycleEvent `json:"events"`
	Workers []WorkerTimeline           `json:"workers"`
	// Degraded marks a run the supervisor finished as a single in-process
	// fallback after giving up on the worker fleet.
	Degraded bool `json:"degraded,omitempty"`
}

// WorkerTimeline summarizes one worker's crash/restart history.
type WorkerTimeline struct {
	Worker       int    `json:"worker"`
	Crashes      int    `json:"crashes"`
	Stalls       int    `json:"stalls"`
	Restarts     int    `json:"restarts"`
	Chaos        int    `json:"chaos,omitempty"` // injected chaos events that fired against this worker
	Quarantined  bool   `json:"quarantined,omitempty"`
	LastJoin     int    `json:"last_join_round"` // join round of the newest restart
	FinalRound   int    `json:"final_round"`     // round on the result/error event, if any
	FinalOutcome string `json:"final_outcome"`   // result, error, quarantined, or "" if the run ended without one
}

// readLifecycle loads and analyzes a lifecycle stream.
func readLifecycle(path string) (LifecycleReport, error) {
	var rep LifecycleReport
	f, err := os.Open(path)
	if err != nil {
		return rep, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	if !sc.Scan() {
		return rep, fmt.Errorf("%s: empty lifecycle file", path)
	}
	if err := json.Unmarshal(sc.Bytes(), &rep.Header); err != nil {
		return rep, fmt.Errorf("%s: lifecycle header: %w", path, err)
	}
	if rep.Header.Schema != supervise.LifecycleSchema {
		return rep, fmt.Errorf("%s: schema %q, want %q", path, rep.Header.Schema, supervise.LifecycleSchema)
	}
	byWorker := map[int]*WorkerTimeline{}
	timeline := func(w int) *WorkerTimeline {
		if tl, ok := byWorker[w]; ok {
			return tl
		}
		tl := &WorkerTimeline{Worker: w}
		byWorker[w] = tl
		return tl
	}
	line := 1
	for sc.Scan() {
		line++
		var ev supervise.LifecycleEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return rep, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		rep.Events = append(rep.Events, ev)
		switch ev.Kind {
		case "crash", "kill":
			tl := timeline(ev.Worker)
			if ev.Kind == "crash" {
				tl.Crashes++
			}
		case "stall":
			timeline(ev.Worker).Stalls++
		case "restart":
			tl := timeline(ev.Worker)
			tl.Restarts++
			tl.LastJoin = ev.Round
		case "result", "error":
			tl := timeline(ev.Worker)
			tl.FinalRound = ev.Round
			tl.FinalOutcome = ev.Kind
		case "chaos":
			timeline(ev.Worker).Chaos++
		case "quarantine":
			tl := timeline(ev.Worker)
			tl.Quarantined = true
			tl.FinalRound = ev.Round
			tl.FinalOutcome = "quarantined"
		case "degrade":
			rep.Degraded = true
		}
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	for w := 0; w < rep.Header.Workers; w++ {
		rep.Workers = append(rep.Workers, *timeline(w))
	}
	sort.Slice(rep.Workers, func(i, j int) bool { return rep.Workers[i].Worker < rep.Workers[j].Worker })
	return rep, nil
}

// renderLifecycle prints the restart timeline: the per-worker summary, then
// the full ordered event log.
func renderLifecycle(w io.Writer, rep LifecycleReport) error {
	degraded := ""
	if rep.Degraded {
		degraded = " DEGRADED (finished by in-process fallback)"
	}
	fmt.Fprintf(w, "lifecycle: %s workers=%d heartbeat=%dms max_restarts=%d%s\n\n",
		rep.Header.Schema, rep.Header.Workers, rep.Header.HeartbeatMS, rep.Header.MaxRestarts, degraded)

	sum := metrics.NewTable("per-worker", "worker", "crashes", "stalls", "restarts", "chaos", "last join", "final round", "outcome")
	for _, tl := range rep.Workers {
		outcome := tl.FinalOutcome
		if outcome == "" {
			outcome = "-"
		}
		sum.AddRow(tl.Worker, tl.Crashes, tl.Stalls, tl.Restarts, tl.Chaos, tl.LastJoin, tl.FinalRound, outcome)
	}
	if err := sum.Render(w); err != nil {
		return err
	}

	fmt.Fprintln(w)
	tt := metrics.NewTable("restart timeline", "seq", "kind", "worker", "round", "attempt", "backoff_ms", "note")
	for _, ev := range rep.Events {
		note := ev.Note
		if len(note) > 60 {
			note = note[:57] + "..."
		}
		tt.AddRow(ev.Seq, ev.Kind, ev.Worker, ev.Round, ev.Attempt, ev.BackoffMS, note)
	}
	return tt.Render(w)
}
