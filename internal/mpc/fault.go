package mpc

import (
	"fmt"
	"strconv"
	"strings"
)

// Fault injection: a seeded, deterministic schedule of machine crashes,
// message drops/duplications and straggler stalls, applied by Step at the
// superstep barrier. The model follows the Pregel/MapReduce failure story the
// MPC abstraction stands in for:
//
//   - A CRASH kills a machine for the duration of one superstep. The
//     superstep aborts at the barrier (its partial outboxes are discarded),
//     the machine is restarted — restoring its state from the last checkpoint
//     when a Checkpointer is registered, or from the barrier-committed state
//     otherwise — and the superstep re-executes. Because machine-local
//     computation is deterministic, the re-executed superstep reproduces the
//     fault-free messages exactly; the cost of the recovery (restart and
//     replay rounds, re-sent and restored words) is charged to Stats
//     (RecoveredCrashes, RecoveryRounds, ReplayedWords) instead of perturbing
//     the algorithm's own round/word counts.
//
//   - A DROP loses a message in transit. The transport layer is reliable
//     (ack/retransmit): the message is retransmitted and delivered, one extra
//     recovery round is charged per superstep with at least one drop, and the
//     re-sent words are charged to ReplayedWords.
//
//   - A DUPLICATE delivers a message twice; the receiver's dedup filter
//     drops the copy. Counted in DupMessages, no inbox effect.
//
//   - A STALL models a straggler: the barrier waits an extra round for the
//     slow machine, charged to StallRounds.
//
// Every decision is a deterministic function of (plan seed, event identity),
// never of goroutine scheduling, so a faulty run is exactly reproducible from
// (input, seed, plan) — and, because every fault is recovered, the delivered
// inboxes (and therefore the algorithm's output) are bit-identical to the
// fault-free run's. That invariance is the point: the paper's determinism
// claim survives adverse execution, with the robustness cost metered the same
// way round complexity is.
//
// Step functions must be effect-free on driver state (all driver mutation
// happens after Step returns) so that a superstep can be re-executed; every
// driver in this repository already follows that discipline.

// faultKind tags the event classes of a FaultPlan.
type faultKind uint64

const (
	faultCrash faultKind = iota + 1
	faultDrop
	faultDup
	faultStall
)

// FaultEvent pins one explicit fault to a superstep: Round is the 1-based
// round number at which the fault fires, Machine the victim machine (node, in
// the congested clique).
type FaultEvent struct {
	Round   int
	Machine int
}

// DropEvent pins one explicit in-transit message loss: the first message
// (send-order sequence 0) from Src to Dst at Round is dropped and
// retransmitted by the reliable layer. Targeted drops let incident
// reproductions pin a loss to an exact edge and round, the way crash@R:M
// already pins crashes.
type DropEvent struct {
	Round int
	Src   int
	Dst   int
}

// FaultPlan is a deterministic fault schedule. The zero value (and a nil
// plan) injects nothing. Rates are per-event probabilities realized by a
// pairwise-independent multiply-shift hash of the event identity under Seed:
// the same (plan, event) always makes the same decision, independent of
// goroutine scheduling, machine count or wall clock.
//
// A plan is stateless and may be shared across runs and clusters; the
// once-only semantics of each fault (a crash fires once per (round, machine),
// even across superstep retries) is tracked by the cluster.
type FaultPlan struct {
	// Seed keys the pairwise-independent schedule hash.
	Seed int64
	// CrashRate is the probability that a given (round, machine) pair
	// crashes at that superstep.
	CrashRate float64
	// DropRate is the probability that a given message is lost in transit
	// (and retransmitted by the reliable layer).
	DropRate float64
	// DupRate is the probability that a given message is duplicated in
	// transit (and deduplicated by the receiver).
	DupRate float64
	// StallRate is the probability that a given (round, machine) pair
	// straggles, stalling the barrier one extra round.
	StallRate float64
	// Crashes lists explicit crash injections on top of CrashRate.
	Crashes []FaultEvent
	// Stalls lists explicit straggler injections on top of StallRate.
	Stalls []FaultEvent
	// Drops lists explicit message losses on top of DropRate.
	Drops []DropEvent
}

// Enabled reports whether the plan can inject any fault at all.
func (p *FaultPlan) Enabled() bool {
	return p != nil && (p.CrashRate > 0 || p.DropRate > 0 || p.DupRate > 0 ||
		p.StallRate > 0 || len(p.Crashes) > 0 || len(p.Stalls) > 0 || len(p.Drops) > 0)
}

// String implements fmt.Stringer.
func (p *FaultPlan) String() string {
	if !p.Enabled() {
		return "faults(off)"
	}
	return fmt.Sprintf("faults(seed=%d crash=%g drop=%g dup=%g stall=%g explicit=%d)",
		p.Seed, p.CrashRate, p.DropRate, p.DupRate, p.StallRate,
		len(p.Crashes)+len(p.Stalls)+len(p.Drops))
}

// eventID packs a fault event into one 64-bit identity. Fields beyond the
// packed widths wrap, which only folds distinct events together (never breaks
// determinism); the widths cover every scale the simulator is used at.
func eventID(kind faultKind, round, a, b, seq int) uint64 {
	return uint64(kind)<<60 |
		(uint64(round)&0x3FFFF)<<42 |
		(uint64(a)&0x3FFF)<<28 |
		(uint64(b)&0x3FFF)<<14 |
		uint64(seq)&0x3FFF
}

// splitmix64 is the SplitMix64 finalizer — a full-avalanche 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// roll makes the deterministic fault decision for one event: it hashes the
// event identity with the pairwise-independent family h_{A,B}(x) = A·x + B
// over Z/2^64 (A odd, A and B derived from Seed), and fires iff the top 53
// bits fall below rate. Distinct events get pairwise-independent decisions;
// identical events always decide the same way.
func (p *FaultPlan) roll(kind faultKind, round, a, b, seq int, rate float64) bool {
	if p == nil || rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	s := splitmix64(uint64(p.Seed))
	mulA := splitmix64(s) | 1
	addB := splitmix64(s + 1)
	h := mulA*splitmix64(eventID(kind, round, a, b, seq)) + addB
	return float64(h>>11)/float64(1<<53) < rate
}

// CrashesAt reports whether the plan crashes machine m at round r (explicit
// injections first, then the seeded schedule).
func (p *FaultPlan) CrashesAt(round, machine int) bool {
	if p == nil {
		return false
	}
	for _, ev := range p.Crashes {
		if ev.Round == round && ev.Machine == machine {
			return true
		}
	}
	return p.roll(faultCrash, round, machine, 0, 0, p.CrashRate)
}

// StallsAt reports whether machine m straggles at round r (explicit
// injections first, then the seeded schedule).
func (p *FaultPlan) StallsAt(round, machine int) bool {
	if p == nil {
		return false
	}
	for _, ev := range p.Stalls {
		if ev.Round == round && ev.Machine == machine {
			return true
		}
	}
	return p.roll(faultStall, round, machine, 0, 0, p.StallRate)
}

// DropsMessage reports whether the seq-th message from src to dst at round r
// is lost in transit. An explicit DropEvent targets the first message of its
// (round, src, dst) edge (seq 0); the seeded schedule covers the rest.
func (p *FaultPlan) DropsMessage(round, src, dst, seq int) bool {
	if p == nil {
		return false
	}
	if seq == 0 {
		for _, ev := range p.Drops {
			if ev.Round == round && ev.Src == src && ev.Dst == dst {
				return true
			}
		}
	}
	return p.roll(faultDrop, round, src, dst, seq, p.DropRate)
}

// DupsMessage reports whether that message is duplicated in transit.
func (p *FaultPlan) DupsMessage(round, src, dst, seq int) bool {
	return p.roll(faultDup, round, src, dst, seq, p.DupRate)
}

// ParseFaultPlan builds a FaultPlan from a compact spec such as
//
//	"crash=0.02,drop=0.01,dup=0.005,stall=0.05,crash@3:1,stall@3:1,drop@5:0>2"
//
// where rate keys are crash, drop, dup and stall, and the targeted one-shot
// events are "crash@R:M" (machine M crashes at round R), "stall@R:M"
// (machine M straggles at round R) and "drop@R:S>D" (the first message from
// machine S to machine D at round R is lost in transit). seed keys the
// schedule hash. An empty spec returns a disabled (nil) plan.
func ParseFaultPlan(spec string, seed int64) (*FaultPlan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" || spec == "none" {
		return nil, nil
	}
	p := &FaultPlan{Seed: seed}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(part, "crash@"); ok {
			ev, err := parseRoundMachine(part, rest, "crash@ROUND:MACHINE")
			if err != nil {
				return nil, err
			}
			p.Crashes = append(p.Crashes, ev)
			continue
		}
		if rest, ok := strings.CutPrefix(part, "stall@"); ok {
			ev, err := parseRoundMachine(part, rest, "stall@ROUND:MACHINE")
			if err != nil {
				return nil, err
			}
			p.Stalls = append(p.Stalls, ev)
			continue
		}
		if rest, ok := strings.CutPrefix(part, "drop@"); ok {
			ev, err := parseDropEvent(part, rest)
			if err != nil {
				return nil, err
			}
			p.Drops = append(p.Drops, ev)
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("mpc: fault spec %q: want key=rate or crash@R:M", part)
		}
		rate, err := strconv.ParseFloat(strings.TrimSpace(kv[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("mpc: fault spec %q: bad rate: %v", part, err)
		}
		if rate < 0 || rate > 1 {
			return nil, fmt.Errorf("mpc: fault spec %q: rate %g out of [0,1]", part, rate)
		}
		switch strings.TrimSpace(kv[0]) {
		case "crash":
			p.CrashRate = rate
		case "drop":
			p.DropRate = rate
		case "dup":
			p.DupRate = rate
		case "stall", "straggle":
			p.StallRate = rate
		default:
			return nil, fmt.Errorf("mpc: fault spec %q: unknown key (want crash, drop, dup or stall)", part)
		}
	}
	return p, nil
}

// parseRoundMachine parses the "R:M" tail shared by crash@ and stall@.
func parseRoundMachine(part, rest, want string) (FaultEvent, error) {
	rm := strings.SplitN(rest, ":", 2)
	if len(rm) != 2 {
		return FaultEvent{}, fmt.Errorf("mpc: fault spec %q: want %s", part, want)
	}
	round, err := strconv.Atoi(rm[0])
	if err != nil {
		return FaultEvent{}, fmt.Errorf("mpc: fault spec %q: bad round: %v", part, err)
	}
	machine, err := strconv.Atoi(rm[1])
	if err != nil {
		return FaultEvent{}, fmt.Errorf("mpc: fault spec %q: bad machine: %v", part, err)
	}
	if round < 1 || machine < 0 {
		return FaultEvent{}, fmt.Errorf("mpc: fault spec %q: round < 1 or machine < 0", part)
	}
	return FaultEvent{Round: round, Machine: machine}, nil
}

// parseDropEvent parses the "R:S>D" tail of drop@.
func parseDropEvent(part, rest string) (DropEvent, error) {
	rm := strings.SplitN(rest, ":", 2)
	if len(rm) != 2 {
		return DropEvent{}, fmt.Errorf("mpc: fault spec %q: want drop@ROUND:SRC>DST", part)
	}
	round, err := strconv.Atoi(rm[0])
	if err != nil {
		return DropEvent{}, fmt.Errorf("mpc: fault spec %q: bad round: %v", part, err)
	}
	sd := strings.SplitN(rm[1], ">", 2)
	if len(sd) != 2 {
		return DropEvent{}, fmt.Errorf("mpc: fault spec %q: want drop@ROUND:SRC>DST", part)
	}
	src, err := strconv.Atoi(sd[0])
	if err != nil {
		return DropEvent{}, fmt.Errorf("mpc: fault spec %q: bad source machine: %v", part, err)
	}
	dst, err := strconv.Atoi(sd[1])
	if err != nil {
		return DropEvent{}, fmt.Errorf("mpc: fault spec %q: bad destination machine: %v", part, err)
	}
	if round < 1 || src < 0 || dst < 0 {
		return DropEvent{}, fmt.Errorf("mpc: fault spec %q: round < 1 or machine < 0", part)
	}
	return DropEvent{Round: round, Src: src, Dst: dst}, nil
}

// MachineError is a panic from one machine's step function, recovered at the
// superstep barrier so a single machine's bug surfaces as a structured error
// instead of taking down the whole simulated cluster. The failed superstep
// delivers nothing.
type MachineError struct {
	// Machine is the panicking machine (the lowest id when several panic in
	// the same superstep).
	Machine int
	// Round is the 1-based superstep at which the panic occurred.
	Round int
	// Panic is the recovered panic value.
	Panic any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error implements error.
func (e *MachineError) Error() string {
	return fmt.Sprintf("mpc: machine %d panicked in round %d: %v", e.Machine, e.Round, e.Panic)
}
