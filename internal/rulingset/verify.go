package rulingset

import (
	"fmt"

	"github.com/rulingset/mprs/internal/graph"
)

// IsIndependent reports whether members form an independent set in g.
func IsIndependent(g *graph.Graph, members []int32) bool {
	in := make([]bool, g.N())
	for _, v := range members {
		if v < 0 || int(v) >= g.N() {
			return false
		}
		in[v] = true
	}
	for _, v := range members {
		for _, u := range g.Neighbors(int(v)) {
			if in[u] {
				return false
			}
		}
	}
	return true
}

// RulingRadius returns the smallest β such that every vertex of g is within
// β hops of members, or -1 if some vertex is unreachable (including the case
// of an empty member list on a non-empty graph).
func RulingRadius(g *graph.Graph, members []int32) int {
	if g.N() == 0 {
		return 0
	}
	dist := g.BFSFrom(members)
	radius := 0
	for _, d := range dist {
		if d < 0 {
			return -1
		}
		if int(d) > radius {
			radius = int(d)
		}
	}
	return radius
}

// IsRulingSet reports whether members form a β-ruling set of g: independent
// and dominating within β hops.
func IsRulingSet(g *graph.Graph, members []int32, beta int) bool {
	if !IsIndependent(g, members) {
		return false
	}
	r := RulingRadius(g, members)
	return r >= 0 && r <= beta
}

// Check validates a Result against its graph, confirming independence and
// the advertised domination radius. It returns a descriptive error on the
// first violated property.
func Check(g *graph.Graph, r Result) error {
	if !IsIndependent(g, r.Members) {
		return fmt.Errorf("rulingset: output of %d members is not independent", len(r.Members))
	}
	radius := RulingRadius(g, r.Members)
	if radius < 0 {
		return fmt.Errorf("rulingset: output does not dominate the graph")
	}
	if radius > r.Beta {
		return fmt.Errorf("rulingset: domination radius %d exceeds advertised beta %d", radius, r.Beta)
	}
	return nil
}
