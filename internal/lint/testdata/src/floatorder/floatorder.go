// Package floatorder is a negative fixture for the floatorder analyzer.
package floatorder

// compound accumulates with += inside a map range: flagged.
func compound(m map[int]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation inside a map range`
	}
	return sum
}

// rebind accumulates with s = s + v: flagged.
func rebind(m map[int]float64) float64 {
	s := 0.0
	for _, v := range m {
		s = s + v // want `float accumulation inside a map range`
	}
	return s
}

// product accumulates a product: flagged (FP multiplication rounds too).
func product(m map[int]float64) float64 {
	p := 1.0
	for _, v := range m {
		p *= v // want `float accumulation inside a map range`
	}
	return p
}

// intSum accumulates integers: exact, order-free, never flagged.
func intSum(m map[int]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// sliceSum accumulates floats over a slice: deterministic order, not flagged.
func sliceSum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// outside accumulates after the range body closed: not flagged.
func outside(m map[int]float64) float64 {
	n := 0
	for range m {
		n++
	}
	s := 0.0
	s += float64(n)
	return s
}
