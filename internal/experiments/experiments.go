// Package experiments implements the paper reproduction's evaluation plan
// (DESIGN.md §3): one entry per table/figure, each producing renderable
// tables, ASCII figures, and shape notes recording whether the measurement
// matches the theory's prediction. The same entries back both the
// cmd/mprs-experiments binary and the root bench_test.go harness.
//
// The reproduced paper is a brief announcement with no evaluation section,
// so these experiments are the synthetic evaluation DESIGN.md defines: every
// experiment states the qualitative shape its theorem forces, and the Notes
// of each report record whether the run exhibited it.
package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"github.com/rulingset/mprs/internal/gen"
	"github.com/rulingset/mprs/internal/graph"
	"github.com/rulingset/mprs/internal/metrics"
	"github.com/rulingset/mprs/internal/mpc"
	"github.com/rulingset/mprs/internal/rulingset"
)

// Config controls experiment scale.
type Config struct {
	// Quick shrinks instance sizes for CI-speed runs.
	Quick bool
	// Seed drives workload generation and randomized algorithms.
	Seed int64
}

// Figure is a titled set of series rendered as an ASCII plot.
type Figure struct {
	Title  string
	Series []metrics.Series
}

// Report is one experiment's output.
type Report struct {
	ID      string
	Title   string
	Tables  []*metrics.Table
	Figures []Figure
	Notes   []string
}

// Render writes the report (tables, figures, notes) as text.
func (r Report) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n\n", r.ID, r.Title); err != nil {
		return err
	}
	for _, t := range r.Tables {
		if err := t.Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	for _, f := range r.Figures {
		if err := metrics.Plot(w, f.Title, 60, 12, f.Series...); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

type runner func(cfg Config) (Report, error)

var _registry = []struct {
	id  string
	fn  runner
	doc string
}{
	{id: "T1", fn: T1RoundsVsN, doc: "MPC rounds vs n for all algorithms"},
	{id: "T2", fn: T2Families, doc: "rounds vs Δ across graph families"},
	{id: "T3", fn: T3ChunkSize, doc: "seed-search cost vs chunk width z"},
	{id: "T4", fn: T4Quality, doc: "determinism and set quality vs greedy"},
	{id: "T5", fn: T5ModelCompliance, doc: "memory/bandwidth budgets per regime"},
	{id: "T6", fn: T6Estimator, doc: "conditional-expectation guarantee check"},
	{id: "T7", fn: T7Parallelism, doc: "simulator wall-clock vs machine count"},
	{id: "T8", fn: T8CliqueVsMPC, doc: "congested clique vs MPC round structure"},
	{id: "F1", fn: F1Sparsification, doc: "per-phase sparsification collapse"},
	{id: "F2", fn: F2BetaTradeoff, doc: "β vs rounds/bandwidth/residual size"},
	{id: "F3", fn: F3AdaptiveRadius, doc: "adaptive radius vs memory budget"},
	{id: "A1", fn: A1SeedPolicy, doc: "ablation: seed search vs random/zero seeds"},
	{id: "A2", fn: A2BenefitCap, doc: "ablation: estimator neighborhood cap"},
	{id: "A3", fn: A3AlphaWeight, doc: "ablation: estimator cost weight"},
	{id: "A4", fn: A4LubyThresholds, doc: "ablation: Luby marking family"},
	{id: "R1", fn: R1FaultRecovery, doc: "fault injection: output invariance + recovery overhead"},
	{id: "R2", fn: R2DurableResume, doc: "durable checkpoints: resume invariance + overhead shape"},
	{id: "O1", fn: O1CommunicationSkew, doc: "observability: per-phase communication skew vs budget"},
}

// IDs returns all experiment ids in canonical order.
func IDs() []string {
	out := make([]string, len(_registry))
	for i, e := range _registry {
		out[i] = e.id
	}
	return out
}

// Describe returns the one-line description of an experiment id.
func Describe(id string) string {
	for _, e := range _registry {
		if e.id == id {
			return e.doc
		}
	}
	return ""
}

// Run executes one experiment by id.
func Run(id string, cfg Config) (Report, error) {
	for _, e := range _registry {
		if e.id == id {
			return e.fn(cfg)
		}
	}
	return Report{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
}

// RunAll executes every experiment, rendering each to w as it completes.
func RunAll(cfg Config, w io.Writer) error {
	for _, e := range _registry {
		rep, err := e.fn(cfg)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", e.id, err)
		}
		if err := rep.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// mustGNP builds a G(n, p) workload with average degree avg.
func mustGNP(n int, avg float64, seed int64) *graph.Graph {
	p := math.Min(1, avg/float64(n-1))
	return gen.MustBuild(fmt.Sprintf("gnp:n=%d,p=%g", n, p), seed)
}

// T1RoundsVsN measures MPC rounds and phase counts against n for the four
// MPC algorithms on G(n, 16/n). The theory's quantities are the phase
// counts: Θ(log n) Luby iterations versus Θ(log log Δ) sparsification phases
// (near-flat here, since Δ barely moves with n at fixed average degree).
// Rounds are reported alongside; the deterministic variants' rounds carry
// the seed-search factor ⌈seedbits/z⌉ per phase, so the chunk width is
// scaled as z = Θ(log n), the near-linear-memory regime's natural choice
// (2^z candidate evaluations still fit one machine).
func T1RoundsVsN(cfg Config) (Report, error) {
	sizes := []int{1024, 2048, 4096, 8192}
	if cfg.Quick {
		sizes = []int{512, 1024, 2048}
	}
	algos := []struct {
		name string
		run  func(*graph.Graph, rulingset.Options) (rulingset.Result, error)
	}{
		{name: "LubyMIS", run: rulingset.LubyMIS},
		{name: "DetLubyMIS", run: rulingset.DetLubyMIS},
		{name: "RandRuling2", run: rulingset.RandRuling2},
		{name: "DetRuling2", run: rulingset.DetRuling2},
	}
	table := metrics.NewTable("T1: rounds (phases) vs n — G(n, 16/n), 8 machines, z=⌈log₂n⌉/2",
		"n", "Δ", "LubyMIS", "DetLubyMIS", "RandRuling2", "DetRuling2")
	series := make([]metrics.Series, len(algos))
	for i, a := range algos {
		series[i].Name = a.name
	}
	var lubyPhases, det2Phases []int
	for _, n := range sizes {
		g := mustGNP(n, 16, cfg.Seed)
		z := bitsLen(n) / 2
		if z < 4 {
			z = 4
		}
		row := []any{n, g.MaxDegree()}
		for i, a := range algos {
			res, err := a.run(g, rulingset.Options{Seed: cfg.Seed, ChunkBits: z})
			if err != nil {
				return Report{}, err
			}
			if err := rulingset.Check(g, res); err != nil {
				return Report{}, fmt.Errorf("%s on n=%d: %w", a.name, n, err)
			}
			row = append(row, fmt.Sprintf("%d (%d)", res.Stats.Rounds, len(res.Phases)))
			series[i].X = append(series[i].X, math.Log2(float64(n)))
			series[i].Y = append(series[i].Y, float64(res.Stats.Rounds))
			switch a.name {
			case "LubyMIS":
				lubyPhases = append(lubyPhases, len(res.Phases))
			case "DetRuling2":
				det2Phases = append(det2Phases, len(res.Phases))
			}
		}
		table.AddRow(row...)
	}
	rep := Report{
		ID:      "T1",
		Title:   "MPC rounds vs n",
		Tables:  []*metrics.Table{table},
		Figures: []Figure{{Title: "T1: rounds vs log2(n)", Series: series}},
	}
	last := len(sizes) - 1
	lubyGrowth := lubyPhases[last] - lubyPhases[0]
	det2Growth := det2Phases[last] - det2Phases[0]
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("shape: over a %dx size range Luby iterations grew by %d while DetRuling2 phases grew by %d (prediction: log n growth vs log log Δ near-flat: %v)",
			sizes[last]/sizes[0], lubyGrowth, det2Growth, det2Growth <= 1 && det2Growth <= lubyGrowth))
	return rep, nil
}

func bitsLen(n int) int {
	b := 0
	for n > 0 {
		b++
		n >>= 1
	}
	return b
}

// T2Families measures the sparsify loop across structurally different graph
// families at comparable n. Predicted shape: the phase count tracks
// len(schedule(Δ)) ≈ log log Δ regardless of family or n.
func T2Families(cfg Config) (Report, error) {
	n := 4096
	if cfg.Quick {
		n = 1024
	}
	specs := []string{
		fmt.Sprintf("gnp:n=%d,p=%g", n, 8/float64(n)),
		fmt.Sprintf("powerlaw:n=%d,gamma=2.5,avg=8", n),
		fmt.Sprintf("regular:n=%d,d=8", n),
		fmt.Sprintf("grid:rows=%d,cols=64,wrap=true", n/64),
		fmt.Sprintf("tree:n=%d", n),
		fmt.Sprintf("star:n=%d", n),
		fmt.Sprintf("caterpillar:spine=%d,legs=7", n/8),
		fmt.Sprintf("rmat:scale=%d,ef=8", bitsLen(n)-1),
	}
	table := metrics.NewTable("T2: families (DetRuling2 vs RandRuling2, z=4)",
		"family", "n", "Δ", "loglogΔ", "phases", "det rounds", "rand rounds", "det size", "rand size")
	allMatch := true
	for _, spec := range specs {
		g := gen.MustBuild(spec, cfg.Seed)
		det, err := rulingset.DetRuling2(g, rulingset.Options{ChunkBits: 4})
		if err != nil {
			return Report{}, fmt.Errorf("%s: %w", spec, err)
		}
		rnd, err := rulingset.RandRuling2(g, rulingset.Options{Seed: cfg.Seed})
		if err != nil {
			return Report{}, err
		}
		for _, res := range []rulingset.Result{det, rnd} {
			if err := rulingset.Check(g, res); err != nil {
				return Report{}, fmt.Errorf("%s: %w", spec, err)
			}
		}
		delta := g.MaxDegree()
		loglog := 0.0
		if delta >= 2 {
			loglog = math.Log2(math.Max(1, math.Log2(float64(delta))))
		}
		if float64(len(det.Phases)) > 2*loglog+3 {
			allMatch = false
		}
		sp, err := gen.ParseSpec(spec)
		if err != nil {
			return Report{}, err
		}
		table.AddRow(sp.Family, g.N(), delta, loglog, len(det.Phases),
			det.Stats.Rounds, rnd.Stats.Rounds, len(det.Members), len(rnd.Members))
	}
	return Report{
		ID:     "T2",
		Title:  "rounds vs Δ across graph families",
		Tables: []*metrics.Table{table},
		Notes: []string{fmt.Sprintf(
			"shape: phase count bounded by 2·loglogΔ+3 on every family: %v", allMatch)},
	}, nil
}

// T3ChunkSize measures the derandomizer's chunk-width tradeoff on a fixed
// graph. Predicted shape: seed-search steps fall like seedbits/z (hyperbola)
// while the per-chunk collective payload (and local work) grows like 2^z.
func T3ChunkSize(cfg Config) (Report, error) {
	n := 2048
	if cfg.Quick {
		n = 512
	}
	g := mustGNP(n, 8, cfg.Seed)
	zs := []int{1, 2, 4, 8, 12}
	table := metrics.NewTable("T3: chunk width tradeoff (DetRuling2)",
		"z", "seed steps", "rounds", "peak recv words", "wall ms", "members")
	var steps []float64
	for _, z := range zs {
		start := time.Now()
		res, err := rulingset.DetRuling2(g, rulingset.Options{ChunkBits: z})
		if err != nil {
			return Report{}, err
		}
		wall := time.Since(start)
		if err := rulingset.Check(g, res); err != nil {
			return Report{}, err
		}
		total := 0
		for _, ps := range res.Phases {
			total += ps.SeedSteps
		}
		steps = append(steps, float64(total))
		table.AddRow(z, total, res.Stats.Rounds, res.Stats.PeakRecv,
			float64(wall.Microseconds())/1000, len(res.Members))
	}
	monotone := true
	for i := 1; i < len(steps); i++ {
		if steps[i] > steps[i-1] {
			monotone = false
		}
	}
	return Report{
		ID:     "T3",
		Title:  "seed-search cost vs chunk width",
		Tables: []*metrics.Table{table},
		Figures: []Figure{{
			Title: "T3: seed steps vs z",
			Series: []metrics.Series{{
				Name: "steps",
				X:    []float64{1, 2, 4, 8, 12},
				Y:    steps,
			}},
		}},
		Notes: []string{fmt.Sprintf("shape: seed steps non-increasing in z: %v", monotone)},
	}, nil
}

// T4Quality measures output quality (ruling-set size vs greedy MIS) and
// verifies bit-for-bit determinism of the deterministic algorithms across
// machine counts. Predicted shape: all sizes within a small constant of
// greedy; deterministic outputs identical.
func T4Quality(cfg Config) (Report, error) {
	n := 4096
	if cfg.Quick {
		n = 1024
	}
	workloads := []string{
		fmt.Sprintf("gnp:n=%d,p=%g", n, 8/float64(n)),
		fmt.Sprintf("powerlaw:n=%d,gamma=2.5,avg=8", n),
		fmt.Sprintf("grid:rows=%d,cols=64", n/64),
	}
	table := metrics.NewTable("T4: quality and determinism",
		"workload", "greedy MIS", "LubyMIS", "DetLubyMIS", "RandRuling2", "DetRuling2", "det identical across M")
	allIdentical := true
	for _, spec := range workloads {
		g := gen.MustBuild(spec, cfg.Seed)
		oracle := len(rulingset.GreedyMIS(g))
		luby, err := rulingset.LubyMIS(g, rulingset.Options{Seed: cfg.Seed})
		if err != nil {
			return Report{}, err
		}
		detLuby, err := rulingset.DetLubyMIS(g, rulingset.Options{ChunkBits: 4})
		if err != nil {
			return Report{}, err
		}
		rnd, err := rulingset.RandRuling2(g, rulingset.Options{Seed: cfg.Seed})
		if err != nil {
			return Report{}, err
		}
		det4, err := rulingset.DetRuling2(g, rulingset.Options{Machines: 4, ChunkBits: 4})
		if err != nil {
			return Report{}, err
		}
		det9, err := rulingset.DetRuling2(g, rulingset.Options{Machines: 9, ChunkBits: 4})
		if err != nil {
			return Report{}, err
		}
		identical := len(det4.Members) == len(det9.Members)
		if identical {
			for i := range det4.Members {
				if det4.Members[i] != det9.Members[i] {
					identical = false
					break
				}
			}
		}
		allIdentical = allIdentical && identical
		sp, err := gen.ParseSpec(spec)
		if err != nil {
			return Report{}, err
		}
		table.AddRow(sp.Family, oracle, len(luby.Members), len(detLuby.Members),
			len(rnd.Members), len(det4.Members), identical)
	}
	return Report{
		ID:     "T4",
		Title:  "determinism and quality",
		Tables: []*metrics.Table{table},
		Notes: []string{fmt.Sprintf(
			"shape: deterministic outputs identical across machine counts on every workload: %v", allIdentical)},
	}, nil
}

// T5ModelCompliance measures budget compliance per memory regime. Predicted
// shape: the near-linear regime admits the whole algorithm with zero
// violations; the sublinear regime flags the residual gather (this algorithm
// family genuinely needs Θ(n) memory on one machine, which is why the
// paper's sublinear-regime algorithms are a separate contribution).
func T5ModelCompliance(cfg Config) (Report, error) {
	n := 4096
	if cfg.Quick {
		n = 1024
	}
	g := mustGNP(n, 8, cfg.Seed)
	table := metrics.NewTable("T5: model compliance (RandRuling2, 8 machines)",
		"regime", "budget S", "peak resident", "peak recv", "violations")
	type regimeCase struct {
		name string
		opts rulingset.Options
	}
	cases := []regimeCase{
		{name: "linear", opts: rulingset.Options{Regime: mpc.RegimeLinear, Seed: cfg.Seed}},
		{name: "sublinear e=0.7", opts: rulingset.Options{Regime: mpc.RegimeSublinear, Epsilon: 0.7, Seed: cfg.Seed}},
		{name: "sublinear e=0.5", opts: rulingset.Options{Regime: mpc.RegimeSublinear, Epsilon: 0.5, Seed: cfg.Seed}},
	}
	var linearOK, sublinearFlagged bool
	for _, rc := range cases {
		res, err := rulingset.RandRuling2(g, rc.opts)
		if err != nil {
			return Report{}, err
		}
		budget := 4 * n
		if rc.opts.Regime == mpc.RegimeSublinear {
			budget = int(math.Ceil(math.Pow(float64(n), rc.opts.Epsilon)))
		}
		table.AddRow(rc.name, budget, res.Stats.PeakResident, res.Stats.PeakRecv, len(res.Stats.Violations))
		if rc.name == "linear" {
			linearOK = len(res.Stats.Violations) == 0
		} else {
			sublinearFlagged = sublinearFlagged || len(res.Stats.Violations) > 0
		}
	}
	return Report{
		ID:     "T5",
		Title:  "memory/bandwidth budget compliance",
		Tables: []*metrics.Table{table},
		Notes: []string{
			fmt.Sprintf("shape: linear regime has zero violations: %v", linearOK),
			fmt.Sprintf("shape: sublinear regime flags the linear-memory residual gather: %v", sublinearFlagged),
		},
	}, nil
}

// T6Estimator verifies the derandomization guarantee on every phase of both
// deterministic algorithms: the realized estimator value of the chosen seed
// must be at least as good as the unconditioned expectation. Predicted
// shape: 100% of phases satisfy it — this is a certainty, not a tail bound.
func T6Estimator(cfg Config) (Report, error) {
	n := 2048
	if cfg.Quick {
		n = 512
	}
	g := mustGNP(n, 12, cfg.Seed)
	table := metrics.NewTable("T6: conditional-expectation guarantee",
		"algorithm", "phase", "E[Φ] initial", "Φ realized", "good side")
	total, good := 0, 0
	det2, err := rulingset.DetRuling2(g, rulingset.Options{ChunkBits: 4})
	if err != nil {
		return Report{}, err
	}
	for _, ps := range det2.Phases {
		ok := ps.EstimatorFinal <= ps.EstimatorInitial+1e-6
		total++
		if ok {
			good++
		}
		table.AddRow("DetRuling2 (min)", ps.Phase, ps.EstimatorInitial, ps.EstimatorFinal, ok)
	}
	detLuby, err := rulingset.DetLubyMIS(g, rulingset.Options{ChunkBits: 4})
	if err != nil {
		return Report{}, err
	}
	for _, ps := range detLuby.Phases {
		if ps.SeedSteps == 0 {
			continue
		}
		ok := ps.EstimatorFinal >= ps.EstimatorInitial-1e-6
		total++
		if ok {
			good++
		}
		table.AddRow("DetLubyMIS (max)", ps.Phase, ps.EstimatorInitial, ps.EstimatorFinal, ok)
	}
	return Report{
		ID:     "T6",
		Title:  "derandomization guarantee",
		Tables: []*metrics.Table{table},
		Notes: []string{fmt.Sprintf(
			"shape: %d/%d phases on the good side of the expectation (prediction: all)", good, total)},
	}, nil
}

// T7Parallelism measures the simulator's wall-clock scaling with machine
// count (machine compute runs in parallel goroutines). Predicted shape:
// throughput improves with machines until barrier overhead dominates.
func T7Parallelism(cfg Config) (Report, error) {
	n := 4096
	if cfg.Quick {
		n = 1024
	}
	g := mustGNP(n, 12, cfg.Seed)
	machines := []int{1, 2, 4, 8, 16}
	table := metrics.NewTable("T7: simulator parallelism (DetRuling2, z=6)",
		"machines", "wall ms", "speedup vs M=1", "rounds")
	var base float64
	var speedups []float64
	for _, m := range machines {
		start := time.Now()
		res, err := rulingset.DetRuling2(g, rulingset.Options{Machines: m, ChunkBits: 6})
		if err != nil {
			return Report{}, err
		}
		wall := float64(time.Since(start).Microseconds()) / 1000
		if m == 1 {
			base = wall
		}
		speedup := base / wall
		speedups = append(speedups, speedup)
		table.AddRow(m, wall, speedup, res.Stats.Rounds)
	}
	return Report{
		ID:     "T7",
		Title:  "wall-clock scaling with goroutine parallelism",
		Tables: []*metrics.Table{table},
		Notes: []string{fmt.Sprintf(
			"shape: best observed speedup %.2fx (host-dependent; prediction: > 1 on multicore hosts)",
			maxFloat(speedups))},
	}, nil
}

// F1Sparsification traces the sample-and-sparsify collapse phase by phase.
// Predicted shape: the count of high-degree active vertices collapses
// (doubly-exponential probability escalation), and the candidate graph
// accumulates only O(n) edges overall — which is exactly what licenses the
// final single-machine solve.
func F1Sparsification(cfg Config) (Report, error) {
	n := 16384
	if cfg.Quick {
		n = 2048
	}
	g := mustGNP(n, 32, cfg.Seed)
	det, err := rulingset.DetRuling2(g, rulingset.Options{ChunkBits: 4})
	if err != nil {
		return Report{}, err
	}
	rnd, err := rulingset.RandRuling2(g, rulingset.Options{Seed: cfg.Seed})
	if err != nil {
		return Report{}, err
	}
	table := metrics.NewTable("F1: per-phase sparsification (DetRuling2)",
		"phase", "p=2^-j", "active before", "active after", "highdeg before", "marked", "cand edges", "active edges")
	candTotal := 0
	var detSeries, rndSeries metrics.Series
	detSeries.Name = "det active"
	rndSeries.Name = "rand active"
	for _, ps := range det.Phases {
		table.AddRow(ps.Phase, fmt.Sprintf("2^-%d", ps.J), ps.ActiveBefore, ps.ActiveAfter,
			ps.HighDegBefore, ps.Marked, ps.CandidateEdges, ps.ActiveEdges)
		candTotal += ps.CandidateEdges
		detSeries.X = append(detSeries.X, float64(ps.Phase))
		detSeries.Y = append(detSeries.Y, math.Log2(float64(ps.ActiveAfter+1)))
	}
	for _, ps := range rnd.Phases {
		rndSeries.X = append(rndSeries.X, float64(ps.Phase))
		rndSeries.Y = append(rndSeries.Y, math.Log2(float64(ps.ActiveAfter+1)))
	}
	return Report{
		ID:     "F1",
		Title:  "sparsification collapse",
		Tables: []*metrics.Table{table},
		Figures: []Figure{{
			Title:  "F1: log2(active) vs phase",
			Series: []metrics.Series{detSeries, rndSeries},
		}},
		Notes: []string{
			fmt.Sprintf("shape: candidate-internal edges total %d vs n=%d (prediction: O(n)): %v",
				candTotal, n, candTotal <= 4*n),
			fmt.Sprintf("shape: residual instance n=%d m=%d fits one machine's Θ(n) budget: %v",
				det.ResidualN, det.ResidualM, det.ResidualM <= 4*n),
		},
	}, nil
}

// F2BetaTradeoff measures the radius-for-resources tradeoff of β-ruling
// sets. Predicted shape: as β grows, total bandwidth and the residual
// instance shrink while the verified radius stays ≤ β.
func F2BetaTradeoff(cfg Config) (Report, error) {
	n := 4096
	if cfg.Quick {
		n = 1024
	}
	g := mustGNP(n, 16, cfg.Seed)
	betas := []int{2, 3, 4, 5}
	table := metrics.NewTable("F2: β tradeoff (DetRulingBeta, z=4)",
		"beta", "rounds", "words", "residual n", "residual m", "members", "measured radius")
	var words []float64
	for _, beta := range betas {
		res, err := rulingset.DetRulingBeta(g, beta, rulingset.Options{ChunkBits: 4})
		if err != nil {
			return Report{}, err
		}
		if err := rulingset.Check(g, res); err != nil {
			return Report{}, fmt.Errorf("beta=%d: %w", beta, err)
		}
		radius := rulingset.RulingRadius(g, res.Members)
		table.AddRow(beta, res.Stats.Rounds, res.Stats.Words, res.ResidualN, res.ResidualM,
			len(res.Members), radius)
		words = append(words, float64(res.Stats.Words))
	}
	return Report{
		ID:     "F2",
		Title:  "β vs resources",
		Tables: []*metrics.Table{table},
		Figures: []Figure{{
			Title: "F2: total words vs beta",
			Series: []metrics.Series{{
				Name: "words",
				X:    []float64{2, 3, 4, 5},
				Y:    words,
			}},
		}},
		Notes: []string{"shape: measured radius ≤ β for every β (verified by Check above)"},
	}, nil
}

func maxFloat(xs []float64) float64 {
	best := math.Inf(-1)
	for _, x := range xs {
		best = math.Max(best, x)
	}
	return best
}
