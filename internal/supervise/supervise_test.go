package supervise

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/rulingset/mprs/internal/rulingset"
)

// TestMain doubles as the worker entry point: the supervisor's SelfExec
// re-executes this test binary with the WorkerEnv in the environment, and the
// worker runs before any test would.
func TestMain(m *testing.M) {
	if blob := os.Getenv(EnvSpec); blob != "" {
		var env WorkerEnv
		if err := json.Unmarshal([]byte(blob), &env); err != nil {
			os.Exit(3)
		}
		if err := WorkerMain(env, os.Stdin, os.Stdout); err != nil {
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// testSpec is the quick-tier workload every supervisor test runs: small
// enough to finish in well under a second per run, large enough to take
// dozens of supersteps so mid-run kills land inside the computation.
func testSpec(t *testing.T, algo string) JobSpec {
	t.Helper()
	return JobSpec{
		Algo:      algo,
		GraphSpec: "gnp:n=512,p=0.03",
		GenSeed:   1,
		Machines:  8,
		AlgoSeed:  1,
		ChunkBits: 8,
	}
}

// testConfig is the supervisor configuration every test starts from: a hard
// wall-clock timeout so a wedged run fails loudly instead of hanging the
// suite, and a heartbeat short enough to keep stall detection honest.
func testConfig(workers int) Config {
	return Config{
		Workers:   workers,
		Heartbeat: 3 * time.Second,
		Timeout:   60 * time.Second,
		Spawn:     SelfExec(),
	}
}

func TestJobSpecValidate(t *testing.T) {
	good := JobSpec{Algo: "det2", GraphSpec: "gnp:n=64,p=0.1", Machines: 4}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	for _, tc := range []struct {
		name string
		spec JobSpec
	}{
		{"unsupported algo", JobSpec{Algo: "detbeta", GraphSpec: "g", Machines: 4}},
		{"no graph", JobSpec{Algo: "det2", Machines: 4}},
		{"both graphs", JobSpec{Algo: "det2", GraphSpec: "g", GraphFile: "f", Machines: 4}},
		{"no machines", JobSpec{Algo: "det2", GraphSpec: "g"}},
		{"dir without k", JobSpec{Algo: "det2", GraphSpec: "g", Machines: 4, CheckpointDir: "d"}},
	} {
		if err := tc.spec.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestMultiProcEquivalence is the backend bit-identity contract: for each
// supported algorithm, the multi-process backend's Members, canonical Stats
// and trace bytes equal the in-process backend's exactly. The in-process
// reference runs on the serial step path (Parallelism 1) while the workers
// run with a parallelism-4 step pool, so the comparison spans backends AND
// parallelism levels at once.
func TestMultiProcEquivalence(t *testing.T) {
	for _, algo := range []string{"det2", "luby"} {
		t.Run(algo, func(t *testing.T) {
			dir := t.TempDir()
			inSpec := testSpec(t, algo)
			inSpec.Parallelism = 1
			inSpec.TraceFile = filepath.Join(dir, "in.trace")
			inRes, err := InProc{}.Run(inSpec)
			if err != nil {
				t.Fatalf("inproc: %v", err)
			}

			mpSpec := testSpec(t, algo)
			mpSpec.Parallelism = 4
			mpSpec.TraceFile = filepath.Join(dir, "mp.trace")
			mpRes, err := MultiProc{Config: testConfig(3)}.Run(mpSpec)
			if err != nil {
				t.Fatalf("multiproc: %v", err)
			}

			requireSameResult(t, inRes, mpRes)
			requireSameFile(t, inSpec.TraceFile, mpSpec.TraceFile)
		})
	}
}

// TestMultiProcKillRestart kills real worker processes mid-run — first a
// follower, then worker 0 (the trace writer) — and requires the restarted
// run to stay bit-identical to an uninterrupted in-process run with the same
// checkpoint cadence.
func TestMultiProcKillRestart(t *testing.T) {
	dir := t.TempDir()
	inSpec := testSpec(t, "det2")
	inSpec.CheckpointEvery = 4
	inSpec.CheckpointDir = filepath.Join(dir, "ck-in")
	inSpec.TraceFile = filepath.Join(dir, "in.trace")
	inRes, err := InProc{}.Run(inSpec)
	if err != nil {
		t.Fatalf("inproc: %v", err)
	}

	for _, tc := range []struct {
		name  string
		kills []KillAt
	}{
		{"follower", []KillAt{{Worker: 1, Round: 10}}},
		{"trace-writer", []KillAt{{Worker: 0, Round: 12}}},
		{"two-workers", []KillAt{{Worker: 1, Round: 6}, {Worker: 2, Round: 14}}},
	} {
		kills := tc.kills
		t.Run(tc.name, func(t *testing.T) {
			sub := t.TempDir()
			spec := testSpec(t, "det2")
			spec.CheckpointEvery = 4
			spec.CheckpointDir = filepath.Join(sub, "ck")
			spec.TraceFile = filepath.Join(sub, "mp.trace")

			var lifecycle bytes.Buffer
			cfg := testConfig(3)
			cfg.MaxRestarts = 2
			cfg.BackoffInitial = 20 * time.Millisecond
			cfg.KillAt = kills
			cfg.Lifecycle = &lifecycle

			res, err := Run(spec, cfg)
			if err != nil {
				t.Fatalf("multiproc with kills %v: %v\nlifecycle:\n%s", kills, err, lifecycle.String())
			}
			requireSameResult(t, inRes, res)
			requireSameFile(t, inSpec.TraceFile, spec.TraceFile)

			life := lifecycle.String()
			for _, want := range []string{`"kind":"kill"`, `"kind":"crash"`, `"kind":"backoff"`, `"kind":"restart"`, `"kind":"done"`} {
				if !strings.Contains(life, want) {
					t.Errorf("lifecycle missing %s:\n%s", want, life)
				}
			}
		})
	}
}

// TestMultiProcRestartWithoutCheckpoints: no checkpoint dir means a killed
// worker recomputes from round 1 — slower, still bit-identical.
func TestMultiProcRestartWithoutCheckpoints(t *testing.T) {
	inRes, err := InProc{}.Run(testSpec(t, "det2"))
	if err != nil {
		t.Fatalf("inproc: %v", err)
	}
	cfg := testConfig(2)
	cfg.MaxRestarts = 1
	cfg.BackoffInitial = 20 * time.Millisecond
	cfg.KillAt = []KillAt{{Worker: 1, Round: 8}}
	res, err := Run(testSpec(t, "det2"), cfg)
	if err != nil {
		t.Fatalf("multiproc: %v", err)
	}
	requireSameResult(t, inRes, res)
}

// TestMultiProcFailFast: MaxRestarts 0 aborts on the first kill with a
// structured SupervisorError carrying the committed round and harvested
// Stats from a surviving worker.
func TestMultiProcFailFast(t *testing.T) {
	cfg := testConfig(3)
	cfg.MaxRestarts = 0
	cfg.KillAt = []KillAt{{Worker: 1, Round: 10}}
	_, err := Run(testSpec(t, "det2"), cfg)
	var serr *SupervisorError
	if !errors.As(err, &serr) {
		t.Fatalf("want *SupervisorError, got %v", err)
	}
	if serr.Worker != 1 || serr.Attempts != 0 {
		t.Errorf("SupervisorError identity: %+v", serr)
	}
	if serr.CommittedRound <= 0 {
		t.Errorf("CommittedRound = %d, want > 0", serr.CommittedRound)
	}
	if serr.Stats.Rounds == 0 {
		t.Errorf("Stats not harvested from a survivor: %+v", serr.Stats)
	}
}

// TestMultiProcRestartBudgetExhausted: more kills than restarts aborts with
// the failing worker's attempt count.
func TestMultiProcRestartBudgetExhausted(t *testing.T) {
	cfg := testConfig(2)
	cfg.MaxRestarts = 1
	cfg.BackoffInitial = 20 * time.Millisecond
	cfg.KillAt = []KillAt{{Worker: 1, Round: 6}, {Worker: 1, Round: 10}}
	_, err := Run(testSpec(t, "det2"), cfg)
	var serr *SupervisorError
	if !errors.As(err, &serr) {
		t.Fatalf("want *SupervisorError, got %v", err)
	}
	if serr.Worker != 1 || serr.Attempts != 1 {
		t.Errorf("SupervisorError identity: %+v", serr)
	}
}

func TestMultiProcConfigValidation(t *testing.T) {
	if _, err := Run(testSpec(t, "det2"), Config{Workers: 0, Spawn: SelfExec()}); err == nil {
		t.Error("workers 0 accepted")
	}
	if _, err := Run(testSpec(t, "det2"), Config{Workers: 9, Spawn: SelfExec()}); err == nil {
		t.Error("more workers than machines accepted")
	}
	if _, err := Run(testSpec(t, "det2"), Config{Workers: 2}); err == nil {
		t.Error("missing Spawn accepted")
	}
}

// requireSameResult compares Members and the canonical Stats bit-for-bit.
func requireSameResult(t *testing.T, a, b rulingset.Result) {
	t.Helper()
	if !reflect.DeepEqual(a.Members, b.Members) {
		t.Fatalf("Members differ: %d vs %d entries", len(a.Members), len(b.Members))
	}
	if a.Beta != b.Beta {
		t.Fatalf("Beta differs: %d vs %d", a.Beta, b.Beta)
	}
	ca, err := json.Marshal(CanonicalStats(a.Stats))
	if err != nil {
		t.Fatal(err)
	}
	cb, err := json.Marshal(CanonicalStats(b.Stats))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca, cb) {
		t.Fatalf("canonical Stats differ:\n%s\nvs\n%s", ca, cb)
	}
}

// requireSameFile compares two files byte for byte.
func requireSameFile(t *testing.T, a, b string) {
	t.Helper()
	da, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(da) == 0 || !bytes.Equal(da, db) {
		t.Fatalf("%s and %s differ (%d vs %d bytes)", a, b, len(da), len(db))
	}
}
