//go:build unix

package buildtag

func procControl() int { return 1 }
