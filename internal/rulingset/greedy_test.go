package rulingset

import (
	"math"
	"math/rand"
	"testing"

	"github.com/rulingset/mprs/internal/gen"
	"github.com/rulingset/mprs/internal/graph"
)

func TestGreedyMISKnownGraphs(t *testing.T) {
	tests := []struct {
		name  string
		build func() (*graph.Graph, error)
		want  []int32
	}{
		{name: "path5", build: func() (*graph.Graph, error) { return gen.Path(5) }, want: []int32{0, 2, 4}},
		{name: "star6", build: func() (*graph.Graph, error) { return gen.Star(6) }, want: []int32{0}},
		{name: "complete4", build: func() (*graph.Graph, error) { return gen.Complete(4) }, want: []int32{0}},
		{name: "edgeless", build: func() (*graph.Graph, error) { return graph.New(3, nil) }, want: []int32{0, 1, 2}},
		{name: "empty", build: func() (*graph.Graph, error) { return graph.New(0, nil) }, want: nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g, err := tt.build()
			if err != nil {
				t.Fatal(err)
			}
			got := GreedyMIS(g)
			if len(got) != len(tt.want) {
				t.Fatalf("got %v, want %v", got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Fatalf("got %v, want %v", got, tt.want)
				}
			}
		})
	}
}

// maximality: an independent set is maximal iff it is a 1-ruling set.
func TestGreedyMISMaximalOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(200)
		g, err := gen.GNP(n, math.Min(1, 3/float64(n)), rng)
		if err != nil {
			t.Fatal(err)
		}
		mis := GreedyMIS(g)
		if !IsRulingSet(g, mis, 1) {
			t.Fatalf("trial %d: greedy output is not an MIS", trial)
		}
	}
}

func TestGreedyMISOrder(t *testing.T) {
	g, err := gen.Path(5)
	if err != nil {
		t.Fatal(err)
	}
	got := GreedyMISOrder(g, []int32{1, 3, 0, 2, 4})
	want := []int32{1, 3}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("got %v, want %v", got, want)
	}
	if !IsRulingSet(g, got, 1) {
		t.Fatal("ordered greedy output not maximal")
	}
}

func TestGreedyMISOrderRandomPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g, err := gen.GNP(120, 0.05, rng)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		order := rng.Perm(g.N())
		o32 := make([]int32, len(order))
		for i, v := range order {
			o32[i] = int32(v)
		}
		if got := GreedyMISOrder(g, o32); !IsRulingSet(g, got, 1) {
			t.Fatalf("trial %d: not an MIS", trial)
		}
	}
}
