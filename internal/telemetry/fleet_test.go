package telemetry

import (
	"strings"
	"testing"

	"github.com/rulingset/mprs/internal/trace"
)

func workerPayload(t *testing.T, rounds ...int) []byte {
	t.Helper()
	c := NewCollector(CollectorOptions{FlightCap: 8})
	for _, r := range rounds {
		c.Superstep(trace.Event{Round: r, Words: 10 * r})
	}
	data, err := c.Wire()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestFleetGather pins the merged view: per-worker series re-labeled with
// worker="<id>", lifecycle gauges, and fleet aggregates.
func TestFleetGather(t *testing.T) {
	f := NewFleet()
	if err := f.UpdateTelemetry(0, workerPayload(t, 1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := f.UpdateTelemetry(1, workerPayload(t, 1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	f.SetLifecycle(0, WorkerRunning, 0, 0)
	f.SetLifecycle(1, WorkerBackoff, 2, 250)
	f.SetRound(0, 2)
	f.SetRound(1, 3)
	f.SetRound(1, 1) // stale heartbeat must not move the round backwards

	m := indexPoints(f.Gather())
	// Aggregates.
	for name, want := range map[string]float64{
		"mprs_fleet_workers":         2,
		"mprs_fleet_workers_running": 1,
		"mprs_fleet_restarts_total":  2,
		"mprs_fleet_committed_round": 3,
	} {
		if got := value(t, m, name); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	// Per-worker series carry the worker label.
	words := m["mprs_words_total"]
	if len(words) != 2 {
		t.Fatalf("mprs_words_total has %d series, want 2: %+v", len(words), words)
	}
	byWorker := map[string]float64{}
	for _, p := range words {
		var w string
		for _, l := range p.Labels {
			if l.Name == "worker" {
				w = l.Value
			}
		}
		byWorker[w] = p.Value
	}
	if byWorker["0"] != 30 || byWorker["1"] != 60 {
		t.Errorf("per-worker words = %v, want 0:30 1:60", byWorker)
	}
	// Lifecycle gauges.
	var sawBackoff bool
	for _, p := range m["mprs_worker_state"] {
		if labelKey(p.Labels) == labelKey([]Label{{Name: "worker", Value: "1"}, {Name: "state", Value: WorkerBackoff}}) {
			sawBackoff = p.Value == 1
		}
	}
	if !sawBackoff {
		t.Errorf("mprs_worker_state missing worker 1 backoff series: %+v", m["mprs_worker_state"])
	}
	// The rendered exposition shows labeled series (what the CI smoke job
	// greps for).
	var b strings.Builder
	if err := WritePrometheus(&b, f.Gather()); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`mprs_words_total{worker="0"} 30`,
		`mprs_words_total{worker="1"} 60`,
		`mprs_worker_restarts_total{worker="1"} 2`,
		`mprs_fleet_committed_round 3`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("fleet exposition missing %q:\n%s", want, b.String())
		}
	}
}

// TestFleetRecent pins the supervisor-side flight source: the last heartbeat
// payload's ring, per worker.
func TestFleetRecent(t *testing.T) {
	f := NewFleet()
	if err := f.UpdateTelemetry(2, workerPayload(t, 5, 6)); err != nil {
		t.Fatal(err)
	}
	evs := f.Recent(2)
	if len(evs) != 2 || evs[1].Round != 6 {
		t.Errorf("Recent(2) = %+v", evs)
	}
	if f.Recent(99) != nil {
		t.Error("Recent of an unknown worker must be nil")
	}
}

// TestFleetUpdateTolerance pins version-skew handling: a bad payload is an
// error that leaves the previous snapshot in place.
func TestFleetUpdateTolerance(t *testing.T) {
	f := NewFleet()
	if err := f.UpdateTelemetry(0, workerPayload(t, 1)); err != nil {
		t.Fatal(err)
	}
	if err := f.UpdateTelemetry(0, []byte(`{"schema":"mprs-other/1"}`)); err == nil {
		t.Error("foreign schema accepted")
	}
	if err := f.UpdateTelemetry(0, []byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
	if got := value(t, indexPoints(f.Gather()), "mprs_words_total"); got != 10 {
		t.Errorf("previous snapshot lost after bad updates: words = %v, want 10", got)
	}
	// An empty-but-valid future payload (no points) keeps the old points too.
	if err := f.UpdateTelemetry(0, []byte(`{"schema":"mprs-telemetry/2"}`)); err != nil {
		t.Errorf("future empty payload rejected: %v", err)
	}
	if got := value(t, indexPoints(f.Gather()), "mprs_words_total"); got != 10 {
		t.Errorf("nil-points payload cleared the snapshot: words = %v, want 10", got)
	}
}
