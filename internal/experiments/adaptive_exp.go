package experiments

import (
	"fmt"

	"github.com/rulingset/mprs/internal/metrics"
	"github.com/rulingset/mprs/internal/rulingset"
)

// F3AdaptiveRadius measures the adaptive algorithm's radius-for-memory
// curve: the smallest β such that the residual instance fits a given
// per-machine budget. Predicted shape: β is non-increasing in the budget —
// β = 1 (an exact MIS) once the budget admits the whole input, growing one
// level at a time as the budget shrinks, with the shipped instance always
// within budget.
func F3AdaptiveRadius(cfg Config) (Report, error) {
	n := 4096
	if cfg.Quick {
		n = 1024
	}
	g := mustGNP(n, 16, cfg.Seed)
	inputWords := g.N() + 2*g.M()
	budgets := []int{inputWords * 2, inputWords / 2, inputWords / 8, inputWords / 32, inputWords / 128}
	table := metrics.NewTable(
		fmt.Sprintf("F3: adaptive radius vs residual budget (input = %d words)", inputWords),
		"budget words", "chosen beta", "residual words", "fits", "rounds", "members", "measured radius")
	var (
		betas    []float64
		budgetsF []float64
		shippeds []int
	)
	prev := 0
	monotone := true
	floor := 1 << 62 // smallest residual any run achieved: the irreducible size
	for _, budget := range budgets {
		res, err := rulingset.DetRulingAdaptive(g, rulingset.Options{ResidualBudget: budget, ChunkBits: 4})
		if err != nil {
			return Report{}, err
		}
		if err := rulingset.Check(g, res); err != nil {
			return Report{}, fmt.Errorf("budget %d: %w", budget, err)
		}
		shipped := res.ResidualN + 2*res.ResidualM
		if shipped < floor {
			floor = shipped
		}
		if res.Beta < prev {
			monotone = false
		}
		prev = res.Beta
		table.AddRow(budget, res.Beta, shipped, shipped <= budget, res.Stats.Rounds,
			len(res.Members), rulingset.RulingRadius(g, res.Members))
		betas = append(betas, float64(res.Beta))
		budgetsF = append(budgetsF, float64(budget))
		shippeds = append(shippeds, shipped)
	}
	// Sparsification cannot shrink the instance below its irreducible floor
	// (roughly the ruling set itself plus its few internal candidate edges),
	// so the fit guarantee applies to budgets at or above that floor.
	fitsAboveFloor := true
	for i, budget := range budgets {
		if budget >= floor && shippeds[i] > budget {
			fitsAboveFloor = false
		}
	}
	return Report{
		ID:     "F3",
		Title:  "adaptive radius vs memory budget",
		Tables: []*metrics.Table{table},
		Figures: []Figure{{
			Title:  "F3: beta vs budget",
			Series: []metrics.Series{{Name: "beta", X: budgetsF, Y: betas}},
		}},
		Notes: []string{
			fmt.Sprintf("shape: beta non-decreasing as the budget shrinks, starting at 1 (exact MIS): %v",
				monotone && betas[0] == 1),
			fmt.Sprintf("shape: the shipped residual fits every budget above the irreducible floor (%d words here): %v",
				floor, fitsAboveFloor),
		},
	}, nil
}
