// Command mprs runs ruling-set algorithms on generated or loaded graphs
// inside the MPC simulator and reports the model measurements.
//
// Usage:
//
//	mprs gen  -spec gnp:n=4096,p=0.004 -seed 1 -o graph.txt [-binary]
//	mprs info -spec ... | -in graph.txt
//	mprs run  -algo det2 -spec gnp:n=4096,p=0.004 [-machines 8] [-regime linear]
//	          [-epsilon 0.5] [-memory words] [-slack 16] [-chunk 8] [-algo-seed 1]
//	          [-beta 3] [-alpha 3] [-strict] [-verify]
//	          [-phases]          print the per-phase trace table
//	          [-rounds]          print the per-round communication log
//	          [-spans]           print the per-span (algorithm phase) skew table
//	          [-trace file.jsonl] write the superstep trace as JSONL (with run header)
//	          [-profile prefix]  capture CPU/heap profiles (inproc only)
//	          [-debug-addr host:port] serve live telemetry over HTTP: /metrics
//	                             (Prometheus text), /telemetry.json, expvar, pprof;
//	                             on -backend multiproc the supervisor serves the
//	                             merged per-worker fleet view
//	          [-flight-dir dir]  write mprs-flight/1 crash post-mortems (recent
//	                             supersteps of a failed run or killed worker)
//	          [-faults crash=0.02,drop=0.01,crash@3:1] [-fault-seed 1] [-checkpoint-every 4]
//	          [-checkpoint-dir dir]  persist durable checkpoints for crash-restart resume
//	          [-resume]          resume from the newest valid checkpoint in -checkpoint-dir
//	          [-checkpoint-retain k] durable checkpoints kept on disk (0 = default 3)
//	          [-members-out file] write the ruling-set member ids, one per line
//	          [-die-at N]        crash-test hook: exit with status 7 once round N commits
//	          [-chaos plan] [-chaos-seed 1] deterministic substrate fault injection
//	                             (wire:OP@round:worker, disk:OP@round:worker,
//	                             proc:OP@round:worker — see internal/chaos); inproc
//	                             accepts disk: events only
//	          [-flap-limit 3] [-max-fleet-restarts 0] [-degraded-fallback]
//	                             multiproc supervision hardening: quarantine flapping
//	                             workers, cap fleet-wide restarts, and degrade to an
//	                             in-process run instead of aborting
//	mprs -version
//
// Algorithms: luby, detluby, rand2, det2, randbeta, detbeta, randab, detab,
// clique2, cliquedet2 (congested clique), greedy.
//
// -slack widens the linear-regime budget to S = slack·n words per machine
// (0 = the simulator default of 4·n); the beta/alpha-beta algorithms at small
// quick-tier sizes typically need -slack 16.
//
// Durable checkpoints: -checkpoint-dir persists driver state through
// internal/durable (CRC-framed, atomically renamed files keyed by a canonical
// config fingerprint). A later invocation with the same configuration plus
// -resume restarts from the newest valid checkpoint and produces the same
// ruling set — and the same deterministic statistics — as an uninterrupted
// run. Only the single-cluster MPC algorithms (luby, detluby, rand2, det2)
// support durable checkpointing. An interrupt (SIGINT/SIGTERM) cancels the
// run cooperatively at the next superstep barrier with a structured error
// reporting the committed round.
//
// Diagnostics (budget violations, errors) go to stderr with a non-zero exit;
// tables and results go to stdout.
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/rulingset/mprs/internal/buildinfo"
	"github.com/rulingset/mprs/internal/chaos"
	"github.com/rulingset/mprs/internal/durable"
	"github.com/rulingset/mprs/internal/gen"
	"github.com/rulingset/mprs/internal/graph"
	"github.com/rulingset/mprs/internal/metrics"
	"github.com/rulingset/mprs/internal/mpc"
	"github.com/rulingset/mprs/internal/rulingset"
	"github.com/rulingset/mprs/internal/supervise"
	"github.com/rulingset/mprs/internal/telemetry"
	"github.com/rulingset/mprs/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mprs:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: mprs <gen|info|run> [flags] (or -version); see -h of each subcommand")
	}
	switch args[0] {
	case "-version", "--version", "version":
		fmt.Println(buildinfo.CLIVersion("mprs"))
		return nil
	case "gen":
		return cmdGen(args[1:])
	case "info":
		return cmdInfo(args[1:])
	case "run":
		return cmdRun(args[1:])
	case "worker":
		return cmdWorker(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want gen, info or run)", args[0])
	}
}

// graphSource carries the shared -spec/-in/-seed flags.
type graphSource struct {
	spec, in *string
	seed     *int64
}

// graphFlags adds the shared -spec/-in/-seed flags.
func graphFlags(fs *flag.FlagSet) graphSource {
	return graphSource{
		spec: fs.String("spec", "", "workload spec, e.g. gnp:n=4096,p=0.004"),
		in:   fs.String("in", "", "read graph from an edge-list file instead"),
		seed: fs.Int64("seed", 1, "generator seed"),
	}
}

// describe renders the input source for trace headers and table titles.
func (s graphSource) describe() string {
	if *s.spec != "" {
		return *s.spec
	}
	return "file:" + *s.in
}

func (s graphSource) load() (*graph.Graph, error) {
	switch {
	case *s.spec != "" && *s.in != "":
		return nil, fmt.Errorf("-spec and -in are mutually exclusive")
	case *s.spec != "":
		sp, err := gen.ParseSpec(*s.spec)
		if err != nil {
			return nil, err
		}
		return sp.Build(*s.seed)
	case *s.in != "":
		f, err := os.Open(*s.in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadEdgeList(f)
	default:
		return nil, fmt.Errorf("one of -spec or -in is required")
	}
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	src := graphFlags(fs)
	out := fs.String("o", "", "output file (default stdout)")
	binary := fs.Bool("binary", false, "write the compact binary format instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := src.load()
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if *binary {
		return g.WriteBinary(w)
	}
	return g.WriteEdgeList(w)
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ContinueOnError)
	src := graphFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := src.load()
	if err != nil {
		return err
	}
	_, comps := g.ConnectedComponents()
	tb := metrics.NewTable("graph", "n", "m", "Δ", "avg deg", "components")
	tb.AddRow(g.N(), g.M(), g.MaxDegree(), g.AvgDegree(), comps)
	return tb.Render(os.Stdout)
}

func cmdRun(args []string) (retErr error) {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	src := graphFlags(fs)
	var (
		algo     = fs.String("algo", "det2", "luby|detluby|rand2|det2|randbeta|detbeta|randab|detab|clique2|cliquedet2|greedy")
		machines = fs.Int("machines", 8, "simulated machine count")
		regime   = fs.String("regime", "linear", "memory regime: linear|sublinear|explicit")
		epsilon  = fs.Float64("epsilon", 0.5, "sublinear memory exponent")
		memory   = fs.Int("memory", 0, "explicit per-machine budget in words")
		slack    = fs.Int("slack", 0, "linear-regime budget multiplier S = slack·n (0 = default 4)")
		chunk    = fs.Int("chunk", 8, "derandomizer chunk width z")
		algoSeed = fs.Int64("algo-seed", 1, "seed for randomized algorithms")
		par      = fs.Int("parallelism", 0, "step-execution worker pool size (0 = GOMAXPROCS, 1 = serial); results are bit-identical at every level")
		beta     = fs.Int("beta", 3, "beta for randbeta/detbeta/randab/detab")
		alpha    = fs.Int("alpha", 3, "alpha for randab/detab")
		strict   = fs.Bool("strict", false, "fail on budget violations")
		phases   = fs.Bool("phases", false, "print the per-phase trace")
		rounds   = fs.Bool("rounds", false, "print the per-round communication log")
		spans    = fs.Bool("spans", false, "print the per-span (algorithm phase) skew table")
		verify   = fs.Bool("verify", true, "verify independence and radius")

		traceFile = fs.String("trace", "", "write a deterministic JSONL superstep trace to this file")
		profile   = fs.String("profile", "", "capture CPU and heap profiles to <prefix>.cpu.pprof / <prefix>.heap.pprof")
		debugAddr = fs.String("debug-addr", "", "serve live telemetry (/metrics, /telemetry.json, expvar, pprof) on this host:port; on -backend multiproc the supervisor serves the merged fleet view")
		flightDir = fs.String("flight-dir", "", "write mprs-flight/1 crash post-mortems (the recent supersteps of a failed run or killed worker) into this directory")

		faults = fs.String("faults", "", "fault spec, e.g. crash=0.02,drop=0.01,dup=0.005,stall=0.05,crash@3:1 (empty = off)")
		fseed  = fs.Int64("fault-seed", 1, "seed for the deterministic fault schedule")
		ckpt   = fs.Int("checkpoint-every", 0, "snapshot driver state every k supersteps for crash recovery (0 = barrier recovery)")

		ckptDir    = fs.String("checkpoint-dir", "", "persist durable checkpoints to this directory (single-cluster algorithms; implies -checkpoint-every 8 when unset)")
		resume     = fs.Bool("resume", false, "resume from the newest valid checkpoint in -checkpoint-dir")
		ckptRetain = fs.Int("checkpoint-retain", 0, "durable checkpoints kept in -checkpoint-dir (0 = default 3)")
		membersOut = fs.String("members-out", "", "write the ruling-set member ids to this file, one per line")
		dieAt      = fs.Int("die-at", 0, "crash-test hook: exit with status 7 once this round commits (0 = off)")
		statsOut   = fs.String("stats-out", "", "write the canonical (run-independent) statistics as JSON to this file")

		backend     = fs.String("backend", "inproc", "execution backend: inproc|multiproc")
		workers     = fs.Int("workers", 4, "worker process count for -backend multiproc")
		heartbeat   = fs.Duration("heartbeat", 10*time.Second, "multiproc liveness deadline; a worker silent this long is killed and restarted")
		maxRestarts = fs.Int("max-restarts", 2, "multiproc per-worker restart budget (0 = fail-fast)")
		jobTimeout  = fs.Duration("job-timeout", 0, "multiproc hard wall-clock cap on the whole job (0 = none)")
		killWorker  = fs.String("kill-worker", "", "multiproc fault injection: kill worker w once its frame for round r arrives, w@r[,w@r...]")
		lifecycle   = fs.String("lifecycle-trace", "", "write the supervisor lifecycle events (starts, kills, backoffs, restarts) as JSONL to this file")

		chaosSpec        = fs.String("chaos", "", "deterministic substrate fault plan, e.g. wire:corrupt@6:1,disk:torn@8:0,proc:kill@10:1 (empty = off; inproc accepts disk: events only)")
		chaosSeed        = fs.Int64("chaos-seed", 1, "seed for the deterministic chaos schedule")
		flapLimit        = fs.Int("flap-limit", supervise.DefaultFlapLimit, "multiproc: quarantine a worker after this many consecutive crashes at one round (negative = never)")
		maxFleetRestarts = fs.Int("max-fleet-restarts", 0, "multiproc: restart budget across the whole fleet (0 = unlimited)")
		degraded         = fs.Bool("degraded-fallback", false, "multiproc: when supervision gives up, finish as a single in-process run resumed from the newest checkpoint instead of aborting (still a failing exit)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := src.load()
	if err != nil {
		return err
	}
	plan, err := mpc.ParseFaultPlan(*faults, *fseed)
	if err != nil {
		return err
	}
	chaosPlan, err := chaos.Parse(*chaosSpec, *chaosSeed)
	if err != nil {
		return err
	}
	opts := rulingset.Options{
		Machines:        *machines,
		Epsilon:         *epsilon,
		MemoryWords:     *memory,
		LinearSlack:     *slack,
		ChunkBits:       *chunk,
		Seed:            *algoSeed,
		Strict:          *strict,
		Faults:          plan,
		CheckpointEvery: *ckpt,
		Parallelism:     *par,
	}
	switch *regime {
	case "linear":
		opts.Regime = mpc.RegimeLinear
	case "sublinear":
		opts.Regime = mpc.RegimeSublinear
	case "explicit":
		opts.Regime = mpc.RegimeExplicit
	default:
		return fmt.Errorf("unknown regime %q", *regime)
	}

	if *backend == "multiproc" {
		switch {
		case *resume:
			return fmt.Errorf("-backend multiproc: -resume is owned by the supervisor (it restarts crashed workers from their checkpoints itself)")
		case *dieAt > 0:
			return fmt.Errorf("-backend multiproc: use -kill-worker w@r instead of -die-at")
		case *profile != "":
			return fmt.Errorf("-backend multiproc: -profile captures one process's CPU/heap and would miss the workers; run it on -backend inproc (-debug-addr works here: the supervisor serves the fleet view)")
		}
		ckptEvery := opts.CheckpointEvery
		if *ckptDir != "" && ckptEvery <= 0 {
			ckptEvery = defaultCheckpointEvery
		}
		spec := supervise.JobSpec{
			Algo:             *algo,
			GraphSpec:        *src.spec,
			GraphFile:        *src.in,
			GenSeed:          *src.seed,
			Machines:         *machines,
			Regime:           int(opts.Regime),
			Epsilon:          *epsilon,
			MemoryWords:      *memory,
			LinearSlack:      *slack,
			ChunkBits:        *chunk,
			AlgoSeed:         *algoSeed,
			Strict:           *strict,
			Faults:           *faults,
			FaultSeed:        *fseed,
			CheckpointEvery:  ckptEvery,
			CheckpointDir:    *ckptDir,
			CheckpointRetain: *ckptRetain,
			TraceFile:        *traceFile,
			Parallelism:      *par,
		}
		return runMultiProc(spec, multiProcFlags{
			workers:          *workers,
			heartbeat:        *heartbeat,
			maxRestarts:      *maxRestarts,
			jobTimeout:       *jobTimeout,
			killWorker:       *killWorker,
			lifecycle:        *lifecycle,
			debugAddr:        *debugAddr,
			flightDir:        *flightDir,
			chaos:            chaosPlan,
			flapLimit:        *flapLimit,
			maxFleetRestarts: *maxFleetRestarts,
			degradedFallback: *degraded,
		}, runReport{
			algo:       *algo,
			title:      fmt.Sprintf("%s on %v (%d machines, %s regime, %d workers)", *algo, g, *machines, *regime, *workers),
			g:          g,
			phases:     *phases,
			rounds:     *rounds,
			spans:      *spans,
			verify:     *verify,
			membersOut: *membersOut,
			statsOut:   *statsOut,
			faults:     plan,
		})
	} else if *backend != "inproc" {
		return fmt.Errorf("unknown backend %q (want inproc or multiproc)", *backend)
	}

	// The in-process backend has no wire or worker processes to attack: only
	// disk: chaos events (against worker 0's store, the only store) apply.
	if chaosPlan.Enabled() && (chaosPlan.HasWire() || len(chaosPlan.Proc) > 0 || chaosPlan.MaxWorker() > 0) {
		return fmt.Errorf("-chaos: backend inproc accepts disk: events for worker 0 only (wire: and proc: need -backend multiproc)")
	}
	if chaosPlan.HasDisk(0) && *ckptDir == "" {
		return fmt.Errorf("-chaos: disk: events need -checkpoint-dir (they attack the durable checkpoint store)")
	}

	// Cooperative cancellation: an interrupt cancels the run at the next
	// superstep barrier with a structured error naming the committed round
	// (instead of killing the process mid-write).
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	opts.Context = ctx

	// Durable checkpointing. Resolve the store — and, with -resume, the
	// checkpoint to restart from — before the tracer is composed, so the
	// trace header can record the resume round and the JSONL sink can splice
	// (a resumed trace carries only post-resume events; concatenating it onto
	// the interrupted run's trace reconstructs the uninterrupted stream).
	var store *durable.Store
	resumedFrom := 0
	if *resume && *ckptDir == "" {
		return fmt.Errorf("-resume requires -checkpoint-dir")
	}
	if *ckptDir != "" {
		if !durableAlgos[*algo] {
			return fmt.Errorf("-checkpoint-dir: algorithm %q does not support durable checkpointing (single-cluster only: luby, detluby, rand2, det2)", *algo)
		}
		if opts.CheckpointEvery <= 0 {
			opts.CheckpointEvery = defaultCheckpointEvery
		}
		fp := runFingerprint(*algo, src.describe(), *src.seed, opts, *faults, *fseed)
		// Chaos disk events (if any) interpose at the durable.FS seam; the
		// in-process run is "worker 0, attempt 0" of the chaos schedule.
		store, err = durable.OpenFS(*ckptDir, fp, *ckptRetain, chaos.NewDiskFS(chaosPlan, 0, 0))
		if err != nil {
			return err
		}
		store.SetBuildStamp(buildStamp())
		opts.CheckpointSink = store
		if *resume {
			meta, state, err := store.LoadLatest()
			if err != nil {
				return err
			}
			opts.Resume = &mpc.ResumeState{Round: meta.Round, State: state}
			resumedFrom = meta.Round
			fmt.Fprintf(os.Stderr, "resuming from durable checkpoint at round %d in %s\n", meta.Round, store.Dir())
		}
	}

	// Compose the tracer: an optional JSONL file sink plus an optional live
	// view for the debug endpoint. Both observe the same committed supersteps.
	var sinks trace.Multi
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			return err
		}
		tr := trace.NewJSONL(f)
		machines := *machines
		if *algo == "clique2" || *algo == "cliquedet2" {
			machines = g.N() // the clique simulates one machine per vertex
		}
		if err := tr.WriteHeader(trace.Header{
			Algo:        *algo,
			Spec:        src.describe(),
			Seed:        *algoSeed,
			Machines:    machines,
			Build:       buildStamp(),
			ResumedFrom: resumedFrom,
		}); err != nil {
			f.Close()
			return fmt.Errorf("trace %s: %w", *traceFile, err)
		}
		if resumedFrom > 0 {
			// Replayed rounds were already traced by the interrupted run;
			// emit only what happens after the resume point.
			sinks = append(sinks, trace.FromRound{Sink: tr, After: resumedFrom})
		} else {
			sinks = append(sinks, tr)
		}
		defer func() {
			if err := tr.Close(); err != nil && retErr == nil {
				retErr = fmt.Errorf("trace %s: %w", *traceFile, err)
			}
		}()
	}
	if *dieAt > 0 {
		sinks = append(sinks, dieAtSink{round: *dieAt})
	}
	// Telemetry is observer-only: the collector feeds the -debug-addr
	// endpoints and the -flight-dir post-mortem, and the run's deterministic
	// outputs (members, canonical stats, trace and checkpoint bytes) are
	// bit-identical with or without it — pinned by test.
	var col *telemetry.Collector
	if *debugAddr != "" || *flightDir != "" {
		col = telemetry.NewCollector(telemetry.CollectorOptions{})
		sinks = append(sinks, col)
		if opts.CheckpointSink != nil {
			opts.CheckpointSink = col.WrapCheckpointSink(opts.CheckpointSink)
		}
	}
	if *flightDir != "" {
		dir := *flightDir
		defer func() {
			if retErr == nil {
				return // flights are post-mortems; successful runs leave none
			}
			evs := col.Recent()
			round := 0
			if len(evs) > 0 {
				round = evs[len(evs)-1].Round
			}
			if _, err := telemetry.WriteFlightFile(dir, telemetry.FlightHeader{
				Worker: -1, Round: round, Kind: "error", Reason: retErr.Error(),
				Algo: *algo, Spec: src.describe(),
			}, evs); err != nil {
				fmt.Fprintf(os.Stderr, "mprs: flight recorder: %v\n", err)
			}
		}()
	}
	if *debugAddr != "" {
		live := trace.NewLive()
		sinks = append(sinks, live)
		ln, err := startDebugServer(*debugAddr, live, col)
		if err != nil {
			return err
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "debug server on http://%s/metrics (also /telemetry.json, /debug/vars, /debug/pprof/)\n", ln.Addr())
	}
	if len(sinks) > 0 {
		opts.Tracer = sinks
	}
	if *profile != "" {
		stop, err := startProfiles(*profile)
		if err != nil {
			return err
		}
		defer func() {
			if err := stop(); err != nil && retErr == nil {
				retErr = err
			}
		}()
	}

	if *algo == "greedy" {
		start := time.Now()
		mis := rulingset.GreedyMIS(g)
		fmt.Printf("greedy MIS: %d members in %v\n", len(mis), time.Since(start))
		return writeMembers(*membersOut, mis)
	}
	if *algo == "clique2" || *algo == "cliquedet2" {
		return runClique(g, *algo, opts, *verify, *spans, *membersOut, *statsOut)
	}

	start := time.Now()
	var res rulingset.Result
	switch *algo {
	case "luby":
		res, err = rulingset.LubyMIS(g, opts)
	case "detluby":
		res, err = rulingset.DetLubyMIS(g, opts)
	case "rand2":
		res, err = rulingset.RandRuling2(g, opts)
	case "det2":
		res, err = rulingset.DetRuling2(g, opts)
	case "randbeta":
		res, err = rulingset.RandRulingBeta(g, *beta, opts)
	case "detbeta":
		res, err = rulingset.DetRulingBeta(g, *beta, opts)
	case "randab":
		res, err = rulingset.RandRulingAlphaBeta(g, *alpha, *beta, opts)
	case "detab":
		res, err = rulingset.DetRulingAlphaBeta(g, *alpha, *beta, opts)
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	if err != nil {
		return err
	}
	return reportResult(runReport{
		algo:        *algo,
		title:       fmt.Sprintf("%s on %v (%d machines, %s regime)", *algo, g, *machines, *regime),
		g:           g,
		res:         res,
		wall:        time.Since(start),
		phases:      *phases,
		rounds:      *rounds,
		spans:       *spans,
		verify:      *verify,
		membersOut:  *membersOut,
		statsOut:    *statsOut,
		faults:      opts.Faults,
		store:       store,
		resumedFrom: resumedFrom,
	})
}

// durableAlgos are the -algo values that accept -checkpoint-dir/-resume: the
// single-cluster MPC drivers, whose whole state is the per-machine word
// arrays a durable checkpoint captures. The multi-cluster and clique drivers
// reject durable options (see rulingset.Options).
var durableAlgos = map[string]bool{
	"luby": true, "detluby": true, "rand2": true, "det2": true,
}

// defaultCheckpointEvery is the checkpoint cadence -checkpoint-dir implies
// when -checkpoint-every is unset.
const defaultCheckpointEvery = 8

// runFingerprint renders the canonical run-configuration string stamped into
// every durable checkpoint. Resume refuses a checkpoint whose fingerprint
// differs — replaying a different configuration would silently break the
// bit-identity contract. Every knob that feeds the deterministic replay is
// included; observability flags (-trace, -phases, …) are not.
func runFingerprint(algo, spec string, genSeed int64, o rulingset.Options, faults string, fseed int64) string {
	return fmt.Sprintf("mprs-run/1 algo=%s spec=%s gen-seed=%d machines=%d regime=%d epsilon=%g memory=%d slack=%d chunk=%d algo-seed=%d strict=%t faults=%s fault-seed=%d checkpoint-every=%d",
		algo, spec, genSeed, o.Machines, o.Regime, o.Epsilon, o.MemoryWords,
		o.LinearSlack, o.ChunkBits, o.Seed, o.Strict, faults, fseed, o.CheckpointEvery)
}

// dieAtSink is the -die-at crash-test hook: a tracer that kills the process
// with exit status 7 once the given round commits. Because durable
// checkpoints are persisted (fsync + atomic rename) at the barrier before a
// round executes, every checkpoint on disk is complete when the exit fires —
// exactly the state a real mid-run crash leaves behind. The resume
// integration test and the CI resume-smoke job drive this flag.
type dieAtSink struct{ round int }

// Superstep implements trace.Tracer.
func (d dieAtSink) Superstep(ev trace.Event) {
	if ev.Round >= d.round {
		fmt.Fprintf(os.Stderr, "mprs: -die-at %d: simulated crash at round %d\n", d.round, ev.Round)
		os.Exit(7)
	}
}

// writeMembers writes the ruling-set member ids one per line, a format
// byte-diffable across runs (ascending order is part of the Result contract).
// An empty path is a no-op so call sites stay unconditional.
func writeMembers(path string, members []int32) error {
	if path == "" {
		return nil
	}
	var b []byte
	for _, v := range members {
		b = fmt.Appendf(b, "%d\n", v)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("members-out: %w", err)
	}
	return nil
}

// renderSpans prints the per-span (algorithm phase) aggregate table.
func renderSpans(spans []mpc.SpanStat) error {
	st := metrics.NewTable("span skew", "span", "rounds", "messages", "words", "max sent", "max recv", "gini sent", "gini recv")
	for _, sp := range spans {
		st.AddRow(sp.Span, sp.Rounds, sp.Messages, sp.Words, sp.MaxSent, sp.MaxRecv, sp.GiniSent, sp.GiniRecv)
	}
	fmt.Println()
	return st.Render(os.Stdout)
}

// buildStamp renders the binary's build info for trace headers. The stamp is
// a pure function of the binary, so it never breaks trace byte-determinism
// across runs of the same build.
func buildStamp() json.RawMessage {
	data, err := json.Marshal(buildinfo.Get())
	if err != nil {
		return nil
	}
	return data
}

// liveState is the expvar indirection: expvar.Publish panics on duplicate
// names, so the published Func closes over an atomic pointer that each run
// (re)points at its live view. Tests exercising multiple runs in one process
// stay safe.
var (
	liveState   atomic.Pointer[trace.Live]
	publishOnce sync.Once
)

// startDebugServer exposes the live run state over HTTP: Prometheus metrics
// under /metrics and the JSON snapshot under /telemetry.json (from g), expvar
// — including the "mprs" variable with the tracer's current round/span/
// counters — under /debug/vars, and net/http/pprof under /debug/pprof/. live
// may be nil (multiproc: the fleet gatherer carries the state instead). It
// returns the bound listener so callers can report the address (and tests can
// use port 0). Each run gets a fresh mux, so repeated runs in one process
// never fight over global handler registration.
func startDebugServer(addr string, live *trace.Live, g telemetry.Gatherer) (net.Listener, error) {
	liveState.Store(live)
	publishOnce.Do(func() {
		expvar.Publish("mprs", expvar.Func(func() any {
			if l := liveState.Load(); l != nil {
				return l.Snapshot()
			}
			return nil
		}))
	})
	mux := telemetry.Handler(g)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go http.Serve(ln, mux) //nolint — lifetime is the process; Close unblocks it
	return ln, nil
}

// startProfiles begins a CPU profile and returns a stop function that also
// captures a heap profile — the CLI's file-based -profile capture.
func startProfiles(prefix string) (func() error, error) {
	cf, err := os.Create(prefix + ".cpu.pprof")
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(cf); err != nil {
		cf.Close()
		return nil, err
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := cf.Close(); err != nil {
			return err
		}
		hf, err := os.Create(prefix + ".heap.pprof")
		if err != nil {
			return err
		}
		if err := pprof.WriteHeapProfile(hf); err != nil {
			hf.Close()
			return err
		}
		return hf.Close()
	}, nil
}

// runClique executes the congested-clique algorithms, which carry their own
// model statistics.
func runClique(g *graph.Graph, algo string, opts rulingset.Options, verify, spans bool, membersOut, statsOut string) error {
	start := time.Now()
	var (
		res rulingset.CliqueResult
		err error
	)
	if algo == "clique2" {
		res, err = rulingset.CliqueRandRuling2(g, opts)
	} else {
		res, err = rulingset.CliqueDetRuling2(g, opts)
	}
	if err != nil {
		return err
	}
	wall := time.Since(start)
	tb := metrics.NewTable(fmt.Sprintf("%s on %v (congested clique, %d nodes)", algo, g, g.N()),
		"members", "beta", "rounds", "messages", "words", "peak recv", "skew sent", "gini sent", "violations", "wall")
	tb.AddRow(len(res.Members), res.Beta, res.Stats.Rounds, res.Stats.Messages,
		res.Stats.Words, res.Stats.PeakRecv, res.Stats.SkewSent, res.Stats.GiniSent,
		len(res.Stats.Violations), wall.String())
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}
	if err := writeMembers(membersOut, res.Members); err != nil {
		return err
	}
	if err := writeCliqueStatsOut(statsOut, res.Stats); err != nil {
		return err
	}
	if spans && len(res.Stats.Spans) > 0 {
		if err := renderSpans(res.Stats.Spans); err != nil {
			return err
		}
	}
	if verify {
		if !rulingset.IsRulingSet(g, res.Members, res.Beta) {
			return fmt.Errorf("verification failed")
		}
		fmt.Printf("verified: independent, radius <= %d\n", res.Beta)
	}
	if opts.Faults.Enabled() {
		ft := metrics.NewTable(fmt.Sprintf("recovery under %s", opts.Faults),
			"recovered crashes", "recovery rounds", "replayed words", "dropped", "duplicated", "stall rounds")
		ft.AddRow(res.Stats.RecoveredCrashes, res.Stats.RecoveryRounds, res.Stats.ReplayedWords,
			res.Stats.DroppedMessages, res.Stats.DupMessages, res.Stats.StallRounds)
		fmt.Println()
		if err := ft.Render(os.Stdout); err != nil {
			return err
		}
	}
	if n := len(res.Stats.Violations); n > 0 {
		for _, v := range res.Stats.Violations {
			fmt.Fprintf(os.Stderr, "budget violation: %s\n", v)
		}
		return fmt.Errorf("%d budget violation(s); first: %s", n, res.Stats.Violations[0])
	}
	return nil
}
