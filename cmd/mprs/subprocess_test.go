package main

import (
	"context"
	"os/exec"
	"testing"
	"time"
)

// subprocTimeout is the hard wall-clock cap on every subprocess a test
// launches: far beyond any quick-tier run, tight enough that a wedged child
// fails the test instead of hanging the suite until the go test timeout.
const subprocTimeout = 60 * time.Second

// hardenedCommand builds an exec.Cmd for a test subprocess with the full
// runaway protection kit: a context deadline, its own process group so
// cleanup reaches grandchildren (a killed mprs supervisor must not leak its
// workers), a group-wide SIGKILL as the cancel action, a WaitDelay so Wait
// cannot block forever on inherited pipes, and a t.Cleanup group kill as the
// last line of defense.
func hardenedCommand(t *testing.T, bin string, args ...string) *exec.Cmd {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), subprocTimeout)
	t.Cleanup(cancel)
	cmd := exec.CommandContext(ctx, bin, args...)
	setTestProcGroup(cmd)
	cmd.Cancel = func() error {
		killTestProcGroup(cmd)
		return nil
	}
	cmd.WaitDelay = 5 * time.Second
	t.Cleanup(func() { killTestProcGroup(cmd) })
	return cmd
}
