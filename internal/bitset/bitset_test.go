package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if s.Count() != 0 {
		t.Fatalf("new set not empty")
	}
	s.Add(0)
	s.Add(64)
	s.Add(129)
	if s.Count() != 3 {
		t.Fatalf("count = %d, want 3", s.Count())
	}
	for _, i := range []int{0, 64, 129} {
		if !s.Contains(i) {
			t.Errorf("missing %d", i)
		}
	}
	if s.Contains(1) || s.Contains(128) {
		t.Errorf("contains spurious elements")
	}
	s.Remove(64)
	if s.Contains(64) || s.Count() != 2 {
		t.Errorf("remove failed")
	}
}

func TestOutOfRangeIgnored(t *testing.T) {
	s := New(10)
	s.Add(-1)
	s.Add(10)
	s.Add(1000)
	if s.Count() != 0 {
		t.Fatalf("out-of-range adds must be ignored")
	}
	if s.Contains(-1) || s.Contains(10) {
		t.Fatalf("out-of-range contains must be false")
	}
	s.Remove(-1) // must not panic
	s.Remove(99)
}

func TestFillAndClear(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 100, 128} {
		s := New(n)
		s.Fill()
		if s.Count() != n {
			t.Errorf("n=%d: fill count = %d", n, s.Count())
		}
		s.ForEach(func(i int) bool {
			if i < 0 || i >= n {
				t.Errorf("n=%d: iterated out-of-range %d", n, i)
			}
			return true
		})
		s.Clear()
		if s.Count() != 0 {
			t.Errorf("n=%d: clear count = %d", n, s.Count())
		}
	}
}

func TestSetAlgebra(t *testing.T) {
	a := New(100)
	b := New(100)
	for i := 0; i < 100; i += 2 {
		a.Add(i)
	}
	for i := 0; i < 100; i += 3 {
		b.Add(i)
	}
	u := a.Clone()
	u.Union(b)
	inter := a.Clone()
	inter.Intersect(b)
	diff := a.Clone()
	diff.Subtract(b)
	for i := 0; i < 100; i++ {
		even, third := i%2 == 0, i%3 == 0
		if u.Contains(i) != (even || third) {
			t.Errorf("union wrong at %d", i)
		}
		if inter.Contains(i) != (even && third) {
			t.Errorf("intersect wrong at %d", i)
		}
		if diff.Contains(i) != (even && !third) {
			t.Errorf("subtract wrong at %d", i)
		}
	}
}

func TestEqualAndClone(t *testing.T) {
	a := New(50)
	a.Add(7)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatalf("clone not equal")
	}
	b.Add(8)
	if a.Equal(b) {
		t.Fatalf("mutated clone still equal")
	}
	if a.Equal(New(51)) {
		t.Fatalf("different capacities must not be equal")
	}
}

func TestElementsSortedAndComplete(t *testing.T) {
	check := func(raw []uint16) bool {
		s := New(1 << 16)
		want := make(map[int]bool)
		for _, r := range raw {
			s.Add(int(r))
			want[int(r)] = true
		}
		got := s.Elements()
		if len(got) != len(want) {
			return false
		}
		for i, e := range got {
			if !want[e] {
				return false
			}
			if i > 0 && got[i-1] >= e {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := New(100)
	for i := 0; i < 100; i++ {
		s.Add(i)
	}
	visited := 0
	s.ForEach(func(i int) bool {
		visited++
		return visited < 5
	})
	if visited != 5 {
		t.Fatalf("early stop visited %d, want 5", visited)
	}
}

func TestUnionDeMorganProperty(t *testing.T) {
	// |A ∪ B| + |A ∩ B| == |A| + |B| for random sets.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Add(i)
			}
			if rng.Intn(2) == 0 {
				b.Add(i)
			}
		}
		u := a.Clone()
		u.Union(b)
		in := a.Clone()
		in.Intersect(b)
		if u.Count()+in.Count() != a.Count()+b.Count() {
			t.Fatalf("trial %d: inclusion-exclusion violated", trial)
		}
	}
}

func TestZeroValue(t *testing.T) {
	var s Set
	if s.Count() != 0 || s.Len() != 0 {
		t.Fatalf("zero value must be empty")
	}
	s.Add(0) // ignored, must not panic
	if s.Contains(0) {
		t.Fatalf("zero value must stay empty")
	}
}

func TestPackUnpackRange(t *testing.T) {
	s := New(200)
	for _, i := range []int{0, 1, 63, 64, 65, 100, 131, 199} {
		s.Add(i)
	}
	for _, r := range [][2]int{{0, 200}, {0, 64}, {60, 70}, {64, 128}, {131, 132}, {199, 200}, {50, 50}} {
		lo, hi := r[0], r[1]
		packed := s.PackRange(lo, hi)
		dst := New(200)
		dst.Fill() // unpack must overwrite, not merge
		dst.UnpackRange(lo, hi, packed)
		for i := 0; i < 200; i++ {
			want := s.Contains(i)
			if i < lo || i >= hi {
				want = true // outside the range: untouched (still filled)
			}
			if dst.Contains(i) != want {
				t.Fatalf("range [%d,%d): index %d = %v, want %v", lo, hi, i, dst.Contains(i), want)
			}
		}
	}
	// Clamping: out-of-range bounds never panic.
	if got := s.PackRange(-5, 500); len(got) != (200+63)/64 {
		t.Fatalf("clamped pack length = %d", len(got))
	}
	s.UnpackRange(-5, 500, nil) // clears everything
	if s.Count() != 0 {
		t.Fatalf("unpack with empty payload left %d bits", s.Count())
	}
}
