package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// annotation is one parsed //detlint:ok directive. It suppresses findings of
// the listed analyzers on its own line and on the line directly below it —
// the two places a human reads it as referring to.
type annotation struct {
	line      int
	analyzers []string
	reason    string
}

const annPrefix = "//detlint:ok"

// parseAnnotations extracts the //detlint:ok directives of one file and
// validates them. Malformed directives (no analyzers, unknown analyzer name,
// missing “-- reason” justification) become diagnostics under the reserved
// analyzer name "detlint"; those diagnostics are themselves unsuppressible,
// so annotation misuse always fails the run.
func parseAnnotations(fset *token.FileSet, f *ast.File, relPos func(token.Pos) token.Position) ([]annotation, []Diagnostic) {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	var anns []annotation
	var diags []Diagnostic
	report := func(pos token.Pos, msg string) {
		diags = append(diags, Diagnostic{Pos: relPos(pos), Analyzer: "detlint", Message: msg})
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, annPrefix) {
				continue
			}
			body := strings.TrimPrefix(c.Text, annPrefix)
			names, reason, found := strings.Cut(body, "--")
			if !found || strings.TrimSpace(reason) == "" {
				report(c.Pos(), `detlint:ok annotation needs a written justification: //detlint:ok <analyzer> -- <reason>`)
				continue
			}
			fields := strings.FieldsFunc(names, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
			if len(fields) == 0 {
				report(c.Pos(), "detlint:ok annotation names no analyzers")
				continue
			}
			var list []string
			for _, n := range fields {
				if !known[n] {
					report(c.Pos(), "unknown analyzer \""+n+"\" in detlint:ok annotation (known: "+knownAnalyzerNames()+")")
					continue
				}
				list = append(list, n)
			}
			if len(list) == 0 {
				continue // every name was unknown; already reported
			}
			anns = append(anns, annotation{
				line:      fset.Position(c.Pos()).Line,
				analyzers: list,
				reason:    strings.TrimSpace(reason),
			})
		}
	}
	return anns, diags
}

// applySuppressions removes findings covered by an annotation in the same
// file on the same line or the line above. The reserved "detlint" analyzer
// (annotation misuse) cannot be suppressed.
func applySuppressions(diags []Diagnostic, anns map[string][]annotation) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		if d.Analyzer != "detlint" && suppressed(d, anns[d.Pos.Filename]) {
			continue
		}
		out = append(out, d)
	}
	return out
}

func suppressed(d Diagnostic, anns []annotation) bool {
	for _, a := range anns {
		if d.Pos.Line != a.line && d.Pos.Line != a.line+1 {
			continue
		}
		for _, name := range a.analyzers {
			if name == d.Analyzer {
				return true
			}
		}
	}
	return false
}
