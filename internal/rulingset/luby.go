package rulingset

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"github.com/rulingset/mprs/internal/bitset"
	"github.com/rulingset/mprs/internal/derand"
	"github.com/rulingset/mprs/internal/graph"
	"github.com/rulingset/mprs/internal/hash"
	"github.com/rulingset/mprs/internal/mpc"
)

// LubyMIS computes a maximal independent set of g with Luby's randomized
// algorithm executed on the MPC simulator: every active vertex marks itself
// with probability 1/(2·deg), conflicts resolve toward the higher
// (degree, id) endpoint, winners join the MIS and knock out their neighbors.
// Θ(log n) iterations — the classical baseline the ruling-set relaxation is
// measured against.
func LubyMIS(g *graph.Graph, o Options) (Result, error) {
	return lubyMIS(g, o, false)
}

// DetLubyMIS is the derandomized Luby baseline: marks come from a
// pairwise-independent AND-family with per-vertex exponents, and each
// iteration's seed is fixed by the method of conditional expectations
// maximizing Luby's pairwise progress bound
//
//	Ψ(seed) = Σ_{active v} deg_A(v)·( P[mark v] − Σ_{u ∈ N_A(v)} P[mark u ∧ mark v] ).
//
// The fixed seed removes at least the expected share of active edges, so the
// iteration count stays O(log m) deterministically.
func DetLubyMIS(g *graph.Graph, o Options) (Result, error) {
	return lubyMIS(g, o, true)
}

func lubyMIS(g *graph.Graph, o Options, deterministic bool) (Result, error) {
	d, o, err := distribute(g, o)
	if err != nil {
		return Result{}, err
	}
	c := d.Cluster()
	n := g.N()

	active := bitset.New(n)
	active.Fill()
	inSet := bitset.New(n)
	if err := registerCheckpoint(c, o, active, inSet); err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(o.Seed))
	var phases []PhaseStat

	remaining := n
	c.Span("sparsify") // Luby's marking iterations play the sparsify role
	for iter := 1; remaining > 0; iter++ {
		if iter > o.MaxIterations {
			return Result{}, fmt.Errorf("rulingset: luby iteration cap %d exceeded with %d active vertices", o.MaxIterations, remaining)
		}
		view, _, err := d.ExchangeActive("luby/view", active, nil)
		if err != nil {
			return Result{}, err
		}
		deg := make([]int32, n)
		joiners := bitset.New(n) // MIS joiners this iteration
		activeEdges := 0
		active.ForEach(func(v int) bool {
			deg[v] = int32(len(view[v]))
			if deg[v] == 0 {
				joiners.Add(v) // isolated in the active graph: joins unconditionally
			}
			for _, u := range view[v] {
				if int(u) > v {
					activeEdges++
				}
			}
			return true
		})
		ps := PhaseStat{
			Phase:        iter,
			ActiveBefore: remaining,
			ActiveEdges:  activeEdges,
		}

		// Share active degrees with neighbors (needed for conflict priority
		// and, in the deterministic variant, for neighbor thresholds).
		_, nbrDeg, err := d.ExchangeActive("luby/degrees", active, deg)
		if err != nil {
			return Result{}, err
		}

		maxDeg, err := c.AllReduceMaxUint("luby/maxdeg", func(x *mpc.Ctx) uint64 {
			var local uint64
			for v := x.Lo; v < x.Hi; v++ {
				if active.Contains(v) && uint64(deg[v]) > local {
					local = uint64(deg[v])
				}
			}
			return local
		})
		if err != nil {
			return Result{}, err
		}

		marks := bitset.New(n)
		if maxDeg > 0 {
			switch {
			case deterministic && o.LubyExactThresholds:
				if err := detLubyValuesMarks(c, o, active, view, nbrDeg, deg, int(maxDeg), marks, &ps); err != nil {
					return Result{}, err
				}
			case deterministic:
				if err := detLubyMarks(c, o, active, view, nbrDeg, deg, int(maxDeg), marks, &ps, rng); err != nil {
					return Result{}, err
				}
			default:
				active.ForEach(func(v int) bool {
					if deg[v] == 0 {
						return true
					}
					if rng.Float64() < math.Ldexp(1, -lubyJ(int(deg[v]))) {
						marks.Add(v)
					}
					return true
				})
			}
		}
		ps.Marked = marks.Count()

		// Conflict resolution: marked vertices exchange (id, degree); the
		// lexicographically larger (degree, id) endpoint of each marked edge
		// survives.
		mNbrs, mDegs, err := d.ExchangeActive("luby/resolve", marks, deg)
		if err != nil {
			return Result{}, err
		}
		marks.ForEach(func(v int) bool {
			wins := true
			for i, w := range mNbrs[v] {
				dw := mDegs[v][i]
				if dw > deg[v] || (dw == deg[v] && w > int32(v)) {
					wins = false
					break
				}
			}
			if wins {
				joiners.Add(v)
			}
			return true
		})

		inSet.Union(joiners)
		touched, err := d.NotifyNeighbors("luby/knockout", joiners, active)
		if err != nil {
			return Result{}, err
		}
		active.Subtract(joiners)
		active.Subtract(touched)

		counts, err := c.AllReduceSumUint("luby/active", func(x *mpc.Ctx) []uint64 {
			var local uint64
			for v := x.Lo; v < x.Hi; v++ {
				if active.Contains(v) {
					local++
				}
			}
			return []uint64{local}
		})
		if err != nil {
			return Result{}, err
		}
		remaining = int(counts[0])
		ps.ActiveAfter = remaining
		phases = append(phases, ps)
	}

	c.Span("finish")
	members := make([]int32, 0, inSet.Count())
	inSet.ForEach(func(v int) bool {
		members = append(members, int32(v))
		return true
	})
	return Result{
		Members: members,
		Beta:    1,
		Stats:   c.Stats(),
		Phases:  phases,
	}, nil
}

// lubyJ returns the marking exponent for active degree d >= 1: the smallest
// j with 2^-j <= 1/(2d).
func lubyJ(d int) int {
	return bits.Len(uint(2*d - 1))
}

// detLubyMarks runs one derandomized Luby marking step with the AND-family
// (per-vertex power-of-two probabilities), honoring Options.SeedPolicy.
func detLubyMarks(c *mpc.Cluster, o Options, active *bitset.Set, view, nbrDeg [][]int32, deg []int32, maxDeg int, marks *bitset.Set, ps *PhaseStat, rng *rand.Rand) error {
	n := active.Len()
	maxJ := lubyJ(maxDeg)
	fam, err := hash.NewBits(n, maxJ)
	if err != nil {
		return err
	}
	seed := fam.NewSeed()
	ms := newMarkState(fam, n)

	evalRange := func(lo, hi int, s *hash.Seed) float64 {
		ec := ms.ctx(s)
		var psi float64
		for v := lo; v < hi; v++ {
			if !active.Contains(v) || deg[v] == 0 {
				continue
			}
			jv := lubyJ(int(deg[v]))
			pv := ec.markProb(v, jv)
			term := pv
			if pv != 0 {
				for i, u := range view[v] {
					term -= ec.pairProb(v, int(u), jv, lubyJ(int(nbrDeg[v][i])))
				}
			}
			psi += float64(deg[v]) * term
		}
		return psi
	}

	switch o.SeedPolicy {
	case SeedConditionalExpectations:
		trace, err := derand.SelectSeed(c, seed, derand.Config{
			ChunkBits: o.ChunkBits,
			Objective: derand.Maximize,
			AlignTo:   fam.SegWidth(),
			OnChunk:   func(s *hash.Seed, _, _ int) { ms.sync(s) },
		}, func(x *mpc.Ctx, s *hash.Seed) float64 { return evalRange(x.Lo, x.Hi, s) })
		if err != nil {
			return err
		}
		ps.SeedSteps = trace.Steps
		ps.EstimatorInitial = trace.Initial
		ps.EstimatorFinal = trace.Final()
	case SeedRandomFamily, SeedZero:
		ps.EstimatorInitial = evalRange(0, n, seed)
		if o.SeedPolicy == SeedRandomFamily {
			seed.Randomize(rng)
		} else {
			seed.SetFixed(seed.Total())
		}
		if _, err := c.Broadcast("luby/seed", []uint64{0}); err != nil {
			return err
		}
		ms.sync(seed)
		ps.EstimatorFinal = evalRange(0, n, seed)
	default:
		return fmt.Errorf("rulingset: unknown seed policy %v", o.SeedPolicy)
	}

	ms.sync(seed)
	active.ForEach(func(v int) bool {
		if deg[v] > 0 && ms.marked(v, lubyJ(int(deg[v]))) {
			marks.Add(v)
		}
		return true
	})
	return nil
}

// detLubyValuesMarks is the exact-threshold ablation of the marking step: it
// draws ℓ-bit pairwise-independent uniform values H(v) and marks v iff
// H(v) < ⌊2^ℓ/(2·deg v)⌋ — marking probabilities within one part in 2^ℓ/(2d)
// of Luby's exact 1/(2d), instead of rounding down to a power of two. The
// estimator is the same Ψ, with conditional probabilities from the value
// family's digit DP (exact, but O(ℓ) per term instead of O(1): the ablation
// quantifies what the AND-family's speed costs in marking fidelity).
func detLubyValuesMarks(c *mpc.Cluster, o Options, active *bitset.Set, view, nbrDeg [][]int32, deg []int32, maxDeg int, marks *bitset.Set, ps *PhaseStat) error {
	n := active.Len()
	ell := lubyJ(maxDeg) + 2 // enough resolution for the smallest threshold
	fam, err := hash.NewValues(n, ell)
	if err != nil {
		return err
	}
	seed := fam.NewSeed()
	full := uint64(1) << uint(ell)
	threshold := func(d int32) uint64 {
		t := full / uint64(2*d)
		if t == 0 {
			t = 1
		}
		return t
	}

	eval := func(x *mpc.Ctx, s *hash.Seed) float64 {
		var psi float64
		for v := x.Lo; v < x.Hi; v++ {
			if !active.Contains(v) || deg[v] == 0 {
				continue
			}
			tv := threshold(deg[v])
			pv := fam.BelowProb(s, v, tv)
			term := pv
			if pv != 0 {
				for i, u := range view[v] {
					term -= fam.PairBelowProb(s, v, int(u), tv, threshold(nbrDeg[v][i]))
				}
			}
			psi += float64(deg[v]) * term
		}
		return psi
	}

	trace, err := derand.SelectSeed(c, seed, derand.Config{
		ChunkBits: o.ChunkBits,
		Objective: derand.Maximize,
		AlignTo:   fam.SegWidth(),
	}, eval)
	if err != nil {
		return err
	}
	active.ForEach(func(v int) bool {
		if deg[v] > 0 && fam.Value(seed, v) < threshold(deg[v]) {
			marks.Add(v)
		}
		return true
	})
	ps.SeedSteps = trace.Steps
	ps.EstimatorInitial = trace.Initial
	ps.EstimatorFinal = trace.Final()
	return nil
}
