package rulingset

import (
	"math"

	"github.com/rulingset/mprs/internal/hash"
)

// markState tracks, incrementally across conditional-expectation chunks, the
// mark distribution induced by an AND-of-linear-bits family under a
// partially fixed seed. It exploits the segment structure of the seed to
// make every conditional probability O(1):
//
//   - segments strictly before the fixed frontier are fully determined, so a
//     vertex's contribution from them collapses to an "alive" predicate
//     (every fixed segment evaluated to 1), summarized per vertex by the
//     index of its first zero segment;
//   - at most one segment is partially fixed at any time (chunks are aligned
//     to segment boundaries), and its conditional law comes from
//     hash.Family in O(1);
//   - fully free segments contribute exactly 1/2 per marginal bit and 1/4
//     per pairwise-joint bit.
//
// Mark probabilities are per-vertex: vertex v is marked with probability
// 2^-j(v), realized as the AND of the first j(v) linear bits of the shared
// stack, which keeps distinct-vertex marks pairwise independent even with
// heterogeneous probabilities.
type markState struct {
	fam *hash.Bits
	// firstZero[v] is the smallest fully-fixed segment t with X_t(v) = 0, or
	// fam.NBits() if all fixed segments evaluated to 1.
	firstZero []int32
	// fixedSegs counts fully committed segments.
	fixedSegs int
}

func newMarkState(fam *hash.Bits, n int) *markState {
	ms := &markState{
		fam:       fam,
		firstZero: make([]int32, n),
	}
	sentinel := int32(fam.NBits())
	for i := range ms.firstZero {
		ms.firstZero[i] = sentinel
	}
	return ms
}

// sync advances the fully-fixed frontier to match the committed prefix of s,
// updating the per-vertex first-zero indices for newly completed segments.
// Must be called single-threaded (the derandomizer's OnChunk hook and after
// the final commit).
func (ms *markState) sync(s *hash.Seed) {
	segW := ms.fam.SegWidth()
	newFull := s.Fixed() / segW
	if newFull > ms.fam.NBits() {
		newFull = ms.fam.NBits()
	}
	sentinel := int32(ms.fam.NBits())
	for t := ms.fixedSegs; t < newFull; t++ {
		for v := range ms.firstZero {
			if ms.firstZero[v] != sentinel {
				continue
			}
			if law := ms.fam.BitLaw(s, t, v); law.Determined && law.Value == 0 {
				ms.firstZero[v] = int32(t)
			}
		}
	}
	ms.fixedSegs = newFull
}

// evalCtx binds a markState to one concrete seed state (fixed prefix plus
// provisional chunk) with the partial segment's SegState extracted once, so
// the per-pair probabilities in estimator hot loops avoid repeated seed
// decoding. Create one per estimator evaluation with ms.ctx(s).
type evalCtx struct {
	ms         *markState
	seg        hash.SegState
	hasPartial bool
}

// ctx prepares an evaluation context for the seed state s (which may carry a
// provisional chunk inside the partial segment).
func (ms *markState) ctx(s *hash.Seed) evalCtx {
	ec := evalCtx{ms: ms, hasPartial: ms.fixedSegs < ms.fam.NBits()}
	if ec.hasPartial {
		ec.seg = ms.fam.SegState(s, ms.fixedSegs)
	}
	return ec
}

// markProb returns P[mark(v)] where mark(v) is the AND of the first j linear
// bits, conditioned on the context's seed state.
func (ec evalCtx) markProb(v, j int) float64 {
	ms := ec.ms
	full := ms.fixedSegs
	if full > j {
		full = j
	}
	if int(ms.firstZero[v]) < full {
		return 0
	}
	if ms.fixedSegs >= j {
		return 1
	}
	// Partial segment (index fixedSegs) plus fully free segments.
	p := ms.fam.P1Seg(ec.seg, v)
	return p * pow2neg(j-ms.fixedSegs-1)
}

// pairProb returns P[mark(u) ∧ mark(w)] for distinct u, w with per-vertex
// exponents ju, jw, conditioned on the context's seed state.
func (ec evalCtx) pairProb(u, w, ju, jw int) float64 {
	ms := ec.ms
	if int(ms.firstZero[u]) < minInt(ms.fixedSegs, ju) ||
		int(ms.firstZero[w]) < minInt(ms.fixedSegs, jw) {
		return 0
	}
	a, b := ju, jw
	long := w
	if a > b {
		a, b = b, a
		long = u
	}
	p := 1.0
	ps := ms.fixedSegs // partial segment index, if one exists

	// Joint head: segments [0, a). Fully fixed ones contribute 1 (both alive
	// there, checked above); the partial one needs the exact pair law; fully
	// free ones contribute 1/4 each.
	fullHead := minInt(ms.fixedSegs, a)
	partialInHead := ec.hasPartial && ps < a
	freeHead := a - fullHead
	if partialInHead {
		freeHead--
		p = ms.fam.P11Seg(ec.seg, u, w)
		if p == 0 {
			return 0
		}
	}
	p *= pow2neg(2 * freeHead)

	// Tail: segments [a, b) involve only the vertex with the larger j.
	if b > a {
		fullTail := minInt(ms.fixedSegs, b) - a
		if fullTail < 0 {
			fullTail = 0
		}
		partialInTail := ec.hasPartial && ps >= a && ps < b
		freeTail := (b - a) - fullTail
		if partialInTail {
			freeTail--
			p *= ms.fam.P1Seg(ec.seg, long)
		}
		p *= pow2neg(freeTail)
	}
	return p
}

// markProb is the convenience form used outside hot loops (and by tests).
func (ms *markState) markProb(s *hash.Seed, v, j int) float64 {
	return ms.ctx(s).markProb(v, j)
}

// pairProb is the convenience form used outside hot loops (and by tests).
func (ms *markState) pairProb(s *hash.Seed, u, w, ju, jw int) float64 {
	return ms.ctx(s).pairProb(u, w, ju, jw)
}

// _pow2neg[i] = 2^-i for the exponent range the families can produce.
var _pow2neg = func() [130]float64 {
	var t [130]float64
	for i := range t {
		t[i] = math.Ldexp(1, -i)
	}
	return t
}()

func pow2neg(i int) float64 {
	if i < len(_pow2neg) {
		return _pow2neg[i]
	}
	return math.Ldexp(1, -i)
}

// marked reports the realized mark of v under a fully fixed, synced seed.
func (ms *markState) marked(v, j int) bool {
	return int(ms.firstZero[v]) >= j
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
