package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// faultFS wraps OSFS with switchable failures at the exact seams Persist
// crosses: the manifest write (for crash-between-rename-and-manifest) and
// file Sync (for fsync failures).
type faultFS struct {
	OSFS
	failManifestWrite bool // WriteFile of MANIFEST.json.tmp errors
	tornManifestWrite bool // WriteFile of MANIFEST.json.tmp silently writes half
	failSync          bool // File.Sync errors
}

func (f *faultFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	if strings.HasPrefix(filepath.Base(name), ManifestName) {
		if f.failManifestWrite {
			return fmt.Errorf("injected: manifest write lost")
		}
		if f.tornManifestWrite {
			return f.OSFS.WriteFile(name, data[:len(data)/2], perm)
		}
	}
	return f.OSFS.WriteFile(name, data, perm)
}

func (f *faultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	file, err := f.OSFS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	if f.failSync {
		return &failSyncFile{File: file}, nil
	}
	return file, nil
}

type failSyncFile struct{ File }

func (f *failSyncFile) Sync() error { return fmt.Errorf("injected: fsync failed") }

func faultTestState(rounds int) [][]uint64 {
	st := make([][]uint64, 4)
	for m := range st {
		st[m] = []uint64{uint64(m), uint64(rounds), 0xfeedface}
	}
	return st
}

// TestTornManifestLeavesDirectoryResumable is the crash-between-checkpoint-
// rename-and-manifest-update story: the checkpoint file lands, the manifest
// update dies. The directory must stay resumable at the new checkpoint, and
// the retention GC of subsequent Persists must never delete the newest valid
// checkpoint the stale manifest does not know about.
func TestTornManifestLeavesDirectoryResumable(t *testing.T) {
	dir := t.TempDir()
	ffs := &faultFS{}
	s, err := OpenFS(dir, "fp", 2, ffs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{0, 4} {
		if _, err := s.Persist(r, faultTestState(r)); err != nil {
			t.Fatalf("persist %d: %v", r, err)
		}
	}
	// Round 8: checkpoint renamed into place, manifest update crashes.
	ffs.failManifestWrite = true
	_, err = s.Persist(8, faultTestState(8))
	if err == nil {
		t.Fatal("persist with dying manifest write must fail")
	}
	if !errors.Is(err, ErrPersist) {
		t.Errorf("manifest-write failure not classified retryable: %v", err)
	}
	if _, statErr := os.Stat(filepath.Join(dir, fileFor(8))); statErr != nil {
		t.Fatalf("checkpoint file must be installed before the manifest update: %v", statErr)
	}

	// A restarted process opens the directory: the stale manifest (rounds 0
	// and 4) must not mask the newest valid checkpoint.
	s2, err := Open(dir, "fp", 2)
	if err != nil {
		t.Fatal(err)
	}
	meta, state, err := s2.LoadLatest()
	if err != nil {
		t.Fatalf("directory not resumable after torn manifest: %v", err)
	}
	if meta.Round != 8 || state[0][1] != 8 {
		t.Fatalf("resumed round %d, want 8", meta.Round)
	}

	// Retention GC on the reopened store: its manifest view predates round 8,
	// so GC must drop only rounds it actually tracks — never ckpt-8.
	if _, err := s2.Persist(12, faultTestState(12)); err != nil {
		t.Fatalf("persist 12: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, fileFor(8))); err != nil {
		t.Fatalf("GC deleted the newest valid checkpoint from before the torn manifest: %v", err)
	}
	if meta, _, err := s2.LoadLatest(); err != nil || meta.Round != 12 {
		t.Fatalf("LoadLatest after GC: round %d, err %v", meta.Round, err)
	}
}

// TestCorruptManifestIsAdvisory: a manifest torn mid-bytes (half the JSON)
// still opens — the manifest is advisory — and the next Persist rewrites it
// whole.
func TestCorruptManifestIsAdvisory(t *testing.T) {
	dir := t.TempDir()
	ffs := &faultFS{tornManifestWrite: true}
	s, err := OpenFS(dir, "fp", 3, ffs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Persist(4, faultTestState(4)); err != nil {
		t.Fatalf("persist with silently torn manifest: %v", err)
	}
	// The installed manifest is garbage; Open must shrug and the checkpoint
	// must load.
	s2, err := Open(dir, "fp", 3)
	if err != nil {
		t.Fatalf("open over a corrupt manifest: %v", err)
	}
	if meta, _, err := s2.LoadLatest(); err != nil || meta.Round != 4 {
		t.Fatalf("LoadLatest: round %d, err %v", meta.Round, err)
	}
	if _, err := s2.Persist(8, faultTestState(8)); err != nil {
		t.Fatalf("persist after corrupt manifest: %v", err)
	}
	man, err := s2.readManifest()
	if err != nil {
		t.Fatalf("manifest not repaired by next Persist: %v", err)
	}
	if len(man.Checkpoints) == 0 || man.Checkpoints[len(man.Checkpoints)-1].Round != 8 {
		t.Fatalf("repaired manifest = %+v", man)
	}
}

// TestPersistFsyncErrorRetryable: a failing data-file fsync must surface as
// ErrPersist (retryable), leave no half-written checkpoint behind, and leave
// the previous checkpoint loadable.
func TestPersistFsyncErrorRetryable(t *testing.T) {
	dir := t.TempDir()
	ffs := &faultFS{}
	s, err := OpenFS(dir, "fp", 3, ffs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Persist(4, faultTestState(4)); err != nil {
		t.Fatal(err)
	}
	ffs.failSync = true
	_, err = s.Persist(8, faultTestState(8))
	if err == nil {
		t.Fatal("persist with failing fsync must fail")
	}
	if !errors.Is(err, ErrPersist) {
		t.Errorf("fsync failure not classified retryable: %v", err)
	}
	if _, statErr := os.Stat(filepath.Join(dir, fileFor(8))); statErr == nil {
		t.Error("failed persist installed a checkpoint file")
	}
	if _, statErr := os.Stat(filepath.Join(dir, fileFor(8)+tmpSuffix)); statErr == nil {
		t.Error("failed persist left its temp file behind")
	}
	if meta, _, err := s.LoadLatest(); err != nil || meta.Round != 4 {
		t.Fatalf("previous checkpoint lost: round %d, err %v", meta.Round, err)
	}
}

// TestParseCheckpointName pins the exported name parser fault tooling keys on.
func TestParseCheckpointName(t *testing.T) {
	tests := []struct {
		name  string
		round int
		tmp   bool
		ok    bool
	}{
		{"ckpt-0000000004.ckpt", 4, false, true},
		{"ckpt-0000000004.ckpt.tmp", 4, true, true},
		{"ckpt-0000000000.ckpt", 0, false, true},
		{"MANIFEST.json", 0, false, false},
		{"MANIFEST.json.tmp", 0, true, false},
		{"ckpt-x.ckpt", 0, false, false},
	}
	for _, tt := range tests {
		round, tmp, ok := ParseCheckpointName(tt.name)
		if round != tt.round || tmp != tt.tmp || ok != tt.ok {
			t.Errorf("ParseCheckpointName(%q) = (%d, %t, %t), want (%d, %t, %t)",
				tt.name, round, tmp, ok, tt.round, tt.tmp, tt.ok)
		}
	}
}
