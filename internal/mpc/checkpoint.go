package mpc

import (
	"errors"
	"fmt"
	"slices"
)

// Checkpointer exposes a driver's per-machine mutable state to the cluster's
// Pregel-style superstep recovery. Snapshot(m) serializes machine m's state
// into machine words; Restore(m, data) overwrites it from a snapshot. The
// cluster snapshots every Config.CheckpointEvery supersteps (charging the
// written words to Stats.CheckpointWords) and, when an injected crash aborts
// a superstep, restores the crashed machine and charges the replay distance
// back to the last checkpoint.
//
// Because machine-local computation is deterministic, replaying the
// superstep log from the last checkpoint reconstructs exactly the state the
// simulator still holds; recovery therefore drives the machine's state
// through a Snapshot/Restore round-trip (exercising both hooks — a lossy
// Snapshot or a buggy Restore corrupts the run and fails the bit-identity
// tests) while the replay's rounds and words are charged to
// Stats.RecoveryRounds and Stats.ReplayedWords.
type Checkpointer interface {
	// Snapshot returns machine m's state as machine words. The returned
	// slice must not alias live driver state.
	Snapshot(m int) []uint64
	// Restore overwrites machine m's state from a Snapshot payload.
	Restore(m int, data []uint64)
}

// FuncCheckpointer adapts two closures to the Checkpointer interface. Both
// closures are required; SetCheckpointer rejects a FuncCheckpointer with a
// nil SnapshotFn or RestoreFn up front, instead of letting the nil surface
// as a panic deep inside crash recovery.
type FuncCheckpointer struct {
	SnapshotFn func(m int) []uint64
	RestoreFn  func(m int, data []uint64)
}

// Snapshot implements Checkpointer.
func (f FuncCheckpointer) Snapshot(m int) []uint64 { return f.SnapshotFn(m) }

// Restore implements Checkpointer.
func (f FuncCheckpointer) Restore(m int, data []uint64) { f.RestoreFn(m, data) }

// incomplete returns a descriptive error when one of the closures is nil.
func (f FuncCheckpointer) incomplete() error {
	switch {
	case f.SnapshotFn == nil && f.RestoreFn == nil:
		return errors.New("mpc: FuncCheckpointer has nil SnapshotFn and RestoreFn")
	case f.SnapshotFn == nil:
		return errors.New("mpc: FuncCheckpointer has nil SnapshotFn (Snapshot would panic during recovery)")
	case f.RestoreFn == nil:
		return errors.New("mpc: FuncCheckpointer has nil RestoreFn (Restore would panic during recovery)")
	}
	return nil
}

// SetCheckpointer registers the driver state hooks used by superstep
// recovery (nil unregisters them). Checkpoints are taken only when
// Config.CheckpointEvery > 0; with no checkpointer (or CheckpointEvery == 0)
// crashes are still recovered, but from the barrier-committed state of the
// previous superstep (replay distance 1), with no state words to restore.
//
// A FuncCheckpointer (or *FuncCheckpointer) with a nil SnapshotFn or
// RestoreFn is rejected here with a descriptive error — the hooks are first
// exercised deep inside crash recovery, where a nil-function panic would be
// maximally confusing.
func (c *Cluster) SetCheckpointer(cp Checkpointer) error {
	switch f := cp.(type) {
	case FuncCheckpointer:
		if err := f.incomplete(); err != nil {
			return err
		}
	case *FuncCheckpointer:
		if f != nil {
			if err := f.incomplete(); err != nil {
				return err
			}
		}
	}
	c.ckpt = cp
	return nil
}

// CheckpointSink persists barrier snapshots durably (beyond the process
// heap, which is all the in-memory recovery path needs). Persist is called
// with the barrier round the state was captured at — the state after round
// committed supersteps — and the per-machine state words, and returns the
// bytes written. *durable.Store is the canonical implementation.
type CheckpointSink interface {
	Persist(round int, state [][]uint64) (int64, error)
}

// ResumeState is a durable checkpoint loaded before a run starts (see
// Config.Resume): the per-machine state words captured at barrier Round.
// The resuming run replays rounds 1..Round deterministically, verifies the
// replayed state against State word-for-word at the matching barrier, and
// then restores State through the Checkpointer — so a lossy durable codec or
// a diverging replay fails loudly (ErrResumeDiverged) instead of silently
// producing a different output.
type ResumeState struct {
	Round int
	State [][]uint64
}

// ErrResumeDiverged is wrapped by the error returned when a resumed run's
// deterministically replayed state does not match the durable checkpoint it
// is resuming from — the checkpoint belongs to a different input, binary or
// configuration than the fingerprint check could detect.
var ErrResumeDiverged = errors.New("mpc: replayed state diverges from durable checkpoint")

// maybeCheckpoint snapshots every machine's state at the superstep barrier
// before round executes: at round 1 (the baseline) and then every
// CheckpointEvery rounds. Written words are charged to CheckpointWords.
//
// With a Config.Sink the snapshot is also persisted durably (bytes charged
// to CheckpointBytes) — except while a resumed run is still replaying rounds
// its checkpoint directory already covers. With a Config.Resume, the barrier
// matching Resume.Round verifies and restores the durable state.
func (c *Cluster) maybeCheckpoint(round int) error {
	if c.ckpt == nil || c.cfg.CheckpointEvery <= 0 {
		return nil
	}
	if c.snapshots != nil && (round-1)%c.cfg.CheckpointEvery != 0 {
		return nil
	}
	if c.snapshots == nil {
		c.snapshots = make([][]uint64, c.cfg.Machines)
	}
	for m := range c.snapshots {
		snap := c.ckpt.Snapshot(m)
		c.snapshots[m] = snap
		c.stats.CheckpointWords += int64(len(snap))
	}
	c.ckptRound = round - 1
	if r := c.cfg.Resume; r != nil && !c.resumeApplied && c.ckptRound == r.Round {
		if err := c.applyResume(r); err != nil {
			return err
		}
	}
	if c.cfg.Sink != nil && !c.inResumeReplay() {
		n, err := c.cfg.Sink.Persist(c.ckptRound, c.snapshots)
		if err != nil {
			return fmt.Errorf("mpc: durable checkpoint at round %d: %w", c.ckptRound, err)
		}
		c.stats.CheckpointBytes += n
	}
	return nil
}

// inResumeReplay reports whether the current checkpoint barrier is still
// inside the replayed prefix of a resumed run: those checkpoints already
// exist durably, so persisting them again would double-write (and
// double-charge CheckpointBytes).
func (c *Cluster) inResumeReplay() bool {
	return c.cfg.Resume != nil && c.ckptRound <= c.cfg.Resume.Round
}

// applyResume runs at the barrier whose round matches the durable
// checkpoint: the deterministic replay of rounds 1..r.Round has just been
// snapshotted into c.snapshots, which must equal the durable state
// word-for-word. The machine state is then driven through Restore with the
// durable payload — exercising the full durable decode path, so a lossy
// codec breaks bit-identity loudly here instead of silently downstream —
// and the replay distance is recorded in Stats.ResumeReplayRounds.
func (c *Cluster) applyResume(r *ResumeState) error {
	if len(r.State) != c.cfg.Machines {
		return fmt.Errorf("%w: checkpoint has %d machines, cluster has %d",
			ErrResumeDiverged, len(r.State), c.cfg.Machines)
	}
	for m := range c.snapshots {
		if !slices.Equal(c.snapshots[m], r.State[m]) {
			return fmt.Errorf("%w: machine %d at round %d (replayed %d words, durable %d words)",
				ErrResumeDiverged, m, r.Round, len(c.snapshots[m]), len(r.State[m]))
		}
	}
	for m := range r.State {
		c.ckpt.Restore(m, slices.Clone(r.State[m]))
		c.snapshots[m] = slices.Clone(r.State[m])
	}
	c.stats.ResumeReplayRounds = r.Round
	c.resumeApplied = true
	return nil
}

// recoverCrashes restarts the machines that crashed during an aborted
// attempt of the given round: their state is restored through the
// Snapshot/Restore hooks (see Checkpointer), the replay distance back to the
// last checkpoint is charged to RecoveryRounds, and the restored state plus
// the aborted attempt's discarded traffic are charged to ReplayedWords. The
// attempt's buffered outboxes die with the attempt; only their word count
// survives, as the replay charge.
func (c *Cluster) recoverCrashes(round int, at *attempt) {
	c.stats.RecoveredCrashes += len(at.crashed)
	replay := 1
	if c.ckpt != nil && c.cfg.CheckpointEvery > 0 {
		if d := round - c.ckptRound; d > replay {
			replay = d
		}
		for _, m := range at.crashed {
			if c.snapshots != nil && c.snapshots[m] != nil {
				c.stats.ReplayedWords += int64(len(c.snapshots[m]))
			}
			c.ckpt.Restore(m, c.ckpt.Snapshot(m))
		}
	}
	c.stats.RecoveryRounds += replay
	at.chargeDiscarded(c)
}
