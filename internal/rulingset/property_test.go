package rulingset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/rulingset/mprs/internal/gen"
)

// TestPropertyRandomGraphsAllValid is the randomized end-to-end property
// check: for arbitrary (seed, density, machine count, chunk width) draws,
// every algorithm's output must verify. testing/quick drives the parameter
// space.
func TestPropertyRandomGraphsAllValid(t *testing.T) {
	check := func(seed int64, densityRaw, machinesRaw, zRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(170)
		p := math.Min(1, float64(densityRaw%50)/float64(n))
		g, err := gen.GNP(n, p, rng)
		if err != nil {
			t.Logf("gen: %v", err)
			return false
		}
		opts := Options{
			Machines:  1 + int(machinesRaw%12),
			ChunkBits: 1 + int(zRaw%10),
			Seed:      seed,
		}
		for _, a := range []struct {
			name string
			run  func() (Result, error)
		}{
			{name: "LubyMIS", run: func() (Result, error) { return LubyMIS(g, opts) }},
			{name: "DetLubyMIS", run: func() (Result, error) { return DetLubyMIS(g, opts) }},
			{name: "RandRuling2", run: func() (Result, error) { return RandRuling2(g, opts) }},
			{name: "DetRuling2", run: func() (Result, error) { return DetRuling2(g, opts) }},
			{name: "DetRulingBeta3", run: func() (Result, error) { return DetRulingBeta(g, 3, opts) }},
		} {
			res, err := a.run()
			if err != nil {
				t.Logf("%s(n=%d, p=%v, %+v): %v", a.name, n, p, opts, err)
				return false
			}
			if err := Check(g, res); err != nil {
				t.Logf("%s(n=%d, p=%v, %+v): %v", a.name, n, p, opts, err)
				return false
			}
		}
		// Clique variant on the same instance.
		cl, err := CliqueDetRuling2(g, opts)
		if err != nil || !IsRulingSet(g, cl.Members, 2) {
			t.Logf("CliqueDetRuling2(n=%d): %v", n, err)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyGuaranteeAlwaysHolds: across random instances, the realized
// estimator of every deterministic phase stays on the good side.
func TestPropertyGuaranteeAlwaysHolds(t *testing.T) {
	check := func(seed int64, zRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(250)
		g, err := gen.GNP(n, math.Min(1, 10/float64(n)), rng)
		if err != nil {
			return false
		}
		res, err := DetRuling2(g, Options{ChunkBits: 1 + int(zRaw%10)})
		if err != nil {
			return false
		}
		for _, ps := range res.Phases {
			if ps.EstimatorFinal > ps.EstimatorInitial+1e-6 {
				t.Logf("seed %d phase %d: %v > %v", seed, ps.Phase, ps.EstimatorFinal, ps.EstimatorInitial)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if testing.Short() {
		cfg.MaxCount = 6
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}
