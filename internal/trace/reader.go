package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// Schema is the trace file format version written into Header.Schema.
// Version bumps are reserved for changes that break existing readers.
const Schema = "mprs-trace/1"

// Header is the optional first line of a JSONL trace file: the run manifest
// identifying what produced the events that follow. It is distinguished from
// an Event by its "schema" field. All fields are a pure function of
// (binary, invocation), so headers preserve byte-determinism across runs of
// the same build.
type Header struct {
	// Schema is the trace format version; always Schema when written by
	// this package.
	Schema string `json:"schema"`
	// Algo and Spec identify the run: algorithm name and workload spec (or
	// input filename).
	Algo string `json:"algo,omitempty"`
	Spec string `json:"spec,omitempty"`
	// Seed is the algorithm seed of the run.
	Seed int64 `json:"seed,omitempty"`
	// Machines is the simulated machine count (0 when the producer did not
	// record it, e.g. congested-clique runs where it equals n).
	Machines int `json:"machines,omitempty"`
	// Build stamps the producing binary (module version, VCS revision, go
	// toolchain); see internal/buildinfo.
	Build json.RawMessage `json:"build,omitempty"`
	// ResumedFrom is the durable-checkpoint round a resumed run restarted
	// from (0 for a fresh run). A resumed run's trace carries only the events
	// after that round (see FromRound); splicing it after the first
	// ResumedFrom rounds of the interrupted trace reconstructs the full
	// uninterrupted event stream.
	ResumedFrom int `json:"resumed_from,omitempty"`
}

// WriteHeader writes the run-manifest header line. It must be called before
// the first Superstep; the schema field is forced to Schema.
func (t *JSONL) WriteHeader(h Header) error {
	if t.err != nil {
		return t.err
	}
	h.Schema = Schema
	data, err := json.Marshal(h)
	if err != nil {
		t.err = err
		return err
	}
	if _, err := t.bw.Write(data); err != nil {
		t.err = err
		return err
	}
	t.err = t.bw.WriteByte('\n')
	return t.err
}

// Reader is a cursor over a JSONL trace: it detects and exposes the optional
// header line, then yields one Event per Next call. It is the consuming
// counterpart of the JSONL sink, shared by traceview, bench diffing and any
// downstream analysis.
type Reader struct {
	s      *bufio.Scanner
	header Header
	hasHdr bool
	line   int
	// pending buffers a headerless first line already consumed by the
	// header sniff in NewReader, returned by the first Next.
	pending    []byte
	hasPending bool
}

// maxLineBytes bounds one trace line: per-machine slices grow linearly in
// the machine count, so congested-clique traces over large n produce long
// lines. 64 MiB admits clusters of tens of millions of machines.
const maxLineBytes = 64 << 20

// NewReader creates a cursor over r, eagerly consuming the header line if
// present. An empty input is a valid trace with zero events.
func NewReader(r io.Reader) (*Reader, error) {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64<<10), maxLineBytes)
	rd := &Reader{s: s}
	if !s.Scan() {
		if err := s.Err(); err != nil {
			return nil, err
		}
		return rd, nil // empty trace
	}
	rd.line = 1
	first := s.Bytes()
	if looksLikeHeader(first) {
		if err := json.Unmarshal(first, &rd.header); err != nil {
			return nil, fmt.Errorf("trace: line 1: bad header: %w", err)
		}
		if !strings.HasPrefix(rd.header.Schema, "mprs-trace/") {
			return nil, fmt.Errorf("trace: line 1: unsupported schema %q", rd.header.Schema)
		}
		rd.hasHdr = true
		return rd, nil
	}
	// No header: the first line is an event; hold it for the first Next.
	rd.pending = append(rd.pending, first...)
	rd.hasPending = true
	return rd, nil
}

// Header returns the trace header and whether one was present.
func (r *Reader) Header() (Header, bool) { return r.header, r.hasHdr }

// Line returns the 1-based line number of the most recently returned event
// (or header), for error reporting.
func (r *Reader) Line() int { return r.line }

// Next returns the next event, or io.EOF after the last one.
func (r *Reader) Next() (Event, error) {
	var data []byte
	if r.hasPending {
		data, r.pending, r.hasPending = r.pending, nil, false
	} else {
		if !r.s.Scan() {
			if err := r.s.Err(); err != nil {
				return Event{}, err
			}
			return Event{}, io.EOF
		}
		r.line++
		data = r.s.Bytes()
	}
	var ev Event
	if err := json.Unmarshal(data, &ev); err != nil {
		return Event{}, fmt.Errorf("trace: line %d: %w", r.line, err)
	}
	return ev, nil
}

// ReadAll consumes the whole trace: header (zero-valued when absent) and all
// events in order.
func ReadAll(r io.Reader) (Header, []Event, error) {
	rd, err := NewReader(r)
	if err != nil {
		return Header{}, nil, err
	}
	var evs []Event
	for {
		ev, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return rd.header, evs, err
		}
		evs = append(evs, ev)
	}
	h, _ := rd.Header()
	return h, evs, nil
}

// ReadFile reads the JSONL trace at path.
func ReadFile(path string) (Header, []Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, nil, err
	}
	defer f.Close() //detlint:ok errdrop -- read-only handle; no buffered writes to lose
	h, evs, err := ReadAll(f)
	if err != nil {
		return h, evs, fmt.Errorf("%s: %w", path, err)
	}
	return h, evs, nil
}

// looksLikeHeader reports whether a line is a header rather than an event:
// headers carry a "schema" key, events a "round" key, and neither format
// emits the other's discriminator.
func looksLikeHeader(line []byte) bool {
	var probe struct {
		Schema *string `json:"schema"`
	}
	if err := json.Unmarshal(line, &probe); err != nil {
		return false
	}
	return probe.Schema != nil
}
