package chaos

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"github.com/rulingset/mprs/internal/transport"
)

// frames renders a frame sequence to raw wire bytes.
func frames(t *testing.T, fs ...transport.Frame) *bytes.Reader {
	t.Helper()
	var buf bytes.Buffer
	for _, f := range fs {
		if err := transport.WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	return bytes.NewReader(buf.Bytes())
}

// readAll drains an uplink until EOF or error, returning the frames read and
// the terminal error (nil for clean EOF).
func readAll(r io.Reader) ([]transport.Frame, error) {
	var got []transport.Frame
	for {
		f, err := transport.ReadFrame(r)
		if err == io.EOF {
			return got, nil
		}
		if err != nil {
			return got, err
		}
		got = append(got, f)
	}
}

func msg(worker, round int, payload string) transport.Frame {
	return transport.Frame{Type: transport.FrameMessages, Worker: worker, Round: round, Payload: []byte(payload)}
}

func mustPlan(t *testing.T, spec string, seed int64) *Plan {
	t.Helper()
	p, err := Parse(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestUplinkPassthroughIdentity(t *testing.T) {
	// A wire with events for worker 1 must leave worker 0's uplink reader
	// untouched (same object) and worker 1's untargeted frames byte-identical.
	w := NewWire(mustPlan(t, "wire:dup@5:1", 1), nil)
	src := frames(t, msg(0, 3, "a"))
	if got := w.Uplink(0, src); got != src {
		t.Error("uplink with no events for the worker must be the source reader")
	}

	in := []transport.Frame{
		{Type: transport.FrameHello, Worker: 1, Round: 0},
		msg(1, 3, "hello"),
		{Type: transport.FrameHeartbeat, Worker: 1, Round: 3},
		{Type: transport.FrameResult, Worker: 1, Round: 9, Payload: []byte("res")},
	}
	got, err := readAll(w.Uplink(1, frames(t, in...)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(in) {
		t.Fatalf("got %d frames, want %d", len(got), len(in))
	}
	for i := range in {
		if got[i].Type != in[i].Type || got[i].Round != in[i].Round || !bytes.Equal(got[i].Payload, in[i].Payload) {
			t.Errorf("frame %d = %+v, want %+v", i, got[i], in[i])
		}
	}
}

func TestUplinkCorruptSeversWithFraming(t *testing.T) {
	w := NewWire(mustPlan(t, "wire:corrupt@5:1", 3), nil)
	got, err := readAll(w.Uplink(1, frames(t, msg(1, 4, "ok"), msg(1, 5, "target"), msg(1, 6, "after"))))
	if !errors.Is(err, transport.ErrFraming) {
		t.Fatalf("err = %v, want ErrFraming", err)
	}
	if len(got) != 1 || got[0].Round != 4 {
		t.Fatalf("frames before the fault = %+v", got)
	}
}

func TestUplinkTruncSeversWithFraming(t *testing.T) {
	w := NewWire(mustPlan(t, "wire:trunc@5:0", 11), nil)
	_, err := readAll(w.Uplink(0, frames(t, msg(0, 5, "target payload bytes"))))
	if !errors.Is(err, transport.ErrFraming) {
		t.Fatalf("err = %v, want ErrFraming", err)
	}
}

func TestUplinkDupDeliversTwice(t *testing.T) {
	w := NewWire(mustPlan(t, "wire:dup@5:1", 0), nil)
	got, err := readAll(w.Uplink(1, frames(t, msg(1, 5, "x"), msg(1, 6, "y"))))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Round != 5 || got[1].Round != 5 || got[2].Round != 6 {
		t.Fatalf("rounds = %v", roundsOf(got))
	}
	if !bytes.Equal(got[0].Payload, got[1].Payload) {
		t.Error("dup copies differ")
	}
}

func TestUplinkDelayReordersWithNextFrame(t *testing.T) {
	var notes []string
	w := NewWire(mustPlan(t, "wire:delay@5:2", 0), func(worker int, note string) {
		notes = append(notes, note)
	})
	got, err := readAll(w.Uplink(2, frames(t, msg(2, 4, "a"), msg(2, 5, "held"), msg(2, 6, "b"), msg(2, 7, "c"))))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4, 6, 5, 7}
	if rs := roundsOf(got); len(rs) != len(want) {
		t.Fatalf("rounds = %v, want %v", rs, want)
	} else {
		for i := range want {
			if rs[i] != want[i] {
				t.Fatalf("rounds = %v, want %v", rs, want)
			}
		}
	}
	if len(notes) != 1 || notes[0] != "wire:delay@5:2" {
		t.Errorf("notes = %v", notes)
	}
}

func TestUplinkDelayFlushedByTerminalFrame(t *testing.T) {
	// If no later Messages frame ever comes, the held frame must not be lost:
	// the Result frame (and EOF) flush it in order.
	w := NewWire(mustPlan(t, "wire:delay@5:0", 0), nil)
	got, err := readAll(w.Uplink(0, frames(t, msg(0, 5, "held"), transport.Frame{Type: transport.FrameResult, Worker: 0, Round: 5})))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Round != 5 || got[0].Type != transport.FrameMessages || got[1].Type != transport.FrameResult {
		t.Fatalf("frames = %+v", got)
	}
}

func TestUplinkHeartbeatDropAndGarble(t *testing.T) {
	w := NewWire(mustPlan(t, "wire:hbdrop@1:1,wire:hbgarble@2:1", 5), nil)
	hb := func(payload string) transport.Frame {
		return transport.Frame{Type: transport.FrameHeartbeat, Worker: 1, Round: 2, Payload: []byte(payload)}
	}
	got, err := readAll(w.Uplink(1, frames(t, hb(`{"telemetry":{}}`), hb(`{"telemetry":{}}`), hb(`{"telemetry":{}}`))))
	if err != nil {
		t.Fatal(err)
	}
	// First dropped, second garbled, third untouched.
	if len(got) != 2 {
		t.Fatalf("got %d heartbeats, want 2", len(got))
	}
	if _, err := transport.DecodeHeartbeat(got[0].Payload); err == nil {
		t.Error("garbled heartbeat decoded cleanly")
	}
	if _, err := transport.DecodeHeartbeat(got[1].Payload); err != nil {
		t.Errorf("untouched heartbeat: %v", err)
	}
}

func TestUplinkEventsFireOncePerRun(t *testing.T) {
	// A restarted worker replays the same rounds through a fresh uplink; the
	// shared latch must keep generation 2 clean.
	w := NewWire(mustPlan(t, "wire:corrupt@5:1", 3), nil)
	if _, err := readAll(w.Uplink(1, frames(t, msg(1, 5, "gen1")))); !errors.Is(err, transport.ErrFraming) {
		t.Fatalf("gen1 err = %v, want ErrFraming", err)
	}
	got, err := readAll(w.Uplink(1, frames(t, msg(1, 5, "gen2"))))
	if err != nil {
		t.Fatalf("gen2 err = %v, want clean replay", err)
	}
	if len(got) != 1 || string(got[0].Payload) != "gen2" {
		t.Fatalf("gen2 frames = %+v", got)
	}
}

func TestDownlinkReorderHoldsRoundUntilFuture(t *testing.T) {
	w := NewWire(mustPlan(t, "wire:reorder@5:0", 0), nil)
	d := w.Downlink(0)
	if d == nil {
		t.Fatal("no downlink for targeted worker")
	}
	if w.Downlink(1) != nil {
		t.Fatal("downlink for untargeted worker")
	}
	var buf bytes.Buffer
	// Peers' round-5 frames arrive, then a round-6 frame jumps the queue.
	for _, f := range []transport.Frame{msg(1, 5, "p1"), msg(2, 5, "p2"), msg(1, 6, "future"), msg(2, 6, "p2b")} {
		if err := d.Write(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	got, err := readAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{6, 5, 5, 6}
	rs := roundsOf(got)
	for i := range want {
		if i >= len(rs) || rs[i] != want[i] {
			t.Fatalf("rounds = %v, want %v", rs, want)
		}
	}
}

func TestDownlinkStopFlushesHeld(t *testing.T) {
	w := NewWire(mustPlan(t, "wire:reorder@5:0", 0), nil)
	d := w.Downlink(0)
	var buf bytes.Buffer
	for _, f := range []transport.Frame{msg(1, 5, "p1"), {Type: transport.FrameStop, Worker: 0}} {
		if err := d.Write(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	got, err := readAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Type != transport.FrameMessages || got[1].Type != transport.FrameStop {
		t.Fatalf("frames = %+v", got)
	}
}

func TestNilWireIsPassthrough(t *testing.T) {
	var w *Wire
	src := frames(t, msg(0, 1, "x"))
	if w.Uplink(0, src) != src {
		t.Error("nil wire uplink not identity")
	}
	var d *Downlink
	var buf bytes.Buffer
	if err := d.Write(&buf, msg(0, 1, "x")); err != nil {
		t.Fatal(err)
	}
	if got, err := readAll(&buf); err != nil || len(got) != 1 {
		t.Fatalf("nil downlink write: %v %v", got, err)
	}
	if NewWire(nil, nil) != nil {
		t.Error("NewWire(nil) != nil")
	}
	if NewWire(mustPlan(t, "disk:torn@4:0", 0), nil) != nil {
		t.Error("NewWire with no wire events != nil")
	}
}

func roundsOf(fs []transport.Frame) []int {
	rs := make([]int, len(fs))
	for i, f := range fs {
		rs[i] = f.Round
	}
	return rs
}
