// Package generics pins the analyzers' type-parameter coverage: generic
// declarations must typecheck under the stdlib-only loader, intra-procedural
// analyzers must see through generic method bodies, and the detflow engine
// must resolve explicitly instantiated calls — f[T](…) parses as a call
// whose Fun is an IndexExpr/IndexListExpr, and an unwrapping bug makes every
// such call invisible to taint propagation.
package generics

import (
	"cmp"
	"slices"
	"time"
)

// Ctx mimics the simulator context; Send is a deterministic sink.
type Ctx struct{ out []uint64 }

// Send appends to the message payload stream.
func (x *Ctx) Send(dst int, payload ...uint64) {
	_ = dst
	x.out = append(x.out, payload...)
}

// Set is a map-backed generic set.
type Set[K comparable] struct{ m map[K]bool }

// NewSet returns an empty set.
func NewSet[K comparable]() *Set[K] { return &Set[K]{m: make(map[K]bool)} }

// Add inserts k.
func (s *Set[K]) Add(k K) { s.m[k] = true }

// Items leaks map range order through a generic method body.
func (s *Set[K]) Items() []K {
	var out []K
	for k := range s.m { // want `range over map\[K\]bool: map iteration order is nondeterministic`
		out = append(out, k)
	}
	return out
}

// SortedKeys is the sanctioned generic shape: collect, then sort.
func SortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	var keys []K
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// Identity is a generic passthrough: its summary carries parameter taint to
// the return value.
func Identity[T any](v T) T { return v }

// First returns its first operand; the explicit two-parameter instantiation
// parses as an IndexListExpr.
func First[A any, B any](a A, b B) A {
	_ = b
	return a
}

// flowThroughGeneric: the wall-clock read flows through an explicitly
// instantiated generic call into the payload.
func flowThroughGeneric(x *Ctx) {
	x.Send(1, Identity[uint64](uint64(time.Now().UnixNano()))) // want `wall-clock read \(time\.Now\).*flows into the Ctx\.Send message payload`
}

// flowThroughTwoParams: same, through an IndexListExpr instantiation.
func flowThroughTwoParams(x *Ctx) {
	x.Send(2, First[uint64, int](uint64(time.Now().UnixNano()), 3)) // want `wall-clock read \(time\.Now\).*flows into the Ctx\.Send message payload`
}

// cleanGeneric: untainted data through the same generic calls.
func cleanGeneric(x *Ctx) {
	x.Send(3, Identity[uint64](42))
	x.Send(4, First[uint64, int](7, 3))
}
