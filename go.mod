module github.com/rulingset/mprs

go 1.22
