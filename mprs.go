// Package mprs is the public API of the library: deterministic massively
// parallel (MPC) algorithms for ruling sets — a from-scratch reproduction of
// "Brief Announcement: Deterministic Massively Parallel Algorithms for
// Ruling Sets" (Pai & Pemmaraju, PODC 2022) — together with the randomized
// algorithms they derandomize, the MPC simulation substrate they run on, and
// graph generators for experimentation.
//
// # Quick start
//
//	g, err := mprs.BuildGraph("gnp:n=4096,p=0.004", 1)
//	if err != nil { ... }
//	res, err := mprs.DetRulingSet2(g, mprs.Options{Machines: 8})
//	if err != nil { ... }
//	fmt.Println(len(res.Members), res.Stats.Rounds)
//	err = mprs.Check(g, res) // independence + domination radius
//
// A β-ruling set is an independent set R such that every vertex is within β
// hops of R; an MIS is a 1-ruling set. The deterministic algorithms replace
// each random sampling step with a pairwise-independent hash family whose
// seed is selected by a distributed method of conditional expectations, so
// they always produce the same output for the same input — while matching
// the randomized algorithms' round complexity shape (Θ(log log Δ)
// sparsification phases for 2-ruling sets versus Θ(log n) Luby iterations
// for MIS).
//
// Every Result carries mpc-model measurements (rounds, message words, peak
// per-machine memory, budget violations) taken by the simulator in
// internal/mpc, so the quantities the paper's theorems bound are observable
// for every run.
package mprs

import (
	"io"

	"github.com/rulingset/mprs/internal/durable"
	"github.com/rulingset/mprs/internal/gen"
	"github.com/rulingset/mprs/internal/graph"
	"github.com/rulingset/mprs/internal/mpc"
	"github.com/rulingset/mprs/internal/rulingset"
	"github.com/rulingset/mprs/internal/trace"
)

// Graph is a simple undirected graph in CSR form; see NewGraph and
// BuildGraph for construction.
type Graph = graph.Graph

// Edge is an undirected edge between two vertex ids.
type Edge = graph.Edge

// Options configures algorithm runs: simulated machine count, MPC memory
// regime, derandomization chunk width, and the seed for randomized variants.
type Options = rulingset.Options

// Result is an algorithm outcome: the ruling set, its guaranteed domination
// radius, per-phase traces, and the MPC model measurements of the run.
type Result = rulingset.Result

// PhaseStat traces one sparsification phase or Luby iteration.
type PhaseStat = rulingset.PhaseStat

// Stats aggregates MPC model measurements (rounds, words, peaks,
// violations).
type Stats = mpc.Stats

// Regime selects how the per-machine memory budget is derived.
type Regime = mpc.Regime

// FaultPlan is a seeded deterministic fault schedule (machine crashes,
// message drops/duplications, straggler stalls) for Options.Faults. Every
// injected fault is recovered at the superstep barrier, so algorithm outputs
// stay bit-identical to the fault-free run while the recovery cost is
// metered in the fault fields of Stats.
type FaultPlan = mpc.FaultPlan

// FaultEvent pins one explicit crash to a (round, machine) pair in a
// FaultPlan.
type FaultEvent = mpc.FaultEvent

// MachineError is a panic recovered from one machine's step function; runs
// surface it as a structured error instead of crashing the process.
type MachineError = mpc.MachineError

// Tracer receives one TraceEvent per committed superstep when set on
// Options.Tracer. Tracing is bit-deterministic (identical runs produce
// identical event streams) and costs nothing when no tracer is registered.
type Tracer = trace.Tracer

// TraceEvent is one superstep observation: round index, phase span,
// per-machine words sent/received, resident memory, skew metrics, and any
// recovery activity charged to the superstep.
type TraceEvent = trace.Event

// SpanStat aggregates rounds, traffic and skew per named algorithm phase
// (sparsify / seed-search / gather / finish); Stats.Spans carries one entry
// per span in order of first appearance.
type SpanStat = mpc.SpanStat

// JSONLTracer streams events as JSON Lines; see NewJSONLTrace.
type JSONLTracer = trace.JSONL

// TraceRing is a bounded in-memory sink retaining the most recent events;
// see NewTraceRing.
type TraceRing = trace.Ring

// NewJSONLTrace returns a Tracer streaming one JSON object per superstep to
// w. Close flushes and surfaces any write error.
func NewJSONLTrace(w io.Writer) *JSONLTracer { return trace.NewJSONL(w) }

// NewTraceRing returns an in-memory Tracer retaining the last n events.
func NewTraceRing(n int) *TraceRing { return trace.NewRing(n) }

// ParseFaultPlan builds a FaultPlan from a compact spec such as
// "crash=0.02,drop=0.01,dup=0.005,stall=0.05,crash@3:1"; an empty spec
// returns a disabled (nil) plan.
func ParseFaultPlan(spec string, seed int64) (*FaultPlan, error) {
	return mpc.ParseFaultPlan(spec, seed)
}

// Cooperative cancellation. Setting Options.Context makes a run check the
// context at every superstep barrier: once it is canceled or its deadline
// passes, the run stops cleanly (no goroutine leaks, no partial writes) and
// returns a CancelError wrapping the matching sentinel.
var (
	// ErrCanceled is wrapped by runs stopped through Options.Context
	// cancellation.
	ErrCanceled = mpc.ErrCanceled
	// ErrDeadline is wrapped by runs stopped by an Options.Context deadline.
	ErrDeadline = mpc.ErrDeadline
)

// CancelError is the structured error for a canceled or deadline-exceeded
// run: it carries the number of committed supersteps and the Stats up to the
// stopping barrier, and unwraps to both the sentinel (ErrCanceled or
// ErrDeadline) and the context's cause.
type CancelError = mpc.CancelError

// CheckpointSink receives the driver state at checkpoint barriers when set
// as Options.CheckpointSink (with Options.CheckpointEvery > 0). Persist
// returns the bytes durably written, accumulated into Stats.CheckpointBytes.
// DurableCheckpointer is the production implementation.
type CheckpointSink = mpc.CheckpointSink

// ResumeState restarts a run from a durable checkpoint when set as
// Options.Resume: the run deterministically replays to Round, verifies the
// replayed state word-for-word against State, and continues from there —
// producing output and deterministic Stats bit-identical to an uninterrupted
// run. Only the single-cluster algorithms (MIS/DetMIS/RulingSet2/
// DetRulingSet2) support durable checkpointing and resume.
type ResumeState = mpc.ResumeState

// DurableCheckpointer is a CheckpointSink writing schema-versioned,
// CRC-guarded checkpoint files with atomic renames and bounded retention;
// see OpenCheckpointDir.
type DurableCheckpointer = durable.Store

// CheckpointMeta is the self-description record of one durable checkpoint
// file, returned by DurableCheckpointer.LoadLatest.
type CheckpointMeta = durable.Meta

// OpenCheckpointDir opens (creating if needed) a durable checkpoint
// directory bound to a canonical run-configuration fingerprint. Use the
// returned store as Options.CheckpointSink; after a crash, LoadLatest yields
// the newest valid checkpoint (scanning past torn or corrupt files) to build
// the ResumeState for the restarted run. retain bounds the files kept on
// disk (0 = default 3). Opening a directory whose checkpoints carry a
// different fingerprint fails rather than mixing incompatible runs.
func OpenCheckpointDir(dir, fingerprint string, retain int) (*DurableCheckpointer, error) {
	return durable.Open(dir, fingerprint, retain)
}

// Memory regimes for Options.Regime.
const (
	// RegimeLinear is near-linear memory per machine (S = Θ(n)); the regime
	// of the paper's headline result. Default.
	RegimeLinear = mpc.RegimeLinear
	// RegimeSublinear is strictly sublinear memory (S = n^ε).
	RegimeSublinear = mpc.RegimeSublinear
	// RegimeExplicit uses Options.MemoryWords verbatim.
	RegimeExplicit = mpc.RegimeExplicit
)

// NewGraph builds a graph on n vertices from an edge list, rejecting
// self-loops and merging duplicate edges.
func NewGraph(n int, edges []Edge) (*Graph, error) {
	return graph.New(n, edges)
}

// BuildGraph instantiates a workload from a textual spec such as
// "gnp:n=4096,p=0.004", "powerlaw:n=10000,gamma=2.5,avg=8",
// "grid:rows=64,cols=64,wrap=true", "regular:n=1000,d=8", "tree:n=5000",
// "star:n=100", "complete:n=50", etc. Randomized families consume the seed.
func BuildGraph(spec string, seed int64) (*Graph, error) {
	s, err := gen.ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return s.Build(seed)
}

// MIS computes a maximal independent set with Luby's randomized algorithm on
// the MPC simulator (Θ(log n) iterations).
func MIS(g *Graph, o Options) (Result, error) { return rulingset.LubyMIS(g, o) }

// DetMIS computes a maximal independent set with derandomized Luby
// (pairwise-independent marks, seeds fixed by conditional expectations).
func DetMIS(g *Graph, o Options) (Result, error) { return rulingset.DetLubyMIS(g, o) }

// RulingSet2 computes a 2-ruling set with the randomized sample-and-sparsify
// algorithm (Θ(log log Δ) phases).
func RulingSet2(g *Graph, o Options) (Result, error) { return rulingset.RandRuling2(g, o) }

// DetRulingSet2 computes a 2-ruling set with the paper's deterministic
// algorithm — the library's headline entry point.
func DetRulingSet2(g *Graph, o Options) (Result, error) { return rulingset.DetRuling2(g, o) }

// RulingSet computes a β-ruling set (β >= 1) with randomized recursive
// sparsification.
func RulingSet(g *Graph, beta int, o Options) (Result, error) {
	return rulingset.RandRulingBeta(g, beta, o)
}

// DetRulingSet computes a β-ruling set (β >= 1) deterministically by
// recursive derandomized sparsification.
func DetRulingSet(g *Graph, beta int, o Options) (Result, error) {
	return rulingset.DetRulingBeta(g, beta, o)
}

// RulingSetAlphaBeta computes an (α,β)-ruling set — members pairwise at
// distance >= α, every vertex within (α−1)·β hops — via power graphs,
// randomized.
func RulingSetAlphaBeta(g *Graph, alpha, beta int, o Options) (Result, error) {
	return rulingset.RandRulingAlphaBeta(g, alpha, beta, o)
}

// DetRulingSetAlphaBeta is the deterministic (α,β)-ruling set.
func DetRulingSetAlphaBeta(g *Graph, alpha, beta int, o Options) (Result, error) {
	return rulingset.DetRulingAlphaBeta(g, alpha, beta, o)
}

// RulingSetAdaptive computes a ruling set whose radius is chosen at runtime:
// the smallest β such that the final residual instance fits the per-machine
// memory budget (Options.ResidualBudget; the cluster's S by default).
// Randomized variant.
func RulingSetAdaptive(g *Graph, o Options) (Result, error) {
	return rulingset.RandRulingAdaptive(g, o)
}

// DetRulingSetAdaptive is the deterministic adaptive-radius ruling set: it
// answers "what domination radius do my machines force?" — β = 1 (an exact
// MIS) when the budget admits the whole input, growing one sparsification
// level at a time as the budget shrinks.
func DetRulingSetAdaptive(g *Graph, o Options) (Result, error) {
	return rulingset.DetRulingAdaptive(g, o)
}

// CliqueResult is the outcome of a congested-clique algorithm run.
type CliqueResult = rulingset.CliqueResult

// CliqueRulingSet2 computes a 2-ruling set in the congested clique model
// (one node per vertex, one O(log n)-bit message per ordered node pair per
// round) — the model this algorithm family was first developed in.
func CliqueRulingSet2(g *Graph, o Options) (CliqueResult, error) {
	return rulingset.CliqueRandRuling2(g, o)
}

// CliqueDetRulingSet2 is the deterministic congested-clique 2-ruling set;
// its conditional-expectation chunks cost O(1) rounds regardless of width
// via the clique's scatter-aggregate collective.
func CliqueDetRulingSet2(g *Graph, o Options) (CliqueResult, error) {
	return rulingset.CliqueDetRuling2(g, o)
}

// GreedyMIS computes a sequential greedy MIS — the single-machine baseline
// and quality oracle.
func GreedyMIS(g *Graph) []int32 { return rulingset.GreedyMIS(g) }

// IsRulingSet reports whether members form a β-ruling set of g.
func IsRulingSet(g *Graph, members []int32, beta int) bool {
	return rulingset.IsRulingSet(g, members, beta)
}

// IsIndependent reports whether members form an independent set in g.
func IsIndependent(g *Graph, members []int32) bool {
	return rulingset.IsIndependent(g, members)
}

// RulingRadius returns the smallest β such that members β-dominate g, or -1
// if they do not dominate it at all.
func RulingRadius(g *Graph, members []int32) int {
	return rulingset.RulingRadius(g, members)
}

// Check validates a Result against its graph: independence and the
// advertised domination radius.
func Check(g *Graph, r Result) error { return rulingset.Check(g, r) }

// CheckDistributed verifies a β-ruling set through the MPC simulator's
// communication primitives rather than centrally — the way a deployment
// would check an output in place. It costs Θ(β) rounds (returned) and uses
// o only for the cluster shape.
func CheckDistributed(g *Graph, members []int32, beta int, o Options) (rounds int, err error) {
	c, err := mpc.NewCluster(mpc.Config{
		Machines: max(o.Machines, 1),
		Regime:   o.Regime,
		Epsilon:  o.Epsilon,
	}, g.N())
	if err != nil {
		return 0, err
	}
	d, err := mpc.Distribute(c, g)
	if err != nil {
		return 0, err
	}
	return rulingset.VerifyDistributed(d, members, beta)
}
