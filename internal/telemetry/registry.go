// Package telemetry is the wall-clock side of observability: a metrics
// registry with Prometheus text exposition and JSON snapshots, a per-run
// collector fed by the deterministic trace stream, a fleet view merging
// per-worker snapshots under the supervisor, and a crash flight recorder.
//
// The package is strictly an observer of the deterministic core. It consumes
// the committed superstep events the simulators already emit (trace.Tracer /
// trace.SpanObserver) and decorates the durable checkpoint sink, but nothing
// here ever feeds back into Stats, trace bytes or checkpoint bytes — runs
// with telemetry enabled are bit-identical to runs without it, and detflow
// keeps the package registered as a non-sink so a backflow cannot creep in
// silently. Because telemetry is advisory, it is also the one place outside
// the harnesses allowed to read the wall clock (span latencies, scrape
// timing); the determinism contract lives in the trace, not here.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind is an instrument family's type, matching the Prometheus TYPE line.
type Kind string

// Instrument kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Label is one name=value pair attached to a series.
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// Bucket is one cumulative histogram bucket: the count of observations with
// value <= LE. The terminal +Inf bucket equals Count.
type Bucket struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// Point is one gathered series — the single interchange format behind the
// Prometheus exposition, the JSON snapshot endpoint and the heartbeat wire
// payload.
type Point struct {
	Name   string  `json:"name"`
	Help   string  `json:"help,omitempty"`
	Kind   Kind    `json:"kind"`
	Labels []Label `json:"labels,omitempty"`
	// Value carries counters and gauges.
	Value float64 `json:"value,omitempty"`
	// Buckets, Sum and Count carry histograms.
	Buckets []Bucket `json:"buckets,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Count   uint64   `json:"count,omitempty"`
}

// Snapshot is the JSON document the /telemetry.json endpoint serves and the
// heartbeat payload carries.
type Snapshot struct {
	Schema string  `json:"schema"`
	Points []Point `json:"points"`
}

// SnapshotSchema identifies the telemetry snapshot JSON document.
const SnapshotSchema = "mprs-telemetry/1"

// Gatherer is anything that can produce a consistent set of points — a
// Registry, a Collector, or the supervisor's Fleet.
type Gatherer interface {
	Gather() []Point
}

// Registry holds instrument families and their labeled series. All methods
// are safe for concurrent use; Gather returns a consistent copy.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // registration order, re-sorted at Gather
}

type family struct {
	name, help string
	kind       Kind
	bounds     []float64 // histogram upper bounds, ascending, without +Inf
	series     map[string]*series
	order      []string
}

type series struct {
	labels  []Label
	value   float64
	buckets []uint64 // parallel to family.bounds
	sum     float64
	count   uint64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help string, kind Kind, bounds []float64) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, bounds: bounds, series: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: %s re-registered as %s (was %s)", name, kind, f.kind))
	}
	return f
}

func (f *family) get(labels []Label) *series {
	key := labelKey(labels)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: append([]Label(nil), labels...)}
		if f.kind == KindHistogram {
			s.buckets = make([]uint64, len(f.bounds))
		}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// labelKey renders labels (sorted by name) into the series map key, which is
// also the Gather sort key within a family.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(',')
	}
	return b.String()
}

// Counter is a monotonically increasing series.
type Counter struct {
	r *Registry
	s *series
}

// Counter registers (or finds) the counter series name{labels}.
func (r *Registry) Counter(name, help string, labels ...Label) Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Counter{r: r, s: r.family(name, help, KindCounter, nil).get(labels)}
}

// Add increases the counter by v (negative deltas are ignored).
func (c Counter) Add(v float64) {
	if v <= 0 {
		return
	}
	c.r.mu.Lock()
	c.s.value += v
	c.r.mu.Unlock()
}

// Inc increases the counter by one.
func (c Counter) Inc() { c.Add(1) }

// Gauge is a series that can go up and down.
type Gauge struct {
	r *Registry
	s *series
}

// Gauge registers (or finds) the gauge series name{labels}.
func (r *Registry) Gauge(name, help string, labels ...Label) Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Gauge{r: r, s: r.family(name, help, KindGauge, nil).get(labels)}
}

// Set stores v.
func (g Gauge) Set(v float64) {
	g.r.mu.Lock()
	g.s.value = v
	g.r.mu.Unlock()
}

// Max raises the gauge to v when v exceeds the current value.
func (g Gauge) Max(v float64) {
	g.r.mu.Lock()
	if v > g.s.value {
		g.s.value = v
	}
	g.r.mu.Unlock()
}

// Histogram accumulates observations into fixed cumulative buckets.
type Histogram struct {
	r *Registry
	f *family
	s *series
}

// Histogram registers (or finds) the histogram series name{labels} with the
// given ascending upper bounds (the terminal +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, KindHistogram, bounds)
	return Histogram{r: r, f: f, s: f.get(labels)}
}

// Observe records one observation.
func (h Histogram) Observe(v float64) {
	h.r.mu.Lock()
	for i, ub := range h.f.bounds {
		if v <= ub {
			h.s.buckets[i]++
		}
	}
	h.s.sum += v
	h.s.count++
	h.r.mu.Unlock()
}

// Gather implements Gatherer: a consistent copy of every series, sorted by
// family name and then label key, so two gathers of identical state render
// identical documents.
func (r *Registry) Gather() []Point {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := append([]string(nil), r.order...)
	sort.Strings(names)
	var out []Point
	for _, name := range names {
		f := r.families[name]
		keys := append([]string(nil), f.order...)
		sort.Strings(keys)
		for _, key := range keys {
			s := f.series[key]
			p := Point{Name: f.name, Help: f.help, Kind: f.kind, Labels: append([]Label(nil), s.labels...)}
			switch f.kind {
			case KindHistogram:
				p.Sum, p.Count = s.sum, s.count
				p.Buckets = make([]Bucket, 0, len(f.bounds)+1)
				for i, ub := range f.bounds {
					p.Buckets = append(p.Buckets, Bucket{LE: ub, Count: s.buckets[i]})
				}
				p.Buckets = append(p.Buckets, Bucket{LE: math.Inf(1), Count: s.count})
			default:
				p.Value = s.value
			}
			out = append(out, p)
		}
	}
	return out
}

// WritePrometheus renders points in the Prometheus text exposition format
// (version 0.0.4): one HELP/TYPE pair per family, series sorted as Gather
// returns them, label values escaped per the spec.
func WritePrometheus(w io.Writer, points []Point) error {
	last := ""
	for _, p := range points {
		if p.Name != last {
			if p.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", p.Name, escapeHelp(p.Help)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", p.Name, p.Kind); err != nil {
				return err
			}
			last = p.Name
		}
		if err := writeSeries(w, p); err != nil {
			return err
		}
	}
	return nil
}

func writeSeries(w io.Writer, p Point) error {
	if p.Kind != KindHistogram {
		_, err := fmt.Fprintf(w, "%s%s %s\n", p.Name, renderLabels(p.Labels, "", ""), formatValue(p.Value))
		return err
	}
	for _, b := range p.Buckets {
		le := "+Inf"
		if !math.IsInf(b.LE, 1) {
			le = formatValue(b.LE)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", p.Name, renderLabels(p.Labels, "le", le), b.Count); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", p.Name, renderLabels(p.Labels, "", ""), formatValue(p.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", p.Name, renderLabels(p.Labels, "", ""), p.Count)
	return err
}

// renderLabels renders {a="x",b="y"} with an optional extra pair appended
// (the histogram le label); empty input renders nothing.
func renderLabels(labels []Label, extraName, extraValue string) string {
	if len(labels) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// EncodeSnapshot renders the JSON snapshot document for g's current state.
func EncodeSnapshot(g Gatherer) ([]byte, error) {
	return json.Marshal(Snapshot{Schema: SnapshotSchema, Points: g.Gather()})
}

// DecodeSnapshot parses a snapshot document. Unknown fields are ignored and
// a missing schema is tolerated (an older peer), so snapshots survive
// version skew in both directions; a schema from a different family is
// rejected.
func DecodeSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("telemetry: decode snapshot: %w", err)
	}
	if s.Schema != "" && !strings.HasPrefix(s.Schema, "mprs-telemetry/") {
		return Snapshot{}, fmt.Errorf("telemetry: unexpected snapshot schema %q", s.Schema)
	}
	return s, nil
}
