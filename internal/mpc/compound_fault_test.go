package mpc

import (
	"slices"
	"strings"
	"testing"
)

// Satellite coverage for targeted fault events (stall@R:M, drop@R:S>D) and
// compound faults — multiple fault classes hitting the same machine in the
// same round, and crashes landing on the checkpoint-write round. In every
// case the delivered inboxes (and so the algorithm's output) must be
// bit-identical to the fault-free run; only the recovery meters may move.

func TestParseFaultPlanTargetedEvents(t *testing.T) {
	p, err := ParseFaultPlan("stall@4:2, drop@5:0>2, crash@3:1, stall@3:1", 11)
	if err != nil {
		t.Fatal(err)
	}
	if want := []FaultEvent{{Round: 4, Machine: 2}, {Round: 3, Machine: 1}}; !slices.Equal(p.Stalls, want) {
		t.Fatalf("explicit stalls = %v, want %v", p.Stalls, want)
	}
	if want := []DropEvent{{Round: 5, Src: 0, Dst: 2}}; !slices.Equal(p.Drops, want) {
		t.Fatalf("explicit drops = %v, want %v", p.Drops, want)
	}
	if !p.StallsAt(4, 2) || !p.StallsAt(3, 1) || p.StallsAt(4, 1) {
		t.Fatal("StallsAt ignores explicit events")
	}
	if !p.DropsMessage(5, 0, 2, 0) || p.DropsMessage(5, 0, 2, 1) || p.DropsMessage(5, 2, 0, 0) {
		t.Fatal("DropsMessage ignores explicit events or over-matches")
	}
	if !p.Enabled() {
		t.Fatal("plan with only explicit events reports disabled")
	}
	if !strings.Contains(p.String(), "explicit=4") {
		t.Fatalf("stringer = %q, want explicit=4", p.String())
	}
	for _, bad := range []string{"stall@4", "stall@x:1", "stall@0:0", "drop@5", "drop@5:0", "drop@5:x>2", "drop@5:0>x", "drop@0:0>1", "drop@5:-1>2"} {
		if _, err := ParseFaultPlan(bad, 0); err == nil {
			t.Errorf("ParseFaultPlan(%q) accepted", bad)
		}
	}
}

func TestTargetedStallCharged(t *testing.T) {
	plan := &FaultPlan{Seed: 2, Stalls: []FaultEvent{{Round: 2, Machine: 1}}}
	c, err := NewCluster(Config{Machines: 3, Faults: plan}, 9)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		if err := c.Step("tick", echoStep); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.StallRounds != 1 {
		t.Fatalf("StallRounds = %d, want 1 (one targeted straggler)", st.StallRounds)
	}
	if got := inboxWords(c.inboxes[0]); len(got) != 3 {
		t.Fatalf("delivery under targeted stall = %v", got)
	}
}

func TestTargetedDropRetransmitted(t *testing.T) {
	plan := &FaultPlan{Seed: 2, Drops: []DropEvent{{Round: 1, Src: 2, Dst: 0}}}
	c, err := NewCluster(Config{Machines: 3, Faults: plan}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Step("echo", echoStep); err != nil {
		t.Fatal(err)
	}
	// The reliable transport retransmits the targeted loss: full delivery.
	if got := inboxWords(c.inboxes[0]); !slices.Equal(got, []uint64{0, 1, 2}) {
		t.Fatalf("delivery under targeted drop = %v", got)
	}
	st := c.Stats()
	if st.DroppedMessages != 1 || st.RecoveryRounds != 1 || st.ReplayedWords != 1 {
		t.Fatalf("targeted-drop accounting = %+v", st)
	}
}

// TestCompoundCrashStallSameRound injects a crash AND a stall on the same
// machine at the same round: the machine straggles, crashes, is restored and
// replayed — and the delivery is still bit-identical to fault-free.
func TestCompoundCrashStallSameRound(t *testing.T) {
	run := func(plan *FaultPlan) ([]uint64, Stats) {
		c, err := NewCluster(Config{Machines: 4, Faults: plan, CheckpointEvery: 2}, 16)
		if err != nil {
			t.Fatal(err)
		}
		state := make([]uint64, 4)
		if err := c.SetCheckpointer(FuncCheckpointer{
			SnapshotFn: func(m int) []uint64 { return []uint64{state[m]} },
			RestoreFn:  func(m int, data []uint64) { state[m] = data[0] },
		}); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 5; r++ {
			if err := c.Step("echo", echoStep); err != nil {
				t.Fatal(err)
			}
			for m := range state {
				state[m]++
			}
		}
		for m, v := range state {
			if v != 5 {
				t.Fatalf("machine %d state = %d after recovery, want 5", m, v)
			}
		}
		return inboxWords(c.inboxes[0]), c.Stats()
	}

	base, baseStats := run(nil)
	plan := &FaultPlan{
		Seed:    13,
		Crashes: []FaultEvent{{Round: 3, Machine: 1}},
		Stalls:  []FaultEvent{{Round: 3, Machine: 1}},
	}
	faulty, st := run(plan)

	if !slices.Equal(base, faulty) {
		t.Fatalf("delivery differs under compound fault: %v vs %v", base, faulty)
	}
	if st.RecoveredCrashes != 1 || st.StallRounds != 1 {
		t.Fatalf("compound accounting = %+v", st)
	}
	// Committed work is bit-identical; only the recovery meters moved.
	if st.Rounds != baseStats.Rounds || st.Words != baseStats.Words || st.Messages != baseStats.Messages {
		t.Fatalf("core stats diverged: %+v vs %+v", st, baseStats)
	}
}

// TestCrashDuringCheckpointRound crashes a machine at exactly a round whose
// barrier writes a checkpoint ((r-1)%CheckpointEvery == 0): the snapshot is
// taken before the superstep executes, so the crash restores the state that
// was just checkpointed and replays one round.
func TestCrashDuringCheckpointRound(t *testing.T) {
	run := func(plan *FaultPlan) ([]uint64, []uint64, Stats) {
		c, err := NewCluster(Config{Machines: 3, Faults: plan, CheckpointEvery: 2}, 9)
		if err != nil {
			t.Fatal(err)
		}
		state := []uint64{10, 20, 30}
		if err := c.SetCheckpointer(FuncCheckpointer{
			SnapshotFn: func(m int) []uint64 { return []uint64{state[m]} },
			RestoreFn:  func(m int, data []uint64) { state[m] = data[0] },
		}); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 6; r++ {
			if err := c.Step("echo", echoStep); err != nil {
				t.Fatal(err)
			}
			for m := range state {
				state[m]++
			}
		}
		return slices.Clone(state), inboxWords(c.inboxes[0]), c.Stats()
	}

	baseState, baseDelivery, baseStats := run(nil)
	// Round 5 is a checkpoint round: (5-1)%2 == 0. Crash machine 2 there.
	plan := &FaultPlan{Seed: 17, Crashes: []FaultEvent{{Round: 5, Machine: 2}}}
	state, delivery, st := run(plan)

	if !slices.Equal(baseState, state) {
		t.Fatalf("driver state diverged: %v vs %v", baseState, state)
	}
	if !slices.Equal(baseDelivery, delivery) {
		t.Fatalf("delivery diverged: %v vs %v", baseDelivery, delivery)
	}
	if st.RecoveredCrashes != 1 {
		t.Fatalf("crash not recovered: %+v", st)
	}
	// The checkpoint written at the crash round makes the replay distance 0
	// extra rounds beyond the restart itself.
	if st.Rounds != baseStats.Rounds || st.Words != baseStats.Words ||
		st.Messages != baseStats.Messages || st.CheckpointWords != baseStats.CheckpointWords {
		t.Fatalf("committed stats diverged: %+v vs %+v", st, baseStats)
	}
}

// TestCompoundCrashStallDropSameMachine piles all three fault classes onto
// one machine in one round and still demands bit-identical delivery.
func TestCompoundCrashStallDropSameMachine(t *testing.T) {
	run := func(plan *FaultPlan) []uint64 {
		c, err := NewCluster(Config{Machines: 3, Faults: plan, CheckpointEvery: 2}, 9)
		if err != nil {
			t.Fatal(err)
		}
		state := []uint64{1, 2, 3}
		if err := c.SetCheckpointer(FuncCheckpointer{
			SnapshotFn: func(m int) []uint64 { return []uint64{state[m]} },
			RestoreFn:  func(m int, data []uint64) { state[m] = data[0] },
		}); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 4; r++ {
			if err := c.Step("echo", echoStep); err != nil {
				t.Fatal(err)
			}
			for m := range state {
				state[m]++
			}
		}
		return inboxWords(c.inboxes[0])
	}

	base := run(nil)
	plan := &FaultPlan{
		Seed:    23,
		Crashes: []FaultEvent{{Round: 2, Machine: 1}},
		Stalls:  []FaultEvent{{Round: 2, Machine: 1}},
		Drops:   []DropEvent{{Round: 2, Src: 1, Dst: 0}},
	}
	if faulty := run(plan); !slices.Equal(base, faulty) {
		t.Fatalf("delivery differs: %v vs %v", base, faulty)
	}
}
