// Package mpc simulates the Massively Parallel Computation (MPC) model: M
// machines with S words of local memory each, communicating in synchronous
// rounds in which every machine sends and receives at most S words.
//
// The simulator is the substrate the reproduced paper assumes but that has no
// open-source implementation: it executes machine-local computation in
// parallel goroutines, routes messages between rounds, and — crucially for a
// theory reproduction — meters the quantities the theorems bound: rounds,
// words sent/received per machine per round, and peak resident memory per
// machine, checking them against the regime's budget S.
//
// Execution is bit-for-bit deterministic regardless of goroutine scheduling:
// inboxes are ordered by sender, and senders emit messages sequentially.
package mpc

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"slices"
	"sort"
	"sync"

	"github.com/rulingset/mprs/internal/trace"
)

// Regime selects how the per-machine memory budget S is derived from the
// input size.
type Regime int

const (
	// RegimeLinear models near-linear memory: S = Θ(n) words (strongest
	// machines; equivalent in power to the congested clique). This is the
	// regime of the paper's headline deterministic 2-ruling set result.
	RegimeLinear Regime = iota + 1
	// RegimeSublinear models strictly sublinear memory: S = ⌈n^ε⌉ words.
	RegimeSublinear
	// RegimeExplicit uses Config.MemoryWords verbatim.
	RegimeExplicit
)

// String implements fmt.Stringer.
func (r Regime) String() string {
	switch r {
	case RegimeLinear:
		return "linear"
	case RegimeSublinear:
		return "sublinear"
	case RegimeExplicit:
		return "explicit"
	default:
		return fmt.Sprintf("regime(%d)", int(r))
	}
}

// Config describes a simulated cluster.
type Config struct {
	// Machines is the number of machines M (>= 1).
	Machines int
	// Regime selects the memory budget rule; default RegimeLinear.
	Regime Regime
	// Epsilon is the sublinear-memory exponent (0 < ε < 1); only used by
	// RegimeSublinear. Default 0.5.
	Epsilon float64
	// MemoryWords is the explicit budget S for RegimeExplicit.
	MemoryWords int
	// LinearSlack multiplies the linear-regime budget (S = slack·n); default 4,
	// standing in for the Θ̃(n) constants/log factors.
	LinearSlack int
	// Strict makes budget violations errors instead of recorded statistics.
	// A strict violation aborts the offending step cleanly: nothing is
	// delivered and the step's contexts are invalidated.
	Strict bool
	// Faults, when non-nil and enabled, injects the deterministic fault
	// schedule described in fault.go (machine crashes, message drops and
	// duplications, straggler stalls), all recovered at the superstep
	// barrier so outputs stay bit-identical to the fault-free run.
	Faults *FaultPlan
	// CheckpointEvery, together with a registered Checkpointer, snapshots
	// driver state every k supersteps; crash recovery then replays from the
	// last checkpoint and is charged accordingly. 0 disables checkpointing
	// (crashes recover from the barrier-committed state at replay cost 1).
	CheckpointEvery int
	// Tracer, when non-nil, receives one trace.Event per committed superstep
	// (per-machine words sent/received, resident memory, recovery activity).
	// Tracing is deterministic and costs nothing when nil.
	Tracer trace.Tracer
	// Context, when non-nil, is checked at every superstep barrier (Step and
	// ChargeRounds): once it is done, the call returns a *CancelError
	// wrapping ErrCanceled or ErrDeadline with the committed round and full
	// Stats. See RunContext.
	Context context.Context
	// Sink, when non-nil (together with CheckpointEvery > 0 and a registered
	// Checkpointer), persists every in-memory checkpoint durably; written
	// bytes accumulate in Stats.CheckpointBytes. *durable.Store is the
	// canonical implementation.
	Sink CheckpointSink
	// Resume, when non-nil, resumes the run from a durable checkpoint: the
	// run replays deterministically to Resume.Round, verifies the replayed
	// state against the checkpoint word-for-word (ErrResumeDiverged on
	// mismatch), restores through the Checkpointer, and records the replay
	// in Stats.ResumeReplayRounds.
	Resume *ResumeState
	// Transport, when non-nil, carries every committed superstep's sorted
	// per-destination message boxes (see the Transport interface); nil is
	// the in-memory router. A failed exchange aborts the step cleanly with
	// a *TransportError.
	Transport Transport
}

// Violation records a budget breach observed during the simulation.
type Violation struct {
	Round   int
	Machine int
	Kind    string // "send", "recv", "resident"
	Words   int
	Budget  int
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("round %d machine %d: %s %d words > budget %d",
		v.Round, v.Machine, v.Kind, v.Words, v.Budget)
}

// RoundInfo summarizes one communication round.
type RoundInfo struct {
	Name     string
	Span     string // algorithm phase annotation active during the round
	MaxSent  int    // max words sent by any machine this round
	MaxRecv  int    // max words received by any machine this round
	Messages int
	Words    int
	// GiniSent and GiniRecv are the round's communication-imbalance
	// coefficients across machines (0 balanced, →1 one machine carries all).
	GiniSent float64
	GiniRecv float64
}

// SpanStat aggregates the rounds of one named trace span (algorithm phase):
// how many rounds it spent, how much traffic it moved, and how skewed that
// traffic was across machines. The skew quantities are what the
// sparsification theorems shape: concentration phases should show high
// imbalance (gather-like traffic), local phases should stay near-balanced.
type SpanStat struct {
	Span     string
	Rounds   int
	Messages int64
	Words    int64
	// MaxSent and MaxRecv are the largest per-machine per-round word counts
	// observed inside the span.
	MaxSent int
	MaxRecv int
	// GiniSent and GiniRecv are the worst per-round imbalance coefficients
	// observed inside the span.
	GiniSent float64
	GiniRecv float64
}

// Stats aggregates the model-relevant measurements of a simulation.
//
// The fault/recovery fields meter robustness cost separately from the
// algorithm's own complexity: Rounds and Words count only committed
// supersteps and delivered traffic (bit-identical to the fault-free run),
// while recovery overhead accumulates in RecoveryRounds, ReplayedWords and
// CheckpointWords. Total cost under faults is the sum of the two groups.
type Stats struct {
	Rounds       int
	Messages     int64
	Words        int64
	PeakSent     int // max words sent by one machine in one round
	PeakRecv     int
	PeakResident int
	Violations   []Violation
	Log          []RoundInfo

	// Spans aggregates rounds/traffic/skew per named trace span, in order of
	// first appearance (see Cluster.Span).
	Spans []SpanStat
	// SkewSent is the worst per-round send imbalance observed: max over
	// rounds with traffic of MaxSent / (Words/M), i.e. the straggler ratio
	// of the most loaded machine against the mean.
	SkewSent float64
	// SkewRecv is the receive-side counterpart of SkewSent.
	SkewRecv float64
	// GiniSent and GiniRecv are the worst per-round Gini imbalance
	// coefficients observed (see trace.Gini).
	GiniSent float64
	GiniRecv float64

	// RecoveredCrashes counts injected machine crashes recovered at the
	// superstep barrier.
	RecoveredCrashes int
	// RecoveryRounds counts extra rounds spent recovering: restart/replay
	// rounds after crashes plus one retransmission round per superstep with
	// dropped messages.
	RecoveryRounds int
	// ReplayedWords counts words re-sent or restored during recovery:
	// discarded superstep traffic, restored checkpoint state and
	// retransmitted messages.
	ReplayedWords int64
	// CheckpointWords counts words written by periodic state checkpoints.
	CheckpointWords int64
	// DroppedMessages counts transit losses repaired by retransmission.
	DroppedMessages int
	// DupMessages counts transit duplicates removed by receiver dedup.
	DupMessages int
	// StallRounds counts barrier rounds lost to straggler stalls.
	StallRounds int

	// CheckpointBytes counts bytes persisted to durable checkpoint storage
	// (Config.Sink); 0 without a sink. Like wall_ms in bench artifacts it is
	// host/run-dependent rather than part of the bit-identity contract: a
	// resumed run skips re-persisting checkpoints its directory already
	// holds, so its CheckpointBytes is lower than an uninterrupted run's.
	CheckpointBytes int64
	// ResumeReplayRounds counts supersteps deterministically replayed to
	// reach the durable checkpoint a resumed run restored from
	// (Config.Resume); 0 for a run started from scratch. Like
	// CheckpointBytes it is resume overhead, not algorithm cost.
	ResumeReplayRounds int
}

// ErrBudget is wrapped by errors returned in Strict mode when a budget is
// breached.
var ErrBudget = errors.New("mpc: memory/bandwidth budget exceeded")

// Message is a payload of machine words received from Src.
type Message struct {
	Src     int
	Payload []uint64
}

// Cluster is a simulated MPC cluster over a ground set of n items
// (vertices), block-partitioned across machines.
type Cluster struct {
	cfg     Config
	n       int
	budget  int
	stats   Stats
	inboxes [][]Message

	// mu guards outbox appends, resident-memory accounting and the
	// late-send error during a step (all reachable from concurrent machine
	// code).
	mu       sync.Mutex
	outboxes [][]Message
	resident []int
	lateErr  error

	// Superstep recovery state (see fault.go and checkpoint.go).
	ckpt          Checkpointer
	snapshots     [][]uint64
	ckptRound     int
	fired         map[uint64]struct{}
	resumeApplied bool

	// Observability state: the registered tracer, the active span label, and
	// reusable per-machine scratch buffers so the skew accounting adds no
	// allocations to the superstep path.
	tracer  trace.Tracer
	span    string
	sentW   []int
	recvW   []int
	sortBuf []int
}

// NewCluster creates a cluster for a ground set of n items. The memory
// budget S is derived from cfg.Regime and n.
func NewCluster(cfg Config, n int) (*Cluster, error) {
	if cfg.Machines < 1 {
		return nil, fmt.Errorf("mpc: machines %d < 1", cfg.Machines)
	}
	if n < 0 {
		return nil, fmt.Errorf("mpc: negative ground set %d", n)
	}
	if cfg.Regime == 0 {
		cfg.Regime = RegimeLinear
	}
	if cfg.LinearSlack <= 0 {
		cfg.LinearSlack = 4
	}
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 0.5
	}
	var budget int
	switch cfg.Regime {
	case RegimeLinear:
		budget = cfg.LinearSlack * maxInt(n, 1)
	case RegimeSublinear:
		if cfg.Epsilon <= 0 || cfg.Epsilon >= 1 {
			return nil, fmt.Errorf("mpc: sublinear exponent %v out of (0,1)", cfg.Epsilon)
		}
		budget = int(math.Ceil(math.Pow(float64(maxInt(n, 2)), cfg.Epsilon)))
	case RegimeExplicit:
		if cfg.MemoryWords < 1 {
			return nil, fmt.Errorf("mpc: explicit budget %d < 1", cfg.MemoryWords)
		}
		budget = cfg.MemoryWords
	default:
		return nil, fmt.Errorf("mpc: unknown regime %v", cfg.Regime)
	}
	if r := cfg.Resume; r != nil {
		if cfg.CheckpointEvery <= 0 {
			return nil, fmt.Errorf("mpc: Resume requires CheckpointEvery > 0 (checkpoint barriers must recur at the cadence the checkpoint was taken at)")
		}
		if r.Round < 0 {
			return nil, fmt.Errorf("mpc: Resume.Round %d < 0", r.Round)
		}
		if len(r.State) != cfg.Machines {
			return nil, fmt.Errorf("mpc: Resume state has %d machines, cluster has %d", len(r.State), cfg.Machines)
		}
	}
	return &Cluster{
		cfg:      cfg,
		n:        n,
		budget:   budget,
		resident: make([]int, cfg.Machines),
		inboxes:  make([][]Message, cfg.Machines),
		outboxes: make([][]Message, cfg.Machines),
		tracer:   cfg.Tracer,
		span:     "setup",
		sentW:    make([]int, cfg.Machines),
		recvW:    make([]int, cfg.Machines),
		sortBuf:  make([]int, cfg.Machines),
	}, nil
}

// SetTracer registers (or, with nil, removes) the superstep tracer.
func (c *Cluster) SetTracer(t trace.Tracer) { c.tracer = t }

// Span sets the active trace-span label; subsequent rounds are attributed to
// it in Stats.Spans, the round log, and emitted trace events. Algorithms
// annotate their phases with the canonical labels "sparsify", "seed-search",
// "gather" and "finish"; rounds before the first Span call land in "setup".
// A tracer implementing trace.SpanObserver is notified immediately, so live
// introspection sees the phase change before its first round commits.
func (c *Cluster) Span(name string) {
	c.span = name
	if o, ok := c.tracer.(trace.SpanObserver); ok {
		o.SpanChange(name)
	}
}

// CurrentSpan returns the active trace-span label (so helpers like the
// derandomizer can set a span and restore the caller's afterwards).
func (c *Cluster) CurrentSpan() string { return c.span }

// Machines returns the machine count M.
func (c *Cluster) Machines() int { return c.cfg.Machines }

// N returns the ground-set size the cluster was built for.
func (c *Cluster) N() int { return c.n }

// Budget returns the per-machine memory/bandwidth budget S in words.
func (c *Cluster) Budget() int { return c.budget }

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Owner returns the machine owning item v under the block partition.
func (c *Cluster) Owner(v int) int {
	if c.n == 0 {
		return 0
	}
	per := (c.n + c.cfg.Machines - 1) / c.cfg.Machines
	m := v / per
	if m >= c.cfg.Machines {
		m = c.cfg.Machines - 1
	}
	return m
}

// Range returns the half-open item range [lo, hi) owned by machine m.
func (c *Cluster) Range(m int) (lo, hi int) {
	per := (c.n + c.cfg.Machines - 1) / c.cfg.Machines
	lo = m * per
	hi = lo + per
	if lo > c.n {
		lo = c.n
	}
	if hi > c.n {
		hi = c.n
	}
	return lo, hi
}

// SetResident records machine m's current resident memory in words; the
// per-machine peak is tracked and checked against the budget. Safe to call
// from concurrent machine code inside a step.
func (c *Cluster) SetResident(m, words int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.setResidentLocked(m, words)
}

func (c *Cluster) setResidentLocked(m, words int) error {
	c.resident[m] = words
	if words > c.stats.PeakResident {
		c.stats.PeakResident = words
	}
	if words > c.budget {
		return c.violate(Violation{
			Round:   c.stats.Rounds,
			Machine: m,
			Kind:    "resident",
			Words:   words,
			Budget:  c.budget,
		})
	}
	return nil
}

// AddResident adjusts machine m's resident memory by delta words. Safe to
// call from concurrent machine code inside a step.
func (c *Cluster) AddResident(m, delta int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.setResidentLocked(m, c.resident[m]+delta)
}

// Resident returns machine m's currently recorded resident memory.
func (c *Cluster) Resident(m int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resident[m]
}

func (c *Cluster) violate(v Violation) error {
	c.stats.Violations = append(c.stats.Violations, v)
	if c.cfg.Strict {
		return fmt.Errorf("%w: %s", ErrBudget, v)
	}
	return nil
}

// Stats returns a copy of the accumulated statistics.
func (c *Cluster) Stats() Stats {
	out := c.stats
	out.Violations = append([]Violation(nil), c.stats.Violations...)
	out.Log = append([]RoundInfo(nil), c.stats.Log...)
	out.Spans = append([]SpanStat(nil), c.stats.Spans...)
	return out
}

// ResetStats clears accumulated statistics (but not machine state).
func (c *Cluster) ResetStats() {
	c.stats = Stats{}
}

// ChargeRounds accounts for k rounds of a step that is modeled analytically
// rather than simulated message-by-message (e.g. standard graph
// exponentiation). It adds k rounds to the statistics under the given name
// with no bandwidth attributed.
//
// A negative k is a caller bug (it would silently under-count the model's
// central quantity): it is recorded as a "rounds" violation and, consistent
// with budget handling, returned as an error in Strict mode.
func (c *Cluster) ChargeRounds(name string, k int) error {
	if err := c.barrierErr(); err != nil {
		return err
	}
	if k < 0 {
		return c.violate(Violation{
			Round:   c.stats.Rounds,
			Machine: -1,
			Kind:    "rounds",
			Words:   k,
			Budget:  0,
		})
	}
	for i := 0; i < k; i++ {
		c.stats.Rounds++
		info := RoundInfo{Name: name, Span: c.span}
		c.stats.Log = append(c.stats.Log, info)
		c.bumpSpan(info)
		if c.tracer != nil {
			c.tracer.Superstep(trace.Event{
				Round:   c.stats.Rounds,
				Step:    name,
				Span:    c.span,
				Charged: true,
			})
		}
	}
	return nil
}

// findSpan returns the (possibly new) aggregate for the named span. The last
// entry is checked first so the common case — consecutive rounds in the same
// phase — is O(1).
func (c *Cluster) findSpan(name string) *SpanStat {
	if n := len(c.stats.Spans); n > 0 && c.stats.Spans[n-1].Span == name {
		return &c.stats.Spans[n-1]
	}
	for i := range c.stats.Spans {
		if c.stats.Spans[i].Span == name {
			return &c.stats.Spans[i]
		}
	}
	c.stats.Spans = append(c.stats.Spans, SpanStat{Span: name})
	return &c.stats.Spans[len(c.stats.Spans)-1]
}

// bumpSpan folds one committed round into its span aggregate.
func (c *Cluster) bumpSpan(info RoundInfo) {
	sp := c.findSpan(info.Span)
	sp.Rounds++
	sp.Messages += int64(info.Messages)
	sp.Words += int64(info.Words)
	sp.MaxSent = maxInt(sp.MaxSent, info.MaxSent)
	sp.MaxRecv = maxInt(sp.MaxRecv, info.MaxRecv)
	sp.GiniSent = maxFloat(sp.GiniSent, info.GiniSent)
	sp.GiniRecv = maxFloat(sp.GiniRecv, info.GiniRecv)
}

// recoverySnapshot captures the fault-layer counters so Step can report the
// recovery activity of one superstep as deltas in its trace event.
type recoverySnapshot struct {
	crashes, recoveryRounds int
	dropped, dups, stalls   int
	replayed                int64
}

func (c *Cluster) snapshotRecovery() recoverySnapshot {
	return recoverySnapshot{
		crashes:        c.stats.RecoveredCrashes,
		recoveryRounds: c.stats.RecoveryRounds,
		dropped:        c.stats.DroppedMessages,
		dups:           c.stats.DupMessages,
		stalls:         c.stats.StallRounds,
		replayed:       c.stats.ReplayedWords,
	}
}

// MergeStats accumulates b into a: rounds, traffic and violations add up,
// peaks and skew coefficients take the maximum, span aggregates merge by
// name, and b's per-round indices (violations, like the appended log) are
// offset by a's round count so merged stats read as one continuous run. Used
// when an algorithm chains sub-instances on fresh clusters (e.g. recursive
// β-ruling levels).
func MergeStats(a, b Stats) Stats {
	offset := a.Rounds
	a.Rounds += b.Rounds
	a.Messages += b.Messages
	a.Words += b.Words
	a.PeakSent = maxInt(a.PeakSent, b.PeakSent)
	a.PeakRecv = maxInt(a.PeakRecv, b.PeakRecv)
	a.PeakResident = maxInt(a.PeakResident, b.PeakResident)
	for _, v := range b.Violations {
		v.Round += offset
		a.Violations = append(a.Violations, v)
	}
	a.Log = append(a.Log, b.Log...)
	a.Spans = mergeSpans(a.Spans, b.Spans)
	a.SkewSent = maxFloat(a.SkewSent, b.SkewSent)
	a.SkewRecv = maxFloat(a.SkewRecv, b.SkewRecv)
	a.GiniSent = maxFloat(a.GiniSent, b.GiniSent)
	a.GiniRecv = maxFloat(a.GiniRecv, b.GiniRecv)
	a.RecoveredCrashes += b.RecoveredCrashes
	a.RecoveryRounds += b.RecoveryRounds
	a.ReplayedWords += b.ReplayedWords
	a.CheckpointWords += b.CheckpointWords
	a.DroppedMessages += b.DroppedMessages
	a.DupMessages += b.DupMessages
	a.StallRounds += b.StallRounds
	a.CheckpointBytes += b.CheckpointBytes
	a.ResumeReplayRounds += b.ResumeReplayRounds
	return a
}

// mergeSpans folds b's span aggregates into a's, matching by name and
// preserving first-appearance order. The result never aliases b.
func mergeSpans(a, b []SpanStat) []SpanStat {
	for _, sp := range b {
		merged := false
		for i := range a {
			if a[i].Span == sp.Span {
				a[i].Rounds += sp.Rounds
				a[i].Messages += sp.Messages
				a[i].Words += sp.Words
				a[i].MaxSent = maxInt(a[i].MaxSent, sp.MaxSent)
				a[i].MaxRecv = maxInt(a[i].MaxRecv, sp.MaxRecv)
				a[i].GiniSent = maxFloat(a[i].GiniSent, sp.GiniSent)
				a[i].GiniRecv = maxFloat(a[i].GiniRecv, sp.GiniRecv)
				merged = true
				break
			}
		}
		if !merged {
			a = append(a, sp)
		}
	}
	return a
}

// Ctx is the per-machine view inside one Step: the machine id, its item
// range, the messages delivered at the end of the previous step, and a Send
// primitive for the current step.
//
// A Ctx is valid only for the duration of its step: once the step commits
// (or aborts), the context is invalidated and late Send calls are dropped
// and surfaced as an error from the next Step, instead of corrupting the
// next round's traffic.
type Ctx struct {
	Machine int
	Lo, Hi  int

	c     *Cluster
	round int
	inbox []Message
	sent  int

	done     bool // guarded by c.mu
	panicked any
	stack    []byte
}

// Inbox returns the messages delivered to this machine at the end of the
// previous step, ordered by sender id (and send order within a sender).
func (x *Ctx) Inbox() []Message { return x.inbox }

// Send queues a message of machine words to machine dst, delivered at the
// end of the step. The payload is copied.
func (x *Ctx) Send(dst int, payload ...uint64) {
	cp := make([]uint64, len(payload))
	copy(cp, payload)
	x.SendOwned(dst, cp)
}

// SendOwned queues payload without copying; the caller must not reuse it.
// Sending on an invalidated context (after its step completed) drops the
// payload and records ErrStaleCtx, returned by the cluster's next Step.
func (x *Ctx) SendOwned(dst int, payload []uint64) {
	x.c.mu.Lock()
	if x.done {
		if x.c.lateErr == nil {
			x.c.lateErr = fmt.Errorf("mpc: machine %d sent %d words after its step (round %d) completed: %w",
				x.Machine, len(payload), x.round, ErrStaleCtx)
		}
		x.c.mu.Unlock()
		return
	}
	x.sent += len(payload)
	x.c.outboxes[dst] = append(x.c.outboxes[dst], Message{Src: x.Machine, Payload: payload})
	x.c.mu.Unlock()
}

// ErrStaleCtx is wrapped by the error recorded when a machine sends on a Ctx
// whose step has already completed (e.g. from a goroutine leaked past the
// superstep barrier).
var ErrStaleCtx = errors.New("mpc: send on invalidated step context")

// takeLateErr returns and clears the sticky late-send error.
func (c *Cluster) takeLateErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	err := c.lateErr
	c.lateErr = nil
	return err
}

// invalidate marks every context of a finished (or aborted) step attempt so
// late sends error instead of leaking into the next round.
func (c *Cluster) invalidate(ctxs []*Ctx) {
	c.mu.Lock()
	for _, x := range ctxs {
		if x != nil {
			x.done = true
		}
	}
	c.mu.Unlock()
}

// crashNow consumes one injected crash for (round, m); a fault fires only
// once, so the superstep retry after recovery does not crash again.
func (c *Cluster) crashNow(round, m int) bool {
	if !c.cfg.Faults.CrashesAt(round, m) {
		return false
	}
	key := eventID(faultCrash, round, m, 0, 0)
	if _, ok := c.fired[key]; ok {
		return false
	}
	if c.fired == nil {
		c.fired = make(map[uint64]struct{})
	}
	c.fired[key] = struct{}{}
	return true
}

// runAttempt executes one attempt of a superstep: f runs concurrently on
// every non-crashed machine with panics recovered per machine. It returns
// the attempt's contexts, the machines crashed by the fault plan, and the
// lowest-machine MachineError if any step function panicked.
func (c *Cluster) runAttempt(round int, f func(x *Ctx)) (ctxs []*Ctx, crashed []int, merr *MachineError) {
	M := c.cfg.Machines
	ctxs = make([]*Ctx, M)
	var wg sync.WaitGroup
	for m := 0; m < M; m++ {
		lo, hi := c.Range(m)
		ctxs[m] = &Ctx{Machine: m, Lo: lo, Hi: hi, c: c, round: round, inbox: c.inboxes[m]}
		if c.crashNow(round, m) {
			crashed = append(crashed, m)
			continue
		}
		wg.Add(1)
		go func(x *Ctx) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					x.panicked = r
					x.stack = debug.Stack()
				}
			}()
			f(x)
		}(ctxs[m])
	}
	wg.Wait()
	for m := 0; m < M; m++ {
		if ctxs[m].panicked != nil {
			merr = &MachineError{Machine: m, Round: round, Panic: ctxs[m].panicked, Stack: ctxs[m].stack}
			break
		}
	}
	return ctxs, crashed, merr
}

// Step executes one synchronous round: f runs concurrently on every machine
// (reading its inbox from the previous step and sending messages), then all
// messages are delivered. name labels the round in the trace log.
//
// Robustness semantics:
//   - A panic in one machine's f is recovered at the barrier and returned as
//     a *MachineError; the step delivers nothing and the process survives.
//   - Crashes injected by Config.Faults abort the attempt at the barrier;
//     crashed machines are restored (see Checkpointer) and the superstep
//     re-executes, with the recovery charged to the fault fields of Stats.
//     f must therefore be effect-free on driver state (the established
//     discipline: drivers mutate state only after Step returns).
//   - Message drops are repaired by retransmission and duplicates removed by
//     receiver dedup, so delivered inboxes are always exactly the sent
//     messages; only the fault accounting records that anything happened.
//   - In Strict mode a budget violation aborts the step cleanly: the error
//     is returned, nothing is delivered, and the contexts are invalidated.
func (c *Cluster) Step(name string, f func(x *Ctx)) error {
	if err := c.takeLateErr(); err != nil {
		return err
	}
	if err := c.barrierErr(); err != nil {
		return err
	}
	M := c.cfg.Machines
	round := c.stats.Rounds + 1
	pre := c.snapshotRecovery()
	if err := c.maybeCheckpoint(round); err != nil {
		return err
	}

	var ctxs []*Ctx
	for {
		var (
			crashed []int
			merr    *MachineError
		)
		ctxs, crashed, merr = c.runAttempt(round, f)
		if merr != nil {
			c.discardOutboxes(false)
			c.invalidate(ctxs)
			return merr
		}
		if len(crashed) == 0 {
			break
		}
		c.invalidate(ctxs)
		c.recoverCrashes(round, crashed)
	}
	c.invalidate(ctxs)
	if p := c.cfg.Faults; p != nil {
		for m := 0; m < M; m++ {
			if p.StallsAt(round, m) {
				c.stats.StallRounds++
			}
		}
	}

	// Outboxes were appended under a mutex in nondeterministic order;
	// restore determinism by stable-sorting on sender (messages from one
	// sender were appended in its sequential send order, and sorting
	// stability preserves that order). Transport faults are decided on the
	// sorted order, so they too are schedule-independent.
	boxes := c.outboxes
	c.outboxes = make([][]Message, M)
	for m := 0; m < M; m++ {
		stableSortBySrc(boxes[m])
	}
	// The sorted boxes are the canonical exchange: hand them to the
	// configured transport (the multi-process backend ships and verifies
	// them here); the nil transport delivers them as-is. A failed exchange
	// aborts before the round commits — nothing below has run, so the
	// carried Stats are exactly the committed prefix.
	if c.cfg.Transport != nil {
		exchanged, err := c.cfg.Transport.Exchange(round, boxes)
		if err != nil {
			return &TransportError{Round: c.stats.Rounds, Stats: c.Stats(), Err: err}
		}
		boxes = exchanged
	}

	c.stats.Rounds++
	info := RoundInfo{Name: name, Span: c.span}
	var firstErr error
	for m := 0; m < M; m++ {
		sent := ctxs[m].sent
		c.sentW[m] = sent
		if sent > info.MaxSent {
			info.MaxSent = sent
		}
		if sent > c.stats.PeakSent {
			c.stats.PeakSent = sent
		}
		if sent > c.budget {
			if err := c.violate(Violation{Round: c.stats.Rounds, Machine: m, Kind: "send", Words: sent, Budget: c.budget}); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	droppedThisRound := false
	for m := 0; m < M; m++ {
		box := boxes[m]
		c.transportFaults(round, m, box, &droppedThisRound)
		recv := 0
		for _, msg := range box {
			recv += len(msg.Payload)
			info.Messages++
			info.Words += len(msg.Payload)
		}
		c.recvW[m] = recv
		if recv > info.MaxRecv {
			info.MaxRecv = recv
		}
		if recv > c.stats.PeakRecv {
			c.stats.PeakRecv = recv
		}
		if recv > c.budget {
			if err := c.violate(Violation{Round: c.stats.Rounds, Machine: m, Kind: "recv", Words: recv, Budget: c.budget}); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	if droppedThisRound {
		c.stats.RecoveryRounds++
	}
	// Skew accounting: per-round Gini coefficients (computed on the reusable
	// scratch buffer — no allocation) and the straggler ratio max/mean.
	copy(c.sortBuf, c.sentW)
	info.GiniSent = trace.Gini(c.sortBuf)
	copy(c.sortBuf, c.recvW)
	info.GiniRecv = trace.Gini(c.sortBuf)
	if info.Words > 0 {
		mean := float64(info.Words) / float64(M)
		c.stats.SkewSent = maxFloat(c.stats.SkewSent, float64(info.MaxSent)/mean)
		c.stats.SkewRecv = maxFloat(c.stats.SkewRecv, float64(info.MaxRecv)/mean)
	}
	c.stats.GiniSent = maxFloat(c.stats.GiniSent, info.GiniSent)
	c.stats.GiniRecv = maxFloat(c.stats.GiniRecv, info.GiniRecv)
	c.stats.Messages += int64(info.Messages)
	c.stats.Words += int64(info.Words)
	c.stats.Log = append(c.stats.Log, info)
	c.bumpSpan(info)
	if c.tracer != nil {
		// Event slices are freshly allocated: sinks may retain them. Machine
		// goroutines are quiesced at this point, so c.resident is stable.
		c.tracer.Superstep(trace.Event{
			Round:          c.stats.Rounds,
			Step:           name,
			Span:           c.span,
			Sent:           slices.Clone(c.sentW),
			Recv:           slices.Clone(c.recvW),
			Resident:       slices.Clone(c.resident),
			Messages:       info.Messages,
			Words:          info.Words,
			MaxSent:        info.MaxSent,
			MaxRecv:        info.MaxRecv,
			GiniSent:       info.GiniSent,
			GiniRecv:       info.GiniRecv,
			Crashes:        c.stats.RecoveredCrashes - pre.crashes,
			RecoveryRounds: c.stats.RecoveryRounds - pre.recoveryRounds,
			ReplayedWords:  c.stats.ReplayedWords - pre.replayed,
			Dropped:        c.stats.DroppedMessages - pre.dropped,
			Duplicated:     c.stats.DupMessages - pre.dups,
			Stalls:         c.stats.StallRounds - pre.stalls,
		})
	}
	if firstErr != nil {
		// Strict mode: abort cleanly — the violation is recorded and
		// returned, nothing reaches the next round's inboxes.
		return firstErr
	}
	for m := 0; m < M; m++ {
		c.inboxes[m] = boxes[m]
	}
	return nil
}

// transportFaults applies the plan's message-level faults to one sorted
// destination box. The transport is reliable: drops are retransmitted
// (charged to DroppedMessages, ReplayedWords and one recovery round per
// affected superstep) and duplicates deduplicated (charged to DupMessages),
// so the delivered box is always exactly the sent messages.
func (c *Cluster) transportFaults(round, dst int, box []Message, dropped *bool) {
	p := c.cfg.Faults
	if p == nil || (p.DropRate <= 0 && p.DupRate <= 0 && len(p.Drops) == 0) {
		return
	}
	seq, prevSrc := 0, -1
	for _, msg := range box {
		if msg.Src != prevSrc {
			seq, prevSrc = 0, msg.Src
		}
		if p.DropsMessage(round, msg.Src, dst, seq) {
			c.stats.DroppedMessages++
			c.stats.ReplayedWords += int64(len(msg.Payload))
			*dropped = true
		}
		if p.DupsMessage(round, msg.Src, dst, seq) {
			c.stats.DupMessages++
		}
		seq++
	}
}

// stableSortBySrc sorts messages by sender id, preserving per-sender order.
func stableSortBySrc(box []Message) {
	sort.SliceStable(box, func(i, j int) bool { return box[i].Src < box[j].Src })
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
