package experiments

import (
	"fmt"
	"reflect"

	"github.com/rulingset/mprs/internal/graph"
	"github.com/rulingset/mprs/internal/metrics"
	"github.com/rulingset/mprs/internal/mpc"
	"github.com/rulingset/mprs/internal/rulingset"
)

// R1FaultRecovery measures the fault-injection layer (EXPERIMENTS.md R1).
// Predicted shape, in two parts:
//
//  1. Output invariance: because every injected fault is recovered at the
//     superstep barrier, each algorithm's ruling set under a recoverable
//     FaultPlan is bit-identical to its fault-free run — the paper's
//     determinism claim surviving adverse execution. Core rounds/words are
//     likewise unchanged; only the recovery fields of Stats grow.
//
//  2. Overhead linearity: with one pinned crash per superstep and no
//     checkpoint replay, each crash costs exactly one re-executed superstep,
//     so RecoveryRounds grows linearly (slope 1) in the crash count.
func R1FaultRecovery(cfg Config) (Report, error) {
	n := 2048
	if cfg.Quick {
		n = 512
	}
	g := mustGNP(n, 12, cfg.Seed)
	plan := &mpc.FaultPlan{
		Seed:      cfg.Seed + 1,
		DropRate:  0.02,
		DupRate:   0.01,
		StallRate: 0.01,
		Crashes:   []mpc.FaultEvent{{Round: 1, Machine: 0}, {Round: 3, Machine: 2}},
	}

	algos := []struct {
		name string
		run  func(*graph.Graph, rulingset.Options) (rulingset.Result, error)
	}{
		{name: "LubyMIS", run: rulingset.LubyMIS},
		{name: "DetLubyMIS", run: rulingset.DetLubyMIS},
		{name: "RandRuling2", run: rulingset.RandRuling2},
		{name: "DetRuling2", run: rulingset.DetRuling2},
	}
	invariance := metrics.NewTable(
		fmt.Sprintf("R1: output invariance under %s (G(n=%d), 8 machines, checkpoint every 4)", plan, n),
		"algorithm", "identical output", "rounds", "recovered crashes", "recovery rounds", "replayed words", "dropped", "stalls")
	allIdentical := true
	for _, a := range algos {
		base, err := a.run(g, rulingset.Options{Seed: cfg.Seed, ChunkBits: 4})
		if err != nil {
			return Report{}, err
		}
		faulty, err := a.run(g, rulingset.Options{
			Seed: cfg.Seed, ChunkBits: 4, Faults: plan, CheckpointEvery: 4,
		})
		if err != nil {
			return Report{}, err
		}
		identical := reflect.DeepEqual(base.Members, faulty.Members) &&
			base.Stats.Rounds == faulty.Stats.Rounds &&
			base.Stats.Words == faulty.Stats.Words
		allIdentical = allIdentical && identical
		invariance.AddRow(a.name, identical, faulty.Stats.Rounds, faulty.Stats.RecoveredCrashes,
			faulty.Stats.RecoveryRounds, faulty.Stats.ReplayedWords,
			faulty.Stats.DroppedMessages, faulty.Stats.StallRounds)
	}

	// The clique implementation rides the same plan (node crashes re-execute
	// the round from the barrier).
	cliqueBase, err := rulingset.CliqueDetRuling2(g, rulingset.Options{ChunkBits: 4})
	if err != nil {
		return Report{}, err
	}
	cliqueFaulty, err := rulingset.CliqueDetRuling2(g, rulingset.Options{ChunkBits: 4, Faults: plan})
	if err != nil {
		return Report{}, err
	}
	cliqueIdentical := reflect.DeepEqual(cliqueBase.Members, cliqueFaulty.Members) &&
		cliqueBase.Stats.Rounds == cliqueFaulty.Stats.Rounds
	allIdentical = allIdentical && cliqueIdentical
	invariance.AddRow("CliqueDetRuling2", cliqueIdentical, cliqueFaulty.Stats.Rounds,
		cliqueFaulty.Stats.RecoveredCrashes, cliqueFaulty.Stats.RecoveryRounds,
		cliqueFaulty.Stats.ReplayedWords, cliqueFaulty.Stats.DroppedMessages,
		cliqueFaulty.Stats.StallRounds)

	// Overhead sweep: k pinned crashes at distinct supersteps, no checkpoint
	// replay → RecoveryRounds should equal k exactly.
	crashCounts := []int{0, 2, 4, 8, 16}
	overhead := metrics.NewTable("R1: recovery overhead vs crash count (DetRuling2, z=4)",
		"crashes", "recovery rounds", "replayed words", "rounds", "identical output")
	var series metrics.Series
	series.Name = "recovery rounds"
	linear := true
	var reference []int32
	for _, k := range crashCounts {
		var kp *mpc.FaultPlan
		if k > 0 {
			kp = &mpc.FaultPlan{Seed: cfg.Seed}
			for i := 0; i < k; i++ {
				kp.Crashes = append(kp.Crashes, mpc.FaultEvent{Round: i + 1, Machine: i % 8})
			}
		}
		res, err := rulingset.DetRuling2(g, rulingset.Options{ChunkBits: 4, Faults: kp})
		if err != nil {
			return Report{}, err
		}
		if reference == nil {
			reference = res.Members
		}
		identical := reflect.DeepEqual(reference, res.Members)
		allIdentical = allIdentical && identical
		if res.Stats.RecoveryRounds != k {
			linear = false
		}
		overhead.AddRow(k, res.Stats.RecoveryRounds, res.Stats.ReplayedWords, res.Stats.Rounds, identical)
		series.X = append(series.X, float64(k))
		series.Y = append(series.Y, float64(res.Stats.RecoveryRounds))
	}

	return Report{
		ID:      "R1",
		Title:   "fault injection and superstep recovery",
		Tables:  []*metrics.Table{invariance, overhead},
		Figures: []Figure{{Title: "R1: recovery rounds vs crash count", Series: []metrics.Series{series}}},
		Notes: []string{
			fmt.Sprintf("shape: every algorithm's output bit-identical under faults: %v", allIdentical),
			fmt.Sprintf("shape: recovery rounds == crash count (linear, slope 1): %v", linear),
		},
	}, nil
}
