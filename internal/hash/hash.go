// Package hash implements the pairwise-independent hash families that drive
// the paper's derandomization, together with exact conditional distributions
// of hash values given a partially fixed seed — the computation at the heart
// of the distributed method of conditional expectations.
//
// # Construction
//
// A single "linear bit" is the GF(2)-affine function
//
//	X(v) = ⟨r, enc(v)⟩ ⊕ c
//
// where enc(v) is the k-bit binary encoding of v+1 and the seed is the k+1
// bits (r, c). Over a uniformly random seed, X(v) is an unbiased coin, and
// for u ≠ v the pair (X(u), X(v)) is uniform on {0,1}² — the coefficient
// vectors a_u = (enc(u),1) and a_v = (enc(v),1) are distinct and nonzero,
// hence linearly independent over GF(2).
//
// Stacking independent linear bits yields the two primitives the algorithms
// need:
//
//   - BitsFamily with j bits: mark(v) = X₁(v) ∧ … ∧ X_j(v) is a Bernoulli
//     2^{-j} mark, pairwise independent across vertices. Used by the
//     sparsification phases, whose sampling probabilities are powers of two.
//   - ValueFamily with ℓ bits: H(v) ∈ [0, 2^ℓ) is uniform and pairwise
//     independent; a per-vertex threshold turns it into a Bernoulli mark with
//     vertex-dependent probability (Luby's 1/(2d(v)) marks).
//
// # Conditional distributions
//
// The method of conditional expectations fixes seed bits left to right. For
// any prefix of fixed bits, each linear bit X(v) is (exactly) one of:
// determined, or uniform; and a pair (X(u), X(v)) additionally may be
// "coupled" (X(u) ⊕ X(v) determined). All conditional probabilities exposed
// here are exact dyadic rationals computed in O(1) per linear bit, or via an
// O(ℓ) digit DP for thresholded values.
package hash

import (
	"fmt"
	"math/bits"
	"math/rand"
)

// EncodeBits returns the number of bits k needed to encode vertices of a
// graph with n vertices (enc(v) = v+1 must fit in k bits).
func EncodeBits(n int) int {
	if n <= 0 {
		return 1
	}
	return bits.Len(uint(n)) // v+1 <= n fits in Len(n) bits
}

// Seed is a packed vector of seed bits with a fixed prefix. Bits in
// [0, Fixed) have committed values; the remaining bits are "free"
// (conceptually uniform random). The zero value is an empty seed.
type Seed struct {
	words []uint64
	total int
	fixed int
}

// NewSeed returns an all-zero seed of the given bit length with an empty
// fixed prefix.
func NewSeed(total int) *Seed {
	return &Seed{
		words: make([]uint64, (total+63)/64),
		total: total,
	}
}

// Total returns the seed length in bits.
func (s *Seed) Total() int { return s.total }

// Fixed returns the length of the committed prefix.
func (s *Seed) Fixed() int { return s.fixed }

// Bit returns the current value of seed bit i (committed or provisional).
func (s *Seed) Bit(i int) uint64 {
	return (s.words[i/64] >> uint(i%64)) & 1
}

// SetChunk writes the z low bits of value into seed bits [at, at+z) without
// changing the fixed prefix length. Used to try candidate extensions.
func (s *Seed) SetChunk(at, z int, value uint64) {
	for i := 0; i < z; i++ {
		idx := at + i
		w, b := idx/64, uint(idx%64)
		if value>>uint(i)&1 == 1 {
			s.words[w] |= 1 << b
		} else {
			s.words[w] &^= 1 << b
		}
	}
}

// Commit extends the fixed prefix by z bits (whose values must already have
// been written with SetChunk).
func (s *Seed) Commit(z int) {
	s.SetFixed(s.fixed + z)
}

// SetFixed sets the fixed-prefix length directly (clamped to [0, Total]).
// Seed selection uses it on clones to evaluate conditional expectations with
// a provisional chunk counted as fixed.
func (s *Seed) SetFixed(f int) {
	if f < 0 {
		f = 0
	}
	if f > s.total {
		f = s.total
	}
	s.fixed = f
}

// Randomize fills all remaining free bits with random values and commits
// them, producing a fully fixed random seed. Used by the randomized
// algorithms and by tests comparing against the derandomized selection.
func (s *Seed) Randomize(rng *rand.Rand) {
	for i := s.fixed; i < s.total; i++ {
		s.SetChunk(i, 1, uint64(rng.Intn(2)))
	}
	s.fixed = s.total
}

// Reset clears all bits and the fixed prefix.
func (s *Seed) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
	s.fixed = 0
}

// Clone returns an independent copy.
func (s *Seed) Clone() *Seed {
	c := &Seed{
		words: make([]uint64, len(s.words)),
		total: s.total,
		fixed: s.fixed,
	}
	copy(c.words, s.words)
	return c
}

// chunk extracts width bits starting at bit offset at (width <= 64).
func (s *Seed) chunk(at, width int) uint64 {
	w, b := at/64, uint(at%64)
	v := s.words[w] >> b
	if b != 0 && w+1 < len(s.words) {
		v |= s.words[w+1] << (64 - b)
	}
	if width == 64 {
		return v
	}
	return v & ((1 << uint(width)) - 1)
}

// BitProb is the conditional law of a single linear bit: either determined
// with a known value, or uniform.
type BitProb struct {
	Determined bool
	Value      uint64 // meaningful when Determined
}

// P1 returns P[X = 1] for this law.
func (b BitProb) P1() float64 {
	if b.Determined {
		return float64(b.Value)
	}
	return 0.5
}

// PairProb is the exact conditional joint law of a pair of linear bits
// (X(u), X(v)): P[X(u)=a ∧ X(v)=b] for a,b ∈ {0,1}.
type PairProb [2][2]float64

// P11 returns P[X(u)=1 ∧ X(v)=1].
func (p PairProb) P11() float64 { return p[1][1] }

// Family is a stack of nbits independent linear bits over k-bit vertex
// encodings. Seed layout: linear bit t occupies seed bits
// [t·(k+1), (t+1)·(k+1)): first the k coefficients r, then the constant c.
type Family struct {
	k     int // encoding bits
	nbits int // number of stacked linear bits
}

// NewFamily returns a family of nbits linear bits for graphs with up to n
// vertices.
func NewFamily(n, nbits int) (*Family, error) {
	if nbits < 1 {
		return nil, fmt.Errorf("hash: nbits %d < 1", nbits)
	}
	k := EncodeBits(n)
	if k+1 > 63 {
		return nil, fmt.Errorf("hash: vertex encoding of %d bits too wide", k)
	}
	return &Family{k: k, nbits: nbits}, nil
}

// SeedBits returns the total seed length in bits.
func (f *Family) SeedBits() int { return f.nbits * (f.k + 1) }

// K returns the vertex-encoding width in bits.
func (f *Family) K() int { return f.k }

// NBits returns the number of stacked linear bits.
func (f *Family) NBits() int { return f.nbits }

// SegWidth returns the seed-segment width per linear bit (K()+1: the k
// coefficients plus the constant term).
func (f *Family) SegWidth() int { return f.k + 1 }

// NewSeed allocates a zeroed seed of the right length for this family.
func (f *Family) NewSeed() *Seed { return NewSeed(f.SeedBits()) }

// coeff returns the coefficient vector a_v = (enc(v), 1): bit i < k is bit i
// of v+1, bit k is the constant term.
func (f *Family) coeff(v int) uint64 {
	return uint64(v+1) | 1<<uint(f.k)
}

// bitLaw computes the conditional law of linear bit t applied to coefficient
// vector a, given the seed's fixed prefix. O(1).
func (f *Family) bitLaw(s *Seed, t int, a uint64) BitProb {
	width := f.k + 1
	at := t * width
	// ft = number of this linear bit's seed coordinates that are fixed.
	ft := s.fixed - at
	if ft < 0 {
		ft = 0
	} else if ft > width {
		ft = width
	}
	seg := s.chunk(at, width)
	fixedMask := uint64(1)<<uint(ft) - 1
	known := uint64(bits.OnesCount64(seg&a&fixedMask)) & 1
	if a>>uint(ft) != 0 { // some participating coordinate is still free
		return BitProb{}
	}
	return BitProb{Determined: true, Value: known}
}

// BitLaw returns the conditional law of linear bit t at vertex v.
func (f *Family) BitLaw(s *Seed, t, v int) BitProb {
	return f.bitLaw(s, t, f.coeff(v))
}

// PairLaw returns the exact conditional joint law of linear bit t at the
// distinct vertices u and v. O(1).
func (f *Family) PairLaw(s *Seed, t, u, v int) PairProb {
	au, av := f.coeff(u), f.coeff(v)
	lu := f.bitLaw(s, t, au)
	lv := f.bitLaw(s, t, av)
	var p PairProb
	switch {
	case lu.Determined && lv.Determined:
		p[lu.Value][lv.Value] = 1
	case lu.Determined:
		p[lu.Value][0] = 0.5
		p[lu.Value][1] = 0.5
	case lv.Determined:
		p[0][lv.Value] = 0.5
		p[1][lv.Value] = 0.5
	default:
		// Both free: coupled iff the XOR vector has no free coordinate.
		lx := f.bitLaw(s, t, au^av)
		if lx.Determined {
			// X(u) uniform, X(v) = X(u) ⊕ lx.Value.
			p[0][lx.Value] = 0.5
			p[1][1^lx.Value] = 0.5
		} else {
			p[0][0], p[0][1], p[1][0], p[1][1] = 0.25, 0.25, 0.25, 0.25
		}
	}
	return p
}

// SegState is the precomputed conditional state of one linear bit's seed
// segment: the segment's current bit values and the count of fixed
// coordinates. Extracting it once per segment lets hot loops evaluate
// per-vertex and per-pair conditional laws with two popcounts instead of
// repeated seed-chunk extraction (see P1Seg / P11Seg).
type SegState struct {
	Seg       uint64 // the segment's k+1 seed bits
	FixedMask uint64 // mask over the fixed coordinates
	Ft        int    // number of fixed coordinates
}

// SegState extracts the conditional state of linear bit t under s.
func (f *Family) SegState(s *Seed, t int) SegState {
	width := f.k + 1
	at := t * width
	ft := s.fixed - at
	if ft < 0 {
		ft = 0
	} else if ft > width {
		ft = width
	}
	return SegState{
		Seg:       s.chunk(at, width),
		FixedMask: uint64(1)<<uint(ft) - 1,
		Ft:        ft,
	}
}

// P1Seg returns P[X_t(v) = 1] for the segment state, for vertex v.
func (f *Family) P1Seg(st SegState, v int) float64 {
	a := f.coeff(v)
	if a>>uint(st.Ft) != 0 {
		return 0.5
	}
	return float64(uint64(bits.OnesCount64(st.Seg&a&st.FixedMask)) & 1)
}

// P11Seg returns P[X_t(u) = 1 ∧ X_t(v) = 1] for the segment state, for
// distinct vertices u and v.
func (f *Family) P11Seg(st SegState, u, v int) float64 {
	au, av := f.coeff(u), f.coeff(v)
	freeU := au>>uint(st.Ft) != 0
	freeV := av>>uint(st.Ft) != 0
	switch {
	case !freeU && !freeV:
		both := st.Seg & st.FixedMask
		pu := uint64(bits.OnesCount64(both&au)) & 1
		pv := uint64(bits.OnesCount64(both&av)) & 1
		return float64(pu & pv)
	case freeU && !freeV:
		if uint64(bits.OnesCount64(st.Seg&av&st.FixedMask))&1 == 1 {
			return 0.5
		}
		return 0
	case !freeU:
		if uint64(bits.OnesCount64(st.Seg&au&st.FixedMask))&1 == 1 {
			return 0.5
		}
		return 0
	default:
		x := au ^ av
		if x>>uint(st.Ft) != 0 {
			return 0.25 // independent uniform bits
		}
		// Coupled: X_t(u) ⊕ X_t(v) is determined.
		if uint64(bits.OnesCount64(st.Seg&x&st.FixedMask))&1 == 0 {
			return 0.5
		}
		return 0
	}
}

// Bits is the j-fold AND family: mark(v) has probability exactly 2^{-j} and
// marks are pairwise independent.
type Bits struct {
	*Family
}

// NewBits returns the AND-of-j-bits marking family for up to n vertices.
func NewBits(n, j int) (*Bits, error) {
	f, err := NewFamily(n, j)
	if err != nil {
		return nil, err
	}
	return &Bits{Family: f}, nil
}

// J returns the number of AND-ed bits (marking probability is 2^-J).
func (b *Bits) J() int { return b.nbits }

// MarkProb returns P[mark(v) = 1 | fixed prefix of s], exactly.
func (b *Bits) MarkProb(s *Seed, v int) float64 {
	p := 1.0
	for t := 0; t < b.nbits; t++ {
		p *= b.BitLaw(s, t, v).P1()
		if p == 0 {
			return 0
		}
	}
	return p
}

// PairMarkProb returns P[mark(u) ∧ mark(v) | fixed prefix of s] for distinct
// u, v, exactly.
func (b *Bits) PairMarkProb(s *Seed, u, v int) float64 {
	p := 1.0
	for t := 0; t < b.nbits; t++ {
		p *= b.PairLaw(s, t, u, v).P11()
		if p == 0 {
			return 0
		}
	}
	return p
}

// Marked evaluates the mark of v under a fully fixed seed.
func (b *Bits) Marked(s *Seed, v int) bool {
	for t := 0; t < b.nbits; t++ {
		law := b.BitLaw(s, t, v)
		if !law.Determined {
			return false // free bits are treated as not-yet-lucky; callers fix all bits first
		}
		if law.Value == 0 {
			return false
		}
	}
	return true
}

// Values is the ℓ-bit uniform value family: H(v) ∈ [0, 2^ℓ) pairwise
// independent, with bit 0 the most significant.
type Values struct {
	*Family
}

// NewValues returns the ℓ-bit value family for up to n vertices.
func NewValues(n, ell int) (*Values, error) {
	f, err := NewFamily(n, ell)
	if err != nil {
		return nil, err
	}
	return &Values{Family: f}, nil
}

// Ell returns the number of value bits ℓ.
func (va *Values) Ell() int { return va.nbits }

// Value evaluates H(v) under a fully fixed seed.
func (va *Values) Value(s *Seed, v int) uint64 {
	var h uint64
	for t := 0; t < va.nbits; t++ {
		h <<= 1
		law := va.BitLaw(s, t, v)
		if law.Determined {
			h |= law.Value
		}
	}
	return h
}

// BelowProb returns P[H(v) < threshold | fixed prefix of s], exactly, via a
// most-significant-bit-first digit DP. threshold may be up to 2^ℓ.
func (va *Values) BelowProb(s *Seed, v int, threshold uint64) float64 {
	if threshold == 0 {
		return 0
	}
	if threshold >= 1<<uint(va.nbits) {
		return 1
	}
	below := 0.0
	tight := 1.0
	for t := 0; t < va.nbits; t++ {
		tb := threshold >> uint(va.nbits-1-t) & 1
		p1 := va.BitLaw(s, t, v).P1()
		if tb == 1 {
			below += tight * (1 - p1) // H bit 0 while threshold bit 1: strictly below
			tight *= p1
		} else {
			tight *= 1 - p1 // H bit must be 0 to stay tight; 1 would exceed
		}
		if tight == 0 {
			break
		}
	}
	return below
}

// PairBelowProb returns P[H(u) < tu ∧ H(v) < tv | fixed prefix of s] for
// distinct u, v, exactly, via a joint digit DP over tightness states.
func (va *Values) PairBelowProb(s *Seed, u, v int, tu, tv uint64) float64 {
	if tu == 0 || tv == 0 {
		return 0
	}
	full := uint64(1) << uint(va.nbits)
	if tu >= full && tv >= full {
		return 1
	}
	if tu >= full {
		return va.BelowProb(s, v, tv)
	}
	if tv >= full {
		return va.BelowProb(s, u, tu)
	}
	// States per value: 0 = tight (equal to threshold prefix so far),
	// 1 = strictly below (free), 2 = strictly above (dead). Joint DP over
	// (state_u, state_v); dead states absorb and contribute 0.
	var dp [3][3]float64
	dp[0][0] = 1
	for t := 0; t < va.nbits; t++ {
		ub := tu >> uint(va.nbits-1-t) & 1
		vb := tv >> uint(va.nbits-1-t) & 1
		joint := va.PairLaw(s, t, u, v)
		var next [3][3]float64
		for su := 0; su < 2; su++ { // dead rows stay dead; skip them
			for sv := 0; sv < 2; sv++ {
				mass := dp[su][sv]
				if mass == 0 {
					continue
				}
				for xu := uint64(0); xu < 2; xu++ {
					for xv := uint64(0); xv < 2; xv++ {
						var p float64
						switch {
						case su == 0 && sv == 0:
							p = joint[xu][xv]
						case su == 0: // v free: only u's bit matters
							if xv == 1 {
								continue
							}
							p = joint[xu][0] + joint[xu][1]
						case sv == 0: // u free
							if xu == 1 {
								continue
							}
							p = joint[0][xv] + joint[1][xv]
						default: // both free: nothing to track
							if xu == 1 || xv == 1 {
								continue
							}
							p = 1
						}
						if p == 0 {
							continue
						}
						nu := transition(su, xu, ub)
						nv := transition(sv, xv, vb)
						if nu == 2 || nv == 2 {
							continue
						}
						next[nu][nv] += mass * p
					}
				}
			}
		}
		dp = next
	}
	// Only strictly-below outcomes count: a value equal to its threshold is
	// not < threshold.
	return dp[1][1]
}

// transition advances a single value's tightness state given its next bit x
// and the threshold's bit tb.
func transition(state int, x, tb uint64) int {
	if state != 0 {
		return state
	}
	switch {
	case x == tb:
		return 0
	case x < tb:
		return 1
	default:
		return 2
	}
}

// JFromProb returns the smallest j with 2^-j <= p, clamped to [1, maxJ].
// Sampling probabilities in the algorithms are rounded down to powers of two
// so the Bits family applies.
func JFromProb(p float64, maxJ int) int {
	j := 1
	for float64EXP(j) > p && j < maxJ {
		j++
	}
	return j
}

func float64EXP(j int) float64 {
	v := 1.0
	for i := 0; i < j; i++ {
		v /= 2
	}
	return v
}
