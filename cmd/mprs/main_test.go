package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunUsageErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "no args", args: nil},
		{name: "unknown subcommand", args: []string{"frobnicate"}},
		{name: "run without graph", args: []string{"run", "-algo", "det2"}},
		{name: "run bad algo", args: []string{"run", "-algo", "nope", "-spec", "path:n=4"}},
		{name: "run bad regime", args: []string{"run", "-regime", "weird", "-spec", "path:n=4"}},
		{name: "run spec and in", args: []string{"run", "-spec", "path:n=4", "-in", "x"}},
		{name: "gen bad spec", args: []string{"gen", "-spec", "nosuch:n=4"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Fatalf("args %v accepted", tt.args)
			}
		})
	}
}

func TestGenInfoRunPipeline(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "g.txt")
	if err := run([]string{"gen", "-spec", "gnp:n=300,p=0.02", "-seed", "3", "-o", file}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "300 ") {
		t.Fatalf("edge list header wrong: %q", string(data[:20]))
	}
	if err := run([]string{"info", "-in", file}); err != nil {
		t.Fatalf("info: %v", err)
	}
	for _, algo := range []string{"luby", "detluby", "rand2", "det2", "detbeta", "detab", "clique2", "cliquedet2", "greedy"} {
		if err := run([]string{"run", "-algo", algo, "-in", file, "-chunk", "4", "-trace", "-rounds"}); err != nil {
			t.Fatalf("run %s: %v", algo, err)
		}
	}
}

func TestGenBinaryOutput(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "g.bin")
	if err := run([]string{"gen", "-spec", "path:n=10", "-o", file, "-binary"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "MPRSG1") {
		t.Fatalf("binary magic missing")
	}
}

func TestRunStrictSublinearFails(t *testing.T) {
	err := run([]string{"run", "-algo", "rand2", "-spec", "gnp:n=2000,p=0.004",
		"-regime", "sublinear", "-epsilon", "0.5", "-strict"})
	if err == nil {
		t.Fatal("strict sublinear run must fail")
	}
}
