package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/rulingset/mprs/internal/bench"
)

// capture runs the CLI with stdout redirected to a pipe.
func capture(t *testing.T, args []string) (string, int, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	code, runErr := run(args, w)
	w.Close()
	var b bytes.Buffer
	if _, err := b.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return b.String(), code, runErr
}

// TestBaselineStillHolds is the regression gate's own regression test: a
// fresh quick-tier run must diff clean (exact match on every deterministic
// column) against the checked-in BENCH_baseline.json. If this fails, either
// a simulator/algorithm change altered the measured quantities — regenerate
// the baseline deliberately with
//
//	go run ./cmd/mprs-bench run -quick -strip-host -out BENCH_baseline.json
//
// and justify the delta in the PR — or a real nondeterminism crept in.
func TestBaselineStillHolds(t *testing.T) {
	baseline := filepath.Join("..", "..", "BENCH_baseline.json")
	if _, err := os.Stat(baseline); err != nil {
		t.Fatalf("checked-in baseline missing: %v", err)
	}
	fresh := filepath.Join(t.TempDir(), "fresh.json")
	if _, code, err := capture(t, []string{"run", "-quick", "-strip-host", "-q", "-out", fresh}); err != nil || code != 0 {
		t.Fatalf("run: code %d, err %v", code, err)
	}
	out, code, err := capture(t, []string{"diff", baseline, fresh})
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("fresh quick run regressed against the baseline:\n%s", out)
	}
	if !strings.Contains(out, "OK:") {
		t.Errorf("diff output missing OK line:\n%s", out)
	}
}

// TestDiffExitCodes: a doctored artifact must exit 2 with a REGRESSION line.
func TestDiffExitCodes(t *testing.T) {
	dir := t.TempDir()
	orig := filepath.Join(dir, "a.json")
	if _, code, err := capture(t, []string{"run", "-quick", "-strip-host", "-q", "-workloads", "t2-star", "-out", orig}); err != nil || code != 0 {
		t.Fatalf("run: code %d, err %v", code, err)
	}
	f, err := bench.ReadFile(orig)
	if err != nil {
		t.Fatal(err)
	}
	f.Results[0].Words += 999
	doctored := filepath.Join(dir, "b.json")
	if err := f.WriteFile(doctored); err != nil {
		t.Fatal(err)
	}
	out, code, err := capture(t, []string{"diff", orig, doctored})
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Fatalf("doctored diff exited %d, want 2:\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "words") {
		t.Errorf("diff output does not name the regressed column:\n%s", out)
	}
}

// TestDiffTraceFiles: the diff subcommand detects JSONL inputs and compares
// them event by event.
func TestDiffTraceFiles(t *testing.T) {
	dir := t.TempDir()
	hdr := `{"schema":"mprs-trace/1","algo":"det2","spec":"path:n=4","seed":1,"machines":2}`
	a := filepath.Join(dir, "a.jsonl")
	b := filepath.Join(dir, "b.jsonl")
	if err := os.WriteFile(a, []byte(hdr+"\n"+`{"round":1,"words":4}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, []byte(hdr+"\n"+`{"round":1,"words":5}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code, err := capture(t, []string{"diff", a, a})
	if err != nil || code != 0 {
		t.Fatalf("identical traces: code %d err %v\n%s", code, err, out)
	}
	out, code, err = capture(t, []string{"diff", a, b})
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 || !strings.Contains(out, "REGRESSION") {
		t.Fatalf("diverging traces: code %d\n%s", code, out)
	}
	// Mixing artifact kinds is a usage error, not a silent pass.
	if _, _, err := capture(t, []string{"diff", a, filepath.Join("..", "..", "BENCH_baseline.json")}); err == nil {
		t.Error("trace-vs-bench diff accepted")
	}
}

// TestListAndVersion covers the informational subcommands.
func TestListAndVersion(t *testing.T) {
	out, code, err := capture(t, []string{"list"})
	if err != nil || code != 0 {
		t.Fatalf("list: %v", err)
	}
	for _, w := range bench.Names() {
		if !strings.Contains(out, w) {
			t.Errorf("list output missing workload %s:\n%s", w, out)
		}
	}
	out, code, err = capture(t, []string{"-version"})
	if err != nil || code != 0 || !strings.Contains(out, "mprs-bench") {
		t.Errorf("-version: code %d err %v out %q", code, err, out)
	}
	if _, _, err := capture(t, []string{"bogus"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if _, _, err := capture(t, nil); err == nil {
		t.Error("no arguments accepted")
	}
}

// TestRunWorkloadsFlagRejectsUnknown: a typo in -workloads fails loudly.
func TestRunWorkloadsFlagRejectsUnknown(t *testing.T) {
	if _, _, err := capture(t, []string{"run", "-q", "-workloads", "no-such", "-out", filepath.Join(t.TempDir(), "x.json")}); err == nil {
		t.Error("unknown workload accepted")
	}
}
