package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/rulingset/mprs/internal/trace"
)

// FlightSchema identifies a flight-recorder artifact: a JSONL file whose
// first line is a FlightHeader and whose remaining lines are the retained
// trace.Events, oldest first — the post-mortem a crash leaves behind.
const FlightSchema = "mprs-flight/1"

// FlightHeader is the first line of a flight artifact.
type FlightHeader struct {
	Schema string `json:"schema"`
	// Worker is the worker the events belong to (-1 for an in-process run).
	Worker int `json:"worker"`
	// Attempt is how many times the worker had been restarted before this
	// crash.
	Attempt int `json:"attempt"`
	// Round is the newest committed round known for the worker.
	Round int `json:"round"`
	// Kind labels the trigger: crash, stall, or error.
	Kind string `json:"kind"`
	// Reason is the human-readable cause.
	Reason string `json:"reason"`
	// Algo and Spec identify the job.
	Algo string `json:"algo,omitempty"`
	Spec string `json:"spec,omitempty"`
	// Events is the retained event count (the line count that follows).
	Events int `json:"events"`
}

// WriteFlight writes one flight artifact.
func WriteFlight(w io.Writer, hdr FlightHeader, evs []trace.Event) error {
	hdr.Schema = FlightSchema
	hdr.Events = len(evs)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("telemetry: flight header: %w", err)
	}
	for _, ev := range evs {
		if err := enc.Encode(ev); err != nil {
			return fmt.Errorf("telemetry: flight event: %w", err)
		}
	}
	return bw.Flush()
}

// WriteFlightFile writes a flight artifact into dir (creating it), named
// flight-w<worker>-a<attempt>.jsonl so successive restarts of one worker
// each keep their own post-mortem. It returns the file path.
func WriteFlightFile(dir string, hdr FlightHeader, evs []trace.Event) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("telemetry: flight dir: %w", err)
	}
	name := fmt.Sprintf("flight-w%d-a%d.jsonl", hdr.Worker, hdr.Attempt)
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("telemetry: flight file: %w", err)
	}
	if err := WriteFlight(f, hdr, evs); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("telemetry: flight file: %w", err)
	}
	return path, nil
}

// ReadFlight parses a flight artifact.
func ReadFlight(r io.Reader) (FlightHeader, []trace.Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var hdr FlightHeader
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return hdr, nil, err
		}
		return hdr, nil, fmt.Errorf("telemetry: empty flight artifact")
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return hdr, nil, fmt.Errorf("telemetry: flight header: %w", err)
	}
	if hdr.Schema != FlightSchema {
		return hdr, nil, fmt.Errorf("telemetry: schema %q, want %q", hdr.Schema, FlightSchema)
	}
	var evs []trace.Event
	line := 1
	for sc.Scan() {
		line++
		var ev trace.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return hdr, nil, fmt.Errorf("telemetry: flight line %d: %w", line, err)
		}
		evs = append(evs, ev)
	}
	if err := sc.Err(); err != nil {
		return hdr, nil, err
	}
	return hdr, evs, nil
}

// ReadFlightFile parses the flight artifact at path.
func ReadFlightFile(path string) (FlightHeader, []trace.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return FlightHeader{}, nil, err
	}
	defer f.Close()
	hdr, evs, err := ReadFlight(f)
	if err != nil {
		return hdr, evs, fmt.Errorf("%s: %w", path, err)
	}
	return hdr, evs, nil
}
