package rulingset

import (
	"math"
	"math/rand"
	"testing"

	"github.com/rulingset/mprs/internal/hash"
)

// bruteMarkProb enumerates all completions of the seed's free suffix and
// returns the fraction under which v's first j linear bits are all 1.
func bruteMarkProb(fam *hash.Bits, s *hash.Seed, v, j int) float64 {
	free := s.Total() - s.Fixed()
	full := s.Clone()
	full.SetFixed(full.Total())
	hit, count := 0, 0
	for e := uint64(0); e < 1<<uint(free); e++ {
		full.SetChunk(s.Fixed(), free, e)
		count++
		ok := true
		for t := 0; t < j; t++ {
			if law := fam.BitLaw(full, t, v); law.Value == 0 {
				ok = false
				break
			}
		}
		if ok {
			hit++
		}
	}
	return float64(hit) / float64(count)
}

func brutePairProb(fam *hash.Bits, s *hash.Seed, u, w, ju, jw int) float64 {
	free := s.Total() - s.Fixed()
	full := s.Clone()
	full.SetFixed(full.Total())
	hit, count := 0, 0
	allOne := func(v, j int) bool {
		for t := 0; t < j; t++ {
			if law := fam.BitLaw(full, t, v); law.Value == 0 {
				return false
			}
		}
		return true
	}
	for e := uint64(0); e < 1<<uint(free); e++ {
		full.SetChunk(s.Fixed(), free, e)
		count++
		if allOne(u, ju) && allOne(w, jw) {
			hit++
		}
	}
	return float64(hit) / float64(count)
}

// TestMarkStateMatchesBruteForce drives markState exactly the way the
// derandomizer does — commit segment-aligned chunks, sync, then evaluate
// with a provisional chunk — and compares every probability against
// enumeration of the free seed suffix.
func TestMarkStateMatchesBruteForce(t *testing.T) {
	const n, nbits = 7, 3
	fam, err := hash.NewBits(n, nbits)
	if err != nil {
		t.Fatal(err)
	}
	segW := fam.SegWidth()
	rng := rand.New(rand.NewSource(21))
	const tol = 1e-12

	for trial := 0; trial < 40; trial++ {
		seed := fam.NewSeed()
		ms := newMarkState(fam, n)

		// Commit a random number of whole chunks of random width, aligned.
		committed := 0
		for committed < seed.Total() && rng.Intn(3) > 0 {
			width := 1 + rng.Intn(segW)
			if b := segW - committed%segW; width > b {
				width = b
			}
			if committed+width > seed.Total() {
				width = seed.Total() - committed
			}
			seed.SetChunk(committed, width, uint64(rng.Intn(1<<uint(width))))
			seed.Commit(width)
			committed += width
		}
		ms.sync(seed)

		// Provisional chunk within the current segment (as SelectSeed does).
		prov := seed.Clone()
		if rem := seed.Total() - committed; rem > 0 {
			width := 1 + rng.Intn(segW)
			if b := segW - committed%segW; width > b {
				width = b
			}
			if width > rem {
				width = rem
			}
			prov.SetChunk(committed, width, uint64(rng.Intn(1<<uint(width))))
			prov.SetFixed(committed + width)
		}
		if prov.Total()-prov.Fixed() > 20 {
			continue // keep enumeration tractable
		}

		for v := 0; v < n; v++ {
			for j := 1; j <= nbits; j++ {
				want := bruteMarkProb(fam, prov, v, j)
				if got := ms.markProb(prov, v, j); math.Abs(got-want) > tol {
					t.Fatalf("trial %d: markProb(v=%d,j=%d) = %v, brute = %v (committed=%d prov=%d)",
						trial, v, j, got, want, committed, prov.Fixed())
				}
			}
		}
		for p := 0; p < 8; p++ {
			u := rng.Intn(n)
			w := rng.Intn(n - 1)
			if w >= u {
				w++
			}
			ju := 1 + rng.Intn(nbits)
			jw := 1 + rng.Intn(nbits)
			want := brutePairProb(fam, prov, u, w, ju, jw)
			if got := ms.pairProb(prov, u, w, ju, jw); math.Abs(got-want) > tol {
				t.Fatalf("trial %d: pairProb(u=%d,w=%d,ju=%d,jw=%d) = %v, brute = %v (committed=%d prov=%d)",
					trial, u, w, ju, jw, got, want, committed, prov.Fixed())
			}
		}
	}
}

func TestMarkStateFullyFixed(t *testing.T) {
	const n, nbits = 9, 2
	fam, err := hash.NewBits(n, nbits)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(22))
	seed := fam.NewSeed()
	seed.Randomize(rng)
	ms := newMarkState(fam, n)
	ms.sync(seed)
	for v := 0; v < n; v++ {
		for j := 1; j <= nbits; j++ {
			p := ms.markProb(seed, v, j)
			if p != 0 && p != 1 {
				t.Fatalf("fully fixed markProb = %v", p)
			}
			if (p == 1) != ms.marked(v, j) {
				t.Fatalf("marked() disagrees with markProb at v=%d j=%d", v, j)
			}
		}
	}
}

func TestLubyJ(t *testing.T) {
	tests := []struct{ d, want int }{
		{d: 1, want: 1}, // p = 1/2
		{d: 2, want: 2}, // p = 1/4
		{d: 3, want: 3}, // p = 1/8 <= 1/6
		{d: 4, want: 3}, // p = 1/8
		{d: 5, want: 4},
		{d: 8, want: 4}, // p = 1/16
	}
	for _, tt := range tests {
		if got := lubyJ(tt.d); got != tt.want {
			t.Errorf("lubyJ(%d) = %d, want %d", tt.d, got, tt.want)
		}
		// Contract: 2^-j <= 1/(2d) < 2^-(j-1).
		j := lubyJ(tt.d)
		p := math.Ldexp(1, -j)
		if p > 1/(2*float64(tt.d)) || 2*p <= 1/(2*float64(tt.d)) {
			t.Errorf("lubyJ(%d) = %d violates tightness", tt.d, j)
		}
	}
}
