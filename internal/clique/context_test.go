package clique

import (
	"context"
	"errors"
	"testing"

	"github.com/rulingset/mprs/internal/mpc"
)

func TestCliqueCancelAtBarrier(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	stats, err := RunContext(ctx, Config{}, 6, func(c *Cluster) error {
		for r := 0; r < 10; r++ {
			if r == 2 {
				cancel()
			}
			if err := c.Step("ring", func(x *Ctx) {
				x.Send((x.Node+1)%6, uint64(x.Node))
			}); err != nil {
				return err
			}
			for v := 0; v < 6; v++ {
				c.Drain(v)
			}
		}
		return nil
	})
	// The sentinels are shared with mpc — one errors.Is works for both
	// simulators.
	if !errors.Is(err, mpc.ErrCanceled) {
		t.Fatalf("err = %v, want mpc.ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v does not unwrap to context.Canceled", err)
	}
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %T, want *clique.CancelError", err)
	}
	if ce.Round != 2 || ce.Stats.Rounds != 2 {
		t.Fatalf("CancelError round = %d, stats = %+v, want 2 committed rounds", ce.Round, ce.Stats)
	}
	if stats.Rounds != 2 {
		t.Fatalf("RunContext stats = %+v", stats)
	}
	want := "clique: run canceled after 2 committed rounds"
	if got := ce.Error(); len(got) < len(want) || got[:len(want)] != want {
		t.Fatalf("Error() = %q, want prefix %q", got, want)
	}
}

func TestCliqueRouteStepChecksContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c, err := NewCluster(Config{Context: ctx}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RouteStep("never", func(x *Ctx) {}); !errors.Is(err, mpc.ErrCanceled) {
		t.Fatalf("RouteStep err = %v, want mpc.ErrCanceled", err)
	}
	if c.Stats().Rounds != 0 {
		t.Fatalf("canceled RouteStep committed %d rounds", c.Stats().Rounds)
	}
}
