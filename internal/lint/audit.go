package lint

import "sort"

// Suppression is one audited //detlint:ok entry: where it is, which analyzer
// it silences, the written justification, and whether it has gone stale —
// the named analyzer no longer reports anything at that site, so the
// annotation documents a hazard that no longer exists and should be removed
// before it misleads a reader (or quietly silences a future, different
// finding on the same line).
type Suppression struct {
	File     string
	Line     int
	Analyzer string
	Reason   string
	Stale    bool
}

// Audit runs the full analyzer set over cfg's patterns and returns every
// well-formed //detlint:ok annotation with its staleness verdict, sorted by
// position. Malformed annotations are ordinary Run findings, not audit
// entries. The configured analyzer subset is ignored: staleness is only
// meaningful against the analyzers the annotation could suppress.
func Audit(cfg Config) ([]Suppression, error) {
	cfg.Analyzers = nil
	diags, anns, err := analyze(cfg)
	if err != nil {
		return nil, err
	}
	// Index pre-suppression findings by file/analyzer for the staleness
	// check: an annotation is live if its analyzer reports on its own line
	// or the line below — the exact rule applySuppressions matches with.
	type key struct {
		file     string
		analyzer string
		line     int
	}
	fired := make(map[key]bool, len(diags))
	for _, d := range diags {
		fired[key{d.Pos.Filename, d.Analyzer, d.Pos.Line}] = true
	}
	var out []Suppression
	for file, fileAnns := range anns {
		for _, a := range fileAnns {
			for _, name := range a.analyzers {
				out = append(out, Suppression{
					File:     file,
					Line:     a.line,
					Analyzer: name,
					Reason:   a.reason,
					Stale: !fired[key{file, name, a.line}] &&
						!fired[key{file, name, a.line + 1}],
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}
