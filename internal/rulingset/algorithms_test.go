package rulingset

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"github.com/rulingset/mprs/internal/gen"
	"github.com/rulingset/mprs/internal/graph"
	"github.com/rulingset/mprs/internal/mpc"
)

// sortedNames returns the workload names in deterministic order, so subtest
// order (and any trace output they feed) never depends on map iteration.
func sortedNames(workloads map[string]*graph.Graph) []string {
	names := make([]string, 0, len(workloads))
	for name := range workloads {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// testWorkloads are the graph families every algorithm is validated on.
func testWorkloads(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	return map[string]*graph.Graph{
		"gnp-sparse":  gen.MustBuild("gnp:n=400,p=0.01", 1),
		"gnp-dense":   gen.MustBuild("gnp:n=150,p=0.15", 2),
		"powerlaw":    gen.MustBuild("powerlaw:n=400,gamma=2.5,avg=6", 3),
		"rmat":        gen.MustBuild("rmat:scale=9,ef=6", 6),
		"regular":     gen.MustBuild("regular:n=300,d=6", 4),
		"grid":        gen.MustBuild("grid:rows=18,cols=18", 0),
		"torus":       gen.MustBuild("grid:rows=12,cols=12,wrap=true", 0),
		"tree":        gen.MustBuild("tree:n=400", 5),
		"star":        gen.MustBuild("star:n=200", 0),
		"complete":    gen.MustBuild("complete:n=60", 0),
		"caterpillar": gen.MustBuild("caterpillar:spine=40,legs=6", 0),
		"barbell":     gen.MustBuild("barbell:k=25,path=10", 0),
		"path":        gen.MustBuild("path:n=300", 0),
		"singleton":   gen.MustBuild("path:n=1", 0),
		"edgeless":    graph.MustNew(50, nil),
		"disconnected": func() *graph.Graph {
			a := gen.MustBuild("complete:n=20", 0)
			b := gen.MustBuild("path:n=30", 0)
			u, err := gen.DisjointUnion(a, b)
			if err != nil {
				t.Fatal(err)
			}
			return u
		}(),
	}
}

type algo struct {
	name string
	beta int
	run  func(*graph.Graph, Options) (Result, error)
}

func allAlgorithms() []algo {
	return []algo{
		{name: "LubyMIS", beta: 1, run: LubyMIS},
		{name: "DetLubyMIS", beta: 1, run: DetLubyMIS},
		{name: "RandRuling2", beta: 2, run: RandRuling2},
		{name: "DetRuling2", beta: 2, run: DetRuling2},
		{name: "RandRulingBeta3", beta: 3, run: func(g *graph.Graph, o Options) (Result, error) { return RandRulingBeta(g, 3, o) }},
		{name: "DetRulingBeta3", beta: 3, run: func(g *graph.Graph, o Options) (Result, error) { return DetRulingBeta(g, 3, o) }},
		{name: "DetRulingBeta4", beta: 4, run: func(g *graph.Graph, o Options) (Result, error) { return DetRulingBeta(g, 4, o) }},
	}
}

// TestAlgorithmsProduceValidRulingSets is the central correctness matrix:
// every algorithm on every workload family must emit an independent set with
// at most the advertised domination radius.
func TestAlgorithmsProduceValidRulingSets(t *testing.T) {
	workloads := testWorkloads(t)
	for _, wname := range sortedNames(workloads) {
		g := workloads[wname]
		for _, a := range allAlgorithms() {
			t.Run(wname+"/"+a.name, func(t *testing.T) {
				res, err := a.run(g, Options{Seed: 42})
				if err != nil {
					t.Fatal(err)
				}
				if res.Beta != a.beta {
					t.Fatalf("advertised beta %d, want %d", res.Beta, a.beta)
				}
				if err := Check(g, res); err != nil {
					t.Fatal(err)
				}
				if res.Stats.Rounds == 0 && g.N() > 0 {
					t.Fatal("no rounds recorded")
				}
			})
		}
	}
}

func TestEmptyGraphAllAlgorithms(t *testing.T) {
	g := graph.MustNew(0, nil)
	for _, a := range allAlgorithms() {
		res, err := a.run(g, Options{})
		if err != nil {
			t.Fatalf("%s on empty graph: %v", a.name, err)
		}
		if len(res.Members) != 0 {
			t.Fatalf("%s on empty graph returned members", a.name)
		}
	}
}

// TestDeterministicAlgorithmsAreDeterministic: repeated runs, different
// Seed values, and different machine counts must all give identical outputs.
func TestDeterministicAlgorithmsAreDeterministic(t *testing.T) {
	g := gen.MustBuild("gnp:n=300,p=0.02", 9)
	algos := []algo{
		{name: "DetRuling2", run: DetRuling2},
		{name: "DetLubyMIS", run: DetLubyMIS},
		{name: "DetRulingBeta3", run: func(g *graph.Graph, o Options) (Result, error) { return DetRulingBeta(g, 3, o) }},
	}
	for _, a := range algos {
		t.Run(a.name, func(t *testing.T) {
			base, err := a.run(g, Options{Machines: 4, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			variants := []Options{
				{Machines: 4, Seed: 999}, // seed must be irrelevant
				{Machines: 1, Seed: 1},   // machine count must be irrelevant
				{Machines: 13, Seed: 77}, // both
				{Machines: 4, Seed: 1},   // plain repetition
			}
			for i, o := range variants {
				res, err := a.run(g, o)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(res.Members, base.Members) {
					t.Fatalf("variant %d (%+v) changed the output: %d vs %d members",
						i, o, len(res.Members), len(base.Members))
				}
			}
		})
	}
}

func TestRandomizedAlgorithmsReproducibleBySeed(t *testing.T) {
	g := gen.MustBuild("gnp:n=300,p=0.02", 9)
	for _, a := range []algo{{name: "LubyMIS", run: LubyMIS}, {name: "RandRuling2", run: RandRuling2}} {
		t.Run(a.name, func(t *testing.T) {
			r1, err := a.run(g, Options{Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			r2, err := a.run(g, Options{Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(r1.Members, r2.Members) {
				t.Fatal("same seed produced different outputs")
			}
		})
	}
}

func TestSchedule(t *testing.T) {
	tests := []struct {
		delta int
		want  []int
	}{
		{delta: 0, want: []int{1}},
		{delta: 1, want: []int{1}},
		{delta: 2, want: []int{1}},
		{delta: 4, want: []int{2, 1}},
		{delta: 20, want: []int{4, 2, 1}},
		{delta: 1000, want: []int{9, 5, 3, 2, 1}},
	}
	for _, tt := range tests {
		got := schedule(tt.delta)
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("schedule(%d) = %v, want %v", tt.delta, got, tt.want)
		}
	}
	// Shape: schedule length is Θ(log log Δ).
	for _, delta := range []int{10, 100, 10000, 1 << 20} {
		got := len(schedule(delta))
		loglog := math.Log2(math.Log2(float64(delta)))
		if float64(got) > 2*loglog+3 {
			t.Errorf("schedule(%d) has %d phases, too many for log log Δ = %v", delta, got, loglog)
		}
	}
}

func TestSplitSchedule(t *testing.T) {
	tests := []struct {
		js    []int
		parts int
		want  [][]int
	}{
		{js: []int{5, 3, 2, 1}, parts: 2, want: [][]int{{5, 3}, {2, 1}}},
		{js: []int{5, 3, 2}, parts: 2, want: [][]int{{5, 3}, {2}}},
		{js: []int{1}, parts: 3, want: [][]int{{1}, {}, {}}},
		{js: []int{4, 3, 2, 1}, parts: 1, want: [][]int{{4, 3, 2, 1}}},
	}
	for _, tt := range tests {
		got := splitSchedule(tt.js, tt.parts)
		if len(got) != len(tt.want) {
			t.Fatalf("splitSchedule(%v,%d) = %v", tt.js, tt.parts, got)
		}
		for i := range got {
			if len(got[i]) != len(tt.want[i]) {
				t.Fatalf("splitSchedule(%v,%d) = %v, want %v", tt.js, tt.parts, got, tt.want)
			}
			for k := range got[i] {
				if got[i][k] != tt.want[i][k] {
					t.Fatalf("splitSchedule(%v,%d) = %v, want %v", tt.js, tt.parts, got, tt.want)
				}
			}
		}
	}
}

// TestDerandomizationGuarantee: every deterministic phase's realized
// estimator value must be on the good side of its initial expectation —
// the method of conditional expectations' defining property (experiment T6).
func TestDerandomizationGuarantee(t *testing.T) {
	g := gen.MustBuild("gnp:n=500,p=0.02", 3)
	const tol = 1e-6

	res, err := DetRuling2(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ps := range res.Phases {
		if ps.EstimatorFinal > ps.EstimatorInitial+tol {
			t.Errorf("sparsify phase %d: realized %v > expectation %v",
				ps.Phase, ps.EstimatorFinal, ps.EstimatorInitial)
		}
	}

	res, err = DetLubyMIS(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ps := range res.Phases {
		if ps.SeedSteps == 0 {
			continue // iteration without marking (only isolated joiners)
		}
		if ps.EstimatorFinal < ps.EstimatorInitial-tol {
			t.Errorf("luby iteration %d: realized %v < expectation %v",
				ps.Phase, ps.EstimatorFinal, ps.EstimatorInitial)
		}
	}
}

// TestPhaseCountsFollowTheory: the sparsify loop runs |schedule(Δ)| phases
// (log log Δ shape), while Luby needs Ω(that) more iterations on the same
// graph; and active counts decrease monotonically.
func TestPhaseCountsFollowTheory(t *testing.T) {
	g := gen.MustBuild("gnp:n=800,p=0.02", 4)
	wantPhases := len(schedule(g.MaxDegree()))

	det, err := DetRuling2(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(det.Phases) > wantPhases {
		t.Errorf("DetRuling2 used %d phases, schedule allows %d", len(det.Phases), wantPhases)
	}
	prev := g.N() + 1
	for _, ps := range det.Phases {
		if ps.ActiveAfter > ps.ActiveBefore {
			t.Errorf("phase %d: active grew %d -> %d", ps.Phase, ps.ActiveBefore, ps.ActiveAfter)
		}
		if ps.ActiveBefore > prev {
			t.Errorf("phase %d: ActiveBefore inconsistent", ps.Phase)
		}
		prev = ps.ActiveAfter
	}

	luby, err := LubyMIS(g, Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(luby.Phases) <= len(det.Phases) {
		t.Errorf("Luby (%d iterations) should need more phases than sample-and-sparsify (%d) on this graph",
			len(luby.Phases), len(det.Phases))
	}
}

// TestResidualInstanceSmall: the residual graph shipped to one machine must
// be far smaller than the input (the sparsification contract).
func TestResidualInstanceSmall(t *testing.T) {
	g := gen.MustBuild("gnp:n=1000,p=0.02", 5)
	for _, a := range []algo{{name: "RandRuling2", run: RandRuling2}, {name: "DetRuling2", run: DetRuling2}} {
		res, err := a.run(g, Options{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if res.ResidualM > 4*g.N() {
			t.Errorf("%s: residual has %d edges on n=%d input (m=%d) — sparsification failed",
				a.name, res.ResidualM, g.N(), g.M())
		}
	}
}

func TestBetaParameterValidation(t *testing.T) {
	g := gen.MustBuild("path:n=10", 0)
	if _, err := DetRulingBeta(g, 0, Options{}); err == nil {
		t.Error("beta 0 accepted")
	}
	if _, err := RandRulingBeta(g, -1, Options{}); err == nil {
		t.Error("negative beta accepted")
	}
}

func TestBetaOneIsMIS(t *testing.T) {
	g := gen.MustBuild("gnp:n=200,p=0.03", 6)
	res, err := DetRulingBeta(g, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !IsRulingSet(g, res.Members, 1) {
		t.Fatal("beta=1 did not produce an MIS")
	}
}

func TestAlphaBeta(t *testing.T) {
	g := gen.MustBuild("grid:rows=14,cols=14", 0)
	for _, a := range []struct {
		name string
		run  func(*graph.Graph, int, int, Options) (Result, error)
	}{
		{name: "det", run: DetRulingAlphaBeta},
		{name: "rand", run: RandRulingAlphaBeta},
	} {
		t.Run(a.name, func(t *testing.T) {
			res, err := a.run(g, 3, 2, Options{Seed: 2})
			if err != nil {
				t.Fatal(err)
			}
			if res.Beta != 4 { // (alpha-1)*beta = 2*2
				t.Fatalf("advertised radius %d, want 4", res.Beta)
			}
			if err := Check(g, res); err != nil {
				t.Fatal(err)
			}
			// Pairwise distance >= alpha = 3 in g.
			for i, u := range res.Members {
				dist := g.BFSFrom([]int32{u})
				for _, w := range res.Members[i+1:] {
					if dist[w] >= 0 && dist[w] < 3 {
						t.Fatalf("members %d and %d at distance %d < alpha", u, w, dist[w])
					}
				}
			}
		})
	}
	if _, err := DetRulingAlphaBeta(g, 1, 2, Options{}); err == nil {
		t.Error("alpha 1 accepted")
	}
	if _, err := DetRulingAlphaBeta(g, 3, 0, Options{}); err == nil {
		t.Error("beta 0 accepted")
	}
}

// TestLinearRegimeNoViolations: on an appropriately sized instance, the
// near-linear-memory regime must run every algorithm without any budget
// violations (experiment T5's pass criterion).
func TestLinearRegimeNoViolations(t *testing.T) {
	g := gen.MustBuild("gnp:n=1200,p=0.005", 7)
	for _, a := range allAlgorithms() {
		t.Run(a.name, func(t *testing.T) {
			res, err := a.run(g, Options{Machines: 4, Seed: 1, ChunkBits: 6})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Stats.Violations) != 0 {
				t.Fatalf("budget violations in linear regime: %v", res.Stats.Violations[0])
			}
		})
	}
}

// TestSublinearRegimeFlagsResidualGather: with S = n^0.5, shipping the
// residual instance to one machine must trip the memory accounting — the
// model correctly distinguishes the regimes.
func TestSublinearRegimeFlagsResidualGather(t *testing.T) {
	g := gen.MustBuild("gnp:n=2000,p=0.004", 8)
	res, err := RandRuling2(g, Options{Regime: mpc.RegimeSublinear, Epsilon: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.Violations) == 0 {
		t.Fatal("sublinear regime accepted a linear-memory algorithm without violations")
	}
}

func TestStrictModeSurfacesError(t *testing.T) {
	g := gen.MustBuild("gnp:n=2000,p=0.004", 8)
	_, err := RandRuling2(g, Options{Regime: mpc.RegimeSublinear, Epsilon: 0.5, Strict: true, Seed: 1})
	if err == nil {
		t.Fatal("strict sublinear run must fail")
	}
}

// TestQualityComparableToGreedy: ruling-set sizes should be within a small
// factor of the greedy MIS size (they solve a relaxation, not a harder
// problem).
func TestQualityComparableToGreedy(t *testing.T) {
	g := gen.MustBuild("gnp:n=600,p=0.02", 10)
	oracle := len(GreedyMIS(g))
	for _, a := range allAlgorithms() {
		res, err := a.run(g, Options{Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Members) > 2*oracle {
			t.Errorf("%s produced %d members vs greedy MIS %d", a.name, len(res.Members), oracle)
		}
		if len(res.Members) == 0 {
			t.Errorf("%s produced empty output", a.name)
		}
	}
}

// TestChunkBitsAffectRoundsNotOutput: for deterministic algorithms the chunk
// width is a rounds/bandwidth tradeoff only — outputs may differ between
// chunk widths (different seeds can be chosen), but each must be valid, and
// seed-search steps must shrink as z grows (experiment T3's shape).
func TestChunkBitsAffectRounds(t *testing.T) {
	g := gen.MustBuild("gnp:n=400,p=0.02", 11)
	var prevSteps int
	for i, z := range []int{1, 4, 12} {
		res, err := DetRuling2(g, Options{ChunkBits: z})
		if err != nil {
			t.Fatal(err)
		}
		if err := Check(g, res); err != nil {
			t.Fatalf("z=%d: %v", z, err)
		}
		steps := 0
		for _, ps := range res.Phases {
			steps += ps.SeedSteps
		}
		if i > 0 && steps >= prevSteps {
			t.Errorf("z=%d: %d seed steps, not fewer than %d at smaller z", z, steps, prevSteps)
		}
		prevSteps = steps
	}
}

func TestMaxPhasesCap(t *testing.T) {
	g := gen.MustBuild("gnp:n=300,p=0.05", 12)
	if _, err := DetRuling2(g, Options{MaxPhases: 1}); err == nil {
		// Schedule for this graph has >1 phase; the cap must trigger.
		t.Skip("graph needed fewer phases than expected; not an error")
	}
}
