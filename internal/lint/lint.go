// Package lint is detlint: a static-analysis pass enforcing the repo's
// determinism invariants at compile time instead of only at test time.
//
// The headline claim of this codebase — bit-deterministic MPC ruling sets,
// proven by golden-trace comparison in CI — is only as strong as the
// simulator substrate underneath it. A single `range` over a map in a message
// path, a stray time.Now in an algorithm, or a silently dropped budget error
// can break bit-determinism on a future Go runtime without any test noticing
// until the golden trace diverges. detlint walks the module with go/parser
// and go/types (stdlib only, no external dependencies) and flags exactly
// those classes in the determinism-critical packages.
//
// Analyzers:
//
//	maporder   — `for … range` over a map, unless the loop only collects the
//	             keys into a slice that is subsequently sorted in the same
//	             function. Go map iteration order is deliberately randomized;
//	             feeding it into message or trace order is a determinism bug.
//	wallclock  — time.Now / time.Since / time.Until anywhere outside
//	             internal/experiments, cmd/… and examples/… (wall-clock reads
//	             are inherently nondeterministic; measurement belongs in the
//	             harness, never in an algorithm or simulator).
//	globalrand — package-level math/rand functions (rand.Intn, rand.Float64,
//	             rand.Shuffle, …) which draw from the shared, process-global
//	             source. Deterministic code must thread an explicitly seeded
//	             *rand.Rand, the way Luby/sparsify already do.
//	errdrop    — ignored error results from functions and methods defined in
//	             the determinism-critical packages (Ctx.Send variants, the
//	             budget-charging ChargeRounds/SetResident/AddResident, Step,
//	             collectives). The PR 2 exit-code bug was exactly this class.
//	             Inside critical packages it also covers the os-level
//	             durability primitives (os.Rename, File.Close, File.Sync),
//	             including deferred calls — a dropped error there forfeits
//	             the crash-durability internal/durable promises.
//	floatorder — float32/float64 accumulation inside the body of a map range:
//	             FP addition is not associative, so the randomized iteration
//	             order changes the bits of the result.
//	sharedwrite — writes to captured state inside Step/RouteStep closures,
//	             which the simulators execute concurrently on a worker pool:
//	             a captured-variable write races between machine closures and
//	             commits in scheduling order. Machine-indexed slice writes and
//	             single-writer `if x.Machine == k` guards are recognized as
//	             deterministic and stay silent.
//
// A finding is suppressible only by an annotation on the same line or the
// line directly above:
//
//	//detlint:ok <analyzer>[,<analyzer>…] -- <reason>
//
// The justification after “--” is mandatory, and an unknown analyzer name in
// an annotation is itself an error — so suppressions stay auditable and
// cannot rot silently.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned relative to the module root.
type Diagnostic struct {
	Pos      token.Position // Filename is module-root-relative (slash-separated)
	Analyzer string
	Message  string
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Config controls one lint run.
type Config struct {
	// Dir is the directory patterns are resolved from; "" means the current
	// working directory. The module root is discovered by walking up to
	// go.mod.
	Dir string
	// Patterns are package patterns: a directory path, or a path ending in
	// "/..." for a recursive walk (testdata, vendor and hidden directories
	// are skipped by walks but may be named explicitly). Default: ./...
	Patterns []string
	// Analyzers selects a subset by name; nil means all.
	Analyzers []string
	// AllCritical treats every scanned package as determinism-critical, so
	// every analyzer applies everywhere. Used by fixture tests and the
	// -all CLI flag.
	AllCritical bool
	// SkipTests excludes _test.go files from analysis. Test files are
	// checked by default: they feed the golden traces and the correctness
	// matrix, so nondeterministic iteration there hides real signal.
	SkipTests bool
}

// Analyzer is one invariant checker. Run inspects a fully typechecked
// package and reports findings through the pass; analyzers with a nil Run
// (detflow, ptrformat) report through the module-wide taint engine instead.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
	// ModuleWide analyzers apply to every scanned package, not only the
	// determinism-critical set: their findings are anchored on critical-API
	// sinks (or byte-stream encodes), so running them everywhere is what
	// catches the helper-package flows the critical-only analyzers miss.
	ModuleWide bool
}

// Pass hands one typechecked package (or test variant of a package) to an
// analyzer.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Critical reports whether the package is determinism-critical (all
	// analyzers apply, and same-package callees count for errdrop).
	Critical bool

	analyzer         *Analyzer
	isCriticalImport func(path string) bool
	relPos           func(token.Pos) token.Position
	diags            *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.relPos(pos),
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// criticalCallee reports whether fn is defined in a determinism-critical
// package (including the package under analysis itself when it is critical),
// i.e. whether its dropped error is an errdrop finding.
func (p *Pass) criticalCallee(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	if pkg == p.Pkg {
		return p.Critical
	}
	return p.isCriticalImport(pkg.Path())
}

// Analyzers returns the full analyzer set in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		maporderAnalyzer, wallclockAnalyzer, globalrandAnalyzer, errdropAnalyzer,
		floatorderAnalyzer, sharedwriteAnalyzer,
		detflowAnalyzer, nondetencodeAnalyzer, ptrformatAnalyzer,
	}
}

// criticalPkgs are the module-relative package directories whose code must
// be bit-deterministic: the simulators, the algorithms, the derandomization
// machinery and the substrate they share. This list is the contract future
// PRs must satisfy (see README “Static analysis”).
var criticalPkgs = map[string]bool{
	"internal/mpc":       true,
	"internal/clique":    true,
	"internal/rulingset": true,
	"internal/derand":    true,
	"internal/hash":      true,
	"internal/graph":     true,
	"internal/bitset":    true,
	"internal/trace":     true,
	"internal/durable":   true,
	"internal/transport": true,
	"internal/supervise": true,
	"internal/chaos":     true,
}

// wallclockExempt reports whether the package at the module-relative path
// may read the wall clock: the measurement harnesses (experiments, bench) and
// the binaries, where timing is the point, not a hazard. The bench harness
// keeps wall-clock quarantined in its explicitly host-dependent columns (see
// bench.HostDependentFields), so the exemption does not weaken the
// determinism contract of its other measurements. internal/supervise is
// exempt because failure detection is wall-clock by nature (heartbeat
// deadlines, restart backoff); its timers only decide WHEN workers run, never
// WHAT they compute, so committed outputs stay bit-deterministic.
// internal/telemetry is exempt because it is a pure observer: it measures
// wall-clock span latencies for the /metrics endpoint but exports nothing the
// deterministic core reads back (detflow still sweeps it to prove that — see
// the observer-package rule in flow.go). The transport wire layer gets no
// exemption: framing and exchange must be timing-free.
func wallclockExempt(rel string) bool {
	return rel == "internal/experiments" ||
		rel == "internal/bench" ||
		rel == "internal/supervise" ||
		rel == "internal/telemetry" ||
		rel == "cmd" || strings.HasPrefix(rel, "cmd/") ||
		rel == "examples" || strings.HasPrefix(rel, "examples/")
}

// checkedUnit is one fully typechecked analysis unit, collected before any
// analyzer runs so the interprocedural taint engine can see the whole
// pattern set at once.
type checkedUnit struct {
	rel      string // module-root-relative package directory
	critical bool
	path     string
	files    []*ast.File
	pkg      *types.Package
	info     *types.Info
}

// Run executes the configured analyzers and returns the surviving findings
// (annotation-suppressed ones removed, annotation misuse added), sorted by
// position. A non-nil error means the run itself failed (parse or type
// error, bad pattern) — distinct from “findings exist”.
func Run(cfg Config) ([]Diagnostic, error) {
	diags, anns, err := analyze(cfg)
	if err != nil {
		return nil, err
	}
	diags = applySuppressions(diags, anns)
	sortDiags(diags)
	return diags, nil
}

// analyze runs the full pipeline and returns pre-suppression diagnostics
// together with the parsed annotations — the raw material both Run and the
// suppression audit work from.
func analyze(cfg Config) ([]Diagnostic, map[string][]annotation, error) {
	selected, err := selectAnalyzers(cfg.Analyzers)
	if err != nil {
		return nil, nil, err
	}
	ld, err := newLoader(cfg.Dir)
	if err != nil {
		return nil, nil, err
	}
	dirs, err := ld.expand(cfg.Patterns)
	if err != nil {
		return nil, nil, err
	}

	// Phase 1: parse and typecheck every unit up front.
	var units []*checkedUnit
	for _, dir := range dirs {
		df, err := ld.parseDir(dir)
		if err != nil {
			return nil, nil, err
		}
		if df == nil {
			continue
		}
		for _, unit := range df.units(cfg.SkipTests) {
			pkg, info, err := ld.check(unit.path, unit.files)
			if err != nil {
				return nil, nil, err
			}
			units = append(units, &checkedUnit{
				rel:      df.rel,
				critical: cfg.AllCritical || criticalPkgs[df.rel],
				path:     unit.path,
				files:    unit.files,
				pkg:      pkg,
				info:     info,
			})
		}
	}

	var diags []Diagnostic
	anns := make(map[string][]annotation) // module-relative filename → annotations

	// Phase 2: the module-wide taint engine, when a flow analyzer is
	// selected. Its findings are anchored at sinks and attributed to the
	// analyzer each source belongs to.
	selectedNames := make(map[string]bool, len(selected))
	needFlow := false
	for _, a := range selected {
		selectedNames[a.Name] = true
		if a.Run == nil {
			needFlow = true
		}
	}
	if needFlow {
		world := buildFlowWorld(units, ld, cfg)
		for _, d := range world.findings {
			if selectedNames[d.Analyzer] {
				diags = append(diags, d)
			}
		}
	}

	// Phase 3: the per-package analyzers, plus annotation collection from
	// every scanned file — including packages no analyzer ran on — so a
	// malformed annotation can never hide anywhere in the tree.
	for _, u := range units {
		for _, a := range selected {
			if a.Run == nil || !analyzerApplies(a, u.rel, u.critical) {
				continue
			}
			pass := &Pass{
				Fset:     ld.fset,
				Files:    u.files,
				Pkg:      u.pkg,
				Info:     u.info,
				Critical: u.critical,
				analyzer: a,
				diags:    &diags,
				relPos:   ld.relPos,
				isCriticalImport: func(path string) bool {
					rel, ok := ld.moduleRel(path)
					if !ok {
						return false
					}
					return criticalPkgs[rel] || cfg.AllCritical
				},
			}
			a.Run(pass)
		}
		for _, f := range u.files {
			name := ld.relPos(f.Package).Filename
			if _, done := anns[name]; done {
				continue
			}
			fileAnns, annDiags := parseAnnotations(ld.fset, f, ld.relPos)
			anns[name] = fileAnns
			diags = append(diags, annDiags...)
		}
	}
	return diags, anns, nil
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// analyzerApplies implements the scoping rules: wallclock runs everywhere
// except the measurement-exempt packages; module-wide analyzers (their
// findings anchor on critical-API sinks) run everywhere; every other
// analyzer runs only in determinism-critical packages.
func analyzerApplies(a *Analyzer, rel string, critical bool) bool {
	if a.Name == "wallclock" {
		return !wallclockExempt(rel)
	}
	if a.ModuleWide {
		return true
	}
	return critical
}

func selectAnalyzers(names []string) ([]*Analyzer, error) {
	all := Analyzers()
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q (known: %s)", n, knownAnalyzerNames())
		}
		out = append(out, a)
	}
	return out, nil
}

func knownAnalyzerNames() string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}
