package mprs_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	mprs "github.com/rulingset/mprs"
)

func buildTestGraph(t *testing.T) *mprs.Graph {
	t.Helper()
	g, err := mprs.BuildGraph("gnp:n=400,p=0.015", 7)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPublicAPIEndToEnd(t *testing.T) {
	g := buildTestGraph(t)
	tests := []struct {
		name string
		beta int
		run  func() (mprs.Result, error)
	}{
		{name: "MIS", beta: 1, run: func() (mprs.Result, error) { return mprs.MIS(g, mprs.Options{Seed: 1}) }},
		{name: "DetMIS", beta: 1, run: func() (mprs.Result, error) { return mprs.DetMIS(g, mprs.Options{}) }},
		{name: "RulingSet2", beta: 2, run: func() (mprs.Result, error) { return mprs.RulingSet2(g, mprs.Options{Seed: 1}) }},
		{name: "DetRulingSet2", beta: 2, run: func() (mprs.Result, error) { return mprs.DetRulingSet2(g, mprs.Options{}) }},
		{name: "RulingSet3", beta: 3, run: func() (mprs.Result, error) { return mprs.RulingSet(g, 3, mprs.Options{Seed: 1}) }},
		{name: "DetRulingSet3", beta: 3, run: func() (mprs.Result, error) { return mprs.DetRulingSet(g, 3, mprs.Options{}) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res, err := tt.run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Beta != tt.beta {
				t.Fatalf("beta = %d, want %d", res.Beta, tt.beta)
			}
			if err := mprs.Check(g, res); err != nil {
				t.Fatal(err)
			}
			if !mprs.IsRulingSet(g, res.Members, tt.beta) {
				t.Fatal("IsRulingSet disagrees with Check")
			}
			if r := mprs.RulingRadius(g, res.Members); r > tt.beta || r < 0 {
				t.Fatalf("radius %d outside [0,%d]", r, tt.beta)
			}
		})
	}
}

func TestPublicAPINewGraphAndGreedy(t *testing.T) {
	g, err := mprs.NewGraph(4, []mprs.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	mis := mprs.GreedyMIS(g)
	if !mprs.IsIndependent(g, mis) || !mprs.IsRulingSet(g, mis, 1) {
		t.Fatalf("greedy output %v invalid", mis)
	}
}

func TestPublicAPIAlphaBeta(t *testing.T) {
	g, err := mprs.BuildGraph("grid:rows=10,cols=10", 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mprs.DetRulingSetAlphaBeta(g, 3, 2, mprs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := mprs.Check(g, res); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIDeterminism(t *testing.T) {
	g := buildTestGraph(t)
	a, err := mprs.DetRulingSet2(g, mprs.Options{Machines: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := mprs.DetRulingSet2(g, mprs.Options{Machines: 11, Seed: 123})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Members, b.Members) {
		t.Fatal("deterministic algorithm output varied")
	}
}

func TestPublicAPIBadSpec(t *testing.T) {
	if _, err := mprs.BuildGraph("martian:n=10", 0); err == nil {
		t.Fatal("unknown family accepted")
	}
}

func TestPublicAPISublinearRegime(t *testing.T) {
	g := buildTestGraph(t)
	res, err := mprs.RulingSet2(g, mprs.Options{Regime: mprs.RegimeSublinear, Epsilon: 0.6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := mprs.Check(g, res); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIAdaptive(t *testing.T) {
	g := buildTestGraph(t)
	res, err := mprs.DetRulingSetAdaptive(g, mprs.Options{ResidualBudget: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.Beta != 1 {
		t.Fatalf("huge budget beta = %d", res.Beta)
	}
	if err := mprs.Check(g, res); err != nil {
		t.Fatal(err)
	}
	tight, err := mprs.RulingSetAdaptive(g, mprs.Options{ResidualBudget: 64, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := mprs.Check(g, tight); err != nil {
		t.Fatal(err)
	}
	if tight.Beta < res.Beta {
		t.Fatalf("tight budget chose smaller beta (%d < %d)", tight.Beta, res.Beta)
	}
}

func TestPublicAPIClique(t *testing.T) {
	g := buildTestGraph(t)
	det, err := mprs.CliqueDetRulingSet2(g, mprs.Options{ChunkBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !mprs.IsRulingSet(g, det.Members, 2) {
		t.Fatal("clique det output invalid")
	}
	rnd, err := mprs.CliqueRulingSet2(g, mprs.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !mprs.IsRulingSet(g, rnd.Members, 2) {
		t.Fatal("clique rand output invalid")
	}
}

func TestPublicAPICheckDistributed(t *testing.T) {
	g := buildTestGraph(t)
	res, err := mprs.DetRulingSet2(g, mprs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rounds, err := mprs.CheckDistributed(g, res.Members, 2, mprs.Options{Machines: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rounds < 1 || rounds > 5 {
		t.Fatalf("distributed verification used %d rounds", rounds)
	}
	if _, err := mprs.CheckDistributed(g, []int32{0, 1, 2, 3, 4, 5}, 1, mprs.Options{}); err == nil {
		t.Fatal("bogus set accepted")
	}
}

// TestPublicAPIDurableResume exercises the exported durable-checkpoint
// surface: OpenCheckpointDir as the CheckpointSink of a run, cooperative
// cancellation mid-run, and a ResumeState restart that reproduces the
// uninterrupted output bit for bit.
func TestPublicAPIDurableResume(t *testing.T) {
	g := buildTestGraph(t)
	opts := func() mprs.Options {
		return mprs.Options{ChunkBits: 4, CheckpointEvery: 2}
	}

	dir := t.TempDir()
	const fp = "public-api-test"
	store, err := mprs.OpenCheckpointDir(dir, fp, 0)
	if err != nil {
		t.Fatal(err)
	}
	full := opts()
	full.CheckpointSink = store
	ref, err := mprs.DetRulingSet2(g, full)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Stats.CheckpointBytes == 0 {
		t.Fatal("no durable bytes accounted")
	}

	// Cancellation is structured: sentinel, committed round, stats.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	canceled := opts()
	canceled.Context = ctx
	_, err = mprs.DetRulingSet2(g, canceled)
	if !errors.Is(err, mprs.ErrCanceled) {
		t.Fatalf("canceled run returned %v, want ErrCanceled", err)
	}
	var ce *mprs.CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("no CancelError in %v", err)
	}

	// Restart from the newest durable checkpoint.
	reopened, err := mprs.OpenCheckpointDir(dir, fp, 0)
	if err != nil {
		t.Fatal(err)
	}
	meta, state, err := reopened.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	resumed := opts()
	resumed.CheckpointSink = reopened
	resumed.Resume = &mprs.ResumeState{Round: meta.Round, State: state}
	res, err := mprs.DetRulingSet2(g, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref.Members, res.Members) {
		t.Fatal("resumed members differ from uninterrupted run")
	}
	if res.Stats.ResumeReplayRounds != meta.Round {
		t.Fatalf("ResumeReplayRounds = %d, want %d", res.Stats.ResumeReplayRounds, meta.Round)
	}
}
