// Command mprs-experiments regenerates every table and figure of the
// reproduction's evaluation (DESIGN.md §3 / EXPERIMENTS.md).
//
// Usage:
//
//	mprs-experiments               # run everything at full scale
//	mprs-experiments -quick        # CI-scale run
//	mprs-experiments -run T1,F2    # selected experiments
//	mprs-experiments -list         # list experiment ids
//	mprs-experiments -csv out/     # additionally write each table as CSV
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/rulingset/mprs/internal/buildinfo"
	"github.com/rulingset/mprs/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mprs-experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mprs-experiments", flag.ContinueOnError)
	var (
		quick   = fs.Bool("quick", false, "run at reduced scale")
		seed    = fs.Int64("seed", 1, "workload seed")
		list    = fs.Bool("list", false, "list experiment ids and exit")
		runIDs  = fs.String("run", "", "comma-separated experiment ids (default: all)")
		csvDir  = fs.String("csv", "", "directory to also write tables as CSV")
		version = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println(buildinfo.CLIVersion("mprs-experiments"))
		return nil
	}
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-4s %s\n", id, experiments.Describe(id))
		}
		return nil
	}
	ids := experiments.IDs()
	if *runIDs != "" {
		ids = nil
		for _, id := range strings.Split(*runIDs, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}
	cfg := experiments.Config{Quick: *quick, Seed: *seed}
	for _, id := range ids {
		rep, err := experiments.Run(id, cfg)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		if err := rep.Render(os.Stdout); err != nil {
			return err
		}
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, rep); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeCSVs(dir string, rep experiments.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, tb := range rep.Tables {
		name := fmt.Sprintf("%s-%d.csv", rep.ID, i)
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := tb.RenderCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
