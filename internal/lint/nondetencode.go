package lint

import (
	"go/ast"
	"go/types"
)

// nondetencode flags serialization of map-containing values through
// encoders whose byte output depends on map iteration order. encoding/gob
// walks maps in range order, so two gob encodings of the same map value are
// different byte streams — poison for anything fingerprinted, checkpointed,
// or diffed byte-for-byte in CI. (encoding/json is exempt: it sorts map
// keys.) The analyzer is module-wide: nondeterministic bytes produced in a
// helper package are just as fatal once they reach a checkpoint or a trace
// artifact, and a byte stream's destination is rarely visible at the encode
// site.
var nondetencodeAnalyzer = &Analyzer{
	Name:       "nondetencode",
	Doc:        "flag gob/unsorted-map serialization into byte streams",
	Run:        runNondetencode,
	ModuleWide: true,
}

func runNondetencode(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/gob" {
				return true
			}
			if name := fn.Name(); name != "Encode" && name != "EncodeValue" {
				return true
			}
			if len(call.Args) != 1 {
				return true
			}
			t := p.Info.TypeOf(call.Args[0])
			if t == nil {
				return true
			}
			if fn.Name() == "EncodeValue" {
				// reflect.Value hides the static type; the encoded value may
				// contain a map, and the linter cannot prove otherwise.
				p.Reportf(call.Pos(), "gob.EncodeValue hides the encoded type from static analysis; use Encode with a concrete type, or annotate with //detlint:ok nondetencode -- <reason>")
				return true
			}
			if mapT := containedMapType(t); mapT != nil {
				p.Reportf(call.Pos(), "gob encoding of %s serializes map %s in nondeterministic iteration order; encode sorted key/value slices instead, or annotate with //detlint:ok nondetencode -- <reason>",
					t.String(), mapT.String())
			}
			return true
		})
	}
}

// containedMapType returns a map type reachable from t through struct
// fields, pointers, slices and arrays (the shapes gob serializes), or nil.
func containedMapType(t types.Type) types.Type {
	return findMap(t, make(map[types.Type]bool))
}

func findMap(t types.Type, seen map[types.Type]bool) types.Type {
	if t == nil || seen[t] {
		return nil
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Map:
		return t
	case *types.Pointer:
		return findMap(u.Elem(), seen)
	case *types.Slice:
		return findMap(u.Elem(), seen)
	case *types.Array:
		return findMap(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if f := u.Field(i); f.Exported() { // gob only encodes exported fields
				if m := findMap(f.Type(), seen); m != nil {
					return m
				}
			}
		}
	}
	return nil
}
