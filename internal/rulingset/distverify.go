package rulingset

import (
	"fmt"

	"github.com/rulingset/mprs/internal/bitset"
	"github.com/rulingset/mprs/internal/mpc"
)

// VerifyDistributed checks that members form a β-ruling set using only the
// simulator's communication primitives — the way a deployment would verify
// an output without collecting the graph anywhere: one exchange round for
// independence, then β frontier-expansion rounds for domination, then a
// two-round count aggregation. Returns the number of MPC rounds spent.
//
// This is itself a (trivial) distributed algorithm whose cost the model
// meters: verification is Θ(β) rounds, far cheaper than computing the set.
func VerifyDistributed(d *mpc.DistGraph, members []int32, beta int) (int, error) {
	c := d.Cluster()
	n := d.Graph().N()
	before := c.Stats().Rounds

	inSet := bitset.New(n)
	for _, v := range members {
		if v < 0 || int(v) >= n {
			return 0, fmt.Errorf("rulingset: member %d out of range", v)
		}
		inSet.Add(int(v))
	}

	// Independence: members announce themselves; a member that hears from a
	// member neighbor is a conflict. ExchangeActive returns, per member, the
	// member neighbors only.
	nbrs, _, err := d.ExchangeActive("verify/independence", inSet, nil)
	if err != nil {
		return 0, err
	}
	for _, v := range members {
		if len(nbrs[v]) > 0 {
			return c.Stats().Rounds - before,
				fmt.Errorf("rulingset: members %d and %d are adjacent", v, nbrs[v][0])
		}
	}

	// Domination: β BFS frontier expansions from the member set.
	covered := inSet.Clone()
	frontier := inSet.Clone()
	for hop := 0; hop < beta; hop++ {
		if frontier.Count() == 0 {
			break
		}
		touched, err := d.NotifyNeighbors(fmt.Sprintf("verify/hop%d", hop+1), frontier, nil)
		if err != nil {
			return 0, err
		}
		touched.Subtract(covered)
		covered.Union(touched)
		frontier = touched
	}

	// Count uncovered vertices through the cluster.
	counts, err := c.AllReduceSumUint("verify/uncovered", func(x *mpc.Ctx) []uint64 {
		var local uint64
		for v := x.Lo; v < x.Hi; v++ {
			if !covered.Contains(v) {
				local++
			}
		}
		return []uint64{local}
	})
	if err != nil {
		return 0, err
	}
	rounds := c.Stats().Rounds - before
	if counts[0] != 0 {
		return rounds, fmt.Errorf("rulingset: %d vertices are farther than %d hops from the set", counts[0], beta)
	}
	return rounds, nil
}
