package telemetry

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestHandlerEndpoints pins the two HTTP endpoints: the Prometheus content
// type and body on /metrics, the snapshot document on /telemetry.json.
func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Gauge("mprs_committed_round", "Latest committed round.").Set(12)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(string(body), "mprs_committed_round 12") {
		t.Errorf("/metrics body:\n%s", body)
	}

	resp, err = srv.Client().Get(srv.URL + "/telemetry.json")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	s, err := DecodeSnapshot(body)
	if err != nil {
		t.Fatalf("/telemetry.json did not decode: %v\n%s", err, body)
	}
	if len(s.Points) != 1 || s.Points[0].Value != 12 {
		t.Errorf("/telemetry.json points = %+v", s.Points)
	}
}

// TestHandlerNilGatherer: a handler without a gatherer serves empty
// documents instead of panicking.
func TestHandlerNilGatherer(t *testing.T) {
	srv := httptest.NewServer(Handler(nil))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/telemetry.json"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("%s status = %d", path, resp.StatusCode)
		}
	}
}
