// Command detlint enforces the repository's determinism invariants by
// static analysis: map-iteration order leaks, wall-clock reads, global
// math/rand use, dropped Send/budget errors, and float accumulation in map
// ranges (see internal/lint for the analyzer catalogue and the
// //detlint:ok annotation syntax).
//
// Usage:
//
//	go run ./cmd/detlint ./...
//
// Findings print as text by default; -format json emits the schema-versioned
// detlint/1 document and -format sarif emits SARIF 2.1.0 for code-scanning
// upload. -audit lists every //detlint:ok suppression with its justification
// and flags stale ones (the named analyzer no longer fires at the site).
//
// Exit status is 0 when the tree is clean, 1 when there are findings (or, in
// -audit mode, stale suppressions), and 2 when the run itself fails (bad
// pattern, type error).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/rulingset/mprs/internal/buildinfo"
	"github.com/rulingset/mprs/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("detlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir       = fs.String("dir", "", "directory to resolve package patterns from (default: current directory)")
		all       = fs.Bool("all", false, "treat every scanned package as determinism-critical (used on lint fixtures)")
		skipTests = fs.Bool("skip-tests", false, "exclude _test.go files from analysis")
		analyzers = fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		format    = fs.String("format", "text", "output format: text, json or sarif")
		audit     = fs.Bool("audit", false, "list //detlint:ok suppressions instead of findings; exit 1 if any is stale")
		list      = fs.Bool("list", false, "list analyzers and exit")
		version   = fs.Bool("version", false, "print version and exit")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: detlint [flags] [packages]\n\npackages are directories, optionally with a /... suffix (default ./...)")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "detlint: unknown -format %q (text, json or sarif)\n", *format)
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.CLIVersion("detlint"))
		return 0
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	cfg := lint.Config{
		Dir:         *dir,
		Patterns:    fs.Args(),
		AllCritical: *all,
		SkipTests:   *skipTests,
	}
	if *analyzers != "" {
		cfg.Analyzers = strings.Split(*analyzers, ",")
	}
	if *audit {
		return runAudit(cfg, *format, stdout, stderr)
	}
	diags, err := lint.Run(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "detlint:", err)
		return 2
	}
	switch *format {
	case "json":
		if err := writeJSON(stdout, diags); err != nil {
			fmt.Fprintln(stderr, "detlint:", err)
			return 2
		}
	case "sarif":
		if err := writeSARIF(stdout, diags, buildinfo.Get().Version); err != nil {
			fmt.Fprintln(stderr, "detlint:", err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "detlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// runAudit implements -audit: every suppression with its justification, stale
// ones marked; any stale suppression fails the run.
func runAudit(cfg lint.Config, format string, stdout, stderr io.Writer) int {
	if format == "sarif" {
		fmt.Fprintln(stderr, "detlint: -audit supports -format text or json")
		return 2
	}
	sups, err := lint.Audit(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "detlint:", err)
		return 2
	}
	stale := 0
	for _, s := range sups {
		if s.Stale {
			stale++
		}
	}
	if format == "json" {
		if err := writeAuditJSON(stdout, sups); err != nil {
			fmt.Fprintln(stderr, "detlint:", err)
			return 2
		}
	} else {
		for _, s := range sups {
			mark := ""
			if s.Stale {
				mark = " [STALE]"
			}
			fmt.Fprintf(stdout, "%s:%d: [%s]%s %s\n", s.File, s.Line, s.Analyzer, mark, s.Reason)
		}
		fmt.Fprintf(stderr, "detlint: %d suppression(s), %d stale\n", len(sups), stale)
	}
	if stale > 0 {
		return 1
	}
	return 0
}
