package rulingset

import (
	"bytes"
	"strings"
	"testing"

	"github.com/rulingset/mprs/internal/gen"
	"github.com/rulingset/mprs/internal/graph"
	"github.com/rulingset/mprs/internal/trace"
)

// tracedRun executes one algorithm with a JSONL tracer attached and returns
// the raw trace bytes.
func tracedRun(t *testing.T, run func(*graph.Graph, Options) (Result, error), g *graph.Graph, o Options) []byte {
	t.Helper()
	var buf bytes.Buffer
	tr := trace.NewJSONL(&buf)
	o.Tracer = tr
	if _, err := run(g, o); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceByteDeterminism is the bit-determinism contract of the
// observability layer: running any algorithm twice with identical inputs
// produces byte-identical JSONL traces — with and without an active fault
// plan (recovery is deterministic too, and metered in the same events).
func TestTraceByteDeterminism(t *testing.T) {
	g := gen.MustBuild("gnp:n=300,p=0.02", 17)
	for _, a := range allAlgorithms() {
		for _, faulty := range []bool{false, true} {
			a, faulty := a, faulty
			name := a.name
			if faulty {
				name += "/faults"
			}
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				opts := Options{Seed: 5}
				if faulty {
					opts.Faults = faultTestPlan()
				}
				first := tracedRun(t, a.run, g, opts)
				if len(first) == 0 {
					t.Fatal("empty trace")
				}
				second := tracedRun(t, a.run, g, opts)
				if !bytes.Equal(first, second) {
					t.Fatal("traces of identical runs differ byte-for-byte")
				}
				// Every event carries a span annotation, and the phase spans
				// show up on every MPC algorithm. (Luby's finish phase is
				// purely local — no superstep carries that span there.)
				if !bytes.Contains(first, []byte(`"span":"sparsify"`)) {
					t.Error("trace missing sparsify span")
				}
				if !strings.Contains(a.name, "Luby") && !bytes.Contains(first, []byte(`"span":"finish"`)) {
					t.Error("trace missing finish span")
				}
				if faulty && !bytes.Contains(first, []byte(`"crashes":`)) {
					t.Error("faulty trace records no crash recovery")
				}
			})
		}
	}
}

// TestCliqueTraceByteDeterminism covers the congested-clique simulator end of
// the same contract.
func TestCliqueTraceByteDeterminism(t *testing.T) {
	g := gen.MustBuild("gnp:n=200,p=0.03", 23)
	algos := []struct {
		name string
		run  func(*graph.Graph, Options) (CliqueResult, error)
	}{
		{name: "CliqueRandRuling2", run: CliqueRandRuling2},
		{name: "CliqueDetRuling2", run: CliqueDetRuling2},
	}
	for _, a := range algos {
		a := a
		t.Run(a.name, func(t *testing.T) {
			t.Parallel()
			render := func() string {
				var buf bytes.Buffer
				tr := trace.NewJSONL(&buf)
				if _, err := a.run(g, Options{Seed: 5, Tracer: tr}); err != nil {
					t.Fatal(err)
				}
				if err := tr.Close(); err != nil {
					t.Fatal(err)
				}
				return buf.String()
			}
			first := render()
			if first == "" {
				t.Fatal("empty trace")
			}
			if second := render(); second != first {
				t.Fatal("traces of identical runs differ byte-for-byte")
			}
			for _, span := range []string{`"span":"sparsify"`, `"span":"gather"`} {
				if !strings.Contains(first, span) {
					t.Errorf("trace missing %s", span)
				}
			}
		})
	}
}
