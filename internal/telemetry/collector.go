package telemetry

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/rulingset/mprs/internal/mpc"
	"github.com/rulingset/mprs/internal/trace"
)

// DefaultFlightCap is the flight-recorder ring size when CollectorOptions
// leaves it zero: enough supersteps to reconstruct the phase a worker died
// in, small enough to ride along on every heartbeat frame.
const DefaultFlightCap = 64

// spanBounds are the fixed buckets of the per-phase latency histogram, in
// seconds. Phases of the quick-tier workloads land in the low millisecond
// buckets; the top buckets catch production-sized graphs.
var spanBounds = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60}

// CollectorOptions tunes a Collector.
type CollectorOptions struct {
	// FlightCap bounds the flight-recorder ring (0 = DefaultFlightCap).
	FlightCap int
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
}

// Collector is the per-run telemetry source: a trace.Tracer plus
// trace.SpanObserver that folds the committed superstep stream into registry
// series and retains a bounded ring of recent events for the flight
// recorder. Register it alongside the other tracer sinks via trace.Multi;
// it never mutates the events it observes, so enabling it cannot perturb
// trace bytes or Stats.
type Collector struct {
	reg *Registry
	now func() time.Time

	round     Gauge
	steps     Counter
	messages  Counter
	words     Counter
	peakSent  Gauge
	peakRecv  Gauge
	meanSent  Gauge
	giniSent  Gauge
	giniRecv  Gauge
	resident  Gauge
	crashes   Counter
	recRounds Counter
	replayed  Counter
	dropped   Counter
	dup       Counter
	stalls    Counter
	ckptBytes Counter

	mu        sync.Mutex
	span      string
	spanStart time.Time
	ring      []trace.Event
	ringStart int
}

// NewCollector creates a collector with its own registry.
func NewCollector(opts CollectorOptions) *Collector {
	if opts.FlightCap <= 0 {
		opts.FlightCap = DefaultFlightCap
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	reg := NewRegistry()
	c := &Collector{
		reg:       reg,
		now:       opts.Now,
		round:     reg.Gauge("mprs_committed_round", "Latest committed superstep round."),
		steps:     reg.Counter("mprs_supersteps_total", "Committed supersteps observed (including charged rounds)."),
		messages:  reg.Counter("mprs_messages_total", "Messages delivered across all committed rounds."),
		words:     reg.Counter("mprs_words_total", "Words delivered across all committed rounds."),
		peakSent:  reg.Gauge("mprs_peak_sent_words", "Largest per-machine per-round sent-word volume so far."),
		peakRecv:  reg.Gauge("mprs_peak_recv_words", "Largest per-machine per-round received-word volume so far."),
		meanSent:  reg.Gauge("mprs_mean_sent_words", "Mean per-machine sent words of the latest committed round."),
		giniSent:  reg.Gauge("mprs_gini_sent", "Worst per-round sent-word Gini imbalance so far (0 balanced, 1 skewed)."),
		giniRecv:  reg.Gauge("mprs_gini_recv", "Worst per-round received-word Gini imbalance so far."),
		resident:  reg.Gauge("mprs_peak_resident_words", "Largest per-machine resident memory in words so far."),
		crashes:   reg.Counter("mprs_recovered_crashes_total", "Simulated machine crashes recovered by the fault layer."),
		recRounds: reg.Counter("mprs_recovery_rounds_total", "Extra rounds spent in barrier recovery."),
		replayed:  reg.Counter("mprs_replayed_words_total", "Words replayed during recovery."),
		dropped:   reg.Counter("mprs_dropped_messages_total", "Messages dropped by the fault layer."),
		dup:       reg.Counter("mprs_duplicated_messages_total", "Messages duplicated by the fault layer."),
		stalls:    reg.Counter("mprs_stall_rounds_total", "Rounds stretched by simulated stragglers."),
		ckptBytes: reg.Counter("mprs_checkpoint_bytes_total", "Bytes persisted to durable checkpoints by this process."),
		ring:      make([]trace.Event, 0, opts.FlightCap),
	}
	return c
}

// Superstep implements trace.Tracer.
func (c *Collector) Superstep(ev trace.Event) {
	c.round.Set(float64(ev.Round))
	c.steps.Inc()
	c.messages.Add(float64(ev.Messages))
	c.words.Add(float64(ev.Words))
	c.peakSent.Max(float64(ev.MaxSent))
	c.peakRecv.Max(float64(ev.MaxRecv))
	if n := len(ev.Sent); n > 0 {
		c.meanSent.Set(float64(ev.Words) / float64(n))
	}
	c.giniSent.Max(ev.GiniSent)
	c.giniRecv.Max(ev.GiniRecv)
	for _, r := range ev.Resident {
		c.resident.Max(float64(r))
	}
	c.crashes.Add(float64(ev.Crashes))
	c.recRounds.Add(float64(ev.RecoveryRounds))
	c.replayed.Add(float64(ev.ReplayedWords))
	c.dropped.Add(float64(ev.Dropped))
	c.dup.Add(float64(ev.Duplicated))
	c.stalls.Add(float64(ev.Stalls))

	c.mu.Lock()
	if len(c.ring) < cap(c.ring) {
		c.ring = append(c.ring, ev)
	} else {
		c.ring[c.ringStart] = ev
		c.ringStart = (c.ringStart + 1) % cap(c.ring)
	}
	c.mu.Unlock()
}

// SpanChange implements trace.SpanObserver: the wall-clock residence time of
// the phase that just ended is observed into the per-span latency histogram.
// Latencies are advisory (they vary run to run); only their existence is
// deterministic.
func (c *Collector) SpanChange(span string) {
	now := c.now()
	c.mu.Lock()
	prev, start := c.span, c.spanStart
	c.span, c.spanStart = span, now
	c.mu.Unlock()
	if prev != "" && prev != span {
		c.reg.Histogram("mprs_span_seconds", "Wall-clock residence time per algorithm phase.",
			spanBounds, Label{Name: "span", Value: prev}).Observe(now.Sub(start).Seconds())
	}
}

// Gather implements Gatherer.
func (c *Collector) Gather() []Point { return c.reg.Gather() }

// Recent returns the flight-recorder ring in emission order.
func (c *Collector) Recent() []trace.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]trace.Event, 0, len(c.ring))
	out = append(out, c.ring[c.ringStart:]...)
	out = append(out, c.ring[:c.ringStart]...)
	return out
}

// WirePayload is the telemetry body a worker attaches to its heartbeat
// frames: the current points plus the flight-recorder ring. The supervisor
// keeps the newest payload per worker, so even a SIGKILLed worker — which
// cannot flush anything itself — leaves its last supersteps behind.
type WirePayload struct {
	Schema string        `json:"schema"`
	Points []Point       `json:"points,omitempty"`
	Recent []trace.Event `json:"recent,omitempty"`
}

// Wire encodes the current state as a heartbeat telemetry payload.
func (c *Collector) Wire() ([]byte, error) {
	return json.Marshal(WirePayload{Schema: SnapshotSchema, Points: c.Gather(), Recent: c.Recent()})
}

// DecodeWire parses a heartbeat telemetry payload with the same version
// tolerance as DecodeSnapshot: unknown fields and a missing schema are
// fine, a foreign schema is not.
func DecodeWire(data []byte) (WirePayload, error) {
	var p WirePayload
	if err := json.Unmarshal(data, &p); err != nil {
		return WirePayload{}, fmt.Errorf("telemetry: decode wire payload: %w", err)
	}
	if p.Schema != "" && !strings.HasPrefix(p.Schema, "mprs-telemetry/") {
		return WirePayload{}, fmt.Errorf("telemetry: unexpected wire schema %q", p.Schema)
	}
	return p, nil
}

// WrapCheckpointSink decorates a durable checkpoint sink so the bytes it
// persists are metered into mprs_checkpoint_bytes_total. The wrapper is a
// pure pass-through — same bytes, same error — so checkpoint files and
// Stats.CheckpointBytes stay bit-identical with telemetry enabled.
func (c *Collector) WrapCheckpointSink(inner mpc.CheckpointSink) mpc.CheckpointSink {
	if inner == nil {
		return nil
	}
	return meteredSink{inner: inner, c: c}
}

type meteredSink struct {
	inner mpc.CheckpointSink
	c     *Collector
}

// Persist implements mpc.CheckpointSink.
func (s meteredSink) Persist(round int, state [][]uint64) (int64, error) {
	n, err := s.inner.Persist(round, state)
	if err == nil {
		s.c.ckptBytes.Add(float64(n))
	}
	return n, err
}
