// Package rulingset implements the paper's primary contribution:
// deterministic massively parallel (MPC) algorithms for ruling sets,
// alongside the randomized algorithms they derandomize and the classical
// baselines they are measured against.
//
// A β-ruling set of G is an independent set R such that every vertex of G is
// within β hops of R; an MIS is exactly a 1-ruling set. The algorithms:
//
//   - GreedyMIS: sequential maximal independent set (local residual solver
//     and quality oracle).
//   - LubyMIS / DetLubyMIS: Luby's randomized MIS in MPC, and its
//     derandomization via pairwise-independent marks chosen by the method of
//     conditional expectations. Θ(log n) phases — the baseline whose phase
//     count the 2-ruling relaxation beats exponentially.
//   - RandRuling2 / DetRuling2: the sample-and-sparsify 2-ruling set
//     (geometrically growing sampling probabilities, O(log log Δ) phases,
//     residual instance solved on one machine) and the paper's deterministic
//     counterpart, which replaces each random sampling step by a
//     pairwise-independent hash whose seed is fixed deterministically.
//   - RandRulingBeta / DetRulingBeta: β-ruling sets by recursive
//     sparsification — each extra unit of domination radius shrinks the
//     problem before the next level runs.
//   - RulingAlphaBeta: (α,β)-ruling sets via power graphs.
//
// All algorithms execute on the internal/mpc simulator, so every result
// carries the model measurements (rounds, bandwidth, memory residency) that
// the paper's theorems are about.
package rulingset

import (
	"context"
	"fmt"
	"math/bits"

	"github.com/rulingset/mprs/internal/graph"
	"github.com/rulingset/mprs/internal/mpc"
	"github.com/rulingset/mprs/internal/trace"
)

// Options configures an algorithm run. The zero value selects sensible
// defaults (8 machines, near-linear memory, chunk width 8).
type Options struct {
	// Machines is the simulated machine count M; default 8.
	Machines int
	// Regime is the MPC memory regime; default mpc.RegimeLinear.
	Regime mpc.Regime
	// Epsilon is the sublinear-memory exponent for mpc.RegimeSublinear.
	Epsilon float64
	// MemoryWords is the explicit budget for mpc.RegimeExplicit.
	MemoryWords int
	// LinearSlack scales the linear-regime budget; see mpc.Config.
	LinearSlack int
	// Strict aborts on budget violations instead of recording them.
	Strict bool
	// ChunkBits is the derandomizer's z: seed bits fixed per collective step.
	// Default 8.
	ChunkBits int
	// Seed drives the randomized algorithms (and is ignored by the
	// deterministic ones). Runs with equal seeds are reproducible.
	Seed int64
	// MaxPhases caps sparsification phases as a safety net; default 64.
	MaxPhases int
	// MaxIterations caps Luby iterations; default 16·log₂(n)+32.
	MaxIterations int

	// The remaining fields are ablation knobs for the deterministic
	// algorithms' design choices (experiments A1–A4); the zero values select
	// the paper's construction.

	// SeedPolicy selects how each phase's hash seed is chosen; default
	// SeedConditionalExpectations (the paper's method).
	SeedPolicy SeedPolicy
	// EstimatorAlpha weighs the candidate-edge cost term of the
	// sparsification potential Φ = α·cost − benefit; default 2.
	EstimatorAlpha float64
	// BenefitCap, when positive, caps the Bonferroni neighborhood N'(v) at
	// this size instead of the analysis-dictated ⌊1/p⌋.
	BenefitCap int
	// LubyExactThresholds switches DetLubyMIS from power-of-two AND-family
	// marks to the ℓ-bit uniform-value family with exact 1/(2d) thresholds.
	LubyExactThresholds bool
	// ResidualBudget is the adaptive algorithms' target size (in words) for
	// the instance shipped to one machine; 0 means the cluster's budget S.
	ResidualBudget int

	// Faults, when non-nil and enabled, injects the deterministic fault
	// schedule (crashes, drops, duplicates, stalls) into the simulated
	// cluster; see mpc.FaultPlan. Every fault is recovered, so the returned
	// members are bit-identical to the fault-free run's, with the recovery
	// cost metered in the fault fields of Result.Stats.
	Faults *mpc.FaultPlan
	// CheckpointEvery snapshots driver state every k supersteps for crash
	// recovery; 0 recovers from the barrier-committed state instead. See
	// mpc.Config.CheckpointEvery.
	CheckpointEvery int

	// Tracer, when non-nil, receives one trace.Event per committed superstep
	// of the simulated cluster, annotated with the algorithm's phase spans
	// (sparsify / seed-search / gather / finish). Deterministic; free when
	// nil. See the internal/trace package for the built-in sinks.
	Tracer trace.Tracer

	// Context, when non-nil, is checked at every superstep barrier: once it
	// is done, the run stops with a *mpc.CancelError (wrapping
	// mpc.ErrCanceled or mpc.ErrDeadline) carrying the committed round and
	// Stats. See mpc.Config.Context.
	Context context.Context
	// CheckpointSink, when non-nil (with CheckpointEvery > 0), persists
	// every driver checkpoint durably; see mpc.Config.Sink. Only the
	// single-cluster algorithms (Ruling2, DetRuling2, LubyMIS, DetLubyMIS)
	// support durable checkpointing — the recursive multi-cluster drivers
	// chain fresh clusters whose rounds are not a single replayable log.
	CheckpointSink mpc.CheckpointSink
	// Resume, when non-nil, resumes from a durable checkpoint (same
	// single-cluster restriction); see mpc.Config.Resume.
	Resume *mpc.ResumeState
	// Transport, when non-nil, carries every committed superstep's message
	// exchange (see mpc.Transport); nil is the in-memory router. The
	// congested-clique drivers hand the same transport to their clique
	// cluster (the simulators share one message shape).
	Transport mpc.Transport
	// Parallelism bounds the worker pool that executes machine (or clique
	// node) step closures within one superstep: 0 means GOMAXPROCS, 1 forces
	// the serial reference path. Results, Stats, traces and checkpoint bytes
	// are bit-identical at every level (see mpc.Config.Parallelism), which is
	// why it is not part of any run fingerprint: checkpoints and traces are
	// portable across parallelism levels.
	Parallelism int
}

// SeedPolicy selects how a deterministic phase fixes its hash seed.
type SeedPolicy int

const (
	// SeedConditionalExpectations runs the distributed method of conditional
	// expectations (the paper's method; carries the per-phase guarantee).
	SeedConditionalExpectations SeedPolicy = iota + 1
	// SeedRandomFamily draws the seed uniformly at random from the family:
	// pairwise independence alone, no seed search. Good in expectation, no
	// per-phase certainty — the ablation isolating what the seed search buys.
	SeedRandomFamily
	// SeedZero uses the all-zero seed (every linear bit evaluates to the
	// parity of a fixed coefficient pattern) — a degenerate fixed choice
	// showing that *some* seed selection is necessary.
	SeedZero
)

// String implements fmt.Stringer.
func (p SeedPolicy) String() string {
	switch p {
	case SeedConditionalExpectations:
		return "cond-exp"
	case SeedRandomFamily:
		return "random-family"
	case SeedZero:
		return "zero"
	default:
		return fmt.Sprintf("seedpolicy(%d)", int(p))
	}
}

func (o Options) withDefaults(n int) Options {
	if o.Machines == 0 {
		o.Machines = 8
	}
	if o.Regime == 0 {
		o.Regime = mpc.RegimeLinear
	}
	if o.ChunkBits == 0 {
		o.ChunkBits = 8
	}
	if o.MaxPhases == 0 {
		o.MaxPhases = 64
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 16*bits.Len(uint(n)) + 32
	}
	if o.SeedPolicy == 0 {
		o.SeedPolicy = SeedConditionalExpectations
	}
	if o.EstimatorAlpha == 0 {
		o.EstimatorAlpha = 2
	}
	return o
}

// durableUnsupported rejects durable checkpointing/resume for drivers that
// chain multiple clusters (recursive β-levels, adaptive escalation, the
// congested-clique port): their rounds are split across fresh clusters, so
// they are not one replayable superstep log a durable checkpoint can anchor.
func (o Options) durableUnsupported(algo string) error {
	if o.CheckpointSink != nil || o.Resume != nil {
		return fmt.Errorf("rulingset: %s does not support durable checkpointing/resume (only the single-cluster algorithms Ruling2/DetRuling2/LubyMIS/DetLubyMIS do)", algo)
	}
	return nil
}

// cluster builds the simulated cluster for a graph of order n.
func (o Options) cluster(n int) (*mpc.Cluster, error) {
	return mpc.NewCluster(mpc.Config{
		Machines:        o.Machines,
		Regime:          o.Regime,
		Epsilon:         o.Epsilon,
		MemoryWords:     o.MemoryWords,
		LinearSlack:     o.LinearSlack,
		Strict:          o.Strict,
		Faults:          o.Faults,
		CheckpointEvery: o.CheckpointEvery,
		Tracer:          o.Tracer,
		Context:         o.Context,
		Sink:            o.CheckpointSink,
		Resume:          o.Resume,
		Transport:       o.Transport,
		Parallelism:     o.Parallelism,
	}, n)
}

// PhaseStat records one sparsification phase (or Luby iteration) for the
// trace experiments: what probability was used, how the active set and the
// candidate set evolved, and what the derandomizer did.
type PhaseStat struct {
	// Phase is the 1-based phase index.
	Phase int
	// J is the sampling exponent: marking probability 2^-J.
	J int
	// ActiveBefore and ActiveAfter count active vertices around the phase.
	ActiveBefore, ActiveAfter int
	// ActiveEdges counts edges of the active subgraph before the phase.
	ActiveEdges int
	// HighDegBefore counts active vertices with active degree >= 2^J before
	// the phase (the vertices the phase is meant to deactivate).
	HighDegBefore int
	// Marked counts vertices sampled/marked this phase.
	Marked int
	// CandidateEdges counts edges added to the candidate graph this phase
	// (edges with both endpoints marked).
	CandidateEdges int
	// SeedSteps is the number of conditional-expectation chunks fixed
	// (deterministic algorithms only).
	SeedSteps int
	// EstimatorInitial and EstimatorFinal bracket the derandomizer's
	// conditional-expectation trajectory (deterministic algorithms only).
	EstimatorInitial, EstimatorFinal float64
}

// Result is the outcome of an algorithm run.
type Result struct {
	// Members are the ruling-set vertices in ascending order.
	Members []int32
	// Beta is the guaranteed domination radius of the output (1 for MIS).
	Beta int
	// Stats are the MPC model measurements of the run.
	Stats mpc.Stats
	// Phases traces per-phase progress where the algorithm is phase-based.
	Phases []PhaseStat
	// ResidualN and ResidualM describe the instance shipped to one machine
	// for the final local solve (sample-and-sparsify algorithms only).
	ResidualN, ResidualM int
}

func distribute(g *graph.Graph, o Options) (*mpc.DistGraph, Options, error) {
	o = o.withDefaults(g.N())
	c, err := o.cluster(g.N())
	if err != nil {
		return nil, o, err
	}
	d, err := mpc.Distribute(c, g)
	if err != nil {
		return nil, o, err
	}
	return d, o, nil
}
