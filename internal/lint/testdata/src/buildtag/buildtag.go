// Package buildtag is a fixture for build-constraint-aware loading: the
// sibling files declare procControl twice under mutually exclusive
// //go:build lines (unix vs !unix), the way internal/supervise's
// process-group control does. The loader must pick exactly one variant per
// host — a redeclaration error here means constraints were ignored.
package buildtag

// useIt keeps the platform variant referenced, plus one genuine maporder
// violation so the fixture proves analyzers still run on what was loaded.
func useIt(m map[string]int) int {
	total := procControl()
	for _, v := range m { // want `map iteration order is nondeterministic`
		total += v
	}
	return total
}
