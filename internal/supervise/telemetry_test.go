package supervise

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"github.com/rulingset/mprs/internal/telemetry"
)

// TestMultiProcTelemetryEquivalence is the observer contract on the
// multi-process backend: a run with the fleet view enabled (workers attach
// telemetry to every heartbeat, the supervisor merges it) produces
// bit-identical Members, canonical Stats, trace bytes and checkpoint volume
// to a run without it.
func TestMultiProcTelemetryEquivalence(t *testing.T) {
	dir := t.TempDir()

	offSpec := testSpec(t, "det2")
	offSpec.CheckpointEvery = 4
	offSpec.CheckpointDir = filepath.Join(dir, "ck-off")
	offSpec.TraceFile = filepath.Join(dir, "off.trace")
	offRes, err := Run(offSpec, testConfig(3))
	if err != nil {
		t.Fatalf("telemetry off: %v", err)
	}

	onSpec := testSpec(t, "det2")
	onSpec.CheckpointEvery = 4
	onSpec.CheckpointDir = filepath.Join(dir, "ck-on")
	onSpec.TraceFile = filepath.Join(dir, "on.trace")
	fleet := telemetry.NewFleet()
	cfg := testConfig(3)
	cfg.Heartbeat = 400 * time.Millisecond // frequent beats: exercise the payload path hard
	cfg.Telemetry = fleet
	onRes, err := Run(onSpec, cfg)
	if err != nil {
		t.Fatalf("telemetry on: %v", err)
	}

	requireSameResult(t, offRes, onRes)
	requireSameFile(t, offSpec.TraceFile, onSpec.TraceFile)
	if offRes.Stats.CheckpointBytes != onRes.Stats.CheckpointBytes {
		t.Errorf("checkpoint bytes differ with telemetry: %d vs %d",
			offRes.Stats.CheckpointBytes, onRes.Stats.CheckpointBytes)
	}

	// The fleet view saw the run: every worker ended done, and the committed
	// round matches the deterministic result.
	points := fleet.Gather()
	states := map[string]bool{}
	committed := 0.0
	for _, p := range points {
		switch p.Name {
		case "mprs_worker_state":
			var worker, state string
			for _, l := range p.Labels {
				switch l.Name {
				case "worker":
					worker = l.Value
				case "state":
					state = l.Value
				}
			}
			states[worker+"/"+state] = true
		case "mprs_fleet_committed_round":
			committed = p.Value
		}
	}
	for w := 0; w < 3; w++ {
		if !states[strconv.Itoa(w)+"/"+telemetry.WorkerDone] {
			t.Errorf("worker %d not done in fleet view: %v", w, states)
		}
	}
	if committed != float64(onRes.Stats.Rounds) {
		t.Errorf("fleet committed round = %v, want %d", committed, onRes.Stats.Rounds)
	}
}

// TestMultiProcFlightArtifact kills a real worker process mid-run with the
// flight recorder on: the supervisor must leave a parseable mprs-flight/1
// post-mortem for the killed worker, and the restarted job must still finish
// with the right result.
func TestMultiProcFlightArtifact(t *testing.T) {
	dir := t.TempDir()
	flightDir := filepath.Join(dir, "flights")
	spec := testSpec(t, "det2")

	cfg := testConfig(3)
	cfg.Heartbeat = 400 * time.Millisecond
	cfg.MaxRestarts = 2
	cfg.BackoffInitial = 20 * time.Millisecond
	cfg.KillAt = []KillAt{{Worker: 1, Round: 10}}
	cfg.FlightDir = flightDir
	// No Config.Telemetry: FlightDir alone must switch the heartbeat payload
	// machinery on.

	inRes, err := InProc{}.Run(testSpec(t, "det2"))
	if err != nil {
		t.Fatalf("inproc: %v", err)
	}
	res, err := Run(spec, cfg)
	if err != nil {
		t.Fatalf("multiproc with flight recorder: %v", err)
	}
	requireSameResult(t, inRes, res)

	path := filepath.Join(flightDir, "flight-w1-a0.jsonl")
	if _, err := os.Stat(path); err != nil {
		entries, _ := os.ReadDir(flightDir)
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("flight artifact missing: %v (dir has %v)", err, names)
	}
	hdr, evs, err := telemetry.ReadFlightFile(path)
	if err != nil {
		t.Fatalf("flight artifact unreadable: %v", err)
	}
	if hdr.Worker != 1 || hdr.Attempt != 0 || hdr.Kind != "crash" {
		t.Errorf("flight header = %+v", hdr)
	}
	if hdr.Round < 10 {
		t.Errorf("flight round = %d, want >= 10 (the kill trigger)", hdr.Round)
	}
	if hdr.Reason == "" || hdr.Algo != "det2" {
		t.Errorf("flight header identity = %+v", hdr)
	}
	if hdr.Events != len(evs) {
		t.Errorf("header claims %d events, artifact has %d", hdr.Events, len(evs))
	}
	// The ring is the worker's last heartbeat payload; how much it holds
	// depends on heartbeat timing, but whatever is there must be coherent.
	for i := 1; i < len(evs); i++ {
		if evs[i].Round <= evs[i-1].Round {
			t.Errorf("flight events out of order: round %d after %d", evs[i].Round, evs[i-1].Round)
		}
	}
}
