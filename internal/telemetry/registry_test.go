package telemetry

import (
	"strings"
	"testing"
)

// TestPrometheusExpositionGolden pins the full text exposition byte-for-byte:
// HELP/TYPE once per family, families in name order, series in label-key
// order within a family, histogram buckets cumulative with the implicit +Inf
// terminal, and label values escaped per the 0.0.4 spec.
func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("mprs_words_total", "Words delivered.").Add(1234)
	r.Gauge("mprs_committed_round", "Latest committed round.").Set(7)
	r.Counter("mprs_worker_restarts_total", "Restarts.", Label{Name: "worker", Value: "0"}).Add(2)
	r.Counter("mprs_worker_restarts_total", "Restarts.", Label{Name: "worker", Value: "1"}).Add(1)
	h := r.Histogram("mprs_span_seconds", "Phase residence.", []float64{0.01, 0.1, 1},
		Label{Name: "span", Value: `odd"name\with` + "\n" + `breaks`})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var b strings.Builder
	if err := WritePrometheus(&b, r.Gather()); err != nil {
		t.Fatal(err)
	}
	want := `# HELP mprs_committed_round Latest committed round.
# TYPE mprs_committed_round gauge
mprs_committed_round 7
# HELP mprs_span_seconds Phase residence.
# TYPE mprs_span_seconds histogram
mprs_span_seconds_bucket{span="odd\"name\\with\nbreaks",le="0.01"} 1
mprs_span_seconds_bucket{span="odd\"name\\with\nbreaks",le="0.1"} 2
mprs_span_seconds_bucket{span="odd\"name\\with\nbreaks",le="1"} 2
mprs_span_seconds_bucket{span="odd\"name\\with\nbreaks",le="+Inf"} 3
mprs_span_seconds_sum{span="odd\"name\\with\nbreaks"} 5.055
mprs_span_seconds_count{span="odd\"name\\with\nbreaks"} 3
# HELP mprs_words_total Words delivered.
# TYPE mprs_words_total counter
mprs_words_total 1234
# HELP mprs_worker_restarts_total Restarts.
# TYPE mprs_worker_restarts_total counter
mprs_worker_restarts_total{worker="0"} 2
mprs_worker_restarts_total{worker="1"} 1
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestGatherStable proves two gathers of identical state render identical
// documents regardless of registration interleaving.
func TestGatherStable(t *testing.T) {
	build := func(order []string) string {
		r := NewRegistry()
		for _, name := range order {
			r.Counter(name, "help "+name).Add(1)
		}
		var b strings.Builder
		if err := WritePrometheus(&b, r.Gather()); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a := build([]string{"mprs_a_total", "mprs_b_total", "mprs_c_total"})
	b := build([]string{"mprs_c_total", "mprs_a_total", "mprs_b_total"})
	if a != b {
		t.Errorf("gather order depends on registration order:\n%s\nvs\n%s", a, b)
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mprs_x_total", "x")
	c.Add(5)
	c.Add(-3)
	c.Inc()
	pts := r.Gather()
	if len(pts) != 1 || pts[0].Value != 6 {
		t.Errorf("counter = %+v, want single point value 6", pts)
	}
}

func TestGaugeMax(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("mprs_peak", "peak")
	g.Max(3)
	g.Max(1)
	if v := r.Gather()[0].Value; v != 3 {
		t.Errorf("Max gauge = %v, want 3", v)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("mprs_x_total", "x")
	r.Gauge("mprs_x_total", "x")
}

// TestSnapshotRoundTrip pins the JSON snapshot document and its
// version-skew tolerance: unknown fields and a missing schema decode fine;
// a foreign schema is rejected.
func TestSnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Gauge("mprs_committed_round", "round").Set(9)
	data, err := EncodeSnapshot(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"schema":"mprs-telemetry/1"`) {
		t.Errorf("snapshot missing schema: %s", data)
	}
	s, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 1 || s.Points[0].Name != "mprs_committed_round" || s.Points[0].Value != 9 {
		t.Errorf("round-trip points = %+v", s.Points)
	}

	// A future minor version with unknown fields still decodes.
	future := `{"schema":"mprs-telemetry/9","points":[{"name":"mprs_new","kind":"gauge","value":1,"novel_field":true}],"extra":{}}`
	if s, err = DecodeSnapshot([]byte(future)); err != nil {
		t.Errorf("future snapshot rejected: %v", err)
	} else if len(s.Points) != 1 {
		t.Errorf("future snapshot points = %+v", s.Points)
	}
	// An old peer that never wrote a schema is tolerated.
	if _, err := DecodeSnapshot([]byte(`{"points":[]}`)); err != nil {
		t.Errorf("schemaless snapshot rejected: %v", err)
	}
	// A document from a different family is not.
	if _, err := DecodeSnapshot([]byte(`{"schema":"mprs-trace/1"}`)); err == nil {
		t.Error("foreign schema accepted")
	}
	if _, err := DecodeSnapshot([]byte(`{garbage`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}
