package bench

import (
	"fmt"
	"reflect"

	"github.com/rulingset/mprs/internal/trace"
)

// DiffOptions tunes artifact comparison.
type DiffOptions struct {
	// WallRatio, when > 0, turns wall-clock drift beyond the band
	// [1/WallRatio, WallRatio] into a hard regression. Zero (the default)
	// reports wall-clock drift as advisory only, so baselines diff cleanly
	// across hosts.
	WallRatio float64
	// AllowMissing downgrades rows present in only one artifact to advisory
	// deltas (useful while the registry is mid-migration). By default a
	// missing or extra row is a hard regression.
	AllowMissing bool
}

// Delta is one detected difference between two artifacts.
type Delta struct {
	// Key is the result row ("workload/algo"), or "manifest" for run-level
	// mismatches.
	Key string
	// Field is the JSON column name that differs.
	Field string
	// Old and New are the rendered values.
	Old, New string
	// Hard marks deltas that constitute a regression (non-zero exit in the
	// CLI); soft deltas are advisory.
	Hard bool
}

func (d Delta) String() string {
	sev := "ADVISORY"
	if d.Hard {
		sev = "REGRESSION"
	}
	return fmt.Sprintf("%-10s %s %s: %s -> %s", sev, d.Key, d.Field, d.Old, d.New)
}

// Diff compares two artifacts. Deterministic columns must match exactly;
// wall-clock is compared by ratio band (see DiffOptions). Rows are matched by
// Key; ordering differences alone are not deltas.
func Diff(old, new *File, opt DiffOptions) []Delta {
	var deltas []Delta
	if old.Manifest.Quick != new.Manifest.Quick {
		deltas = append(deltas, Delta{
			Key: "manifest", Field: "quick",
			Old: fmt.Sprint(old.Manifest.Quick), New: fmt.Sprint(new.Manifest.Quick),
			Hard: true,
		})
	}
	if old.Manifest.Seed != new.Manifest.Seed {
		deltas = append(deltas, Delta{
			Key: "manifest", Field: "seed",
			Old: fmt.Sprint(old.Manifest.Seed), New: fmt.Sprint(new.Manifest.Seed),
			Hard: true,
		})
	}
	oldRows := make(map[string]Result, len(old.Results))
	for _, r := range old.Results {
		oldRows[r.Key()] = r
	}
	seen := make(map[string]bool, len(new.Results))
	for _, nr := range new.Results {
		key := nr.Key()
		seen[key] = true
		or, ok := oldRows[key]
		if !ok {
			deltas = append(deltas, Delta{
				Key: key, Field: "(row)", Old: "absent", New: "present",
				Hard: !opt.AllowMissing,
			})
			continue
		}
		deltas = append(deltas, diffRow(or, nr, opt)...)
	}
	// Preserve old-artifact order for rows that vanished.
	for _, or := range old.Results {
		if !seen[or.Key()] {
			deltas = append(deltas, Delta{
				Key: or.Key(), Field: "(row)", Old: "present", New: "absent",
				Hard: !opt.AllowMissing,
			})
		}
	}
	return deltas
}

// HasRegression reports whether any delta is hard.
func HasRegression(deltas []Delta) bool {
	for _, d := range deltas {
		if d.Hard {
			return true
		}
	}
	return false
}

// hostDependent reports whether a JSON column is exempt from exact matching.
func hostDependent(field string) bool {
	for _, f := range HostDependentFields {
		if f == field {
			return true
		}
	}
	return false
}

// diffRow compares one matched row pair field by field via reflection, so
// columns added to Result later are diffed automatically (mirroring how the
// simulators' MergeStats is kept honest). Exact match for every deterministic
// column; ratio band for the host-dependent ones.
func diffRow(old, new Result, opt DiffOptions) []Delta {
	var deltas []Delta
	ot, nt := reflect.ValueOf(old), reflect.ValueOf(new)
	typ := ot.Type()
	for i := 0; i < typ.NumField(); i++ {
		field := jsonName(typ.Field(i))
		if field == "" {
			continue
		}
		ov, nv := ot.Field(i).Interface(), nt.Field(i).Interface()
		if hostDependent(field) {
			deltas = append(deltas, diffWall(old.Key(), field, ov, nv, opt)...)
			continue
		}
		if !reflect.DeepEqual(ov, nv) {
			deltas = append(deltas, Delta{
				Key: old.Key(), Field: field,
				Old: fmt.Sprint(ov), New: fmt.Sprint(nv),
				Hard: true,
			})
		}
	}
	return deltas
}

// diffWall applies the opt-in ratio band to a host-dependent column. A zero
// value on either side (stripped artifact, sub-resolution run) disables the
// band for that row — there is no meaningful ratio to take.
func diffWall(key, field string, ov, nv interface{}, opt DiffOptions) []Delta {
	o, okO := toFloat(ov)
	n, okN := toFloat(nv)
	if !okO || !okN || o == n {
		return nil
	}
	d := Delta{
		Key: key, Field: field,
		Old: fmt.Sprintf("%.2f", o), New: fmt.Sprintf("%.2f", n),
	}
	if opt.WallRatio > 1 && o > 0 && n > 0 {
		ratio := n / o
		if ratio > opt.WallRatio || ratio < 1/opt.WallRatio {
			d.Hard = true
		}
	}
	return []Delta{d}
}

func toFloat(v interface{}) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	}
	return 0, false
}

// jsonName extracts the JSON column name of a struct field ("" = skip).
func jsonName(f reflect.StructField) string {
	tag := f.Tag.Get("json")
	if tag == "" || tag == "-" {
		return ""
	}
	for i := 0; i < len(tag); i++ {
		if tag[i] == ',' {
			return tag[:i]
		}
	}
	return tag
}

// DiffTraces compares two JSONL trace files event by event. Traces are the
// finest-grained determinism artifact: any divergence — count, ordering, or
// any field of any event — is a hard regression. Headers are compared on
// their deterministic run parameters (algo, spec, seed, machines) but not on
// build stamps, so traces from different commits remain comparable.
func DiffTraces(oldPath, newPath string) ([]Delta, error) {
	oldHdr, oldEvs, err := trace.ReadFile(oldPath)
	if err != nil {
		return nil, err
	}
	newHdr, newEvs, err := trace.ReadFile(newPath)
	if err != nil {
		return nil, err
	}
	var deltas []Delta
	hdrField := func(field, o, n string) {
		if o != n {
			deltas = append(deltas, Delta{Key: "header", Field: field, Old: o, New: n, Hard: true})
		}
	}
	hdrField("algo", oldHdr.Algo, newHdr.Algo)
	hdrField("spec", oldHdr.Spec, newHdr.Spec)
	hdrField("seed", fmt.Sprint(oldHdr.Seed), fmt.Sprint(newHdr.Seed))
	hdrField("machines", fmt.Sprint(oldHdr.Machines), fmt.Sprint(newHdr.Machines))
	if len(oldEvs) != len(newEvs) {
		deltas = append(deltas, Delta{
			Key: "events", Field: "count",
			Old: fmt.Sprint(len(oldEvs)), New: fmt.Sprint(len(newEvs)),
			Hard: true,
		})
	}
	limit := len(oldEvs)
	if len(newEvs) < limit {
		limit = len(newEvs)
	}
	for i := 0; i < limit; i++ {
		if !reflect.DeepEqual(oldEvs[i], newEvs[i]) {
			deltas = append(deltas, Delta{
				Key: fmt.Sprintf("event %d", i), Field: "event",
				Old: fmt.Sprintf("%+v", oldEvs[i]), New: fmt.Sprintf("%+v", newEvs[i]),
				Hard: true,
			})
			if len(deltas) > 20 { // enough to diagnose; avoid drowning the report
				deltas = append(deltas, Delta{
					Key: "events", Field: "(truncated)",
					Old: "", New: "further event deltas omitted", Hard: true,
				})
				break
			}
		}
	}
	return deltas, nil
}
