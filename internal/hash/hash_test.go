package hash

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-12

func TestEncodeBits(t *testing.T) {
	tests := []struct {
		n    int
		want int
	}{
		{n: 0, want: 1},
		{n: 1, want: 1},
		{n: 2, want: 2},
		{n: 3, want: 2},
		{n: 4, want: 3},
		{n: 7, want: 3},
		{n: 8, want: 4},
		{n: 1023, want: 10},
		{n: 1024, want: 11},
	}
	for _, tt := range tests {
		if got := EncodeBits(tt.n); got != tt.want {
			t.Errorf("EncodeBits(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
	// enc(v) = v+1 must fit in EncodeBits(n) bits for all v in [0, n).
	for _, n := range []int{1, 2, 3, 5, 16, 100} {
		k := EncodeBits(n)
		if n > (1<<uint(k))-1 {
			t.Errorf("n=%d: enc(n-1)=%d does not fit in %d bits", n, n, k)
		}
	}
}

func TestSeedChunks(t *testing.T) {
	s := NewSeed(130)
	s.SetChunk(60, 10, 0x2AB)
	if got := s.chunk(60, 10); got != 0x2AB {
		t.Fatalf("chunk readback across word boundary = %#x, want 0x2AB", got)
	}
	if s.Bit(60) != 1 || s.Bit(61) != 1 || s.Bit(62) != 0 {
		t.Fatalf("bit readback wrong: %d %d %d", s.Bit(60), s.Bit(61), s.Bit(62))
	}
	s.SetChunk(60, 10, 0)
	if got := s.chunk(60, 10); got != 0 {
		t.Fatalf("clearing chunk failed: %#x", got)
	}
	if s.Fixed() != 0 {
		t.Fatalf("SetChunk must not move the fixed prefix")
	}
	s.Commit(100)
	if s.Fixed() != 100 {
		t.Fatalf("Commit: fixed = %d, want 100", s.Fixed())
	}
	s.Commit(100)
	if s.Fixed() != 130 {
		t.Fatalf("Commit must clamp to total, got %d", s.Fixed())
	}
	s.SetFixed(-5)
	if s.Fixed() != 0 {
		t.Fatalf("SetFixed must clamp at 0, got %d", s.Fixed())
	}
}

func TestSeedCloneIndependence(t *testing.T) {
	s := NewSeed(64)
	s.SetChunk(0, 8, 0xFF)
	s.Commit(8)
	c := s.Clone()
	c.SetChunk(8, 8, 0xAA)
	c.Commit(8)
	if s.Fixed() != 8 {
		t.Fatalf("clone mutation leaked into original fixed prefix")
	}
	if s.chunk(8, 8) != 0 {
		t.Fatalf("clone mutation leaked into original bits")
	}
}

// enumerateSeeds calls f with every full assignment of the free suffix of s,
// leaving s restored afterwards.
func enumerateSeeds(s *Seed, f func(full *Seed)) {
	free := s.Total() - s.Fixed()
	if free > 24 {
		panic("enumerateSeeds: too many free bits")
	}
	full := s.Clone()
	full.SetFixed(full.Total())
	for e := uint64(0); e < 1<<uint(free); e++ {
		full.SetChunk(s.Fixed(), free, e)
		f(full)
	}
}

func TestBitsMarginalMatchesBruteForce(t *testing.T) {
	const n, j = 13, 2
	fam, err := NewBits(n, j)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		s := fam.NewSeed()
		prefix := rng.Intn(s.Total() + 1)
		for i := 0; i < prefix; i++ {
			s.SetChunk(i, 1, uint64(rng.Intn(2)))
		}
		s.SetFixed(prefix)
		for v := 0; v < n; v++ {
			want := 0.0
			count := 0
			enumerateSeeds(s, func(full *Seed) {
				count++
				if fam.Marked(full, v) {
					want++
				}
			})
			want /= float64(count)
			if got := fam.MarkProb(s, v); math.Abs(got-want) > tol {
				t.Fatalf("trial %d v=%d prefix=%d: MarkProb=%v brute=%v", trial, v, prefix, got, want)
			}
		}
	}
}

func TestBitsPairMatchesBruteForce(t *testing.T) {
	const n, j = 11, 2
	fam, err := NewBits(n, j)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		s := fam.NewSeed()
		prefix := rng.Intn(s.Total() + 1)
		for i := 0; i < prefix; i++ {
			s.SetChunk(i, 1, uint64(rng.Intn(2)))
		}
		s.SetFixed(prefix)
		u := rng.Intn(n)
		v := rng.Intn(n - 1)
		if v >= u {
			v++
		}
		want := 0.0
		count := 0
		enumerateSeeds(s, func(full *Seed) {
			count++
			if fam.Marked(full, u) && fam.Marked(full, v) {
				want++
			}
		})
		want /= float64(count)
		if got := fam.PairMarkProb(s, u, v); math.Abs(got-want) > tol {
			t.Fatalf("trial %d (%d,%d) prefix=%d: PairMarkProb=%v brute=%v", trial, u, v, prefix, got, want)
		}
	}
}

func TestBitsPairwiseIndependence(t *testing.T) {
	// Over the full seed space, marks must have mean exactly 2^-j and
	// pairwise products mean exactly 2^-2j for every distinct pair.
	const n, j = 6, 2
	fam, err := NewBits(n, j)
	if err != nil {
		t.Fatal(err)
	}
	s := fam.NewSeed() // nothing fixed: enumerate everything
	counts := make([]int, n)
	pairCounts := make([][]int, n)
	for i := range pairCounts {
		pairCounts[i] = make([]int, n)
	}
	total := 0
	enumerateSeeds(s, func(full *Seed) {
		total++
		for u := 0; u < n; u++ {
			if !fam.Marked(full, u) {
				continue
			}
			counts[u]++
			for v := u + 1; v < n; v++ {
				if fam.Marked(full, v) {
					pairCounts[u][v]++
				}
			}
		}
	})
	p := math.Ldexp(1, -j)
	for u := 0; u < n; u++ {
		if got := float64(counts[u]) / float64(total); math.Abs(got-p) > tol {
			t.Errorf("mean mark of %d = %v, want %v", u, got, p)
		}
		for v := u + 1; v < n; v++ {
			if got := float64(pairCounts[u][v]) / float64(total); math.Abs(got-p*p) > tol {
				t.Errorf("pair (%d,%d) = %v, want %v", u, v, got, p*p)
			}
		}
	}
}

func TestConditionalExpectationConsistency(t *testing.T) {
	// The law of total expectation bit by bit:
	// E[X | prefix] = (E[X | prefix,0] + E[X | prefix,1]) / 2.
	const n, j = 12, 3
	fam, err := NewBits(n, j)
	if err != nil {
		t.Fatal(err)
	}
	check := func(seedBits uint32, u8, v8 uint8) bool {
		s := fam.NewSeed()
		prefix := int(seedBits) % s.Total()
		for i := 0; i < prefix; i++ {
			s.SetChunk(i, 1, uint64(seedBits>>uint(i%24))&1)
		}
		s.SetFixed(prefix)
		u := int(u8) % n
		v := int(v8) % (n - 1)
		if v >= u {
			v++
		}
		parent := fam.PairMarkProb(s, u, v)
		child := s.Clone()
		child.SetFixed(prefix + 1)
		child.SetChunk(prefix, 1, 0)
		c0 := fam.PairMarkProb(child, u, v)
		child.SetChunk(prefix, 1, 1)
		c1 := fam.PairMarkProb(child, u, v)
		return math.Abs(parent-(c0+c1)/2) < tol
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestValuesMatchesBruteForce(t *testing.T) {
	const n, ell = 9, 2
	fam, err := NewValues(n, ell)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		s := fam.NewSeed()
		prefix := rng.Intn(s.Total() + 1)
		for i := 0; i < prefix; i++ {
			s.SetChunk(i, 1, uint64(rng.Intn(2)))
		}
		s.SetFixed(prefix)
		u := rng.Intn(n)
		v := rng.Intn(n - 1)
		if v >= u {
			v++
		}
		tu := uint64(rng.Intn(1<<ell + 1))
		tv := uint64(rng.Intn(1<<ell + 1))
		wantU, wantPair := 0.0, 0.0
		count := 0
		enumerateSeeds(s, func(full *Seed) {
			count++
			hu, hv := fam.Value(full, u), fam.Value(full, v)
			if hu < tu {
				wantU++
			}
			if hu < tu && hv < tv {
				wantPair++
			}
		})
		wantU /= float64(count)
		wantPair /= float64(count)
		if got := fam.BelowProb(s, u, tu); math.Abs(got-wantU) > tol {
			t.Fatalf("trial %d: BelowProb(%d,%d)=%v brute=%v (prefix %d)", trial, u, tu, got, wantU, prefix)
		}
		if got := fam.PairBelowProb(s, u, v, tu, tv); math.Abs(got-wantPair) > tol {
			t.Fatalf("trial %d: PairBelowProb=(%d,%d,%d,%d)=%v brute=%v (prefix %d)", trial, u, v, tu, tv, got, wantPair, prefix)
		}
	}
}

func TestValuesUniformAndPairwiseIndependent(t *testing.T) {
	const n, ell = 5, 2
	fam, err := NewValues(n, ell)
	if err != nil {
		t.Fatal(err)
	}
	s := fam.NewSeed()
	const vals = 1 << ell
	hist := make([][]int, n)
	for i := range hist {
		hist[i] = make([]int, vals)
	}
	joint := make(map[[4]int]int)
	total := 0
	enumerateSeeds(s, func(full *Seed) {
		total++
		for u := 0; u < n; u++ {
			hu := int(fam.Value(full, u))
			hist[u][hu]++
			for v := u + 1; v < n; v++ {
				joint[[4]int{u, v, hu, int(fam.Value(full, v))}]++
			}
		}
	})
	for u := 0; u < n; u++ {
		for h, c := range hist[u] {
			if got := float64(c) / float64(total); math.Abs(got-1.0/vals) > tol {
				t.Errorf("P[H(%d)=%d] = %v, want %v", u, h, got, 1.0/vals)
			}
		}
	}
	// Exhaustive sweep of an assertion-only map: every entry is checked
	// against the same closed-form constant, so iteration order can only
	// permute t.Errorf lines on an already-failing run.
	//detlint:ok maporder -- assertion-only sweep; order never reaches trace or message state
	for key, c := range joint {
		if got := float64(c) / float64(total); math.Abs(got-1.0/(vals*vals)) > tol {
			t.Errorf("joint %v = %v, want %v", key, got, 1.0/(vals*vals))
		}
	}
}

func TestJFromProb(t *testing.T) {
	tests := []struct {
		p    float64
		maxJ int
		want int
	}{
		{p: 0.5, maxJ: 30, want: 1},
		{p: 0.51, maxJ: 30, want: 1},
		{p: 0.25, maxJ: 30, want: 2},
		{p: 0.3, maxJ: 30, want: 2},
		{p: 0.1, maxJ: 30, want: 4},
		{p: 1e-9, maxJ: 10, want: 10}, // clamped
	}
	for _, tt := range tests {
		if got := JFromProb(tt.p, tt.maxJ); got != tt.want {
			t.Errorf("JFromProb(%v,%d) = %d, want %d", tt.p, tt.maxJ, got, tt.want)
		}
	}
}

func TestNewFamilyErrors(t *testing.T) {
	if _, err := NewBits(10, 0); err == nil {
		t.Error("NewBits with 0 bits must fail")
	}
	if _, err := NewValues(10, -1); err == nil {
		t.Error("NewValues with negative bits must fail")
	}
}

func TestRandomizeFixesAllBits(t *testing.T) {
	fam, err := NewBits(20, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := fam.NewSeed()
	s.Randomize(rand.New(rand.NewSource(9)))
	if s.Fixed() != s.Total() {
		t.Fatalf("Randomize left %d free bits", s.Total()-s.Fixed())
	}
	// Under a fully fixed seed, probabilities are realized 0/1 indicators.
	for v := 0; v < 20; v++ {
		p := fam.MarkProb(s, v)
		if p != 0 && p != 1 {
			t.Fatalf("fully fixed MarkProb(%d) = %v, want 0 or 1", v, p)
		}
		if (p == 1) != fam.Marked(s, v) {
			t.Fatalf("MarkProb and Marked disagree at %d", v)
		}
	}
}
