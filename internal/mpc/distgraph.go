package mpc

import (
	"fmt"

	"github.com/rulingset/mprs/internal/bitset"
	"github.com/rulingset/mprs/internal/graph"
)

// DistGraph is a graph block-partitioned across the cluster's machines:
// machine m holds the adjacency lists of the vertices in its Range. It
// provides the communication patterns the ruling-set algorithms are built
// from, with full bandwidth accounting.
type DistGraph struct {
	c *Cluster
	g *graph.Graph
}

// Distribute places g on the cluster and charges each machine's resident
// memory for its shard (2 + deg(v) words per local vertex v). The cluster
// must have been created with ground-set size g.N().
func Distribute(c *Cluster, g *graph.Graph) (*DistGraph, error) {
	if c.N() != g.N() {
		return nil, fmt.Errorf("mpc: cluster ground set %d != graph order %d", c.N(), g.N())
	}
	d := &DistGraph{c: c, g: g}
	for m := 0; m < c.Machines(); m++ {
		lo, hi := c.Range(m)
		words := 0
		for v := lo; v < hi; v++ {
			words += 2 + g.Degree(v)
		}
		if err := c.SetResident(m, words); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Cluster returns the underlying cluster.
func (d *DistGraph) Cluster() *Cluster { return d.c }

// Graph returns the underlying graph.
func (d *DistGraph) Graph() *graph.Graph { return d.g }

// NotifyNeighbors performs the core one-round exchange: the owner of every
// vertex in marked informs the owners of all its neighbors. It returns the
// set of vertices that have at least one marked neighbor. Bandwidth is one
// word per (marked vertex, neighbor) pair, batched into one message per
// machine pair. restrict, when non-nil, limits the notified neighbors to
// members of restrict (used to confine a phase to the active subgraph).
func (d *DistGraph) NotifyNeighbors(name string, marked, restrict *bitset.Set) (*bitset.Set, error) {
	touched := bitset.New(d.g.N())
	err := d.c.Step(name, func(x *Ctx) {
		buckets := make([][]uint64, d.c.Machines())
		for v := x.Lo; v < x.Hi; v++ {
			if !marked.Contains(v) {
				continue
			}
			for _, u := range d.g.Neighbors(v) {
				if restrict != nil && !restrict.Contains(int(u)) {
					continue
				}
				dst := d.c.Owner(int(u))
				buckets[dst] = append(buckets[dst], uint64(u))
			}
		}
		for dst, payload := range buckets {
			if len(payload) > 0 {
				x.SendOwned(dst, payload)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	for m := 0; m < d.c.Machines(); m++ {
		for _, msg := range d.c.inboxes[m] {
			for _, w := range msg.Payload {
				touched.Add(int(w))
			}
		}
		d.c.inboxes[m] = nil
	}
	return touched, nil
}

// GatherSubgraph ships the subgraph induced by include to machine 0 and
// returns it together with the mapping from subgraph ids back to original
// vertex ids. This is the final "solve the residual instance locally" step
// of sample-and-sparsify algorithms; machine 0's resident memory is charged
// for the shipped instance, so an over-dense residual graph trips the budget
// check exactly as it would overflow a real machine.
//
// Two rounds: included vertices first announce membership to the owners of
// their neighbors, then each edge with both endpoints included is sent to
// machine 0 by the owner of its smaller endpoint.
func (d *DistGraph) GatherSubgraph(name string, include *bitset.Set) (*graph.Graph, []int32, error) {
	nbrs, _, err := d.ExchangeActive(name+"/announce", include, nil)
	if err != nil {
		return nil, nil, err
	}
	parts, err := d.c.Gather(name+"/ship", func(x *Ctx) []uint64 {
		var payload []uint64
		for v := x.Lo; v < x.Hi; v++ {
			if !include.Contains(v) {
				continue
			}
			for _, u := range nbrs[v] {
				if int(u) > v {
					payload = append(payload, uint64(uint32(v))<<32|uint64(uint32(u)))
				}
			}
		}
		return payload
	})
	if err != nil {
		return nil, nil, err
	}
	// Machine-0 local computation: decode, relabel, build.
	toOrig := make([]int32, 0, include.Count())
	toSub := make([]int32, d.g.N())
	for i := range toSub {
		toSub[i] = -1
	}
	include.ForEach(func(v int) bool {
		toSub[v] = int32(len(toOrig))
		toOrig = append(toOrig, int32(v))
		return true
	})
	var edges []graph.Edge
	words := 0
	for _, part := range parts {
		words += len(part)
		for _, w := range part {
			u := int32(w >> 32)
			v := int32(uint32(w))
			edges = append(edges, graph.Edge{U: toSub[u], V: toSub[v]})
		}
	}
	// Charge machine 0 for holding the residual instance (ids + edges).
	if err := d.c.AddResident(0, len(toOrig)+2*len(edges)); err != nil {
		return nil, nil, err
	}
	sub, err := graph.New(len(toOrig), edges)
	if err != nil {
		return nil, nil, err
	}
	return sub, toOrig, nil
}

// ExchangeActive performs the per-phase neighborhood exchange: the owner of
// every active vertex u announces u (and, when vals is non-nil, vals[u]) to
// the owners of all of u's neighbors. It returns, for every active vertex v,
// the ascending list of v's active neighbors and — when vals is non-nil —
// the aligned list of their announced values. One round; one or two words
// per (active vertex, neighbor) pair, batched per machine pair.
//
// Both returned structures are deterministic: inboxes are ordered by sender
// machine, senders scan their vertices and adjacency lists in ascending
// order, and vertex ownership is monotone in the vertex id.
func (d *DistGraph) ExchangeActive(name string, active *bitset.Set, vals []int32) (nbrs, nbrVals [][]int32, err error) {
	withVals := vals != nil
	err = d.c.Step(name, func(x *Ctx) {
		buckets := make([][]uint64, d.c.Machines())
		for u := x.Lo; u < x.Hi; u++ {
			if !active.Contains(u) {
				continue
			}
			for _, v := range d.g.Neighbors(u) {
				dst := d.c.Owner(int(v))
				word := uint64(uint32(v))<<32 | uint64(uint32(u))
				if withVals {
					buckets[dst] = append(buckets[dst], word, uint64(uint32(vals[u])))
				} else {
					buckets[dst] = append(buckets[dst], word)
				}
			}
		}
		for dst, payload := range buckets {
			if len(payload) > 0 {
				x.SendOwned(dst, payload)
			}
		}
	})
	if err != nil {
		return nil, nil, err
	}
	nbrs = make([][]int32, d.g.N())
	if withVals {
		nbrVals = make([][]int32, d.g.N())
	}
	stride := 1
	if withVals {
		stride = 2
	}
	for m := 0; m < d.c.Machines(); m++ {
		for _, msg := range d.c.inboxes[m] {
			for i := 0; i+stride-1 < len(msg.Payload); i += stride {
				word := msg.Payload[i]
				v := int32(word >> 32)
				u := int32(uint32(word))
				if !active.Contains(int(v)) {
					continue
				}
				nbrs[v] = append(nbrs[v], u)
				if withVals {
					nbrVals[v] = append(nbrVals[v], int32(uint32(msg.Payload[i+1])))
				}
			}
		}
		d.c.inboxes[m] = nil
	}
	return nbrs, nbrVals, nil
}
