package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "T99", "-quick"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestQuickSelectedWithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-quick", "-run", "T5,T6", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"T5-0.csv", "T6-0.csv"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Errorf("missing %s: %v", want, err)
		}
	}
}
