package chaos

import (
	"strings"
	"testing"
)

func TestParseGrammar(t *testing.T) {
	p, err := Parse("wire:corrupt@8:1, wire:hbdrop@2:0,disk:torn@4:1,disk:manifesttorn@0:2,proc:kill@10:2,proc:flap@6:1", 42)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Enabled() || p.Seed != 42 {
		t.Fatalf("plan = %+v", p)
	}
	if len(p.Wire) != 2 || p.Wire[0] != (WireEvent{WireCorrupt, 8, 1}) || p.Wire[1] != (WireEvent{WireHBDrop, 2, 0}) {
		t.Fatalf("wire = %+v", p.Wire)
	}
	if len(p.Disk) != 2 || p.Disk[0] != (DiskEvent{DiskTorn, 4, 1}) || p.Disk[1] != (DiskEvent{DiskManifestTorn, 0, 2}) {
		t.Fatalf("disk = %+v", p.Disk)
	}
	if len(p.Proc) != 2 || p.Proc[0] != (ProcEvent{ProcKill, 10, 2}) || p.Proc[1] != (ProcEvent{ProcFlap, 6, 1}) {
		t.Fatalf("proc = %+v", p.Proc)
	}
}

func TestParseDisabled(t *testing.T) {
	for _, spec := range []string{"", "  ", "off", "none", ",,"} {
		p, err := Parse(spec, 1)
		if err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
		}
		if p.Enabled() {
			t.Errorf("Parse(%q) enabled", spec)
		}
		if p != nil {
			t.Errorf("Parse(%q) non-nil", spec)
		}
	}
	var nilPlan *Plan
	if nilPlan.Enabled() || nilPlan.HasWire() || nilPlan.HasDisk(0) || nilPlan.FlapsAt(0, 5) ||
		nilPlan.Kills() != nil || nilPlan.MaxWorker() != -1 || nilPlan.ValidateWorkers(1) != nil {
		t.Error("nil plan is not inert")
	}
	if nilPlan.String() != "chaos(off)" {
		t.Errorf("nil String = %q", nilPlan.String())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		spec string
		want string // substring of the error
	}{
		{"crash=0.02", "-faults"},         // unprefixed model fault
		{"kill@5:1", "-faults"},           // unprefixed proc-ish spelling
		{"net:drop@5:1", "unknown layer"}, // unknown layer
		{"wire:zap@5:1", "unknown wire op"},
		{"disk:melt@5:1", "unknown disk op"},
		{"proc:pause@5:1", "unknown proc op"},
		{"wire:corrupt@5", "ROUND:WORKER"}, // missing worker
		{"wire:corrupt", "@"},              // missing tail
		{"wire:corrupt@x:1", "bad round"},
		{"wire:corrupt@5:y", "bad worker"},
		{"wire:corrupt@-1:1", ">= 0"},
		{"wire:corrupt@5:-1", ">= 0"},
		{"proc:kill@0:1", ">= 1"}, // proc rounds are 1-based
	}
	for _, tc := range cases {
		_, err := Parse(tc.spec, 0)
		if err == nil {
			t.Errorf("Parse(%q) accepted", tc.spec)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q) = %v, want mention of %q", tc.spec, err, tc.want)
		}
	}
}

func TestPlanHelpers(t *testing.T) {
	p, err := Parse("wire:dup@6:1,disk:enospc@4:3,proc:kill@10:0,proc:flap@8:2", 7)
	if err != nil {
		t.Fatal(err)
	}
	if !p.HasWire() || !p.HasDisk(3) || p.HasDisk(1) {
		t.Error("HasWire/HasDisk wrong")
	}
	if kills := p.Kills(); len(kills) != 1 || kills[0] != (ProcEvent{ProcKill, 10, 0}) {
		t.Errorf("Kills = %+v", p.Kills())
	}
	// Flap fires at the target round and every round beyond it, only for its
	// worker.
	if p.FlapsAt(2, 7) || !p.FlapsAt(2, 8) || !p.FlapsAt(2, 9) || p.FlapsAt(1, 8) {
		t.Error("FlapsAt wrong")
	}
	if p.MaxWorker() != 3 {
		t.Errorf("MaxWorker = %d", p.MaxWorker())
	}
	if err := p.ValidateWorkers(4); err != nil {
		t.Errorf("ValidateWorkers(4): %v", err)
	}
	if err := p.ValidateWorkers(3); err == nil {
		t.Error("ValidateWorkers(3) accepted a plan targeting worker 3")
	}
	if s := p.String(); !strings.Contains(s, "wire=1") || !strings.Contains(s, "disk=1") || !strings.Contains(s, "proc=2") {
		t.Errorf("String = %q", s)
	}
}

func TestMixDeterministic(t *testing.T) {
	a := &Plan{Seed: 9}
	b := &Plan{Seed: 9}
	if a.mix(1, 2, 3) != b.mix(1, 2, 3) {
		t.Error("mix not deterministic")
	}
	if a.mix(1, 2, 3) == a.mix(1, 2, 4) {
		t.Error("mix ignores worker")
	}
	if a.mix(1, 2, 3) == (&Plan{Seed: 10}).mix(1, 2, 3) {
		t.Error("mix ignores seed")
	}
}
