// Package sharedwrite is a negative fixture for the sharedwrite analyzer:
// step closures mutating captured driver state in ways that race between the
// worker pool's machine closures, next to the deterministic shapes that must
// stay silent.
package sharedwrite

// Ctx stands in for the simulators' per-machine step context.
type Ctx struct {
	Machine int
	Lo, Hi  int
}

func (x *Ctx) Send(dst int, words ...uint64) {}

// Cluster stands in for a simulator cluster: the analyzer keys on the
// Step/RouteStep method names.
type Cluster struct{ rounds int }

func (c *Cluster) Step(name string, f func(x *Ctx)) error      { f(&Ctx{}); return nil }
func (c *Cluster) RouteStep(name string, f func(x *Ctx)) error { f(&Ctx{}); return nil }

type acc struct {
	total int
	perM  []int
}

func capturedScalar(c *Cluster) {
	total := 0
	count := 0
	_ = c.Step("s", func(x *Ctx) {
		total += x.Machine // want `step closure writes captured variable "total"`
		count++            // want `step closure writes captured variable "count"`
	})
	_ = total + count
}

func capturedMapAndSharedSlot(c *Cluster) {
	seen := map[int]bool{}
	flags := make([]bool, 8)
	_ = c.Step("s", func(x *Ctx) {
		seen[x.Machine] = true // want `step closure writes captured map "seen"`
		flags[0] = true        // want `step closure writes captured slice "flags" at an index captured from outside`
	})
}

func capturedStructAndPointer(c *Cluster, a *acc, p *int) {
	_ = c.RouteStep("r", func(x *Ctx) {
		a.total = x.Machine // want `step closure writes field total of captured "a"`
		*p = x.Machine      // want `step closure writes through captured pointer "p"`
	})
}

// nested literals inherit the step closure's capture boundary: a goroutine
// spawned inside the closure writing driver state is just as shared.
func nestedLiteral(c *Cluster) {
	sum := 0
	_ = c.Step("s", func(x *Ctx) {
		func() {
			sum = x.Machine // want `step closure writes captured variable "sum"`
		}()
	})
	_ = sum
}

// machineIndexed is the blessed partition pattern: every write lands in a
// slot owned by this machine (directly or via a closure-local index), so no
// finding.
func machineIndexed(c *Cluster) {
	out := make([]int, 8)
	marks := make([]bool, 64)
	_ = c.Step("s", func(x *Ctx) {
		out[x.Machine] = x.Machine
		for v := x.Lo; v < x.Hi; v++ {
			marks[v] = true
		}
		local := 0
		local += x.Machine // closure-local: silent
		out[local] = local
	})
}

// soleWriter is the gather pattern: an equality guard on the closure's
// parameter pins the write to one machine, making it sequential.
func soleWriter(c *Cluster) {
	var collected []uint64
	total := 0
	_ = c.Step("s", func(x *Ctx) {
		if x.Machine == 0 {
			collected = append(collected, 1)
			total++
		}
		if m := x.Machine; m == 3 && len(collected) == 0 {
			total = m
		}
	})
	_ = total
}

// notAStep: writes inside closures passed to other methods are out of scope.
func notAStep(c *Cluster) {
	total := 0
	helper := func(f func(x *Ctx)) { f(&Ctx{}) }
	helper(func(x *Ctx) {
		total += x.Machine
	})
	_ = total
}
