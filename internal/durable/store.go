package durable

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ManifestSchema versions the checkpoint-directory manifest.
const ManifestSchema = "mprs-ckpt-manifest/1"

// ManifestName is the manifest file inside a checkpoint directory. Exported
// so fault-injection tooling can recognize manifest writes without copying
// the name.
const ManifestName = "MANIFEST.json"

// ckptPrefix/ckptSuffix frame checkpoint file names: ckpt-%010d.ckpt, the
// zero-padded round making lexicographic order equal round order.
const (
	ckptPrefix = "ckpt-"
	ckptSuffix = ".ckpt"
)

// tmpSuffix marks an in-flight write (checkpoint or manifest) that has not
// been renamed into place yet.
const tmpSuffix = ".tmp"

// DefaultRetain is the number of checkpoints kept when Open is given
// retain <= 0: the newest plus two fallbacks for torn-write recovery.
const DefaultRetain = 3

// Manifest records what a checkpoint directory holds. It is advisory — the
// load path scans the directory and verifies files directly, so a stale or
// corrupt manifest can never mask a good checkpoint or launder a bad one —
// but its fingerprint guards Open against mixing two different runs'
// checkpoints in one directory.
type Manifest struct {
	Schema      string          `json:"schema"`
	Fingerprint string          `json:"fingerprint,omitempty"`
	Retain      int             `json:"retain"`
	Checkpoints []ManifestEntry `json:"checkpoints"`
}

// ManifestEntry describes one retained checkpoint file.
type ManifestEntry struct {
	Round int    `json:"round"`
	File  string `json:"file"`
	Bytes int64  `json:"bytes"`
}

// Store writes and reads durable checkpoints in one directory. It satisfies
// the simulator's CheckpointSink interface via Persist.
type Store struct {
	fsys        FS
	dir         string
	fingerprint string
	build       json.RawMessage
	retain      int
	bytes       int64
	entries     []ManifestEntry
}

// Open prepares dir for checkpoints of a run identified by fingerprint
// (the canonical config string; see cmd/mprs). retain <= 0 means
// DefaultRetain. If the directory already holds a manifest for a different
// fingerprint, Open fails with ErrFingerprint — checkpoint directories are
// per-run-configuration.
func Open(dir, fingerprint string, retain int) (*Store, error) {
	return OpenFS(dir, fingerprint, retain, OSFS{})
}

// OpenFS is Open against an injected filesystem — the seam fault-injection
// harnesses use to drive torn writes, ENOSPC, fsync failures and
// crash-between-temp-and-rename through the real Store code paths.
func OpenFS(dir, fingerprint string, retain int, fsys FS) (*Store, error) {
	if retain <= 0 {
		retain = DefaultRetain
	}
	if fsys == nil {
		fsys = OSFS{}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: %w", err)
	}
	s := &Store{fsys: fsys, dir: dir, fingerprint: fingerprint, retain: retain}
	man, err := s.readManifest()
	switch {
	case err == nil:
		if man.Fingerprint != "" && man.Fingerprint != fingerprint {
			return nil, fmt.Errorf("%w: directory %s holds checkpoints for %q, this run is %q",
				ErrFingerprint, dir, man.Fingerprint, fingerprint)
		}
		s.entries = man.Checkpoints
	case errors.Is(err, fs.ErrNotExist):
		// Fresh directory: nothing to reconcile.
	default:
		// A corrupt manifest is recoverable (it is advisory): rebuild from
		// the directory contents on the next Persist.
	}
	return s, nil
}

// Dir returns the checkpoint directory.
func (s *Store) Dir() string { return s.dir }

// BytesWritten returns the total checkpoint bytes persisted through this
// Store (checkpoint files only; the manifest is bookkeeping).
func (s *Store) BytesWritten() int64 { return s.bytes }

// SetBuildStamp attaches a build stamp recorded into every subsequent
// checkpoint's meta (informational; fingerprint is what gates resume).
func (s *Store) SetBuildStamp(raw json.RawMessage) { s.build = raw }

// fileFor returns the checkpoint file name for a barrier round.
func fileFor(round int) string {
	return fmt.Sprintf("%s%010d%s", ckptPrefix, round, ckptSuffix)
}

// roundOf parses the barrier round out of a checkpoint file name.
func roundOf(name string) (int, bool) {
	if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix)
	round := 0
	if len(mid) == 0 {
		return 0, false
	}
	for _, ch := range mid {
		if ch < '0' || ch > '9' {
			return 0, false
		}
		round = round*10 + int(ch-'0')
	}
	return round, true
}

// ParseCheckpointName reports the barrier round encoded in a checkpoint file
// base name. tmp is true when the name carries the in-flight ".tmp" suffix
// of a write that has not been renamed into place. Exported for
// fault-injection tooling that must target a specific round's write without
// copying the naming scheme.
func ParseCheckpointName(name string) (round int, tmp, ok bool) {
	if rest, cut := strings.CutSuffix(name, tmpSuffix); cut {
		round, ok = roundOf(rest)
		return round, true, ok
	}
	round, ok = roundOf(name)
	return round, false, ok
}

// Persist durably writes the per-machine state captured at barrier round:
// encode to a temp file, fsync, rename into place, fsync the directory, then
// update the manifest and GC checkpoints beyond the retention window. The
// returned count is the checkpoint file's size in bytes. Persist implements
// the simulator's CheckpointSink. Every failure wraps ErrPersist: the
// previous valid checkpoint is still on disk, so the caller may treat the
// failure as retryable rather than deterministic.
func (s *Store) Persist(round int, state [][]uint64) (int64, error) {
	n, err := s.persist(round, state)
	if err != nil {
		return n, fmt.Errorf("%w: %w", ErrPersist, err)
	}
	return n, nil
}

func (s *Store) persist(round int, state [][]uint64) (int64, error) {
	name := fileFor(round)
	final := filepath.Join(s.dir, name)
	tmp := final + tmpSuffix
	f, err := s.fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, fmt.Errorf("durable: %w", err)
	}
	n, err := Encode(f, Meta{Round: round, Fingerprint: s.fingerprint, Build: s.build}, state)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		// Best-effort cleanup of the torn temp file; the write error is the
		// one worth reporting.
		_ = s.fsys.Remove(tmp) //detlint:ok errdrop -- best-effort cleanup of a torn temp file; the original write error is what callers need
		return 0, fmt.Errorf("durable: writing %s: %w", name, err)
	}
	if err := s.fsys.Rename(tmp, final); err != nil {
		return 0, fmt.Errorf("durable: %w", err)
	}
	if err := s.syncDir(); err != nil {
		return 0, err
	}
	s.bytes += n

	// Manifest and retention. Entries stay sorted by round ascending.
	kept := s.entries[:0]
	for _, e := range s.entries {
		if e.Round != round {
			kept = append(kept, e)
		}
	}
	s.entries = append(kept, ManifestEntry{Round: round, File: name, Bytes: n})
	sort.Slice(s.entries, func(i, j int) bool { return s.entries[i].Round < s.entries[j].Round })
	var drop []ManifestEntry
	if len(s.entries) > s.retain {
		drop = append(drop, s.entries[:len(s.entries)-s.retain]...)
		s.entries = append([]ManifestEntry(nil), s.entries[len(s.entries)-s.retain:]...)
	}
	if err := s.writeManifest(); err != nil {
		return n, err
	}
	for _, e := range drop {
		if err := s.fsys.Remove(filepath.Join(s.dir, e.File)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return n, fmt.Errorf("durable: gc %s: %w", e.File, err)
		}
	}
	return n, nil
}

// syncDir fsyncs the checkpoint directory so the rename itself is durable.
func (s *Store) syncDir() error {
	d, err := s.fsys.Open(s.dir)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("durable: sync %s: %w", s.dir, err)
	}
	return nil
}

// readManifest loads the manifest file; fs.ErrNotExist when absent.
func (s *Store) readManifest() (Manifest, error) {
	var man Manifest
	data, err := s.fsys.ReadFile(filepath.Join(s.dir, ManifestName))
	if err != nil {
		return man, err
	}
	if err := json.Unmarshal(data, &man); err != nil {
		return man, fmt.Errorf("durable: corrupt manifest: %w", err)
	}
	if man.Schema != ManifestSchema {
		return man, fmt.Errorf("durable: unsupported manifest schema %q", man.Schema)
	}
	return man, nil
}

// writeManifest atomically replaces the manifest.
func (s *Store) writeManifest() error {
	man := Manifest{
		Schema:      ManifestSchema,
		Fingerprint: s.fingerprint,
		Retain:      s.retain,
		Checkpoints: s.entries,
	}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	final := filepath.Join(s.dir, ManifestName)
	tmp := final + tmpSuffix
	if err := s.fsys.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if err := s.fsys.Rename(tmp, final); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	return s.syncDir()
}

// LoadLatest returns the newest checkpoint in the directory that decodes and
// verifies, scanning past corrupt or torn files (so a crash mid-Persist, or
// bit rot in the newest file, falls back to the previous checkpoint). An
// intact checkpoint with a different fingerprint is a hard ErrFingerprint:
// that is a configuration error, not corruption, and skipping it would
// silently resume a different run. Returns ErrNoCheckpoint when nothing
// verifies, with the newest file's corruption error attached.
func (s *Store) LoadLatest() (Meta, [][]uint64, error) {
	entries, err := s.fsys.ReadDir(s.dir)
	if err != nil {
		return Meta{}, nil, fmt.Errorf("durable: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if _, ok := roundOf(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	// Zero-padded rounds: lexicographically descending is newest-first.
	sort.Sort(sort.Reverse(sort.StringSlice(names)))
	var firstErr error
	for _, name := range names {
		meta, state, err := s.loadFile(name)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", name, err)
			}
			if errors.Is(err, ErrFingerprint) {
				return Meta{}, nil, fmt.Errorf("durable: %s: %w", name, err)
			}
			continue
		}
		return meta, state, nil
	}
	if firstErr != nil {
		return Meta{}, nil, fmt.Errorf("%w (newest candidate: %v)", ErrNoCheckpoint, firstErr)
	}
	return Meta{}, nil, ErrNoCheckpoint
}

// loadFile decodes and verifies one checkpoint file.
func (s *Store) loadFile(name string) (Meta, [][]uint64, error) {
	f, err := s.fsys.Open(filepath.Join(s.dir, name))
	if err != nil {
		return Meta{}, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	defer f.Close()
	meta, state, err := Decode(f)
	if err != nil {
		return meta, nil, err
	}
	if meta.Fingerprint != s.fingerprint {
		return meta, nil, fmt.Errorf("%w: checkpoint is for %q, this run is %q",
			ErrFingerprint, meta.Fingerprint, s.fingerprint)
	}
	if r, ok := roundOf(name); ok && r != meta.Round {
		return meta, nil, fmt.Errorf("%w: file name round %d disagrees with meta round %d", ErrCorrupt, r, meta.Round)
	}
	return meta, state, nil
}
