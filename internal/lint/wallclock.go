package lint

import "go/types"

// wallclock forbids wall-clock reads outside the measurement harness.
// Simulator supersteps, algorithms and trace events must be pure functions
// of (input, options, fault plan); a time.Now anywhere in that path is
// nondeterminism by construction. Timing belongs in cmd/… and
// internal/experiments, where wall time is the measured quantity.
var wallclockAnalyzer = &Analyzer{
	Name: "wallclock",
	Doc:  "forbid time.Now/Since/Until outside cmd/ and internal/experiments",
	Run:  runWallclock,
}

var wallclockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runWallclock(p *Pass) {
	// Info.Uses iteration order is irrelevant: the driver sorts diagnostics.
	for id, obj := range p.Info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !wallclockFuncs[fn.Name()] {
			continue
		}
		p.Reportf(id.Pos(), "time.%s reads the wall clock; deterministic packages must not (measurement belongs in cmd/ or internal/experiments)", fn.Name())
	}
}
