package trace

import "sync"

// SpanObserver is implemented by tracers that want to learn of algorithm
// phase changes the moment they happen, rather than at the next superstep
// barrier. The simulators notify the registered tracer on every Span call
// when it implements this interface; Multi fans the notification out.
type SpanObserver interface {
	SpanChange(span string)
}

// Snapshot is one consistent view of a running simulation, the payload the
// live-introspection endpoint (expvar) publishes: where the run is (round,
// span, step) and the cumulative traffic and recovery counters so far.
type Snapshot struct {
	// Round is the latest committed round; Span and Step describe it. Span
	// may be ahead of Round when the algorithm just opened a new phase.
	Round int    `json:"round"`
	Span  string `json:"span"`
	Step  string `json:"step"`
	// Machines is the per-machine slice width of the last event (0 for
	// charged rounds).
	Machines int `json:"machines"`
	// Messages and Words accumulate delivered traffic across all rounds.
	Messages int64 `json:"messages"`
	Words    int64 `json:"words"`
	// MaxSent and MaxRecv are the per-machine per-round peaks so far.
	MaxSent int `json:"max_sent"`
	MaxRecv int `json:"max_recv"`
	// GiniSent and GiniRecv are the worst per-round imbalance so far.
	GiniSent float64 `json:"gini_sent"`
	GiniRecv float64 `json:"gini_recv"`
	// Recovery counters accumulated across rounds (fault layer).
	Crashes        int   `json:"recovered_crashes"`
	RecoveryRounds int   `json:"recovery_rounds"`
	ReplayedWords  int64 `json:"replayed_words"`
	Dropped        int   `json:"dropped_messages"`
	Duplicated     int   `json:"duplicated_messages"`
	Stalls         int   `json:"stall_rounds"`
}

// Live is a Tracer maintaining a concurrently readable Snapshot of the run:
// the current round/span/step plus cumulative traffic, peak and recovery
// counters. It backs the -debug-addr expvar endpoint, where an HTTP handler
// reads the snapshot while the simulation goroutine writes it.
type Live struct {
	mu   sync.Mutex
	snap Snapshot
}

// NewLive creates an empty live view.
func NewLive() *Live { return &Live{} }

// Superstep implements Tracer.
func (l *Live) Superstep(ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := &l.snap
	s.Round = ev.Round
	s.Span = ev.Span
	s.Step = ev.Step
	if len(ev.Sent) > 0 {
		s.Machines = len(ev.Sent)
	}
	s.Messages += int64(ev.Messages)
	s.Words += int64(ev.Words)
	if ev.MaxSent > s.MaxSent {
		s.MaxSent = ev.MaxSent
	}
	if ev.MaxRecv > s.MaxRecv {
		s.MaxRecv = ev.MaxRecv
	}
	if ev.GiniSent > s.GiniSent {
		s.GiniSent = ev.GiniSent
	}
	if ev.GiniRecv > s.GiniRecv {
		s.GiniRecv = ev.GiniRecv
	}
	s.Crashes += ev.Crashes
	s.RecoveryRounds += ev.RecoveryRounds
	s.ReplayedWords += ev.ReplayedWords
	s.Dropped += ev.Dropped
	s.Duplicated += ev.Duplicated
	s.Stalls += ev.Stalls
}

// SpanChange implements SpanObserver: the snapshot advances to the new phase
// immediately, before the phase commits its first round.
func (l *Live) SpanChange(span string) {
	l.mu.Lock()
	l.snap.Span = span
	l.mu.Unlock()
}

// Snapshot returns a copy of the current view; safe to call concurrently
// with Superstep.
func (l *Live) Snapshot() Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snap
}

// SpanChange implements SpanObserver on the fan-out tracer.
func (m Multi) SpanChange(span string) {
	for _, t := range m {
		if o, ok := t.(SpanObserver); ok {
			o.SpanChange(span)
		}
	}
}
