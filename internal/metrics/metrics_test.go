package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("T1: rounds", "algo", "n", "rounds")
	tb.AddRow("luby", 1024, 42)
	tb.AddRow("det2", 1024, 9)
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"T1: rounds", "algo", "luby", "det2", "42", "9", "----"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}

func TestTableRenderCSV(t *testing.T) {
	tb := NewTable("x", "a", "b")
	tb.AddRow("plain", `with,comma`)
	var b strings.Builder
	if err := tb.RenderCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\nplain,\"with,comma\"\n"
	if b.String() != want {
		t.Fatalf("csv = %q, want %q", b.String(), want)
	}
}

func TestCellFormatting(t *testing.T) {
	tests := []struct {
		in   any
		want string
	}{
		{in: 3, want: "3"},
		{in: "s", want: "s"},
		{in: 3.0, want: "3"},
		{in: 0.5, want: "0.500"},
		{in: 123456.7, want: "1.235e+05"},
		{in: float32(2), want: "2"},
		{in: true, want: "true"},
	}
	for _, tt := range tests {
		if got := Cell(tt.in); got != tt.want {
			t.Errorf("Cell(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

// TestCellFloat32NoWideningArtifacts pins the float32 formatting fix: cells
// must show the value's shortest decimal, not the artifacts of widening the
// binary float32 representation to float64 (0.3 → 0.30000001192092896).
func TestCellFloat32NoWideningArtifacts(t *testing.T) {
	tests := []struct {
		in   float32
		want string
	}{
		{in: 0.3, want: "0.300"},
		{in: 0.1, want: "0.100"},
		{in: 1.27, want: "1.270"},
		{in: 1e15, want: "1e+15"},  // widened: 999999986991104 (a "round" integer artifact)
		{in: 1e-4, want: "0.0001"}, // widened: 9.999999747378752e-05
		{in: float32(math.Pi), want: "3.142"},
	}
	for _, tt := range tests {
		if got := Cell(tt.in); got != tt.want {
			t.Errorf("Cell(float32(%v)) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestPlot(t *testing.T) {
	var b strings.Builder
	err := Plot(&b, "F1", 20, 6,
		Series{Name: "det", X: []float64{1, 2, 3}, Y: []float64{10, 5, 1}},
		Series{Name: "rand", X: []float64{1, 2, 3}, Y: []float64{9, 4, 2}},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"F1", "det", "rand", "*", "o", "x: [1 .. 3]"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
}

func TestPlotEmpty(t *testing.T) {
	var b strings.Builder
	if err := Plot(&b, "empty", 10, 4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no data") {
		t.Fatalf("empty plot output: %q", b.String())
	}
}

func TestPlotConstantSeries(t *testing.T) {
	var b strings.Builder
	err := Plot(&b, "const", 10, 4, Series{Name: "c", X: []float64{1, 1}, Y: []float64{5, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "*") {
		t.Fatal("constant series not drawn")
	}
}
