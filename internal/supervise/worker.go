package supervise

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/rulingset/mprs/internal/chaos"
	"github.com/rulingset/mprs/internal/durable"
	"github.com/rulingset/mprs/internal/mpc"
	"github.com/rulingset/mprs/internal/rulingset"
	"github.com/rulingset/mprs/internal/telemetry"
	"github.com/rulingset/mprs/internal/trace"
	"github.com/rulingset/mprs/internal/transport"
)

// EnvSpec is the environment variable carrying the JSON-encoded WorkerEnv to
// a worker process.
const EnvSpec = "MPRS_SUPERVISE_WORKER"

// WorkerEnv is everything a worker process needs: the job, its identity, and
// its restart state.
type WorkerEnv struct {
	Spec JobSpec `json:"spec"`
	// Worker and Workers identify this worker among its peers.
	Worker  int `json:"worker"`
	Workers int `json:"workers"`
	// JoinAfter is the newest round whose authoritative frame from this
	// worker the supervisor has received: rounds up to and including it
	// exchange locally (deterministic replay of what the group already
	// completed); later rounds go on the wire. 0 for a fresh start.
	JoinAfter int `json:"join_after"`
	// Resume asks the worker to restart from the newest valid durable
	// checkpoint in its checkpoint subdirectory (no-op when the directory
	// holds none — the worker then recomputes from round 1).
	Resume bool `json:"resume"`
	// Attempt is this incarnation's restart count (0 for the first spawn).
	// Chaos disk events fire only at attempt 0: they model transient
	// environment failures, so a retry must run clean.
	Attempt int `json:"attempt,omitempty"`
	// Chaos and ChaosSeed carry the supervisor's chaos plan (internal/chaos
	// grammar) so the disk events execute inside this process, at the
	// durable.FS seam, against the real checkpoint store.
	Chaos     string `json:"chaos,omitempty"`
	ChaosSeed int64  `json:"chaos_seed,omitempty"`
	// HeartbeatMS is the supervisor's liveness deadline; the worker sends
	// heartbeats at a quarter of it.
	HeartbeatMS int64 `json:"heartbeat_ms"`
	// Telemetry asks the worker to run a telemetry collector and attach its
	// snapshot (series + flight-recorder ring) to every heartbeat frame.
	// Observational only: the deterministic outputs are bit-identical either
	// way, and an older worker binary simply ignores the field.
	Telemetry bool `json:"telemetry,omitempty"`
}

// workerError is the Error-frame payload: the failure, structured so the
// supervisor can surface the committed round and full Stats.
type workerError struct {
	Message string    `json:"message"`
	Round   int       `json:"round"`
	Stats   mpc.Stats `json:"stats"`
	// Stopped marks an orderly supervisor-requested stop rather than a
	// failure of the worker's own run.
	Stopped bool `json:"stopped,omitempty"`
	// Retryable marks an environmental failure (a failed checkpoint
	// persist: the previous valid checkpoint is still on disk) rather than
	// a deterministic one — the supervisor may restart this worker instead
	// of aborting the job.
	Retryable bool `json:"retryable,omitempty"`
}

// WorkerMain is the entry point of a worker process: it runs the job over
// the frame connection (stdin/stdout when spawned by the supervisor) and
// sends exactly one Result or Error frame before returning. The returned
// error is the run's failure, for the worker's own exit status; the
// supervisor learns everything it needs from the frames.
func WorkerMain(env WorkerEnv, in io.Reader, out io.Writer) error {
	conn := transport.NewConn(in, out)
	res, err := runWorker(env, conn)
	if err != nil {
		we := workerError{Message: err.Error()}
		var te *mpc.TransportError
		var ce *mpc.CancelError
		switch {
		case errors.As(err, &te):
			we.Round, we.Stats = te.Round, te.Stats
			we.Stopped = errors.Is(err, transport.ErrStopped)
		case errors.As(err, &ce):
			we.Round, we.Stats = ce.Round, ce.Stats
		}
		we.Retryable = errors.Is(err, durable.ErrPersist)
		payload, merr := json.Marshal(we)
		if merr != nil {
			payload = nil
		}
		if werr := conn.Write(transport.Frame{Type: transport.FrameError, Worker: env.Worker, Round: we.Round, Payload: payload}); werr != nil {
			return errors.Join(err, werr)
		}
		return err
	}
	payload, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("supervise: marshal result: %w", err)
	}
	return conn.Write(transport.Frame{Type: transport.FrameResult, Worker: env.Worker, Round: res.Stats.Rounds, Payload: payload})
}

func runWorker(env WorkerEnv, conn *transport.Conn) (res rulingset.Result, retErr error) {
	spec := env.Spec
	if err := spec.Validate(); err != nil {
		return rulingset.Result{}, err
	}
	g, err := spec.BuildGraph()
	if err != nil {
		return rulingset.Result{}, err
	}
	opts, err := spec.options()
	if err != nil {
		return rulingset.Result{}, err
	}
	wt, err := transport.NewWorker(conn, env.Worker, env.Workers, spec.Machines, env.JoinAfter)
	if err != nil {
		return rulingset.Result{}, err
	}
	opts.Transport = wt

	if err := conn.Write(transport.Frame{Type: transport.FrameHello, Worker: env.Worker, Round: env.JoinAfter}); err != nil {
		return rulingset.Result{}, err
	}

	// Telemetry is observational: the collector rides the same tracer fan-out
	// as the deterministic sinks and attaches its snapshot to heartbeats, but
	// nothing it computes flows back into the run.
	var col *telemetry.Collector
	if env.Telemetry {
		col = telemetry.NewCollector(telemetry.CollectorOptions{})
	}

	// Liveness: a wall-clock ticker reports the newest round entered, so the
	// supervisor can tell a crashed or wedged process from one computing
	// between barriers. The ticker lives here, not in the transport — the
	// transport stays wall-clock-free.
	interval := time.Duration(env.HeartbeatMS) * time.Millisecond / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	stopBeat := make(chan struct{})
	defer close(stopBeat)
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stopBeat:
				return
			case <-t.C:
				var payload []byte
				if col != nil {
					if wire, werr := col.Wire(); werr == nil {
						if p, perr := transport.EncodeHeartbeat(transport.Heartbeat{Telemetry: wire}); perr == nil {
							payload = p
						}
					}
				}
				if err := conn.Write(transport.Frame{Type: transport.FrameHeartbeat, Worker: env.Worker, Round: wt.LastRound(), Payload: payload}); err != nil {
					return // pipe gone: the supervisor will notice the silence
				}
			}
		}
	}()

	// Chaos disk events (if any) interpose on this worker's checkpoint
	// store at the durable.FS seam; an invalid plan string is a
	// deterministic config error.
	chaosPlan, err := chaos.Parse(env.Chaos, env.ChaosSeed)
	if err != nil {
		return rulingset.Result{}, err
	}

	if spec.CheckpointDir != "" {
		store, err := spec.openStoreFS(spec.workerCheckpointDir(env.Worker), chaos.NewDiskFS(chaosPlan, env.Worker, env.Attempt))
		if err != nil {
			return rulingset.Result{}, err
		}
		opts.CheckpointSink = store
		if col != nil {
			// Meter persisted checkpoint bytes without touching them: the
			// wrapper delegates to the real store byte-for-byte.
			opts.CheckpointSink = col.WrapCheckpointSink(store)
		}
		if env.Resume {
			meta, state, err := store.LoadLatest()
			switch {
			case err == nil:
				opts.Resume = &mpc.ResumeState{Round: meta.Round, State: state}
			case errors.Is(err, durable.ErrNoCheckpoint):
				// Nothing persisted before the crash: recompute from round
				// 1 — slower, still deterministic, still bit-identical.
			default:
				return rulingset.Result{}, err
			}
		}
	}

	// Worker 0 writes the job's trace; its replicas would write identical
	// bytes. On restart os.Create truncates and the deterministic replay
	// re-emits every committed round, so the finished file is byte-identical
	// to an uninterrupted run's. The telemetry collector joins the same
	// fan-out on every worker.
	var sinks trace.Multi
	if spec.TraceFile != "" && env.Worker == 0 {
		f, err := os.Create(spec.TraceFile)
		if err != nil {
			return rulingset.Result{}, err
		}
		tr := trace.NewJSONL(f)
		if err := tr.WriteHeader(spec.traceHeader()); err != nil {
			if cerr := f.Close(); cerr != nil {
				err = errors.Join(err, cerr)
			}
			return rulingset.Result{}, fmt.Errorf("trace %s: %w", spec.TraceFile, err)
		}
		sinks = append(sinks, tr)
		defer func() {
			if err := tr.Close(); err != nil && retErr == nil {
				retErr = fmt.Errorf("trace %s: %w", spec.TraceFile, err)
			}
		}()
	}
	if col != nil {
		sinks = append(sinks, col)
	}
	if len(sinks) > 0 {
		opts.Tracer = sinks
	}

	return runAlgo(spec.Algo, g, opts)
}
