package chaos

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sync"

	"github.com/rulingset/mprs/internal/transport"
)

// Wire is the supervisor-side frame interposer. It sits on the byte pipes
// between the supervisor and its worker processes and applies the plan's
// wire events: uplinks (worker stdout -> supervisor) are wrapped with a
// decode/mutate/re-encode pump, downlinks (supervisor -> worker stdin) with
// a frame-holding writer. Both directions preserve every untargeted frame
// byte-for-byte (decode followed by re-encode is the identity on valid
// frames), so a plan with no event for a given frame is invisible.
//
// Every event fires at most once per run. The latch lives here, not in the
// per-connection state, so a worker restart does not replay the fault
// against the new incarnation: wire chaos models a transient lossy link,
// and the bit-identity oracle requires retries to run clean.
type Wire struct {
	plan   *Plan
	notify func(worker int, note string)

	mu    sync.Mutex
	fired map[int]bool // index into plan.Wire
	hbSeq map[int]int  // worker -> heartbeats seen across generations
}

// NewWire builds the interposer, or nil when the plan carries no wire
// events — a nil *Wire is a valid passthrough for every method. notify, if
// non-nil, is called once per fired event from pipe goroutines and must be
// safe for concurrent use.
func NewWire(plan *Plan, notify func(worker int, note string)) *Wire {
	if !plan.HasWire() {
		return nil
	}
	return &Wire{
		plan:   plan,
		notify: notify,
		fired:  make(map[int]bool),
		hbSeq:  make(map[int]int),
	}
}

// fire claims event i: the first caller wins and reports the event, every
// later caller (a restarted generation's pump, a duplicate frame) gets
// false.
func (w *Wire) fire(i, worker int) bool {
	w.mu.Lock()
	if w.fired[i] {
		w.mu.Unlock()
		return false
	}
	w.fired[i] = true
	w.mu.Unlock()
	if w.notify != nil {
		ev := w.plan.Wire[i]
		w.notify(worker, fmt.Sprintf("wire:%s@%d:%d", wireOpName(ev.Op), ev.Round, ev.Worker))
	}
	return true
}

// nextHeartbeat returns the 1-based ordinal of the heartbeat a pump just
// read from worker, counted across restarts so hbdrop@N:W means the N-th
// heartbeat of the run, not of the current incarnation.
func (w *Wire) nextHeartbeat(worker int) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.hbSeq[worker]++
	return w.hbSeq[worker]
}

func wireOpName(op WireOp) string {
	switch op {
	case WireCorrupt:
		return "corrupt"
	case WireTrunc:
		return "trunc"
	case WireDup:
		return "dup"
	case WireDelay:
		return "delay"
	case WireReorder:
		return "reorder"
	case WireHBDrop:
		return "hbdrop"
	case WireHBGarble:
		return "hbgarble"
	}
	return fmt.Sprintf("op%d", op)
}

// uplinkEvents returns the indices of plan.Wire events that apply on
// worker's uplink (everything except reorder, which is a downlink event).
func (w *Wire) uplinkEvents(worker int) []int {
	var idx []int
	for i, ev := range w.plan.Wire {
		if ev.Worker == worker && ev.Op != WireReorder {
			idx = append(idx, i)
		}
	}
	return idx
}

// Uplink wraps the supervisor's read side of worker's stdout pipe. When no
// uplink event targets worker (or w is nil) the reader is returned
// unchanged; otherwise a pump goroutine decodes frames, applies due events,
// and re-encodes onto the returned reader. Corrupting events emit the
// damaged bytes and then sever the link, so the supervisor's frame reader
// fails with transport.ErrFraming exactly as it would against a real torn
// stream; the worker's remaining output is drained and discarded so the
// process never blocks on a full pipe while the supervisor takes it down.
func (w *Wire) Uplink(worker int, r io.Reader) io.Reader {
	if w == nil {
		return r
	}
	events := w.uplinkEvents(worker)
	if len(events) == 0 {
		return r
	}
	pr, pw := io.Pipe()
	go w.pump(worker, events, r, pw)
	return pr
}

// pump is the uplink goroutine: frames in from the worker process, mutated
// frames out to the supervisor's reader.
func (w *Wire) pump(worker int, events []int, src io.Reader, pw *io.PipeWriter) {
	br := bufio.NewReaderSize(src, 1<<16)
	var held *transport.Frame // delay event in flight
	flushHeld := func() error {
		if held == nil {
			return nil
		}
		f := *held
		held = nil
		return transport.WriteFrame(pw, f)
	}
	sever := func(err error) {
		pw.CloseWithError(err)
		// Keep draining the worker's stdout so it can reach its own exit
		// path instead of blocking on a full pipe.
		io.Copy(io.Discard, br) //nolint:errcheck
	}
	for {
		f, err := transport.ReadFrame(br)
		if err != nil {
			if flushErr := flushHeld(); flushErr != nil {
				pw.CloseWithError(flushErr)
				return
			}
			if err == io.EOF {
				pw.Close()
			} else {
				pw.CloseWithError(err)
			}
			return
		}
		switch f.Type {
		case transport.FrameHeartbeat:
			seq := w.nextHeartbeat(worker)
			drop := false
			for _, i := range events {
				ev := w.plan.Wire[i]
				if ev.Round != seq {
					continue
				}
				switch ev.Op {
				case WireHBDrop:
					if w.fire(i, worker) {
						drop = true
					}
				case WireHBGarble:
					if w.fire(i, worker) {
						f.Payload = w.garble(ev)
					}
				}
			}
			if drop {
				continue
			}
		case transport.FrameMessages:
			// A delayed frame is released by the next Messages frame: the
			// supervisor (and every relayed-to peer) sees round r+1 before
			// round r, exercising the future-frame stash end-to-end.
			matched := false
			for _, i := range events {
				ev := w.plan.Wire[i]
				if ev.Round != f.Round {
					continue
				}
				switch ev.Op {
				case WireCorrupt:
					if w.fire(i, worker) {
						raw := encodeFrame(f)
						off := 4 + int(w.plan.mix(uint64(ev.Op), uint64(ev.Round), uint64(ev.Worker))%uint64(len(raw)-4))
						raw[off] ^= 1 << (w.plan.mix(uint64(ev.Op), uint64(ev.Round), uint64(ev.Worker)) >> 32 % 8)
						pw.Write(raw) //nolint:errcheck
						sever(io.ErrUnexpectedEOF)
						return
					}
				case WireTrunc:
					if w.fire(i, worker) {
						raw := encodeFrame(f)
						cut := 1 + int(w.plan.mix(uint64(ev.Op), uint64(ev.Round), uint64(ev.Worker))%uint64(len(raw)-1))
						if cut >= len(raw) {
							cut = len(raw) - 1
						}
						pw.Write(raw[:cut]) //nolint:errcheck
						sever(io.ErrUnexpectedEOF)
						return
					}
				case WireDup:
					if w.fire(i, worker) {
						if err := flushHeld(); err != nil {
							sever(err)
							return
						}
						if err := transport.WriteFrame(pw, f); err != nil {
							sever(err)
							return
						}
						matched = true // second copy written by the common path below
					}
				case WireDelay:
					if held == nil && w.fire(i, worker) {
						cp := f
						held = &cp
						matched = true
					}
				}
			}
			if matched && held != nil && held.Round == f.Round {
				continue // freshly delayed: do not write it yet
			}
			if err := transport.WriteFrame(pw, f); err != nil {
				sever(err)
				return
			}
			if err := flushHeld(); err != nil {
				sever(err)
				return
			}
			continue
		default:
			// Result, Error, Hello: a held frame must not outlive the
			// stream's terminal frames — release it first, in order.
			if err := flushHeld(); err != nil {
				sever(err)
				return
			}
		}
		if err := transport.WriteFrame(pw, f); err != nil {
			sever(err)
			return
		}
	}
}

// garble builds a seeded, deliberately non-JSON heartbeat payload so the
// supervisor's telemetry decode fails while the frame itself stays valid.
func (w *Wire) garble(ev WireEvent) []byte {
	junk := make([]byte, 16)
	v := w.plan.mix(uint64(ev.Op), uint64(ev.Round), uint64(ev.Worker))
	for i := range junk {
		junk[i] = byte(v >> (uint(i%8) * 8))
	}
	junk[0] = 0xff // never valid JSON
	return junk
}

// encodeFrame renders a frame to raw wire bytes for mutation.
func encodeFrame(f transport.Frame) []byte {
	var buf bytes.Buffer
	if err := transport.WriteFrame(&buf, f); err != nil {
		// Only reachable for oversized payloads, which a decoded frame
		// cannot carry.
		panic(fmt.Sprintf("chaos: re-encode: %v", err))
	}
	return buf.Bytes()
}

// Downlink returns the frame-holding writer for worker's stdin, or nil when
// no reorder event targets it. A nil *Downlink writes frames through
// unchanged.
func (w *Wire) Downlink(worker int) *Downlink {
	if w == nil {
		return nil
	}
	var idx []int
	for i, ev := range w.plan.Wire {
		if ev.Worker == worker && ev.Op == WireReorder {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		return nil
	}
	return &Downlink{w: w, worker: worker, events: idx}
}

// Downlink reorders relayed frames on their way into one worker process:
// Messages frames for the target round are held until a later round's frame
// passes, which the receiving worker must stash (transport future-frame
// path) before the held frames complete its barrier. Not safe for
// concurrent use — the supervisor serializes all writes to one worker on a
// single goroutine.
type Downlink struct {
	w      *Wire
	worker int
	events []int
	held   []transport.Frame
	active int // index into w.plan.Wire of the in-flight event, -1 if none
	holds  bool
}

// Write sends one frame to dst, applying any due reorder. On error the held
// frames are dropped — the connection is going down anyway.
func (d *Downlink) Write(dst io.Writer, f transport.Frame) error {
	if d == nil {
		return transport.WriteFrame(dst, f)
	}
	if f.Type == transport.FrameMessages {
		if !d.holds {
			for _, i := range d.events {
				ev := d.w.plan.Wire[i]
				if ev.Round == f.Round && !d.firedAlready(i) {
					d.holds = true
					d.active = i
					break
				}
			}
			if d.holds && d.w.plan.Wire[d.active].Round == f.Round {
				d.held = append(d.held, f)
				return nil
			}
		} else {
			ev := d.w.plan.Wire[d.active]
			if f.Round == ev.Round {
				d.held = append(d.held, f)
				return nil
			}
			if f.Round > ev.Round {
				// The future frame passes first; then the held barrier
				// completes out of order.
				if err := transport.WriteFrame(dst, f); err != nil {
					d.drop()
					return err
				}
				return d.flush(dst, true)
			}
		}
	} else if d.holds {
		// Stop (or anything terminal) must not starve a worker blocked on
		// the held barrier: release in order first.
		if err := d.flush(dst, false); err != nil {
			d.drop()
			return err
		}
	}
	return transport.WriteFrame(dst, f)
}

// firedAlready reports the shared once-latch without claiming it; the claim
// happens at flush time, when the reorder has actually been observed.
func (d *Downlink) firedAlready(i int) bool {
	d.w.mu.Lock()
	defer d.w.mu.Unlock()
	return d.w.fired[i]
}

// flush writes the held frames in arrival order. reordered records whether
// a future frame actually jumped the queue (claiming the event) or the hold
// was abandoned by a terminal frame.
func (d *Downlink) flush(dst io.Writer, reordered bool) error {
	held := d.held
	active := d.active
	d.drop()
	if reordered {
		d.w.fire(active, d.worker)
	}
	for _, h := range held {
		if err := transport.WriteFrame(dst, h); err != nil {
			return err
		}
	}
	return nil
}

// drop clears the hold state.
func (d *Downlink) drop() {
	d.held = nil
	d.holds = false
	d.active = -1
}
