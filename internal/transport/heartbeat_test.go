package transport

import (
	"errors"
	"strings"
	"testing"
)

// TestHeartbeatRoundTrip pins the telemetry side-channel: a payload survives
// encode/decode untouched.
func TestHeartbeatRoundTrip(t *testing.T) {
	snap := `{"schema":"mprs-telemetry/1","points":[]}`
	data, err := EncodeHeartbeat(Heartbeat{Telemetry: []byte(snap)})
	if err != nil {
		t.Fatal(err)
	}
	hb, err := DecodeHeartbeat(data)
	if err != nil {
		t.Fatal(err)
	}
	if string(hb.Telemetry) != snap {
		t.Errorf("telemetry = %s, want %s", hb.Telemetry, snap)
	}
}

// TestHeartbeatEmptyIsAbsent pins the wire-compatibility contract: an empty
// heartbeat encodes to nil payload bytes (telemetry-off runs stay
// byte-identical to pre-telemetry builds), and a nil/empty payload decodes
// to the zero Heartbeat (a frame from an older worker).
func TestHeartbeatEmptyIsAbsent(t *testing.T) {
	data, err := EncodeHeartbeat(Heartbeat{})
	if err != nil {
		t.Fatal(err)
	}
	if data != nil {
		t.Errorf("empty heartbeat encoded to %q, want no payload", data)
	}
	for _, payload := range [][]byte{nil, {}} {
		hb, err := DecodeHeartbeat(payload)
		if err != nil {
			t.Fatalf("decode %v: %v", payload, err)
		}
		if hb.Telemetry != nil {
			t.Errorf("decode %v = %+v, want zero", payload, hb)
		}
	}
}

// TestHeartbeatVersionSkew pins forward tolerance: a payload from a newer
// build with fields this build has never heard of still decodes (the known
// fields survive), while a corrupt payload is an ErrCodec.
func TestHeartbeatVersionSkew(t *testing.T) {
	future := `{"telemetry":{"schema":"mprs-telemetry/2"},"load_average":0.7,"novel":{"nested":true}}`
	hb, err := DecodeHeartbeat([]byte(future))
	if err != nil {
		t.Fatalf("future heartbeat rejected: %v", err)
	}
	if !strings.Contains(string(hb.Telemetry), "mprs-telemetry/2") {
		t.Errorf("known field lost across skew: %+v", hb)
	}

	if _, err := DecodeHeartbeat([]byte(`{truncated`)); !errors.Is(err, ErrCodec) {
		t.Errorf("corrupt payload error = %v, want ErrCodec", err)
	}
}
