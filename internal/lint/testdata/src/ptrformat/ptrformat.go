// Package ptrformat is the fixture for the pointer-identity formatting
// analyzer, which reports through the detflow engine: a %p verb, or a %v /
// fmt.Sprint rendering whose output embeds a runtime address, produces a
// string that differs between runs of the same deterministic computation.
// The analyzer is flow-gated — formatting a pointer is only a finding when
// the string reaches a deterministic sink.
package ptrformat

import "fmt"

// Ctx mimics the simulator context; Send is a deterministic sink.
type Ctx struct{ out []string }

// Send appends to the message payload stream.
func (x *Ctx) Send(dst int, payload string) {
	_ = dst
	x.out = append(x.out, payload)
}

// Event mimics the trace event record; its fields are deterministic columns.
type Event struct {
	Step  int
	Label string
}

// node carries a nested pointer field: fmt prints the top-level &{…}, but
// the nested next field renders as a hex address.
type node struct {
	id   int
	next *node
}

// flat is pointer-free: %v output is run-stable.
type flat struct{ X, Y int }

// named has a String method: fmt defers to it, so no address leaks.
type named struct{ v int }

func (n named) String() string { return "named" }

// verbP: the %p verb is pointer identity by definition.
func verbP(x *Ctx, n *node) {
	x.Send(1, fmt.Sprintf("node=%p", n)) // want `pointer identity formatted with %p.*flows into the Ctx\.Send message payload`
}

// verbVScalarPtr: %v of a pointer to a scalar prints a hex address.
func verbVScalarPtr(x *Ctx, ip *int) {
	x.Send(2, fmt.Sprintf("at %v", ip)) // want `pointer-identity %v/Sprint formatting of \*int.*flows into the Ctx\.Send message payload`
}

// sprintMap: unformatted printing of a map whose values are pointers embeds
// one address per entry.
func sprintMap(x *Ctx, m map[string]*node) {
	x.Send(3, fmt.Sprint(m)) // want `map formatting with pointer-identity keys or values.*flows into the Ctx\.Send message payload`
}

// eventLabel: the formatted pointer lands in a trace-event column.
func eventLabel(ch chan int) Event {
	return Event{
		Step:  1,
		Label: fmt.Sprintf("%p", ch), // want `pointer identity formatted with %p.*flows into the ptrformat\.Event field Label`
	}
}

// nestedPtrField: the top-level pointer renders as &{…}, but the nested
// next field inside prints its address.
func nestedPtrField(x *Ctx, n *node) {
	x.Send(4, fmt.Sprintf("%v", n)) // want `pointer-identity %v/Sprint formatting of .*ptrformat\.node.*flows into the Ctx\.Send message payload`
}

// cleanVerbs: numeric verbs, pointer-free composites, the &{…} top-level
// special case, and Stringer types all produce run-stable strings.
func cleanVerbs(x *Ctx, n *node, f flat) {
	x.Send(5, fmt.Sprintf("%d items", len(x.out)))
	x.Send(6, fmt.Sprintf("%v", f))
	x.Send(7, fmt.Sprintf("%v", &flat{1, 2}))
	x.Send(8, fmt.Sprintf("%v", named{3}))
	x.Send(9, fmt.Sprintf("%d", n.id))
}

// cleanNoSink: formatting a pointer is only a finding when the string
// reaches a deterministic surface; a local debug string is not one.
func cleanNoSink(n *node) int {
	s := fmt.Sprintf("%p", n)
	return len(s)
}
