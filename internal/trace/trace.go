// Package trace is the simulators' observability layer: per-superstep events
// carrying the per-machine communication and memory quantities the paper's
// theorems bound, plus the recovery activity of the fault layer.
//
// Both simulators (internal/mpc and internal/clique) emit one Event per
// committed superstep to a registered Tracer. Tracing is strictly passive and
// deterministic: events are a pure function of (input, options, fault plan),
// contain no wall-clock timestamps, and the built-in JSONL sink therefore
// produces byte-identical files for identical runs — proven by test. With no
// tracer registered the simulators skip event construction entirely, so the
// hot superstep path pays nothing.
package trace

import (
	"bufio"
	"encoding/json"
	"io"
	"slices"
)

// Event records one committed superstep (or one analytically charged round).
// Slices are per-machine (per-node in the congested clique), indexed by
// machine id; they are owned by the event and never aliased by the emitting
// cluster.
type Event struct {
	// Round is the 1-based committed round index (after this superstep).
	Round int `json:"round"`
	// Step is the step name passed to Step/RouteStep/ChargeRounds.
	Step string `json:"step"`
	// Span is the algorithm phase annotation active during the superstep
	// (e.g. "sparsify", "seed-search", "gather", "finish").
	Span string `json:"span"`
	// Charged marks rounds accounted analytically (ChargeRounds): no
	// simulated traffic, so the per-machine slices are empty.
	Charged bool `json:"charged,omitempty"`

	// Sent and Recv are words sent/received per machine this round.
	Sent []int `json:"sent,omitempty"`
	Recv []int `json:"recv,omitempty"`
	// Resident is the per-machine resident memory in words at the barrier
	// (MPC simulator only; the clique model has no memory budget).
	Resident []int `json:"resident,omitempty"`

	// Messages and Words total the round's delivered traffic.
	Messages int `json:"messages"`
	Words    int `json:"words"`
	// MaxSent and MaxRecv are the per-machine peaks this round.
	MaxSent int `json:"max_sent"`
	MaxRecv int `json:"max_recv"`
	// GiniSent and GiniRecv are the round's communication-imbalance
	// coefficients (0 = perfectly balanced, →1 = one machine carries all).
	GiniSent float64 `json:"gini_sent"`
	GiniRecv float64 `json:"gini_recv"`

	// Recovery activity (fault layer) that occurred while committing this
	// superstep, as deltas against the previous superstep.
	Crashes        int   `json:"crashes,omitempty"`
	RecoveryRounds int   `json:"recovery_rounds,omitempty"`
	ReplayedWords  int64 `json:"replayed_words,omitempty"`
	Dropped        int   `json:"dropped,omitempty"`
	Duplicated     int   `json:"duplicated,omitempty"`
	Stalls         int   `json:"stalls,omitempty"`
}

// Tracer receives one event per committed superstep. Implementations must
// not retain ev's slices beyond the call unless they own them (the emitting
// simulators allocate fresh slices per event, so retaining is safe for the
// built-in sinks).
type Tracer interface {
	Superstep(ev Event)
}

// JSONL is a Tracer writing one JSON object per line. Encoding is
// deterministic (fixed field order, no timestamps), so two identical runs
// produce byte-identical output.
type JSONL struct {
	bw  *bufio.Writer
	c   io.Closer
	err error
}

// NewJSONL creates a JSONL tracer over w. If w is an io.Closer (e.g. an
// *os.File), Close closes it after flushing.
func NewJSONL(w io.Writer) *JSONL {
	t := &JSONL{bw: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	return t
}

// Superstep implements Tracer. The first write error is retained and
// surfaced by Close; later events are dropped.
func (t *JSONL) Superstep(ev Event) {
	if t.err != nil {
		return
	}
	data, err := json.Marshal(ev)
	if err != nil {
		t.err = err
		return
	}
	if _, err := t.bw.Write(data); err != nil {
		t.err = err
		return
	}
	t.err = t.bw.WriteByte('\n')
}

// Err returns the first write/encode error, if any.
func (t *JSONL) Err() error { return t.err }

// Close flushes the buffer (and closes the underlying writer when it is an
// io.Closer), returning the first error observed.
func (t *JSONL) Close() error {
	if err := t.bw.Flush(); t.err == nil {
		t.err = err
	}
	if t.c != nil {
		if err := t.c.Close(); t.err == nil {
			t.err = err
		}
	}
	return t.err
}

// Ring is an in-memory Tracer retaining the most recent Cap events — the
// "flight recorder" sink for tests, experiments and post-mortem inspection
// without unbounded memory.
type Ring struct {
	cap   int
	evs   []Event
	start int
	total int
}

// NewRing creates a ring buffer holding the last n events (n >= 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{cap: n}
}

// Superstep implements Tracer.
func (r *Ring) Superstep(ev Event) {
	if len(r.evs) < r.cap {
		r.evs = append(r.evs, ev)
	} else {
		r.evs[r.start] = ev
		r.start = (r.start + 1) % r.cap
	}
	r.total++
}

// Total returns the number of events observed (including evicted ones).
func (r *Ring) Total() int { return r.total }

// Events returns the retained events in emission order.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, len(r.evs))
	out = append(out, r.evs[r.start:]...)
	out = append(out, r.evs[:r.start]...)
	return out
}

// FromRound wraps a Tracer, forwarding only events with Round > After —
// the splice filter for resumed runs. A run resumed from durable round R
// deterministically replays rounds 1..R, which the interrupted run's trace
// already recorded; suppressing them (and stamping the header with
// ResumedFrom: R) makes the resumed trace the exact continuation of the
// interrupted one, so concatenating the two reconstructs the uninterrupted
// event stream byte-for-byte.
type FromRound struct {
	// Sink receives the surviving events.
	Sink Tracer
	// After is the last suppressed round: events with Round <= After are
	// dropped.
	After int
}

// Superstep implements Tracer.
func (f FromRound) Superstep(ev Event) {
	if f.Sink != nil && ev.Round > f.After {
		f.Sink.Superstep(ev)
	}
}

// Multi fans one event stream out to several tracers.
type Multi []Tracer

// Superstep implements Tracer.
func (m Multi) Superstep(ev Event) {
	for _, t := range m {
		if t != nil {
			t.Superstep(ev)
		}
	}
}

// Gini computes the Gini imbalance coefficient of the values in xs, sorting
// xs in place (callers pass scratch buffers). 0 means perfectly balanced
// load; values toward 1 mean one machine carries everything. Returns 0 for
// empty input or an all-zero round.
func Gini(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	slices.Sort(xs)
	var sum, weighted int64
	for i, x := range xs {
		sum += int64(x)
		weighted += int64(i+1) * int64(x)
	}
	if sum == 0 {
		return 0
	}
	n := float64(len(xs))
	return 2*float64(weighted)/(n*float64(sum)) - (n+1)/n
}
