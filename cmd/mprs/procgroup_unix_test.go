//go:build unix

package main

import (
	"os/exec"
	"syscall"
)

// setTestProcGroup gives a test subprocess its own process group, so killing
// it also reaches any workers it spawned.
func setTestProcGroup(cmd *exec.Cmd) {
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
}

// killTestProcGroup SIGKILLs the subprocess's whole group; a failure means
// the group is already gone.
func killTestProcGroup(cmd *exec.Cmd) {
	if cmd == nil || cmd.Process == nil {
		return
	}
	if err := syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL); err != nil {
		if kerr := cmd.Process.Kill(); kerr != nil {
			_ = kerr // already exited
		}
	}
}
