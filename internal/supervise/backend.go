package supervise

import (
	"errors"
	"fmt"
	"os"

	"github.com/rulingset/mprs/internal/rulingset"
	"github.com/rulingset/mprs/internal/trace"
)

// Backend executes a JobSpec. The two implementations — InProc and
// MultiProc — are bit-identical on deterministic outputs: same Members,
// same Stats (modulo the documented host/run-dependent columns), same trace
// bytes. That equivalence is the package's core contract and is enforced by
// tests and the CI multiproc-smoke job.
type Backend interface {
	Run(spec JobSpec) (rulingset.Result, error)
}

// InProc runs the job in this process — the classic single-process path,
// composed from exactly the same spec helpers the worker processes use, so
// the two backends cannot drift apart.
type InProc struct{}

// Run implements Backend.
func (InProc) Run(spec JobSpec) (res rulingset.Result, retErr error) {
	if err := spec.Validate(); err != nil {
		return rulingset.Result{}, err
	}
	g, err := spec.BuildGraph()
	if err != nil {
		return rulingset.Result{}, err
	}
	opts, err := spec.options()
	if err != nil {
		return rulingset.Result{}, err
	}
	if spec.CheckpointDir != "" {
		store, err := spec.openStore(spec.CheckpointDir)
		if err != nil {
			return rulingset.Result{}, err
		}
		opts.CheckpointSink = store
	}
	if spec.TraceFile != "" {
		f, err := os.Create(spec.TraceFile)
		if err != nil {
			return rulingset.Result{}, err
		}
		tr := trace.NewJSONL(f)
		if err := tr.WriteHeader(spec.traceHeader()); err != nil {
			if cerr := f.Close(); cerr != nil {
				err = errors.Join(err, cerr)
			}
			return rulingset.Result{}, fmt.Errorf("trace %s: %w", spec.TraceFile, err)
		}
		opts.Tracer = tr
		defer func() {
			if err := tr.Close(); err != nil && retErr == nil {
				retErr = fmt.Errorf("trace %s: %w", spec.TraceFile, err)
			}
		}()
	}
	return runAlgo(spec.Algo, g, opts)
}

// MultiProc runs the job across supervised worker processes.
type MultiProc struct {
	Config Config
}

// Run implements Backend.
func (m MultiProc) Run(spec JobSpec) (rulingset.Result, error) {
	return Run(spec, m.Config)
}
