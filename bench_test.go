// Benchmark harness: one benchmark per evaluation table/figure (T1–T8, F1,
// F2 and ablations A1–A4 — see DESIGN.md §3 and EXPERIMENTS.md), plus
// micro-benchmarks of the substrate hot paths. Each experiment benchmark regenerates its table(s)
// and reports the headline quantity through b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation. Run with -short for reduced scale.
package mprs_test

import (
	"io"
	"math/rand"
	"testing"

	mprs "github.com/rulingset/mprs"
	"github.com/rulingset/mprs/internal/clique"
	"github.com/rulingset/mprs/internal/experiments"
	"github.com/rulingset/mprs/internal/gen"
	"github.com/rulingset/mprs/internal/hash"
	"github.com/rulingset/mprs/internal/mpc"
	"github.com/rulingset/mprs/internal/rulingset"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := experiments.Config{Quick: testing.Short(), Seed: 1}
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := rep.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			rows := 0
			for _, t := range rep.Tables {
				rows += len(t.Rows)
			}
			b.ReportMetric(float64(rows), "table-rows")
		}
	}
}

// BenchmarkT1RoundsVsN regenerates Table T1 (MPC rounds vs n, all four MPC
// algorithms).
func BenchmarkT1RoundsVsN(b *testing.B) { benchExperiment(b, "T1") }

// BenchmarkT2Families regenerates Table T2 (rounds vs Δ across families).
func BenchmarkT2Families(b *testing.B) { benchExperiment(b, "T2") }

// BenchmarkT3ChunkSize regenerates Table T3 (seed-search cost vs chunk z).
func BenchmarkT3ChunkSize(b *testing.B) { benchExperiment(b, "T3") }

// BenchmarkT4Quality regenerates Table T4 (determinism and quality).
func BenchmarkT4Quality(b *testing.B) { benchExperiment(b, "T4") }

// BenchmarkT5ModelCompliance regenerates Table T5 (budget compliance).
func BenchmarkT5ModelCompliance(b *testing.B) { benchExperiment(b, "T5") }

// BenchmarkT6Estimator regenerates Table T6 (derandomization guarantee).
func BenchmarkT6Estimator(b *testing.B) { benchExperiment(b, "T6") }

// BenchmarkT7Parallelism regenerates Table T7 (simulator scaling).
func BenchmarkT7Parallelism(b *testing.B) { benchExperiment(b, "T7") }

// BenchmarkT8CliqueVsMPC regenerates Table T8 (congested clique vs MPC).
func BenchmarkT8CliqueVsMPC(b *testing.B) { benchExperiment(b, "T8") }

// BenchmarkF1Sparsification regenerates Figure F1 (per-phase collapse).
func BenchmarkF1Sparsification(b *testing.B) { benchExperiment(b, "F1") }

// BenchmarkF2BetaTradeoff regenerates Figure F2 (β tradeoff).
func BenchmarkF2BetaTradeoff(b *testing.B) { benchExperiment(b, "F2") }

// BenchmarkF3AdaptiveRadius regenerates Figure F3 (adaptive radius vs
// budget).
func BenchmarkF3AdaptiveRadius(b *testing.B) { benchExperiment(b, "F3") }

// BenchmarkA1SeedPolicy regenerates ablation A1 (seed search vs random/zero
// seeds).
func BenchmarkA1SeedPolicy(b *testing.B) { benchExperiment(b, "A1") }

// BenchmarkA2BenefitCap regenerates ablation A2 (estimator neighborhood cap).
func BenchmarkA2BenefitCap(b *testing.B) { benchExperiment(b, "A2") }

// BenchmarkA3AlphaWeight regenerates ablation A3 (estimator cost weight).
func BenchmarkA3AlphaWeight(b *testing.B) { benchExperiment(b, "A3") }

// BenchmarkA4LubyThresholds regenerates ablation A4 (Luby marking family).
func BenchmarkA4LubyThresholds(b *testing.B) { benchExperiment(b, "A4") }

// BenchmarkR1FaultRecovery regenerates experiment R1 (output invariance and
// recovery overhead under the deterministic fault schedule).
func BenchmarkR1FaultRecovery(b *testing.B) { benchExperiment(b, "R1") }

// BenchmarkR2DurableResume regenerates experiment R2 (durable checkpoint
// cost vs cadence and resume bit-identity).
func BenchmarkR2DurableResume(b *testing.B) { benchExperiment(b, "R2") }

// BenchmarkO1CommunicationSkew regenerates experiment O1 (per-phase
// communication skew through the trace spans).
func BenchmarkO1CommunicationSkew(b *testing.B) { benchExperiment(b, "O1") }

// BenchmarkTracedDetRuling2 measures the cost of running DetRuling2 with a
// JSONL tracer streaming to io.Discard, versus BenchmarkDetRuling2's
// untraced baseline.
func BenchmarkTracedDetRuling2(b *testing.B) {
	g := benchGraph(b, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := mprs.NewJSONLTrace(io.Discard)
		res, err := mprs.DetRulingSet2(g, mprs.Options{Tracer: tr})
		if err != nil {
			b.Fatal(err)
		}
		if err := tr.Close(); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(res.Stats.Spans)), "spans")
		}
	}
}

// BenchmarkFaultedDetRuling2 measures the simulator overhead of running
// DetRuling2 under an active fault plan with checkpointing, versus
// BenchmarkDetRuling2's fault-free baseline.
func BenchmarkFaultedDetRuling2(b *testing.B) {
	g := benchGraph(b, 4096)
	plan := &mprs.FaultPlan{
		Seed:      1,
		CrashRate: 0.001,
		DropRate:  0.01,
		Crashes:   []mprs.FaultEvent{{Round: 1, Machine: 0}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := mprs.DetRulingSet2(g, mprs.Options{Faults: plan, CheckpointEvery: 8})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Stats.RecoveryRounds), "recovery-rounds")
		}
	}
}

// ---- substrate micro-benchmarks ----

func benchGraph(b *testing.B, n int) *mprs.Graph {
	b.Helper()
	g, err := mprs.BuildGraph("gnp:n=4096,p=0.004", 1)
	if err != nil {
		b.Fatal(err)
	}
	_ = n
	return g
}

func BenchmarkGreedyMIS(b *testing.B) {
	g := benchGraph(b, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(mprs.GreedyMIS(g)) == 0 {
			b.Fatal("empty MIS")
		}
	}
}

func BenchmarkLubyMIS(b *testing.B) {
	g := benchGraph(b, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mprs.MIS(g, mprs.Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandRuling2(b *testing.B) {
	g := benchGraph(b, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mprs.RulingSet2(g, mprs.Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetRuling2(b *testing.B) {
	g := benchGraph(b, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mprs.DetRulingSet2(g, mprs.Options{ChunkBits: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetLubyMIS(b *testing.B) {
	g := benchGraph(b, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mprs.DetMIS(g, mprs.Options{ChunkBits: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashMarkProb(b *testing.B) {
	fam, err := hash.NewBits(1<<20, 8)
	if err != nil {
		b.Fatal(err)
	}
	seed := fam.NewSeed()
	seed.SetChunk(0, 40, 0x1234567890)
	seed.SetFixed(40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fam.MarkProb(seed, i&0xFFFFF)
	}
}

func BenchmarkHashPairMarkProb(b *testing.B) {
	fam, err := hash.NewBits(1<<20, 8)
	if err != nil {
		b.Fatal(err)
	}
	seed := fam.NewSeed()
	seed.SetChunk(0, 40, 0x1234567890)
	seed.SetFixed(40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fam.PairMarkProb(seed, i&0xFFFFF, (i+7919)&0xFFFFF|1)
	}
}

func BenchmarkGNPGeneration(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.GNP(1<<14, 0.001, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGraphPower2(b *testing.B) {
	g := gen.MustBuild("grid:rows=48,cols=48", 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Power(2, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyRulingSet(b *testing.B) {
	g := benchGraph(b, 4096)
	res, err := mprs.RulingSet2(g, mprs.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !mprs.IsRulingSet(g, res.Members, 2) {
			b.Fatal("invalid")
		}
	}
}

func BenchmarkCliqueDetRuling2(b *testing.B) {
	g := benchGraph(b, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := rulingset.CliqueDetRuling2(g, rulingset.Options{ChunkBits: 8})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Stats.Rounds), "rounds")
		}
	}
}

func BenchmarkCliqueScatterAggregate(b *testing.B) {
	c, err := clique.NewCluster(clique.Config{}, 1024)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ScatterAggregateFloat("bench", 256, func(v, e int) float64 {
			return float64(v ^ e)
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMPCStepBarrier(b *testing.B) {
	c, err := mpc.NewCluster(mpc.Config{Machines: 8}, 1<<16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Step("bench", func(x *mpc.Ctx) {
			x.Send((x.Machine+1)%8, uint64(i))
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExchangeActiveSimulation(b *testing.B) {
	// One full Luby iteration's worth of exchanges, isolating simulator
	// overhead from algorithm logic.
	g := benchGraph(b, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := rulingset.LubyMIS(g, rulingset.Options{Seed: 1, MaxIterations: 64})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Members) == 0 {
			b.Fatal("empty")
		}
	}
}
