package rulingset

import (
	"reflect"
	"testing"

	"github.com/rulingset/mprs/internal/gen"
	"github.com/rulingset/mprs/internal/graph"
)

func TestCliqueRuling2Valid(t *testing.T) {
	workloads := map[string]*graph.Graph{
		"gnp":      gen.MustBuild("gnp:n=400,p=0.02", 23),
		"powerlaw": gen.MustBuild("powerlaw:n=400,gamma=2.5,avg=6", 24),
		"grid":     gen.MustBuild("grid:rows=16,cols=16", 0),
		"star":     gen.MustBuild("star:n=120", 0),
		"path1":    gen.MustBuild("path:n=1", 0),
		"edgeless": graph.MustNew(30, nil),
	}
	for _, name := range sortedNames(workloads) {
		g := workloads[name]
		for _, det := range []bool{false, true} {
			label := name + "/rand"
			run := CliqueRandRuling2
			if det {
				label = name + "/det"
				run = CliqueDetRuling2
			}
			t.Run(label, func(t *testing.T) {
				res, err := run(g, Options{Seed: 3, ChunkBits: 4})
				if err != nil {
					t.Fatal(err)
				}
				if !IsRulingSet(g, res.Members, 2) {
					t.Fatal("output is not a 2-ruling set")
				}
				if res.Beta != 2 {
					t.Fatalf("beta = %d", res.Beta)
				}
			})
		}
	}
}

func TestCliqueEmptyGraph(t *testing.T) {
	g := graph.MustNew(0, nil)
	res, err := CliqueDetRuling2(g, Options{})
	if err != nil || len(res.Members) != 0 {
		t.Fatalf("empty graph: %v %v", res.Members, err)
	}
}

func TestCliqueDetDeterministic(t *testing.T) {
	g := gen.MustBuild("gnp:n=300,p=0.03", 25)
	a, err := CliqueDetRuling2(g, Options{Seed: 1, ChunkBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CliqueDetRuling2(g, Options{Seed: 777, ChunkBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Members, b.Members) {
		t.Fatal("clique deterministic algorithm varied with seed")
	}
}

// TestCliqueChunkRoundsConstant verifies the congested clique's headline
// collective property: a conditional-expectation chunk costs O(1) rounds (3:
// scatter, collect, broadcast) regardless of chunk width, so doubling z
// roughly halves the deterministic round count instead of trading bandwidth.
func TestCliqueChunkRoundsConstant(t *testing.T) {
	g := gen.MustBuild("gnp:n=512,p=0.02", 26)
	r2, err := CliqueDetRuling2(g, Options{ChunkBits: 2})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := CliqueDetRuling2(g, Options{ChunkBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	if r8.Stats.Rounds >= r2.Stats.Rounds {
		t.Fatalf("z=8 used %d rounds, z=2 used %d — wider chunks must be cheaper in the clique",
			r8.Stats.Rounds, r2.Stats.Rounds)
	}
	// No bandwidth violations at either width: the scatter spreads the 2^z
	// evaluations across aggregators.
	if len(r8.Stats.Violations) != 0 {
		t.Fatalf("violations at z=8: %v", r8.Stats.Violations[0])
	}
}

// TestCliqueNoBandwidthViolations: the whole algorithm respects the
// one-word-per-pair budget (the residual stage uses Lenzen routing).
func TestCliqueNoBandwidthViolations(t *testing.T) {
	g := gen.MustBuild("gnp:n=600,p=0.01", 27)
	for _, det := range []bool{false, true} {
		run := CliqueRandRuling2
		if det {
			run = CliqueDetRuling2
		}
		res, err := run(g, Options{Seed: 5, ChunkBits: 4, Strict: true})
		if err != nil {
			t.Fatalf("det=%v: %v", det, err)
		}
		if len(res.Stats.Violations) != 0 {
			t.Fatalf("det=%v: %v", det, res.Stats.Violations[0])
		}
	}
}

// TestCliqueGuarantee: the conditional-expectation certainty holds in the
// clique implementation too.
func TestCliqueGuarantee(t *testing.T) {
	g := gen.MustBuild("gnp:n=500,p=0.025", 28)
	res, err := CliqueDetRuling2(g, Options{ChunkBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, ps := range res.Phases {
		if ps.EstimatorFinal > ps.EstimatorInitial+1e-6 {
			t.Fatalf("phase %d: realized %v > expectation %v", ps.Phase, ps.EstimatorFinal, ps.EstimatorInitial)
		}
	}
}

// TestCliqueMatchesMPCPhases: the clique and MPC implementations run the
// same schedule, so their phase counts agree on the same graph.
func TestCliqueMatchesMPCPhases(t *testing.T) {
	g := gen.MustBuild("gnp:n=400,p=0.03", 29)
	cliqueRes, err := CliqueDetRuling2(g, Options{ChunkBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	mpcRes, err := DetRuling2(g, Options{ChunkBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(cliqueRes.Phases) != len(mpcRes.Phases) {
		t.Fatalf("phase counts differ: clique %d vs mpc %d", len(cliqueRes.Phases), len(mpcRes.Phases))
	}
}
