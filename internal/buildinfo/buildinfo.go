// Package buildinfo stamps artifacts with the provenance of the binary that
// produced them: module version, VCS revision and go toolchain, read from
// debug.ReadBuildInfo. The stamp is embedded in trace JSONL headers and
// bench JSON manifests, and printed by the -version flag of every CLI, so a
// BENCH_*.json or trace file can always be traced back to the commit that
// generated it.
//
// The stamp is a pure function of the binary (not of the run), so embedding
// it in otherwise bit-deterministic artifacts preserves the byte-identical
// guarantee across runs of the same build.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Stamp identifies the build that produced an artifact.
type Stamp struct {
	// Module is the main module path (e.g. github.com/rulingset/mprs).
	Module string `json:"module,omitempty"`
	// Version is the main module version ("(devel)" for source builds).
	Version string `json:"version,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version,omitempty"`
	// VCSRevision is the full VCS commit hash, when stamped by the go tool.
	VCSRevision string `json:"vcs_revision,omitempty"`
	// VCSTime is the commit timestamp (RFC 3339), when stamped.
	VCSTime string `json:"vcs_time,omitempty"`
	// VCSModified reports uncommitted local changes at build time.
	VCSModified bool `json:"vcs_modified,omitempty"`
}

// Get returns the stamp of the running binary. Binaries built without module
// support (or test binaries on older toolchains) yield a stamp with only the
// toolchain version filled in.
func Get() Stamp {
	s := Stamp{GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return s
	}
	s.Module = bi.Main.Path
	s.Version = bi.Main.Version
	for _, kv := range bi.Settings {
		switch kv.Key {
		case "vcs.revision":
			s.VCSRevision = kv.Value
		case "vcs.time":
			s.VCSTime = kv.Value
		case "vcs.modified":
			s.VCSModified = kv.Value == "true"
		}
	}
	return s
}

// String renders the stamp on one line, the form the -version flags print:
//
//	github.com/rulingset/mprs (devel) go1.22.0 rev 0f5fa46… (modified)
func (s Stamp) String() string {
	out := s.Module
	if out == "" {
		out = "unknown module"
	}
	if s.Version != "" {
		out += " " + s.Version
	}
	if s.GoVersion != "" {
		out += " " + s.GoVersion
	}
	if s.VCSRevision != "" {
		rev := s.VCSRevision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		out += " rev " + rev
		if s.VCSModified {
			out += " (modified)"
		}
	}
	return out
}

// CLIVersion formats the standard -version output of a named command.
func CLIVersion(cmd string) string {
	return fmt.Sprintf("%s %s", cmd, Get())
}
