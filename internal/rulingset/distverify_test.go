package rulingset

import (
	"testing"

	"github.com/rulingset/mprs/internal/gen"
	"github.com/rulingset/mprs/internal/graph"
	"github.com/rulingset/mprs/internal/mpc"
)

func distFor(t *testing.T, g *graph.Graph, machines int) *mpc.DistGraph {
	t.Helper()
	c, err := mpc.NewCluster(mpc.Config{Machines: machines}, g.N())
	if err != nil {
		t.Fatal(err)
	}
	d, err := mpc.Distribute(c, g)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestVerifyDistributedAcceptsValidSets(t *testing.T) {
	g := gen.MustBuild("gnp:n=500,p=0.02", 19)
	res, err := DetRuling2(g, Options{ChunkBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, machines := range []int{1, 4, 9} {
		d := distFor(t, g, machines)
		rounds, err := VerifyDistributed(d, res.Members, 2)
		if err != nil {
			t.Fatalf("machines=%d: %v", machines, err)
		}
		// 1 independence + ≤2 hops + 2 aggregation.
		if rounds > 1+2+2 {
			t.Fatalf("machines=%d: verification used %d rounds", machines, rounds)
		}
	}
}

func TestVerifyDistributedRejectsAdjacentMembers(t *testing.T) {
	g := gen.MustBuild("path:n=6", 0)
	d := distFor(t, g, 2)
	if _, err := VerifyDistributed(d, []int32{2, 3}, 5); err == nil {
		t.Fatal("adjacent members accepted")
	}
}

func TestVerifyDistributedRejectsPoorCoverage(t *testing.T) {
	g := gen.MustBuild("path:n=9", 0)
	d := distFor(t, g, 3)
	if _, err := VerifyDistributed(d, []int32{0}, 2); err == nil {
		t.Fatal("radius violation accepted")
	}
	d = distFor(t, g, 3)
	if _, err := VerifyDistributed(d, []int32{0}, 8); err != nil {
		t.Fatalf("radius-8 domination by vertex 0 of P9 rejected: %v", err)
	}
}

func TestVerifyDistributedRejectsOutOfRange(t *testing.T) {
	g := gen.MustBuild("path:n=5", 0)
	d := distFor(t, g, 2)
	if _, err := VerifyDistributed(d, []int32{7}, 2); err == nil {
		t.Fatal("out-of-range member accepted")
	}
}

func TestVerifyDistributedMatchesCentralizedVerifier(t *testing.T) {
	g := gen.MustBuild("powerlaw:n=600,gamma=2.5,avg=6", 20)
	res, err := RandRulingBeta(g, 3, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	d := distFor(t, g, 5)
	_, distErr := VerifyDistributed(d, res.Members, 3)
	central := IsRulingSet(g, res.Members, 3)
	if (distErr == nil) != central {
		t.Fatalf("distributed (%v) and centralized (%v) verifiers disagree", distErr, central)
	}
}
