// Package nondetencode is the fixture for the gob map-order analyzer:
// encoding/gob walks maps in range order, so gob bytes of a map-bearing
// value differ between runs of the same deterministic computation —
// poison for fingerprints, checkpoints, and byte-diffed artifacts.
// encoding/json sorts map keys and stays clean.
package nondetencode

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"reflect"
)

// payload has an exported map field: gob serializes it in range order.
type payload struct {
	Name  string
	Attrs map[string]int
}

// hidden keeps its map unexported: gob never encodes it.
type hidden struct {
	Name  string
	attrs map[string]int
}

func directMap(buf *bytes.Buffer, m map[string]int) error {
	return gob.NewEncoder(buf).Encode(m) // want `gob encoding of map\[string\]int serializes map map\[string\]int in nondeterministic iteration order`
}

func structWithMapField(buf *bytes.Buffer, p payload) error {
	return gob.NewEncoder(buf).Encode(p) // want `serializes map map\[string\]int in nondeterministic iteration order`
}

func pointerToStruct(buf *bytes.Buffer, p *payload) error {
	return gob.NewEncoder(buf).Encode(p) // want `serializes map map\[string\]int in nondeterministic iteration order`
}

func reflectedValue(buf *bytes.Buffer, v reflect.Value) error {
	return gob.NewEncoder(buf).EncodeValue(v) // want `gob\.EncodeValue hides the encoded type from static analysis`
}

// cleanSlice: no map anywhere in the encoded shape.
func cleanSlice(buf *bytes.Buffer, xs []int) error {
	return gob.NewEncoder(buf).Encode(xs)
}

// cleanUnexported: gob only encodes exported fields, so the unexported map
// never reaches the byte stream.
func cleanUnexported(buf *bytes.Buffer, h hidden) error {
	return gob.NewEncoder(buf).Encode(h)
}

// cleanJSON: encoding/json sorts map keys; its bytes are deterministic.
func cleanJSON(m map[string]int) ([]byte, error) {
	return json.Marshal(m)
}
