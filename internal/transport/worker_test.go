package transport

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// scriptConn builds a Conn whose read side replays the given peer frames and
// whose writes are discarded.
func scriptConn(t *testing.T, fs ...Frame) *Conn {
	t.Helper()
	var buf bytes.Buffer
	for _, f := range fs {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	return NewConn(bytes.NewReader(buf.Bytes()), io.Discard)
}

// peerFrame renders peer's authoritative Messages frame for round over the
// replicated boxes.
func peerFrame(peer, total, workers, round int) Frame {
	owns := func(src int) bool { return OwnerOf(src, total, workers) == peer }
	return Frame{
		Type:    FrameMessages,
		Worker:  peer,
		Round:   round,
		Payload: encodeOwned(testBoxes(total, round), owns),
	}
}

// TestExchangeStashesFutureFrame: a peer that already completed round r can
// send r+1 while this worker is still collecting r. The future frame must be
// stashed and consumed by the next Exchange without touching the wire again.
func TestExchangeStashesFutureFrame(t *testing.T) {
	const total, workers = 6, 2
	conn := scriptConn(t,
		peerFrame(1, total, workers, 2), // one round ahead: stash
		peerFrame(1, total, workers, 1), // completes round 1
	)
	w, err := NewWorker(conn, 0, workers, total, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Exchange(1, testBoxes(total, 1)); err != nil {
		t.Fatalf("round 1: %v", err)
	}
	if len(w.pending[2]) != 1 {
		t.Fatalf("round 2 not stashed: pending = %v", w.pending)
	}
	// Round 2 must complete purely from the stash — the script has no more
	// frames, so any read would fail with EOF-as-ErrFraming.
	if _, err := w.Exchange(2, testBoxes(total, 2)); err != nil {
		t.Fatalf("round 2 from stash: %v", err)
	}
	if len(w.pending) != 0 {
		t.Fatalf("stash not drained: %v", w.pending)
	}
}

// TestExchangeSkipsStaleFrame: a supervisor restart re-delivers retained
// frames the worker already replayed locally; they must be skipped, not
// treated as the current barrier's input.
func TestExchangeSkipsStaleFrame(t *testing.T) {
	const total, workers = 6, 2
	conn := scriptConn(t,
		peerFrame(1, total, workers, 3), // stale for round 5
		peerFrame(1, total, workers, 4), // still stale
		peerFrame(1, total, workers, 5), // the real one
	)
	w, err := NewWorker(conn, 0, workers, total, 4)
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= 4; r++ {
		// Replayed prefix: local, no wire.
		if _, err := w.Exchange(r, testBoxes(total, r)); err != nil {
			t.Fatalf("replay round %d: %v", r, err)
		}
	}
	if _, err := w.Exchange(5, testBoxes(total, 5)); err != nil {
		t.Fatalf("round 5: %v", err)
	}
}

// TestExchangeDupFrameIsIdempotent: a duplicated authoritative frame for the
// current round overwrites its stash slot instead of double-counting toward
// the barrier.
func TestExchangeDupFrameIsIdempotent(t *testing.T) {
	const total, workers = 6, 3
	conn := scriptConn(t,
		peerFrame(1, total, workers, 1),
		peerFrame(1, total, workers, 1), // duplicate of the same frame
		peerFrame(2, total, workers, 1),
	)
	w, err := NewWorker(conn, 0, workers, total, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Exchange(1, testBoxes(total, 1)); err != nil {
		t.Fatalf("round 1 with dup: %v", err)
	}
}

// TestExchangeBoundsStash: a frame claiming a round far beyond the barrier
// lockstep's legitimate lookahead is stream corruption, not something to
// buffer — the stash must stay bounded against a garbage round counter.
func TestExchangeBoundsStash(t *testing.T) {
	const total, workers = 6, 2
	conn := scriptConn(t, peerFrame(1, total, workers, 1+maxStashAhead+1))
	w, err := NewWorker(conn, 0, workers, total, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = w.Exchange(1, testBoxes(total, 1))
	if !errors.Is(err, ErrFraming) {
		t.Fatalf("err = %v, want ErrFraming", err)
	}
	if len(w.pending[1+maxStashAhead+1]) != 0 {
		t.Fatal("out-of-bound frame was stashed")
	}
	// The maximum legitimate lookahead is accepted.
	conn2 := scriptConn(t,
		peerFrame(1, total, workers, 1+maxStashAhead),
		peerFrame(1, total, workers, 1),
	)
	w2, err := NewWorker(conn2, 0, workers, total, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Exchange(1, testBoxes(total, 1)); err != nil {
		t.Fatalf("lookahead %d rejected: %v", maxStashAhead, err)
	}
}

// TestExchangeRejectsOwnAndUnknownWorkers pins the frame-validation order:
// identity checks fire before any stash bookkeeping.
func TestExchangeRejectsOwnAndUnknownWorkers(t *testing.T) {
	const total, workers = 6, 2
	own := peerFrame(0, total, workers, 1)
	if _, err := mustWorker(t, scriptConn(t, own), workers, total).Exchange(1, testBoxes(total, 1)); err == nil {
		t.Fatal("own frame accepted")
	}
	unknown := peerFrame(1, total, workers, 1)
	unknown.Worker = workers + 3
	if _, err := mustWorker(t, scriptConn(t, unknown), workers, total).Exchange(1, testBoxes(total, 1)); err == nil {
		t.Fatal("unknown worker accepted")
	}
}

func mustWorker(t *testing.T, conn *Conn, workers, total int) *Worker {
	t.Helper()
	w, err := NewWorker(conn, 0, workers, total, 0)
	if err != nil {
		t.Fatal(err)
	}
	return w
}
