package rulingset

import (
	"fmt"

	"github.com/rulingset/mprs/internal/graph"
	"github.com/rulingset/mprs/internal/mpc"
)

// RandRulingAlphaBeta computes an (α,β)-ruling set of g: members are
// pairwise at distance >= α and every vertex is within (α−1)·β hops of a
// member. See DetRulingAlphaBeta for the construction.
func RandRulingAlphaBeta(g *graph.Graph, alpha, beta int, o Options) (Result, error) {
	return rulingAlphaBeta(g, alpha, beta, o, false)
}

// DetRulingAlphaBeta computes an (α,β)-ruling set of g deterministically: it
// builds the distance closure G^{≤α−1} by graph exponentiation — executed
// through the MPC simulator's message exchanges (O(log α) compose steps of
// two rounds each, with the genuine quadratic bandwidth cost metered) — and
// runs the β-ruling algorithm on it. Independence in G^{≤α−1} is pairwise
// distance >= α in G; domination within β hops of G^{≤α−1} is domination
// within (α−1)·β hops of G. The Result's Beta reports the latter, g-relative
// radius.
func DetRulingAlphaBeta(g *graph.Graph, alpha, beta int, o Options) (Result, error) {
	return rulingAlphaBeta(g, alpha, beta, o, true)
}

func rulingAlphaBeta(g *graph.Graph, alpha, beta int, o Options, deterministic bool) (Result, error) {
	if alpha < 2 {
		return Result{}, fmt.Errorf("rulingset: alpha %d < 2 (alpha=2 is plain independence)", alpha)
	}
	if beta < 1 {
		return Result{}, fmt.Errorf("rulingset: beta %d < 1", beta)
	}
	power := g
	var expStats mpc.Stats
	if alpha > 2 && g.N() > 0 {
		d, opts, err := distribute(g, o)
		if err != nil {
			return Result{}, err
		}
		o = opts
		// Simulator guard: the closure must stay materializable; the memory
		// accounting flags model-budget breaches independently.
		maxEdges := 64 * (g.M() + g.N() + 1024)
		p, err := d.Power(alpha-1, maxEdges)
		if err != nil {
			return Result{}, fmt.Errorf("rulingset: exponentiate: %w", err)
		}
		power = p
		expStats = d.Cluster().Stats()
	}
	res, err := rulingBeta(power, beta, o, deterministic)
	if err != nil {
		return Result{}, err
	}
	res.Stats = mpc.MergeStats(expStats, res.Stats)
	res.Beta = (alpha - 1) * beta
	return res, nil
}
