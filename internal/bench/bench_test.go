package bench

import (
	"bytes"
	"os"
	"reflect"
	"strings"
	"testing"
)

// quickRun executes the full quick registry once, host-stripped.
func quickRun(t *testing.T) *File {
	t.Helper()
	f, err := Run(RunConfig{Quick: true, StripHost: true})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestQuickRunByteDeterministic is the bench half of the bit-determinism
// contract: two full quick-tier runs in the same process must encode to
// byte-identical artifacts once host-dependent columns are stripped.
func TestQuickRunByteDeterministic(t *testing.T) {
	encode := func(f *File) []byte {
		var b bytes.Buffer
		if err := f.Encode(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	first := encode(quickRun(t))
	second := encode(quickRun(t))
	if !bytes.Equal(first, second) {
		t.Fatalf("two quick runs encoded differently:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	if len(first) == 0 || !strings.Contains(string(first), Schema) {
		t.Fatalf("artifact missing schema marker:\n%s", first)
	}
}

// TestRunCoversRegistry checks every registry workload executes all of its
// algorithms and lands plausible measurements.
func TestRunCoversRegistry(t *testing.T) {
	f := quickRun(t)
	wantRows := 0
	for _, w := range Registry() {
		levels := len(w.Parallelism)
		if levels == 0 {
			levels = 1
		}
		wantRows += len(w.Algos) * levels
	}
	if len(f.Results) != wantRows {
		t.Fatalf("got %d rows, want %d", len(f.Results), wantRows)
	}
	if got, want := f.Manifest.Workloads, Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("manifest workloads %v, want %v", got, want)
	}
	if f.Manifest.Schema != Schema || !f.Manifest.Quick {
		t.Errorf("manifest misconfigured: %+v", f.Manifest)
	}
	if !reflect.DeepEqual(f.Manifest.HostDependent, HostDependentFields) {
		t.Errorf("manifest host-dependent = %v", f.Manifest.HostDependent)
	}
	sawFaults, sawClique := false, false
	for _, r := range f.Results {
		if r.Rounds <= 0 || r.Words <= 0 || r.Members <= 0 || r.N <= 0 {
			t.Errorf("%s: degenerate row %+v", r.Key(), r)
		}
		if r.WallMS != 0 {
			t.Errorf("%s: StripHost left wall_ms=%v", r.Key(), r.WallMS)
		}
		if r.Model == "clique" {
			sawClique = true
			if r.Machines != r.N {
				t.Errorf("%s: clique machines %d != n %d", r.Key(), r.Machines, r.N)
			}
		}
		if r.Workload == "r1-faults" && (r.RecoveredCrashes > 0 || r.DroppedMessages > 0) {
			sawFaults = true
		}
	}
	if !sawClique {
		t.Error("no clique-model rows in registry run")
	}
	if !sawFaults {
		t.Error("r1-faults rows show no fault activity (plan not applied?)")
	}
}

// TestParallelismSweepRowsIdentical is the bench half of the parallel-engine
// equivalence contract: within one workload's parallelism sweep, rows of the
// same algorithm must agree on every column except the parallelism key and
// the host-dependent ones. A divergence here means the worker-pool commit
// path broke bit-identity for that workload's regime.
func TestParallelismSweepRowsIdentical(t *testing.T) {
	f := quickRun(t)
	base := map[string]Result{} // workload/algo -> first sweep row, normalized
	swept := 0
	for _, r := range f.Results {
		if r.Parallelism == 0 {
			continue
		}
		swept++
		norm := r
		norm.Parallelism = 0
		norm.WallMS = 0
		norm.SpeedupX = 0
		key := r.Workload + "/" + r.Algo
		first, ok := base[key]
		if !ok {
			base[key] = norm
			continue
		}
		if !reflect.DeepEqual(first, norm) {
			t.Errorf("%s: deterministic columns differ across parallelism levels:\n%+v\nvs\n%+v", r.Key(), first, norm)
		}
	}
	if swept == 0 {
		t.Fatal("no parallelism-sweep rows in the registry run")
	}
}

// TestRunWorkloadFilter checks -workloads style selection.
func TestRunWorkloadFilter(t *testing.T) {
	f, err := Run(RunConfig{Quick: true, StripHost: true, Workloads: []string{"t2-star"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Results) != 2 {
		t.Fatalf("got %d rows, want 2 (t2-star algos)", len(f.Results))
	}
	for _, r := range f.Results {
		if r.Workload != "t2-star" {
			t.Errorf("unexpected workload row %s", r.Key())
		}
	}
	if _, err := Run(RunConfig{Workloads: []string{"no-such"}}); err == nil {
		t.Error("unknown workload accepted")
	}
}

// TestDiffCleanOnIdenticalRuns: a run diffed against itself has no deltas at
// all, and against a re-run only (possibly) advisory wall-clock ones.
func TestDiffCleanOnIdenticalRuns(t *testing.T) {
	f := quickRun(t)
	if deltas := Diff(f, f, DiffOptions{}); len(deltas) != 0 {
		t.Fatalf("self-diff produced deltas: %v", deltas)
	}
	g, err := Run(RunConfig{Quick: true}) // wall-clock retained
	if err != nil {
		t.Fatal(err)
	}
	deltas := Diff(f, g, DiffOptions{})
	if HasRegression(deltas) {
		t.Fatalf("re-run flagged as regression: %v", deltas)
	}
	for _, d := range deltas {
		if !hostDependent(d.Field) {
			t.Errorf("non-host-dependent delta between identical runs: %v", d)
		}
	}
}

// TestDiffDetectsRegressions: changes to deterministic columns, missing rows
// and manifest mismatches are hard; wall-clock drift is advisory unless the
// ratio band is armed.
func TestDiffDetectsRegressions(t *testing.T) {
	base := quickRun(t)
	find := func(deltas []Delta, field string) *Delta {
		for i := range deltas {
			if deltas[i].Field == field {
				return &deltas[i]
			}
		}
		return nil
	}

	mut := *base
	mut.Results = append([]Result(nil), base.Results...)
	mut.Results[0].Rounds += 3
	deltas := Diff(base, &mut, DiffOptions{})
	d := find(deltas, "rounds")
	if d == nil || !d.Hard || !HasRegression(deltas) {
		t.Errorf("rounds bump not a hard regression: %v", deltas)
	}

	mut = *base
	mut.Results = append([]Result(nil), base.Results...)
	mut.Results[2].GiniRecv += 1e-9 // even 1 ulp of skew drift must trip
	if deltas := Diff(base, &mut, DiffOptions{}); !HasRegression(deltas) {
		t.Errorf("float column drift not detected: %v", deltas)
	}

	mut = *base
	mut.Results = base.Results[1:]
	deltas = Diff(base, &mut, DiffOptions{})
	if d := find(deltas, "(row)"); d == nil || !d.Hard {
		t.Errorf("dropped row not a hard regression: %v", deltas)
	}
	if deltas := Diff(base, &mut, DiffOptions{AllowMissing: true}); HasRegression(deltas) {
		t.Errorf("AllowMissing still hard: %v", deltas)
	}

	mut = *base
	mut.Results = append([]Result(nil), base.Results...)
	mut.Results[0].WallMS = 100
	baseWall := *base
	baseWall.Results = append([]Result(nil), base.Results...)
	baseWall.Results[0].WallMS = 10
	deltas = Diff(&baseWall, &mut, DiffOptions{})
	if d := find(deltas, "wall_ms"); d == nil || d.Hard {
		t.Errorf("unarmed wall-clock drift should be advisory: %v", deltas)
	}
	deltas = Diff(&baseWall, &mut, DiffOptions{WallRatio: 2})
	if d := find(deltas, "wall_ms"); d == nil || !d.Hard || !HasRegression(deltas) {
		t.Errorf("10x wall drift inside a 2x band: %v", deltas)
	}
	mut.Results[0].WallMS = 15
	deltas = Diff(&baseWall, &mut, DiffOptions{WallRatio: 2})
	if d := find(deltas, "wall_ms"); d == nil || d.Hard {
		t.Errorf("1.5x wall drift outside a 2x band: %v", deltas)
	}

	mut = *base
	mut.Manifest.Quick = !base.Manifest.Quick
	if deltas := Diff(base, &mut, DiffOptions{}); !HasRegression(deltas) {
		t.Errorf("tier mismatch not detected: %v", deltas)
	}
}

// TestDiffRowCoversNewColumns guards the reflection walk: every exported
// Result field with a JSON name is either diffed exactly or declared
// host-dependent. A field added without a json tag would silently escape the
// regression gate — this test makes that a failure.
func TestDiffRowCoversNewColumns(t *testing.T) {
	typ := reflect.TypeOf(Result{})
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if name := jsonName(f); name == "" {
			t.Errorf("Result.%s has no json column name; it would escape diffing", f.Name)
		}
	}
	// And the sensitivity holds mechanically for every deterministic column:
	// perturb each field in turn and require a hard delta.
	base := Result{Workload: "w", Algo: "a"}
	v := reflect.ValueOf(&base).Elem()
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		name := jsonName(f)
		if hostDependent(name) || f.Name == "Workload" || f.Name == "Algo" {
			continue // key fields define row identity, not row content
		}
		mut := base
		mv := reflect.ValueOf(&mut).Elem().Field(i)
		switch mv.Kind() {
		case reflect.Int, reflect.Int64:
			mv.SetInt(mv.Int() + 1)
		case reflect.Float64:
			mv.SetFloat(mv.Float() + 0.125)
		case reflect.String:
			mv.SetString(mv.String() + "x")
		default:
			t.Fatalf("Result.%s: unhandled kind %s — extend the diff test", f.Name, mv.Kind())
		}
		deltas := diffRow(base, mut, DiffOptions{})
		if len(deltas) != 1 || !deltas[0].Hard || deltas[0].Field != name {
			t.Errorf("perturbing Result.%s: deltas = %v, want one hard %q delta", f.Name, deltas, name)
		}
		_ = v
	}
}

// TestRegistryValid pins registry invariants: unique names, resolvable specs
// and algorithms, experiment anchors, both simulator models covered.
func TestRegistryValid(t *testing.T) {
	known := map[string]bool{}
	for _, a := range mpcAlgos {
		known[a.name] = true
	}
	for name := range cliqueAlgos {
		known[name] = true
	}
	seen := map[string]bool{}
	experiments := map[string]bool{}
	for _, w := range Registry() {
		if w.Name == "" || seen[w.Name] {
			t.Errorf("registry name %q empty or duplicated", w.Name)
		}
		seen[w.Name] = true
		if w.Experiment == "" || w.Doc == "" {
			t.Errorf("%s: missing experiment anchor or doc", w.Name)
		}
		experiments[w.Experiment] = true
		if w.Spec == "" || w.QuickSpec == "" {
			t.Errorf("%s: missing spec tier", w.Name)
		}
		if len(w.Algos) == 0 {
			t.Errorf("%s: no algorithms", w.Name)
		}
		for _, a := range w.Algos {
			if !known[a] {
				t.Errorf("%s: unknown algorithm %q", w.Name, a)
			}
		}
	}
	for _, want := range []string{"T1", "T2", "T8", "O1", "R1"} {
		if !experiments[want] {
			t.Errorf("no workload anchored to experiment %s", want)
		}
	}
	if _, err := Lookup("t1-gnp-rounds"); err != nil {
		t.Error(err)
	}
}

// TestFileRoundTrip: WriteFile/ReadFile preserve the artifact; schema
// mismatches are rejected.
func TestFileRoundTrip(t *testing.T) {
	f, err := Run(RunConfig{Quick: true, StripHost: true, Workloads: []string{"t2-star"}})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/BENCH_test.json"
	if err := f.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	g, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, g) {
		t.Fatalf("round trip changed artifact:\n%+v\nvs\n%+v", f, g)
	}
	bad := strings.NewReader(`{"manifest":{"schema":"mprs-bench/99"},"results":[]}`)
	if _, err := Decode(bad); err == nil {
		t.Error("unsupported schema accepted")
	}
}

// TestDiffTraces exercises trace-level diffing through real JSONL fixtures.
func TestDiffTraces(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		path := dir + "/" + name
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	hdr := `{"schema":"mprs-trace/1","algo":"det2","spec":"star:n=8","seed":1,"machines":4}`
	ev1 := `{"round":1,"step":"mark","span":"setup","words":8}`
	ev2 := `{"round":2,"step":"elect","span":"mis","words":4}`
	a := write("a.jsonl", hdr+"\n"+ev1+"\n"+ev2+"\n")

	same := write("same.jsonl", hdr+"\n"+ev1+"\n"+ev2+"\n")
	deltas, err := DiffTraces(a, same)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 0 {
		t.Errorf("identical traces diff: %v", deltas)
	}

	// Build stamp differences are not deltas (cross-commit comparison).
	hdr2 := `{"schema":"mprs-trace/1","algo":"det2","spec":"star:n=8","seed":1,"machines":4,"build":{"version":"other"}}`
	b := write("b.jsonl", hdr2+"\n"+ev1+"\n"+ev2+"\n")
	if deltas, err = DiffTraces(a, b); err != nil || len(deltas) != 0 {
		t.Errorf("build-stamp-only difference flagged: %v (err %v)", deltas, err)
	}

	c := write("c.jsonl", hdr+"\n"+ev1+"\n")
	deltas, err = DiffTraces(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if !HasRegression(deltas) {
		t.Errorf("missing event not a regression: %v", deltas)
	}

	d := write("d.jsonl", hdr+"\n"+ev1+"\n"+`{"round":2,"step":"elect","span":"mis","words":5}`+"\n")
	deltas, err = DiffTraces(a, d)
	if err != nil {
		t.Fatal(err)
	}
	if !HasRegression(deltas) {
		t.Errorf("event field drift not a regression: %v", deltas)
	}

	e := write("e.jsonl", `{"schema":"mprs-trace/1","algo":"rand2","spec":"star:n=8","seed":2,"machines":4}`+"\n"+ev1+"\n"+ev2+"\n")
	deltas, err = DiffTraces(a, e)
	if err != nil {
		t.Fatal(err)
	}
	hard := map[string]bool{}
	for _, dl := range deltas {
		if dl.Hard {
			hard[dl.Field] = true
		}
	}
	if !hard["algo"] || !hard["seed"] {
		t.Errorf("header parameter mismatch not flagged: %v", deltas)
	}
}
