package main

import (
	"bytes"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"github.com/rulingset/mprs/internal/trace"
)

// genTestGraph writes a small generated graph to a file and returns its path,
// so checkpointed runs and their resumes load bit-identical input.
func genTestGraph(t *testing.T) string {
	t.Helper()
	file := filepath.Join(t.TempDir(), "g.txt")
	if err := run([]string{"gen", "-spec", "gnp:n=300,p=0.02", "-seed", "3", "-o", file}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	return file
}

func TestRunDurableFlagValidation(t *testing.T) {
	g := genTestGraph(t)
	dir := t.TempDir()

	if err := run([]string{"run", "-algo", "det2", "-in", g, "-resume"}); err == nil ||
		!strings.Contains(err.Error(), "-resume requires -checkpoint-dir") {
		t.Errorf("-resume without -checkpoint-dir: err = %v", err)
	}
	for _, algo := range []string{"detbeta", "detab", "clique2", "greedy"} {
		err := run([]string{"run", "-algo", algo, "-in", g, "-checkpoint-dir", dir})
		if err == nil || !strings.Contains(err.Error(), "does not support durable") {
			t.Errorf("-checkpoint-dir with %s: err = %v", algo, err)
		}
	}
	// Resuming from an empty directory is a hard error, not a silent fresh run.
	err := run([]string{"run", "-algo", "det2", "-in", g, "-checkpoint-dir", dir, "-resume"})
	if err == nil || !strings.Contains(err.Error(), "no valid checkpoint") {
		t.Errorf("-resume with empty dir: err = %v", err)
	}
}

// TestRunDurableResumeInProcess checkpoints a full run, then resumes from the
// newest durable checkpoint and checks the member list is byte-identical —
// the CLI end of the resume bit-identity contract.
func TestRunDurableResumeInProcess(t *testing.T) {
	g := genTestGraph(t)
	dir := t.TempDir()
	full := filepath.Join(dir, "full.txt")
	resumed := filepath.Join(dir, "resumed.txt")
	ckpt := filepath.Join(dir, "ckpt")

	base := []string{"run", "-algo", "det2", "-in", g, "-chunk", "4",
		"-checkpoint-dir", ckpt, "-checkpoint-every", "4"}
	if err := run(append(base, "-members-out", full)); err != nil {
		t.Fatalf("checkpointed run: %v", err)
	}
	var resumeErr error
	errOut := captureStderr(t, func() {
		resumeErr = run(append(base, "-resume", "-members-out", resumed))
	})
	if resumeErr != nil {
		t.Fatalf("resumed run: %v", resumeErr)
	}
	if !strings.Contains(errOut, "resuming from durable checkpoint at round") {
		t.Errorf("resume not announced on stderr: %q", errOut)
	}
	a, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || !bytes.Equal(a, b) {
		t.Fatalf("resumed members differ from uninterrupted run (%d vs %d bytes)", len(a), len(b))
	}

	// A different algorithm seed is a different fingerprint: resuming must be
	// refused rather than replaying the wrong configuration.
	err = run(append(base, "-algo-seed", "99", "-resume"))
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("fingerprint mismatch not rejected: %v", err)
	}
}

// buildCLI compiles the mprs binary once per test into a temp dir, for tests
// that need a real process to kill.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "mprs")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestRunDieAtResumeSubprocess is the crash-restart integration test: run the
// real binary with -checkpoint-dir and -die-at so it exits with status 7
// mid-run (after durable checkpoints hit disk), then -resume in a fresh
// process and require the member list and the spliced trace to match an
// uninterrupted run byte for byte.
func TestRunDieAtResumeSubprocess(t *testing.T) {
	bin := buildCLI(t)
	g := genTestGraph(t)
	dir := t.TempDir()
	full := filepath.Join(dir, "full.txt")
	fullTrace := filepath.Join(dir, "full.jsonl")
	resumed := filepath.Join(dir, "resumed.txt")
	resumedTrace := filepath.Join(dir, "resumed.jsonl")
	ckpt := filepath.Join(dir, "ckpt")

	base := []string{"run", "-algo", "det2", "-in", g, "-chunk", "4", "-checkpoint-every", "4"}
	mustRun := func(args ...string) {
		t.Helper()
		cmd := hardenedCommand(t, bin, append(base, args...)...)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("%v: %v\n%s", args, err, out)
		}
	}

	mustRun("-members-out", full, "-trace", fullTrace)

	killed := hardenedCommand(t, bin, append(base, "-checkpoint-dir", ckpt, "-die-at", "12")...)
	out, err := killed.CombinedOutput()
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 7 {
		t.Fatalf("-die-at run: want exit status 7, got %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "simulated crash at round") {
		t.Fatalf("-die-at did not announce the crash:\n%s", out)
	}

	mustRun("-checkpoint-dir", ckpt, "-resume", "-members-out", resumed, "-trace", resumedTrace)

	a, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || !bytes.Equal(a, b) {
		t.Fatalf("post-crash resume changed the ruling set (%d vs %d bytes)", len(a), len(b))
	}

	// Trace splice: the resumed trace declares its resume round in the header
	// and carries exactly the uninterrupted trace's events after that round.
	hdr, evs, err := trace.ReadFile(resumedTrace)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.ResumedFrom <= 0 {
		t.Fatalf("resumed trace header missing resumed_from: %+v", hdr)
	}
	_, fullEvs, err := trace.ReadFile(fullTrace)
	if err != nil {
		t.Fatal(err)
	}
	var tail []trace.Event
	for _, ev := range fullEvs {
		if ev.Round > hdr.ResumedFrom {
			tail = append(tail, ev)
		}
	}
	if len(evs) == 0 || len(evs) != len(tail) {
		t.Fatalf("spliced trace has %d events, want %d (resumed from %d)", len(evs), len(tail), hdr.ResumedFrom)
	}
	for i := range evs {
		if evs[i].Round != tail[i].Round || evs[i].Step != tail[i].Step || evs[i].Words != tail[i].Words {
			t.Fatalf("spliced event %d differs: %+v vs %+v", i, evs[i], tail[i])
		}
	}

	// The checkpoint directory holds CRC-framed files plus a manifest, and
	// respects the default retention.
	files, err := filepath.Glob(filepath.Join(ckpt, "ckpt-*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 || len(files) > 3 {
		t.Fatalf("retention violated: %d checkpoint files %v", len(files), files)
	}
}
