package lint

import "go/types"

// globalrand forbids the package-level math/rand convenience functions
// (rand.Intn, rand.Float64, rand.Shuffle, rand.Perm, …): they draw from the
// process-global source, whose state is shared across goroutines and whose
// default seeding is outside the caller's control. Deterministic code must
// construct an explicitly seeded generator — rand.New(rand.NewSource(seed))
// — and thread the *rand.Rand through, the way Luby and sparsify already do.
// The constructors themselves stay allowed.
var globalrandAnalyzer = &Analyzer{
	Name: "globalrand",
	Doc:  "forbid package-level math/rand functions; require a seeded *rand.Rand",
	Run:  runGlobalrand,
}

// globalrandAllowed are the math/rand(/v2) package-level functions that
// build explicitly seeded generators rather than using the global one.
var globalrandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runGlobalrand(p *Pass) {
	// Info.Uses iteration order is irrelevant: the driver sorts diagnostics.
	for id, obj := range p.Info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		if path := fn.Pkg().Path(); path != "math/rand" && path != "math/rand/v2" {
			continue
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			continue // methods on *rand.Rand etc. are exactly the sanctioned route
		}
		if globalrandAllowed[fn.Name()] {
			continue
		}
		p.Reportf(id.Pos(), "math/rand.%s draws from the shared global source; thread an explicitly seeded *rand.Rand instead", fn.Name())
	}
}
