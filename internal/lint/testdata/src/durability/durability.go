// Package durability is a negative fixture for the errdrop analyzer's
// os-level durability coverage: dropped errors from os.Rename,
// (*os.File).Close and (*os.File).Sync inside a critical package mean data
// believed durable may not exist after a crash.
package durability

import "os"

// dropped ignores durability errors entirely: flagged.
func dropped(f *os.File) {
	f.Sync()                   // want `error result 0 of File\.Sync is silently dropped`
	f.Close()                  // want `error result 0 of File\.Close is silently dropped`
	os.Rename("a.tmp", "a")    // want `error result 0 of os\.Rename is silently dropped`
	_ = f.Sync()               // want `error result 0 of File\.Sync is discarded with a blank identifier`
	_ = os.Rename("b.tmp", "") // want `error result 0 of os\.Rename is discarded with a blank identifier`
}

// deferred drops the Close error by construction: flagged.
func deferred() error {
	f, err := os.Open("x")
	if err != nil {
		return err
	}
	defer f.Close() // want `deferred File\.Close discards its error`
	return nil
}

// handled checks (or deliberately annotates) every durability error: never
// flagged.
func handled(f *os.File) (err error) {
	if err := f.Sync(); err != nil {
		return err
	}
	if err := os.Rename("a.tmp", "a"); err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	g, err := os.Open("y")
	if err != nil {
		return err
	}
	defer g.Close() //detlint:ok errdrop -- read-only handle; no buffered writes to lose
	return nil
}

// otherOS leaves non-durability os calls to vet: never flagged.
func otherOS() {
	os.Remove("scratch")
	os.Setenv("K", "V")
}
