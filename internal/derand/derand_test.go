package derand

import (
	"math"
	"testing"

	"github.com/rulingset/mprs/internal/hash"
	"github.com/rulingset/mprs/internal/mpc"
)

func newCluster(t *testing.T, machines, n int) *mpc.Cluster {
	t.Helper()
	c, err := mpc.NewCluster(mpc.Config{Machines: machines}, n)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	c := newCluster(t, 1, 4)
	fam, err := hash.NewBits(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	eval := func(x *mpc.Ctx, s *hash.Seed) float64 { return 0 }
	if _, err := SelectSeed(c, fam.NewSeed(), Config{ChunkBits: 99}, eval); err == nil {
		t.Error("chunk bits 99 accepted")
	}
	if _, err := SelectSeed(c, fam.NewSeed(), Config{Objective: Objective(9)}, eval); err == nil {
		t.Error("bad objective accepted")
	}
}

// TestMaximizeMarks uses the simplest estimator: maximize the expected number
// of marked vertices. The optimum is marking everything; conditional
// expectations must find a seed achieving at least the expectation n·2^-j.
func TestMaximizeMarks(t *testing.T) {
	const n, j = 40, 2
	for _, machines := range []int{1, 4} {
		for _, chunk := range []int{1, 3, 8} {
			c := newCluster(t, machines, n)
			fam, err := hash.NewBits(n, j)
			if err != nil {
				t.Fatal(err)
			}
			seed := fam.NewSeed()
			eval := func(x *mpc.Ctx, s *hash.Seed) float64 {
				sum := 0.0
				for v := x.Lo; v < x.Hi; v++ {
					sum += fam.MarkProb(s, v)
				}
				return sum
			}
			trace, err := SelectSeed(c, seed, Config{ChunkBits: chunk, Objective: Maximize}, eval)
			if err != nil {
				t.Fatal(err)
			}
			if seed.Fixed() != seed.Total() {
				t.Fatalf("seed not fully fixed")
			}
			expect := float64(n) * math.Ldexp(1, -j)
			if math.Abs(trace.Initial-expect) > 1e-9 {
				t.Fatalf("initial expectation = %v, want %v", trace.Initial, expect)
			}
			// Count realized marks; must be >= expectation (guarantee).
			realized := 0
			for v := 0; v < n; v++ {
				if fam.Marked(seed, v) {
					realized++
				}
			}
			if float64(realized) < expect-1e-9 {
				t.Fatalf("machines=%d chunk=%d: realized %d < expectation %v", machines, chunk, realized, expect)
			}
			if math.Abs(trace.Final()-float64(realized)) > 1e-9 {
				t.Fatalf("trace final %v != realized %d", trace.Final(), realized)
			}
			if idx := CheckMonotone(Maximize, trace, 1e-9); idx != -1 {
				t.Fatalf("trajectory not monotone at step %d: %+v", idx, trace)
			}
		}
	}
}

// TestMinimizePairs minimizes the expected number of concurrently marked
// adjacent pairs on a path; the realized count must not exceed the
// expectation m·2^-2j.
func TestMinimizePairs(t *testing.T) {
	const n, j = 30, 2
	c := newCluster(t, 3, n)
	fam, err := hash.NewBits(n, j)
	if err != nil {
		t.Fatal(err)
	}
	seed := fam.NewSeed()
	eval := func(x *mpc.Ctx, s *hash.Seed) float64 {
		sum := 0.0
		for v := x.Lo; v < x.Hi && v < n-1; v++ {
			sum += fam.PairMarkProb(s, v, v+1)
		}
		return sum
	}
	trace, err := SelectSeed(c, seed, Config{ChunkBits: 4, Objective: Minimize}, eval)
	if err != nil {
		t.Fatal(err)
	}
	expect := float64(n-1) * math.Ldexp(1, -2*j)
	realized := 0
	for v := 0; v < n-1; v++ {
		if fam.Marked(seed, v) && fam.Marked(seed, v+1) {
			realized++
		}
	}
	if float64(realized) > expect+1e-9 {
		t.Fatalf("realized %d pairs > expectation %v", realized, expect)
	}
	if idx := CheckMonotone(Minimize, trace, 1e-9); idx != -1 {
		t.Fatalf("trajectory not monotone at step %d", idx)
	}
}

func TestAlignToKeepsChunksInsideSegments(t *testing.T) {
	const n, j = 16, 3
	c := newCluster(t, 2, n)
	fam, err := hash.NewBits(n, j)
	if err != nil {
		t.Fatal(err)
	}
	segW := fam.SegWidth()
	seed := fam.NewSeed()
	var boundaries []int
	cfg := Config{
		ChunkBits: segW - 1, // would straddle without alignment
		Objective: Maximize,
		AlignTo:   segW,
		OnChunk: func(s *hash.Seed, start, width int) {
			boundaries = append(boundaries, start, width)
			if start/segW != (start+width-1)/segW {
				t.Errorf("chunk [%d,%d) straddles a segment boundary (segW=%d)", start, start+width, segW)
			}
		},
	}
	eval := func(x *mpc.Ctx, s *hash.Seed) float64 {
		sum := 0.0
		for v := x.Lo; v < x.Hi; v++ {
			sum += fam.MarkProb(s, v)
		}
		return sum
	}
	if _, err := SelectSeed(c, seed, cfg, eval); err != nil {
		t.Fatal(err)
	}
	if len(boundaries) == 0 {
		t.Fatal("OnChunk never called")
	}
	// Chunks must cover the whole seed contiguously.
	at := 0
	for i := 0; i < len(boundaries); i += 2 {
		if boundaries[i] != at {
			t.Fatalf("chunk %d starts at %d, want %d", i/2, boundaries[i], at)
		}
		at += boundaries[i+1]
	}
	if at != seed.Total() {
		t.Fatalf("chunks cover %d bits, want %d", at, seed.Total())
	}
}

func TestSelectSeedDeterministicAcrossMachineCounts(t *testing.T) {
	const n, j = 24, 2
	run := func(machines int) []uint64 {
		c := newCluster(t, machines, n)
		fam, err := hash.NewBits(n, j)
		if err != nil {
			t.Fatal(err)
		}
		seed := fam.NewSeed()
		eval := func(x *mpc.Ctx, s *hash.Seed) float64 {
			sum := 0.0
			for v := x.Lo; v < x.Hi; v++ {
				sum += float64(v+1) * fam.MarkProb(s, v)
			}
			return sum
		}
		if _, err := SelectSeed(c, seed, Config{ChunkBits: 5, Objective: Maximize}, eval); err != nil {
			t.Fatal(err)
		}
		bitsOut := make([]uint64, seed.Total())
		for i := range bitsOut {
			bitsOut[i] = seed.Bit(i)
		}
		return bitsOut
	}
	want := run(1)
	for _, m := range []int{2, 3, 7} {
		got := run(m)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("machines=%d: seed bit %d differs (machine partition must not change the estimator sum)", m, i)
			}
		}
	}
}

func TestTraceStepsAndRounds(t *testing.T) {
	const n, j = 10, 2
	c := newCluster(t, 2, n)
	fam, err := hash.NewBits(n, j)
	if err != nil {
		t.Fatal(err)
	}
	seed := fam.NewSeed()
	eval := func(x *mpc.Ctx, s *hash.Seed) float64 { return 0 }
	trace, err := SelectSeed(c, seed, Config{ChunkBits: 4, Objective: Minimize}, eval)
	if err != nil {
		t.Fatal(err)
	}
	wantSteps := (seed.Total() + 3) / 4
	if trace.Steps != wantSteps {
		t.Fatalf("steps = %d, want %d", trace.Steps, wantSteps)
	}
	// Rounds: 1 init gather + 2 per chunk (gather + broadcast).
	if got := c.Stats().Rounds; got != 1+2*wantSteps {
		t.Fatalf("rounds = %d, want %d", got, 1+2*wantSteps)
	}
}

func TestCheckMonotone(t *testing.T) {
	good := Trace{Initial: 10, Values: []float64{9, 9, 8.5}}
	if CheckMonotone(Minimize, good, 1e-12) != -1 {
		t.Error("good minimizing trace flagged")
	}
	bad := Trace{Initial: 10, Values: []float64{9, 11, 8}}
	if CheckMonotone(Minimize, bad, 1e-12) != 1 {
		t.Error("regression at index 1 not flagged")
	}
	if CheckMonotone(Maximize, Trace{Initial: 1, Values: []float64{2, 1.5}}, 1e-12) != 1 {
		t.Error("maximizing regression not flagged")
	}
}
