package rulingset

import (
	"github.com/rulingset/mprs/internal/bitset"
	"github.com/rulingset/mprs/internal/mpc"
)

// registerCheckpoint exposes a driver's mutable vertex sets to the cluster's
// superstep recovery (see mpc.Checkpointer): machine m's snapshot is the
// concatenation of each set's PackRange over the machine's vertex range, and
// Restore unpacks the same layout back. Registration is a no-op unless
// checkpointing is needed — for crash recovery (a fault plan is present),
// durable persistence (a checkpoint sink is attached) or a resume — so
// plain runs pay nothing.
//
// The drivers register every set they mutate between supersteps (active and
// candidate sets for sample-and-sparsify, active and membership sets for
// Luby); anything else a driver holds is either immutable for the run or
// recomputed from these sets each iteration.
func registerCheckpoint(c *mpc.Cluster, o Options, sets ...*bitset.Set) error {
	if o.CheckpointEvery <= 0 {
		return nil
	}
	if o.Faults == nil && o.CheckpointSink == nil && o.Resume == nil {
		return nil
	}
	perRange := func(lo, hi int) int { return (hi - lo + 63) / 64 }
	return c.SetCheckpointer(mpc.FuncCheckpointer{
		SnapshotFn: func(m int) []uint64 {
			lo, hi := c.Range(m)
			out := make([]uint64, 0, len(sets)*perRange(lo, hi))
			for _, s := range sets {
				out = append(out, s.PackRange(lo, hi)...)
			}
			return out
		},
		RestoreFn: func(m int, data []uint64) {
			lo, hi := c.Range(m)
			per := perRange(lo, hi)
			for i, s := range sets {
				a, b := i*per, (i+1)*per
				if a > len(data) {
					a = len(data)
				}
				if b > len(data) {
					b = len(data)
				}
				s.UnpackRange(lo, hi, data[a:b])
			}
		},
	})
}
