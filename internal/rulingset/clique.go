package rulingset

import (
	"math"
	"math/bits"
	"math/rand"
	"slices"

	"github.com/rulingset/mprs/internal/bitset"
	"github.com/rulingset/mprs/internal/clique"
	"github.com/rulingset/mprs/internal/graph"
	"github.com/rulingset/mprs/internal/hash"
)

// CliqueResult is the outcome of a congested-clique algorithm run.
type CliqueResult struct {
	// Members are the ruling-set vertices in ascending order.
	Members []int32
	// Beta is the guaranteed domination radius.
	Beta int
	// Stats are the congested-clique model measurements.
	Stats clique.Stats
	// Phases traces per-phase progress.
	Phases []PhaseStat
	// ResidualN and ResidualM describe the instance routed to node 0.
	ResidualN, ResidualM int
}

// CliqueRandRuling2 computes a 2-ruling set of g in the congested clique —
// the model in which the sample-and-sparsify algorithm was first developed
// (one node per vertex, one O(log n)-bit message per ordered pair per
// round). Θ(log log Δ) phases of O(1) rounds each, then a Lenzen-routed
// residual solve.
func CliqueRandRuling2(g *graph.Graph, o Options) (CliqueResult, error) {
	return cliqueRuling2(g, o, false)
}

// CliqueDetRuling2 is the deterministic congested-clique 2-ruling set. The
// conditional-expectation chunks that cost the MPC simulator a gather per
// 2^z payload words here cost O(1) rounds regardless of the chunk width (up
// to log₂ n): candidate extension e is summed at aggregator node e with
// every contribution on its own pair link (ScatterAggregate). This is the
// collective structure behind the paper's round bounds.
func CliqueDetRuling2(g *graph.Graph, o Options) (CliqueResult, error) {
	return cliqueRuling2(g, o, true)
}

func cliqueRuling2(g *graph.Graph, o Options, deterministic bool) (CliqueResult, error) {
	n := g.N()
	if n == 0 {
		return CliqueResult{Beta: 2}, nil
	}
	if n == 1 {
		// A single node is the whole clique; no communication exists.
		return CliqueResult{Members: []int32{0}, Beta: 2, ResidualN: 1}, nil
	}
	o = o.withDefaults(n)
	if err := o.durableUnsupported("CliqueRuling2"); err != nil {
		return CliqueResult{}, err
	}
	c, err := clique.NewCluster(clique.Config{Strict: o.Strict, Faults: o.Faults, Tracer: o.Tracer, Context: o.Context, Transport: o.Transport, Parallelism: o.Parallelism}, n)
	if err != nil {
		return CliqueResult{}, err
	}
	rng := rand.New(rand.NewSource(o.Seed))

	// Maximum degree, then the escalation schedule (two rounds).
	delta, err := c.MaxToZero("maxdeg", func(v int) uint64 { return uint64(g.Degree(v)) })
	if err != nil {
		return CliqueResult{}, err
	}
	if err := c.BroadcastWord("maxdeg/bcast", delta); err != nil {
		return CliqueResult{}, err
	}

	active := bitset.New(n)
	active.Fill()
	cand := bitset.New(n)
	var phases []PhaseStat

	c.Span("sparsify")
	for _, j := range schedule(int(delta)) {
		if active.Count() == 0 {
			break
		}
		view, err := cliqueActiveView(c, g, active)
		if err != nil {
			return CliqueResult{}, err
		}
		ps := PhaseStat{Phase: len(phases) + 1, J: j, ActiveBefore: active.Count()}
		highDeg := 1 << uint(j)
		active.ForEach(func(v int) bool {
			if len(view[v]) >= highDeg {
				ps.HighDegBefore++
			}
			for _, u := range view[v] {
				if int(u) > v {
					ps.ActiveEdges++
				}
			}
			return true
		})

		marks := bitset.New(n)
		if deterministic {
			if err := cliqueDetMarks(c, o, active, view, j, marks, &ps); err != nil {
				return CliqueResult{}, err
			}
		} else {
			p := math.Ldexp(1, -j)
			active.ForEach(func(v int) bool {
				if rng.Float64() < p {
					marks.Add(v)
				}
				return true
			})
		}
		ps.Marked = marks.Count()
		marks.ForEach(func(v int) bool {
			for _, u := range view[v] {
				if int(u) > v && marks.Contains(int(u)) {
					ps.CandidateEdges++
				}
			}
			return true
		})

		// Marked nodes join the candidate set and knock out their active
		// neighbors (one word per incident pair).
		cand.Union(marks)
		if err := c.Step("dominate", func(x *clique.Ctx) {
			if !marks.Contains(x.Node) {
				return
			}
			for _, u := range g.Neighbors(x.Node) {
				if active.Contains(int(u)) {
					x.Send(int(u), 1)
				}
			}
		}); err != nil {
			return CliqueResult{}, err
		}
		touched := bitset.New(n)
		for v := 0; v < n; v++ {
			if len(c.Drain(v)) > 0 {
				touched.Add(v)
			}
		}
		active.Subtract(marks)
		active.Subtract(touched)

		// Loop-control count at node 0 (one round).
		count, err := c.SumToZero("active", func(v int) uint64 {
			if active.Contains(v) {
				return 1
			}
			return 0
		})
		if err != nil {
			return CliqueResult{}, err
		}
		ps.ActiveAfter = int(count)
		phases = append(phases, ps)
	}

	// Residual stage: survivors join the candidates, candidates announce
	// themselves, the candidate-induced subgraph is Lenzen-routed to node 0,
	// solved greedily there, and members are notified individually.
	cand.Union(active)
	active.Clear()
	members, sub, err := cliqueSolveResidual(c, g, cand)
	if err != nil {
		return CliqueResult{}, err
	}
	return CliqueResult{
		Members:   members,
		Beta:      2,
		Stats:     c.Stats(),
		Phases:    phases,
		ResidualN: sub.N(),
		ResidualM: sub.M(),
	}, nil
}

// cliqueActiveView performs the one-round neighborhood exchange: active
// nodes announce themselves to neighbors; each active node collects the
// ascending list of its active neighbors.
func cliqueActiveView(c *clique.Cluster, g *graph.Graph, active *bitset.Set) ([][]int32, error) {
	n := g.N()
	if err := c.Step("view", func(x *clique.Ctx) {
		if !active.Contains(x.Node) {
			return
		}
		for _, u := range g.Neighbors(x.Node) {
			x.Send(int(u), 1)
		}
	}); err != nil {
		return nil, err
	}
	view := make([][]int32, n)
	for v := 0; v < n; v++ {
		msgs := c.Drain(v)
		if !active.Contains(v) {
			continue
		}
		for _, msg := range msgs {
			view[v] = append(view[v], int32(msg.Src))
		}
	}
	return view, nil
}

// cliqueDetMarks selects the phase's hash seed by conditional expectations
// using the clique's O(1)-round scatter-aggregate collective per chunk.
func cliqueDetMarks(c *clique.Cluster, o Options, active *bitset.Set, view [][]int32, j int, marks *bitset.Set, ps *PhaseStat) error {
	n := active.Len()
	fam, err := hash.NewBits(n, j)
	if err != nil {
		return err
	}
	seed := fam.NewSeed()
	ms := newMarkState(fam, n)
	highDeg := 1 << uint(j)
	capSize := highDeg
	if o.BenefitCap > 0 && o.BenefitCap < capSize {
		capSize = o.BenefitCap
	}
	alpha := o.EstimatorAlpha

	// Chunk width: up to the family's segment width, clamped so that 2^z
	// aggregator nodes exist.
	z := o.ChunkBits
	if maxZ := bits.Len(uint(n)) - 1; z > maxZ {
		z = maxZ
	}
	if z < 1 {
		z = 1
	}

	nodeTerm := func(v int, s *hash.Seed) float64 {
		if !active.Contains(v) {
			return 0
		}
		ec := ms.ctx(s)
		nb := view[v]
		var cost, benefit float64
		if int(ms.firstZero[v]) >= minInt(ms.fixedSegs, j) {
			for _, u := range nb {
				if int(u) > v {
					cost += ec.pairProb(v, int(u), j, j)
				}
			}
		}
		if len(nb) >= highDeg {
			nn := nb[:capSize]
			for i, u := range nn {
				pu := ec.markProb(int(u), j)
				if pu == 0 {
					continue
				}
				benefit += pu
				for _, w := range nn[i+1:] {
					benefit -= ec.pairProb(int(u), int(w), j, j)
				}
			}
		}
		return alpha*cost - benefit
	}

	ps.EstimatorInitial = 0
	for v := 0; v < n; v++ {
		ps.EstimatorInitial += nodeTerm(v, seed)
	}
	caller := c.CurrentSpan()
	c.Span("seed-search")
	defer c.Span(caller)
	segW := fam.SegWidth()
	for seed.Fixed() < seed.Total() {
		start := seed.Fixed()
		width := z
		if b := segW - start%segW; width > b {
			width = b
		}
		if rem := seed.Total() - start; width > rem {
			width = rem
		}
		nExt := 1 << uint(width)
		ms.sync(seed)
		sums, err := c.ScatterAggregateFloat("chunk", nExt, func(v, e int) float64 {
			local := seed.Clone()
			local.SetChunk(start, width, uint64(e))
			local.SetFixed(start + width)
			return nodeTerm(v, local)
		})
		if err != nil {
			return err
		}
		best := 0
		for e := 1; e < nExt; e++ {
			if sums[e] < sums[best] {
				best = e
			}
		}
		if err := c.BroadcastWord("chunk/pick", uint64(best)); err != nil {
			return err
		}
		seed.SetChunk(start, width, uint64(best))
		seed.Commit(width)
		ps.SeedSteps++
		ps.EstimatorFinal = sums[best]
	}
	ms.sync(seed)
	active.ForEach(func(v int) bool {
		if ms.marked(v, j) {
			marks.Add(v)
		}
		return true
	})
	return nil
}

// cliqueSolveResidual announces candidate membership, Lenzen-routes the
// candidate-induced subgraph to node 0, solves it greedily there, and
// notifies the members.
func cliqueSolveResidual(c *clique.Cluster, g *graph.Graph, cand *bitset.Set) ([]int32, *graph.Graph, error) {
	n := g.N()
	c.Span("gather")
	// Announce: candidates tell their neighbors (one word per pair).
	if err := c.Step("residual/announce", func(x *clique.Ctx) {
		if !cand.Contains(x.Node) {
			return
		}
		for _, u := range g.Neighbors(x.Node) {
			x.Send(int(u), 1)
		}
	}); err != nil {
		return nil, nil, err
	}
	candNbrs := make([][]int32, n)
	for v := 0; v < n; v++ {
		msgs := c.Drain(v)
		if !cand.Contains(v) {
			continue
		}
		for _, msg := range msgs {
			candNbrs[v] = append(candNbrs[v], int32(msg.Src))
		}
	}
	// Route: each candidate ships its candidate-incident edges (smaller
	// endpoint owns) to node 0 under Lenzen's per-node budgets.
	if err := c.RouteStep("residual/route", func(x *clique.Ctx) {
		if !cand.Contains(x.Node) {
			return
		}
		for _, u := range candNbrs[x.Node] {
			if int(u) > x.Node {
				x.Send(0, uint64(uint32(x.Node))<<32|uint64(uint32(u)))
			}
		}
	}); err != nil {
		return nil, nil, err
	}
	toSub := make([]int32, n)
	for i := range toSub {
		toSub[i] = -1
	}
	var toOrig []int32
	cand.ForEach(func(v int) bool {
		toSub[v] = int32(len(toOrig))
		toOrig = append(toOrig, int32(v))
		return true
	})
	var edges []graph.Edge
	for _, msg := range c.Drain(0) {
		for _, w := range msg.Payload {
			u := int32(w >> 32)
			v := int32(uint32(w))
			edges = append(edges, graph.Edge{U: toSub[u], V: toSub[v]})
		}
	}
	sub, err := graph.New(len(toOrig), edges)
	if err != nil {
		return nil, nil, err
	}
	mis := GreedyMIS(sub)
	members := make([]int32, len(mis))
	inMIS := bitset.New(n)
	for i, v := range mis {
		members[i] = toOrig[v]
		inMIS.Add(int(toOrig[v]))
	}
	// Notify members individually (one word per pair from node 0).
	c.Span("finish")
	if err := c.Step("residual/notify", func(x *clique.Ctx) {
		if x.Node != 0 {
			return
		}
		inMIS.ForEach(func(v int) bool {
			if v != 0 {
				x.Send(v, 1)
			}
			return true
		})
	}); err != nil {
		return nil, nil, err
	}
	for v := 0; v < n; v++ {
		c.Drain(v)
	}
	slices.Sort(members)
	return members, sub, nil
}
