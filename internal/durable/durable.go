// Package durable persists superstep checkpoints across process death.
//
// PR 1's Pregel-style recovery keeps Checkpointer snapshots in the process
// heap: it survives injected machine crashes, but killing the mprs process
// loses the whole run — exactly the failure the MPC/MapReduce lineage treats
// as the common case. This package is the missing durability layer: a
// schema-versioned on-disk checkpoint format (`mprs-ckpt/1`) carrying the
// per-machine state words, the barrier round they were captured at, a config
// fingerprint and a build stamp, plus a Store that writes checkpoints
// atomically (temp file + fsync + rename + directory sync), maintains a
// manifest with retention/GC, and on load falls back past corrupt or torn
// files to the newest checkpoint that still verifies.
//
// The format is deliberately paranoid about partial writes: every record is
// length-prefixed and CRC-guarded (CRC-32C), so a torn tail, a truncated
// file or a flipped bit is detected as ErrCorrupt rather than silently
// resumed from. A fingerprint mismatch is a different, *hard* error
// (ErrFingerprint): the checkpoint is intact but belongs to a different run
// configuration, and resuming from it would break the bit-identity contract.
//
// Nothing in this package reads the wall clock or draws randomness: file
// names derive from the checkpoint round, and contents are a pure function
// of (state, meta), so checkpoint files themselves are byte-deterministic.
package durable

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Schema is the checkpoint file format version, written as the file magic
// and into Meta.Schema. Version bumps are reserved for changes that break
// existing readers.
const Schema = "mprs-ckpt/1"

// magic is the fixed first line of every checkpoint file.
const magic = Schema + "\n"

// maxRecordBytes bounds one record payload so a corrupt length prefix cannot
// drive a multi-gigabyte allocation. 1 GiB of state words per machine is far
// beyond any simulated scale.
const maxRecordBytes = 1 << 30

// Sentinel errors. ErrCorrupt (and ErrNoCheckpoint) are recoverable — the
// Store falls back to the previous checkpoint; ErrFingerprint is not.
var (
	// ErrNoCheckpoint means the directory holds no checkpoint that decodes
	// and verifies.
	ErrNoCheckpoint = errors.New("durable: no valid checkpoint")
	// ErrCorrupt wraps CRC mismatches, truncation and torn writes.
	ErrCorrupt = errors.New("durable: corrupt checkpoint")
	// ErrFingerprint means an intact checkpoint was produced by a different
	// run configuration; resuming from it would break bit-identity.
	ErrFingerprint = errors.New("durable: config fingerprint mismatch")
)

// Meta is the self-description record at the head of every checkpoint file.
type Meta struct {
	// Schema is always Schema when written by this package.
	Schema string `json:"schema"`
	// Round is the barrier round the state was captured at: the state is the
	// driver state after round committed supersteps, i.e. the snapshot taken
	// at the barrier before round+1 executes.
	Round int `json:"round"`
	// Machines is the number of per-machine state records that follow.
	Machines int `json:"machines"`
	// Fingerprint is the canonical run-configuration string; resume refuses
	// a checkpoint whose fingerprint differs from the resuming run's.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Build stamps the producing binary (see internal/buildinfo).
	Build json.RawMessage `json:"build,omitempty"`
	// StateWords is the total machine words across all state records, for
	// accounting without decoding the body.
	StateWords int64 `json:"state_words"`
}

// castagnoli is the CRC-32C table (the polynomial hardware CRC instructions
// implement; conventional for storage checksums).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// writeRecord writes one length-prefixed, CRC-guarded record.
func writeRecord(w io.Writer, payload []byte) (int64, error) {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	return int64(len(hdr)) + int64(len(payload)), nil
}

// readRecord reads one record, verifying length sanity and CRC. Truncation
// and checksum failures both surface as ErrCorrupt.
func readRecord(r io.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated record header: %v", ErrCorrupt, err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if n > maxRecordBytes {
		return nil, fmt.Errorf("%w: record length %d exceeds limit", ErrCorrupt, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: truncated record payload: %v", ErrCorrupt, err)
	}
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("%w: record CRC mismatch (got %08x want %08x)", ErrCorrupt, got, want)
	}
	return payload, nil
}

// Encode writes one checkpoint: magic, a meta record, then one state record
// per machine (little-endian words). meta.Schema, meta.Machines and
// meta.StateWords are filled in from the arguments. Returns the encoded
// byte count.
func Encode(w io.Writer, meta Meta, state [][]uint64) (int64, error) {
	meta.Schema = Schema
	meta.Machines = len(state)
	meta.StateWords = 0
	for _, words := range state {
		meta.StateWords += int64(len(words))
	}
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return 0, err
	}
	total := int64(0)
	if _, err := io.WriteString(w, magic); err != nil {
		return 0, err
	}
	total += int64(len(magic))
	n, err := writeRecord(w, metaJSON)
	if err != nil {
		return 0, err
	}
	total += n
	buf := make([]byte, 0, 8*1024)
	for _, words := range state {
		buf = buf[:0]
		for _, v := range words {
			buf = binary.LittleEndian.AppendUint64(buf, v)
		}
		n, err := writeRecord(w, buf)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// Decode reads and verifies one checkpoint. Corruption anywhere — bad magic,
// truncated or CRC-failing records, trailing garbage, a record/meta
// disagreement — returns an error wrapping ErrCorrupt so callers can fall
// back to an older checkpoint.
func Decode(r io.Reader) (Meta, [][]uint64, error) {
	var meta Meta
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(r, head); err != nil {
		return meta, nil, fmt.Errorf("%w: truncated magic: %v", ErrCorrupt, err)
	}
	if !bytes.Equal(head, []byte(magic)) {
		return meta, nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, head)
	}
	metaJSON, err := readRecord(r)
	if err != nil {
		return meta, nil, err
	}
	if err := json.Unmarshal(metaJSON, &meta); err != nil {
		return meta, nil, fmt.Errorf("%w: bad meta record: %v", ErrCorrupt, err)
	}
	if meta.Schema != Schema {
		return meta, nil, fmt.Errorf("%w: unsupported schema %q", ErrCorrupt, meta.Schema)
	}
	if meta.Machines < 0 || meta.Machines > maxRecordBytes/8 {
		return meta, nil, fmt.Errorf("%w: implausible machine count %d", ErrCorrupt, meta.Machines)
	}
	state := make([][]uint64, meta.Machines)
	var totalWords int64
	for m := range state {
		payload, err := readRecord(r)
		if err != nil {
			return meta, nil, err
		}
		if len(payload)%8 != 0 {
			return meta, nil, fmt.Errorf("%w: state record %d length %d not word-aligned", ErrCorrupt, m, len(payload))
		}
		words := make([]uint64, len(payload)/8)
		for i := range words {
			words[i] = binary.LittleEndian.Uint64(payload[8*i:])
		}
		state[m] = words
		totalWords += int64(len(words))
	}
	if totalWords != meta.StateWords {
		return meta, nil, fmt.Errorf("%w: state words %d disagree with meta %d", ErrCorrupt, totalWords, meta.StateWords)
	}
	// A valid checkpoint ends exactly after the last record; trailing bytes
	// mean the file was not produced by a completed Encode.
	var tail [1]byte
	if _, err := r.Read(tail[:]); err != io.EOF {
		return meta, nil, fmt.Errorf("%w: trailing bytes after final record", ErrCorrupt)
	}
	return meta, state, nil
}
