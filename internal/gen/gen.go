// Package gen provides graph generators for the evaluation workloads.
//
// The paper under reproduction is a brief announcement with no evaluation
// section, so the workload families here are chosen to (a) cover the regimes
// the theory distinguishes (small vs. large Δ, sparse vs. dense, structured
// vs. random) and (b) include adversarial shapes (stars, barbells) that
// stress ruling-set algorithms. All randomized generators take an explicit
// *rand.Rand so every workload is reproducible from a seed.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/rulingset/mprs/internal/graph"
)

// GNP returns an Erdős–Rényi random graph G(n, p) using the geometric
// skipping method, which runs in O(n + m) expected time.
func GNP(n int, p float64, rng *rand.Rand) (*graph.Graph, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("gen: probability %v out of [0,1]", p)
	}
	var edges []graph.Edge
	if p > 0 {
		lq := math.Log1p(-p) // log(1-p), p < 1
		v, w := 1, -1
		for v < n {
			var skip int
			if p >= 1 {
				skip = 1
			} else {
				r := rng.Float64()
				skip = 1 + int(math.Log1p(-r)/lq)
				if skip < 1 {
					skip = 1
				}
			}
			w += skip
			for w >= v && v < n {
				w -= v
				v++
			}
			if v < n {
				edges = append(edges, graph.Edge{U: int32(w), V: int32(v)})
			}
		}
	}
	return graph.New(n, edges)
}

// RandomRegular returns a random d-regular graph on n vertices via the
// configuration model with edge-swap repair: stubs are paired uniformly at
// random, then self-loops and parallel edges are eliminated by random
// double-edge swaps (which preserve the degree sequence). n*d must be even
// and d < n.
func RandomRegular(n, d int, rng *rand.Rand) (*graph.Graph, error) {
	if d < 0 || d >= n {
		return nil, fmt.Errorf("gen: degree %d out of range for n=%d", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("gen: n*d=%d*%d must be even", n, d)
	}
	if d == 0 {
		return graph.New(n, nil)
	}
	stubs := make([]int32, n*d)
	for v := 0; v < n; v++ {
		for j := 0; j < d; j++ {
			stubs[v*d+j] = int32(v)
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) {
		stubs[i], stubs[j] = stubs[j], stubs[i]
	})
	pairs := make([][2]int32, 0, len(stubs)/2)
	for i := 0; i < len(stubs); i += 2 {
		pairs = append(pairs, [2]int32{stubs[i], stubs[i+1]})
	}

	type key struct{ a, b int32 }
	mk := func(u, v int32) key {
		if u > v {
			u, v = v, u
		}
		return key{a: u, b: v}
	}
	multiplicity := make(map[key]int, len(pairs))
	bad := func(p [2]int32) bool {
		return p[0] == p[1] || multiplicity[mk(p[0], p[1])] > 1
	}
	for _, p := range pairs {
		if p[0] != p[1] {
			multiplicity[mk(p[0], p[1])]++
		}
	}

	// Repair: swap endpoints between a bad pair and a random pair whenever
	// the swap strictly removes the defect without creating a new one.
	maxAttempts := 200 * len(pairs) * (d + 1)
	for attempt := 0; attempt < maxAttempts; attempt++ {
		badIdx := -1
		for i, p := range pairs {
			if bad(p) {
				badIdx = i
				break
			}
		}
		if badIdx == -1 {
			edges := make([]graph.Edge, len(pairs))
			for i, p := range pairs {
				edges[i] = graph.Edge{U: p[0], V: p[1]}
			}
			return graph.New(n, edges)
		}
		other := rng.Intn(len(pairs))
		if other == badIdx {
			continue
		}
		p, q := pairs[badIdx], pairs[other]
		// Proposed swap: (p0,q1) and (q0,p1).
		a, b := [2]int32{p[0], q[1]}, [2]int32{q[0], p[1]}
		if a[0] == a[1] || b[0] == b[1] {
			continue
		}
		ka, kb := mk(a[0], a[1]), mk(b[0], b[1])
		if multiplicity[ka] > 0 || multiplicity[kb] > 0 || ka == kb {
			continue
		}
		// Commit: retract old pairs, install new ones.
		for _, old := range [][2]int32{p, q} {
			if old[0] != old[1] {
				k := mk(old[0], old[1])
				if multiplicity[k]--; multiplicity[k] == 0 {
					delete(multiplicity, k)
				}
			}
		}
		multiplicity[ka]++
		multiplicity[kb]++
		pairs[badIdx], pairs[other] = a, b
	}
	return nil, fmt.Errorf("gen: regular-graph repair failed (n=%d, d=%d)", n, d)
}

// ChungLu returns a power-law random graph with expected degree sequence
// w_i ∝ (i+1)^(-1/(gamma-1)), scaled so the average expected degree is
// avgDeg, using the Miller–Hagberg efficient sampling algorithm. gamma must
// exceed 2.
func ChungLu(n int, gamma, avgDeg float64, rng *rand.Rand) (*graph.Graph, error) {
	if gamma <= 2 {
		return nil, fmt.Errorf("gen: power-law exponent %v must exceed 2", gamma)
	}
	if avgDeg <= 0 || n == 0 {
		return graph.New(n, nil)
	}
	w := make([]float64, n)
	sum := 0.0
	alpha := 1 / (gamma - 1)
	for i := range w {
		w[i] = math.Pow(float64(i+1), -alpha)
		sum += w[i]
	}
	scale := avgDeg * float64(n) / sum
	for i := range w {
		w[i] *= scale
	}
	// w is already sorted descending. Total weight:
	totalW := avgDeg * float64(n)

	var edges []graph.Edge
	for u := 0; u < n-1; u++ {
		v := u + 1
		p := math.Min(w[u]*w[v]/totalW, 1)
		for v < n && p > 0 {
			if p < 1 {
				r := rng.Float64()
				v += int(math.Floor(math.Log(r) / math.Log(1-p)))
			}
			if v < n {
				q := math.Min(w[u]*w[v]/totalW, 1)
				if rng.Float64() < q/p {
					edges = append(edges, graph.Edge{U: int32(u), V: int32(v)})
				}
				p = q
				v++
			}
		}
	}
	return graph.New(n, edges)
}

// Geometric returns a random geometric (unit-disk) graph: n points uniform
// in the unit square, an edge whenever two points lie within distance r.
// This is the standard model of wireless sensor networks. Neighbor search
// uses a bucket grid, so generation is O(n + m) expected.
func Geometric(n int, r float64, rng *rand.Rand) (*graph.Graph, error) {
	if r < 0 {
		return nil, fmt.Errorf("gen: negative radius %v", r)
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	if r == 0 || n == 0 {
		return graph.New(n, nil)
	}
	cells := int(1 / r)
	if cells < 1 {
		cells = 1
	}
	bucket := make(map[[2]int][]int32)
	cellOf := func(i int) [2]int {
		cx := int(xs[i] * float64(cells))
		cy := int(ys[i] * float64(cells))
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		return [2]int{cx, cy}
	}
	for i := 0; i < n; i++ {
		c := cellOf(i)
		bucket[c] = append(bucket[c], int32(i))
	}
	r2 := r * r
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		c := cellOf(i)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range bucket[[2]int{c[0] + dx, c[1] + dy}] {
					if j <= int32(i) {
						continue
					}
					ddx, ddy := xs[i]-xs[j], ys[i]-ys[j]
					if ddx*ddx+ddy*ddy <= r2 {
						edges = append(edges, graph.Edge{U: int32(i), V: j})
					}
				}
			}
		}
	}
	return graph.New(n, edges)
}

// Grid returns the rows×cols grid graph; with wrap it becomes a torus.
func Grid(rows, cols int, wrap bool) (*graph.Graph, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("gen: negative grid dimensions %dx%d", rows, cols)
	}
	n := rows * cols
	id := func(r, c int) int32 { return int32(r*cols + c) }
	var edges []graph.Edge
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r, c+1)})
			} else if wrap && cols > 2 {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r, 0)})
			}
			if r+1 < rows {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r+1, c)})
			} else if wrap && rows > 2 {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(0, c)})
			}
		}
	}
	return graph.New(n, edges)
}

// Path returns the path graph on n vertices.
func Path(n int) (*graph.Graph, error) {
	edges := make([]graph.Edge, 0, max(n-1, 0))
	for v := 0; v+1 < n; v++ {
		edges = append(edges, graph.Edge{U: int32(v), V: int32(v + 1)})
	}
	return graph.New(n, edges)
}

// Cycle returns the cycle graph on n vertices (n >= 3).
func Cycle(n int) (*graph.Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("gen: cycle needs n >= 3, got %d", n)
	}
	edges := make([]graph.Edge, 0, n)
	for v := 0; v < n; v++ {
		edges = append(edges, graph.Edge{U: int32(v), V: int32((v + 1) % n)})
	}
	return graph.New(n, edges)
}

// Star returns the star K_{1,n-1} with vertex 0 at the center.
func Star(n int) (*graph.Graph, error) {
	edges := make([]graph.Edge, 0, max(n-1, 0))
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{U: 0, V: int32(v)})
	}
	return graph.New(n, edges)
}

// Complete returns the complete graph K_n.
func Complete(n int) (*graph.Graph, error) {
	edges := make([]graph.Edge, 0, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, graph.Edge{U: int32(u), V: int32(v)})
		}
	}
	return graph.New(n, edges)
}

// CompleteBipartite returns K_{a,b} with the first a vertices on one side.
func CompleteBipartite(a, b int) (*graph.Graph, error) {
	edges := make([]graph.Edge, 0, a*b)
	for u := 0; u < a; u++ {
		for v := 0; v < b; v++ {
			edges = append(edges, graph.Edge{U: int32(u), V: int32(a + v)})
		}
	}
	return graph.New(a+b, edges)
}

// RandomTree returns a uniform random recursive tree: vertex v attaches to a
// uniformly random vertex in [0, v).
func RandomTree(n int, rng *rand.Rand) (*graph.Graph, error) {
	edges := make([]graph.Edge, 0, max(n-1, 0))
	for v := 1; v < n; v++ {
		u := rng.Intn(v)
		edges = append(edges, graph.Edge{U: int32(u), V: int32(v)})
	}
	return graph.New(n, edges)
}

// PruferTree returns a uniformly random labelled tree via a random Prüfer
// sequence.
func PruferTree(n int, rng *rand.Rand) (*graph.Graph, error) {
	if n < 2 {
		return graph.New(n, nil)
	}
	seq := make([]int, n-2)
	for i := range seq {
		seq[i] = rng.Intn(n)
	}
	deg := make([]int, n)
	for i := range deg {
		deg[i] = 1
	}
	for _, s := range seq {
		deg[s]++
	}
	// Min-heap of current leaves, kept as a sorted scan using a pointer plus
	// an "active leaf" trick (standard linear-time Prüfer decoding).
	edges := make([]graph.Edge, 0, n-1)
	ptr := 0
	leaf := -1
	next := func() int {
		if leaf >= 0 {
			l := leaf
			leaf = -1
			return l
		}
		for deg[ptr] != 1 {
			ptr++
		}
		l := ptr
		ptr++
		return l
	}
	for _, s := range seq {
		l := next()
		edges = append(edges, graph.Edge{U: int32(l), V: int32(s)})
		deg[s]--
		if deg[s] == 1 && s < ptr {
			leaf = s
		}
	}
	u := next()
	v := next()
	edges = append(edges, graph.Edge{U: int32(u), V: int32(v)})
	return graph.New(n, edges)
}

// Caterpillar returns a caterpillar tree: a spine path of the given length
// with legsPerSpine pendant vertices attached to every spine vertex.
func Caterpillar(spine, legsPerSpine int) (*graph.Graph, error) {
	if spine < 1 || legsPerSpine < 0 {
		return nil, fmt.Errorf("gen: bad caterpillar (spine=%d legs=%d)", spine, legsPerSpine)
	}
	n := spine * (1 + legsPerSpine)
	var edges []graph.Edge
	for s := 0; s+1 < spine; s++ {
		edges = append(edges, graph.Edge{U: int32(s), V: int32(s + 1)})
	}
	next := spine
	for s := 0; s < spine; s++ {
		for l := 0; l < legsPerSpine; l++ {
			edges = append(edges, graph.Edge{U: int32(s), V: int32(next)})
			next++
		}
	}
	return graph.New(n, edges)
}

// Barbell returns two cliques K_k joined by a path with pathLen interior
// vertices.
func Barbell(k, pathLen int) (*graph.Graph, error) {
	if k < 1 || pathLen < 0 {
		return nil, fmt.Errorf("gen: bad barbell (k=%d path=%d)", k, pathLen)
	}
	n := 2*k + pathLen
	var edges []graph.Edge
	clique := func(base int) {
		for u := 0; u < k; u++ {
			for v := u + 1; v < k; v++ {
				edges = append(edges, graph.Edge{U: int32(base + u), V: int32(base + v)})
			}
		}
	}
	clique(0)
	clique(k + pathLen)
	prev := int32(k - 1)
	for i := 0; i < pathLen; i++ {
		edges = append(edges, graph.Edge{U: prev, V: int32(k + i)})
		prev = int32(k + i)
	}
	edges = append(edges, graph.Edge{U: prev, V: int32(k + pathLen)})
	return graph.New(n, edges)
}

// Hypercube returns the d-dimensional hypercube graph Q_d on 2^d vertices.
func Hypercube(d int) (*graph.Graph, error) {
	if d < 0 || d > 24 {
		return nil, fmt.Errorf("gen: hypercube dimension %d out of [0,24]", d)
	}
	n := 1 << uint(d)
	var edges []graph.Edge
	for v := 0; v < n; v++ {
		for b := 0; b < d; b++ {
			u := v ^ (1 << uint(b))
			if v < u {
				edges = append(edges, graph.Edge{U: int32(v), V: int32(u)})
			}
		}
	}
	return graph.New(n, edges)
}

// DisjointUnion returns the disjoint union of the given graphs, with vertex
// ids shifted in argument order.
func DisjointUnion(gs ...*graph.Graph) (*graph.Graph, error) {
	total := 0
	var edges []graph.Edge
	for _, g := range gs {
		base := int32(total)
		g.ForEachEdge(func(u, v int32) {
			edges = append(edges, graph.Edge{U: base + u, V: base + v})
		})
		total += g.N()
	}
	return graph.New(total, edges)
}

// SortedDegrees returns the degree sequence in descending order; a test and
// reporting convenience.
func SortedDegrees(g *graph.Graph) []int {
	ds := make([]int, g.N())
	for v := range ds {
		ds[v] = g.Degree(v)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ds)))
	return ds
}

// RMAT returns a Graph500-style R-MAT (recursive matrix) random graph on
// 2^scale vertices with edgeFactor·2^scale edge samples, using the standard
// (a, b, c, d) = (0.57, 0.19, 0.19, 0.05) quadrant probabilities. R-MAT
// graphs are the de-facto benchmark workload of massively parallel graph
// processing: heavy-tailed, with community-like recursive structure.
// Self-loops are dropped and parallel samples merged, so the resulting
// simple graph usually has somewhat fewer than edgeFactor·2^scale edges.
func RMAT(scale, edgeFactor int, rng *rand.Rand) (*graph.Graph, error) {
	if scale < 0 || scale > 24 {
		return nil, fmt.Errorf("gen: rmat scale %d out of [0,24]", scale)
	}
	if edgeFactor < 0 {
		return nil, fmt.Errorf("gen: rmat edge factor %d < 0", edgeFactor)
	}
	const (
		a = 0.57
		b = 0.19
		c = 0.19
	)
	n := 1 << uint(scale)
	samples := edgeFactor * n
	edges := make([]graph.Edge, 0, samples)
	for s := 0; s < samples; s++ {
		u, v := 0, 0
		for bit := scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: no bits set
			case r < a+b:
				v |= 1 << uint(bit)
			case r < a+b+c:
				u |= 1 << uint(bit)
			default:
				u |= 1 << uint(bit)
				v |= 1 << uint(bit)
			}
		}
		if u != v {
			edges = append(edges, graph.Edge{U: int32(u), V: int32(v)})
		}
	}
	return graph.New(n, edges)
}
