package experiments

import (
	"fmt"
	"time"

	"github.com/rulingset/mprs/internal/metrics"
	"github.com/rulingset/mprs/internal/rulingset"
)

// The A-series experiments are ablations of the deterministic algorithms'
// design choices (DESIGN.md §3a): what the seed search buys over pairwise
// independence alone, how the pessimistic estimator's cap and cost weight
// shape the phases, and what the power-of-two AND-family costs against
// exact thresholds.

// A1SeedPolicy compares seed-selection policies for DetRuling2. Predicted
// shape: conditional expectations lands on the good side of the expectation
// in every phase with certainty; random family draws are good on average but
// carry no per-phase guarantee; the all-zero seed makes zero progress
// (everything survives to the residual instance).
func A1SeedPolicy(cfg Config) (Report, error) {
	n := 2048
	if cfg.Quick {
		n = 512
	}
	g := mustGNP(n, 12, cfg.Seed)
	table := metrics.NewTable("A1: seed policy (DetRuling2, z=4)",
		"policy", "seed", "marked total", "cand edges", "residual m", "phases on good side", "members")
	type policyCase struct {
		name   string
		policy rulingset.SeedPolicy
		seed   int64
	}
	cases := []policyCase{
		{name: "cond-exp", policy: rulingset.SeedConditionalExpectations, seed: 0},
		{name: "random-family", policy: rulingset.SeedRandomFamily, seed: 1},
		{name: "random-family", policy: rulingset.SeedRandomFamily, seed: 2},
		{name: "random-family", policy: rulingset.SeedRandomFamily, seed: 3},
		{name: "zero", policy: rulingset.SeedZero, seed: 0},
	}
	ceAllGood := false
	zeroMarked := -1
	for _, pc := range cases {
		res, err := rulingset.DetRuling2(g, rulingset.Options{
			SeedPolicy: pc.policy,
			Seed:       pc.seed,
			ChunkBits:  4,
		})
		if err != nil {
			return Report{}, err
		}
		if err := rulingset.Check(g, res); err != nil {
			return Report{}, fmt.Errorf("%s: %w", pc.name, err)
		}
		marked, cand, good := 0, 0, 0
		for _, ps := range res.Phases {
			marked += ps.Marked
			cand += ps.CandidateEdges
			if ps.EstimatorFinal <= ps.EstimatorInitial+1e-6 {
				good++
			}
		}
		table.AddRow(pc.name, pc.seed, marked, cand, res.ResidualM,
			fmt.Sprintf("%d/%d", good, len(res.Phases)), len(res.Members))
		if pc.policy == rulingset.SeedConditionalExpectations {
			ceAllGood = good == len(res.Phases)
		}
		if pc.policy == rulingset.SeedZero {
			zeroMarked = marked
		}
	}
	return Report{
		ID:     "A1",
		Title:  "ablation: what the seed search buys",
		Tables: []*metrics.Table{table},
		Notes: []string{
			fmt.Sprintf("shape: conditional expectations on the good side in every phase: %v", ceAllGood),
			fmt.Sprintf("shape: the all-zero seed marks nothing (marked=%d), pushing the whole graph to the residual: %v", zeroMarked, zeroMarked == 0),
		},
	}, nil
}

// A2BenefitCap varies the Bonferroni neighborhood cap of the sparsification
// estimator. The cap controls the estimator's *guaranteed* progress: each
// neighbor added to N'(v) (up to ⌊1/p⌋) raises the deactivation lower bound
// by p − p²·|N'| > 0, so the phase-1 potential E[Φ] = α·E[cost] − E[benefit]
// decreases monotonically in the cap, bottoming out at the analysis-dictated
// ⌊1/p⌋. (Realized survivor counts are similar across caps on benign random
// workloads — concentration helps even a blinded estimator — which is
// exactly why the guarantee, not the average case, is the quantity to
// ablate.)
func A2BenefitCap(cfg Config) (Report, error) {
	n := 2048
	if cfg.Quick {
		n = 512
	}
	g := mustGNP(n, 16, cfg.Seed)
	table := metrics.NewTable("A2: estimator neighborhood cap (DetRuling2, z=4)",
		"cap", "phase-1 E[Φ] (lower is stronger)", "survivors after phases", "residual m", "members")
	var initials []float64
	caps := []int{1, 2, 8, 0} // 0 = the full ⌊1/p⌋
	for _, benefitCap := range caps {
		res, err := rulingset.DetRuling2(g, rulingset.Options{BenefitCap: benefitCap, ChunkBits: 4})
		if err != nil {
			return Report{}, err
		}
		if err := rulingset.Check(g, res); err != nil {
			return Report{}, fmt.Errorf("cap=%d: %w", benefitCap, err)
		}
		last := res.Phases[len(res.Phases)-1]
		label := fmt.Sprint(benefitCap)
		if benefitCap == 0 {
			label = "1/p (paper)"
		}
		table.AddRow(label, res.Phases[0].EstimatorInitial, last.ActiveAfter, res.ResidualM, len(res.Members))
		initials = append(initials, res.Phases[0].EstimatorInitial)
	}
	monotone := true
	for i := 1; i < len(initials); i++ {
		if initials[i] > initials[i-1]+1e-9 {
			monotone = false
		}
	}
	return Report{
		ID:     "A2",
		Title:  "ablation: estimator neighborhood cap",
		Tables: []*metrics.Table{table},
		Notes: []string{fmt.Sprintf(
			"shape: guaranteed phase-1 potential strengthens monotonically with the cap: %v", monotone)},
	}, nil
}

// A3AlphaWeight varies the cost weight α of Φ = α·cost − benefit. Predicted
// shape: larger α suppresses candidate-internal edges (the seed avoids
// marked-adjacent pairs harder) at the price of weaker deactivation; very
// small α buys kills but lets the candidate graph grow.
func A3AlphaWeight(cfg Config) (Report, error) {
	n := 2048
	if cfg.Quick {
		n = 512
	}
	g := mustGNP(n, 16, cfg.Seed)
	table := metrics.NewTable("A3: estimator cost weight α (DetRuling2, z=4)",
		"alpha", "cand edges total", "survivors after phases", "residual m", "members")
	var candAt []int
	alphas := []float64{0.5, 1, 2, 4, 8}
	for _, alpha := range alphas {
		res, err := rulingset.DetRuling2(g, rulingset.Options{EstimatorAlpha: alpha, ChunkBits: 4})
		if err != nil {
			return Report{}, err
		}
		if err := rulingset.Check(g, res); err != nil {
			return Report{}, fmt.Errorf("alpha=%v: %w", alpha, err)
		}
		cand := 0
		for _, ps := range res.Phases {
			cand += ps.CandidateEdges
		}
		last := res.Phases[len(res.Phases)-1]
		table.AddRow(alpha, cand, last.ActiveAfter, res.ResidualM, len(res.Members))
		candAt = append(candAt, cand)
	}
	return Report{
		ID:     "A3",
		Title:  "ablation: estimator cost weight",
		Tables: []*metrics.Table{table},
		Notes: []string{fmt.Sprintf(
			"shape: heaviest cost weight yields no more candidate edges than the lightest: %v",
			candAt[len(candAt)-1] <= candAt[0])},
	}, nil
}

// A4LubyThresholds compares the AND-family (power-of-two probabilities,
// O(1) conditional terms) against the uniform-value family with exact
// 1/(2d) thresholds (O(ℓ) digit-DP terms). Predicted shape: both are
// Θ(log n)-iteration deterministic MIS algorithms with comparable progress;
// the exact variant pays wall-clock for marking fidelity.
func A4LubyThresholds(cfg Config) (Report, error) {
	n := 1024
	if cfg.Quick {
		n = 384
	}
	g := mustGNP(n, 12, cfg.Seed)
	table := metrics.NewTable("A4: DetLubyMIS marking family (z=4)",
		"family", "iterations", "rounds", "wall ms", "members")
	var iters []int
	for _, exact := range []bool{false, true} {
		name := "AND (2^-j, paper)"
		if exact {
			name = "values (exact 1/2d)"
		}
		start := time.Now()
		res, err := rulingset.DetLubyMIS(g, rulingset.Options{LubyExactThresholds: exact, ChunkBits: 4})
		if err != nil {
			return Report{}, err
		}
		wall := float64(time.Since(start).Microseconds()) / 1000
		if err := rulingset.Check(g, res); err != nil {
			return Report{}, fmt.Errorf("%s: %w", name, err)
		}
		table.AddRow(name, len(res.Phases), res.Stats.Rounds, wall, len(res.Members))
		iters = append(iters, len(res.Phases))
	}
	ratio := float64(iters[0]) / float64(iters[1])
	return Report{
		ID:     "A4",
		Title:  "ablation: marking family for deterministic Luby",
		Tables: []*metrics.Table{table},
		Notes: []string{fmt.Sprintf(
			"shape: iteration counts within 2x of each other (%d vs %d): %v",
			iters[0], iters[1], ratio <= 2 && ratio >= 0.5)},
	}, nil
}
