package rulingset

import (
	"bytes"
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"github.com/rulingset/mprs/internal/gen"
	"github.com/rulingset/mprs/internal/graph"
	"github.com/rulingset/mprs/internal/mpc"
	"github.com/rulingset/mprs/internal/trace"
)

// equivAlgorithms is the full algorithm surface for the serial-vs-parallel
// equivalence matrix: every MPC driver (including the recursive β/(α,β)
// levels and the adaptive escalation, which chain fresh clusters) plus both
// congested-clique ports, each adapted to one common signature.
func equivAlgorithms() []algo {
	algos := allAlgorithms()
	algos = append(algos,
		algo{name: "RandRulingAlphaBeta", beta: 3, run: func(g *graph.Graph, o Options) (Result, error) {
			return RandRulingAlphaBeta(g, 2, 3, o)
		}},
		algo{name: "DetRulingAlphaBeta", beta: 3, run: func(g *graph.Graph, o Options) (Result, error) {
			return DetRulingAlphaBeta(g, 2, 3, o)
		}},
		algo{name: "DetRulingAdaptive", beta: 2, run: DetRulingAdaptive},
		algo{name: "CliqueRandRuling2", beta: 2, run: cliqueAsResult(CliqueRandRuling2)},
		algo{name: "CliqueDetRuling2", beta: 2, run: cliqueAsResult(CliqueDetRuling2)},
	)
	return algos
}

// cliqueAsResult adapts a clique driver to the MPC result shape, mapping the
// clique Stats fields (a subset of the MPC ones, plus the shared per-span
// aggregates) onto mpc.Stats so the matrix compares them with one code path.
func cliqueAsResult(run func(*graph.Graph, Options) (CliqueResult, error)) func(*graph.Graph, Options) (Result, error) {
	return func(g *graph.Graph, o Options) (Result, error) {
		res, err := run(g, o)
		if err != nil {
			return Result{}, err
		}
		return Result{Members: res.Members, Beta: res.Beta, Phases: res.Phases,
			ResidualN: res.ResidualN, ResidualM: res.ResidualM,
			Stats: mpc.Stats{
				Rounds: res.Stats.Rounds, Messages: res.Stats.Messages, Words: res.Stats.Words,
				PeakRecv: res.Stats.PeakRecv, Spans: res.Stats.Spans,
				SkewSent: res.Stats.SkewSent, SkewRecv: res.Stats.SkewRecv,
				GiniSent: res.Stats.GiniSent, GiniRecv: res.Stats.GiniRecv,
				RecoveredCrashes: res.Stats.RecoveredCrashes, RecoveryRounds: res.Stats.RecoveryRounds,
				ReplayedWords: res.Stats.ReplayedWords, DroppedMessages: res.Stats.DroppedMessages,
				DupMessages: res.Stats.DupMessages, StallRounds: res.Stats.StallRounds,
			}}, nil
	}
}

// equivRun executes one configuration and returns everything the bit-identity
// contract covers: members, canonical stats, trace bytes.
func equivRun(t *testing.T, a algo, g *graph.Graph, o Options) (Result, []byte) {
	t.Helper()
	var buf bytes.Buffer
	tr := trace.NewJSONL(&buf)
	o.Tracer = tr
	res, err := a.run(g, o)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// TestSerialParallelEquivalence is the tentpole acceptance matrix: for every
// algorithm on both simulators, with and without an active fault plan, runs
// at parallelism 2, 4 and GOMAXPROCS return bit-identical members, Stats,
// phase logs and JSONL trace bytes to the serial reference run (parallelism
// 1). Any scheduling dependence in the worker-pool commit path shows up here
// as a diff (and as a flake across repetitions).
func TestSerialParallelEquivalence(t *testing.T) {
	g := gen.MustBuild("gnp:n=300,p=0.02", 17)
	levels := []int{2, 4}
	if p := runtime.GOMAXPROCS(0); p > 1 && p != 2 && p != 4 {
		levels = append(levels, p)
	}
	for _, a := range equivAlgorithms() {
		for _, faulty := range []bool{false, true} {
			a, faulty := a, faulty
			name := a.name
			if faulty {
				name += "/faults"
			}
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				opts := Options{Seed: 5}
				if faulty {
					opts.Faults = faultTestPlan()
				}
				serialOpts := opts
				serialOpts.Parallelism = 1
				wantRes, wantTrace := equivRun(t, a, g, serialOpts)
				if len(wantTrace) == 0 {
					t.Fatal("serial run produced an empty trace")
				}
				for _, p := range levels {
					parOpts := opts
					parOpts.Parallelism = p
					gotRes, gotTrace := equivRun(t, a, g, parOpts)
					if !reflect.DeepEqual(gotRes.Members, wantRes.Members) {
						t.Errorf("parallelism %d: members diverge from serial run", p)
					}
					if !reflect.DeepEqual(gotRes.Stats, wantRes.Stats) {
						t.Errorf("parallelism %d: stats diverge from serial run:\n got %+v\nwant %+v", p, gotRes.Stats, wantRes.Stats)
					}
					if !reflect.DeepEqual(gotRes.Phases, wantRes.Phases) {
						t.Errorf("parallelism %d: phase log diverges from serial run", p)
					}
					if !bytes.Equal(gotTrace, wantTrace) {
						t.Errorf("parallelism %d: trace bytes diverge from serial run", p)
					}
				}
			})
		}
	}
}

// TestParallelCheckpointAndResumeEquivalence extends the matrix to the
// durable layer: the checkpoint states a parallel run persists are
// word-identical to the serial run's, and a run resumed from a serial
// checkpoint at high parallelism (and vice versa) reproduces the serial
// end-to-end result — checkpoints are portable across parallelism levels,
// which is why Parallelism is in no fingerprint.
func TestParallelCheckpointAndResumeEquivalence(t *testing.T) {
	g := gen.MustBuild("gnp:n=200,p=0.03", 23)
	for _, a := range singleClusterAlgos() {
		a := a
		t.Run(a.name, func(t *testing.T) {
			t.Parallel()
			base := Options{Seed: 5, Faults: faultTestPlan(), CheckpointEvery: 2}

			serialSink := &memSink{}
			serialOpts := base
			serialOpts.Parallelism = 1
			serialOpts.CheckpointSink = serialSink
			want, err := a.run(g, serialOpts)
			if err != nil {
				t.Fatal(err)
			}

			parSink := &memSink{}
			parOpts := base
			parOpts.Parallelism = 4
			parOpts.CheckpointSink = parSink
			got, err := a.run(g, parOpts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Members, want.Members) || !reflect.DeepEqual(got.Stats, want.Stats) {
				t.Fatal("parallel run diverges from serial before the durable comparison")
			}
			if !reflect.DeepEqual(parSink.rounds, serialSink.rounds) {
				t.Fatalf("checkpoint rounds diverge: %v vs %v", parSink.rounds, serialSink.rounds)
			}
			if !reflect.DeepEqual(parSink.states, serialSink.states) {
				t.Fatal("persisted checkpoint states diverge between serial and parallel runs")
			}

			// Cross-parallelism resume: serial checkpoint, parallel replay —
			// and the transpose.
			for _, dir := range []struct {
				name string
				from *memSink
				par  int
			}{
				{"serial-checkpoint/parallel-resume", serialSink, 4},
				{"parallel-checkpoint/serial-resume", parSink, 1},
			} {
				round := dir.from.rounds[len(dir.from.rounds)-1]
				resumeOpts := base
				resumeOpts.Parallelism = dir.par
				resumeOpts.Resume = &mpc.ResumeState{Round: round, State: dir.from.states[round]}
				resumed, err := a.run(g, resumeOpts)
				if err != nil {
					t.Fatalf("%s: %v", dir.name, err)
				}
				if !reflect.DeepEqual(resumed.Members, want.Members) {
					t.Errorf("%s: members diverge", dir.name)
				}
				if !reflect.DeepEqual(normalizedStats(resumed.Stats), normalizedStats(want.Stats)) {
					t.Errorf("%s: stats diverge:\n got %+v\nwant %+v", dir.name, resumed.Stats, want.Stats)
				}
			}
		})
	}
}

// FuzzParallelDeterminism drives the equivalence contract through randomized
// configurations: arbitrary G(n,p) graphs, optional fault plans and both
// simulators, comparing members, canonical stats and trace bytes of runs at
// parallelism 2 and GOMAXPROCS against the serial reference.
func FuzzParallelDeterminism(f *testing.F) {
	f.Add(int64(1), uint8(60), uint8(8), uint8(0), false)
	f.Add(int64(17), uint8(120), uint8(20), uint8(3), true)
	f.Add(int64(42), uint8(200), uint8(40), uint8(8), true)
	f.Add(int64(7), uint8(2), uint8(1), uint8(9), false)
	f.Fuzz(func(t *testing.T, seed int64, nRaw, pRaw, algoRaw uint8, faulty bool) {
		n := 4 + int(nRaw)
		p := float64(1+int(pRaw)%32) / float64(n)
		algos := equivAlgorithms()
		a := algos[int(algoRaw)%len(algos)]
		spec, err := gen.ParseSpec(fmt.Sprintf("gnp:n=%d,p=%g", n, p))
		if err != nil {
			t.Skip(err)
		}
		g, err := spec.Build(seed)
		if err != nil {
			t.Skip(err)
		}
		opts := Options{Seed: seed}
		if faulty {
			opts.Faults = &mpc.FaultPlan{
				Seed:      seed + 1,
				DropRate:  0.05,
				DupRate:   0.03,
				StallRate: 0.02,
				Crashes:   []mpc.FaultEvent{{Round: 1, Machine: 0}},
			}
		}
		serialOpts := opts
		serialOpts.Parallelism = 1
		wantRes, wantTrace := equivRun(t, a, g, serialOpts)
		levels := []int{2, runtime.GOMAXPROCS(0)}
		for _, par := range levels {
			if par < 2 {
				continue
			}
			parOpts := opts
			parOpts.Parallelism = par
			gotRes, gotTrace := equivRun(t, a, g, parOpts)
			if !reflect.DeepEqual(gotRes.Members, wantRes.Members) {
				t.Fatalf("%s parallelism %d: members diverge from serial", a.name, par)
			}
			if !reflect.DeepEqual(gotRes.Stats, wantRes.Stats) {
				t.Fatalf("%s parallelism %d: stats diverge from serial", a.name, par)
			}
			if !bytes.Equal(gotTrace, wantTrace) {
				t.Fatalf("%s parallelism %d: trace bytes diverge from serial", a.name, par)
			}
		}
	})
}
