package lint

import (
	"go/ast"
	"go/types"
)

// maporder flags `for … range` over map-typed values. Go randomizes map
// iteration order per run, so any map range whose body's effects depend on
// order — appending to a message buffer, emitting trace lines, accumulating
// floats — injects nondeterminism straight into the quantities the golden
// traces pin down. The one allowed shape is the canonical fix itself:
// a loop that only collects the keys into a slice which is sorted later in
// the same function.
var maporderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration whose order can leak into messages, traces or results",
	Run:  runMaporder,
}

func runMaporder(p *Pass) {
	for _, f := range p.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if p.sortedKeyCollection(rs, enclosingFuncBody(stack)) {
				return true
			}
			p.Reportf(rs.Pos(), "range over %s: map iteration order is nondeterministic; collect and sort the keys first, or annotate with //detlint:ok maporder -- <reason>",
				types.TypeString(t, func(other *types.Package) string {
					if other == p.Pkg {
						return ""
					}
					return other.Name()
				}))
			return true
		})
	}
}

// enclosingFuncBody returns the body of the innermost function declaration
// or literal on the node stack (excluding the node itself), or nil at
// package level.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 2; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// sortedKeyCollection reports whether rs is the allowed map-range shape:
//
//	for k := range m {
//		keys = append(keys, k)
//	}
//	… sort.XXX(keys) / slices.Sort(keys) later in the same function …
//
// i.e. the body is a single append of the key into a slice, and that slice
// is passed to a sort or slices call after the loop.
func (p *Pass) sortedKeyCollection(rs *ast.RangeStmt, encl *ast.BlockStmt) bool {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" || rs.Value != nil || encl == nil {
		return false
	}
	keyObj := p.objectOf(key)
	if keyObj == nil {
		return false
	}
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	sliceObj := p.objectOf(lhs)
	if sliceObj == nil {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := p.Info.Uses[fun].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	if arg0, ok := call.Args[0].(*ast.Ident); !ok || p.objectOf(arg0) != sliceObj {
		return false
	}
	keyAppended := false
	for _, arg := range call.Args[1:] {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok && p.objectOf(id) == keyObj {
			keyAppended = true
		}
	}
	if !keyAppended {
		return false
	}
	// The collected slice must reach a sort after the loop.
	sorted := false
	ast.Inspect(encl, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := p.Info.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		if path := pn.Imported().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			mentioned := false
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && p.objectOf(id) == sliceObj {
					mentioned = true
				}
				return !mentioned
			})
			if mentioned {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

// objectOf resolves an identifier whether it is a definition (`:=`, range
// key declarations) or a use.
func (p *Pass) objectOf(id *ast.Ident) types.Object {
	if obj := p.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Info.Uses[id]
}
