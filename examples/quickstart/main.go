// Quickstart: generate a random graph, compute a deterministic 2-ruling set
// on the simulated MPC cluster, inspect the model measurements, and verify
// the output.
package main

import (
	"fmt"
	"log"

	mprs "github.com/rulingset/mprs"
)

func main() {
	// A sparse Erdős–Rényi graph with ~16 expected neighbors per vertex.
	g, err := mprs.BuildGraph("gnp:n=4096,p=0.004", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input: %v\n", g)

	// The paper's deterministic 2-ruling set on 8 simulated machines with
	// near-linear memory (the default regime).
	res, err := mprs.DetRulingSet2(g, mprs.Options{Machines: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2-ruling set: %d members\n", len(res.Members))
	fmt.Printf("MPC cost: %d rounds, %d message words, peak machine memory %d words\n",
		res.Stats.Rounds, res.Stats.Words, res.Stats.PeakResident)
	fmt.Printf("sparsification phases: %d (Θ(log log Δ) for Δ=%d)\n",
		len(res.Phases), g.MaxDegree())

	// Every result is checkable: independence plus the advertised radius.
	if err := mprs.Check(g, res); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified: independent and every vertex within 2 hops of the set")

	// Compare against the classical baseline: Luby's MIS needs Θ(log n)
	// iterations where the ruling set needed Θ(log log Δ) phases.
	mis, err := mprs.MIS(g, mprs.Options{Machines: 8, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline LubyMIS: %d members, %d rounds (%d iterations)\n",
		len(mis.Members), mis.Stats.Rounds, len(mis.Phases))
}
