package mpc

import (
	"reflect"
	"sort"
	"testing"

	"github.com/rulingset/mprs/internal/trace"
)

// newTracedCluster builds a small cluster with a ring sink attached.
func newTracedCluster(t *testing.T, cfg Config, n int) (*Cluster, *trace.Ring) {
	t.Helper()
	ring := trace.NewRing(1024)
	cfg.Tracer = ring
	c, err := NewCluster(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	return c, ring
}

func TestTraceEventsMatchStats(t *testing.T) {
	c, ring := newTracedCluster(t, Config{Machines: 4}, 64)
	c.Span("sparsify")
	for r := 0; r < 3; r++ {
		if err := c.Step("work", func(x *Ctx) {
			// Machine m sends m words to machine 0: skewed on purpose.
			payload := make([]uint64, x.Machine)
			x.SendOwned(0, payload)
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	evs := ring.Events()
	if len(evs) != st.Rounds {
		t.Fatalf("%d events for %d rounds", len(evs), st.Rounds)
	}
	var words, msgs int
	for i, ev := range evs {
		if ev.Round != i+1 {
			t.Errorf("event %d has round %d", i, ev.Round)
		}
		if ev.Step != "work" || ev.Span != "sparsify" {
			t.Errorf("event %d labeled (%q, %q)", i, ev.Step, ev.Span)
		}
		if len(ev.Sent) != 4 || len(ev.Recv) != 4 || len(ev.Resident) != 4 {
			t.Fatalf("event %d per-machine slices sized %d/%d/%d", i, len(ev.Sent), len(ev.Recv), len(ev.Resident))
		}
		wantRecv0 := 0
		for m, sent := range ev.Sent {
			if sent != m {
				t.Errorf("event %d: machine %d sent %d, want %d", i, m, sent, m)
			}
			wantRecv0 += sent
		}
		if ev.Recv[0] != wantRecv0 {
			t.Errorf("event %d: machine 0 recv %d, want %d", i, ev.Recv[0], wantRecv0)
		}
		if ev.MaxSent != 3 || ev.MaxRecv != wantRecv0 {
			t.Errorf("event %d: maxima %d/%d", i, ev.MaxSent, ev.MaxRecv)
		}
		// All receive lands on machine 0 of 4: Gini = (n-1)/n = 0.75.
		if ev.GiniRecv != 0.75 {
			t.Errorf("event %d: GiniRecv %v, want 0.75", i, ev.GiniRecv)
		}
		words += ev.Words
		msgs += ev.Messages
	}
	if int64(words) != st.Words || int64(msgs) != st.Messages {
		t.Fatalf("event totals %d words / %d messages, stats %d / %d", words, msgs, st.Words, st.Messages)
	}
	if st.GiniRecv != 0.75 || st.SkewRecv != 4 {
		t.Fatalf("stats skew: GiniRecv %v (want 0.75), SkewRecv %v (want 4)", st.GiniRecv, st.SkewRecv)
	}
	if len(st.Spans) != 1 || st.Spans[0].Span != "sparsify" || st.Spans[0].Rounds != 3 {
		t.Fatalf("spans %+v", st.Spans)
	}
	if st.Spans[0].Words != st.Words || st.Spans[0].MaxRecv != st.PeakRecv {
		t.Fatalf("span aggregate %+v does not match stats", st.Spans[0])
	}
}

func TestTraceChargedRounds(t *testing.T) {
	c, ring := newTracedCluster(t, Config{Machines: 2}, 8)
	c.Span("gather")
	if err := c.ChargeRounds("exp", 3); err != nil {
		t.Fatal(err)
	}
	evs := ring.Events()
	if len(evs) != 3 {
		t.Fatalf("%d events, want 3", len(evs))
	}
	for i, ev := range evs {
		if !ev.Charged || ev.Step != "exp" || ev.Span != "gather" || ev.Round != i+1 {
			t.Fatalf("charged event %d = %+v", i, ev)
		}
		if ev.Sent != nil || ev.Words != 0 {
			t.Fatalf("charged event %d carries traffic: %+v", i, ev)
		}
	}
	st := c.Stats()
	if len(st.Spans) != 1 || st.Spans[0].Rounds != 3 || st.Spans[0].Words != 0 {
		t.Fatalf("spans %+v", st.Spans)
	}
	// The round log carries the span annotation too.
	for _, info := range st.Log {
		if info.Span != "gather" {
			t.Fatalf("log entry span %q", info.Span)
		}
	}
}

func TestTraceSpanTransitions(t *testing.T) {
	c, ring := newTracedCluster(t, Config{Machines: 2}, 8)
	step := func() {
		if err := c.Step("s", func(x *Ctx) { x.Send(0, 1) }); err != nil {
			t.Fatal(err)
		}
	}
	step() // default span
	c.Span("sparsify")
	step()
	step()
	c.Span("seed-search")
	step()
	c.Span("sparsify") // revisit: merges into the existing aggregate
	step()
	st := c.Stats()
	want := []struct {
		span   string
		rounds int
	}{{"setup", 1}, {"sparsify", 3}, {"seed-search", 1}}
	if len(st.Spans) != len(want) {
		t.Fatalf("spans %+v", st.Spans)
	}
	for i, w := range want {
		if st.Spans[i].Span != w.span || st.Spans[i].Rounds != w.rounds {
			t.Fatalf("span %d = %+v, want %+v", i, st.Spans[i], w)
		}
	}
	if got := ring.Events()[0].Span; got != "setup" {
		t.Fatalf("first event span %q", got)
	}
}

func TestTraceRecoveryDeltas(t *testing.T) {
	plan := &FaultPlan{Crashes: []FaultEvent{{Round: 2, Machine: 1}}}
	c, ring := newTracedCluster(t, Config{Machines: 2, Faults: plan}, 8)
	for r := 0; r < 3; r++ {
		if err := c.Step("s", func(x *Ctx) { x.Send(0, uint64(x.Machine)) }); err != nil {
			t.Fatal(err)
		}
	}
	evs := ring.Events()
	if len(evs) != 3 {
		t.Fatalf("%d events", len(evs))
	}
	if evs[0].Crashes != 0 || evs[2].Crashes != 0 {
		t.Fatalf("crash charged to the wrong superstep: %+v", evs)
	}
	if evs[1].Crashes != 1 {
		t.Fatalf("round-2 event records %d crashes, want 1", evs[1].Crashes)
	}
	if evs[1].RecoveryRounds == 0 || evs[1].ReplayedWords == 0 {
		t.Fatalf("round-2 event misses recovery cost: %+v", evs[1])
	}
	st := c.Stats()
	if st.RecoveredCrashes != 1 {
		t.Fatalf("stats crashes %d", st.RecoveredCrashes)
	}
	// Delivered traffic identical to fault-free: events record it per round
	// (both machines send one word to machine 0, self-send included).
	for _, ev := range evs {
		if ev.Words != 2 || ev.Messages != 2 {
			t.Fatalf("delivery perturbed by recovery: %+v", ev)
		}
	}
}

// TestStepNoAllocWithoutTracer pins the zero-cost-when-disabled contract:
// with no tracer registered, the superstep commit path performs no
// per-event allocations (the only allocations are the delivery slices and
// the round-log append, which pre-date the observability layer).
func TestStepNoAllocWithoutTracer(t *testing.T) {
	c, err := NewCluster(Config{Machines: 4}, 64)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]uint64, 8)
	// Warm up the log/violation slices so append doesn't grow mid-measure.
	for i := 0; i < 64; i++ {
		if err := c.Step("warm", func(x *Ctx) { x.SendOwned((x.Machine+1)%4, payload) }); err != nil {
			t.Fatal(err)
		}
	}
	withoutTracer := testing.AllocsPerRun(32, func() {
		if err := c.Step("bench", func(x *Ctx) { x.SendOwned((x.Machine+1)%4, payload) }); err != nil {
			t.Fatal(err)
		}
	})
	ring := trace.NewRing(8)
	c.SetTracer(ring)
	withTracer := testing.AllocsPerRun(32, func() {
		if err := c.Step("bench", func(x *Ctx) { x.SendOwned((x.Machine+1)%4, payload) }); err != nil {
			t.Fatal(err)
		}
	})
	// The skew/span accounting itself must be allocation-free: enabling the
	// tracer may only add the event's own slices (3 allocations + the event
	// copy into the ring).
	if delta := withTracer - withoutTracer; delta > 4 {
		t.Fatalf("tracer adds %.1f allocations per step (disabled %.1f, enabled %.1f)",
			delta, withoutTracer, withTracer)
	}
}

// TestMergeStatsCoversEveryField walks Stats by reflection and fails when a
// field has no merge rule — the guard that keeps MergeStats in sync as
// fields are added. Each rule states how a merged field must relate to the
// two inputs, and the test checks it on concrete values.
func TestMergeStatsCoversEveryField(t *testing.T) {
	a := Stats{
		Rounds: 2, Messages: 10, Words: 100,
		PeakSent: 7, PeakRecv: 9, PeakResident: 30,
		Violations: []Violation{{Round: 1, Kind: "send"}},
		Log:        []RoundInfo{{Name: "a1"}, {Name: "a2"}},
		Spans: []SpanStat{{
			Span: "setup", Rounds: 2, Messages: 4, Words: 100,
			MaxSent: 7, MaxRecv: 3, GiniSent: 0.25, GiniRecv: 0.5,
		}},
		SkewSent: 1.5, SkewRecv: 2.5, GiniSent: 0.25, GiniRecv: 0.5,
		RecoveredCrashes: 1, RecoveryRounds: 2, ReplayedWords: 3,
		CheckpointWords: 4, DroppedMessages: 5, DupMessages: 6, StallRounds: 7,
		CheckpointBytes: 8, ResumeReplayRounds: 9,
	}
	b := Stats{
		Rounds: 3, Messages: 20, Words: 50,
		PeakSent: 5, PeakRecv: 11, PeakResident: 20,
		Violations: []Violation{{Round: 2, Kind: "recv"}},
		Log:        []RoundInfo{{Name: "b1"}, {Name: "b2"}, {Name: "b3"}},
		Spans: []SpanStat{
			{
				Span: "setup", Rounds: 1, Messages: 6, Words: 20,
				MaxSent: 9, MaxRecv: 8, GiniSent: 0.125, GiniRecv: 0.375,
			},
			{Span: "finish", Rounds: 2, Words: 30},
		},
		SkewSent: 1.25, SkewRecv: 3.5, GiniSent: 0.75, GiniRecv: 0.25,
		RecoveredCrashes: 10, RecoveryRounds: 20, ReplayedWords: 30,
		CheckpointWords: 40, DroppedMessages: 50, DupMessages: 60, StallRounds: 70,
		CheckpointBytes: 80, ResumeReplayRounds: 90,
	}
	m := MergeStats(a, b)

	// One check per Stats field. Adding a field to Stats without a merge
	// rule (and a check here) fails the reflection sweep below.
	checks := map[string]func() bool{
		"Rounds":       func() bool { return m.Rounds == 5 },
		"Messages":     func() bool { return m.Messages == 30 },
		"Words":        func() bool { return m.Words == 150 },
		"PeakSent":     func() bool { return m.PeakSent == 7 },
		"PeakRecv":     func() bool { return m.PeakRecv == 11 },
		"PeakResident": func() bool { return m.PeakResident == 30 },
		"Violations": func() bool {
			// b's violation rounds are offset by a.Rounds so the merged
			// stats read as one continuous run (the PR-1 audit fix).
			return len(m.Violations) == 2 && m.Violations[0].Round == 1 && m.Violations[1].Round == 4
		},
		"Log": func() bool { return len(m.Log) == 5 && m.Log[2].Name == "b1" },
		"Spans": func() bool {
			return len(m.Spans) == 2 &&
				m.Spans[1].Span == "finish" && m.Spans[1].Rounds == 2
		},
		"SkewSent":           func() bool { return m.SkewSent == 1.5 },
		"SkewRecv":           func() bool { return m.SkewRecv == 3.5 },
		"GiniSent":           func() bool { return m.GiniSent == 0.75 },
		"GiniRecv":           func() bool { return m.GiniRecv == 0.5 },
		"RecoveredCrashes":   func() bool { return m.RecoveredCrashes == 11 },
		"RecoveryRounds":     func() bool { return m.RecoveryRounds == 22 },
		"ReplayedWords":      func() bool { return m.ReplayedWords == 33 },
		"CheckpointWords":    func() bool { return m.CheckpointWords == 44 },
		"DroppedMessages":    func() bool { return m.DroppedMessages == 55 },
		"DupMessages":        func() bool { return m.DupMessages == 66 },
		"StallRounds":        func() bool { return m.StallRounds == 77 },
		"CheckpointBytes":    func() bool { return m.CheckpointBytes == 88 },
		"ResumeReplayRounds": func() bool { return m.ResumeReplayRounds == 99 },
	}
	// The matched "setup" span exercises every SpanStat field: counters add,
	// max-valued fields (MaxSent/MaxRecv and the worst-imbalance Gini
	// coefficients) take the maximum — never the sum. Its own reflection
	// sweep below makes a SpanStat field without a rule here a failure, the
	// same guard Stats has.
	setup := m.Spans[0]
	spanChecks := map[string]func() bool{
		"Span":     func() bool { return setup.Span == "setup" },
		"Rounds":   func() bool { return setup.Rounds == 3 },
		"Messages": func() bool { return setup.Messages == 10 },
		"Words":    func() bool { return setup.Words == 120 },
		"MaxSent":  func() bool { return setup.MaxSent == 9 },
		"MaxRecv":  func() bool { return setup.MaxRecv == 8 },
		"GiniSent": func() bool { return setup.GiniSent == 0.25 },
		"GiniRecv": func() bool { return setup.GiniRecv == 0.5 },
	}
	sweep := func(typ reflect.Type, rules map[string]func() bool) {
		t.Helper()
		for i := 0; i < typ.NumField(); i++ {
			name := typ.Field(i).Name
			check, ok := rules[name]
			if !ok {
				t.Errorf("%s.%s has no merge rule: extend MergeStats/mergeSpans and this test", typ.Name(), name)
				continue
			}
			if !check() {
				t.Errorf("%s.%s merged wrong (merged value in %+v)", typ.Name(), name, m)
			}
			delete(rules, name)
		}
		leftover := make([]string, 0, len(rules))
		for name := range rules {
			leftover = append(leftover, name)
		}
		sort.Strings(leftover)
		for _, name := range leftover {
			t.Errorf("check %q matches no %s field (renamed?)", name, typ.Name())
		}
	}
	sweep(reflect.TypeOf(Stats{}), checks)
	sweep(reflect.TypeOf(SpanStat{}), spanChecks)
}

// TestMergeStatsEqualsSingleRun merges per-segment stats of a run split
// across two clusters and compares against the same work on one cluster.
func TestMergeStatsEqualsSingleRun(t *testing.T) {
	work := func(c *Cluster, from, to int) {
		for r := from; r < to; r++ {
			if err := c.Step("w", func(x *Ctx) {
				payload := make([]uint64, r+1)
				x.SendOwned((x.Machine+1)%2, payload)
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	single, err := NewCluster(Config{Machines: 2}, 8)
	if err != nil {
		t.Fatal(err)
	}
	single.Span("sparsify")
	work(single, 0, 4)
	want := single.Stats()

	c1, err := NewCluster(Config{Machines: 2}, 8)
	if err != nil {
		t.Fatal(err)
	}
	c1.Span("sparsify")
	work(c1, 0, 2)
	c2, err := NewCluster(Config{Machines: 2}, 8)
	if err != nil {
		t.Fatal(err)
	}
	c2.Span("sparsify")
	work(c2, 2, 4)
	got := MergeStats(c1.Stats(), c2.Stats())

	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged stats diverge from single run:\n got %+v\nwant %+v", got, want)
	}
}
