package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/rulingset/mprs/internal/chaos"
	"github.com/rulingset/mprs/internal/clique"
	"github.com/rulingset/mprs/internal/durable"
	"github.com/rulingset/mprs/internal/graph"
	"github.com/rulingset/mprs/internal/metrics"
	"github.com/rulingset/mprs/internal/mpc"
	"github.com/rulingset/mprs/internal/rulingset"
	"github.com/rulingset/mprs/internal/supervise"
	"github.com/rulingset/mprs/internal/telemetry"
)

// cmdWorker is the hidden `mprs worker` subcommand: the supervisor re-executes
// this binary with the WorkerEnv in the MPRS_SUPERVISE_WORKER environment
// variable, and the worker talks frames over stdin/stdout. Never invoked by
// hand.
func cmdWorker(args []string) error {
	if len(args) != 0 {
		return fmt.Errorf("worker: unexpected arguments %q", args)
	}
	blob := os.Getenv(supervise.EnvSpec)
	if blob == "" {
		return fmt.Errorf("worker: %s not set (this subcommand is spawned by `mprs run -backend multiproc`)", supervise.EnvSpec)
	}
	var env supervise.WorkerEnv
	if err := json.Unmarshal([]byte(blob), &env); err != nil {
		return fmt.Errorf("worker: decode %s: %w", supervise.EnvSpec, err)
	}
	return supervise.WorkerMain(env, os.Stdin, os.Stdout)
}

// multiProcFlags carries the -backend multiproc knobs out of cmdRun.
type multiProcFlags struct {
	workers     int
	heartbeat   time.Duration
	maxRestarts int
	jobTimeout  time.Duration
	killWorker  string
	lifecycle   string
	debugAddr   string
	flightDir   string

	chaos            *chaos.Plan
	flapLimit        int
	maxFleetRestarts int
	degradedFallback bool
}

// runMultiProc is the `mprs run -backend multiproc` path: build the
// self-contained JobSpec, supervise the worker fleet, and report the result
// exactly as the in-process path does.
func runMultiProc(spec supervise.JobSpec, mp multiProcFlags, rep runReport) error {
	kills, err := parseKillSchedule(mp.killWorker)
	if err != nil {
		return err
	}
	cfg := supervise.Config{
		Workers:          mp.workers,
		Heartbeat:        mp.heartbeat,
		MaxRestarts:      mp.maxRestarts,
		Timeout:          mp.jobTimeout,
		KillAt:           kills,
		FlightDir:        mp.flightDir,
		Chaos:            mp.chaos,
		FlapLimit:        mp.flapLimit,
		MaxFleetRestarts: mp.maxFleetRestarts,
		DegradedFallback: mp.degradedFallback,
		Spawn:            supervise.SelfExec("worker"),
	}
	if mp.lifecycle != "" {
		f, err := os.Create(mp.lifecycle)
		if err != nil {
			return err
		}
		defer f.Close()
		cfg.Lifecycle = f
	}
	if mp.debugAddr != "" {
		// The supervisor serves the fleet: every worker's telemetry snapshot
		// (heartbeat-delivered, labeled worker="<id>") merged with the
		// supervisor's own lifecycle gauges.
		fleet := telemetry.NewFleet()
		cfg.Telemetry = fleet
		ln, err := startDebugServer(mp.debugAddr, nil, fleet)
		if err != nil {
			return err
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "debug server on http://%s/metrics (fleet view; also /telemetry.json, /debug/pprof/)\n", ln.Addr())
	}
	start := time.Now()
	res, err := supervise.Run(spec, cfg)
	if err != nil {
		var derr *supervise.DegradedError
		if errors.As(err, &derr) {
			// A degraded run still produced a correct, bit-identical Result:
			// report it in full (tables, -members-out, -stats-out — the chaos
			// oracle byte-diffs those artifacts), then fail the exit anyway —
			// the multi-process contract was not honored.
			fmt.Fprintf(os.Stderr, "supervisor degraded: worker %d gave out after %d restart(s) (quarantined=%t); resumed in-process from checkpoint round %d\n",
				derr.Worker, derr.Attempts, derr.Quarantined, derr.ResumedFrom)
			rep.res = res
			rep.wall = time.Since(start)
			if rerr := reportResult(rep); rerr != nil {
				return errors.Join(err, rerr)
			}
			return err
		}
		var serr *supervise.SupervisorError
		if errors.As(err, &serr) {
			fmt.Fprintf(os.Stderr, "supervisor abort: %d committed rounds, worker %d after %d restart(s)\n",
				serr.CommittedRound, serr.Worker, serr.Attempts)
		}
		return err
	}
	rep.res = res
	rep.wall = time.Since(start)
	return reportResult(rep)
}

// parseKillSchedule parses -kill-worker "w@r[,w@r...]" into KillAt entries.
func parseKillSchedule(s string) ([]supervise.KillAt, error) {
	if s == "" {
		return nil, nil
	}
	var kills []supervise.KillAt
	for _, part := range strings.Split(s, ",") {
		w, r, ok := strings.Cut(strings.TrimSpace(part), "@")
		if !ok {
			return nil, fmt.Errorf("-kill-worker: %q is not worker@round", part)
		}
		wi, err := strconv.Atoi(w)
		if err != nil {
			return nil, fmt.Errorf("-kill-worker: worker %q: %w", w, err)
		}
		ri, err := strconv.Atoi(r)
		if err != nil {
			return nil, fmt.Errorf("-kill-worker: round %q: %w", r, err)
		}
		if wi < 0 || ri < 1 {
			return nil, fmt.Errorf("-kill-worker: %q: worker must be >= 0 and round >= 1", part)
		}
		kills = append(kills, supervise.KillAt{Worker: wi, Round: ri})
	}
	return kills, nil
}

// runReport is everything the shared result-reporting block needs; both
// backends funnel through it so their stdout, artifacts and exit behavior
// cannot drift apart.
type runReport struct {
	algo  string
	title string
	g     *graph.Graph

	res  rulingset.Result
	wall time.Duration

	phases, rounds, spans, verify bool
	membersOut, statsOut          string

	faults *mpc.FaultPlan

	// store and resumedFrom drive the durable-checkpoints table; nil/0 when
	// the run had no durable store in this process (always for multiproc —
	// the workers own their stores).
	store       *durable.Store
	resumedFrom int
}

// reportResult prints the measurement tables, writes the byte-diffable
// artifacts (-members-out, -stats-out), verifies, and turns budget
// violations into a failing exit — the common tail of both backends.
func reportResult(r runReport) error {
	res := r.res
	tb := metrics.NewTable(r.title,
		"members", "beta", "rounds", "messages", "words", "peak sent", "peak recv", "peak resident",
		"skew sent", "gini sent", "violations", "wall")
	tb.AddRow(len(res.Members), res.Beta, res.Stats.Rounds, res.Stats.Messages, res.Stats.Words,
		res.Stats.PeakSent, res.Stats.PeakRecv, res.Stats.PeakResident,
		res.Stats.SkewSent, res.Stats.GiniSent, len(res.Stats.Violations), r.wall.String())
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}

	if r.phases && len(res.Phases) > 0 {
		pt := metrics.NewTable("phase trace", "phase", "j", "active before", "active after",
			"highdeg", "marked", "cand edges", "seed steps", "E[Φ] init", "Φ final")
		for _, ps := range res.Phases {
			pt.AddRow(ps.Phase, ps.J, ps.ActiveBefore, ps.ActiveAfter, ps.HighDegBefore,
				ps.Marked, ps.CandidateEdges, ps.SeedSteps, ps.EstimatorInitial, ps.EstimatorFinal)
		}
		fmt.Println()
		if err := pt.Render(os.Stdout); err != nil {
			return err
		}
	}
	if r.rounds && len(res.Stats.Log) > 0 {
		rt := metrics.NewTable("round log", "round", "step", "span", "messages", "words", "max sent", "max recv", "gini sent")
		for i, info := range res.Stats.Log {
			rt.AddRow(i+1, info.Name, info.Span, info.Messages, info.Words, info.MaxSent, info.MaxRecv, info.GiniSent)
		}
		fmt.Println()
		if err := rt.Render(os.Stdout); err != nil {
			return err
		}
	}
	if r.spans && len(res.Stats.Spans) > 0 {
		if err := renderSpans(res.Stats.Spans); err != nil {
			return err
		}
	}
	if err := writeMembers(r.membersOut, res.Members); err != nil {
		return err
	}
	if err := writeStatsOut(r.statsOut, res.Stats); err != nil {
		return err
	}
	if r.verify {
		if err := rulingset.Check(r.g, res); err != nil {
			return fmt.Errorf("verification failed: %w", err)
		}
		fmt.Printf("verified: independent, radius <= %d\n", res.Beta)
	}
	if r.store != nil {
		dt := metrics.NewTable("durable checkpoints",
			"dir", "checkpoint bytes", "resumed from", "replayed rounds")
		dt.AddRow(r.store.Dir(), res.Stats.CheckpointBytes, r.resumedFrom, res.Stats.ResumeReplayRounds)
		fmt.Println()
		if err := dt.Render(os.Stdout); err != nil {
			return err
		}
	}
	if r.faults.Enabled() {
		ft := metrics.NewTable(fmt.Sprintf("recovery under %s", r.faults),
			"recovered crashes", "recovery rounds", "replayed words", "checkpoint words", "dropped", "duplicated", "stall rounds")
		ft.AddRow(res.Stats.RecoveredCrashes, res.Stats.RecoveryRounds, res.Stats.ReplayedWords,
			res.Stats.CheckpointWords, res.Stats.DroppedMessages, res.Stats.DupMessages, res.Stats.StallRounds)
		fmt.Println()
		if err := ft.Render(os.Stdout); err != nil {
			return err
		}
	}
	if n := len(res.Stats.Violations); n > 0 {
		for _, v := range res.Stats.Violations {
			fmt.Fprintf(os.Stderr, "budget violation: %s\n", v)
		}
		return fmt.Errorf("%d budget violation(s); first: %s", n, res.Stats.Violations[0])
	}
	return nil
}

// writeStatsOut writes the canonical (run-independent) Stats as indented
// JSON — the byte-diffable artifact the CI multiproc-smoke job compares
// across backends. An empty path is a no-op so call sites stay unconditional.
func writeStatsOut(path string, st mpc.Stats) error {
	if path == "" {
		return nil
	}
	b, err := json.MarshalIndent(supervise.CanonicalStats(st), "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("stats-out: %w", err)
	}
	return nil
}

// writeCliqueStatsOut is the clique-simulator counterpart of writeStatsOut.
// clique.Stats carries no host-dependent fields, so the struct is already
// canonical and marshals byte-diffably as is.
func writeCliqueStatsOut(path string, st clique.Stats) error {
	if path == "" {
		return nil
	}
	b, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("stats-out: %w", err)
	}
	return nil
}
