package rulingset

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"github.com/rulingset/mprs/internal/bitset"
	"github.com/rulingset/mprs/internal/derand"
	"github.com/rulingset/mprs/internal/hash"
	"github.com/rulingset/mprs/internal/mpc"
)

// schedule returns the sampling-exponent schedule for maximum degree delta:
// j₁ ≈ log₂Δ − 1 (probability ≈ 2/Δ), halving until 1. The probability
// therefore squares-up each phase, p_{i+1} ≈ √p_i — the geometric escalation
// that makes the number of phases Θ(log log Δ).
func schedule(delta int) []int {
	j := bits.Len(uint(delta)) - 1
	if j < 1 {
		j = 1
	}
	var js []int
	for {
		js = append(js, j)
		if j == 1 {
			return js
		}
		j = (j + 1) / 2
	}
}

// sparsifyState carries the sample-and-sparsify loop's evolving sets so that
// β-ruling levels can run partial schedules against shared state.
type sparsifyState struct {
	active     *bitset.Set
	candidates *bitset.Set
	phases     []PhaseStat
}

func newSparsifyState(n int) *sparsifyState {
	s := &sparsifyState{
		active:     bitset.New(n),
		candidates: bitset.New(n),
	}
	s.active.Fill()
	return s
}

// runPhases executes the sampling phases for the given exponents js on d,
// updating st. Deterministic phases derandomize the sampling with the method
// of conditional expectations; randomized phases draw marks from rng with
// the same power-of-two probabilities, so the two variants are directly
// comparable.
//
// Phase contract (verified by tests): after each phase, every vertex that
// left the active set is either in the candidate set or adjacent to it.
func runPhases(d *mpc.DistGraph, o Options, st *sparsifyState, js []int, deterministic bool, rng *rand.Rand) error {
	g := d.Graph()
	c := d.Cluster()
	n := g.N()
	c.Span("sparsify")
	for _, j := range js {
		if st.active.Count() == 0 {
			return nil
		}
		if len(st.phases) >= o.MaxPhases {
			return fmt.Errorf("rulingset: phase cap %d exceeded", o.MaxPhases)
		}
		view, _, err := d.ExchangeActive("sparsify/view", st.active, nil)
		if err != nil {
			return err
		}
		ps := PhaseStat{
			Phase:        len(st.phases) + 1,
			J:            j,
			ActiveBefore: st.active.Count(),
		}
		capSize := 1 << uint(j)
		st.active.ForEach(func(v int) bool {
			nb := view[v]
			if len(nb) >= capSize {
				ps.HighDegBefore++
			}
			for _, u := range nb {
				if int(u) > v {
					ps.ActiveEdges++
				}
			}
			return true
		})

		marks := bitset.New(n)
		if deterministic {
			if err := detMarks(c, o, st.active, view, j, marks, &ps, rng); err != nil {
				return err
			}
		} else {
			p := math.Ldexp(1, -j)
			st.active.ForEach(func(v int) bool {
				if rng.Float64() < p {
					marks.Add(v)
				}
				return true
			})
		}

		ps.Marked = marks.Count()
		marks.ForEach(func(v int) bool {
			for _, u := range view[v] {
				if int(u) > v && marks.Contains(int(u)) {
					ps.CandidateEdges++
				}
			}
			return true
		})

		st.candidates.Union(marks)
		touched, err := d.NotifyNeighbors("sparsify/dominate", marks, st.active)
		if err != nil {
			return err
		}
		st.active.Subtract(marks)
		st.active.Subtract(touched)

		// Termination check: machines report local active counts (the
		// coordinator's loop condition is driven by real communication).
		counts, err := c.AllReduceSumUint("sparsify/active", func(x *mpc.Ctx) []uint64 {
			var local uint64
			for v := x.Lo; v < x.Hi; v++ {
				if st.active.Contains(v) {
					local++
				}
			}
			return []uint64{local}
		})
		if err != nil {
			return err
		}
		ps.ActiveAfter = int(counts[0])
		st.phases = append(st.phases, ps)
	}
	return nil
}

// absorbActive moves all still-active vertices into the candidate set (the
// loop's closing step: afterwards every vertex is in the candidate set or
// adjacent to it).
func (st *sparsifyState) absorbActive() {
	st.candidates.Union(st.active)
	st.active.Clear()
}

// detMarks runs one derandomized sampling phase: it builds the
// pairwise-independent AND-family for probability 2^-j, selects its seed by
// the distributed method of conditional expectations against the
// sparsification potential
//
//	Φ(seed) = α·Σ_{active edges (u,w)} P[mark u ∧ mark w]
//	        − Σ_{active v, deg_A(v) ≥ 2^j} ( Σ_{u ∈ N'(v)} P[mark u]
//	                                        − Σ_{u<w ∈ N'(v)} P[mark u ∧ mark w] )
//
// (N'(v) = the first 2^j active neighbors of v; the inner Bonferroni
// difference lower-bounds P[some N'(v) vertex marked], i.e. v's
// deactivation), and fills marks with the realized marks. Minimizing Φ
// guarantees the fixed seed adds few candidate-internal edges while
// deactivating at least the expected share of high-degree vertices.
//
// The ablation knobs (Options.SeedPolicy, EstimatorAlpha, BenefitCap) vary
// the construction; their defaults are the paper's choices.
func detMarks(c *mpc.Cluster, o Options, active *bitset.Set, view [][]int32, j int, marks *bitset.Set, ps *PhaseStat, rng *rand.Rand) error {
	alpha := o.EstimatorAlpha
	n := active.Len()
	fam, err := hash.NewBits(n, j)
	if err != nil {
		return err
	}
	seed := fam.NewSeed()
	ms := newMarkState(fam, n)
	// highDeg is the qualification threshold ⌊1/p⌋ for the benefit term;
	// capSize truncates the Bonferroni neighborhood N'(v) (equal to highDeg
	// in the paper's construction; smaller only under the A2 ablation).
	highDeg := 1 << uint(j)
	capSize := highDeg
	if o.BenefitCap > 0 && o.BenefitCap < capSize {
		capSize = o.BenefitCap
	}

	evalRange := func(lo, hi int, s *hash.Seed) float64 {
		ec := ms.ctx(s)
		var cost, benefit float64
		for v := lo; v < hi; v++ {
			if !active.Contains(v) {
				continue
			}
			nb := view[v]
			vAlive := int(ms.firstZero[v]) >= minInt(ms.fixedSegs, j)
			if vAlive {
				for _, u := range nb {
					if int(u) > v {
						cost += ec.pairProb(v, int(u), j, j)
					}
				}
			}
			if len(nb) < highDeg {
				continue
			}
			nn := nb[:capSize]
			for i, u := range nn {
				pu := ec.markProb(int(u), j)
				if pu == 0 {
					continue
				}
				benefit += pu
				for _, w := range nn[i+1:] {
					benefit -= ec.pairProb(int(u), int(w), j, j)
				}
			}
		}
		return alpha*cost - benefit
	}

	switch o.SeedPolicy {
	case SeedConditionalExpectations:
		trace, err := derand.SelectSeed(c, seed, derand.Config{
			ChunkBits: o.ChunkBits,
			Objective: derand.Minimize,
			AlignTo:   fam.SegWidth(),
			OnChunk:   func(s *hash.Seed, _, _ int) { ms.sync(s) },
		}, func(x *mpc.Ctx, s *hash.Seed) float64 { return evalRange(x.Lo, x.Hi, s) })
		if err != nil {
			return err
		}
		ps.SeedSteps = trace.Steps
		ps.EstimatorInitial = trace.Initial
		ps.EstimatorFinal = trace.Final()
	case SeedRandomFamily, SeedZero:
		// Ablations: record the unconditioned expectation, then fix the seed
		// without searching. A real deployment still spends one broadcast
		// distributing the seed.
		ps.EstimatorInitial = evalRange(0, n, seed)
		if o.SeedPolicy == SeedRandomFamily {
			seed.Randomize(rng)
		} else {
			seed.SetFixed(seed.Total())
		}
		seedWords := make([]uint64, (seed.Total()+63)/64)
		for i := 0; i < seed.Total(); i++ {
			seedWords[i/64] |= seed.Bit(i) << uint(i%64)
		}
		if _, err := c.Broadcast("sparsify/seed", seedWords); err != nil {
			return err
		}
		ms.sync(seed)
		ps.EstimatorFinal = evalRange(0, n, seed)
	default:
		return fmt.Errorf("rulingset: unknown seed policy %v", o.SeedPolicy)
	}

	ms.sync(seed)
	active.ForEach(func(v int) bool {
		if ms.marked(v, j) {
			marks.Add(v)
		}
		return true
	})
	return nil
}
