package mpc

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

// echoStep has every machine send its id to machine 0.
func echoStep(x *Ctx) {
	x.Send(0, uint64(x.Machine))
}

func inboxWords(msgs []Message) []uint64 {
	var out []uint64
	for _, m := range msgs {
		out = append(out, m.Payload...)
	}
	return out
}

func TestPanicBecomesMachineError(t *testing.T) {
	c, err := NewCluster(Config{Machines: 4}, 16)
	if err != nil {
		t.Fatal(err)
	}
	err = c.Step("boom", func(x *Ctx) {
		if x.Machine == 2 {
			panic("injected bug")
		}
		x.Send(0, uint64(x.Machine))
	})
	var me *MachineError
	if !errors.As(err, &me) {
		t.Fatalf("err = %v, want *MachineError", err)
	}
	if me.Machine != 2 || me.Round != 1 || me.Panic != "injected bug" {
		t.Fatalf("MachineError = %+v", me)
	}
	if !strings.Contains(me.Error(), "machine 2 panicked in round 1") {
		t.Fatalf("Error() = %q", me.Error())
	}
	if len(me.Stack) == 0 {
		t.Fatal("no stack captured")
	}
	// The failed superstep delivers nothing and the cluster survives: the
	// next step runs normally with empty inboxes.
	err = c.Step("after", func(x *Ctx) {
		if len(x.Inbox()) != 0 {
			t.Errorf("machine %d inbox = %v after failed step", x.Machine, x.Inbox())
		}
		echoStep(x)
	})
	if err != nil {
		t.Fatalf("step after panic: %v", err)
	}
	if got := inboxWords(c.inboxes[0]); len(got) != 4 {
		t.Fatalf("delivery after recovery = %v", got)
	}
}

func TestCrashRecoveryIdenticalDelivery(t *testing.T) {
	run := func(plan *FaultPlan) ([]uint64, Stats) {
		c, err := NewCluster(Config{Machines: 4, Faults: plan}, 16)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 3; r++ {
			if err := c.Step("echo", echoStep); err != nil {
				t.Fatal(err)
			}
		}
		return inboxWords(c.inboxes[0]), c.Stats()
	}

	base, baseStats := run(nil)
	plan := &FaultPlan{Seed: 7, Crashes: []FaultEvent{{Round: 1, Machine: 0}, {Round: 2, Machine: 3}}}
	faulty, st := run(plan)

	if len(base) != 4 {
		t.Fatalf("baseline delivery = %v", base)
	}
	for i := range base {
		if base[i] != faulty[i] {
			t.Fatalf("delivery differs under crashes: %v vs %v", base, faulty)
		}
	}
	if st.RecoveredCrashes != 2 || st.RecoveryRounds < 2 {
		t.Fatalf("recovery stats = %+v", st)
	}
	if st.ReplayedWords == 0 {
		t.Fatal("discarded superstep traffic not charged to ReplayedWords")
	}
	// Core accounting is bit-identical to the fault-free run.
	if st.Rounds != baseStats.Rounds || st.Words != baseStats.Words || st.Messages != baseStats.Messages {
		t.Fatalf("core stats diverged: faulty %+v vs base %+v", st, baseStats)
	}
}

func TestDropAndDupRecovered(t *testing.T) {
	plan := &FaultPlan{Seed: 1, DropRate: 1, DupRate: 1}
	c, err := NewCluster(Config{Machines: 3, Faults: plan}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Step("echo", echoStep); err != nil {
		t.Fatal(err)
	}
	if got := inboxWords(c.inboxes[0]); len(got) != 3 {
		t.Fatalf("reliable transport delivered %v", got)
	}
	st := c.Stats()
	if st.DroppedMessages != 3 || st.DupMessages != 3 {
		t.Fatalf("transport stats = %+v", st)
	}
	if st.RecoveryRounds != 1 {
		t.Fatalf("RecoveryRounds = %d, want 1 (one retransmission round)", st.RecoveryRounds)
	}
	if st.ReplayedWords != 3 {
		t.Fatalf("ReplayedWords = %d", st.ReplayedWords)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	plan := &FaultPlan{Seed: 3, Crashes: []FaultEvent{{Round: 4, Machine: 1}}}
	c, err := NewCluster(Config{Machines: 2, Faults: plan, CheckpointEvery: 2}, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Driver state: one counter per machine, bumped after each step (the
	// repo's driver discipline: mutate only after Step returns).
	state := []uint64{100, 200}
	var restores int
	err = c.SetCheckpointer(FuncCheckpointer{
		SnapshotFn: func(m int) []uint64 { return []uint64{state[m]} },
		RestoreFn: func(m int, data []uint64) {
			restores++
			if len(data) != 1 {
				t.Errorf("restore payload = %v", data)
			}
			state[m] = data[0]
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= 5; r++ {
		if err := c.Step("tick", echoStep); err != nil {
			t.Fatal(err)
		}
		for m := range state {
			state[m]++
		}
	}
	if state[0] != 105 || state[1] != 205 {
		t.Fatalf("state corrupted by recovery: %v", state)
	}
	st := c.Stats()
	if restores != 1 || st.RecoveredCrashes != 1 {
		t.Fatalf("restores = %d, stats = %+v", restores, st)
	}
	// Checkpoints at rounds 1, 3 and 5 write 2 machines × 1 word each.
	if st.CheckpointWords != 6 {
		t.Fatalf("CheckpointWords = %d", st.CheckpointWords)
	}
	// Crash at round 4, last checkpoint before round 3 → replay distance ≥ 1
	// plus restored state charged.
	if st.RecoveryRounds < 1 || st.ReplayedWords == 0 {
		t.Fatalf("recovery accounting = %+v", st)
	}
}

func TestLateSendErrors(t *testing.T) {
	c, err := NewCluster(Config{Machines: 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	var leaked *Ctx
	if err := c.Step("leak", func(x *Ctx) {
		if x.Machine == 1 {
			leaked = x
		}
	}); err != nil {
		t.Fatal(err)
	}
	leaked.Send(0, 42) // stale: dropped, recorded
	err = c.Step("next", func(x *Ctx) {
		if x.Machine == 0 && len(x.Inbox()) != 0 {
			t.Errorf("stale send leaked into inbox: %v", x.Inbox())
		}
	})
	if !errors.Is(err, ErrStaleCtx) {
		t.Fatalf("late send err = %v, want ErrStaleCtx", err)
	}
	// The error is one-shot: subsequent steps are clean.
	if err := c.Step("clean", func(x *Ctx) {}); err != nil {
		t.Fatalf("step after stale-send report: %v", err)
	}
}

func TestStrictAbortDeliversNothing(t *testing.T) {
	c, err := NewCluster(Config{Machines: 2, Regime: RegimeExplicit, MemoryWords: 2, Strict: true}, 8)
	if err != nil {
		t.Fatal(err)
	}
	err = c.Step("burst", func(x *Ctx) {
		if x.Machine == 0 {
			x.Send(1, 1, 2, 3)
		}
	})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("strict violation err = %v, want ErrBudget", err)
	}
	if got := c.inboxes[1]; len(got) != 0 {
		t.Fatalf("aborted step delivered %v", got)
	}
}

func TestFaultPlanDeterminism(t *testing.T) {
	p := &FaultPlan{Seed: 42, CrashRate: 0.3, DropRate: 0.2, DupRate: 0.1, StallRate: 0.25}
	q := &FaultPlan{Seed: 42, CrashRate: 0.3, DropRate: 0.2, DupRate: 0.1, StallRate: 0.25}
	other := &FaultPlan{Seed: 43, CrashRate: 0.3, DropRate: 0.2, DupRate: 0.1, StallRate: 0.25}
	same, diff := 0, 0
	for r := 1; r <= 50; r++ {
		for m := 0; m < 8; m++ {
			if p.CrashesAt(r, m) != q.CrashesAt(r, m) ||
				p.StallsAt(r, m) != q.StallsAt(r, m) ||
				p.DropsMessage(r, m, 0, 0) != q.DropsMessage(r, m, 0, 0) ||
				p.DupsMessage(r, m, 0, 0) != q.DupsMessage(r, m, 0, 0) {
				t.Fatalf("equal plans disagree at round %d machine %d", r, m)
			}
			if p.CrashesAt(r, m) {
				same++
			}
			if p.CrashesAt(r, m) != other.CrashesAt(r, m) {
				diff++
			}
		}
	}
	if same == 0 || same == 400 {
		t.Fatalf("crash rate 0.3 fired %d/400 times", same)
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestParseFaultPlan(t *testing.T) {
	for _, spec := range []string{"", "off", "none"} {
		p, err := ParseFaultPlan(spec, 1)
		if err != nil || p != nil {
			t.Fatalf("ParseFaultPlan(%q) = %v, %v", spec, p, err)
		}
	}
	p, err := ParseFaultPlan("crash=0.02, drop=0.01, dup=0.005, stall=0.05, crash@3:1", 9)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 9 || p.CrashRate != 0.02 || p.DropRate != 0.01 || p.DupRate != 0.005 || p.StallRate != 0.05 {
		t.Fatalf("parsed plan = %+v", p)
	}
	if len(p.Crashes) != 1 || p.Crashes[0] != (FaultEvent{Round: 3, Machine: 1}) {
		t.Fatalf("explicit crashes = %v", p.Crashes)
	}
	if !p.Enabled() || !strings.Contains(p.String(), "crash=0.02") {
		t.Fatalf("plan stringer = %q", p.String())
	}
	for _, bad := range []string{"crash", "crash=2", "crash=x", "crash@3", "crash@x:1", "crash@0:0", "warp=0.1"} {
		if _, err := ParseFaultPlan(bad, 0); err == nil {
			t.Errorf("ParseFaultPlan(%q) accepted", bad)
		}
	}
}

func TestStallAccounting(t *testing.T) {
	plan := &FaultPlan{Seed: 5, StallRate: 1}
	c, err := NewCluster(Config{Machines: 3, Faults: plan}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Step("tick", echoStep); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.StallRounds != 3 {
		t.Fatalf("StallRounds = %d, want 3", st.StallRounds)
	}
}

// TestResidentAccountingRace is the -race regression for the satellite fix:
// resident-memory accounting is reachable from concurrent machine code.
func TestResidentAccountingRace(t *testing.T) {
	c, err := NewCluster(Config{Machines: 8}, 64)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for m := 0; m < 8; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := c.AddResident(m, 1); err != nil {
					t.Error(err)
					return
				}
				_ = c.Resident(m)
			}
		}(m)
	}
	wg.Wait()
	if err := c.SetResident(0, 7); err != nil {
		t.Fatal(err)
	}
	if c.Resident(0) != 7 {
		t.Fatalf("resident = %d", c.Resident(0))
	}
}
