package chaos

import "testing"

// FuzzParse asserts the plan parser never panics and that accepted specs are
// stable: re-parsing the canonical Spec yields the same schedule.
func FuzzParse(f *testing.F) {
	f.Add("wire:corrupt@8:1,disk:torn@4:0,proc:kill@10:2", int64(42))
	f.Add("wire:hbdrop@1:0,wire:hbgarble@2:1", int64(0))
	f.Add("proc:flap@6:1", int64(-1))
	f.Add("disk:manifesttorn@0:3", int64(7))
	f.Add("crash=0.02,drop@4:1>2", int64(1))
	f.Add("wire:@:,::@", int64(3))
	f.Add("off", int64(0))
	f.Fuzz(func(t *testing.T, spec string, seed int64) {
		p, err := Parse(spec, seed)
		if err != nil {
			if p != nil {
				t.Fatal("non-nil plan alongside an error")
			}
			return
		}
		if p == nil {
			return // disabled
		}
		p2, err := Parse(p.Spec, seed)
		if err != nil {
			t.Fatalf("canonical spec %q rejected on re-parse: %v", p.Spec, err)
		}
		if len(p2.Wire) != len(p.Wire) || len(p2.Disk) != len(p.Disk) || len(p2.Proc) != len(p.Proc) {
			t.Fatalf("re-parse of %q changed the schedule: %v vs %v", p.Spec, p2, p)
		}
		// Helpers must be total on any accepted plan.
		_ = p.Enabled()
		_ = p.String()
		_ = p.MaxWorker()
		_ = p.Kills()
		_ = p.ValidateWorkers(4) //detlint:ok errdrop -- fuzz target only asserts the helper is total (no panic); a validation error is a legitimate outcome
	})
}
