package lint

import (
	"go/ast"
	"go/types"
)

// errdrop flags silently ignored error results from functions and methods
// defined in the determinism-critical packages: Ctx.Send variants, the
// budget-charging APIs (ChargeRounds, SetResident, AddResident), Step and
// the collectives. These errors carry budget violations, stale-context
// sends and recovery failures — the accounting the reproduced theorems are
// about. Dropping one silently under-reports the model's central quantities
// (the PR 2 exit-code bug was precisely an ignored violation surface).
//
// Inside a critical package the analyzer additionally covers the os-level
// durability primitives — os.Rename, (*os.File).Close and (*os.File).Sync —
// including when deferred. A dropped error there silently forfeits
// crash-durability: the fsync may never have reached the disk, the rename
// may never have committed, and the checkpoint the recovery path depends on
// quietly does not exist (the torn-write class internal/durable defends
// against).
//
// Both a bare call statement and a blank-identifier discard (`_ = …`,
// `v, _ := …`) are flagged; an intentional discard must carry an annotation
// explaining why it is safe.
var errdropAnalyzer = &Analyzer{
	Name: "errdrop",
	Doc:  "flag dropped error results from deterministic-stack APIs",
	Run:  runErrdrop,
}

var errorType = types.Universe.Lookup("error").Type()

func runErrdrop(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, ok := stmt.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn, idx := p.stackCalleeWithError(call); fn != nil {
					p.Reportf(call.Pos(), "error result %d of %s is silently dropped; handle it or annotate with //detlint:ok errdrop -- <reason>", idx, calleeLabel(fn))
				}
			case *ast.DeferStmt:
				// A deferred durability call drops its error by
				// construction; the critical-package APIs themselves are
				// never sensibly deferred, so only the os-level primitives
				// are checked here.
				if fn := p.callee(stmt.Call); fn != nil && p.durabilityCallee(fn) {
					p.Reportf(stmt.Pos(), "deferred %s discards its error; handle it in a named-error defer or annotate with //detlint:ok errdrop -- <reason>", calleeLabel(fn))
				}
			case *ast.AssignStmt:
				p.checkAssignDrop(stmt)
			}
			return true
		})
	}
}

// checkAssignDrop flags `_ = f()` and `v, _ := f()` when the blanked
// position is an error from a deterministic-stack callee.
func (p *Pass) checkAssignDrop(as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := p.callee(call)
	if fn == nil || !(p.criticalCallee(fn) || p.durabilityCallee(fn)) {
		return
	}
	results := signatureResults(fn)
	if results == nil || results.Len() != len(as.Lhs) {
		return
	}
	for i := 0; i < results.Len(); i++ {
		if !types.Identical(results.At(i).Type(), errorType) {
			continue
		}
		if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			p.Reportf(as.Pos(), "error result %d of %s is discarded with a blank identifier; handle it or annotate with //detlint:ok errdrop -- <reason>", i, calleeLabel(fn))
		}
	}
}

// stackCalleeWithError resolves call's callee; it returns the callee and
// the index of its first error result when the callee is defined in a
// determinism-critical package and returns an error, and (nil, 0) otherwise.
func (p *Pass) stackCalleeWithError(call *ast.CallExpr) (*types.Func, int) {
	fn := p.callee(call)
	if fn == nil || !(p.criticalCallee(fn) || p.durabilityCallee(fn)) {
		return nil, 0
	}
	results := signatureResults(fn)
	if results == nil {
		return nil, 0
	}
	for i := 0; i < results.Len(); i++ {
		if types.Identical(results.At(i).Type(), errorType) {
			return fn, i
		}
	}
	return nil, 0
}

// durabilityCallee reports whether fn is one of the os-level durability
// primitives — os.Rename, (*os.File).Close, (*os.File).Sync — whose error
// must not be dropped in a determinism-critical package: an unchecked
// failure there means data believed durable may not exist after a crash.
// Non-critical packages are vet's business, as for the stack APIs.
func (p *Pass) durabilityCallee(fn *types.Func) bool {
	if !p.Critical {
		return false
	}
	pkg := fn.Pkg()
	if pkg == nil || pkg.Path() != "os" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if sig.Recv() == nil {
		return fn.Name() == "Rename"
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "File" {
		return false
	}
	return fn.Name() == "Close" || fn.Name() == "Sync"
}

// callee resolves the called function or method, or nil for builtins,
// conversions and indirect calls through function values.
func (p *Pass) callee(call *ast.CallExpr) *types.Func {
	return calleeFunc(p.Info, call)
}

// calleeFunc resolves a call's target function or method, unwrapping
// explicit generic instantiation (f[T](…) parses as a call whose Fun is an
// IndexExpr/IndexListExpr) — without the unwrap, every instantiated generic
// call would silently escape analysis.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(ix.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}
	var obj types.Object
	switch fun := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}

func signatureResults(fn *types.Func) *types.Tuple {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	return sig.Results()
}

// calleeLabel renders a short human name: Recv.Method or pkg.Func.
func calleeLabel(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
