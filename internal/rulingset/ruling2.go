package rulingset

import (
	"math/rand"
	"slices"

	"github.com/rulingset/mprs/internal/graph"
	"github.com/rulingset/mprs/internal/mpc"
)

// RandRuling2 computes a 2-ruling set of g with the randomized
// sample-and-sparsify algorithm (geometrically escalating sampling
// probabilities, Θ(log log Δ) phases, residual instance solved greedily on
// one machine). The run is reproducible from o.Seed.
func RandRuling2(g *graph.Graph, o Options) (Result, error) {
	return ruling2(g, o, false)
}

// DetRuling2 computes a 2-ruling set of g with the paper's deterministic
// algorithm: each sampling phase of the sample-and-sparsify loop is replaced
// by a pairwise-independent hash whose seed is fixed by the distributed
// method of conditional expectations. Identical inputs and options always
// produce identical outputs, regardless of machine count.
func DetRuling2(g *graph.Graph, o Options) (Result, error) {
	return ruling2(g, o, true)
}

func ruling2(g *graph.Graph, o Options, deterministic bool) (Result, error) {
	d, o, err := distribute(g, o)
	if err != nil {
		return Result{}, err
	}
	c := d.Cluster()

	delta, err := maxDegree(d)
	if err != nil {
		return Result{}, err
	}
	st := newSparsifyState(g.N())
	if err := registerCheckpoint(c, o, st.active, st.candidates); err != nil {
		return Result{}, err
	}
	// The rng drives randomized sampling, and — for the SeedRandomFamily
	// ablation — random family draws inside deterministic runs.
	rng := rand.New(rand.NewSource(o.Seed))
	if err := runPhases(d, o, st, schedule(int(delta)), deterministic, rng); err != nil {
		return Result{}, err
	}
	st.absorbActive()

	members, residual, err := solveResidual(d, st, o)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Members:   members,
		Beta:      2,
		Stats:     c.Stats(),
		Phases:    st.phases,
		ResidualN: residual.N(),
		ResidualM: residual.M(),
	}, nil
}

// maxDegree computes the graph's maximum degree through the cluster's
// collectives (two rounds).
func maxDegree(d *mpc.DistGraph) (uint64, error) {
	g := d.Graph()
	return d.Cluster().AllReduceMaxUint("maxdeg", func(x *mpc.Ctx) uint64 {
		var local uint64
		for v := x.Lo; v < x.Hi; v++ {
			if dv := uint64(g.Degree(v)); dv > local {
				local = dv
			}
		}
		return local
	})
}

// solveResidual ships the candidate-induced subgraph to one machine,
// computes its MIS greedily there, and broadcasts the membership. The MIS of
// G[C] is independent in G and dominates C within one hop, so together with
// the sparsifier's invariant (every vertex in C or adjacent to it) the
// result is a 2-ruling set.
func solveResidual(d *mpc.DistGraph, st *sparsifyState, o Options) ([]int32, *graph.Graph, error) {
	c := d.Cluster()
	c.Span("gather")
	sub, toOrig, err := d.GatherSubgraph("residual", st.candidates)
	if err != nil {
		return nil, nil, err
	}
	mis := GreedyMIS(sub)
	members := make([]int32, len(mis))
	payload := make([]uint64, len(mis))
	for i, v := range mis {
		members[i] = toOrig[v]
		payload[i] = uint64(uint32(toOrig[v]))
	}
	c.Span("finish")
	if _, err := c.Broadcast("residual/members", payload); err != nil {
		return nil, nil, err
	}
	slices.Sort(members)
	return members, sub, nil
}
