// Package staleok is the audit fixture: one justified suppression that
// still silences a live finding, and one left behind after the code it
// excused was rewritten — the annotated line no longer triggers its
// analyzer, so the audit must flag the suppression as stale.
package staleok

// live: the map range is a genuine maporder violation; the trailing
// annotation suppresses it and the audit lists it as live.
func live(m map[int]int) int {
	s := 0
	for _, v := range m { //detlint:ok maporder -- commutative integer sum, order cannot leak
		s += v
	}
	return s
}

// stale: the loop was rewritten from a map to a slice, but the annotation
// was never removed; maporder no longer fires here.
func stale(xs []int) int {
	s := 0
	for _, v := range xs { //detlint:ok maporder -- commutative integer sum, order cannot leak
		s += v
	}
	return s
}
