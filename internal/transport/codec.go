package transport

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/rulingset/mprs/internal/mpc"
)

// Messages-frame payload layout (all integers uvarint unless noted):
//
//	boxes       — number of destination boxes (the machine count M)
//	per box:
//	  count     — messages in this box from machines the sender owns
//	  per message:
//	    src     — sending machine id
//	    words   — payload length in 64-bit words
//	    words × 8 bytes, little-endian
//
// The encoding is canonical: boxes are already stable-sorted by sender when
// the cluster hands them to the transport, and the owned subsequence
// preserves that order, so two replicas of the same superstep encode to
// identical bytes — which is what lets receivers verify frames by direct
// comparison against their local replay.

// ErrCodec is wrapped by malformed-payload errors.
var ErrCodec = errors.New("transport: malformed messages payload")

// ErrDiverged is wrapped when an authoritative frame disagrees with the
// local replica — the cross-process determinism check failed.
var ErrDiverged = errors.New("transport: replica divergence")

// encodeOwned serializes the messages of boxes whose sender is owned by the
// caller (owns reports ownership of a machine id).
func encodeOwned(boxes [][]mpc.Message, owns func(src int) bool) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(boxes)))
	for _, box := range boxes {
		count := 0
		for _, msg := range box {
			if owns(msg.Src) {
				count++
			}
		}
		buf = binary.AppendUvarint(buf, uint64(count))
		for _, msg := range box {
			if !owns(msg.Src) {
				continue
			}
			buf = binary.AppendUvarint(buf, uint64(msg.Src))
			buf = binary.AppendUvarint(buf, uint64(len(msg.Payload)))
			for _, w := range msg.Payload {
				buf = binary.LittleEndian.AppendUint64(buf, w)
			}
		}
	}
	return buf
}

// payloadReader decodes the canonical layout with bounds checking.
type payloadReader struct {
	buf []byte
	off int
}

func (p *payloadReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(p.buf[p.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated varint at offset %d", ErrCodec, p.off)
	}
	p.off += n
	return v, nil
}

func (p *payloadReader) word() (uint64, error) {
	if p.off+8 > len(p.buf) {
		return 0, fmt.Errorf("%w: truncated word at offset %d", ErrCodec, p.off)
	}
	v := binary.LittleEndian.Uint64(p.buf[p.off:])
	p.off += 8
	return v, nil
}

// verifyOwned checks that payload — the authoritative frame from the worker
// owning the machines selected by owns — is exactly the owned subsequence of
// the local replica boxes. A mismatch wraps ErrDiverged (the replicas
// disagree), a malformed payload wraps ErrCodec.
func verifyOwned(boxes [][]mpc.Message, owns func(src int) bool, payload []byte) error {
	p := &payloadReader{buf: payload}
	nb, err := p.uvarint()
	if err != nil {
		return err
	}
	if int(nb) != len(boxes) {
		return fmt.Errorf("%w: frame has %d boxes, replica has %d", ErrDiverged, nb, len(boxes))
	}
	for dst, box := range boxes {
		count, err := p.uvarint()
		if err != nil {
			return err
		}
		want := 0
		for _, msg := range box {
			if owns(msg.Src) {
				want++
			}
		}
		if int(count) != want {
			return fmt.Errorf("%w: box %d: frame carries %d owned messages, replica has %d", ErrDiverged, dst, count, want)
		}
		for _, msg := range box {
			if !owns(msg.Src) {
				continue
			}
			src, err := p.uvarint()
			if err != nil {
				return err
			}
			words, err := p.uvarint()
			if err != nil {
				return err
			}
			if int(src) != msg.Src || int(words) != len(msg.Payload) {
				return fmt.Errorf("%w: box %d: frame message (src %d, %d words) vs replica (src %d, %d words)", ErrDiverged, dst, src, words, msg.Src, len(msg.Payload))
			}
			for i, local := range msg.Payload {
				w, err := p.word()
				if err != nil {
					return err
				}
				if w != local {
					return fmt.Errorf("%w: box %d src %d word %d: frame %#x vs replica %#x", ErrDiverged, dst, msg.Src, i, w, local)
				}
			}
		}
	}
	if p.off != len(p.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCodec, len(p.buf)-p.off)
	}
	return nil
}
