package gen

import (
	"strings"
	"testing"
)

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec("gnp:n=100,p=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if s.Family != "gnp" || s.Params["n"] != "100" || s.Params["p"] != "0.5" {
		t.Fatalf("parsed %+v", s)
	}
	if s.String() != "gnp:n=100,p=0.5" {
		t.Fatalf("String() = %q", s.String())
	}
	if _, err := ParseSpec(""); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := ParseSpec("gnp:novalue"); err == nil {
		t.Error("malformed parameter accepted")
	}
	bare, err := ParseSpec("path")
	if err != nil || bare.Family != "path" {
		t.Errorf("bare family: %+v, %v", bare, err)
	}
}

func TestSpecBuildAllFamilies(t *testing.T) {
	specs := []string{
		"gnp:n=200,p=0.05",
		"regular:n=100,d=4",
		"powerlaw:n=300,gamma=2.5,avg=5",
		"grid:rows=8,cols=8",
		"geometric:n=500,r=0.06",
		"rmat:scale=8,ef=6",
		"grid:rows=8,cols=8,wrap=true",
		"path:n=50",
		"cycle:n=50",
		"star:n=50",
		"complete:n=20",
		"bipartite:a=5,b=9",
		"tree:n=80",
		"prufer:n=80",
		"caterpillar:spine=10,legs=3",
		"barbell:k=6,path=4",
		"hypercube:d=5",
	}
	for _, spec := range specs {
		t.Run(spec, func(t *testing.T) {
			g := MustBuild(spec, 1)
			if g.N() == 0 {
				t.Fatalf("%s built empty graph", spec)
			}
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSpecBuildErrors(t *testing.T) {
	tests := []string{
		"nosuchfamily:n=10",
		"gnp:n=abc",
		"gnp:p=zzz",
		"grid:wrap=maybe",
	}
	for _, spec := range tests {
		s, err := ParseSpec(spec)
		if err != nil {
			continue // parse-level rejection is fine too
		}
		if _, err := s.Build(1); err == nil {
			t.Errorf("spec %q built successfully, want error", spec)
		}
	}
}

func TestSpecBuildReproducible(t *testing.T) {
	for _, spec := range []string{"gnp:n=200,p=0.05", "tree:n=100", "powerlaw:n=200"} {
		a := MustBuild(spec, 7)
		b := MustBuild(spec, 7)
		if a.M() != b.M() {
			t.Errorf("%s: same seed produced %d and %d edges", spec, a.M(), b.M())
		}
	}
}

func TestSpecStringSorted(t *testing.T) {
	s, err := ParseSpec("gnp:p=0.1,n=10")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(s.String(), "gnp:n=") {
		t.Fatalf("String() not canonically sorted: %q", s.String())
	}
}
