package main

import (
	"fmt"
	"io"

	"github.com/rulingset/mprs/internal/metrics"
	"github.com/rulingset/mprs/internal/telemetry"
	"github.com/rulingset/mprs/internal/trace"
)

// FlightReport is the analysis of one flight-recorder artifact: the crash
// header plus the retained supersteps leading up to it.
type FlightReport struct {
	Header telemetry.FlightHeader `json:"header"`
	Events []trace.Event          `json:"events"`
}

// readFlight loads a flight artifact.
func readFlight(path string) (FlightReport, error) {
	hdr, evs, err := telemetry.ReadFlightFile(path)
	if err != nil {
		return FlightReport{}, err
	}
	return FlightReport{Header: hdr, Events: evs}, nil
}

// renderFlight prints the post-mortem: who died, why, and the last
// supersteps the worker reported before the supervisor lost it.
func renderFlight(w io.Writer, rep FlightReport) error {
	h := rep.Header
	who := fmt.Sprintf("worker %d (attempt %d)", h.Worker, h.Attempt)
	if h.Worker < 0 {
		who = "in-process run"
	}
	fmt.Fprintf(w, "%s: %s of %s at round %d: %s\n", h.Schema, h.Kind, who, h.Round, h.Reason)
	if h.Algo != "" {
		fmt.Fprintf(w, "job: %s on %s\n", h.Algo, h.Spec)
	}
	if len(rep.Events) == 0 {
		fmt.Fprintln(w, "no supersteps retained (the worker died before reporting any)")
		return nil
	}
	fmt.Fprintf(w, "last %d supersteps before the crash:\n\n", len(rep.Events))
	tb := metrics.NewTable("flight recorder",
		"round", "step", "span", "messages", "words", "max sent", "max recv", "gini sent")
	for _, ev := range rep.Events {
		tb.AddRow(ev.Round, ev.Step, ev.Span, ev.Messages, ev.Words, ev.MaxSent, ev.MaxRecv, ev.GiniSent)
	}
	return tb.Render(w)
}
