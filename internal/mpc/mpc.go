// Package mpc simulates the Massively Parallel Computation (MPC) model: M
// machines with S words of local memory each, communicating in synchronous
// rounds in which every machine sends and receives at most S words.
//
// The simulator is the substrate the reproduced paper assumes but that has no
// open-source implementation: it executes machine-local computation on a
// worker pool (sized by Config.Parallelism, default GOMAXPROCS), routes
// messages between rounds, and — crucially for a theory reproduction — meters
// the quantities the theorems bound: rounds, words sent/received per machine
// per round, and peak resident memory per machine, checking them against the
// regime's budget S.
//
// Execution is bit-for-bit deterministic regardless of goroutine scheduling
// and of the parallelism level: each worker buffers the sends of its
// contiguous machine block locally, the buffers are merged in fixed machine
// order at the superstep barrier, and every stat/violation reduction runs
// single-threaded at the barrier in machine order (see DESIGN.md §8,
// "Parallel commit discipline").
package mpc

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/rulingset/mprs/internal/trace"
)

// Regime selects how the per-machine memory budget S is derived from the
// input size.
type Regime int

const (
	// RegimeLinear models near-linear memory: S = Θ(n) words (strongest
	// machines; equivalent in power to the congested clique). This is the
	// regime of the paper's headline deterministic 2-ruling set result.
	RegimeLinear Regime = iota + 1
	// RegimeSublinear models strictly sublinear memory: S = ⌈n^ε⌉ words.
	RegimeSublinear
	// RegimeExplicit uses Config.MemoryWords verbatim.
	RegimeExplicit
)

// String implements fmt.Stringer.
func (r Regime) String() string {
	switch r {
	case RegimeLinear:
		return "linear"
	case RegimeSublinear:
		return "sublinear"
	case RegimeExplicit:
		return "explicit"
	default:
		return fmt.Sprintf("regime(%d)", int(r))
	}
}

// Config describes a simulated cluster.
type Config struct {
	// Machines is the number of machines M (>= 1).
	Machines int
	// Regime selects the memory budget rule; default RegimeLinear.
	Regime Regime
	// Epsilon is the sublinear-memory exponent (0 < ε < 1); only used by
	// RegimeSublinear. Default 0.5.
	Epsilon float64
	// MemoryWords is the explicit budget S for RegimeExplicit.
	MemoryWords int
	// LinearSlack multiplies the linear-regime budget (S = slack·n); default 4,
	// standing in for the Θ̃(n) constants/log factors.
	LinearSlack int
	// Strict makes budget violations errors instead of recorded statistics.
	// A strict violation aborts the offending step cleanly: nothing is
	// delivered and the step's contexts are invalidated.
	Strict bool
	// Faults, when non-nil and enabled, injects the deterministic fault
	// schedule described in fault.go (machine crashes, message drops and
	// duplications, straggler stalls), all recovered at the superstep
	// barrier so outputs stay bit-identical to the fault-free run.
	Faults *FaultPlan
	// CheckpointEvery, together with a registered Checkpointer, snapshots
	// driver state every k supersteps; crash recovery then replays from the
	// last checkpoint and is charged accordingly. 0 disables checkpointing
	// (crashes recover from the barrier-committed state at replay cost 1).
	CheckpointEvery int
	// Tracer, when non-nil, receives one trace.Event per committed superstep
	// (per-machine words sent/received, resident memory, recovery activity).
	// Tracing is deterministic and costs nothing when nil.
	Tracer trace.Tracer
	// Context, when non-nil, is checked at every superstep barrier (Step and
	// ChargeRounds): once it is done, the call returns a *CancelError
	// wrapping ErrCanceled or ErrDeadline with the committed round and full
	// Stats. See RunContext.
	Context context.Context
	// Sink, when non-nil (together with CheckpointEvery > 0 and a registered
	// Checkpointer), persists every in-memory checkpoint durably; written
	// bytes accumulate in Stats.CheckpointBytes. *durable.Store is the
	// canonical implementation.
	Sink CheckpointSink
	// Resume, when non-nil, resumes the run from a durable checkpoint: the
	// run replays deterministically to Resume.Round, verifies the replayed
	// state against the checkpoint word-for-word (ErrResumeDiverged on
	// mismatch), restores through the Checkpointer, and records the replay
	// in Stats.ResumeReplayRounds.
	Resume *ResumeState
	// Transport, when non-nil, carries every committed superstep's sorted
	// per-destination message boxes (see the Transport interface); nil is
	// the in-memory router. A failed exchange aborts the step cleanly with
	// a *TransportError.
	Transport Transport
	// Parallelism bounds the worker pool executing machine step closures
	// within one superstep: 0 (the default) means GOMAXPROCS, 1 forces the
	// serial reference path (every machine runs on the calling goroutine, in
	// machine order). Outputs, Stats, traces and checkpoint bytes are
	// bit-identical at every level — parallelism is a throughput knob, never
	// a semantic one.
	Parallelism int
}

// Violation records a budget breach observed during the simulation.
type Violation struct {
	Round   int
	Machine int
	Kind    string // "send", "recv", "resident"
	Words   int
	Budget  int
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("round %d machine %d: %s %d words > budget %d",
		v.Round, v.Machine, v.Kind, v.Words, v.Budget)
}

// RoundInfo summarizes one communication round.
type RoundInfo struct {
	Name     string
	Span     string // algorithm phase annotation active during the round
	MaxSent  int    // max words sent by any machine this round
	MaxRecv  int    // max words received by any machine this round
	Messages int
	Words    int
	// GiniSent and GiniRecv are the round's communication-imbalance
	// coefficients across machines (0 balanced, →1 one machine carries all).
	GiniSent float64
	GiniRecv float64
}

// SpanStat aggregates the rounds of one named trace span (algorithm phase):
// how many rounds it spent, how much traffic it moved, and how skewed that
// traffic was across machines. The skew quantities are what the
// sparsification theorems shape: concentration phases should show high
// imbalance (gather-like traffic), local phases should stay near-balanced.
type SpanStat struct {
	Span     string
	Rounds   int
	Messages int64
	Words    int64
	// MaxSent and MaxRecv are the largest per-machine per-round word counts
	// observed inside the span.
	MaxSent int
	MaxRecv int
	// GiniSent and GiniRecv are the worst per-round imbalance coefficients
	// observed inside the span.
	GiniSent float64
	GiniRecv float64
}

// Stats aggregates the model-relevant measurements of a simulation.
//
// The fault/recovery fields meter robustness cost separately from the
// algorithm's own complexity: Rounds and Words count only committed
// supersteps and delivered traffic (bit-identical to the fault-free run),
// while recovery overhead accumulates in RecoveryRounds, ReplayedWords and
// CheckpointWords. Total cost under faults is the sum of the two groups.
type Stats struct {
	Rounds       int
	Messages     int64
	Words        int64
	PeakSent     int // max words sent by one machine in one round
	PeakRecv     int
	PeakResident int
	Violations   []Violation
	Log          []RoundInfo

	// Spans aggregates rounds/traffic/skew per named trace span, in order of
	// first appearance (see Cluster.Span).
	Spans []SpanStat
	// SkewSent is the worst per-round send imbalance observed: max over
	// rounds with traffic of MaxSent / (Words/M), i.e. the straggler ratio
	// of the most loaded machine against the mean.
	SkewSent float64
	// SkewRecv is the receive-side counterpart of SkewSent.
	SkewRecv float64
	// GiniSent and GiniRecv are the worst per-round Gini imbalance
	// coefficients observed (see trace.Gini).
	GiniSent float64
	GiniRecv float64

	// RecoveredCrashes counts injected machine crashes recovered at the
	// superstep barrier.
	RecoveredCrashes int
	// RecoveryRounds counts extra rounds spent recovering: restart/replay
	// rounds after crashes plus one retransmission round per superstep with
	// dropped messages.
	RecoveryRounds int
	// ReplayedWords counts words re-sent or restored during recovery:
	// discarded superstep traffic, restored checkpoint state and
	// retransmitted messages.
	ReplayedWords int64
	// CheckpointWords counts words written by periodic state checkpoints.
	CheckpointWords int64
	// DroppedMessages counts transit losses repaired by retransmission.
	DroppedMessages int
	// DupMessages counts transit duplicates removed by receiver dedup.
	DupMessages int
	// StallRounds counts barrier rounds lost to straggler stalls.
	StallRounds int

	// CheckpointBytes counts bytes persisted to durable checkpoint storage
	// (Config.Sink); 0 without a sink. Like wall_ms in bench artifacts it is
	// host/run-dependent rather than part of the bit-identity contract: a
	// resumed run skips re-persisting checkpoints its directory already
	// holds, so its CheckpointBytes is lower than an uninterrupted run's.
	CheckpointBytes int64
	// ResumeReplayRounds counts supersteps deterministically replayed to
	// reach the durable checkpoint a resumed run restored from
	// (Config.Resume); 0 for a run started from scratch. Like
	// CheckpointBytes it is resume overhead, not algorithm cost.
	ResumeReplayRounds int
}

// ErrBudget is wrapped by errors returned in Strict mode when a budget is
// breached.
var ErrBudget = errors.New("mpc: memory/bandwidth budget exceeded")

// Message is a payload of machine words received from Src.
type Message struct {
	Src     int
	Payload []uint64
}

// Cluster is a simulated MPC cluster over a ground set of n items
// (vertices), block-partitioned across machines.
type Cluster struct {
	cfg     Config
	n       int
	budget  int
	stats   Stats
	inboxes [][]Message

	// mu guards resident-memory accounting and the late-send error during a
	// step (both reachable from concurrent machine code). Message sends do
	// not touch it: each worker buffers sends in its own stepOutbox.
	mu       sync.Mutex
	resident []int
	lateErr  error
	// inStep is true while a step attempt is executing; resident-budget
	// violations observed then are buffered per machine in pendingViol and
	// flushed into stats.Violations in machine order at the barrier, so their
	// order is independent of goroutine scheduling.
	inStep      bool
	pendingViol [][]Violation

	// Superstep recovery state (see fault.go and checkpoint.go).
	ckpt          Checkpointer
	snapshots     [][]uint64
	ckptRound     int
	fired         map[uint64]struct{}
	resumeApplied bool

	// Observability state: the registered tracer, the active span label
	// (atomic: drivers may switch spans while a step's workers still run —
	// each barrier pins the label once, see Step), and reusable per-machine
	// scratch buffers so the skew accounting adds no allocations to the
	// superstep path.
	tracer  trace.Tracer
	span    atomic.Pointer[string]
	sentW   []int
	recvW   []int
	sortBuf []int
}

// NewCluster creates a cluster for a ground set of n items. The memory
// budget S is derived from cfg.Regime and n.
func NewCluster(cfg Config, n int) (*Cluster, error) {
	if cfg.Machines < 1 {
		return nil, fmt.Errorf("mpc: machines %d < 1", cfg.Machines)
	}
	if n < 0 {
		return nil, fmt.Errorf("mpc: negative ground set %d", n)
	}
	if cfg.Regime == 0 {
		cfg.Regime = RegimeLinear
	}
	if cfg.LinearSlack <= 0 {
		cfg.LinearSlack = 4
	}
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 0.5
	}
	var budget int
	switch cfg.Regime {
	case RegimeLinear:
		budget = cfg.LinearSlack * maxInt(n, 1)
	case RegimeSublinear:
		if cfg.Epsilon <= 0 || cfg.Epsilon >= 1 {
			return nil, fmt.Errorf("mpc: sublinear exponent %v out of (0,1)", cfg.Epsilon)
		}
		budget = int(math.Ceil(math.Pow(float64(maxInt(n, 2)), cfg.Epsilon)))
	case RegimeExplicit:
		if cfg.MemoryWords < 1 {
			return nil, fmt.Errorf("mpc: explicit budget %d < 1", cfg.MemoryWords)
		}
		budget = cfg.MemoryWords
	default:
		return nil, fmt.Errorf("mpc: unknown regime %v", cfg.Regime)
	}
	if cfg.Parallelism < 0 {
		return nil, fmt.Errorf("mpc: parallelism %d < 0", cfg.Parallelism)
	}
	if r := cfg.Resume; r != nil {
		if cfg.CheckpointEvery <= 0 {
			return nil, fmt.Errorf("mpc: Resume requires CheckpointEvery > 0 (checkpoint barriers must recur at the cadence the checkpoint was taken at)")
		}
		if r.Round < 0 {
			return nil, fmt.Errorf("mpc: Resume.Round %d < 0", r.Round)
		}
		if len(r.State) != cfg.Machines {
			return nil, fmt.Errorf("mpc: Resume state has %d machines, cluster has %d", len(r.State), cfg.Machines)
		}
	}
	c := &Cluster{
		cfg:      cfg,
		n:        n,
		budget:   budget,
		resident: make([]int, cfg.Machines),
		inboxes:  make([][]Message, cfg.Machines),
		tracer:   cfg.Tracer,
		sentW:    make([]int, cfg.Machines),
		recvW:    make([]int, cfg.Machines),
		sortBuf:  make([]int, cfg.Machines),
	}
	setup := "setup"
	c.span.Store(&setup)
	return c, nil
}

// parallelism resolves the configured worker-pool size: 0 means GOMAXPROCS.
func (c *Cluster) parallelism() int {
	if p := c.cfg.Parallelism; p > 0 {
		return p
	}
	return runtime.GOMAXPROCS(0)
}

// SetTracer registers (or, with nil, removes) the superstep tracer.
func (c *Cluster) SetTracer(t trace.Tracer) { c.tracer = t }

// Span sets the active trace-span label; subsequent rounds are attributed to
// it in Stats.Spans, the round log, and emitted trace events. Algorithms
// annotate their phases with the canonical labels "sparsify", "seed-search",
// "gather" and "finish"; rounds before the first Span call land in "setup".
// A tracer implementing trace.SpanObserver is notified immediately, so live
// introspection sees the phase change before its first round commits.
//
// Safe to call concurrently with a running step: the label is stored
// atomically, and every barrier pins it exactly once before executing, so a
// mid-step switch attributes the in-flight round entirely to the old label
// and takes effect from the next round.
func (c *Cluster) Span(name string) {
	c.span.Store(&name)
	if o, ok := c.tracer.(trace.SpanObserver); ok {
		o.SpanChange(name)
	}
}

// CurrentSpan returns the active trace-span label (so helpers like the
// derandomizer can set a span and restore the caller's afterwards).
func (c *Cluster) CurrentSpan() string { return *c.span.Load() }

// Machines returns the machine count M.
func (c *Cluster) Machines() int { return c.cfg.Machines }

// N returns the ground-set size the cluster was built for.
func (c *Cluster) N() int { return c.n }

// Budget returns the per-machine memory/bandwidth budget S in words.
func (c *Cluster) Budget() int { return c.budget }

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Owner returns the machine owning item v under the block partition.
func (c *Cluster) Owner(v int) int {
	if c.n == 0 {
		return 0
	}
	per := (c.n + c.cfg.Machines - 1) / c.cfg.Machines
	m := v / per
	if m >= c.cfg.Machines {
		m = c.cfg.Machines - 1
	}
	return m
}

// Range returns the half-open item range [lo, hi) owned by machine m.
func (c *Cluster) Range(m int) (lo, hi int) {
	per := (c.n + c.cfg.Machines - 1) / c.cfg.Machines
	lo = m * per
	hi = lo + per
	if lo > c.n {
		lo = c.n
	}
	if hi > c.n {
		hi = c.n
	}
	return lo, hi
}

// SetResident records machine m's current resident memory in words; the
// per-machine peak is tracked and checked against the budget. Safe to call
// from concurrent machine code inside a step.
func (c *Cluster) SetResident(m, words int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.setResidentLocked(m, words)
}

func (c *Cluster) setResidentLocked(m, words int) error {
	c.resident[m] = words
	if words > c.stats.PeakResident {
		c.stats.PeakResident = words
	}
	if words > c.budget {
		v := Violation{
			Round:   c.stats.Rounds,
			Machine: m,
			Kind:    "resident",
			Words:   words,
			Budget:  c.budget,
		}
		if c.inStep {
			// Concurrent machine code: buffer the violation per machine and
			// flush in machine order at the barrier, so stats.Violations is
			// independent of goroutine scheduling. The strict error still
			// surfaces to the caller immediately.
			if c.pendingViol == nil {
				c.pendingViol = make([][]Violation, len(c.resident))
			}
			c.pendingViol[m] = append(c.pendingViol[m], v)
			if c.cfg.Strict {
				return fmt.Errorf("%w: %s", ErrBudget, v)
			}
			return nil
		}
		return c.violate(v)
	}
	return nil
}

// setInStep toggles step-attempt mode: resident violations observed while set
// are buffered instead of appended directly (see setResidentLocked).
func (c *Cluster) setInStep(v bool) {
	c.mu.Lock()
	c.inStep = v
	c.mu.Unlock()
}

// flushResidentViolations moves violations buffered during a step attempt
// into stats.Violations in machine order. Runs single-threaded at the
// barrier; flushed on commit, abort and crash recovery alike, so every
// attempt's observations are recorded exactly as the serial path would.
func (c *Cluster) flushResidentViolations() {
	c.mu.Lock()
	pending := c.pendingViol
	c.pendingViol = nil
	c.mu.Unlock()
	for m := range pending {
		for _, v := range pending[m] {
			c.stats.Violations = append(c.stats.Violations, v)
		}
	}
}

// AddResident adjusts machine m's resident memory by delta words. Safe to
// call from concurrent machine code inside a step.
func (c *Cluster) AddResident(m, delta int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.setResidentLocked(m, c.resident[m]+delta)
}

// Resident returns machine m's currently recorded resident memory.
func (c *Cluster) Resident(m int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resident[m]
}

func (c *Cluster) violate(v Violation) error {
	c.stats.Violations = append(c.stats.Violations, v)
	if c.cfg.Strict {
		return fmt.Errorf("%w: %s", ErrBudget, v)
	}
	return nil
}

// Stats returns a copy of the accumulated statistics.
func (c *Cluster) Stats() Stats {
	out := c.stats
	out.Violations = append([]Violation(nil), c.stats.Violations...)
	out.Log = append([]RoundInfo(nil), c.stats.Log...)
	out.Spans = append([]SpanStat(nil), c.stats.Spans...)
	return out
}

// ResetStats clears accumulated statistics (but not machine state).
func (c *Cluster) ResetStats() {
	c.stats = Stats{}
}

// ChargeRounds accounts for k rounds of a step that is modeled analytically
// rather than simulated message-by-message (e.g. standard graph
// exponentiation). It adds k rounds to the statistics under the given name
// with no bandwidth attributed.
//
// A negative k is a caller bug (it would silently under-count the model's
// central quantity): it is recorded as a "rounds" violation and, consistent
// with budget handling, returned as an error in Strict mode.
func (c *Cluster) ChargeRounds(name string, k int) error {
	if err := c.barrierErr(); err != nil {
		return err
	}
	if k < 0 {
		return c.violate(Violation{
			Round:   c.stats.Rounds,
			Machine: -1,
			Kind:    "rounds",
			Words:   k,
			Budget:  0,
		})
	}
	span := c.CurrentSpan()
	for i := 0; i < k; i++ {
		c.stats.Rounds++
		info := RoundInfo{Name: name, Span: span}
		c.stats.Log = append(c.stats.Log, info)
		c.bumpSpan(info)
		if c.tracer != nil {
			c.tracer.Superstep(trace.Event{
				Round:   c.stats.Rounds,
				Step:    name,
				Span:    span,
				Charged: true,
			})
		}
	}
	return nil
}

// findSpan returns the (possibly new) aggregate for the named span. The last
// entry is checked first so the common case — consecutive rounds in the same
// phase — is O(1).
func (c *Cluster) findSpan(name string) *SpanStat {
	if n := len(c.stats.Spans); n > 0 && c.stats.Spans[n-1].Span == name {
		return &c.stats.Spans[n-1]
	}
	for i := range c.stats.Spans {
		if c.stats.Spans[i].Span == name {
			return &c.stats.Spans[i]
		}
	}
	c.stats.Spans = append(c.stats.Spans, SpanStat{Span: name})
	return &c.stats.Spans[len(c.stats.Spans)-1]
}

// bumpSpan folds one committed round into its span aggregate.
func (c *Cluster) bumpSpan(info RoundInfo) {
	sp := c.findSpan(info.Span)
	sp.Rounds++
	sp.Messages += int64(info.Messages)
	sp.Words += int64(info.Words)
	sp.MaxSent = maxInt(sp.MaxSent, info.MaxSent)
	sp.MaxRecv = maxInt(sp.MaxRecv, info.MaxRecv)
	sp.GiniSent = maxFloat(sp.GiniSent, info.GiniSent)
	sp.GiniRecv = maxFloat(sp.GiniRecv, info.GiniRecv)
}

// recoverySnapshot captures the fault-layer counters so Step can report the
// recovery activity of one superstep as deltas in its trace event.
type recoverySnapshot struct {
	crashes, recoveryRounds int
	dropped, dups, stalls   int
	replayed                int64
}

func (c *Cluster) snapshotRecovery() recoverySnapshot {
	return recoverySnapshot{
		crashes:        c.stats.RecoveredCrashes,
		recoveryRounds: c.stats.RecoveryRounds,
		dropped:        c.stats.DroppedMessages,
		dups:           c.stats.DupMessages,
		stalls:         c.stats.StallRounds,
		replayed:       c.stats.ReplayedWords,
	}
}

// MergeStats accumulates b into a: rounds, traffic and violations add up,
// peaks and skew coefficients take the maximum, span aggregates merge by
// name, and b's per-round indices (violations, like the appended log) are
// offset by a's round count so merged stats read as one continuous run. Used
// when an algorithm chains sub-instances on fresh clusters (e.g. recursive
// β-ruling levels).
func MergeStats(a, b Stats) Stats {
	offset := a.Rounds
	a.Rounds += b.Rounds
	a.Messages += b.Messages
	a.Words += b.Words
	a.PeakSent = maxInt(a.PeakSent, b.PeakSent)
	a.PeakRecv = maxInt(a.PeakRecv, b.PeakRecv)
	a.PeakResident = maxInt(a.PeakResident, b.PeakResident)
	for _, v := range b.Violations {
		v.Round += offset
		a.Violations = append(a.Violations, v)
	}
	a.Log = append(a.Log, b.Log...)
	a.Spans = mergeSpans(a.Spans, b.Spans)
	a.SkewSent = maxFloat(a.SkewSent, b.SkewSent)
	a.SkewRecv = maxFloat(a.SkewRecv, b.SkewRecv)
	a.GiniSent = maxFloat(a.GiniSent, b.GiniSent)
	a.GiniRecv = maxFloat(a.GiniRecv, b.GiniRecv)
	a.RecoveredCrashes += b.RecoveredCrashes
	a.RecoveryRounds += b.RecoveryRounds
	a.ReplayedWords += b.ReplayedWords
	a.CheckpointWords += b.CheckpointWords
	a.DroppedMessages += b.DroppedMessages
	a.DupMessages += b.DupMessages
	a.StallRounds += b.StallRounds
	a.CheckpointBytes += b.CheckpointBytes
	a.ResumeReplayRounds += b.ResumeReplayRounds
	return a
}

// mergeSpans folds b's span aggregates into a's, matching by name and
// preserving first-appearance order. The result never aliases b.
func mergeSpans(a, b []SpanStat) []SpanStat {
	for _, sp := range b {
		merged := false
		for i := range a {
			if a[i].Span == sp.Span {
				a[i].Rounds += sp.Rounds
				a[i].Messages += sp.Messages
				a[i].Words += sp.Words
				a[i].MaxSent = maxInt(a[i].MaxSent, sp.MaxSent)
				a[i].MaxRecv = maxInt(a[i].MaxRecv, sp.MaxRecv)
				a[i].GiniSent = maxFloat(a[i].GiniSent, sp.GiniSent)
				a[i].GiniRecv = maxFloat(a[i].GiniRecv, sp.GiniRecv)
				merged = true
				break
			}
		}
		if !merged {
			a = append(a, sp)
		}
	}
	return a
}

// Ctx is the per-machine view inside one Step: the machine id, its item
// range, the messages delivered at the end of the previous step, and a Send
// primitive for the current step.
//
// A Ctx is valid only for the duration of its step: once the step commits
// (or aborts), the context is invalidated and late Send calls are dropped
// and surfaced as an error from the next Step, instead of corrupting the
// next round's traffic.
type Ctx struct {
	Machine int
	Lo, Hi  int

	c     *Cluster
	round int
	inbox []Message
	sent  int
	ob    *stepOutbox

	crashed  bool
	panicked any
	stack    []byte
}

// stepOutbox buffers the sends of one worker's contiguous machine block
// during one step attempt. Workers never share a buffer, so appends are
// uncontended in the common case; the mutex exists for step closures that
// spawn their own sender goroutines (documented as legal as long as they are
// joined before the closure returns) and for the seal at the barrier, which
// turns late sends into ErrStaleCtx instead of next-round corruption.
type stepOutbox struct {
	mu     sync.Mutex
	sealed bool
	boxes  [][]Message // indexed by destination machine
}

// Inbox returns the messages delivered to this machine at the end of the
// previous step, ordered by sender id (and send order within a sender).
func (x *Ctx) Inbox() []Message { return x.inbox }

// Send queues a message of machine words to machine dst, delivered at the
// end of the step. The payload is copied.
func (x *Ctx) Send(dst int, payload ...uint64) {
	cp := make([]uint64, len(payload))
	copy(cp, payload)
	x.SendOwned(dst, cp)
}

// SendOwned queues payload without copying; the caller must not reuse it.
// Sending on an invalidated context (after its step completed) drops the
// payload and records ErrStaleCtx, returned by the cluster's next Step.
func (x *Ctx) SendOwned(dst int, payload []uint64) {
	ob := x.ob
	ob.mu.Lock()
	if ob.sealed {
		ob.mu.Unlock()
		x.c.noteLateSend(x.Machine, x.round, len(payload))
		return
	}
	x.sent += len(payload)
	ob.boxes[dst] = append(ob.boxes[dst], Message{Src: x.Machine, Payload: payload})
	ob.mu.Unlock()
}

// noteLateSend records the sticky ErrStaleCtx surfaced by the next Step.
func (c *Cluster) noteLateSend(machine, round, words int) {
	c.mu.Lock()
	if c.lateErr == nil {
		c.lateErr = fmt.Errorf("mpc: machine %d sent %d words after its step (round %d) completed: %w",
			machine, words, round, ErrStaleCtx)
	}
	c.mu.Unlock()
}

// ErrStaleCtx is wrapped by the error recorded when a machine sends on a Ctx
// whose step has already completed (e.g. from a goroutine leaked past the
// superstep barrier).
var ErrStaleCtx = errors.New("mpc: send on invalidated step context")

// takeLateErr returns and clears the sticky late-send error.
func (c *Cluster) takeLateErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	err := c.lateErr
	c.lateErr = nil
	return err
}

// attempt is the transient state of one superstep execution attempt: the
// per-machine contexts and the per-worker outbox buffers they fed. The
// buffers live and die with the attempt — a crash retry starts from fresh
// ones — so an aborted attempt can never leak traffic into the next round.
type attempt struct {
	ctxs    []*Ctx
	outs    []*stepOutbox // one per worker, in ascending machine-block order
	crashed []int
	merr    *MachineError
}

// seal closes every outbox of a finished (or aborted) attempt so late sends
// error (ErrStaleCtx) instead of leaking into the next round. Sealing takes
// each buffer's mutex, which also publishes all pre-seal sends (and the
// per-context sent counters they bumped) to the committing goroutine.
func (at *attempt) seal() {
	for _, ob := range at.outs {
		ob.mu.Lock()
		ob.sealed = true
		ob.mu.Unlock()
	}
}

// mergeOutboxes concatenates the per-worker buffers destination by
// destination, workers in ascending machine-block order. Each worker runs its
// block sequentially and blocks ascend with worker index, so the
// concatenation is already in the canonical total order — by sender id, then
// per-sender send order — for every parallelism level, with no sort and no
// comparison against a shared structure. The order is verified (and, for the
// pathological-but-legal case of a step closure whose joined goroutines
// interleaved sends across machines of one block, restored) before the boxes
// are handed to the transport, which assumes it.
func (at *attempt) mergeOutboxes(M int) [][]Message {
	boxes := make([][]Message, M)
	for dst := 0; dst < M; dst++ {
		total := 0
		for _, ob := range at.outs {
			total += len(ob.boxes[dst])
		}
		if total == 0 {
			continue
		}
		box := make([]Message, 0, total)
		for _, ob := range at.outs {
			box = append(box, ob.boxes[dst]...)
		}
		for i := 1; i < len(box); i++ {
			if box[i].Src < box[i-1].Src {
				stableSortBySrc(box)
				break
			}
		}
		boxes[dst] = box
	}
	return boxes
}

// chargeDiscarded charges the aborted attempt's buffered traffic to
// ReplayedWords (it is re-sent by the retry). The buffers themselves are
// simply dropped with the attempt.
func (at *attempt) chargeDiscarded(c *Cluster) {
	for _, ob := range at.outs {
		for _, box := range ob.boxes {
			for _, msg := range box {
				c.stats.ReplayedWords += int64(len(msg.Payload))
			}
		}
	}
}

// crashNow consumes one injected crash for (round, m); a fault fires only
// once, so the superstep retry after recovery does not crash again.
func (c *Cluster) crashNow(round, m int) bool {
	if !c.cfg.Faults.CrashesAt(round, m) {
		return false
	}
	key := eventID(faultCrash, round, m, 0, 0)
	if _, ok := c.fired[key]; ok {
		return false
	}
	if c.fired == nil {
		c.fired = make(map[uint64]struct{})
	}
	c.fired[key] = struct{}{}
	return true
}

// runAttempt executes one attempt of a superstep: f runs on every non-crashed
// machine via a bounded worker pool (Config.Parallelism workers; 1 runs every
// machine inline on the calling goroutine, in machine order), with panics
// recovered per machine. Crash decisions (which consume once-only fault
// events) are taken sequentially before any worker starts. The returned
// attempt carries the contexts, the per-worker outboxes, the machines crashed
// by the fault plan, and the lowest-machine MachineError if any step function
// panicked.
func (c *Cluster) runAttempt(round int, f func(x *Ctx)) *attempt {
	M := c.cfg.Machines
	at := &attempt{ctxs: make([]*Ctx, M)}
	for m := 0; m < M; m++ {
		lo, hi := c.Range(m)
		at.ctxs[m] = &Ctx{Machine: m, Lo: lo, Hi: hi, c: c, round: round, inbox: c.inboxes[m]}
		if c.crashNow(round, m) {
			at.ctxs[m].crashed = true
			at.crashed = append(at.crashed, m)
		}
	}
	run := func(x *Ctx) {
		defer func() {
			if r := recover(); r != nil {
				x.panicked = r
				x.stack = debug.Stack()
			}
		}()
		f(x)
	}
	P := c.parallelism()
	if P > M {
		P = M
	}
	per := (M + P - 1) / P
	var wg sync.WaitGroup
	for w := 0; w*per < M; w++ {
		lo, hi := w*per, (w+1)*per
		if hi > M {
			hi = M
		}
		ob := &stepOutbox{boxes: make([][]Message, M)}
		at.outs = append(at.outs, ob)
		for m := lo; m < hi; m++ {
			at.ctxs[m].ob = ob
		}
		block := func(lo, hi int) {
			for m := lo; m < hi; m++ {
				if !at.ctxs[m].crashed {
					run(at.ctxs[m])
				}
			}
		}
		if P == 1 {
			block(lo, hi)
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			block(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	for m := 0; m < M; m++ {
		if at.ctxs[m].panicked != nil {
			at.merr = &MachineError{Machine: m, Round: round, Panic: at.ctxs[m].panicked, Stack: at.ctxs[m].stack}
			break
		}
	}
	return at
}

// Step executes one synchronous round: f runs concurrently on every machine
// (reading its inbox from the previous step and sending messages), then all
// messages are delivered. name labels the round in the trace log.
//
// Robustness semantics:
//   - A panic in one machine's f is recovered at the barrier and returned as
//     a *MachineError; the step delivers nothing and the process survives.
//   - Crashes injected by Config.Faults abort the attempt at the barrier;
//     crashed machines are restored (see Checkpointer) and the superstep
//     re-executes, with the recovery charged to the fault fields of Stats.
//     f must therefore be effect-free on driver state (the established
//     discipline: drivers mutate state only after Step returns).
//   - Message drops are repaired by retransmission and duplicates removed by
//     receiver dedup, so delivered inboxes are always exactly the sent
//     messages; only the fault accounting records that anything happened.
//   - In Strict mode a budget violation aborts the step cleanly: the error
//     is returned, nothing is delivered, and the contexts are invalidated.
func (c *Cluster) Step(name string, f func(x *Ctx)) error {
	if err := c.takeLateErr(); err != nil {
		return err
	}
	if err := c.barrierErr(); err != nil {
		return err
	}
	M := c.cfg.Machines
	round := c.stats.Rounds + 1
	// Pin the span label once per barrier: a driver switching spans while
	// workers still run attributes this round entirely to the old label.
	span := c.CurrentSpan()
	pre := c.snapshotRecovery()
	if err := c.maybeCheckpoint(round); err != nil {
		return err
	}

	c.setInStep(true)
	var at *attempt
	for {
		at = c.runAttempt(round, f)
		at.seal()
		if at.merr != nil {
			c.flushResidentViolations()
			c.setInStep(false)
			return at.merr
		}
		if len(at.crashed) == 0 {
			break
		}
		c.flushResidentViolations()
		c.recoverCrashes(round, at)
	}
	c.flushResidentViolations()
	c.setInStep(false)
	if p := c.cfg.Faults; p != nil {
		for m := 0; m < M; m++ {
			if p.StallsAt(round, m) {
				c.stats.StallRounds++
			}
		}
	}

	// Merge the per-worker outboxes in fixed machine order — the canonical
	// (sender id, send order) sequence at every parallelism level, identical
	// to what the serial path produces. Transport faults are decided on this
	// order, so they too are schedule-independent.
	boxes := at.mergeOutboxes(M)
	// The merged boxes are the canonical exchange: hand them to the
	// configured transport (the multi-process backend ships and verifies
	// them here); the nil transport delivers them as-is. A failed exchange
	// aborts before the round commits — nothing below has run, so the
	// carried Stats are exactly the committed prefix.
	if c.cfg.Transport != nil {
		exchanged, err := c.cfg.Transport.Exchange(round, boxes)
		if err != nil {
			return &TransportError{Round: c.stats.Rounds, Stats: c.Stats(), Err: err}
		}
		boxes = exchanged
	}

	c.stats.Rounds++
	info := RoundInfo{Name: name, Span: span}
	var firstErr error
	for m := 0; m < M; m++ {
		sent := at.ctxs[m].sent
		c.sentW[m] = sent
		if sent > info.MaxSent {
			info.MaxSent = sent
		}
		if sent > c.stats.PeakSent {
			c.stats.PeakSent = sent
		}
		if sent > c.budget {
			if err := c.violate(Violation{Round: c.stats.Rounds, Machine: m, Kind: "send", Words: sent, Budget: c.budget}); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	droppedThisRound := false
	for m := 0; m < M; m++ {
		box := boxes[m]
		c.transportFaults(round, m, box, &droppedThisRound)
		recv := 0
		for _, msg := range box {
			recv += len(msg.Payload)
			info.Messages++
			info.Words += len(msg.Payload)
		}
		c.recvW[m] = recv
		if recv > info.MaxRecv {
			info.MaxRecv = recv
		}
		if recv > c.stats.PeakRecv {
			c.stats.PeakRecv = recv
		}
		if recv > c.budget {
			if err := c.violate(Violation{Round: c.stats.Rounds, Machine: m, Kind: "recv", Words: recv, Budget: c.budget}); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	if droppedThisRound {
		c.stats.RecoveryRounds++
	}
	// Skew accounting: per-round Gini coefficients (computed on the reusable
	// scratch buffer — no allocation) and the straggler ratio max/mean.
	copy(c.sortBuf, c.sentW)
	info.GiniSent = trace.Gini(c.sortBuf)
	copy(c.sortBuf, c.recvW)
	info.GiniRecv = trace.Gini(c.sortBuf)
	if info.Words > 0 {
		mean := float64(info.Words) / float64(M)
		c.stats.SkewSent = maxFloat(c.stats.SkewSent, float64(info.MaxSent)/mean)
		c.stats.SkewRecv = maxFloat(c.stats.SkewRecv, float64(info.MaxRecv)/mean)
	}
	c.stats.GiniSent = maxFloat(c.stats.GiniSent, info.GiniSent)
	c.stats.GiniRecv = maxFloat(c.stats.GiniRecv, info.GiniRecv)
	c.stats.Messages += int64(info.Messages)
	c.stats.Words += int64(info.Words)
	c.stats.Log = append(c.stats.Log, info)
	c.bumpSpan(info)
	if c.tracer != nil {
		// Event slices are freshly allocated: sinks may retain them. Machine
		// goroutines are quiesced at this point, so c.resident is stable.
		c.tracer.Superstep(trace.Event{
			Round:          c.stats.Rounds,
			Step:           name,
			Span:           span,
			Sent:           slices.Clone(c.sentW),
			Recv:           slices.Clone(c.recvW),
			Resident:       slices.Clone(c.resident),
			Messages:       info.Messages,
			Words:          info.Words,
			MaxSent:        info.MaxSent,
			MaxRecv:        info.MaxRecv,
			GiniSent:       info.GiniSent,
			GiniRecv:       info.GiniRecv,
			Crashes:        c.stats.RecoveredCrashes - pre.crashes,
			RecoveryRounds: c.stats.RecoveryRounds - pre.recoveryRounds,
			ReplayedWords:  c.stats.ReplayedWords - pre.replayed,
			Dropped:        c.stats.DroppedMessages - pre.dropped,
			Duplicated:     c.stats.DupMessages - pre.dups,
			Stalls:         c.stats.StallRounds - pre.stalls,
		})
	}
	if firstErr != nil {
		// Strict mode: abort cleanly — the violation is recorded and
		// returned, nothing reaches the next round's inboxes.
		return firstErr
	}
	for m := 0; m < M; m++ {
		c.inboxes[m] = boxes[m]
	}
	return nil
}

// transportFaults applies the plan's message-level faults to one sorted
// destination box. The transport is reliable: drops are retransmitted
// (charged to DroppedMessages, ReplayedWords and one recovery round per
// affected superstep) and duplicates deduplicated (charged to DupMessages),
// so the delivered box is always exactly the sent messages.
func (c *Cluster) transportFaults(round, dst int, box []Message, dropped *bool) {
	p := c.cfg.Faults
	if p == nil || (p.DropRate <= 0 && p.DupRate <= 0 && len(p.Drops) == 0) {
		return
	}
	seq, prevSrc := 0, -1
	for _, msg := range box {
		if msg.Src != prevSrc {
			seq, prevSrc = 0, msg.Src
		}
		if p.DropsMessage(round, msg.Src, dst, seq) {
			c.stats.DroppedMessages++
			c.stats.ReplayedWords += int64(len(msg.Payload))
			*dropped = true
		}
		if p.DupsMessage(round, msg.Src, dst, seq) {
			c.stats.DupMessages++
		}
		seq++
	}
}

// stableSortBySrc restores one destination box to the canonical total order:
// ascending sender id, ties broken by per-sender send sequence. The
// comparator keys on Src alone, so totality rests on two guarantees that
// must both hold: sort.SliceStable never reorders equal elements, and every
// producer appends one sender's messages in that sender's send order (a
// worker runs its machines sequentially; in-closure sender goroutines must
// be joined before the closure returns). TestDuplicateSrcFanIn pins the
// combination — it would flake under a non-stable sort or an unordered
// producer.
func stableSortBySrc(box []Message) {
	sort.SliceStable(box, func(i, j int) bool { return box[i].Src < box[j].Src })
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
