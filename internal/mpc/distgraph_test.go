package mpc

import (
	"testing"

	"github.com/rulingset/mprs/internal/bitset"
	"github.com/rulingset/mprs/internal/graph"
)

// testGraph: 0-1, 1-2, 2-3, 3-4, 0-4 (5-cycle) plus chord 1-3.
func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.New(5, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 0, V: 4}, {U: 1, V: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func distTestGraph(t *testing.T, machines int) *DistGraph {
	t.Helper()
	g := testGraph(t)
	c, err := NewCluster(Config{Machines: machines}, g.N())
	if err != nil {
		t.Fatal(err)
	}
	d, err := Distribute(c, g)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDistributeChargesResidentMemory(t *testing.T) {
	d := distTestGraph(t, 2)
	c := d.Cluster()
	// Total resident across machines: sum over v of (2 + deg(v)) = 2n + 2m.
	total := 0
	for m := 0; m < c.Machines(); m++ {
		total += c.Resident(m)
	}
	if want := 2*5 + 2*6; total != want {
		t.Fatalf("resident total = %d, want %d", total, want)
	}
}

func TestDistributeOrderMismatch(t *testing.T) {
	g := testGraph(t)
	c, err := NewCluster(Config{Machines: 2}, g.N()+1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Distribute(c, g); err == nil {
		t.Fatal("order mismatch accepted")
	}
}

func TestNotifyNeighbors(t *testing.T) {
	for _, machines := range []int{1, 2, 5} {
		d := distTestGraph(t, machines)
		marked := bitset.New(5)
		marked.Add(1)
		touched, err := d.NotifyNeighbors("n", marked, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := []int{0, 2, 3} // neighbors of 1
		if touched.Count() != len(want) {
			t.Fatalf("machines=%d: touched %v", machines, touched.Elements())
		}
		for _, v := range want {
			if !touched.Contains(v) {
				t.Fatalf("machines=%d: %d not touched", machines, v)
			}
		}
	}
}

func TestNotifyNeighborsRestricted(t *testing.T) {
	d := distTestGraph(t, 3)
	marked := bitset.New(5)
	marked.Add(1)
	restrict := bitset.New(5)
	restrict.Add(2) // only 2 may be notified
	touched, err := d.NotifyNeighbors("n", marked, restrict)
	if err != nil {
		t.Fatal(err)
	}
	if touched.Count() != 1 || !touched.Contains(2) {
		t.Fatalf("restricted touched = %v", touched.Elements())
	}
}

func TestExchangeActive(t *testing.T) {
	for _, machines := range []int{1, 3, 5} {
		d := distTestGraph(t, machines)
		active := bitset.New(5)
		for _, v := range []int{0, 1, 3} {
			active.Add(v)
		}
		nbrs, _, err := d.ExchangeActive("x", active, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Active subgraph on {0,1,3}: edges 0-1, 1-3.
		wantNbrs := map[int][]int32{0: {1}, 1: {0, 3}, 3: {1}}
		for _, v := range []int{0, 1, 3} {
			want := wantNbrs[v]
			got := nbrs[v]
			if len(got) != len(want) {
				t.Fatalf("machines=%d: nbrs[%d] = %v, want %v", machines, v, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("machines=%d: nbrs[%d] = %v, want %v (order matters)", machines, v, got, want)
				}
			}
		}
		// Inactive vertices have no view.
		if len(nbrs[2]) != 0 || len(nbrs[4]) != 0 {
			t.Fatalf("machines=%d: inactive vertices got views", machines)
		}
	}
}

func TestExchangeActiveWithValues(t *testing.T) {
	d := distTestGraph(t, 2)
	active := bitset.New(5)
	active.Fill()
	vals := []int32{10, 11, 12, 13, 14}
	nbrs, nbrVals, err := d.ExchangeActive("x", active, vals)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 5; v++ {
		if len(nbrs[v]) != len(nbrVals[v]) {
			t.Fatalf("misaligned values at %d", v)
		}
		for i, u := range nbrs[v] {
			if nbrVals[v][i] != vals[u] {
				t.Fatalf("value for neighbor %d of %d = %d, want %d", u, v, nbrVals[v][i], vals[u])
			}
		}
	}
}

func TestGatherSubgraph(t *testing.T) {
	for _, machines := range []int{1, 2, 4} {
		d := distTestGraph(t, machines)
		include := bitset.New(5)
		for _, v := range []int{1, 2, 3} {
			include.Add(v)
		}
		sub, toOrig, err := d.GatherSubgraph("g", include)
		if err != nil {
			t.Fatal(err)
		}
		if sub.N() != 3 {
			t.Fatalf("machines=%d: sub n = %d", machines, sub.N())
		}
		// Induced edges on {1,2,3}: 1-2, 2-3, 1-3.
		if sub.M() != 3 {
			t.Fatalf("machines=%d: sub m = %d, want 3", machines, sub.M())
		}
		for i, orig := range toOrig {
			if orig != int32(i+1) {
				t.Fatalf("machines=%d: toOrig = %v", machines, toOrig)
			}
		}
	}
}

func TestGatherSubgraphChargesCoordinator(t *testing.T) {
	d := distTestGraph(t, 2)
	c := d.Cluster()
	before := c.Resident(0)
	include := bitset.New(5)
	include.Fill()
	sub, _, err := d.GatherSubgraph("g", include)
	if err != nil {
		t.Fatal(err)
	}
	want := before + sub.N() + 2*sub.M()
	if c.Resident(0) != want {
		t.Fatalf("coordinator resident = %d, want %d", c.Resident(0), want)
	}
}
