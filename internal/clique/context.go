package clique

import (
	"context"
	"errors"
	"fmt"

	"github.com/rulingset/mprs/internal/mpc"
)

// Cooperative cancellation, mirroring the MPC simulator: a cluster built
// with Config.Context checks it at the top of every round barrier (Step and
// RouteStep) and refuses to start the next round once the context is done.
// The current round's node goroutines always run to the barrier (the worker
// pool is joined before step returns), so cancellation never leaks a
// goroutine or tears state. The sentinels are shared with the mpc package —
// errors.Is(err, mpc.ErrCanceled) works across both simulators.

// CancelError reports a clique run stopped at a round barrier by its
// context. It wraps mpc.ErrCanceled or mpc.ErrDeadline (errors.Is selects
// which) and the context's own cause.
type CancelError struct {
	// Round is the number of committed rounds when the run stopped.
	Round int
	// Stats is the full accumulated statistics at the stop barrier.
	Stats Stats

	sentinel error
	cause    error
}

// Error implements error.
func (e *CancelError) Error() string {
	what := "run canceled"
	if errors.Is(e.sentinel, mpc.ErrDeadline) {
		what = "run deadline exceeded"
	}
	return fmt.Sprintf("clique: %s after %d committed rounds: %v", what, e.Round, e.cause)
}

// Unwrap exposes both the mpc sentinel and the context error.
func (e *CancelError) Unwrap() []error { return []error{e.sentinel, e.cause} }

// barrierErr checks the configured context at a round barrier.
func (c *Cluster) barrierErr() error {
	ctx := c.cfg.Context
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		cause := context.Cause(ctx)
		sentinel := mpc.ErrCanceled
		if errors.Is(cause, context.DeadlineExceeded) {
			sentinel = mpc.ErrDeadline
		}
		return &CancelError{Round: c.stats.Rounds, Stats: c.Stats(), sentinel: sentinel, cause: cause}
	default:
		return nil
	}
}

// RunContext builds a clique wired to ctx and executes driver on it,
// returning the accumulated Stats alongside driver's error; the clique
// counterpart of mpc.RunContext.
func RunContext(ctx context.Context, cfg Config, n int, driver func(*Cluster) error) (Stats, error) {
	cfg.Context = ctx
	c, err := NewCluster(cfg, n)
	if err != nil {
		return Stats{}, err
	}
	err = driver(c)
	return c.Stats(), err
}
