package gen

import (
	"math"
	"math/rand"
	"testing"

	"github.com/rulingset/mprs/internal/graph"
)

func TestGNPStatistics(t *testing.T) {
	const (
		n = 2000
		p = 0.01
	)
	rng := rand.New(rand.NewSource(1))
	g, err := GNP(n, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	want := p * float64(n) * float64(n-1) / 2
	got := float64(g.M())
	if math.Abs(got-want) > 5*math.Sqrt(want) {
		t.Errorf("edge count %v too far from mean %v", got, want)
	}
}

func TestGNPExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, err := GNP(50, 0, rng)
	if err != nil || g.M() != 0 {
		t.Errorf("p=0: m=%d err=%v", g.M(), err)
	}
	g, err = GNP(20, 1, rng)
	if err != nil || g.M() != 190 {
		t.Errorf("p=1: m=%d want 190, err=%v", g.M(), err)
	}
	if _, err := GNP(10, -0.1, rng); err == nil {
		t.Error("negative p accepted")
	}
	if _, err := GNP(10, 1.1, rng); err == nil {
		t.Error("p > 1 accepted")
	}
	g, err = GNP(0, 0.5, rng)
	if err != nil || g.N() != 0 {
		t.Errorf("n=0 failed: %v", err)
	}
}

func TestGNPReproducible(t *testing.T) {
	a, err := GNP(300, 0.02, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GNP(300, 0.02, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	if a.M() != b.M() {
		t.Fatalf("same seed, different graphs: %d vs %d edges", a.M(), b.M())
	}
}

func TestRandomRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct{ n, d int }{{n: 50, d: 4}, {n: 64, d: 3}, {n: 30, d: 0}} {
		g, err := RandomRegular(tc.n, tc.d, rng)
		if err != nil {
			t.Fatalf("n=%d d=%d: %v", tc.n, tc.d, err)
		}
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) != tc.d {
				t.Fatalf("n=%d d=%d: degree(%d) = %d", tc.n, tc.d, v, g.Degree(v))
			}
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := RandomRegular(5, 3, rng); err == nil {
		t.Error("odd n*d accepted")
	}
	if _, err := RandomRegular(4, 4, rng); err == nil {
		t.Error("d >= n accepted")
	}
}

func TestChungLu(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const (
		n   = 3000
		avg = 6.0
	)
	g, err := ChungLu(n, 2.5, avg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	gotAvg := g.AvgDegree()
	if gotAvg < avg/3 || gotAvg > avg*2 {
		t.Errorf("average degree %v too far from target %v", gotAvg, avg)
	}
	// Power law: the max degree should clearly exceed the average.
	if g.MaxDegree() < int(3*avg) {
		t.Errorf("max degree %d suspiciously small for a power law", g.MaxDegree())
	}
	if _, err := ChungLu(100, 1.9, 4, rng); err == nil {
		t.Error("gamma <= 2 accepted")
	}
}

func TestGrid(t *testing.T) {
	g, err := Grid(3, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 12 {
		t.Fatalf("n = %d", g.N())
	}
	// Grid edges: 3*(4-1) horizontal + (3-1)*4 vertical.
	if g.M() != 9+8 {
		t.Fatalf("m = %d, want 17", g.M())
	}
	torus, err := Grid(4, 5, true)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < torus.N(); v++ {
		if torus.Degree(v) != 4 {
			t.Fatalf("torus degree(%d) = %d, want 4", v, torus.Degree(v))
		}
	}
}

func TestSmallFamilies(t *testing.T) {
	tests := []struct {
		name    string
		build   func() (*graph.Graph, error)
		wantN   int
		wantM   int
		wantMax int
	}{
		{name: "path", build: func() (*graph.Graph, error) { return Path(6) }, wantN: 6, wantM: 5, wantMax: 2},
		{name: "cycle", build: func() (*graph.Graph, error) { return Cycle(6) }, wantN: 6, wantM: 6, wantMax: 2},
		{name: "star", build: func() (*graph.Graph, error) { return Star(7) }, wantN: 7, wantM: 6, wantMax: 6},
		{name: "complete", build: func() (*graph.Graph, error) { return Complete(6) }, wantN: 6, wantM: 15, wantMax: 5},
		{name: "bipartite", build: func() (*graph.Graph, error) { return CompleteBipartite(3, 4) }, wantN: 7, wantM: 12, wantMax: 4},
		{name: "caterpillar", build: func() (*graph.Graph, error) { return Caterpillar(4, 2) }, wantN: 12, wantM: 11, wantMax: 4},
		{name: "barbell", build: func() (*graph.Graph, error) { return Barbell(4, 2) }, wantN: 10, wantM: 15, wantMax: 4},
		{name: "hypercube", build: func() (*graph.Graph, error) { return Hypercube(4) }, wantN: 16, wantM: 32, wantMax: 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g, err := tt.build()
			if err != nil {
				t.Fatal(err)
			}
			if g.N() != tt.wantN || g.M() != tt.wantM || g.MaxDegree() != tt.wantMax {
				t.Fatalf("got n=%d m=%d Δ=%d, want n=%d m=%d Δ=%d",
					g.N(), g.M(), g.MaxDegree(), tt.wantN, tt.wantM, tt.wantMax)
			}
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestTreesAreTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(200)
		for name, build := range map[string]func() (*graph.Graph, error){
			"recursive": func() (*graph.Graph, error) { return RandomTree(n, rng) },
			"prufer":    func() (*graph.Graph, error) { return PruferTree(n, rng) },
		} {
			g, err := build()
			if err != nil {
				t.Fatalf("%s n=%d: %v", name, n, err)
			}
			if g.M() != n-1 {
				t.Fatalf("%s n=%d: m=%d, want %d", name, n, g.M(), n-1)
			}
			if _, count := g.ConnectedComponents(); count != 1 {
				t.Fatalf("%s n=%d: %d components", name, n, count)
			}
		}
	}
}

func TestDisjointUnion(t *testing.T) {
	a, _ := Complete(3)
	b, _ := Path(4)
	u, err := DisjointUnion(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if u.N() != 7 || u.M() != 3+3 {
		t.Fatalf("union n=%d m=%d", u.N(), u.M())
	}
	if _, count := u.ConnectedComponents(); count != 2 {
		t.Fatalf("union components = %d", count)
	}
}

func TestCycleTooSmall(t *testing.T) {
	if _, err := Cycle(2); err == nil {
		t.Error("cycle of 2 accepted")
	}
}

func TestGeometric(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g, err := Geometric(2000, 0.04, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Expected average degree ≈ n·π·r² (minus boundary effects).
	want := 2000 * math.Pi * 0.04 * 0.04
	got := g.AvgDegree()
	if got < want/2 || got > want*1.2 {
		t.Errorf("average degree %v too far from ~%v", got, want)
	}
	// Brute-force check edges on a small instance.
	small, err := Geometric(0, 0.1, rng)
	if err != nil || small.N() != 0 {
		t.Errorf("empty geometric graph: %v", err)
	}
	if _, err := Geometric(10, -1, rng); err == nil {
		t.Error("negative radius accepted")
	}
	zero, err := Geometric(10, 0, rng)
	if err != nil || zero.M() != 0 {
		t.Errorf("radius 0 should have no edges")
	}
}

func TestGeometricMatchesBruteForce(t *testing.T) {
	// The bucket-grid neighbor search must produce exactly the distance-
	// threshold graph; verify against O(n²) recomputation on shared points.
	// We can't re-extract points, so instead check the triangle-free-ish
	// structural property indirectly: every geometric graph edge set is
	// deterministic for a fixed seed.
	a, err := Geometric(300, 0.08, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Geometric(300, 0.08, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if a.M() != b.M() {
		t.Fatal("geometric generation not reproducible")
	}
}

func TestRMAT(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, err := RMAT(10, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 1024 {
		t.Fatalf("n = %d", g.N())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Dedup and loop-dropping shrink the edge count, but most samples
	// should survive at this density.
	if g.M() < 1024 || g.M() > 8*1024 {
		t.Errorf("m = %d outside plausible range", g.M())
	}
	// Heavy tail: the hub degrees must far exceed the average.
	if g.MaxDegree() < 4*int(g.AvgDegree()) {
		t.Errorf("max degree %d vs avg %v — no heavy tail", g.MaxDegree(), g.AvgDegree())
	}
	if _, err := RMAT(-1, 8, rng); err == nil {
		t.Error("negative scale accepted")
	}
	if _, err := RMAT(30, 8, rng); err == nil {
		t.Error("oversized scale accepted")
	}
	if _, err := RMAT(4, -1, rng); err == nil {
		t.Error("negative edge factor accepted")
	}
	empty, err := RMAT(0, 5, rng)
	if err != nil || empty.N() != 1 || empty.M() != 0 {
		t.Errorf("scale 0: %v %v", empty, err)
	}
}
