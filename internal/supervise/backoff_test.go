package supervise

import (
	"testing"
	"time"
)

// TestBackoffForSaturates pins the shift-overflow fix: high attempt counts
// must land exactly on max, never overflow into a negative or tiny duration.
func TestBackoffForSaturates(t *testing.T) {
	const (
		initial = 100 * time.Millisecond
		max     = 5 * time.Second
	)
	cases := []struct {
		attempt int
		want    time.Duration
	}{
		{0, initial}, // clamped to attempt 1
		{1, initial},
		{2, 200 * time.Millisecond},
		{3, 400 * time.Millisecond},
		{6, 3200 * time.Millisecond},
		{7, max}, // 6400ms > cap
		{8, max},
		{63, max},  // shift == 62: initial<<62 would overflow; cap comparison saturates
		{64, max},  // shift == 63: structural saturation branch
		{100, max}, // far past the width of time.Duration
		{1 << 30, max},
	}
	for _, c := range cases {
		got := backoffFor(c.attempt, initial, max)
		if got != c.want {
			t.Errorf("backoffFor(%d) = %v, want %v", c.attempt, got, c.want)
		}
		if got < 0 || got > max {
			t.Errorf("backoffFor(%d) = %v out of [0, %v]", c.attempt, got, max)
		}
	}
}

// TestBackoffForNeverNegative sweeps attempts across the overflow boundary:
// the pre-fix implementation went negative at attempt 64 with these inputs.
func TestBackoffForNeverNegative(t *testing.T) {
	for attempt := 0; attempt <= 256; attempt++ {
		got := backoffFor(attempt, 100*time.Millisecond, 5*time.Second)
		if got <= 0 {
			t.Fatalf("backoffFor(%d) = %v, not positive", attempt, got)
		}
	}
}
