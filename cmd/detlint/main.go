// Command detlint enforces the repository's determinism invariants by
// static analysis: map-iteration order leaks, wall-clock reads, global
// math/rand use, dropped Send/budget errors, and float accumulation in map
// ranges (see internal/lint for the analyzer catalogue and the
// //detlint:ok annotation syntax).
//
// Usage:
//
//	go run ./cmd/detlint ./...
//
// Exit status is 0 when the tree is clean, 1 when there are findings, and
// 2 when the run itself fails (bad pattern, type error).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/rulingset/mprs/internal/buildinfo"
	"github.com/rulingset/mprs/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("detlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir       = fs.String("dir", "", "directory to resolve package patterns from (default: current directory)")
		all       = fs.Bool("all", false, "treat every scanned package as determinism-critical (used on lint fixtures)")
		skipTests = fs.Bool("skip-tests", false, "exclude _test.go files from analysis")
		analyzers = fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		list      = fs.Bool("list", false, "list analyzers and exit")
		version   = fs.Bool("version", false, "print version and exit")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: detlint [flags] [packages]\n\npackages are directories, optionally with a /... suffix (default ./...)")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.CLIVersion("detlint"))
		return 0
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	cfg := lint.Config{
		Dir:         *dir,
		Patterns:    fs.Args(),
		AllCritical: *all,
		SkipTests:   *skipTests,
	}
	if *analyzers != "" {
		cfg.Analyzers = strings.Split(*analyzers, ",")
	}
	diags, err := lint.Run(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "detlint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "detlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
