package mpc

import (
	"errors"
	"fmt"
	"slices"
	"testing"
)

// recordingSink captures every durable persist in memory.
type recordingSink struct {
	rounds []int
	states map[int][][]uint64
	fail   bool
}

func (s *recordingSink) Persist(round int, state [][]uint64) (int64, error) {
	if s.fail {
		return 0, errors.New("disk full")
	}
	if s.states == nil {
		s.states = make(map[int][][]uint64)
	}
	cp := make([][]uint64, len(state))
	var bytes int64
	for m, words := range state {
		cp[m] = slices.Clone(words)
		bytes += int64(8 * len(words))
	}
	s.rounds = append(s.rounds, round)
	s.states[round] = cp
	return bytes, nil
}

// counterDriver runs `rounds` supersteps over per-machine counters, bumping
// each counter after its step commits (the repo's driver discipline), and
// registers the counters as checkpoint state.
func counterDriver(t *testing.T, c *Cluster, rounds int) []uint64 {
	t.Helper()
	state := make([]uint64, c.Machines())
	for m := range state {
		state[m] = uint64(100 * (m + 1))
	}
	err := c.SetCheckpointer(FuncCheckpointer{
		SnapshotFn: func(m int) []uint64 { return []uint64{state[m]} },
		RestoreFn:  func(m int, data []uint64) { state[m] = data[0] },
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rounds; r++ {
		if err := c.Step("tick", echoStep); err != nil {
			t.Fatal(err)
		}
		for m := range state {
			state[m] += uint64(m + 1)
		}
	}
	return state
}

func TestSinkPersistsEveryCheckpoint(t *testing.T) {
	sink := &recordingSink{}
	c, err := NewCluster(Config{Machines: 3, CheckpointEvery: 2, Sink: sink}, 9)
	if err != nil {
		t.Fatal(err)
	}
	final := counterDriver(t, c, 5)
	// Checkpoints fire at the barriers before rounds 1, 3 and 5 — i.e. the
	// state after rounds 0, 2 and 4.
	if want := []int{0, 2, 4}; !slices.Equal(sink.rounds, want) {
		t.Fatalf("persisted rounds %v, want %v", sink.rounds, want)
	}
	st := c.Stats()
	if st.CheckpointBytes != 3*3*8 {
		t.Fatalf("CheckpointBytes = %d, want %d", st.CheckpointBytes, 3*3*8)
	}
	if st.ResumeReplayRounds != 0 {
		t.Fatalf("fresh run has ResumeReplayRounds = %d", st.ResumeReplayRounds)
	}
	// The round-4 checkpoint holds the state after 4 bumps.
	for m, words := range sink.states[4] {
		want := uint64(100*(m+1)) + uint64(4*(m+1))
		if len(words) != 1 || words[0] != want {
			t.Fatalf("checkpoint state machine %d = %v, want [%d]", m, words, want)
		}
	}
	_ = final
}

func TestSinkErrorSurfacesFromStep(t *testing.T) {
	sink := &recordingSink{fail: true}
	c, err := NewCluster(Config{Machines: 2, CheckpointEvery: 2, Sink: sink}, 4)
	if err != nil {
		t.Fatal(err)
	}
	state := []uint64{1, 2}
	if err := c.SetCheckpointer(FuncCheckpointer{
		SnapshotFn: func(m int) []uint64 { return []uint64{state[m]} },
		RestoreFn:  func(m int, data []uint64) { state[m] = data[0] },
	}); err != nil {
		t.Fatal(err)
	}
	err = c.Step("tick", echoStep)
	if err == nil || !contains(err.Error(), "durable checkpoint") {
		t.Fatalf("sink failure err = %v", err)
	}
}

// TestResumeReproducesRun is the in-process kill-then-resume drill: a full
// run persists durable checkpoints; a second run resumes from one of them
// and must produce byte-identical final state and identical deterministic
// stats, with only the resume-overhead counters differing.
func TestResumeReproducesRun(t *testing.T) {
	for _, faults := range []*FaultPlan{nil, {Seed: 5, Crashes: []FaultEvent{{Round: 3, Machine: 1}}, Stalls: []FaultEvent{{Round: 2, Machine: 0}}}} {
		name := "fault-free"
		if faults != nil {
			name = "under-faults"
		}
		t.Run(name, func(t *testing.T) {
			sink := &recordingSink{}
			c1, err := NewCluster(Config{Machines: 3, CheckpointEvery: 2, Sink: sink, Faults: faults}, 9)
			if err != nil {
				t.Fatal(err)
			}
			fullState := counterDriver(t, c1, 7)
			fullStats := c1.Stats()

			// "Restart the process" from the round-4 checkpoint: a fresh
			// cluster replays from scratch, verifies at the matching barrier,
			// and restores the durable state.
			resume := &ResumeState{Round: 4, State: sink.states[4]}
			sink2 := &recordingSink{}
			c2, err := NewCluster(Config{Machines: 3, CheckpointEvery: 2, Sink: sink2, Resume: resume, Faults: faults}, 9)
			if err != nil {
				t.Fatal(err)
			}
			resumedState := counterDriver(t, c2, 7)
			resumedStats := c2.Stats()

			if !slices.Equal(fullState, resumedState) {
				t.Fatalf("final state diverged: full %v, resumed %v", fullState, resumedState)
			}
			if resumedStats.ResumeReplayRounds != 4 {
				t.Fatalf("ResumeReplayRounds = %d, want 4", resumedStats.ResumeReplayRounds)
			}
			// The resumed run persists only checkpoints past the resume point.
			if want := []int{6}; !slices.Equal(sink2.rounds, want) {
				t.Fatalf("resumed run persisted rounds %v, want %v", sink2.rounds, want)
			}
			// Deterministic stats are identical; only the resume-overhead
			// counters (CheckpointBytes, ResumeReplayRounds) may differ.
			a, b := fullStats, resumedStats
			a.CheckpointBytes, b.CheckpointBytes = 0, 0
			a.ResumeReplayRounds, b.ResumeReplayRounds = 0, 0
			if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
				t.Fatalf("deterministic stats diverged:\nfull    %+v\nresumed %+v", a, b)
			}
		})
	}
}

func TestResumeDivergenceDetected(t *testing.T) {
	sink := &recordingSink{}
	c1, err := NewCluster(Config{Machines: 2, CheckpointEvery: 2, Sink: sink}, 4)
	if err != nil {
		t.Fatal(err)
	}
	counterDriver(t, c1, 5)

	tampered := sink.states[2]
	tampered[1][0] ^= 1 // flip one bit of machine 1's durable state
	c2, err := NewCluster(Config{Machines: 2, CheckpointEvery: 2, Resume: &ResumeState{Round: 2, State: tampered}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	state := []uint64{100, 200}
	if err := c2.SetCheckpointer(FuncCheckpointer{
		SnapshotFn: func(m int) []uint64 { return []uint64{state[m]} },
		RestoreFn:  func(m int, data []uint64) { state[m] = data[0] },
	}); err != nil {
		t.Fatal(err)
	}
	var stepErr error
	for r := 0; r < 5 && stepErr == nil; r++ {
		stepErr = c2.Step("tick", echoStep)
		for m := range state {
			state[m] += uint64(m + 1)
		}
	}
	if !errors.Is(stepErr, ErrResumeDiverged) {
		t.Fatalf("err = %v, want ErrResumeDiverged", stepErr)
	}
}

func TestResumeConfigValidation(t *testing.T) {
	state := [][]uint64{{1}, {2}}
	if _, err := NewCluster(Config{Machines: 2, Resume: &ResumeState{Round: 2, State: state}}, 4); err == nil {
		t.Fatal("Resume without CheckpointEvery accepted")
	}
	if _, err := NewCluster(Config{Machines: 3, CheckpointEvery: 2, Resume: &ResumeState{Round: 2, State: state}}, 4); err == nil {
		t.Fatal("Resume with wrong machine count accepted")
	}
	if _, err := NewCluster(Config{Machines: 2, CheckpointEvery: 2, Resume: &ResumeState{Round: -1, State: state}}, 4); err == nil {
		t.Fatal("Resume with negative round accepted")
	}
	if _, err := NewCluster(Config{Machines: 2, CheckpointEvery: 2, Resume: &ResumeState{Round: 2, State: state}}, 4); err != nil {
		t.Fatalf("valid resume config rejected: %v", err)
	}
}

func TestSetCheckpointerValidation(t *testing.T) {
	c, err := NewCluster(Config{Machines: 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	snap := func(m int) []uint64 { return nil }
	rest := func(m int, data []uint64) {}
	cases := []struct {
		name string
		cp   Checkpointer
		want string
	}{
		{"nil snapshot", FuncCheckpointer{RestoreFn: rest}, "nil SnapshotFn"},
		{"nil restore", FuncCheckpointer{SnapshotFn: snap}, "nil RestoreFn"},
		{"both nil", FuncCheckpointer{}, "nil SnapshotFn and RestoreFn"},
		{"pointer nil snapshot", &FuncCheckpointer{RestoreFn: rest}, "nil SnapshotFn"},
	}
	for _, tc := range cases {
		err := c.SetCheckpointer(tc.cp)
		if err == nil || !contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	if err := c.SetCheckpointer(FuncCheckpointer{SnapshotFn: snap, RestoreFn: rest}); err != nil {
		t.Fatalf("complete FuncCheckpointer rejected: %v", err)
	}
	if err := c.SetCheckpointer(nil); err != nil {
		t.Fatalf("unregistering rejected: %v", err)
	}
}
