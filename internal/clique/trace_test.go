package clique

import (
	"testing"

	"github.com/rulingset/mprs/internal/mpc"
	"github.com/rulingset/mprs/internal/trace"
)

func newTracedClique(t *testing.T, cfg Config, n int) (*Cluster, *trace.Ring) {
	t.Helper()
	ring := trace.NewRing(1024)
	cfg.Tracer = ring
	c, err := NewCluster(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	return c, ring
}

func TestCliqueTraceEventsMatchStats(t *testing.T) {
	c, ring := newTracedClique(t, Config{PairWords: 8}, 4)
	c.Span("sparsify")
	for r := 0; r < 3; r++ {
		if err := c.Step("work", func(x *Ctx) {
			// Every node sends one word to node 0: receive-skewed on purpose.
			x.Send(0, uint64(x.Node))
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	evs := ring.Events()
	if len(evs) != 3 {
		t.Fatalf("%d events for 3 steps", len(evs))
	}
	var words, msgs int
	for i, ev := range evs {
		if ev.Round != i+1 {
			t.Errorf("event %d has round %d", i, ev.Round)
		}
		if ev.Step != "work" || ev.Span != "sparsify" {
			t.Errorf("event %d labeled (%q, %q)", i, ev.Step, ev.Span)
		}
		if len(ev.Sent) != 4 || len(ev.Recv) != 4 {
			t.Fatalf("event %d per-node slices sized %d/%d", i, len(ev.Sent), len(ev.Recv))
		}
		// The clique model has no memory budget: Resident stays nil.
		if ev.Resident != nil {
			t.Fatalf("event %d carries resident memory: %v", i, ev.Resident)
		}
		if ev.Recv[0] != 4 || ev.MaxRecv != 4 || ev.MaxSent != 1 {
			t.Errorf("event %d traffic shape: recv0=%d max=%d/%d", i, ev.Recv[0], ev.MaxSent, ev.MaxRecv)
		}
		// All receive lands on 1 of 4 nodes: Gini = (n-1)/n = 0.75; sends are
		// perfectly balanced.
		if ev.GiniRecv != 0.75 || ev.GiniSent != 0 {
			t.Errorf("event %d: Gini %v/%v", i, ev.GiniSent, ev.GiniRecv)
		}
		words += ev.Words
		msgs += ev.Messages
	}
	if int64(words) != st.Words || int64(msgs) != st.Messages {
		t.Fatalf("event totals %d words / %d messages, stats %d / %d", words, msgs, st.Words, st.Messages)
	}
	if st.GiniRecv != 0.75 || st.SkewRecv != 4 {
		t.Fatalf("stats skew: GiniRecv %v (want 0.75), SkewRecv %v (want 4)", st.GiniRecv, st.SkewRecv)
	}
	if len(st.Spans) != 1 || st.Spans[0].Span != "sparsify" || st.Spans[0].Rounds != 3 {
		t.Fatalf("spans %+v", st.Spans)
	}
	if st.Spans[0].Words != st.Words || st.Spans[0].MaxRecv != st.PeakRecv {
		t.Fatalf("span aggregate %+v does not match stats", st.Spans[0])
	}
}

func TestCliqueTraceRoutedAndCharged(t *testing.T) {
	c, ring := newTracedClique(t, Config{PairWords: 1}, 4)
	c.Span("gather")
	if err := c.RouteStep("route", func(x *Ctx) { x.Send((x.Node+1)%4, 7) }); err != nil {
		t.Fatal(err)
	}
	c.Span("finish")
	c.ChargeRounds(2)
	st := c.Stats()
	if st.Rounds != LenzenRounds+2 {
		t.Fatalf("rounds %d, want %d", st.Rounds, LenzenRounds+2)
	}
	evs := ring.Events()
	if len(evs) != 3 {
		t.Fatalf("%d events, want 3 (1 routed + 2 charged)", len(evs))
	}
	if evs[0].Step != "route" || evs[0].Round != LenzenRounds {
		t.Fatalf("routed event %+v", evs[0])
	}
	for i, ev := range evs[1:] {
		if !ev.Charged || ev.Span != "finish" || ev.Sent != nil || ev.Words != 0 {
			t.Fatalf("charged event %d = %+v", i, ev)
		}
	}
	// Span accounting: the routed exchange bills LenzenRounds to "gather",
	// the charged rounds bill to "finish" with no traffic.
	if len(st.Spans) != 2 || st.Spans[0].Span != "gather" || st.Spans[0].Rounds != LenzenRounds {
		t.Fatalf("spans %+v", st.Spans)
	}
	if st.Spans[1].Span != "finish" || st.Spans[1].Rounds != 2 || st.Spans[1].Words != 0 {
		t.Fatalf("spans %+v", st.Spans)
	}
}

func TestCliqueTraceRecoveryDeltas(t *testing.T) {
	plan := &mpc.FaultPlan{Crashes: []mpc.FaultEvent{{Round: 2, Machine: 1}}}
	c, ring := newTracedClique(t, Config{PairWords: 4, Faults: plan}, 3)
	for r := 0; r < 3; r++ {
		if err := c.Step("s", func(x *Ctx) { x.Send(0, uint64(x.Node)) }); err != nil {
			t.Fatal(err)
		}
	}
	evs := ring.Events()
	if len(evs) != 3 {
		t.Fatalf("%d events", len(evs))
	}
	if evs[0].Crashes != 0 || evs[2].Crashes != 0 {
		t.Fatalf("crash charged to the wrong superstep: %+v", evs)
	}
	if evs[1].Crashes != 1 || evs[1].RecoveryRounds == 0 {
		t.Fatalf("round-2 event misses the recovery: %+v", evs[1])
	}
	// Delivered traffic identical to fault-free on every round.
	for i, ev := range evs {
		if ev.Words != 3 || ev.Messages != 3 {
			t.Fatalf("event %d delivery perturbed by recovery: %+v", i, ev)
		}
	}
}

// TestCliqueStepNoAllocWithoutTracer pins the zero-cost-when-disabled
// contract on the clique simulator's commit path: the skew/span accounting
// added by the observability layer must not allocate.
func TestCliqueStepNoAllocWithoutTracer(t *testing.T) {
	c, err := NewCluster(Config{PairWords: 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	step := func() {
		if err := c.Step("bench", func(x *Ctx) { x.Send((x.Node+1)%4, 1, 2) }); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		step() // warm up log/inbox slices
	}
	base := testing.AllocsPerRun(32, step)
	ring := trace.NewRing(8)
	c.SetTracer(ring)
	withTracer := testing.AllocsPerRun(32, step)
	if delta := withTracer - base; delta > 3 {
		t.Fatalf("tracer adds %.1f allocations per step (disabled %.1f, enabled %.1f)",
			delta, base, withTracer)
	}
}
