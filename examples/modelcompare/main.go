// Model comparison: the same deterministic 2-ruling set computation in the
// two models the paper's community works in — near-linear-memory MPC and the
// congested clique. Both run the identical Θ(log log Δ) phase schedule; the
// difference is the cost of fixing each phase's hash seed. In the clique, a
// conditional-expectation chunk is O(1) rounds at any width (candidate
// extensions spread across aggregator nodes), so rounds FALL as the chunk
// width z grows; in MPC, the gather payload grows like 2^z per machine and
// eventually blows the bandwidth budget.
package main

import (
	"fmt"
	"log"

	mprs "github.com/rulingset/mprs"
)

func main() {
	g, err := mprs.BuildGraph("gnp:n=4096,p=0.003", 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input: %v\n\n", g)
	fmt.Printf("%-4s %-22s %-22s %-14s\n", "z", "MPC rounds (peak recv)", "clique rounds (viol.)", "members equal?")

	for _, z := range []int{2, 4, 8} {
		m, err := mprs.DetRulingSet2(g, mprs.Options{Machines: 8, ChunkBits: z})
		if err != nil {
			log.Fatal(err)
		}
		c, err := mprs.CliqueDetRulingSet2(g, mprs.Options{ChunkBits: z})
		if err != nil {
			log.Fatal(err)
		}
		if err := mprs.Check(g, m); err != nil {
			log.Fatal(err)
		}
		if !mprs.IsRulingSet(g, c.Members, 2) {
			log.Fatal("clique output invalid")
		}
		equal := len(m.Members) == len(c.Members)
		if equal {
			for i := range m.Members {
				if m.Members[i] != c.Members[i] {
					equal = false
					break
				}
			}
		}
		fmt.Printf("%-4d %-22s %-22s %-14v\n",
			z,
			fmt.Sprintf("%d (%d words)", m.Stats.Rounds, m.Stats.PeakRecv),
			fmt.Sprintf("%d (%d)", c.Stats.Rounds, len(c.Stats.Violations)),
			equal)
	}

	fmt.Println()
	fmt.Println("reading the table: clique rounds fall as z grows (O(1)-round chunks),")
	fmt.Println("MPC rounds fall too but its gather payload grows 2^z per machine;")
	fmt.Println("the outputs agree whenever both models evaluate chunks of equal width,")
	fmt.Println("because the estimator and tie-breaking are identical.")
}
