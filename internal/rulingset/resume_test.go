package rulingset

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"slices"
	"strconv"
	"testing"

	"github.com/rulingset/mprs/internal/durable"
	"github.com/rulingset/mprs/internal/gen"
	"github.com/rulingset/mprs/internal/mpc"
)

// memSink is an in-memory CheckpointSink for tests that don't need the disk.
type memSink struct {
	rounds []int
	states map[int][][]uint64
}

func (s *memSink) Persist(round int, state [][]uint64) (int64, error) {
	if s.states == nil {
		s.states = make(map[int][][]uint64)
	}
	cp := make([][]uint64, len(state))
	var n int64
	for m, words := range state {
		cp[m] = slices.Clone(words)
		n += int64(8 * len(words))
	}
	s.rounds = append(s.rounds, round)
	s.states[round] = cp
	return n, nil
}

// cancelAfterSink cancels a context once it has persisted k checkpoints —
// a deterministic stand-in for "the process was killed mid-run": the cancel
// lands at a checkpoint barrier, the run stops with a structured error, and
// the durable directory holds everything written so far.
type cancelAfterSink struct {
	mpc.CheckpointSink
	cancel context.CancelFunc
	left   int
}

func (s *cancelAfterSink) Persist(round int, state [][]uint64) (int64, error) {
	n, err := s.CheckpointSink.Persist(round, state)
	if err == nil {
		if s.left--; s.left <= 0 {
			s.cancel()
		}
	}
	return n, err
}

// singleClusterAlgos are the drivers that support durable checkpointing.
func singleClusterAlgos() []algo {
	return []algo{
		{name: "LubyMIS", beta: 1, run: LubyMIS},
		{name: "DetLubyMIS", beta: 1, run: DetLubyMIS},
		{name: "RandRuling2", beta: 2, run: RandRuling2},
		{name: "DetRuling2", beta: 2, run: DetRuling2},
	}
}

// normalizedStats strips the resume-overhead counters (CheckpointBytes,
// ResumeReplayRounds) which — like wall_ms in bench — describe the harness,
// not the committed computation, and legitimately differ between a fresh and
// a resumed run.
func normalizedStats(s mpc.Stats) mpc.Stats {
	s.CheckpointBytes = 0
	s.ResumeReplayRounds = 0
	return s
}

// TestDurableResumeReproducesRun is the tentpole acceptance test at the
// algorithm level: a run is durably checkpointed, "killed" at a checkpoint
// barrier via cooperative cancellation, resumed from the newest valid
// checkpoint on disk — and the resumed run's ruling set and deterministic
// Stats are identical to an uninterrupted run's, with and without an active
// FaultPlan.
func TestDurableResumeReproducesRun(t *testing.T) {
	g := gen.MustBuild("gnp:n=200,p=0.03", 29)
	for _, a := range singleClusterAlgos() {
		for _, faults := range []*mpc.FaultPlan{nil, faultTestPlan()} {
			a, faults := a, faults
			name := a.name
			if faults != nil {
				name += "/under-faults"
			}
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				dir := filepath.Join(t.TempDir(), "ckpt")

				// Uninterrupted reference run. It checkpoints on the same
				// cadence (CheckpointWords is part of the deterministic
				// stats), just never into the directory under test.
				want, err := a.run(g, Options{Seed: 5, Faults: faults, CheckpointEvery: 2, CheckpointSink: &memSink{}})
				if err != nil {
					t.Fatal(err)
				}

				// Interrupted run: durable checkpoints, canceled after two
				// persists.
				store, err := durable.Open(dir, "fp-"+a.name, 0)
				if err != nil {
					t.Fatal(err)
				}
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				_, err = a.run(g, Options{
					Seed:            5,
					Faults:          faults,
					CheckpointEvery: 2,
					Context:         ctx,
					CheckpointSink:  &cancelAfterSink{CheckpointSink: store, cancel: cancel, left: 2},
				})
				if !errors.Is(err, mpc.ErrCanceled) {
					t.Fatalf("interrupted run err = %v, want ErrCanceled", err)
				}
				var ce *mpc.CancelError
				if !errors.As(err, &ce) || ce.Round == 0 {
					t.Fatalf("interrupted run err = %v, want CancelError with committed rounds", err)
				}

				// Resume from the newest durable checkpoint.
				store2, err := durable.Open(dir, "fp-"+a.name, 0)
				if err != nil {
					t.Fatal(err)
				}
				meta, state, err := store2.LoadLatest()
				if err != nil {
					t.Fatal(err)
				}
				got, err := a.run(g, Options{
					Seed:            5,
					Faults:          faults,
					CheckpointEvery: 2,
					CheckpointSink:  store2,
					Resume:          &mpc.ResumeState{Round: meta.Round, State: state},
				})
				if err != nil {
					t.Fatalf("resumed run: %v", err)
				}

				if !reflect.DeepEqual(want.Members, got.Members) {
					t.Fatalf("resumed members diverged:\nwant %v\ngot  %v", want.Members, got.Members)
				}
				if !reflect.DeepEqual(normalizedStats(want.Stats), normalizedStats(got.Stats)) {
					t.Fatalf("resumed deterministic stats diverged:\nwant %+v\ngot  %+v", want.Stats, got.Stats)
				}
				if got.Stats.ResumeReplayRounds != meta.Round {
					t.Fatalf("ResumeReplayRounds = %d, want %d", got.Stats.ResumeReplayRounds, meta.Round)
				}
			})
		}
	}
}

// TestResumeSurvivesTornNewestCheckpoint tears the newest checkpoint file
// after the interruption: LoadLatest must fall back to the previous valid
// one, and the resume must still reproduce the uninterrupted run.
func TestResumeSurvivesTornNewestCheckpoint(t *testing.T) {
	g := gen.MustBuild("gnp:n=150,p=0.04", 31)
	dir := filepath.Join(t.TempDir(), "ckpt")

	want, err := DetRuling2(g, Options{Seed: 7, CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}

	store, err := durable.Open(dir, "fp", 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = DetRuling2(g, Options{
		Seed: 7, CheckpointEvery: 2, Context: ctx,
		CheckpointSink: &cancelAfterSink{CheckpointSink: store, cancel: cancel, left: 3},
	})
	if !errors.Is(err, mpc.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}

	// Tear the newest checkpoint mid-record (simulating a crash during the
	// write that rename-atomicity normally prevents, or post-crash bit rot).
	store2, err := durable.Open(dir, "fp", 0)
	if err != nil {
		t.Fatal(err)
	}
	metaBefore, _, err := store2.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if err := tearNewest(t, dir); err != nil {
		t.Fatal(err)
	}
	meta, state, err := store2.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if meta.Round >= metaBefore.Round {
		t.Fatalf("fallback did not move back: %d -> %d", metaBefore.Round, meta.Round)
	}

	got, err := DetRuling2(g, Options{
		Seed: 7, CheckpointEvery: 2, CheckpointSink: store2,
		Resume: &mpc.ResumeState{Round: meta.Round, State: state},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Members, got.Members) {
		t.Fatalf("members diverged after torn-checkpoint fallback:\nwant %v\ngot  %v", want.Members, got.Members)
	}
}

// TestDurableRejectedByMultiClusterDrivers pins the gate: drivers that chain
// fresh clusters cannot honor a durable resume and must say so instead of
// silently ignoring the options.
func TestDurableRejectedByMultiClusterDrivers(t *testing.T) {
	g := gen.MustBuild("gnp:n=60,p=0.1", 3)
	sink := &memSink{}
	cases := []struct {
		name string
		run  func() error
	}{
		{"DetRulingBeta3", func() error { _, err := DetRulingBeta(g, 3, Options{Seed: 1, CheckpointSink: sink}); return err }},
		{"RandRulingBeta4", func() error { _, err := RandRulingBeta(g, 4, Options{Seed: 1, CheckpointSink: sink}); return err }},
		{"RulingAdaptive", func() error { _, err := DetRulingAdaptive(g, Options{Seed: 1, CheckpointSink: sink}); return err }},
		{"CliqueDetRuling2", func() error { _, err := CliqueDetRuling2(g, Options{Seed: 1, CheckpointSink: sink}); return err }},
		{"ResumeOnly", func() error {
			_, err := DetRulingBeta(g, 3, Options{Seed: 1, Resume: &mpc.ResumeState{Round: 2, State: [][]uint64{{1}}}})
			return err
		}},
	}
	for _, tc := range cases {
		err := tc.run()
		if err == nil {
			t.Errorf("%s accepted durable options", tc.name)
			continue
		}
		if msg := err.Error(); !containsStr(msg, "does not support durable") {
			t.Errorf("%s error %q does not explain the durable gate", tc.name, msg)
		}
	}
	// Beta <= 2 delegates to the single-cluster drivers, which DO support
	// durable options.
	if _, err := DetRulingBeta(g, 2, Options{Seed: 1, CheckpointEvery: 2, CheckpointSink: sink}); err != nil {
		t.Errorf("DetRulingBeta(2) rejected durable options: %v", err)
	}
	if len(sink.rounds) == 0 {
		t.Error("DetRulingBeta(2) persisted no checkpoints")
	}
}

// TestCancellationIsStructured pins the structured-degradation contract at
// the algorithm level: a canceled run returns a *mpc.CancelError whose Stats
// describe the committed prefix, and never a partial Result.
func TestCancellationIsStructured(t *testing.T) {
	g := gen.MustBuild("gnp:n=150,p=0.04", 13)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sink := &memSink{}
	_, err := DetLubyMIS(g, Options{
		Seed: 2, CheckpointEvery: 1, Context: ctx,
		CheckpointSink: &cancelAfterSink{CheckpointSink: sink, cancel: cancel, left: 3},
	})
	var ce *mpc.CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *mpc.CancelError", err)
	}
	if ce.Round < 3 || ce.Stats.Rounds != ce.Round {
		t.Fatalf("CancelError = round %d stats %+v", ce.Round, ce.Stats)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v does not unwrap to context.Canceled", err)
	}
}

// FuzzResumeDeterminism is the tentpole fuzzer: for arbitrary (seed, size,
// algorithm, checkpoint cadence, interruption point, fault rates), resuming
// from any persisted checkpoint reproduces the uninterrupted run's members
// and deterministic stats exactly.
func FuzzResumeDeterminism(f *testing.F) {
	f.Add(int64(1), uint8(40), uint8(0), uint8(2), uint8(0), float64(0))
	f.Add(int64(9), uint8(70), uint8(1), uint8(1), uint8(1), float64(0.1))
	f.Add(int64(-4), uint8(25), uint8(2), uint8(3), uint8(2), float64(0.05))
	f.Add(int64(33), uint8(55), uint8(3), uint8(2), uint8(5), float64(0))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, algoPick, ckptRaw, resumePick uint8, dropRate float64) {
		if dropRate < 0 || dropRate > 1 {
			t.Skip()
		}
		n := int(nRaw)%60 + 2
		g := gen.MustBuild("gnp:n="+strconv.Itoa(n)+",p=0.1", seed)
		algos := singleClusterAlgos()
		a := algos[int(algoPick)%len(algos)]
		var plan *mpc.FaultPlan
		if dropRate > 0 {
			plan = &mpc.FaultPlan{Seed: seed, DropRate: dropRate, Crashes: []mpc.FaultEvent{{Round: 2, Machine: 0}}}
		}
		opts := Options{Seed: seed, Machines: 4, CheckpointEvery: int(ckptRaw)%3 + 1, Faults: plan}

		sink := &memSink{}
		full := opts
		full.CheckpointSink = sink
		want, err := a.run(g, full)
		if err != nil {
			t.Skip() // invalid configs are FuzzFaultDeterminism's business
		}
		if len(sink.rounds) == 0 {
			t.Skip()
		}
		round := sink.rounds[int(resumePick)%len(sink.rounds)]

		resumed := opts
		resumed.Resume = &mpc.ResumeState{Round: round, State: sink.states[round]}
		got, err := a.run(g, resumed)
		if err != nil {
			t.Fatalf("resume from round %d: %v", round, err)
		}
		if !reflect.DeepEqual(want.Members, got.Members) {
			t.Fatalf("resume from round %d changed members: %v vs %v", round, want.Members, got.Members)
		}
		if !reflect.DeepEqual(normalizedStats(want.Stats), normalizedStats(got.Stats)) {
			t.Fatalf("resume from round %d changed stats:\nwant %+v\ngot  %+v", round, want.Stats, got.Stats)
		}
		if got.Stats.ResumeReplayRounds != round {
			t.Fatalf("ResumeReplayRounds = %d, want %d", got.Stats.ResumeReplayRounds, round)
		}
	})
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// tearNewest truncates the newest checkpoint file in dir to half its size.
func tearNewest(t *testing.T, dir string) error {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "ckpt-*.ckpt"))
	if err != nil {
		return err
	}
	if len(names) == 0 {
		return errors.New("no checkpoint files to tear")
	}
	slices.Sort(names)
	newest := names[len(names)-1]
	info, err := os.Stat(newest)
	if err != nil {
		return err
	}
	return os.Truncate(newest, info.Size()/2)
}
