package hash

import (
	"math"
	"math/rand"
	"testing"
)

// TestSegStateMatchesLaws: the SegState fast path (used by the estimator hot
// loops) must agree exactly with the reference BitLaw / PairLaw computations
// for every seed state, including partially fixed segments.
func TestSegStateMatchesLaws(t *testing.T) {
	const n, nbits = 19, 3
	fam, err := NewFamily(n, nbits)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		s := fam.NewSeed()
		prefix := rng.Intn(s.Total() + 1)
		for i := 0; i < prefix; i++ {
			s.SetChunk(i, 1, uint64(rng.Intn(2)))
		}
		s.SetFixed(prefix)
		for tt := 0; tt < nbits; tt++ {
			st := fam.SegState(s, tt)
			for v := 0; v < n; v++ {
				want := fam.BitLaw(s, tt, v).P1()
				if got := fam.P1Seg(st, v); got != want {
					t.Fatalf("trial %d t=%d v=%d prefix=%d: P1Seg=%v, BitLaw=%v",
						trial, tt, v, prefix, got, want)
				}
			}
			for p := 0; p < 20; p++ {
				u := rng.Intn(n)
				v := rng.Intn(n - 1)
				if v >= u {
					v++
				}
				want := fam.PairLaw(s, tt, u, v).P11()
				if got := fam.P11Seg(st, u, v); got != want {
					t.Fatalf("trial %d t=%d (%d,%d) prefix=%d: P11Seg=%v, PairLaw=%v",
						trial, tt, u, v, prefix, got, want)
				}
			}
		}
	}
}

func TestPairLawIsDistribution(t *testing.T) {
	const n, nbits = 11, 2
	fam, err := NewFamily(n, nbits)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 100; trial++ {
		s := fam.NewSeed()
		prefix := rng.Intn(s.Total() + 1)
		for i := 0; i < prefix; i++ {
			s.SetChunk(i, 1, uint64(rng.Intn(2)))
		}
		s.SetFixed(prefix)
		tt := rng.Intn(nbits)
		u := rng.Intn(n)
		v := rng.Intn(n - 1)
		if v >= u {
			v++
		}
		law := fam.PairLaw(s, tt, u, v)
		sum := 0.0
		for a := 0; a < 2; a++ {
			for b := 0; b < 2; b++ {
				if law[a][b] < 0 || law[a][b] > 1 {
					t.Fatalf("probability out of range: %v", law)
				}
				sum += law[a][b]
			}
		}
		if math.Abs(sum-1) > 1e-15 {
			t.Fatalf("pair law sums to %v: %v", sum, law)
		}
		// Marginals must match BitLaw.
		mu := law[1][0] + law[1][1]
		if want := fam.BitLaw(s, tt, u).P1(); math.Abs(mu-want) > 1e-15 {
			t.Fatalf("marginal %v != BitLaw %v", mu, want)
		}
	}
}

func TestBitProbValues(t *testing.T) {
	if (BitProb{Determined: true, Value: 1}).P1() != 1 {
		t.Error("determined-1 law wrong")
	}
	if (BitProb{Determined: true, Value: 0}).P1() != 0 {
		t.Error("determined-0 law wrong")
	}
	if (BitProb{}).P1() != 0.5 {
		t.Error("free law wrong")
	}
}

func TestFamilyAccessors(t *testing.T) {
	fam, err := NewFamily(100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if fam.K() != EncodeBits(100) {
		t.Errorf("K = %d", fam.K())
	}
	if fam.NBits() != 4 {
		t.Errorf("NBits = %d", fam.NBits())
	}
	if fam.SegWidth() != fam.K()+1 {
		t.Errorf("SegWidth = %d", fam.SegWidth())
	}
	if fam.SeedBits() != 4*fam.SegWidth() {
		t.Errorf("SeedBits = %d", fam.SeedBits())
	}
	if _, err := NewFamily(1<<62, 1); err == nil {
		t.Error("oversized encoding accepted")
	}
}

func TestSeedReset(t *testing.T) {
	s := NewSeed(70)
	s.SetChunk(0, 60, ^uint64(0)>>4)
	s.Commit(60)
	s.Reset()
	if s.Fixed() != 0 {
		t.Fatalf("reset left fixed = %d", s.Fixed())
	}
	for i := 0; i < 70; i++ {
		if s.Bit(i) != 0 {
			t.Fatalf("reset left bit %d set", i)
		}
	}
}
