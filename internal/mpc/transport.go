package mpc

import "fmt"

// Transport hooks the superstep message exchange. At every committed Step,
// after the per-destination outboxes have been stable-sorted by sender (the
// schedule-independent canonical order), the cluster hands all M boxes to the
// transport and delivers whatever it returns. The nil transport is the
// in-memory router: boxes are delivered as-is inside this address space.
//
// A transport implementation must preserve the delivery contract exactly —
// the returned slice has one box per destination machine, each box sorted by
// sender with per-sender send order intact, and message payloads
// word-identical to what was sent. Everything downstream (fault accounting,
// budget metering, skew statistics, trace events) runs on the returned boxes,
// so a conforming transport is invisible in every deterministic output: that
// is the cross-backend bit-identity contract the multi-process backend is
// tested against.
//
// round is the model round about to commit (the value Stats.Rounds will take
// once the step commits). Rounds consumed by ChargeRounds create gaps in the
// sequence of exchanged rounds, but the sequence itself is deterministic, so
// distributed implementations may key their wire frames by it.
//
// Exchange is called from the barrier (single-goroutine) phase of Step; it
// never races with machine code.
type Transport interface {
	Exchange(round int, boxes [][]Message) ([][]Message, error)
}

// TransportError reports a superstep whose message exchange failed — a peer
// worker died, a frame failed its checksum, or the supervisor ordered a stop.
// Like CancelError it is a barrier-clean failure: the round was not
// committed, no partial delivery happened, and the carried Stats are a
// complete measurement of the work that did commit.
type TransportError struct {
	// Round is the number of committed supersteps when the exchange failed.
	Round int
	// Stats is the full accumulated statistics at the failure barrier.
	Stats Stats
	// Err is the underlying transport failure.
	Err error
}

// Error implements error.
func (e *TransportError) Error() string {
	return fmt.Sprintf("mpc: transport failed after %d committed rounds: %v", e.Round, e.Err)
}

// Unwrap exposes the underlying transport failure.
func (e *TransportError) Unwrap() error { return e.Err }
