package mpc

import (
	"errors"
	"testing"
)

func TestNewClusterConfig(t *testing.T) {
	tests := []struct {
		name       string
		cfg        Config
		n          int
		wantBudget int
		wantErr    bool
	}{
		{name: "linear default slack", cfg: Config{Machines: 4, Regime: RegimeLinear}, n: 100, wantBudget: 400},
		{name: "linear custom slack", cfg: Config{Machines: 4, Regime: RegimeLinear, LinearSlack: 2}, n: 100, wantBudget: 200},
		{name: "sublinear half", cfg: Config{Machines: 4, Regime: RegimeSublinear, Epsilon: 0.5}, n: 10000, wantBudget: 100},
		{name: "explicit", cfg: Config{Machines: 4, Regime: RegimeExplicit, MemoryWords: 77}, n: 100, wantBudget: 77},
		{name: "default regime is linear", cfg: Config{Machines: 1}, n: 10, wantBudget: 40},
		{name: "zero machines", cfg: Config{}, n: 10, wantErr: true},
		{name: "bad epsilon", cfg: Config{Machines: 2, Regime: RegimeSublinear, Epsilon: 1.5}, n: 10, wantErr: true},
		{name: "bad explicit", cfg: Config{Machines: 2, Regime: RegimeExplicit}, n: 10, wantErr: true},
		{name: "negative n", cfg: Config{Machines: 2}, n: -1, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c, err := NewCluster(tt.cfg, tt.n)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tt.wantErr)
			}
			if err != nil {
				return
			}
			if c.Budget() != tt.wantBudget {
				t.Fatalf("budget = %d, want %d", c.Budget(), tt.wantBudget)
			}
		})
	}
}

func TestOwnerAndRangePartition(t *testing.T) {
	for _, tc := range []struct{ n, m int }{
		{n: 10, m: 3}, {n: 100, m: 7}, {n: 5, m: 8}, {n: 1, m: 1}, {n: 0, m: 2},
	} {
		c, err := NewCluster(Config{Machines: tc.m}, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		covered := 0
		for m := 0; m < tc.m; m++ {
			lo, hi := c.Range(m)
			if hi < lo {
				t.Fatalf("n=%d m=%d: invalid range [%d,%d)", tc.n, tc.m, lo, hi)
			}
			covered += hi - lo
			for v := lo; v < hi; v++ {
				if c.Owner(v) != m {
					t.Fatalf("n=%d m=%d: owner(%d) = %d, want %d", tc.n, tc.m, v, c.Owner(v), m)
				}
			}
		}
		if covered != tc.n {
			t.Fatalf("n=%d m=%d: ranges cover %d", tc.n, tc.m, covered)
		}
	}
}

func TestStepDeliversMessagesDeterministically(t *testing.T) {
	const M = 8
	run := func() []uint64 {
		c, err := NewCluster(Config{Machines: M}, 64)
		if err != nil {
			t.Fatal(err)
		}
		// Every machine sends its id*10+k for k=0,1 to machine (id+1)%M.
		err = c.Step("send", func(x *Ctx) {
			dst := (x.Machine + 1) % M
			x.Send(dst, uint64(x.Machine*10))
			x.Send(dst, uint64(x.Machine*10+1))
		})
		if err != nil {
			t.Fatal(err)
		}
		var seen []uint64
		err = c.Step("recv", func(x *Ctx) {
			if x.Machine == 0 {
				for _, msg := range x.Inbox() {
					seen = append(seen, msg.Payload...)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return seen
	}
	want := run()
	if len(want) != 2 {
		t.Fatalf("machine 0 received %v", want)
	}
	if want[0] != 70 || want[1] != 71 {
		t.Fatalf("per-sender order broken: %v", want)
	}
	for trial := 0; trial < 20; trial++ {
		got := run()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("nondeterministic delivery: %v vs %v", got, want)
			}
		}
	}
}

func TestInboxSortedBySender(t *testing.T) {
	const M = 6
	c, err := NewCluster(Config{Machines: M}, M)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Step("fan-in", func(x *Ctx) {
		x.Send(0, uint64(x.Machine))
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Step("check", func(x *Ctx) {
		if x.Machine != 0 {
			return
		}
		for i, msg := range x.Inbox() {
			if msg.Src != i {
				t.Errorf("inbox[%d].Src = %d", i, msg.Src)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestBandwidthAccounting(t *testing.T) {
	c, err := NewCluster(Config{Machines: 2, Regime: RegimeExplicit, MemoryWords: 4}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Step("burst", func(x *Ctx) {
		if x.Machine == 0 {
			x.Send(1, 1, 2, 3, 4, 5, 6) // 6 words > budget 4
		}
	}); err != nil {
		t.Fatal(err) // non-strict: recorded, not fatal
	}
	st := c.Stats()
	if st.Rounds != 1 {
		t.Fatalf("rounds = %d", st.Rounds)
	}
	if st.Words != 6 || st.PeakSent != 6 || st.PeakRecv != 6 {
		t.Fatalf("words=%d peakSent=%d peakRecv=%d", st.Words, st.PeakSent, st.PeakRecv)
	}
	if len(st.Violations) != 2 { // send by 0 and recv by 1
		t.Fatalf("violations = %v", st.Violations)
	}
}

func TestStrictModeFails(t *testing.T) {
	c, err := NewCluster(Config{Machines: 2, Regime: RegimeExplicit, MemoryWords: 2, Strict: true}, 8)
	if err != nil {
		t.Fatal(err)
	}
	err = c.Step("burst", func(x *Ctx) {
		if x.Machine == 0 {
			x.Send(1, 1, 2, 3)
		}
	})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("strict violation err = %v, want ErrBudget", err)
	}
}

func TestResidentAccounting(t *testing.T) {
	c, err := NewCluster(Config{Machines: 2, Regime: RegimeExplicit, MemoryWords: 100}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetResident(0, 60); err != nil {
		t.Fatal(err)
	}
	if err := c.AddResident(0, 30); err != nil {
		t.Fatal(err)
	}
	if c.Resident(0) != 90 {
		t.Fatalf("resident = %d", c.Resident(0))
	}
	if err := c.AddResident(0, 30); err != nil { // 120 > 100, non-strict
		t.Fatal(err)
	}
	st := c.Stats()
	if st.PeakResident != 120 || len(st.Violations) != 1 {
		t.Fatalf("peak=%d violations=%v", st.PeakResident, st.Violations)
	}
}

func TestChargeRoundsAndMergeStats(t *testing.T) {
	c, err := NewCluster(Config{Machines: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ChargeRounds("model", 3); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Rounds != 3 {
		t.Fatalf("charged rounds = %d", c.Stats().Rounds)
	}
	a := Stats{Rounds: 2, Words: 10, PeakSent: 5, Violations: []Violation{{Round: 1}},
		RecoveredCrashes: 1, RecoveryRounds: 2, ReplayedWords: 3, DroppedMessages: 4}
	b := Stats{Rounds: 3, Words: 7, PeakSent: 9, RecoveryRounds: 1, StallRounds: 2}
	m := MergeStats(a, b)
	if m.Rounds != 5 || m.Words != 17 || m.PeakSent != 9 || len(m.Violations) != 1 {
		t.Fatalf("merged = %+v", m)
	}
	if m.RecoveredCrashes != 1 || m.RecoveryRounds != 3 || m.ReplayedWords != 3 ||
		m.DroppedMessages != 4 || m.StallRounds != 2 {
		t.Fatalf("merged fault fields = %+v", m)
	}
}

func TestChargeRoundsNegative(t *testing.T) {
	c, err := NewCluster(Config{Machines: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ChargeRounds("model", -2); err != nil { // non-strict: recorded
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Rounds != 0 {
		t.Fatalf("negative charge changed rounds: %d", st.Rounds)
	}
	if len(st.Violations) != 1 || st.Violations[0].Kind != "rounds" {
		t.Fatalf("violations = %v", st.Violations)
	}

	strict, err := NewCluster(Config{Machines: 1, Strict: true}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := strict.ChargeRounds("model", -1); !errors.Is(err, ErrBudget) {
		t.Fatalf("strict negative charge err = %v, want ErrBudget", err)
	}
}

func TestRegimeString(t *testing.T) {
	if RegimeLinear.String() != "linear" || RegimeSublinear.String() != "sublinear" || RegimeExplicit.String() != "explicit" {
		t.Fatal("regime strings wrong")
	}
}
