package rulingset

import (
	"reflect"
	"testing"

	"github.com/rulingset/mprs/internal/gen"
	"github.com/rulingset/mprs/internal/graph"
)

func TestAdaptiveHugeBudgetIsExactMIS(t *testing.T) {
	g := gen.MustBuild("gnp:n=400,p=0.02", 31)
	for _, det := range []bool{false, true} {
		run := RandRulingAdaptive
		if det {
			run = DetRulingAdaptive
		}
		res, err := run(g, Options{ResidualBudget: 1 << 30, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.Beta != 1 {
			t.Fatalf("det=%v: huge budget chose beta %d, want 1 (exact MIS)", det, res.Beta)
		}
		if err := Check(g, res); err != nil {
			t.Fatal(err)
		}
		if res.ResidualN != g.N() {
			t.Fatalf("det=%v: residual n = %d, want the whole graph", det, res.ResidualN)
		}
	}
}

func TestAdaptiveBetaGrowsAsBudgetShrinks(t *testing.T) {
	g := gen.MustBuild("gnp:n=2000,p=0.008", 32)
	inputWords := g.N() + 2*g.M()
	budgets := []int{inputWords * 2, inputWords / 4, inputWords / 40}
	prevBeta := 0
	for _, budget := range budgets {
		res, err := DetRulingAdaptive(g, Options{ResidualBudget: budget, ChunkBits: 4})
		if err != nil {
			t.Fatal(err)
		}
		if err := Check(g, res); err != nil {
			t.Fatalf("budget=%d: %v", budget, err)
		}
		if res.Beta < prevBeta {
			t.Fatalf("budget=%d: beta %d decreased below %d as budget shrank", budget, res.Beta, prevBeta)
		}
		// The fit criterion must actually hold for the shipped instance.
		if got := res.ResidualN + 2*res.ResidualM; got > budget && res.Beta <= _maxAdaptiveLevels {
			t.Fatalf("budget=%d: shipped %d words", budget, got)
		}
		prevBeta = res.Beta
	}
	if prevBeta < 2 {
		t.Fatalf("smallest budget still solved at beta %d; test graph too small", prevBeta)
	}
}

func TestAdaptiveDeterministic(t *testing.T) {
	g := gen.MustBuild("powerlaw:n=800,gamma=2.5,avg=8", 33)
	budget := (g.N() + 2*g.M()) / 8
	a, err := DetRulingAdaptive(g, Options{ResidualBudget: budget, ChunkBits: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := DetRulingAdaptive(g, Options{ResidualBudget: budget, ChunkBits: 4, Seed: 99, Machines: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Members, b.Members) || a.Beta != b.Beta {
		t.Fatal("adaptive deterministic run varied with seed/machines")
	}
}

func TestAdaptiveDefaultBudgetIsClusterS(t *testing.T) {
	// With the default linear-regime budget S = 4n >= n + 2m on a sparse
	// graph, the adaptive algorithm should solve immediately (beta 1).
	g := gen.MustBuild("gnp:n=500,p=0.002", 34)
	if g.N()+2*g.M() > 4*g.N() {
		t.Skip("workload denser than expected")
	}
	res, err := DetRulingAdaptive(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Beta != 1 {
		t.Fatalf("beta = %d, want 1", res.Beta)
	}
	if err := Check(g, res); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveStallForcesSolve(t *testing.T) {
	// Under the zero-seed ablation nothing is ever marked, the candidate
	// graph never shrinks, and the stall detector must force a solve on the
	// next level instead of looping.
	g := gen.MustBuild("gnp:n=300,p=0.03", 35)
	res, err := DetRulingAdaptive(g, Options{
		ResidualBudget: 10, // unreachable
		SeedPolicy:     SeedZero,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(g, res); err != nil {
		t.Fatal(err)
	}
	if res.Beta > 3 {
		t.Fatalf("stall not detected promptly: beta %d", res.Beta)
	}
}

func TestAdaptiveEmptyGraph(t *testing.T) {
	g := graph.MustNew(0, nil)
	res, err := DetRulingAdaptive(g, Options{})
	if err != nil || len(res.Members) != 0 {
		t.Fatalf("empty graph: %v %v", res.Members, err)
	}
}
