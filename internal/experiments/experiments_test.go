package experiments

import (
	"strings"
	"testing"
)

func TestIDsAndDescribe(t *testing.T) {
	ids := IDs()
	if len(ids) != 18 {
		t.Fatalf("have %d experiments, want 18", len(ids))
	}
	for _, id := range ids {
		if Describe(id) == "" {
			t.Errorf("%s has no description", id)
		}
	}
	if Describe("nope") != "" {
		t.Error("unknown id described")
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("T99", Config{Quick: true}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestAllExperimentsQuick runs every experiment in quick mode and checks the
// report structure and the shape notes.
func TestAllExperimentsQuick(t *testing.T) {
	for _, id := range IDs() {
		t.Run(id, func(t *testing.T) {
			rep, err := Run(id, Config{Quick: true, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if rep.ID != id {
				t.Fatalf("report id %q", rep.ID)
			}
			if len(rep.Tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tb := range rep.Tables {
				if len(tb.Rows) == 0 {
					t.Fatalf("table %q empty", tb.Title)
				}
			}
			if len(rep.Notes) == 0 {
				t.Fatal("no shape notes")
			}
			var b strings.Builder
			if err := rep.Render(&b); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(b.String(), id+":") {
				t.Fatalf("render missing header:\n%s", b.String())
			}
			// Shape notes must not report a failed prediction (": false").
			// T7's speedup note is host-dependent and exempt.
			if id != "T7" {
				for _, n := range rep.Notes {
					if strings.HasSuffix(n, "false") {
						t.Errorf("prediction failed: %s", n)
					}
				}
			}
		})
	}
}
