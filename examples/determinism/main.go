// Determinism: the property the paper buys. Randomized MPC algorithms give
// different outputs on different seeds (a reproducibility and debugging
// headache in production pipelines); the derandomized algorithms return the
// same ruling set on every run and on every cluster shape.
package main

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"log"

	mprs "github.com/rulingset/mprs"
)

func fingerprint(members []int32) string {
	h := sha256.New()
	var buf [4]byte
	for _, v := range members {
		binary.LittleEndian.PutUint32(buf[:], uint32(v))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%x", h.Sum(nil))[:16]
}

func main() {
	g, err := mprs.BuildGraph("powerlaw:n=8000,gamma=2.5,avg=8", 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input: %v\n\n", g)

	fmt.Println("randomized 2-ruling set across seeds:")
	seen := make(map[string]bool)
	for seed := int64(1); seed <= 4; seed++ {
		res, err := mprs.RulingSet2(g, mprs.Options{Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		fp := fingerprint(res.Members)
		seen[fp] = true
		fmt.Printf("  seed=%d  members=%-5d fingerprint=%s\n", seed, len(res.Members), fp)
	}
	fmt.Printf("  -> %d distinct outputs from 4 seeds\n\n", len(seen))

	fmt.Println("deterministic 2-ruling set across seeds AND machine counts:")
	var detFP string
	consistent := true
	for _, cfg := range []struct {
		seed     int64
		machines int
	}{{seed: 1, machines: 8}, {seed: 99, machines: 8}, {seed: 1, machines: 3}, {seed: 7, machines: 16}} {
		res, err := mprs.DetRulingSet2(g, mprs.Options{Seed: cfg.seed, Machines: cfg.machines, ChunkBits: 4})
		if err != nil {
			log.Fatal(err)
		}
		fp := fingerprint(res.Members)
		if detFP == "" {
			detFP = fp
		} else if fp != detFP {
			consistent = false
		}
		fmt.Printf("  seed=%-3d machines=%-3d members=%-5d fingerprint=%s\n",
			cfg.seed, cfg.machines, len(res.Members), fp)
	}
	if !consistent {
		log.Fatal("deterministic outputs diverged!")
	}
	fmt.Println("  -> one output, bit-for-bit, regardless of seed or cluster shape")
}
