// Package globalrand is a negative fixture for the globalrand analyzer.
package globalrand

import "math/rand"

// globals draw from the shared process-wide source: flagged.
func globals() int {
	x := rand.Intn(10)                 // want `math/rand\.Intn draws from the shared global source`
	f := rand.Float64()                // want `math/rand\.Float64 draws from the shared global source`
	rand.Shuffle(3, func(i, j int) {}) // want `math/rand\.Shuffle draws from the shared global source`
	return x + int(f)
}

// seeded threads an explicitly seeded *rand.Rand: the sanctioned route.
func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// passthrough methods on a threaded generator are fine.
func passthrough(rng *rand.Rand) float64 {
	return rng.Float64()
}
