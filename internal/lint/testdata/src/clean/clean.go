// Package clean is a fixture that violates none of the determinism
// invariants: every analyzer must report zero findings on it.
package clean

import (
	"math/rand"
	"sort"
)

// Degrees sums slice-held values after sorting collected map keys.
func Degrees(adj map[int][]int) []int {
	ids := make([]int, 0, len(adj))
	for v := range adj {
		ids = append(ids, v)
	}
	sort.Ints(ids)

	out := make([]int, 0, len(ids))
	for _, v := range ids {
		out = append(out, len(adj[v]))
	}
	return out
}

// Perm draws from an explicitly seeded generator.
func Perm(n int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Perm(n)
}

// Mean accumulates floats over a slice, in index order.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
