// Package maporder is a negative fixture for the maporder analyzer.
package maporder

import (
	"sort"
)

// plainRange iterates values directly: flagged.
func plainRange(m map[string]int) int {
	total := 0
	for _, v := range m { // want `map iteration order is nondeterministic`
		total += v
	}
	return total
}

// keyAndValue uses both key and value: flagged (not a pure key collection).
func keyAndValue(m map[string]int) []string {
	var out []string
	for k, v := range m { // want `map iteration order is nondeterministic`
		if v > 0 {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// collectNoSort collects keys but never sorts them: flagged.
func collectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order is nondeterministic`
		keys = append(keys, k)
	}
	return keys
}

// sortedCollect is the canonical allowed shape: keys collected into a slice
// that is sorted before use.
func sortedCollect(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// slicesSorted uses sort.Slice on the collected keys: also allowed.
func slicesSorted(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// sliceRange ranges over a slice: never flagged.
func sliceRange(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}
