package durable

import (
	"errors"
	"io"
	"os"
)

// FS abstracts the handful of filesystem operations the Store performs — one
// method per os call site, same names, same semantics — so fault-injection
// harnesses (internal/chaos) can interpose on exactly the syscalls whose
// failure modes the checkpoint format is designed to survive: torn writes,
// ENOSPC, fsync errors, and a crash between temp write and rename. OSFS is
// the production implementation; everything in this package routes through
// an FS, so injected faults exercise the real Persist/LoadLatest code paths,
// not copies of them.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	// OpenFile opens for writing (Persist's temp files).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Open opens for reading; also used on directories for fsync.
	Open(name string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm os.FileMode) error
	ReadDir(name string) ([]os.DirEntry, error)
}

// File is the slice of *os.File the Store needs.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
}

// OSFS is the real filesystem.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// OpenFile implements FS.
func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// Open implements FS.
func (OSFS) Open(name string) (File, error) { return os.Open(name) }

// Rename implements FS.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// ReadFile implements FS.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// WriteFile implements FS.
func (OSFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}

// ReadDir implements FS.
func (OSFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

// ErrPersist is wrapped by every Persist failure. It marks the error as
// retryable in the crash-recovery sense: the durable directory still holds
// the previous valid checkpoint, so a supervisor can restart the worker and
// resume from it instead of treating the failure as deterministic (a
// deterministic failure would recur on every replica; a full disk or a
// failing fsync is a property of this process's environment and attempt).
var ErrPersist = errors.New("durable: persist failed")
