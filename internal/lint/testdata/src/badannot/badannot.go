// Package badannot holds malformed //detlint:ok annotations. Each one is
// itself reported (analyzer "detlint") and suppresses nothing; the expected
// messages are asserted in lint_test.go because a want-comment cannot share
// a line with the annotation comment it describes.
package badannot

// unknownName names an analyzer that does not exist.
func unknownName(m map[string]int) int {
	n := 0
	//detlint:ok frobnicator -- no such analyzer
	for range m {
		n++
	}
	return n
}

// noNames gives a justification but no analyzer list.
func noNames() int {
	//detlint:ok -- just because
	return 1
}

// noReason omits the mandatory -- justification.
func noReason(m map[string]int) int {
	n := 0
	//detlint:ok maporder
	for range m {
		n++
	}
	return n
}
