package gen

import "testing"

// FuzzParseSpecBuild: arbitrary spec strings must parse-or-error without
// panics, and every successful small build must validate.
func FuzzParseSpecBuild(f *testing.F) {
	f.Add("gnp:n=50,p=0.1")
	f.Add("grid:rows=4,cols=4,wrap=true")
	f.Add("powerlaw:n=60,gamma=2.5,avg=4")
	f.Add("geometric:n=40,r=0.2")
	f.Add("star")
	f.Add(":")
	f.Add("x:=")
	f.Add("gnp:n=-5")
	f.Add("complete:n=99999999")
	f.Fuzz(func(t *testing.T, input string) {
		spec, err := ParseSpec(input)
		if err != nil {
			return
		}
		// Clamp sizes so fuzzing stays fast: reject anything that asks for a
		// big instance before building.
		for _, key := range []string{"n", "rows", "cols", "spine", "k", "a", "b", "d"} {
			if v, err := spec.intParam(key, 0); err != nil || v > 300 || v < 0 {
				return
			}
		}
		g, err := spec.Build(1)
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("spec %q built invalid graph: %v", input, err)
		}
	})
}
