package transport

import (
	"errors"
	"io"
	"sync"
	"testing"

	"github.com/rulingset/mprs/internal/mpc"
)

// testBoxes builds a deterministic per-destination message layout over total
// machines, the same on every "worker" — the replicated-execution invariant.
func testBoxes(total, round int) [][]mpc.Message {
	boxes := make([][]mpc.Message, total)
	for dst := 0; dst < total; dst++ {
		for src := 0; src < total; src++ {
			if (src+dst+round)%3 == 0 {
				boxes[dst] = append(boxes[dst], mpc.Message{
					Src:     src,
					Payload: []uint64{uint64(round), uint64(src)<<32 | uint64(dst)},
				})
			}
		}
	}
	return boxes
}

func TestEncodeVerifyRoundtrip(t *testing.T) {
	const total, workers = 10, 3
	boxes := testBoxes(total, 1)
	for w := 0; w < workers; w++ {
		owns := func(src int) bool { return OwnerOf(src, total, workers) == w }
		payload := encodeOwned(boxes, owns)
		if err := verifyOwned(boxes, owns, payload); err != nil {
			t.Fatalf("worker %d: self-verify: %v", w, err)
		}
	}
}

func TestVerifyDetectsDivergence(t *testing.T) {
	const total, workers = 8, 2
	owns := func(src int) bool { return OwnerOf(src, total, workers) == 0 }
	payload := encodeOwned(testBoxes(total, 2), owns)

	// A replica whose local state diverged by a single payload word must be
	// caught by the word-for-word comparison.
	mutated := testBoxes(total, 2)
	for dst := range mutated {
		for i := range mutated[dst] {
			if owns(mutated[dst][i].Src) {
				mutated[dst][i].Payload[0] ^= 1
				if err := verifyOwned(mutated, owns, payload); !errors.Is(err, ErrDiverged) {
					t.Fatalf("mutated word not caught: %v", err)
				}
				return
			}
		}
	}
	t.Fatal("no owned message to mutate")
}

func TestVerifyRejectsMalformedPayload(t *testing.T) {
	const total, workers = 6, 2
	boxes := testBoxes(total, 3)
	owns := func(src int) bool { return OwnerOf(src, total, workers) == 0 }
	payload := encodeOwned(boxes, owns)
	// Truncations decode-fail or verify-fail; either way an error, no panic.
	for cut := 0; cut < len(payload); cut++ {
		if err := verifyOwned(boxes, owns, payload[:cut]); err == nil {
			t.Fatalf("truncated payload at %d accepted", cut)
		}
	}
	// Trailing garbage is an error too.
	if err := verifyOwned(boxes, owns, append(append([]byte(nil), payload...), 0x01)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// bufPipe is an unbounded in-memory byte pipe: writes never block, reads
// block until data arrives. Both workers in the crossed-pipe tests write
// their frame before reading the peer's; a synchronous io.Pipe would
// deadlock there (the supervisor's buffered writer queues play this role in
// production).
type bufPipe struct {
	mu   sync.Mutex
	cond *sync.Cond
	buf  []byte
}

func newBufPipe() *bufPipe {
	p := &bufPipe{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

func (p *bufPipe) Write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.buf = append(p.buf, b...)
	p.cond.Broadcast()
	return len(b), nil
}

func (p *bufPipe) Read(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.buf) == 0 {
		p.cond.Wait()
	}
	n := copy(b, p.buf)
	p.buf = p.buf[n:]
	return n, nil
}

// TestWorkerExchange runs two Workers over crossed pipes — each one's writes
// are the other's reads, no hub — and checks a multi-round exchange delivers
// the (verified) local boxes unchanged.
func TestWorkerExchange(t *testing.T) {
	const total = 5
	p01 := newBufPipe() // worker 0 -> worker 1
	p10 := newBufPipe() // worker 1 -> worker 0
	w0, err := NewWorker(NewConn(p10, p01), 0, 2, total, 0)
	if err != nil {
		t.Fatal(err)
	}
	w1, err := NewWorker(NewConn(p01, p10), 1, 2, total, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, wk := range []*Worker{w0, w1} {
		wg.Add(1)
		go func(wk *Worker) {
			defer wg.Done()
			for round := 1; round <= 4; round++ {
				in := testBoxes(total, round)
				out, err := wk.Exchange(round, in)
				if err != nil {
					t.Errorf("round %d: %v", round, err)
					return
				}
				want := testBoxes(total, round)
				for dst := range want {
					if len(out[dst]) != len(want[dst]) {
						t.Errorf("round %d dst %d: %d messages, want %d", round, dst, len(out[dst]), len(want[dst]))
						return
					}
				}
			}
		}(wk)
	}
	wg.Wait()
}

// TestWorkerExchangeDiverged crosses two workers whose round-2 state differs
// by one word: both must detect the divergence rather than deliver.
func TestWorkerExchangeDiverged(t *testing.T) {
	const total = 4
	p01 := newBufPipe()
	p10 := newBufPipe()
	w0, err := NewWorker(NewConn(p10, p01), 0, 2, total, 0)
	if err != nil {
		t.Fatal(err)
	}
	w1, err := NewWorker(NewConn(p01, p10), 1, 2, total, 0)
	if err != nil {
		t.Fatal(err)
	}

	errs := make(chan error, 2)
	var wg sync.WaitGroup
	run := func(wk *Worker, mutate bool) {
		defer wg.Done()
		boxes := testBoxes(total, 1)
		if mutate {
		mutated:
			for dst := range boxes {
				for i := range boxes[dst] {
					boxes[dst][i].Payload[0] ^= 1
					break mutated
				}
			}
		}
		_, err := wk.Exchange(1, boxes)
		errs <- err
	}
	wg.Add(2)
	go run(w0, false)
	go run(w1, true)
	wg.Wait()
	close(errs)
	diverged := 0
	for err := range errs {
		if errors.Is(err, ErrDiverged) {
			diverged++
		}
	}
	if diverged == 0 {
		t.Fatal("neither worker detected the divergence")
	}
}

// TestWorkerJoinAfter: rounds at or below the join round never touch the
// wire — a restarted worker replays them locally.
func TestWorkerJoinAfter(t *testing.T) {
	blocked := &blockingWriter{}
	wk, err := NewWorker(NewConn(failReader{}, blocked), 1, 3, 9, 5)
	if err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 5; round++ {
		boxes := testBoxes(9, round)
		out, err := wk.Exchange(round, boxes)
		if err != nil {
			t.Fatalf("replayed round %d: %v", round, err)
		}
		if len(out) != 9 {
			t.Fatalf("round %d: %d boxes", round, len(out))
		}
	}
	if blocked.writes != 0 {
		t.Fatalf("replayed rounds wrote %d frames to the wire", blocked.writes)
	}
}

type blockingWriter struct{ writes int }

func (b *blockingWriter) Write(p []byte) (int, error) { b.writes++; return len(p), nil }

type failReader struct{}

func (failReader) Read([]byte) (int, error) { return 0, io.ErrUnexpectedEOF }
