package durable

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// fuzzSeeds are valid encoded checkpoints of assorted shapes, so the fuzzer
// starts from inputs that reach deep into Decode instead of dying at the
// magic check.
func fuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	var seeds [][]byte
	for _, state := range [][][]uint64{
		{},
		{{}},
		{{1, 2, 3}, {4}, {}},
		{{0xFFFFFFFFFFFFFFFF, 0}, {42}},
	} {
		var buf bytes.Buffer
		if _, err := Encode(&buf, Meta{Round: 7, Fingerprint: "fuzz/1 cfg"}, state); err != nil {
			tb.Fatalf("encode seed: %v", err)
		}
		seeds = append(seeds, buf.Bytes())
	}
	return seeds
}

// FuzzDecode feeds arbitrary bytes — seeded with valid checkpoints, which
// the fuzzer then truncates, bit-flips and splices — through Decode. The
// durable reader sits on the crash-recovery path: it must never panic on a
// torn or corrupted file, and anything it does accept must be internally
// consistent, because the Store falls back across checkpoint files on
// ErrCorrupt and the resume path trusts what Decode returns.
func FuzzDecode(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
		// Hand-built corruptions as extra seeds: truncations at record
		// boundaries and a flipped payload bit.
		if len(seed) > 20 {
			f.Add(seed[:len(seed)-1])
			f.Add(seed[:20])
			flipped := append([]byte(nil), seed...)
			flipped[len(flipped)-3] ^= 0x10
			f.Add(flipped)
		}
	}
	f.Add([]byte{})
	f.Add([]byte(Schema))

	f.Fuzz(func(t *testing.T, data []byte) {
		meta, state, err := Decode(bytes.NewReader(data))
		if err != nil {
			// Every rejection must be the documented sentinel, so the Store's
			// fall-back-to-older-checkpoint logic can classify it.
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Decode error is not ErrCorrupt: %v", err)
			}
			return
		}
		// Accepted checkpoints must be self-consistent.
		if meta.Schema != Schema {
			t.Fatalf("accepted checkpoint with schema %q", meta.Schema)
		}
		if meta.Machines != len(state) {
			t.Fatalf("meta.Machines %d != %d state records", meta.Machines, len(state))
		}
		var words int64
		for _, s := range state {
			words += int64(len(s))
		}
		if words != meta.StateWords {
			t.Fatalf("meta.StateWords %d != %d decoded words", meta.StateWords, words)
		}
		// And a decode-encode-decode roundtrip must be stable.
		var buf bytes.Buffer
		if _, err := Encode(&buf, meta, state); err != nil {
			t.Fatalf("re-encode accepted checkpoint: %v", err)
		}
		meta2, state2, err := Decode(&buf)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if meta2.Machines != meta.Machines || meta2.StateWords != meta.StateWords || meta2.Round != meta.Round {
			t.Fatalf("roundtrip meta drifted: %+v vs %+v", meta2, meta)
		}
		for m := range state {
			if len(state2[m]) != len(state[m]) {
				t.Fatalf("roundtrip state %d drifted", m)
			}
			for i := range state[m] {
				if state2[m][i] != state[m][i] {
					t.Fatalf("roundtrip word %d/%d drifted", m, i)
				}
			}
		}
	})
}

// TestDecodeExhaustiveTruncation runs every truncation point of a valid
// checkpoint through Decode — deterministic coverage of what the fuzzer
// finds probabilistically: truncation must always be ErrCorrupt, never a
// panic or silent short state.
func TestDecodeExhaustiveTruncation(t *testing.T) {
	for _, seed := range fuzzSeeds(t) {
		for cut := 0; cut < len(seed); cut++ {
			if _, _, err := Decode(bytes.NewReader(seed[:cut])); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("truncation at %d/%d: %v, want ErrCorrupt", cut, len(seed), err)
			}
		}
		if _, _, err := Decode(bytes.NewReader(seed)); err != nil {
			t.Fatalf("intact seed rejected: %v", err)
		}
		// Trailing garbage after a complete checkpoint is corruption too.
		if _, _, err := Decode(io.MultiReader(bytes.NewReader(seed), bytes.NewReader([]byte{0}))); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("trailing byte accepted: %v", err)
		}
	}
}

// TestDecodeExhaustiveBitFlips flips every bit of a small valid checkpoint:
// each flip must be rejected as ErrCorrupt or (for flips inside the JSON
// meta record that survive the CRC — impossible — or inside ignored JSON
// fields — also CRC-guarded) still decode to a consistent result. With
// CRC-32C over every record and the magic checked byte-for-byte, a single
// bit flip can never be silently accepted.
func TestDecodeExhaustiveBitFlips(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Encode(&buf, Meta{Round: 3}, [][]uint64{{1, 2}, {3}}); err != nil {
		t.Fatal(err)
	}
	seed := buf.Bytes()
	for i := range seed {
		for bit := 0; bit < 8; bit++ {
			dam := append([]byte(nil), seed...)
			dam[i] ^= 1 << bit
			if _, _, err := Decode(bytes.NewReader(dam)); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("bit flip at byte %d bit %d accepted: %v", i, bit, err)
			}
		}
	}
}
