//go:build unix

package supervise

import (
	"os/exec"
	"syscall"
)

// setProcGroup puts the worker in its own process group, so a kill reaches
// the worker and anything it spawned — no orphans surviving a restart.
func setProcGroup(cmd *exec.Cmd) {
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
}

// killProcGroup SIGKILLs the worker's whole process group, falling back to
// the process itself when the group kill fails (already reaped, or the group
// was never created).
func killProcGroup(cmd *exec.Cmd) {
	if cmd == nil || cmd.Process == nil {
		return
	}
	if err := syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL); err != nil {
		if kerr := cmd.Process.Kill(); kerr != nil {
			_ = kerr // already exited; nothing left to kill
		}
	}
}
