//go:build !unix

package supervise

import "os/exec"

// setProcGroup is a no-op on platforms without process groups.
func setProcGroup(cmd *exec.Cmd) {}

// killProcGroup kills the worker process itself; descendants may survive on
// platforms without process groups.
func killProcGroup(cmd *exec.Cmd) {
	if cmd == nil || cmd.Process == nil {
		return
	}
	if err := cmd.Process.Kill(); err != nil {
		_ = err // already exited; nothing left to kill
	}
}
