// Command traceview renders a JSONL superstep trace (produced by
// `mprs run -trace file=...`) into a human-readable performance report:
// per-span aggregates, the critical (heaviest-loaded) machine per round, and
// the top-k heaviest supersteps.
//
// Usage:
//
//	traceview trace.jsonl            # text report
//	traceview -json trace.jsonl     # machine-readable report
//	traceview -top 5 trace.jsonl    # top-5 heaviest supersteps
//	traceview -version
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/rulingset/mprs/internal/buildinfo"
	"github.com/rulingset/mprs/internal/metrics"
	"github.com/rulingset/mprs/internal/supervise"
	"github.com/rulingset/mprs/internal/telemetry"
	"github.com/rulingset/mprs/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "traceview:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("traceview", flag.ContinueOnError)
	var (
		asJSON  = fs.Bool("json", false, "emit the report as JSON instead of text")
		topK    = fs.Int("top", 10, "number of heaviest supersteps to list")
		version = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, buildinfo.CLIVersion("traceview"))
		return nil
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: traceview [-json] [-top k] trace.jsonl")
	}
	// A supervisor lifecycle stream gets the restart-timeline report and a
	// flight-recorder artifact gets the crash post-mortem; anything else goes
	// down the superstep-trace path (whose reader validates the schema
	// itself).
	switch schema, _ := sniffSchema(fs.Arg(0)); schema {
	case supervise.LifecycleSchema:
		rep, err := readLifecycle(fs.Arg(0))
		if err != nil {
			return err
		}
		if *asJSON {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			return enc.Encode(rep)
		}
		return renderLifecycle(out, rep)
	case telemetry.FlightSchema:
		rep, err := readFlight(fs.Arg(0))
		if err != nil {
			return err
		}
		if *asJSON {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			return enc.Encode(rep)
		}
		return renderFlight(out, rep)
	}
	hdr, evs, err := trace.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	rep := analyze(hdr, evs, *topK)
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	return render(out, rep)
}

// Report is the analysis result for one trace.
type Report struct {
	Header    trace.Header `json:"header"`
	Rounds    int          `json:"rounds"`
	Charged   int          `json:"charged_rounds"`
	Messages  int64        `json:"messages"`
	Words     int64        `json:"words"`
	Spans     []SpanStat   `json:"spans"`
	Critical  []Critical   `json:"critical,omitempty"`
	Heaviest  []Heavy      `json:"heaviest,omitempty"`
	Recovery  RecoveryStat `json:"recovery"`
	MaxGiniS  float64      `json:"max_gini_sent"`
	MaxGiniR  float64      `json:"max_gini_recv"`
	WorstSkew string       `json:"worst_skew_span,omitempty"` // span holding the max Gini
}

// SpanStat aggregates the supersteps of one span, in first-appearance order.
type SpanStat struct {
	Span     string  `json:"span"`
	Rounds   int     `json:"rounds"`
	Charged  int     `json:"charged_rounds"`
	Messages int64   `json:"messages"`
	Words    int64   `json:"words"`
	Share    float64 `json:"words_share"` // fraction of total words
	MaxSent  int     `json:"max_sent"`
	MaxRecv  int     `json:"max_recv"`
	GiniSent float64 `json:"gini_sent"` // worst per-round value within the span
	GiniRecv float64 `json:"gini_recv"`
}

// Critical is the heaviest-loaded machine of one round (argmax of sent+recv
// words; ties break to the lowest machine id, so the report is deterministic).
type Critical struct {
	Round   int    `json:"round"`
	Span    string `json:"span"`
	Machine int    `json:"machine"`
	Sent    int    `json:"sent"`
	Recv    int    `json:"recv"`
}

// Heavy is one of the top-k supersteps by words moved.
type Heavy struct {
	Round int     `json:"round"`
	Step  string  `json:"step"`
	Span  string  `json:"span"`
	Words int64   `json:"words"`
	Gini  float64 `json:"gini_sent"`
}

// RecoveryStat totals the fault/recovery counters across the trace.
type RecoveryStat struct {
	Crashes        int   `json:"crashes,omitempty"`
	RecoveryRounds int   `json:"recovery_rounds,omitempty"`
	ReplayedWords  int64 `json:"replayed_words,omitempty"`
	Dropped        int   `json:"dropped,omitempty"`
	Duplicated     int   `json:"duplicated,omitempty"`
	Stalls         int   `json:"stalls,omitempty"`
}

func analyze(hdr trace.Header, evs []trace.Event, topK int) Report {
	rep := Report{Header: hdr}
	spanIdx := map[string]int{}
	for _, ev := range evs {
		rep.Rounds++
		if ev.Charged {
			rep.Charged++
		}
		rep.Messages += int64(ev.Messages)
		rep.Words += int64(ev.Words)
		rep.Recovery.Crashes += ev.Crashes
		rep.Recovery.RecoveryRounds += ev.RecoveryRounds
		rep.Recovery.ReplayedWords += ev.ReplayedWords
		rep.Recovery.Dropped += ev.Dropped
		rep.Recovery.Duplicated += ev.Duplicated
		rep.Recovery.Stalls += ev.Stalls

		i, ok := spanIdx[ev.Span]
		if !ok {
			i = len(rep.Spans)
			spanIdx[ev.Span] = i
			rep.Spans = append(rep.Spans, SpanStat{Span: ev.Span})
		}
		s := &rep.Spans[i]
		s.Rounds++
		if ev.Charged {
			s.Charged++
		}
		s.Messages += int64(ev.Messages)
		s.Words += int64(ev.Words)
		if ev.MaxSent > s.MaxSent {
			s.MaxSent = ev.MaxSent
		}
		if ev.MaxRecv > s.MaxRecv {
			s.MaxRecv = ev.MaxRecv
		}
		if ev.GiniSent > s.GiniSent {
			s.GiniSent = ev.GiniSent
		}
		if ev.GiniRecv > s.GiniRecv {
			s.GiniRecv = ev.GiniRecv
		}
		if ev.GiniSent > rep.MaxGiniS {
			rep.MaxGiniS = ev.GiniSent
			rep.WorstSkew = ev.Span
		}
		if ev.GiniRecv > rep.MaxGiniR {
			rep.MaxGiniR = ev.GiniRecv
		}

		if c, ok := critical(ev); ok {
			rep.Critical = append(rep.Critical, c)
		}
	}
	if rep.Words > 0 {
		for i := range rep.Spans {
			rep.Spans[i].Share = float64(rep.Spans[i].Words) / float64(rep.Words)
		}
	}
	rep.Heaviest = heaviest(evs, topK)
	return rep
}

// critical finds the round's heaviest machine by sent+recv words. Events
// without per-machine vectors (charged rounds) yield none.
func critical(ev trace.Event) (Critical, bool) {
	n := len(ev.Sent)
	if len(ev.Recv) > n {
		n = len(ev.Recv)
	}
	if n == 0 {
		return Critical{}, false
	}
	at := func(xs []int, i int) int {
		if i < len(xs) {
			return xs[i]
		}
		return 0
	}
	best, bestLoad := 0, -1
	for i := 0; i < n; i++ {
		if load := at(ev.Sent, i) + at(ev.Recv, i); load > bestLoad {
			best, bestLoad = i, load
		}
	}
	return Critical{
		Round: ev.Round, Span: ev.Span, Machine: best,
		Sent: at(ev.Sent, best), Recv: at(ev.Recv, best),
	}, true
}

// heaviest returns the top-k supersteps by words, ties broken by round order
// so the report stays deterministic.
func heaviest(evs []trace.Event, k int) []Heavy {
	if k <= 0 {
		return nil
	}
	hs := make([]Heavy, 0, len(evs))
	for _, ev := range evs {
		hs = append(hs, Heavy{Round: ev.Round, Step: ev.Step, Span: ev.Span, Words: int64(ev.Words), Gini: ev.GiniSent})
	}
	sort.SliceStable(hs, func(i, j int) bool {
		if hs[i].Words != hs[j].Words {
			return hs[i].Words > hs[j].Words
		}
		return hs[i].Round < hs[j].Round
	})
	if len(hs) > k {
		hs = hs[:k]
	}
	return hs
}

func render(w io.Writer, rep Report) error {
	if rep.Header.Schema != "" {
		fmt.Fprintf(w, "trace: %s algo=%s spec=%s seed=%d machines=%d\n",
			rep.Header.Schema, rep.Header.Algo, rep.Header.Spec, rep.Header.Seed, rep.Header.Machines)
		if rep.Header.ResumedFrom > 0 {
			fmt.Fprintf(w, "resumed from durable checkpoint at round %d (events before that are in the interrupted run's trace)\n",
				rep.Header.ResumedFrom)
		}
	} else {
		fmt.Fprintln(w, "trace: (no header)")
	}
	fmt.Fprintf(w, "rounds=%d charged=%d messages=%d words=%d\n", rep.Rounds, rep.Charged, rep.Messages, rep.Words)
	if rep.WorstSkew != "" {
		fmt.Fprintf(w, "worst skew: gini_sent=%.4f in span %q (gini_recv max %.4f)\n", rep.MaxGiniS, rep.WorstSkew, rep.MaxGiniR)
	}
	if rep.Recovery != (RecoveryStat{}) {
		fmt.Fprintf(w, "recovery: crashes=%d recovery_rounds=%d replayed_words=%d dropped=%d duplicated=%d stalls=%d\n",
			rep.Recovery.Crashes, rep.Recovery.RecoveryRounds, rep.Recovery.ReplayedWords,
			rep.Recovery.Dropped, rep.Recovery.Duplicated, rep.Recovery.Stalls)
	}
	fmt.Fprintln(w)

	spans := metrics.NewTable("per-span", "span", "rounds", "charged", "messages", "words", "share", "max_sent", "max_recv", "gini_sent", "gini_recv")
	for _, s := range rep.Spans {
		spans.AddRow(s.Span, s.Rounds, s.Charged, s.Messages, s.Words,
			fmt.Sprintf("%.1f%%", 100*s.Share), s.MaxSent, s.MaxRecv, s.GiniSent, s.GiniRecv)
	}
	if err := spans.Render(w); err != nil {
		return err
	}

	if len(rep.Heaviest) > 0 {
		fmt.Fprintln(w)
		heavy := metrics.NewTable(fmt.Sprintf("top-%d heaviest supersteps", len(rep.Heaviest)),
			"round", "step", "span", "words", "gini_sent")
		for _, h := range rep.Heaviest {
			heavy.AddRow(h.Round, h.Step, h.Span, h.Words, h.Gini)
		}
		if err := heavy.Render(w); err != nil {
			return err
		}
	}

	if len(rep.Critical) > 0 {
		fmt.Fprintln(w)
		// The critical-machine table is per round; summarize who is critical
		// how often, then the per-round detail.
		counts := map[int]int{}
		for _, c := range rep.Critical {
			counts[c.Machine]++
		}
		ids := make([]int, 0, len(counts))
		for id := range counts {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		crit := metrics.NewTable("critical machine frequency", "machine", "rounds_critical")
		for _, id := range ids {
			crit.AddRow(id, counts[id])
		}
		if err := crit.Render(w); err != nil {
			return err
		}
	}
	return nil
}
