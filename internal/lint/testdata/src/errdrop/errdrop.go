// Package errdrop is a negative fixture for the errdrop analyzer. The Ctx
// and Cluster shapes mirror the simulators' Send/budget APIs.
package errdrop

import "errors"

// Ctx mimics a simulator step context whose Send can fail.
type Ctx struct{ bad bool }

// Send mimics mpc.Ctx.Send with an error result.
func (x *Ctx) Send(dst int, payload ...uint64) error {
	if x.bad {
		return errors.New("stale ctx")
	}
	return nil
}

// Cluster mimics the budget-charging surface.
type Cluster struct{ n int }

func (c *Cluster) ChargeRounds(name string, k int) error {
	if k < 0 {
		return errors.New("negative rounds")
	}
	return nil
}

func (c *Cluster) SetResident(m, words int) error { return nil }

// Gather returns a value and an error.
func (c *Cluster) Gather() ([]uint64, error) { return nil, nil }

// dropped ignores error results entirely: flagged.
func dropped(x *Ctx, c *Cluster) {
	x.Send(0, 1, 2)            // want `error result 0 of Ctx\.Send is silently dropped`
	c.ChargeRounds("model", 3) // want `error result 0 of Cluster\.ChargeRounds is silently dropped`
}

// blanked discards errors via the blank identifier: flagged.
func blanked(x *Ctx, c *Cluster) {
	_ = x.Send(1)           // want `error result 0 of Ctx\.Send is discarded with a blank identifier`
	_, _ = c.Gather()       // want `error result 1 of Cluster\.Gather is discarded with a blank identifier`
	_ = c.SetResident(0, 4) // want `error result 0 of Cluster\.SetResident is discarded with a blank identifier`
}

// handled checks every error: never flagged.
func handled(x *Ctx, c *Cluster) error {
	if err := x.Send(0); err != nil {
		return err
	}
	parts, err := c.Gather()
	if err != nil {
		return err
	}
	_ = parts
	return c.ChargeRounds("model", 1)
}

// outsideStack calls a non-critical function (error drop is vet's business,
// not a determinism invariant): never flagged when the package is not
// critical — but fixtures run with every package forced critical, so the
// same-package callee IS flagged above. Stdlib error drops stay exempt.
func outsideStack() {
	_ = errors.New("x").Error()
}
