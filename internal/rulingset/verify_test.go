package rulingset

import (
	"testing"

	"github.com/rulingset/mprs/internal/gen"
	"github.com/rulingset/mprs/internal/graph"
)

func mustPath(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g, err := gen.Path(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestIsIndependent(t *testing.T) {
	g := mustPath(t, 5)
	tests := []struct {
		name    string
		members []int32
		want    bool
	}{
		{name: "empty", members: nil, want: true},
		{name: "alternating", members: []int32{0, 2, 4}, want: true},
		{name: "adjacent pair", members: []int32{1, 2}, want: false},
		{name: "out of range", members: []int32{9}, want: false},
		{name: "negative", members: []int32{-1}, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := IsIndependent(g, tt.members); got != tt.want {
				t.Fatalf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestRulingRadius(t *testing.T) {
	g := mustPath(t, 7)
	tests := []struct {
		name    string
		members []int32
		want    int
	}{
		{name: "center", members: []int32{3}, want: 3},
		{name: "ends", members: []int32{0, 6}, want: 3},
		{name: "all", members: []int32{0, 1, 2, 3, 4, 5, 6}, want: 0},
		{name: "empty", members: nil, want: -1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := RulingRadius(g, tt.members); got != tt.want {
				t.Fatalf("got %d, want %d", got, tt.want)
			}
		})
	}
	empty, err := graph.New(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if RulingRadius(empty, nil) != 0 {
		t.Error("empty graph radius should be 0")
	}
}

func TestIsRulingSet(t *testing.T) {
	g := mustPath(t, 7)
	if !IsRulingSet(g, []int32{1, 4}, 2) {
		t.Error("{1,4} is a 2-ruling set of P7")
	}
	if IsRulingSet(g, []int32{1, 4}, 1) {
		t.Error("{1,4} is not a 1-ruling set of P7 (vertex 6 is 2 away)")
	}
	if IsRulingSet(g, []int32{1, 2}, 5) {
		t.Error("dependent set accepted")
	}
	if IsRulingSet(g, nil, 5) {
		t.Error("empty set dominates nothing")
	}
}

func TestCheck(t *testing.T) {
	g := mustPath(t, 5)
	if err := Check(g, Result{Members: []int32{0, 2, 4}, Beta: 1}); err != nil {
		t.Errorf("valid MIS rejected: %v", err)
	}
	if err := Check(g, Result{Members: []int32{0, 1}, Beta: 2}); err == nil {
		t.Error("dependent members accepted")
	}
	if err := Check(g, Result{Members: []int32{0}, Beta: 2}); err == nil {
		t.Error("radius violation accepted")
	}
	if err := Check(g, Result{Members: nil, Beta: 5}); err == nil {
		t.Error("non-dominating set accepted")
	}
}
