package main

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/rulingset/mprs/internal/telemetry"
	"github.com/rulingset/mprs/internal/trace"
)

func TestRunUsageErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "no args", args: nil},
		{name: "unknown subcommand", args: []string{"frobnicate"}},
		{name: "run without graph", args: []string{"run", "-algo", "det2"}},
		{name: "run bad algo", args: []string{"run", "-algo", "nope", "-spec", "path:n=4"}},
		{name: "run bad regime", args: []string{"run", "-regime", "weird", "-spec", "path:n=4"}},
		{name: "run spec and in", args: []string{"run", "-spec", "path:n=4", "-in", "x"}},
		{name: "gen bad spec", args: []string{"gen", "-spec", "nosuch:n=4"}},
		{name: "run bad faults", args: []string{"run", "-spec", "path:n=4", "-faults", "what=1"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Fatalf("args %v accepted", tt.args)
			}
		})
	}
}

func TestGenInfoRunPipeline(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "g.txt")
	if err := run([]string{"gen", "-spec", "gnp:n=300,p=0.02", "-seed", "3", "-o", file}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "300 ") {
		t.Fatalf("edge list header wrong: %q", string(data[:20]))
	}
	if err := run([]string{"info", "-in", file}); err != nil {
		t.Fatalf("info: %v", err)
	}
	// -slack 16 gives the recursive/power-graph algorithms budget headroom:
	// violations are now fatal (routed to stderr with non-zero exit), so the
	// smoke pipeline must run clean.
	for _, algo := range []string{"luby", "detluby", "rand2", "det2", "detbeta", "detab", "clique2", "cliquedet2", "greedy"} {
		if err := run([]string{"run", "-algo", algo, "-in", file, "-chunk", "4", "-slack", "16", "-phases", "-rounds", "-spans"}); err != nil {
			t.Fatalf("run %s: %v", algo, err)
		}
	}
}

func TestGenBinaryOutput(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "g.bin")
	if err := run([]string{"gen", "-spec", "path:n=10", "-o", file, "-binary"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "MPRSG1") {
		t.Fatalf("binary magic missing")
	}
}

func TestRunStrictSublinearFails(t *testing.T) {
	err := run([]string{"run", "-algo", "rand2", "-spec", "gnp:n=2000,p=0.004",
		"-regime", "sublinear", "-epsilon", "0.5", "-strict"})
	if err == nil {
		t.Fatal("strict sublinear run must fail")
	}
}

// captureStderr runs f with os.Stderr redirected to a pipe and returns what
// was written there.
func captureStderr(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	defer func() { os.Stderr = old }()
	f()
	w.Close()
	var b bytes.Buffer
	if _, err := b.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestRunViolationsGoToStderrAndFail pins the diagnostics-routing fix: a
// non-strict run that breaches the budget must print the violations to
// stderr (not stdout) and return a non-zero status (an error from run).
func TestRunViolationsGoToStderrAndFail(t *testing.T) {
	var runErr error
	errOut := captureStderr(t, func() {
		// Sublinear memory on a dense-enough graph guarantees violations;
		// without -strict the run completes and must still report failure.
		runErr = run([]string{"run", "-algo", "rand2", "-spec", "gnp:n=2000,p=0.004",
			"-regime", "sublinear", "-epsilon", "0.5", "-verify=false"})
	})
	if runErr == nil {
		t.Fatal("non-strict run with violations must return an error")
	}
	if !strings.Contains(runErr.Error(), "budget violation") {
		t.Fatalf("error %q does not mention budget violations", runErr)
	}
	if !strings.Contains(errOut, "budget violation:") {
		t.Fatalf("violations not routed to stderr; stderr = %q", errOut)
	}
}

// TestCliqueViolationsGoToStderrAndFail is the congested-clique counterpart:
// runClique previously did not report violations at all.
func TestCliqueViolationsGoToStderrAndFail(t *testing.T) {
	var runErr error
	errOut := captureStderr(t, func() {
		// A star's center receives one word from every leaf in the view
		// exchange — fine — but the dominate step makes the center send to
		// every leaf while the pair budget is 1 word; use a tiny clique with
		// a complete graph to force per-pair pressure via the residual route.
		runErr = run([]string{"run", "-algo", "cliquedet2", "-spec", "complete:n=48",
			"-chunk", "2", "-verify=false"})
	})
	if runErr == nil {
		t.Skip("no violations on this fixture; skew table still exercised elsewhere")
	}
	if !strings.Contains(errOut, "budget violation:") {
		t.Fatalf("violations not routed to stderr; stderr = %q", errOut)
	}
}

// TestRunTraceFileDeterministic runs the same traced command twice and
// asserts byte-identical JSONL output — the CLI end of the bit-determinism
// contract.
func TestRunTraceFileDeterministic(t *testing.T) {
	dir := t.TempDir()
	t1 := filepath.Join(dir, "a.jsonl")
	t2 := filepath.Join(dir, "b.jsonl")
	args := func(out string) []string {
		return []string{"run", "-algo", "det2", "-spec", "gnp:n=400,p=0.01",
			"-chunk", "4", "-trace", out, "-verify=false"}
	}
	if err := run(args(t1)); err != nil {
		t.Fatal(err)
	}
	if err := run(args(t2)); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(t1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(t2)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("trace file empty")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("traces of identical runs differ")
	}
	if !strings.Contains(string(a), `"span":"sparsify"`) {
		t.Error("trace missing sparsify span")
	}
	if !strings.Contains(string(a), `"span":"seed-search"`) {
		t.Error("trace missing seed-search span")
	}
}

// TestRunProfileWritesFiles checks -profile captures file-based CPU and heap
// profiles.
func TestRunProfileWritesFiles(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "prof")
	err := run([]string{"run", "-algo", "det2", "-spec", "gnp:n=200,p=0.02",
		"-chunk", "4", "-profile", prefix, "-verify=false"})
	if err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{".cpu.pprof", ".heap.pprof"} {
		st, err := os.Stat(prefix + suffix)
		if err != nil {
			t.Fatalf("profile %s missing: %v", suffix, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s empty", suffix)
		}
	}
}

// TestRunUsageGolden pins the run subcommand's -h output against a golden
// file, so the documented flag surface and the real one cannot drift apart
// silently (the bug this guards against: usage text advertising flags that
// do not exist, or omitting ones that do).
func TestRunUsageGolden(t *testing.T) {
	got := captureStderr(t, func() {
		if err := run([]string{"run", "-h"}); err == nil {
			t.Error("-h should surface flag.ErrHelp")
		}
	})
	golden := filepath.Join("testdata", "run_usage.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create)", err)
	}
	if got != string(want) {
		t.Errorf("usage drifted from %s:\n--- got ---\n%s--- want ---\n%s(UPDATE_GOLDEN=1 refreshes after intentional changes)", golden, got, want)
	}
	// Every flag named in the command doc's usage block must exist; spot-check
	// the ones the doc calls out explicitly.
	for _, flagName := range []string{"-phases", "-rounds", "-spans", "-slack", "-trace", "-debug-addr", "-algo-seed",
		"-checkpoint-dir", "-resume", "-checkpoint-retain", "-members-out", "-die-at", "-flight-dir",
		"-chaos", "-chaos-seed", "-flap-limit", "-max-fleet-restarts", "-degraded-fallback"} {
		if !strings.Contains(got, "\n  "+flagName) {
			t.Errorf("usage output missing %s", flagName)
		}
	}
}

// TestVersionFlag checks every spelling of the version request.
func TestVersionFlag(t *testing.T) {
	for _, arg := range []string{"-version", "--version", "version"} {
		if err := run([]string{arg}); err != nil {
			t.Errorf("%s: %v", arg, err)
		}
	}
}

// TestTraceFileHasHeader: traces written by the CLI start with a schema
// header carrying the run parameters and the build stamp, and remain fully
// readable through the trace cursor.
func TestTraceFileHasHeader(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.jsonl")
	if err := run([]string{"run", "-algo", "det2", "-spec", "gnp:n=200,p=0.02",
		"-chunk", "4", "-algo-seed", "7", "-machines", "4", "-trace", out, "-verify=false"}); err != nil {
		t.Fatal(err)
	}
	hdr, evs, err := trace.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Schema != trace.Schema {
		t.Errorf("header schema %q", hdr.Schema)
	}
	if hdr.Algo != "det2" || hdr.Spec != "gnp:n=200,p=0.02" || hdr.Seed != 7 || hdr.Machines != 4 {
		t.Errorf("header run parameters wrong: %+v", hdr)
	}
	if len(hdr.Build) == 0 || !strings.Contains(string(hdr.Build), "go_version") {
		t.Errorf("header missing build stamp: %s", hdr.Build)
	}
	if len(evs) == 0 {
		t.Error("no events after header")
	}
}

// TestDebugServer drives the live-introspection endpoint end to end: start
// on an ephemeral port, feed the live tracer, and read the expvar snapshot
// plus the pprof index over HTTP. Starting twice must not panic (expvar
// re-publication is guarded).
func TestDebugServer(t *testing.T) {
	get := func(url string) string {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		if _, err := b.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", url, resp.StatusCode)
		}
		return b.String()
	}
	live := trace.NewLive()
	live.SpanChange("sparsify")
	ev := trace.Event{Round: 3, Step: "mark", Span: "sparsify", Words: 12, Sent: []int{12}, Recv: []int{12}}
	live.Superstep(ev)
	col := telemetry.NewCollector(telemetry.CollectorOptions{})
	col.Superstep(ev)
	ln, err := startDebugServer("127.0.0.1:0", live, col)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	base := "http://" + ln.Addr().String()
	vars := get(base + "/debug/vars")
	if !strings.Contains(vars, `"mprs"`) || !strings.Contains(vars, `"round":3`) || !strings.Contains(vars, `"span":"sparsify"`) {
		t.Errorf("expvar snapshot missing live state:\n%s", vars)
	}
	if idx := get(base + "/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Errorf("pprof index not served:\n%s", idx)
	}
	if prom := get(base + "/metrics"); !strings.Contains(prom, "mprs_committed_round 3") ||
		!strings.Contains(prom, "# TYPE mprs_words_total counter") {
		t.Errorf("prometheus exposition missing series:\n%s", prom)
	}
	if snap := get(base + "/telemetry.json"); !strings.Contains(snap, `"schema":"mprs-telemetry/1"`) ||
		!strings.Contains(snap, `"mprs_committed_round"`) {
		t.Errorf("telemetry snapshot missing series:\n%s", snap)
	}

	// A second run in the same process re-points the published variable.
	live2 := trace.NewLive()
	live2.Superstep(trace.Event{Round: 9, Span: "gather", Words: 1, Sent: []int{1}, Recv: []int{1}})
	ln2, err := startDebugServer("127.0.0.1:0", live2, telemetry.NewCollector(telemetry.CollectorOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	defer ln2.Close()
	if vars := get("http://" + ln2.Addr().String() + "/debug/vars"); !strings.Contains(vars, `"round":9`) {
		t.Errorf("second run's live state not published:\n%s", vars)
	}
}

// TestRunDebugAddrFlag exercises the -debug-addr flag through the CLI path.
func TestRunDebugAddrFlag(t *testing.T) {
	errOut := captureStderr(t, func() {
		if err := run([]string{"run", "-algo", "det2", "-spec", "gnp:n=200,p=0.02",
			"-chunk", "4", "-debug-addr", "127.0.0.1:0", "-verify=false"}); err != nil {
			t.Errorf("run with -debug-addr: %v", err)
		}
	})
	if !strings.Contains(errOut, "debug server on http://127.0.0.1:") {
		t.Errorf("debug address not reported on stderr: %q", errOut)
	}
}

// TestRunTelemetryObserverEquivalence is the in-process observer contract:
// a run with telemetry fully enabled (-debug-addr wires the collector into
// the tracer fan-out and meters the checkpoint sink) produces bit-identical
// members, canonical stats, trace bytes and checkpoint files to a run
// without it.
func TestRunTelemetryObserverEquivalence(t *testing.T) {
	dir := t.TempDir()
	artifacts := func(sub string, extra ...string) (members, stats, trace, ckpt string) {
		base := filepath.Join(dir, sub)
		members = base + ".members"
		stats = base + ".stats.json"
		trace = base + ".trace"
		ckpt = base + ".ck"
		args := []string{"run", "-algo", "det2", "-spec", "gnp:n=400,p=0.01",
			"-chunk", "4", "-verify=false",
			"-members-out", members, "-stats-out", stats, "-trace", trace,
			"-checkpoint-dir", ckpt, "-checkpoint-every", "4"}
		args = append(args, extra...)
		errOut := captureStderr(t, func() {
			if err := run(args); err != nil {
				t.Errorf("run %s: %v", sub, err)
			}
		})
		_ = errOut
		return
	}
	offM, offS, offT, offCk := artifacts("off")
	onM, onS, onT, onCk := artifacts("on", "-debug-addr", "127.0.0.1:0", "-flight-dir", filepath.Join(dir, "flights"))

	for _, pair := range [][2]string{{offM, onM}, {offS, onS}, {offT, onT}} {
		a, err := os.ReadFile(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if len(a) == 0 {
			t.Fatalf("%s empty", pair[0])
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s and %s differ: telemetry perturbed a deterministic artifact", pair[0], pair[1])
		}
	}
	// Checkpoint files must match name-for-name, byte-for-byte.
	offFiles, err := os.ReadDir(offCk)
	if err != nil {
		t.Fatal(err)
	}
	if len(offFiles) == 0 {
		t.Fatal("no checkpoints written")
	}
	for _, f := range offFiles {
		a, err := os.ReadFile(filepath.Join(offCk, f.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(onCk, f.Name()))
		if err != nil {
			t.Fatalf("checkpoint %s missing with telemetry on: %v", f.Name(), err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("checkpoint %s differs with telemetry on", f.Name())
		}
	}
	// A successful run leaves no post-mortem.
	if entries, err := os.ReadDir(filepath.Join(dir, "flights")); err == nil && len(entries) > 0 {
		t.Errorf("successful run wrote flight artifacts: %v", entries)
	}
}

// TestRunFlightDirWritesPostMortem drives the in-process flight recorder: a
// failing run (budget violations) with -flight-dir must leave a parseable
// mprs-flight/1 artifact holding the last supersteps before the failure.
func TestRunFlightDirWritesPostMortem(t *testing.T) {
	flights := filepath.Join(t.TempDir(), "flights")
	var runErr error
	captureStderr(t, func() {
		runErr = run([]string{"run", "-algo", "rand2", "-spec", "gnp:n=2000,p=0.004",
			"-regime", "sublinear", "-epsilon", "0.5", "-verify=false", "-flight-dir", flights})
	})
	if runErr == nil {
		t.Fatal("violating run must fail")
	}
	path := filepath.Join(flights, "flight-w-1-a0.jsonl")
	hdr, evs, err := telemetry.ReadFlightFile(path)
	if err != nil {
		t.Fatalf("flight artifact: %v", err)
	}
	if hdr.Kind != "error" || hdr.Worker != -1 {
		t.Errorf("flight header = %+v", hdr)
	}
	if !strings.Contains(hdr.Reason, "budget violation") {
		t.Errorf("flight reason %q does not carry the failure", hdr.Reason)
	}
	if len(evs) == 0 {
		t.Error("flight artifact holds no supersteps")
	}
	if hdr.Round == 0 || hdr.Round != evs[len(evs)-1].Round {
		t.Errorf("flight round %d does not match last event %d", hdr.Round, evs[len(evs)-1].Round)
	}
}
