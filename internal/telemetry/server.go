package telemetry

import (
	"net/http"
)

// Handler returns the HTTP endpoints for g on a fresh mux:
//
//	/metrics         Prometheus text exposition (version 0.0.4)
//	/telemetry.json  the JSON snapshot document (schema mprs-telemetry/1)
//
// Callers mount extra routes (expvar, pprof) on the returned mux; a fresh
// mux per run keeps repeated in-process runs (tests) away from the global
// DefaultServeMux registration panics.
func Handler(g Gatherer) *http.ServeMux {
	gather := func() []Point {
		if g == nil {
			return nil
		}
		return g.Gather()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WritePrometheus(w, gather()); err != nil {
			_ = err // client went away mid-scrape; nothing to clean up
		}
	})
	mux.HandleFunc("/telemetry.json", func(w http.ResponseWriter, r *http.Request) {
		data, err := EncodeSnapshot(gathererFunc(gather))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if _, err := w.Write(data); err != nil {
			_ = err // client went away mid-scrape
		}
	})
	return mux
}

// gathererFunc adapts a plain function to Gatherer.
type gathererFunc func() []Point

// Gather implements Gatherer.
func (f gathererFunc) Gather() []Point { return f() }
