package trace

import (
	"sync"
	"testing"
)

func TestLiveAccumulates(t *testing.T) {
	l := NewLive()
	l.SpanChange("sparsify")
	if s := l.Snapshot(); s.Span != "sparsify" || s.Round != 0 {
		t.Fatalf("span change not visible before first round: %+v", s)
	}
	l.Superstep(Event{Round: 1, Step: "mark", Span: "sparsify", Sent: []int{4, 0, 0}, Recv: []int{0, 2, 2},
		Messages: 2, Words: 4, MaxSent: 4, MaxRecv: 2, GiniSent: 0.6, GiniRecv: 0.3})
	l.Superstep(Event{Round: 2, Step: "gather", Span: "gather", Sent: []int{1, 1, 1}, Recv: []int{3, 0, 0},
		Messages: 3, Words: 3, MaxSent: 1, MaxRecv: 3, GiniSent: 0.1, GiniRecv: 0.9,
		Crashes: 1, RecoveryRounds: 2, ReplayedWords: 10, Dropped: 1, Duplicated: 2, Stalls: 3})
	s := l.Snapshot()
	if s.Round != 2 || s.Span != "gather" || s.Step != "gather" || s.Machines != 3 {
		t.Errorf("position wrong: %+v", s)
	}
	if s.Messages != 5 || s.Words != 7 {
		t.Errorf("traffic totals wrong: %+v", s)
	}
	if s.MaxSent != 4 || s.MaxRecv != 3 || s.GiniSent != 0.6 || s.GiniRecv != 0.9 {
		t.Errorf("peaks wrong: %+v", s)
	}
	if s.Crashes != 1 || s.RecoveryRounds != 2 || s.ReplayedWords != 10 || s.Dropped != 1 || s.Duplicated != 2 || s.Stalls != 3 {
		t.Errorf("recovery counters wrong: %+v", s)
	}
}

// TestLiveConcurrentReaders races HTTP-scraper-style readers against the
// simulation goroutine's commits and span transitions. Under -race (CI runs
// it) this proves the mutex covers every path; the invariant check catches
// torn reads even without the race detector: each committed round adds
// exactly one word, so any snapshot must show Words == Round.
func TestLiveConcurrentReaders(t *testing.T) {
	l := NewLive()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	torn := make(chan Snapshot, 1)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					if s := l.Snapshot(); s.Words != int64(s.Round) {
						select {
						case torn <- s:
						default:
						}
						return
					}
				}
			}
		}()
	}
	for r := 1; r <= 500; r++ {
		if r%50 == 0 {
			l.SpanChange("phase")
		}
		l.Superstep(Event{Round: r, Words: 1, Sent: []int{1}, Recv: []int{1}})
	}
	close(stop)
	wg.Wait()
	select {
	case s := <-torn:
		t.Fatalf("torn snapshot observed: %+v", s)
	default:
	}
	if s := l.Snapshot(); s.Round != 500 || s.Words != 500 {
		t.Fatalf("final snapshot %+v", s)
	}
}

func TestMultiForwardsSpanChange(t *testing.T) {
	a, b := NewLive(), NewLive()
	m := Multi{a, NewRing(1), nil, b}
	m.SpanChange("seed-search")
	if a.Snapshot().Span != "seed-search" || b.Snapshot().Span != "seed-search" {
		t.Fatal("Multi did not fan SpanChange out to observers")
	}
}
