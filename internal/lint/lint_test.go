package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// runFixture lints one testdata package with the named analyzers (all when
// none are given). Fixtures are forced critical so every analyzer applies.
func runFixture(t *testing.T, fixture string, analyzers ...string) []Diagnostic {
	t.Helper()
	diags, err := Run(Config{
		Dir:         ".",
		Patterns:    []string{filepath.Join("testdata", "src", fixture)},
		Analyzers:   analyzers,
		AllCritical: true,
	})
	if err != nil {
		t.Fatalf("Run(%s): %v", fixture, err)
	}
	return diags
}

// wantRe extracts expected-diagnostic comments of the form
//
//	// want `regexp`
//
// from fixture source. The backtick-quoted pattern is matched against the
// diagnostic message reported on the same line.
var wantRe = regexp.MustCompile("// want `([^`]*)`")

type wantSpec struct {
	line int
	re   *regexp.Regexp
}

func loadWants(t *testing.T, fixture string) []wantSpec {
	t.Helper()
	path := filepath.Join("testdata", "src", fixture, fixture+".go")
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var wants []wantSpec
	for i, line := range strings.Split(string(src), "\n") {
		for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, m[1], err)
			}
			wants = append(wants, wantSpec{line: i + 1, re: re})
		}
	}
	if len(wants) == 0 {
		t.Fatalf("%s: no want comments found", path)
	}
	return wants
}

// checkWants verifies the bidirectional correspondence between want comments
// and diagnostics: every want is matched by a finding on its line, and every
// finding is claimed by some want.
func checkWants(t *testing.T, fixture string, diags []Diagnostic) {
	t.Helper()
	wants := loadWants(t, fixture)
	claimed := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if claimed[i] || d.Pos.Line != w.line || !w.re.MatchString(d.Message) {
				continue
			}
			claimed[i] = true
			found = true
			break
		}
		if !found {
			t.Errorf("line %d: no diagnostic matching %q; got:\n%s", w.line, w.re, formatDiags(diags))
		}
	}
	for i, d := range diags {
		if !claimed[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

func formatDiags(diags []Diagnostic) string {
	if len(diags) == 0 {
		return "  (none)"
	}
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("  " + d.String() + "\n")
	}
	return b.String()
}

func TestMaporderFixture(t *testing.T) {
	checkWants(t, "maporder", runFixture(t, "maporder", "maporder"))
}

func TestWallclockFixture(t *testing.T) {
	checkWants(t, "wallclock", runFixture(t, "wallclock", "wallclock"))
}

func TestGlobalrandFixture(t *testing.T) {
	checkWants(t, "globalrand", runFixture(t, "globalrand", "globalrand"))
}

func TestErrdropFixture(t *testing.T) {
	checkWants(t, "errdrop", runFixture(t, "errdrop", "errdrop"))
}

func TestDurabilityFixture(t *testing.T) {
	checkWants(t, "durability", runFixture(t, "durability", "errdrop"))
}

func TestFloatorderFixture(t *testing.T) {
	checkWants(t, "floatorder", runFixture(t, "floatorder", "floatorder"))
}

func TestSharedwriteFixture(t *testing.T) {
	checkWants(t, "sharedwrite", runFixture(t, "sharedwrite", "sharedwrite"))
}

// TestDetflowFixture drives the interprocedural engine over the two-package
// fixture (consumer + tainted helper): the recursive pattern scans both, so
// the helper's summaries exist when the consumer's sinks are checked.
func TestDetflowFixture(t *testing.T) {
	diags, err := Run(Config{
		Dir:         ".",
		Patterns:    []string{"testdata/src/detflow/..."},
		Analyzers:   []string{"detflow"},
		AllCritical: true,
	})
	if err != nil {
		t.Fatalf("Run(detflow): %v", err)
	}
	checkWants(t, "detflow", diags)
}

// TestTelemetryObserverFixture pins the observer-package rule: feeding
// wall-clock measurements INTO telemetry encoders stays clean even when
// every package is forced critical (the encoders share the sinks' names on
// purpose), while telemetry measurements flowing BACK into a deterministic
// Stats column or message payload are reported.
func TestTelemetryObserverFixture(t *testing.T) {
	diags, err := Run(Config{
		Dir:         ".",
		Patterns:    []string{"testdata/src/telemetryflow/..."},
		Analyzers:   []string{"detflow"},
		AllCritical: true,
	})
	if err != nil {
		t.Fatalf("Run(telemetryflow): %v", err)
	}
	checkWants(t, "telemetryflow", diags)
}

// TestTelemetryObserverCoverage pins internal/telemetry's lint posture: it
// is NOT determinism-critical (its output is advisory), it may read the wall
// clock (span latencies are its purpose), and the real package lints clean
// under the full analyzer set — with a non-vacuity check that it genuinely
// calls time.Now, so the silence proves the exemption.
func TestTelemetryObserverCoverage(t *testing.T) {
	if criticalPkgs["internal/telemetry"] {
		t.Error(`criticalPkgs["internal/telemetry"] = true; the observer must not be a sink package`)
	}
	if !wallclockExempt("internal/telemetry") {
		t.Error(`wallclockExempt("internal/telemetry") = false; span latency measurement would be findings`)
	}
	diags, err := Run(Config{
		Dir:      "../..",
		Patterns: []string{"internal/telemetry"},
	})
	if err != nil {
		t.Fatalf("Run(internal/telemetry): %v", err)
	}
	if len(diags) != 0 {
		t.Errorf("findings in internal/telemetry:\n%s", formatDiags(diags))
	}
	src, err := os.ReadFile(filepath.Join("..", "telemetry", "collector.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "time.Now") {
		t.Fatal("internal/telemetry no longer reads the wall clock; exemption test proves nothing")
	}
}

// TestDetflowCatchesWhatIntraproceduralAnalyzersCannot is the seeded-flow
// acceptance check: the consumer package contains no nondeterminism of its
// own — every source lives in the helper package — so the whole original
// analyzer set stays silent on it even when forced critical, while detflow
// reports the cross-package flows (pinned line-by-line by TestDetflowFixture).
func TestDetflowCatchesWhatIntraproceduralAnalyzersCannot(t *testing.T) {
	intra := []string{"maporder", "wallclock", "globalrand", "errdrop", "floatorder", "sharedwrite"}
	diags, err := Run(Config{
		Dir:         ".",
		Patterns:    []string{filepath.Join("testdata", "src", "detflow")},
		Analyzers:   intra,
		AllCritical: true,
	})
	if err != nil {
		t.Fatalf("Run(detflow, intra-procedural set): %v", err)
	}
	if len(diags) != 0 {
		t.Errorf("intra-procedural analyzers report on the detflow consumer; the fixture no longer isolates cross-package flows:\n%s", formatDiags(diags))
	}
	flows, err := Run(Config{
		Dir:         ".",
		Patterns:    []string{"testdata/src/detflow/..."},
		Analyzers:   []string{"detflow"},
		AllCritical: true,
	})
	if err != nil {
		t.Fatalf("Run(detflow): %v", err)
	}
	if len(flows) == 0 {
		t.Error("detflow reports nothing on its own fixture")
	}
}

func TestPtrformatFixture(t *testing.T) {
	checkWants(t, "ptrformat", runFixture(t, "ptrformat", "ptrformat"))
}

func TestNondetencodeFixture(t *testing.T) {
	checkWants(t, "nondetencode", runFixture(t, "nondetencode", "nondetencode"))
}

// TestGenericsFixture pins type-parameter coverage: generic code typechecks
// under the stdlib-only loader, maporder sees through generic method bodies,
// and detflow resolves explicitly instantiated calls (IndexExpr and
// IndexListExpr callees).
func TestGenericsFixture(t *testing.T) {
	checkWants(t, "generics", runFixture(t, "generics", "maporder", "detflow"))
}

// TestAuditStaleness pins the suppression audit on the staleok fixture: the
// annotation covering a real map range is live, the one left on a rewritten
// slice loop is stale.
func TestAuditStaleness(t *testing.T) {
	sups, err := Audit(Config{
		Dir:         ".",
		Patterns:    []string{filepath.Join("testdata", "src", "staleok")},
		AllCritical: true,
	})
	if err != nil {
		t.Fatalf("Audit(staleok): %v", err)
	}
	if len(sups) != 2 {
		t.Fatalf("want 2 suppressions, got %d: %+v", len(sups), sups)
	}
	live, stale := sups[0], sups[1]
	if live.Line >= stale.Line {
		t.Fatalf("suppressions not sorted by line: %+v", sups)
	}
	for _, s := range sups {
		if s.Analyzer != "maporder" {
			t.Errorf("suppression analyzer = %q, want maporder", s.Analyzer)
		}
		if !strings.Contains(s.Reason, "commutative") {
			t.Errorf("suppression reason %q lost its justification", s.Reason)
		}
		if !strings.HasSuffix(s.File, "staleok/staleok.go") {
			t.Errorf("suppression file %q is not module-relative to the fixture", s.File)
		}
	}
	if live.Stale {
		t.Error("the suppression over a live map range was marked stale")
	}
	if !stale.Stale {
		t.Error("the suppression over a slice loop was not marked stale")
	}
}

func TestCleanFixtureHasZeroFindings(t *testing.T) {
	if diags := runFixture(t, "clean"); len(diags) != 0 {
		t.Errorf("clean fixture produced findings under the full analyzer set:\n%s", formatDiags(diags))
	}
}

func TestSuppressionSilencesFindings(t *testing.T) {
	// Both map ranges in the fixture are real maporder violations; each
	// carries a justified //detlint:ok (one on the line above, one trailing
	// the statement), so the full run must come back empty.
	if diags := runFixture(t, "suppressed"); len(diags) != 0 {
		t.Errorf("annotated findings were not suppressed:\n%s", formatDiags(diags))
	}
	// Sanity-check the fixture is not vacuously clean: stripping the
	// annotations must re-expose the findings. We approximate by asserting
	// the fixture really contains map ranges detlint would flag — the
	// suppression bookkeeping records them before filtering, so a fixture
	// edit that removes the violations fails here rather than passing
	// silently.
	src, err := os.ReadFile(filepath.Join("testdata", "src", "suppressed", "suppressed.go"))
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(src), annPrefix+" maporder -- "); n != 2 {
		t.Fatalf("suppressed fixture should carry exactly 2 annotations, found %d", n)
	}
	if !strings.Contains(string(src), "range m") {
		t.Fatal("suppressed fixture no longer contains a map range; it proves nothing")
	}
}

func TestMalformedAnnotationsAreErrors(t *testing.T) {
	diags := runFixture(t, "badannot", "maporder")
	wantMessages := []string{
		`unknown analyzer "frobnicator" in detlint:ok annotation`,
		"detlint:ok annotation names no analyzers",
		"detlint:ok annotation needs a written justification",
	}
	for _, want := range wantMessages {
		found := false
		for _, d := range diags {
			if d.Analyzer == "detlint" && strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no detlint diagnostic containing %q; got:\n%s", want, formatDiags(diags))
		}
	}
	// The malformed annotations must not suppress anything: the two map
	// ranges they sit next to stay flagged.
	maporderCount := 0
	for _, d := range diags {
		if d.Analyzer == "maporder" {
			maporderCount++
		}
	}
	if maporderCount != 2 {
		t.Errorf("expected 2 unsuppressed maporder findings, got %d:\n%s", maporderCount, formatDiags(diags))
	}
}

func TestUnknownAnalyzerNameInConfigIsAnError(t *testing.T) {
	_, err := Run(Config{Dir: ".", Patterns: []string{"."}, Analyzers: []string{"frobnicator"}})
	if err == nil || !strings.Contains(err.Error(), `unknown analyzer "frobnicator"`) {
		t.Fatalf("want unknown-analyzer error, got %v", err)
	}
}

func TestDiagnosticsAreSorted(t *testing.T) {
	diags := runFixture(t, "maporder", "maporder")
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.Pos.Filename > b.Pos.Filename ||
			(a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line) {
			t.Fatalf("diagnostics out of order: %s before %s", a, b)
		}
	}
	for _, d := range diags {
		if filepath.IsAbs(d.Pos.Filename) {
			t.Errorf("diagnostic filename should be module-relative, got %s", d.Pos.Filename)
		}
	}
}

// TestBuildTagFixture pins build-constraint-aware loading: the fixture
// declares procControl under both `unix` and `!unix`, so a loader that
// ignores //go:build lines dies with a redeclaration type error before any
// analyzer runs. The surviving maporder want proves analysis still happened.
func TestBuildTagFixture(t *testing.T) {
	checkWants(t, "buildtag", runFixture(t, "buildtag", "maporder"))
}

// TestTransportSuperviseCoverage pins the multi-process backend's lint
// contract: the wire layer and the supervisor are determinism-critical, the
// supervisor alone may read the wall clock (heartbeats and backoff are
// wall-clock by nature; they decide when workers run, never what they
// compute), and both real packages lint clean under the full analyzer set.
func TestTransportSuperviseCoverage(t *testing.T) {
	for _, rel := range []string{"internal/transport", "internal/supervise"} {
		if !criticalPkgs[rel] {
			t.Errorf("criticalPkgs[%q] = false; multi-process backend escaped detlint", rel)
		}
	}
	if !wallclockExempt("internal/supervise") {
		t.Error(`wallclockExempt("internal/supervise") = false; heartbeat timers would be findings`)
	}
	if wallclockExempt("internal/transport") {
		t.Error(`wallclockExempt("internal/transport") = true; the wire layer must stay timing-free`)
	}
	diags, err := Run(Config{
		Dir:      "../..",
		Patterns: []string{"internal/transport", "internal/supervise"},
	})
	if err != nil {
		t.Fatalf("Run(transport, supervise): %v", err)
	}
	if len(diags) != 0 {
		t.Errorf("findings in the multi-process backend:\n%s", formatDiags(diags))
	}
	// Non-vacuity: the supervisor genuinely reads the wall clock, so the
	// empty result proves the exemption rather than an absence of timers.
	src, err := os.ReadFile(filepath.Join("..", "supervise", "supervisor.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "time.Now()") {
		t.Fatal("internal/supervise no longer calls time.Now; exemption test proves nothing")
	}
}

// TestBenchWallclockExemption pins the bench harness's wall-clock carve-out:
// internal/bench and the bench CLI measure wall time on purpose (it is their
// one declared host-dependent column), so the wallclock analyzer must stay
// silent there — and the exemption must not be vacuous.
func TestBenchWallclockExemption(t *testing.T) {
	for _, rel := range []string{"internal/bench", "cmd/mprs-bench", "cmd/traceview", "internal/telemetry"} {
		if !wallclockExempt(rel) {
			t.Errorf("wallclockExempt(%q) = false", rel)
		}
	}
	// The deterministic core must NOT inherit the exemption.
	for _, rel := range []string{"internal/mpc", "internal/clique", "internal/trace", "internal/benchmark"} {
		if wallclockExempt(rel) {
			t.Errorf("wallclockExempt(%q) = true; exemption leaked", rel)
		}
	}
	// Lint the real package: zero wallclock findings.
	diags, err := Run(Config{
		Dir:       "../..",
		Patterns:  []string{"internal/bench"},
		Analyzers: []string{"wallclock"},
	})
	if err != nil {
		t.Fatalf("Run(internal/bench): %v", err)
	}
	if len(diags) != 0 {
		t.Errorf("wallclock findings in exempt internal/bench:\n%s", formatDiags(diags))
	}
	// Non-vacuity: the package genuinely reads the wall clock, so the empty
	// result above proves the exemption (not an absence of time.Now calls).
	src, err := os.ReadFile(filepath.Join("..", "bench", "run.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "time.Now()") {
		t.Fatal("internal/bench no longer calls time.Now; exemption test proves nothing")
	}
}
