package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden compares got against the named golden file, rewriting it under
// -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s (run go test -update after intentional changes)\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestTreeIsClean is the same gate CI runs: the whole module must lint
// clean, with every finding either fixed or carrying a justified
// //detlint:ok annotation.
func TestTreeIsClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-dir", "../.."}, &stdout, &stderr); code != 0 {
		t.Fatalf("detlint on the tree exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
}

// TestNegativeFixtureFails proves the gate has teeth: a package with known
// violations must drive the exit status to 1 and print the findings.
func TestNegativeFixtureFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"-dir", "../..", "-all", "-analyzers", "maporder", "internal/lint/testdata/src/maporder"}
	if code := run(args, &stdout, &stderr); code != 1 {
		t.Fatalf("detlint on the maporder fixture exited %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "[maporder]") {
		t.Errorf("findings missing from stdout:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("summary missing from stderr:\n%s", stderr.String())
	}
}

func TestUnknownAnalyzerFlagExitsTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-analyzers", "frobnicator"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr should name the unknown analyzer:\n%s", stderr.String())
	}
}

func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	for _, name := range []string{"maporder", "wallclock", "globalrand", "errdrop", "floatorder", "detflow", "nondetencode", "ptrformat"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, stdout.String())
		}
	}
}

// TestUsageGolden pins the -h text: the flag surface is CLI contract, and a
// silently added or renamed flag must show up as a reviewed golden diff.
func TestUsageGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-h"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-h exited %d, want 0", code)
	}
	checkGolden(t, "usage.golden", stderr.String())
}

// TestJSONGolden pins the detlint/1 document byte-for-byte on the maporder
// fixture: schema string, field order and indentation are all contract.
func TestJSONGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"-dir", "../..", "-all", "-analyzers", "maporder", "-format", "json", "internal/lint/testdata/src/maporder"}
	if code := run(args, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	var rep struct {
		Schema   string `json:"schema"`
		Findings []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Analyzer string `json:"analyzer"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("-format json produced invalid JSON: %v\n%s", err, stdout.String())
	}
	if rep.Schema != "detlint/1" {
		t.Errorf("schema = %q, want detlint/1", rep.Schema)
	}
	if len(rep.Findings) == 0 {
		t.Error("no findings in JSON document")
	}
	checkGolden(t, "findings_json.golden", stdout.String())
}

// TestJSONEmptyFindingsIsArray pins the zero-findings shape: an empty array,
// not null, so jq pipelines never hit a type error.
func TestJSONEmptyFindingsIsArray(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"-dir", "../..", "-format", "json", "internal/lint/testdata/src/clean"}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, want 0\nstderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), `"findings": []`) {
		t.Errorf("zero findings should serialize as an empty array:\n%s", stdout.String())
	}
}

// TestSARIFOutput checks the structure GitHub code scanning ingests.
func TestSARIFOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"-dir", "../..", "-all", "-analyzers", "maporder", "-format", "sarif", "internal/lint/testdata/src/maporder"}
	if code := run(args, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &log); err != nil {
		t.Fatalf("-format sarif produced invalid JSON: %v\n%s", err, stdout.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version %q, %d runs; want 2.1.0 and 1 run", log.Version, len(log.Runs))
	}
	run0 := log.Runs[0]
	if run0.Tool.Driver.Name != "detlint" {
		t.Errorf("driver name = %q", run0.Tool.Driver.Name)
	}
	ruleIDs := make(map[string]bool)
	for _, r := range run0.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, want := range []string{"maporder", "detflow", "nondetencode", "ptrformat", "detlint"} {
		if !ruleIDs[want] {
			t.Errorf("rules missing %q", want)
		}
	}
	if len(run0.Results) == 0 {
		t.Fatal("no results in SARIF document")
	}
	for _, res := range run0.Results {
		if res.RuleID != "maporder" {
			t.Errorf("result ruleId = %q, want maporder", res.RuleID)
		}
		if len(res.Locations) != 1 || !strings.HasPrefix(res.Locations[0].PhysicalLocation.ArtifactLocation.URI, "internal/lint/testdata/") {
			t.Errorf("result location malformed: %+v", res.Locations)
		}
	}
}

// TestAuditFlag drives -audit over the staleok fixture: both suppressions
// listed, the stale one marked, exit status 1.
func TestAuditFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"-dir", "../..", "-all", "-audit", "internal/lint/testdata/src/staleok"}
	if code := run(args, &stdout, &stderr); code != 1 {
		t.Fatalf("-audit exited %d, want 1 (stale suppression present)\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if strings.Count(out, "[maporder]") != 2 {
		t.Errorf("expected 2 audited suppressions:\n%s", out)
	}
	if strings.Count(out, "[STALE]") != 1 {
		t.Errorf("expected exactly 1 stale mark:\n%s", out)
	}
	if !strings.Contains(stderr.String(), "2 suppression(s), 1 stale") {
		t.Errorf("summary missing from stderr:\n%s", stderr.String())
	}
}

// TestAuditJSON checks the machine-readable audit document.
func TestAuditJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"-dir", "../..", "-all", "-audit", "-format", "json", "internal/lint/testdata/src/staleok"}
	if code := run(args, &stdout, &stderr); code != 1 {
		t.Fatalf("-audit -format json exited %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	var rep struct {
		Schema       string `json:"schema"`
		Suppressions []struct {
			Analyzer string `json:"analyzer"`
			Reason   string `json:"reason"`
			Stale    bool   `json:"stale"`
		} `json:"suppressions"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, stdout.String())
	}
	if rep.Schema != "detlint/1" {
		t.Errorf("schema = %q, want detlint/1", rep.Schema)
	}
	stale := 0
	for _, s := range rep.Suppressions {
		if s.Stale {
			stale++
		}
	}
	if len(rep.Suppressions) != 2 || stale != 1 {
		t.Errorf("got %d suppressions (%d stale), want 2 with 1 stale:\n%s", len(rep.Suppressions), stale, stdout.String())
	}
}

// TestAuditTreeHasNoStaleSuppressions is the advisory CI gate run blocking
// here: every //detlint:ok in the real tree must still be earning its keep.
func TestAuditTreeHasNoStaleSuppressions(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-dir", "../..", "-audit"}, &stdout, &stderr); code != 0 {
		t.Fatalf("stale suppressions in the tree (exit %d):\n%s", code, stdout.String())
	}
}

func TestUnknownFormatExitsTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-format", "yaml"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown -format") {
		t.Errorf("stderr should name the bad format:\n%s", stderr.String())
	}
}
