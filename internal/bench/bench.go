// Package bench is the perf-regression harness: a registry of named, seeded
// workload configurations spanning the repository's experiment regimes
// (EXPERIMENTS.md T1/T2/T8/O1/R1), a runner executing each workload across
// its algorithm set on both simulators (MPC and congested clique), and a
// schema-versioned JSON artifact (`BENCH_<stamp>.json`) pinning per-workload
// rounds, phases, words, skew, memory peaks, recovery counters and
// wall-clock per commit.
//
// Every column except wall-clock is bit-deterministic — a pure function of
// (workload, algorithm, seed) — so regressions in the quantities the paper's
// theorems bound (rounds, phases, per-phase words, seed-search cost) are
// detected by exact comparison against a checked-in baseline, while
// wall-clock is flagged host-dependent and gated only by an opt-in ratio
// band. See cmd/mprs-bench for the CLI and the diff gate.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"

	"github.com/rulingset/mprs/internal/buildinfo"
)

// Schema is the bench artifact format version. Bump only for changes that
// break existing readers; adding fields is backward compatible.
const Schema = "mprs-bench/1"

// HostDependentFields names the Result columns that are a function of the
// host rather than of (workload, algorithm, seed). They are excluded from
// exact-match diffing and from the byte-determinism contract. speedup_x is
// a ratio of wall-clocks, so it inherits wall_ms's host-dependence even
// though every deterministic column is identical across parallelism levels.
var HostDependentFields = []string{"wall_ms", "speedup_x"}

// Manifest records the provenance of one bench run: what produced it and
// under which knobs, so two artifacts can be compared meaningfully.
type Manifest struct {
	// Schema is always the Schema constant.
	Schema string `json:"schema"`
	// Build stamps the producing binary (module version, VCS revision, go
	// toolchain).
	Build buildinfo.Stamp `json:"build"`
	// GOOS/GOARCH/GOMAXPROCS describe the host. They do not influence any
	// deterministic column (proven by the byte-determinism test), but they
	// contextualize the wall-clock ones.
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Quick marks the reduced CI tier.
	Quick bool `json:"quick"`
	// Seed is the workload/algorithm seed every run used.
	Seed int64 `json:"seed"`
	// Workloads lists the executed workload names in order.
	Workloads []string `json:"workloads"`
	// HostDependent names the result columns excluded from determinism
	// guarantees (see HostDependentFields).
	HostDependent []string `json:"host_dependent"`
}

// Result is one (workload, algorithm) measurement row.
type Result struct {
	Workload   string `json:"workload"`
	Experiment string `json:"experiment"` // EXPERIMENTS.md anchor (T1, O1, …)
	Algo       string `json:"algo"`
	Model      string `json:"model"` // "mpc" or "clique"
	// Machines is the simulated machine count (node count for the clique).
	Machines int `json:"machines"`
	// N and M describe the input graph.
	N int `json:"n"`
	M int `json:"m"`

	// Output shape.
	Members int `json:"members"`
	Beta    int `json:"beta"`

	// Model quantities the theorems bound (all deterministic).
	Rounds    int   `json:"rounds"`
	Phases    int   `json:"phases"`
	SeedSteps int   `json:"seed_steps"`
	Messages  int64 `json:"messages"`
	Words     int64 `json:"words"`
	PeakSent  int   `json:"peak_sent"`
	PeakRecv  int   `json:"peak_recv"`
	// PeakResident is MPC-only (the clique model has no memory budget).
	PeakResident int `json:"peak_resident"`

	// Communication skew (deterministic): straggler ratios and worst
	// per-round Gini imbalance.
	SkewSent float64 `json:"skew_sent"`
	SkewRecv float64 `json:"skew_recv"`
	GiniSent float64 `json:"gini_sent"`
	GiniRecv float64 `json:"gini_recv"`

	// Violations counts recorded budget breaches.
	Violations int `json:"violations"`

	// Recovery counters (non-zero only for fault-plan workloads).
	RecoveredCrashes int   `json:"recovered_crashes,omitempty"`
	RecoveryRounds   int   `json:"recovery_rounds,omitempty"`
	ReplayedWords    int64 `json:"replayed_words,omitempty"`
	DroppedMessages  int   `json:"dropped_messages,omitempty"`
	DupMessages      int   `json:"dup_messages,omitempty"`
	StallRounds      int   `json:"stall_rounds,omitempty"`

	// Durable-checkpoint overhead (non-zero only when the run persisted
	// checkpoints or resumed from one). Like wall_ms these describe the
	// harness, not the algorithm, but unlike wall_ms they are deterministic
	// for a fixed (workload, checkpoint-every, resume-round) configuration.
	CheckpointBytes    int64 `json:"checkpoint_bytes,omitempty"`
	ResumeReplayRounds int   `json:"resume_replay_rounds,omitempty"`

	// Parallelism is the step-execution worker-pool size the run used (0 =
	// simulator default, GOMAXPROCS). Part of the row key: workloads with a
	// parallelism dimension emit one row per level, and every deterministic
	// column above is identical across them — the bench artifact doubles as
	// an equivalence check.
	Parallelism int `json:"parallelism,omitempty"`

	// WallMS is the run's wall-clock in milliseconds — host-dependent (see
	// Manifest.HostDependent). Zero when the runner was configured to strip
	// host-dependent values.
	WallMS float64 `json:"wall_ms"`
	// SpeedupX is WallMS(parallelism=1) / WallMS for rows of a workload's
	// parallelism sweep (0 elsewhere) — the scaling column for the T8/O1
	// large-graph regimes. Host-dependent like wall_ms, and stripped with it.
	SpeedupX float64 `json:"speedup_x"`
}

// Key identifies a result row across artifacts. Rows from a parallelism
// sweep are disambiguated by an explicit @p<level> suffix.
func (r Result) Key() string {
	key := r.Workload + "/" + r.Algo
	if r.Parallelism > 0 {
		key += fmt.Sprintf("@p%d", r.Parallelism)
	}
	return key
}

// File is one bench artifact.
type File struct {
	Manifest Manifest `json:"manifest"`
	Results  []Result `json:"results"`
}

// StripHost zeroes the host-dependent columns, leaving a fully deterministic
// artifact (used for the checked-in baseline and the byte-determinism test).
func (f *File) StripHost() {
	for i := range f.Results {
		f.Results[i].WallMS = 0
		f.Results[i].SpeedupX = 0
	}
}

// Encode writes the artifact as indented JSON, newline-terminated. The
// encoding is deterministic: fixed field order, no timestamps, no maps.
func (f *File) Encode(w io.Writer) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteFile writes the artifact to path.
func (f *File) WriteFile(path string) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Encode(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// Decode reads one artifact and validates its schema.
func Decode(r io.Reader) (*File, error) {
	var f File
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, err
	}
	if f.Manifest.Schema != Schema {
		return nil, fmt.Errorf("bench: unsupported schema %q (want %s)", f.Manifest.Schema, Schema)
	}
	return &f, nil
}

// ReadFile reads the artifact at path.
func ReadFile(path string) (*File, error) {
	in, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	f, err := Decode(in)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// newManifest assembles the run manifest for the current binary and host.
func newManifest(quick bool, seed int64, workloads []string) Manifest {
	return Manifest{
		Schema:        Schema,
		Build:         buildinfo.Get(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Quick:         quick,
		Seed:          seed,
		Workloads:     workloads,
		HostDependent: HostDependentFields,
	}
}
