package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func randomGraph(t *testing.T, seed int64, n int, p float64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var edges []Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				edges = append(edges, Edge{U: int32(u), V: int32(v)})
			}
		}
	}
	g, err := New(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func graphsEqual(a, b *Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	for v := 0; v < a.N(); v++ {
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			return false
		}
		for i := range na {
			if na[i] != nb[i] {
				return false
			}
		}
	}
	return true
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, g := range []*Graph{
		randomGraph(t, 1, 30, 0.2),
		randomGraph(t, 2, 1, 0),
		MustNew(0, nil),
	} {
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			t.Fatalf("write: %v", err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if !graphsEqual(g, got) {
			t.Fatalf("binary round trip mismatch for %v", g)
		}
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a graph at all")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadBinary(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := randomGraph(t, 3, 25, 0.3)
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !graphsEqual(g, got) {
		t.Fatal("edge list round trip mismatch")
	}
}

func TestEdgeListParsing(t *testing.T) {
	tests := []struct {
		name    string
		input   string
		wantErr bool
	}{
		{name: "comments and blanks", input: "# header\n3 1\n\n0 1\n"},
		{name: "missing header", input: "", wantErr: true},
		{name: "bad fields", input: "3 1\n0 1 2\n", wantErr: true},
		{name: "non-numeric", input: "3 1\nx y\n", wantErr: true},
		{name: "edge count mismatch", input: "3 2\n0 1\n", wantErr: true},
		{name: "out of range", input: "2 1\n0 5\n", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ReadEdgeList(strings.NewReader(tt.input))
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr = %v", err, tt.wantErr)
			}
		})
	}
}
