package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList: the text parser must never panic and must only produce
// graphs that pass Validate; valid parses must round-trip.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("3 1\n0 1\n")
	f.Add("5 4\n0 1\n1 2\n2 3\n3 4\n")
	f.Add("# comment\n2 1\n\n0 1\n")
	f.Add("0 0\n")
	f.Add("1 0\n")
	f.Add("huge 1\n0 1\n")
	f.Add("2 1\n0 0\n")
	f.Add("-1 -1\n")
	f.Add("3 1\n0 1 2\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parser produced invalid graph: %v", err)
		}
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatalf("write-back: %v", err)
		}
		back, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("round trip parse: %v", err)
		}
		if back.N() != g.N() || back.M() != g.M() {
			t.Fatalf("round trip changed the graph: %v vs %v", back, g)
		}
	})
}

// FuzzReadBinary: the binary reader must reject corruption without panics.
func FuzzReadBinary(f *testing.F) {
	// Seed with a valid serialization and a few corruptions of it.
	g := MustNew(4, []Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add(append([]byte("MPRSG1\n"), 0xFF, 0xFF, 0xFF))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("binary reader produced invalid graph: %v", err)
		}
	})
}
