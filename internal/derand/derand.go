// Package derand implements the distributed method of conditional
// expectations — the derandomization engine of the reproduced paper.
//
// A randomized phase draws a seed for a pairwise-independent hash family and
// succeeds in expectation: E[Φ(seed)] is good, where Φ is a pessimistic
// estimator of the phase's progress. The deterministic version fixes the
// seed bit-chunk by bit-chunk: for each candidate extension of the next z
// bits, every machine computes its local contribution to the conditional
// expectation E[Φ | prefix, extension] exactly (the hash package provides
// closed-form conditional laws); contributions are summed by a gather, the
// coordinator keeps the best extension, and broadcasts it. By induction the
// fully fixed seed satisfies Φ(seed) ≤ E[Φ] (for minimization) — a per-phase
// guarantee that holds with certainty, not merely with high probability.
//
// The chunk width z trades rounds for local work and bandwidth: a seed of L
// bits is fixed in ⌈L/z⌉ gather/broadcast pairs, while each machine
// evaluates 2^z conditional expectations per chunk. With z = Θ(log n) the
// whole seed is fixed in O(1) collective steps in the near-linear-memory
// regime — the observation behind the paper's round bounds.
package derand

import (
	"fmt"
	"math"

	"github.com/rulingset/mprs/internal/hash"
	"github.com/rulingset/mprs/internal/mpc"
)

// Objective says whether smaller or larger estimator values are better.
type Objective int

const (
	// Minimize prefers smaller Φ (e.g. cost − benefit potentials).
	Minimize Objective = iota + 1
	// Maximize prefers larger Φ (e.g. expected progress lower bounds).
	Maximize
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	switch o {
	case Minimize:
		return "minimize"
	case Maximize:
		return "maximize"
	default:
		return fmt.Sprintf("objective(%d)", int(o))
	}
}

// Config tunes the seed-selection procedure.
type Config struct {
	// ChunkBits is z, the number of seed bits fixed per gather/broadcast
	// step (1 <= z <= 20). Default 8.
	ChunkBits int
	// Objective selects the optimization direction; default Minimize.
	Objective Objective
	// AlignTo, when positive, truncates chunks at multiples of AlignTo so a
	// chunk never straddles an alignment boundary. The mark-tracking
	// estimators set it to the hash family's per-linear-bit seed segment
	// width, which keeps at most one segment partially fixed at any time.
	AlignTo int
	// OnChunk, when non-nil, is called once before each chunk's candidate
	// extensions are evaluated, with the seed in its committed state. It lets
	// estimators refresh incremental caches keyed on the fixed prefix.
	OnChunk func(s *hash.Seed, start, width int)
}

func (cfg Config) withDefaults() (Config, error) {
	if cfg.ChunkBits == 0 {
		cfg.ChunkBits = 8
	}
	if cfg.ChunkBits < 1 || cfg.ChunkBits > 20 {
		return cfg, fmt.Errorf("derand: chunk bits %d out of [1,20]", cfg.ChunkBits)
	}
	if cfg.Objective == 0 {
		cfg.Objective = Minimize
	}
	if cfg.Objective != Minimize && cfg.Objective != Maximize {
		return cfg, fmt.Errorf("derand: unknown objective %v", cfg.Objective)
	}
	return cfg, nil
}

// LocalEval computes a machine's exact local contribution to the conditional
// expectation E[Φ | seed state], i.e. the sum of the estimator terms owned by
// the machine (its vertices/edges), conditioned on the seed's fixed prefix
// plus the provisional chunk currently written in s. Implementations must
// only read state belonging to the machine described by x.
type LocalEval func(x *mpc.Ctx, s *hash.Seed) float64

// Trace records the conditional-expectation trajectory of one seed
// selection; the conditional expectations are non-increasing (Minimize) or
// non-decreasing (Maximize) along Values — the method's defining guarantee,
// asserted by tests and by experiment T6.
type Trace struct {
	// Initial is E[Φ] with no bits fixed.
	Initial float64
	// Values[i] is E[Φ | first i chunks fixed]; the last entry is the exact
	// realized Φ of the selected seed.
	Values []float64
	// Steps is the number of gather/broadcast pairs used.
	Steps int
}

// Final returns the realized estimator value of the selected seed.
func (t Trace) Final() float64 {
	if len(t.Values) == 0 {
		return t.Initial
	}
	return t.Values[len(t.Values)-1]
}

// SelectSeed deterministically fixes all free bits of s by the method of
// conditional expectations, using eval as the machine-local estimator and
// the cluster's collectives for coordination. On return s is fully fixed and
// the realized Φ(s) is at least as good as the initial expectation.
func SelectSeed(c *mpc.Cluster, s *hash.Seed, cfg Config, eval LocalEval) (Trace, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Trace{}, err
	}
	// Seed selection is its own observable phase: attribute its collectives
	// to the "seed-search" span, restoring the caller's span on return.
	caller := c.CurrentSpan()
	c.Span("seed-search")
	defer c.Span(caller)
	var trace Trace

	// Initial expectation: one extra collective, kept for the guarantee
	// check; each machine evaluates the unconditioned expectation locally.
	init, err := sumEval(c, "derand/init", s, eval)
	if err != nil {
		return Trace{}, err
	}
	trace.Initial = init

	for s.Fixed() < s.Total() {
		start := s.Fixed()
		width := cfg.ChunkBits
		if rem := s.Total() - start; width > rem {
			width = rem
		}
		if cfg.AlignTo > 0 {
			if toBoundary := cfg.AlignTo - start%cfg.AlignTo; width > toBoundary {
				width = toBoundary
			}
		}
		nExt := 1 << uint(width)
		if cfg.OnChunk != nil {
			cfg.OnChunk(s, start, width)
		}

		parts, err := c.Gather("derand/eval", func(x *mpc.Ctx) []uint64 {
			local := s.Clone()
			local.SetFixed(start + width)
			out := make([]uint64, nExt)
			for e := 0; e < nExt; e++ {
				local.SetChunk(start, width, uint64(e))
				out[e] = math.Float64bits(eval(x, local))
			}
			return out
		})
		if err != nil {
			return trace, err
		}
		totals := make([]float64, nExt)
		for m, part := range parts {
			if part == nil {
				continue
			}
			if len(part) != nExt {
				return trace, fmt.Errorf("derand: machine %d sent %d values, want %d", m, len(part), nExt)
			}
			for e, w := range part {
				totals[e] += math.Float64frombits(w)
			}
		}
		best := 0
		for e := 1; e < nExt; e++ {
			if better(cfg.Objective, totals[e], totals[best]) {
				best = e
			}
		}
		if _, err := c.Broadcast("derand/pick", []uint64{uint64(best)}); err != nil {
			return trace, err
		}
		s.SetChunk(start, width, uint64(best))
		s.Commit(width)
		trace.Values = append(trace.Values, totals[best])
		trace.Steps++
	}
	return trace, nil
}

// sumEval runs one gather summing eval across machines under the current
// seed state.
func sumEval(c *mpc.Cluster, name string, s *hash.Seed, eval LocalEval) (float64, error) {
	parts, err := c.Gather(name, func(x *mpc.Ctx) []uint64 {
		return []uint64{math.Float64bits(eval(x, s.Clone()))}
	})
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, part := range parts {
		for _, w := range part {
			sum += math.Float64frombits(w)
		}
	}
	return sum, nil
}

// better reports whether candidate improves on incumbent under obj, with
// strict improvement required so ties resolve to the smallest extension.
func better(obj Objective, candidate, incumbent float64) bool {
	if obj == Minimize {
		return candidate < incumbent
	}
	return candidate > incumbent
}

// CheckMonotone verifies the conditional-expectation guarantee on a trace:
// every value must be at least as good as the initial expectation (up to a
// floating-point tolerance). It returns the first offending index or -1.
func CheckMonotone(obj Objective, t Trace, tol float64) int {
	prev := t.Initial
	for i, v := range t.Values {
		var bad bool
		if obj == Minimize {
			bad = v > prev+tol
		} else {
			bad = v < prev-tol
		}
		if bad {
			return i
		}
		prev = v
	}
	return -1
}
