package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunUsageErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "no args", args: nil},
		{name: "unknown subcommand", args: []string{"frobnicate"}},
		{name: "run without graph", args: []string{"run", "-algo", "det2"}},
		{name: "run bad algo", args: []string{"run", "-algo", "nope", "-spec", "path:n=4"}},
		{name: "run bad regime", args: []string{"run", "-regime", "weird", "-spec", "path:n=4"}},
		{name: "run spec and in", args: []string{"run", "-spec", "path:n=4", "-in", "x"}},
		{name: "gen bad spec", args: []string{"gen", "-spec", "nosuch:n=4"}},
		{name: "run bad faults", args: []string{"run", "-spec", "path:n=4", "-faults", "what=1"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Fatalf("args %v accepted", tt.args)
			}
		})
	}
}

func TestGenInfoRunPipeline(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "g.txt")
	if err := run([]string{"gen", "-spec", "gnp:n=300,p=0.02", "-seed", "3", "-o", file}); err != nil {
		t.Fatalf("gen: %v", err)
	}
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "300 ") {
		t.Fatalf("edge list header wrong: %q", string(data[:20]))
	}
	if err := run([]string{"info", "-in", file}); err != nil {
		t.Fatalf("info: %v", err)
	}
	// -slack 16 gives the recursive/power-graph algorithms budget headroom:
	// violations are now fatal (routed to stderr with non-zero exit), so the
	// smoke pipeline must run clean.
	for _, algo := range []string{"luby", "detluby", "rand2", "det2", "detbeta", "detab", "clique2", "cliquedet2", "greedy"} {
		if err := run([]string{"run", "-algo", algo, "-in", file, "-chunk", "4", "-slack", "16", "-phases", "-rounds", "-spans"}); err != nil {
			t.Fatalf("run %s: %v", algo, err)
		}
	}
}

func TestGenBinaryOutput(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "g.bin")
	if err := run([]string{"gen", "-spec", "path:n=10", "-o", file, "-binary"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "MPRSG1") {
		t.Fatalf("binary magic missing")
	}
}

func TestRunStrictSublinearFails(t *testing.T) {
	err := run([]string{"run", "-algo", "rand2", "-spec", "gnp:n=2000,p=0.004",
		"-regime", "sublinear", "-epsilon", "0.5", "-strict"})
	if err == nil {
		t.Fatal("strict sublinear run must fail")
	}
}

// captureStderr runs f with os.Stderr redirected to a pipe and returns what
// was written there.
func captureStderr(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	defer func() { os.Stderr = old }()
	f()
	w.Close()
	var b bytes.Buffer
	if _, err := b.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestRunViolationsGoToStderrAndFail pins the diagnostics-routing fix: a
// non-strict run that breaches the budget must print the violations to
// stderr (not stdout) and return a non-zero status (an error from run).
func TestRunViolationsGoToStderrAndFail(t *testing.T) {
	var runErr error
	errOut := captureStderr(t, func() {
		// Sublinear memory on a dense-enough graph guarantees violations;
		// without -strict the run completes and must still report failure.
		runErr = run([]string{"run", "-algo", "rand2", "-spec", "gnp:n=2000,p=0.004",
			"-regime", "sublinear", "-epsilon", "0.5", "-verify=false"})
	})
	if runErr == nil {
		t.Fatal("non-strict run with violations must return an error")
	}
	if !strings.Contains(runErr.Error(), "budget violation") {
		t.Fatalf("error %q does not mention budget violations", runErr)
	}
	if !strings.Contains(errOut, "budget violation:") {
		t.Fatalf("violations not routed to stderr; stderr = %q", errOut)
	}
}

// TestCliqueViolationsGoToStderrAndFail is the congested-clique counterpart:
// runClique previously did not report violations at all.
func TestCliqueViolationsGoToStderrAndFail(t *testing.T) {
	var runErr error
	errOut := captureStderr(t, func() {
		// A star's center receives one word from every leaf in the view
		// exchange — fine — but the dominate step makes the center send to
		// every leaf while the pair budget is 1 word; use a tiny clique with
		// a complete graph to force per-pair pressure via the residual route.
		runErr = run([]string{"run", "-algo", "cliquedet2", "-spec", "complete:n=48",
			"-chunk", "2", "-verify=false"})
	})
	if runErr == nil {
		t.Skip("no violations on this fixture; skew table still exercised elsewhere")
	}
	if !strings.Contains(errOut, "budget violation:") {
		t.Fatalf("violations not routed to stderr; stderr = %q", errOut)
	}
}

// TestRunTraceFileDeterministic runs the same traced command twice and
// asserts byte-identical JSONL output — the CLI end of the bit-determinism
// contract.
func TestRunTraceFileDeterministic(t *testing.T) {
	dir := t.TempDir()
	t1 := filepath.Join(dir, "a.jsonl")
	t2 := filepath.Join(dir, "b.jsonl")
	args := func(out string) []string {
		return []string{"run", "-algo", "det2", "-spec", "gnp:n=400,p=0.01",
			"-chunk", "4", "-trace", out, "-verify=false"}
	}
	if err := run(args(t1)); err != nil {
		t.Fatal(err)
	}
	if err := run(args(t2)); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(t1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(t2)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("trace file empty")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("traces of identical runs differ")
	}
	if !strings.Contains(string(a), `"span":"sparsify"`) {
		t.Error("trace missing sparsify span")
	}
	if !strings.Contains(string(a), `"span":"seed-search"`) {
		t.Error("trace missing seed-search span")
	}
}

// TestRunProfileWritesFiles checks -profile captures file-based CPU and heap
// profiles.
func TestRunProfileWritesFiles(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "prof")
	err := run([]string{"run", "-algo", "det2", "-spec", "gnp:n=200,p=0.02",
		"-chunk", "4", "-profile", prefix, "-verify=false"})
	if err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{".cpu.pprof", ".heap.pprof"} {
		st, err := os.Stat(prefix + suffix)
		if err != nil {
			t.Fatalf("profile %s missing: %v", suffix, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s empty", suffix)
		}
	}
}
