package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunMultiprocFlagValidation(t *testing.T) {
	g := genTestGraph(t)
	for name, tc := range map[string]struct {
		args []string
		want string
	}{
		"unknown backend":  {[]string{"-backend", "threads"}, "unknown backend"},
		"unsupported algo": {[]string{"-backend", "multiproc", "-algo", "detbeta"}, "not supported on the multi-process backend"},
		"resume":           {[]string{"-backend", "multiproc", "-checkpoint-dir", t.TempDir(), "-resume"}, "owned by the supervisor"},
		"die-at":           {[]string{"-backend", "multiproc", "-die-at", "5"}, "-kill-worker"},
		"profile":          {[]string{"-backend", "multiproc", "-profile", "p"}, "-backend inproc"},
		"bad kill spec":    {[]string{"-backend", "multiproc", "-kill-worker", "1:5"}, "worker@round"},
		"too many workers": {[]string{"-backend", "multiproc", "-machines", "4", "-workers", "8"}, "must own at least one machine"},
	} {
		t.Run(name, func(t *testing.T) {
			err := run(append([]string{"run", "-algo", "det2", "-in", g}, tc.args...))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestRunMultiprocSubprocess is the CLI end of the cross-backend contract:
// the real binary, run with -backend multiproc and a worker killed mid-job,
// produces members, canonical stats and trace files byte-identical to its
// own in-process run.
func TestRunMultiprocSubprocess(t *testing.T) {
	bin := buildCLI(t)
	g := genTestGraph(t)
	dir := t.TempDir()

	base := []string{"run", "-algo", "det2", "-in", g, "-chunk", "4", "-checkpoint-every", "4"}
	inMembers := filepath.Join(dir, "in.members")
	inStats := filepath.Join(dir, "in.stats")
	inTrace := filepath.Join(dir, "in.trace")
	cmd := hardenedCommand(t, bin, append(base,
		"-checkpoint-dir", filepath.Join(dir, "ck-in"),
		"-members-out", inMembers, "-stats-out", inStats, "-trace", inTrace)...)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("inproc run: %v\n%s", err, out)
	}

	mpMembers := filepath.Join(dir, "mp.members")
	mpStats := filepath.Join(dir, "mp.stats")
	mpTrace := filepath.Join(dir, "mp.trace")
	lifecycle := filepath.Join(dir, "mp.lifecycle")
	cmd = hardenedCommand(t, bin, append(base,
		"-backend", "multiproc", "-workers", "3", "-heartbeat", "5s",
		"-checkpoint-dir", filepath.Join(dir, "ck-mp"),
		"-kill-worker", "1@10", "-max-restarts", "2",
		"-lifecycle-trace", lifecycle,
		"-members-out", mpMembers, "-stats-out", mpStats, "-trace", mpTrace)...)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("multiproc run: %v\n%s", err, out)
	}

	for _, pair := range [][2]string{{inMembers, mpMembers}, {inStats, mpStats}, {inTrace, mpTrace}} {
		a, err := os.ReadFile(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if len(a) == 0 || !bytes.Equal(a, b) {
			t.Errorf("%s and %s differ (%d vs %d bytes)", pair[0], pair[1], len(a), len(b))
		}
	}

	life, err := os.ReadFile(lifecycle)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"mprs-lifecycle/1", `"kind":"kill"`, `"kind":"restart"`, `"kind":"done"`} {
		if !strings.Contains(string(life), want) {
			t.Errorf("lifecycle missing %s:\n%s", want, life)
		}
	}
}

// TestRunMultiprocFailFastSubprocess: -max-restarts 0 turns the injected
// kill into a structured supervisor abort with a non-zero exit.
func TestRunMultiprocFailFastSubprocess(t *testing.T) {
	bin := buildCLI(t)
	g := genTestGraph(t)
	cmd := hardenedCommand(t, bin, "run", "-algo", "det2", "-in", g, "-chunk", "4",
		"-backend", "multiproc", "-workers", "2", "-heartbeat", "5s",
		"-kill-worker", "1@8", "-max-restarts", "0")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("fail-fast kill exited 0:\n%s", out)
	}
	if !strings.Contains(string(out), "supervisor abort") || !strings.Contains(string(out), "committed rounds") {
		t.Fatalf("abort not reported:\n%s", out)
	}
}
