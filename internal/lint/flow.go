package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is detflow: an interprocedural taint engine over the whole
// module. The six original analyzers are intra-procedural and scoped to the
// determinism-critical packages, so a wall-clock read in a helper package
// (internal/metrics, internal/gen, …) that flows through a return value into
// a Send payload or a trace event is invisible to them. detflow closes that
// gap: it builds per-function taint summaries across every scanned package,
// propagates taint through call edges and return values to a fixpoint, and
// reports any flow that reaches a deterministic sink.
//
// Sources (nondeterministic origins):
//
//	wall clock        time.Now / time.Since / time.Until
//	global rand       package-level math/rand(/v2) draws (seeded *rand.Rand
//	                  methods are the sanctioned route and stay clean)
//	map order         values produced by ranging a map (order taint: a later
//	                  sort of the collected slice launders it)
//	select order      variables assigned inside a multi-case select
//	process identity  os.Environ / os.Getenv / os.Getpid / os.Hostname
//	pointer identity  %p, or %v / fmt.Sprint of an address-printing type
//	                  (reported by the ptrformat analyzer)
//
// Sinks (deterministic surfaces, identified by critical-package APIs):
//
//	message payloads  arguments to Send / SendOwned
//	trace events      trace.Event composite literals and field writes, and
//	                  arguments to Superstep
//	durable bytes     arguments to Encode / Persist in critical packages
//	fingerprints      arguments to Fingerprint* in critical packages
//	stats columns     Stats composite literals and field writes
//
// Two analyzers report through this engine: detflow (value/order sources)
// and ptrformat (pointer/map formatting). Findings are positioned at the
// sink, with the source position and call chain named in the message, so a
// //detlint:ok annotation suppresses at the line where the nondeterminism
// enters the deterministic surface.
//
// The analysis is deliberately object-granular and flow-insensitive inside a
// function (a tainted write to x.F taints x), which over-approximates; the
// audited-suppression mechanism is the escape hatch, as for every other
// analyzer. Functions outside the scanned pattern set have no summaries and
// are treated as taint-free, so module-wide runs (the default ./...) are the
// sound configuration.

var detflowAnalyzer = &Analyzer{
	Name:       "detflow",
	Doc:        "flag interprocedural flows from nondeterministic sources into deterministic sinks",
	ModuleWide: true,
}

var ptrformatAnalyzer = &Analyzer{
	Name:       "ptrformat",
	Doc:        "flag pointer-identity or address-bearing formatting that reaches deterministic output",
	ModuleWide: true,
}

// flowSource is one nondeterminism origin carried by a taint set.
type flowSource struct {
	analyzer string         // reporting analyzer: "detflow" or "ptrformat"
	kind     string         // human description of the origin
	order    bool           // order-only taint: sorting the carrier launders it
	pos      token.Position // module-relative position of the origin
	via      []string       // call chain from the tainted value back to the origin
}

// id identifies a source for dedup: the origin position and analyzer, not
// the (round-dependent) call chain, so the fixpoint terminates.
func (s flowSource) id() string {
	return s.analyzer + "|" + s.pos.Filename + "|" + fmt.Sprint(s.pos.Line) + "|" + fmt.Sprint(s.pos.Column) + "|" + s.kind
}

func (s flowSource) describe() string {
	d := fmt.Sprintf("%s at %s:%d", s.kind, s.pos.Filename, s.pos.Line)
	if len(s.via) > 0 {
		d += " (via " + strings.Join(s.via, " → ") + ")"
	}
	return d
}

// taintSet is the taint of one expression or variable: the intrinsic
// nondeterministic sources it may carry, plus the parameter slots of the
// enclosing function whose taint would reach it.
type taintSet struct {
	sources map[string]flowSource
	params  uint64 // bit i: parameter slot i (receiver is slot 0 of a method)
}

func (t *taintSet) empty() bool { return t == nil || (len(t.sources) == 0 && t.params == 0) }

func (t *taintSet) addSource(s flowSource) bool {
	if t.sources == nil {
		t.sources = make(map[string]flowSource)
	}
	id := s.id()
	if _, ok := t.sources[id]; ok {
		return false
	}
	t.sources[id] = s
	return true
}

// join merges other into t; keepOrder=false drops order-only sources (the
// laundering applied to sorted carriers). Reports whether t changed.
func (t *taintSet) join(other *taintSet, keepOrder bool) bool {
	if other == nil {
		return false
	}
	changed := false
	for _, s := range other.sources {
		if !keepOrder && s.order {
			continue
		}
		if t.addSource(s) {
			changed = true
		}
	}
	if other.params&^t.params != 0 {
		t.params |= other.params
		changed = true
	}
	return changed
}

// sortedSources returns the sources in deterministic position order.
func (t *taintSet) sortedSources() []flowSource {
	if t == nil {
		return nil
	}
	out := make([]flowSource, 0, len(t.sources))
	for _, s := range t.sources {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		if a.pos.Column != b.pos.Column {
			return a.pos.Column < b.pos.Column
		}
		return a.kind < b.kind
	})
	return out
}

// flowSink records that a parameter slot of a function reaches a sink.
type flowSink struct {
	desc string
	via  []string
}

// funcSummary is the audited per-function contract the engine propagates:
// what taint the function's return values carry (intrinsic sources plus
// parameter slots that flow through), and which parameter slots reach a
// deterministic sink inside it or its callees.
type funcSummary struct {
	ret        *taintSet
	sinkParams map[int][]flowSink
}

// fingerprint renders the convergence-relevant content (source ids, param
// bits, sink descs — not via chains) so the fixpoint can detect stability.
func (s *funcSummary) fingerprint() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	if s.ret != nil {
		ids := make([]string, 0, len(s.ret.sources))
		for id := range s.ret.sources {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Fprintf(&b, "ret:%x:%s;", s.ret.params, strings.Join(ids, ","))
	}
	slots := make([]int, 0, len(s.sinkParams))
	for i := range s.sinkParams {
		slots = append(slots, i)
	}
	sort.Ints(slots)
	for _, i := range slots {
		descs := make([]string, 0, len(s.sinkParams[i]))
		for _, sk := range s.sinkParams[i] {
			descs = append(descs, sk.desc)
		}
		sort.Strings(descs)
		fmt.Fprintf(&b, "p%d:%s;", i, strings.Join(descs, ","))
	}
	return b.String()
}

func (s *funcSummary) addSinkParam(slot int, sink flowSink) {
	if s.sinkParams == nil {
		s.sinkParams = make(map[int][]flowSink)
	}
	for _, have := range s.sinkParams[slot] {
		if have.desc == sink.desc {
			return
		}
	}
	s.sinkParams[slot] = append(s.sinkParams[slot], sink)
}

const maxViaChain = 6

// flowWorld is the module-wide state: summaries for every scanned function,
// and the findings the reporting pass produced.
type flowWorld struct {
	summaries   map[string]*funcSummary
	criticalPkg func(pkg *types.Package) bool
	observerPkg func(pkg *types.Package) bool
	relPos      func(token.Pos) token.Position
	findings    []Diagnostic
}

func (w *flowWorld) critical(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	return w.criticalPkg(fn.Pkg())
}

// observer reports whether fn lives in a telemetry-style observer package.
// Observer encoders (Superstep, Persist, Wire, Encode*) export advisory
// wall-clock measurements — feeding them timing data is their job, not a
// determinism leak — so they are never detflow sinks, even under
// AllCritical. The exclusion is one-directional: data flowing OUT of an
// observer into a real sink (a simulator Stats, the trace event stream)
// still carries its taint and is still reported.
func (w *flowWorld) observer(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	return w.observerPkg(fn.Pkg())
}

type flowFunc struct {
	unit  *checkedUnit
	decl  *ast.FuncDecl
	key   string
	label string
}

// buildFlowWorld computes per-function summaries to a fixpoint over every
// scanned unit, then runs the reporting pass.
func buildFlowWorld(units []*checkedUnit, ld *loader, cfg Config) *flowWorld {
	w := &flowWorld{
		summaries: make(map[string]*funcSummary),
		relPos:    ld.relPos,
		criticalPkg: func(pkg *types.Package) bool {
			rel, ok := ld.moduleRel(strings.TrimSuffix(pkg.Path(), "_test"))
			if !ok {
				return false
			}
			return cfg.AllCritical || criticalPkgs[rel]
		},
		observerPkg: func(pkg *types.Package) bool {
			rel, ok := ld.moduleRel(strings.TrimSuffix(pkg.Path(), "_test"))
			if !ok {
				return false
			}
			return rel == "internal/telemetry" || strings.HasSuffix(rel, "/telemetry")
		},
	}
	var fns []flowFunc
	for _, u := range units {
		for _, f := range u.files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := u.info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fns = append(fns, flowFunc{unit: u, decl: fd, key: funcKey(obj), label: calleeLabel(obj)})
			}
		}
	}
	// Fixpoint: recompute every summary from scratch against the current
	// table until nothing changes. Taint only accumulates, so this is
	// monotone; the round cap is a backstop for pathological recursion.
	for round := 0; round < 12; round++ {
		changed := false
		for _, fn := range fns {
			ff := newFuncFlow(w, fn)
			sum := ff.summarize()
			if sum.fingerprint() != w.summaries[fn.key].fingerprint() {
				w.summaries[fn.key] = sum
				changed = true
			} else {
				w.summaries[fn.key] = sum // keep freshest via chains
			}
		}
		if !changed {
			break
		}
	}
	for _, fn := range fns {
		newFuncFlow(w, fn).report()
	}
	return w
}

// funcKey names a function stably across independent typechecks of the same
// package (the loader checks a package once as an import dependency and once
// as a scanned unit; the resulting objects differ but the keys match).
func funcKey(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return fn.Name()
	}
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			recv = named.Obj().Name() + "."
		}
	}
	return pkg.Path() + "." + recv + fn.Name()
}

// funcFlow is the intra-procedural analysis of one function body: an
// object-granular, flow-insensitive taint map iterated to a local fixpoint.
type funcFlow struct {
	w         *flowWorld
	u         *checkedUnit
	decl      *ast.FuncDecl
	label     string
	params    map[types.Object]int  // object → parameter slot
	results   []types.Object        // named results (for naked returns)
	laundered map[types.Object]bool // passed to sort.*/slices.*: order taint dropped
	taint     map[types.Object]*taintSet
	ret       *taintSet
	sum       *funcSummary
}

func newFuncFlow(w *flowWorld, fn flowFunc) *funcFlow {
	ff := &funcFlow{
		w:         w,
		u:         fn.unit,
		decl:      fn.decl,
		label:     fn.label,
		params:    make(map[types.Object]int),
		laundered: make(map[types.Object]bool),
		taint:     make(map[types.Object]*taintSet),
		ret:       &taintSet{},
		sum:       &funcSummary{ret: &taintSet{}},
	}
	slot := 0
	if fn.decl.Recv != nil {
		for _, field := range fn.decl.Recv.List {
			for _, name := range field.Names {
				if obj := fn.unit.info.Defs[name]; obj != nil {
					ff.params[obj] = 0
				}
			}
		}
		slot = 1
	}
	if fn.decl.Type.Params != nil {
		for _, field := range fn.decl.Type.Params.List {
			if len(field.Names) == 0 {
				slot++
				continue
			}
			for _, name := range field.Names {
				if obj := fn.unit.info.Defs[name]; obj != nil && slot < 64 {
					ff.params[obj] = slot
				}
				slot++
			}
		}
	}
	if fn.decl.Type.Results != nil {
		for _, field := range fn.decl.Type.Results.List {
			for _, name := range field.Names {
				if obj := fn.unit.info.Defs[name]; obj != nil {
					ff.results = append(ff.results, obj)
				}
			}
		}
	}
	ff.findLaundered()
	return ff
}

// findLaundered pre-scans for sort.X(s) / slices.SortX(s) statements: order
// taint joined into those objects is dropped, because sorting is exactly the
// sanctioned fix for map-iteration order. (Pre-scanning keeps the fixpoint
// monotone: laundering is a property of the object, not of statement order.)
func (ff *funcFlow) findLaundered() {
	ast.Inspect(ff.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(ff.u.info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if path := fn.Pkg().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if obj := ff.rootObj(arg); obj != nil {
				ff.laundered[obj] = true
			}
		}
		return true
	})
}

// joinObj merges ts into the taint of obj, dropping order sources for
// laundered carriers. Reports whether anything changed.
func (ff *funcFlow) joinObj(obj types.Object, ts *taintSet) bool {
	if obj == nil || obj.Name() == "_" || ts.empty() {
		return false
	}
	have := ff.taint[obj]
	if have == nil {
		have = &taintSet{}
		ff.taint[obj] = have
	}
	return have.join(ts, !ff.laundered[obj])
}

// rootObj resolves the variable an assignment target ultimately writes
// into: x, x.F, x[i], *x, x.F[i].G all root at x. Object granularity is the
// engine's precision bound — a tainted field write taints the whole object.
func (ff *funcFlow) rootObj(e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := ff.u.info.Defs[x]; obj != nil {
				return obj
			}
			return ff.u.info.Uses[x]
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := ff.u.info.Uses[id].(*types.PkgName); isPkg {
					return nil
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// summarize runs the local fixpoint and extracts the function summary.
func (ff *funcFlow) summarize() *funcSummary {
	for i := 0; i < 10; i++ {
		if !ff.walk() {
			break
		}
	}
	ff.sum.ret.join(ff.ret, true)
	for _, obj := range ff.results {
		ff.sum.ret.join(ff.taint[obj], true)
	}
	ff.collectSinks(nil)
	return ff.sum
}

// report emits diagnostics for intrinsic sources reaching sinks. It reruns
// the local fixpoint (summaries of callees are final now) and then walks the
// sinks with a reporting callback.
func (ff *funcFlow) report() {
	for i := 0; i < 10; i++ {
		if !ff.walk() {
			break
		}
	}
	ff.collectSinks(func(desc string, via []string, arg ast.Expr, ts *taintSet) {
		for _, src := range ts.sortedSources() {
			sinkDesc := desc
			if len(via) > 0 {
				sinkDesc += " (via " + strings.Join(via, " → ") + ")"
			}
			ff.w.findings = append(ff.w.findings, Diagnostic{
				Pos:      ff.w.relPos(arg.Pos()),
				Analyzer: src.analyzer,
				Message: fmt.Sprintf("value derived from %s flows into %s; make the source deterministic or annotate with //detlint:ok %s -- <reason>",
					src.describe(), sinkDesc, src.analyzer),
			})
		}
	})
}

// walk is one pass over the body: propagates taint through assignments,
// declarations, ranges, selects and returns. Reports whether any taint
// changed (the local fixpoint re-runs it until quiet).
func (ff *funcFlow) walk() bool {
	changed := false
	ast.Inspect(ff.decl.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			if len(stmt.Lhs) == len(stmt.Rhs) {
				for i, lhs := range stmt.Lhs {
					if ff.joinObj(ff.rootObj(lhs), ff.exprTaint(stmt.Rhs[i])) {
						changed = true
					}
				}
			} else if len(stmt.Rhs) == 1 {
				ts := ff.exprTaint(stmt.Rhs[0])
				for _, lhs := range stmt.Lhs {
					if ff.joinObj(ff.rootObj(lhs), ts) {
						changed = true
					}
				}
			}
		case *ast.ValueSpec:
			if len(stmt.Values) == len(stmt.Names) {
				for i, name := range stmt.Names {
					if ff.joinObj(ff.u.info.Defs[name], ff.exprTaint(stmt.Values[i])) {
						changed = true
					}
				}
			} else if len(stmt.Values) == 1 {
				ts := ff.exprTaint(stmt.Values[0])
				for _, name := range stmt.Names {
					if ff.joinObj(ff.u.info.Defs[name], ts) {
						changed = true
					}
				}
			}
		case *ast.RangeStmt:
			ts := &taintSet{}
			ts.join(ff.exprTaint(stmt.X), true)
			if t := ff.u.info.TypeOf(stmt.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					ts.addSource(flowSource{
						analyzer: "detflow",
						kind:     "map iteration order",
						order:    true,
						pos:      ff.w.relPos(stmt.Pos()),
					})
				}
			}
			if stmt.Key != nil && ff.joinObj(ff.rootObj(stmt.Key), ts) {
				changed = true
			}
			if stmt.Value != nil && ff.joinObj(ff.rootObj(stmt.Value), ts) {
				changed = true
			}
		case *ast.SelectStmt:
			if len(stmt.Body.List) < 2 {
				return true
			}
			for _, clause := range stmt.Body.List {
				comm, ok := clause.(*ast.CommClause)
				if !ok {
					continue
				}
				as, ok := comm.Comm.(*ast.AssignStmt)
				if !ok {
					continue
				}
				ts := &taintSet{}
				ts.addSource(flowSource{
					analyzer: "detflow",
					kind:     "multi-case select arm",
					order:    true,
					pos:      ff.w.relPos(stmt.Pos()),
				})
				for _, rhs := range as.Rhs {
					ts.join(ff.exprTaint(rhs), true)
				}
				for _, lhs := range as.Lhs {
					if ff.joinObj(ff.rootObj(lhs), ts) {
						changed = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range stmt.Results {
				if ff.ret.join(ff.exprTaint(res), true) {
					changed = true
				}
			}
		}
		return true
	})
	return changed
}

// exprTaint computes the taint of an expression against the current state.
func (ff *funcFlow) exprTaint(e ast.Expr) *taintSet {
	ts := &taintSet{}
	ff.addExprTaint(ts, e)
	return ts
}

func (ff *funcFlow) addExprTaint(ts *taintSet, e ast.Expr) {
	switch x := e.(type) {
	case nil:
	case *ast.Ident:
		obj := ff.objectOfIdent(x)
		if obj == nil {
			return
		}
		if slot, ok := ff.params[obj]; ok {
			ts.params |= 1 << uint(slot)
		}
		ts.join(ff.taint[obj], !ff.laundered[obj])
	case *ast.CallExpr:
		ff.addCallTaint(ts, x)
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := ff.u.info.Uses[id].(*types.PkgName); isPkg {
				return // qualified identifier: package-level vars are not tracked
			}
		}
		ff.addExprTaint(ts, x.X)
	case *ast.ParenExpr:
		ff.addExprTaint(ts, x.X)
	case *ast.StarExpr:
		ff.addExprTaint(ts, x.X)
	case *ast.UnaryExpr:
		ff.addExprTaint(ts, x.X)
	case *ast.BinaryExpr:
		ff.addExprTaint(ts, x.X)
		ff.addExprTaint(ts, x.Y)
	case *ast.IndexExpr:
		ff.addExprTaint(ts, x.X)
		ff.addExprTaint(ts, x.Index)
	case *ast.IndexListExpr:
		ff.addExprTaint(ts, x.X)
	case *ast.SliceExpr:
		ff.addExprTaint(ts, x.X)
	case *ast.TypeAssertExpr:
		ff.addExprTaint(ts, x.X)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				ff.addExprTaint(ts, kv.Value)
				continue
			}
			ff.addExprTaint(ts, elt)
		}
	}
}

func (ff *funcFlow) objectOfIdent(id *ast.Ident) types.Object {
	if obj := ff.u.info.Defs[id]; obj != nil {
		return obj
	}
	return ff.u.info.Uses[id]
}

// addCallTaint handles calls: conversions and builtins pass operand taint
// through; intrinsic sources inject it; summarized module functions are
// instantiated; unknown callees conservatively union receiver and argument
// taint (so taint survives strconv.FormatUint and friends).
func (ff *funcFlow) addCallTaint(ts *taintSet, call *ast.CallExpr) {
	if tv, ok := ff.u.info.Types[call.Fun]; ok && tv.IsType() {
		for _, arg := range call.Args {
			ff.addExprTaint(ts, arg)
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := ff.u.info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append", "min", "max":
				for _, arg := range call.Args {
					ff.addExprTaint(ts, arg)
				}
			}
			return
		}
	}
	fn := calleeFunc(ff.u.info, call)
	if fn != nil {
		if srcs := ff.intrinsicSources(fn, call); srcs != nil {
			for _, s := range srcs {
				ts.addSource(s)
			}
			for _, arg := range call.Args {
				ff.addExprTaint(ts, arg)
			}
			return
		}
		if sum, ok := ff.w.summaries[funcKey(fn)]; ok {
			ff.instantiate(ts, fn, call, sum)
			return
		}
	}
	// Unknown callee (stdlib, external, or a function value): assume taint
	// flows from every operand into the result.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		ff.addExprTaint(ts, sel.X)
	}
	for _, arg := range call.Args {
		ff.addExprTaint(ts, arg)
	}
}

// instantiate applies a callee summary at a call site: the callee's intrinsic
// return sources flow out (with the callee prepended to their chain), and
// parameter slots recorded in the summary pull in the taint of the matching
// call operands.
func (ff *funcFlow) instantiate(ts *taintSet, fn *types.Func, call *ast.CallExpr, sum *funcSummary) {
	if sum.ret != nil {
		for _, src := range sum.ret.sources {
			ts.addSource(prependVia(src, calleeLabel(fn)))
		}
		for slot := 0; slot < 64; slot++ {
			if sum.ret.params&(1<<uint(slot)) == 0 {
				continue
			}
			for _, operand := range ff.slotExprs(fn, call, slot) {
				ff.addExprTaint(ts, operand)
			}
		}
	}
}

func prependVia(src flowSource, label string) flowSource {
	if len(src.via) >= maxViaChain {
		return src
	}
	via := make([]string, 0, len(src.via)+1)
	via = append(via, label)
	via = append(via, src.via...)
	src.via = via
	return src
}

// slotExprs maps a callee parameter slot to the call-site operand
// expressions: slot 0 of a method is the receiver, and a variadic slot
// covers every trailing argument.
func (ff *funcFlow) slotExprs(fn *types.Func, call *ast.CallExpr, slot int) []ast.Expr {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if sig.Recv() != nil {
		if slot == 0 {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				return []ast.Expr{sel.X}
			}
			return nil
		}
		slot--
	}
	if sig.Variadic() && slot >= sig.Params().Len()-1 {
		if last := sig.Params().Len() - 1; last < len(call.Args) {
			return call.Args[last:]
		}
		return nil
	}
	if slot < len(call.Args) {
		return []ast.Expr{call.Args[slot]}
	}
	return nil
}

// sinkReport is the callback collectSinks drives: desc names the sink, via
// is the call chain between this function and the sink, arg is the tainted
// operand, ts its taint.
type sinkReport func(desc string, via []string, arg ast.Expr, ts *taintSet)

// collectSinks walks the body for deterministic sinks. For every tainted
// operand it records parameter-borne taint in the function summary (so
// callers inherit the sink) and, when a report callback is set, emits the
// intrinsic sources as findings.
func (ff *funcFlow) collectSinks(report sinkReport) {
	handle := func(desc string, via []string, arg ast.Expr) {
		ts := ff.exprTaint(arg)
		if ts.empty() {
			return
		}
		for slot := 0; slot < 64; slot++ {
			if ts.params&(1<<uint(slot)) != 0 {
				ff.sum.addSinkParam(slot, flowSink{desc: desc, via: via})
			}
		}
		if report != nil && len(ts.sources) > 0 {
			report(desc, via, arg, ts)
		}
	}
	ast.Inspect(ff.decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			fn := calleeFunc(ff.u.info, x)
			if fn == nil {
				return true
			}
			if desc, ok := ff.sinkCallee(fn); ok {
				for _, arg := range x.Args {
					handle(desc, nil, arg)
				}
				return true
			}
			// Calls into functions whose parameters reach a sink.
			if sum, ok := ff.w.summaries[funcKey(fn)]; ok && len(sum.sinkParams) > 0 {
				slots := make([]int, 0, len(sum.sinkParams))
				for slot := range sum.sinkParams {
					slots = append(slots, slot)
				}
				sort.Ints(slots)
				for _, slot := range slots {
					for _, sink := range sum.sinkParams[slot] {
						via := sink.via
						if len(via) < maxViaChain {
							via = append([]string{calleeLabel(fn)}, via...)
						}
						for _, operand := range ff.slotExprs(fn, x, slot) {
							handle(sink.desc, via, operand)
						}
					}
				}
			}
		case *ast.CompositeLit:
			name, fields, ok := ff.sinkStruct(ff.u.info.TypeOf(x))
			if !ok {
				return true
			}
			for i, elt := range x.Elts {
				field := ""
				value := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						field = id.Name
					}
					value = kv.Value
				} else if i < len(fields) {
					field = fields[i]
				}
				handle(fmt.Sprintf("the %s field %s", name, field), nil, value)
			}
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for i, lhs := range x.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				name, _, ok := ff.sinkStruct(ff.u.info.TypeOf(sel.X))
				if !ok {
					continue
				}
				handle(fmt.Sprintf("the %s field %s", name, sel.Sel.Name), nil, x.Rhs[i])
			}
		}
		return true
	})
}

// sinkCallee reports whether calling fn hands data to a deterministic
// surface: message payloads, the trace event stream, durable bytes, or
// fingerprint inputs — all identified by critical-package APIs.
func (ff *funcFlow) sinkCallee(fn *types.Func) (string, bool) {
	if !ff.w.critical(fn) || ff.w.observer(fn) {
		return "", false
	}
	switch name := fn.Name(); name {
	case "Send", "SendOwned":
		return fmt.Sprintf("the %s message payload", calleeLabel(fn)), true
	case "Superstep":
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return "the trace event stream", true
		}
	case "Encode", "Persist":
		return fmt.Sprintf("the durable byte stream (%s)", calleeLabel(fn)), true
	default:
		if strings.HasPrefix(name, "Fingerprint") {
			return fmt.Sprintf("the fingerprint input (%s)", calleeLabel(fn)), true
		}
	}
	return "", false
}

// sinkStruct reports whether t (possibly a pointer) is one of the
// deterministic record types — trace.Event or a simulator Stats — declared
// in a critical package. It returns the display name and field order.
func (ff *funcFlow) sinkStruct(t types.Type) (string, []string, bool) {
	if t == nil {
		return "", nil, false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", nil, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", nil, false
	}
	if name := obj.Name(); name != "Event" && name != "Stats" {
		return "", nil, false
	}
	if !ff.w.criticalPkg(obj.Pkg()) || ff.w.observerPkg(obj.Pkg()) {
		return "", nil, false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return "", nil, false
	}
	fields := make([]string, st.NumFields())
	for i := range fields {
		fields[i] = st.Field(i).Name()
	}
	return obj.Pkg().Name() + "." + obj.Name(), fields, true
}

// intrinsicSources recognizes calls that originate nondeterminism.
func (ff *funcFlow) intrinsicSources(fn *types.Func, call *ast.CallExpr) []flowSource {
	pkg := fn.Pkg()
	if pkg == nil {
		return nil
	}
	pos := ff.w.relPos(call.Pos())
	switch pkg.Path() {
	case "time":
		if wallclockFuncs[fn.Name()] {
			return []flowSource{{analyzer: "detflow", kind: fmt.Sprintf("a wall-clock read (time.%s)", fn.Name()), pos: pos}}
		}
	case "math/rand", "math/rand/v2":
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && !globalrandAllowed[fn.Name()] {
			return []flowSource{{analyzer: "detflow", kind: fmt.Sprintf("the global math/rand source (rand.%s)", fn.Name()), pos: pos}}
		}
	case "os":
		switch fn.Name() {
		case "Environ", "Getenv", "Getpid", "Getppid", "Hostname":
			return []flowSource{{analyzer: "detflow", kind: fmt.Sprintf("process environment/identity (os.%s)", fn.Name()), pos: pos}}
		}
	case "fmt":
		return ff.fmtSources(fn, call, pos)
	}
	return nil
}

// fmtSources recognizes pointer-identity and address-bearing formatting:
// %p on anything, and %v / unformatted printing of a type whose fmt output
// includes a runtime address (pointers to scalars, channels, funcs,
// unsafe.Pointer — including via struct fields, slices and map keys/values).
// These are ptrformat findings: the formatted string differs between runs
// even when the value is semantically identical.
func (ff *funcFlow) fmtSources(fn *types.Func, call *ast.CallExpr, pos token.Position) []flowSource {
	var args []ast.Expr
	formatted := false
	switch fn.Name() {
	case "Sprintf", "Errorf":
		if len(call.Args) == 0 {
			return nil
		}
		formatted = true
		args = call.Args[1:]
	case "Sprint", "Sprintln":
		args = call.Args
	default:
		return nil
	}
	var srcs []flowSource
	add := func(kind string) {
		srcs = append(srcs, flowSource{analyzer: "ptrformat", kind: kind, pos: pos})
	}
	checkValueVerb := func(arg ast.Expr) {
		t := ff.u.info.TypeOf(arg)
		if t == nil {
			return
		}
		if isMapType(t) && formatsAddress(t) {
			add("map formatting with pointer-identity keys or values")
		} else if formatsAddress(t) {
			add("pointer-identity %v/Sprint formatting of " + t.String())
		}
	}
	if !formatted {
		for _, arg := range args {
			checkValueVerb(arg)
		}
		return srcs
	}
	format, ok := constStringValue(ff.u.info, call.Args[0])
	if !ok {
		// Dynamic format string: fall back to value-verb semantics.
		for _, arg := range args {
			checkValueVerb(arg)
		}
		return srcs
	}
	verbs := formatVerbs(format)
	for i, verb := range verbs {
		if i >= len(args) {
			break
		}
		switch verb {
		case 'p':
			add("pointer identity formatted with %p")
		case 'v':
			checkValueVerb(args[i])
		}
	}
	return srcs
}

func constStringValue(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// formatVerbs extracts the verb sequence of a format string, emitting one
// entry per consumed argument ('*' width/precision operands included).
func formatVerbs(format string) []rune {
	var verbs []rune
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) {
			c := rune(format[i])
			if c == '*' {
				verbs = append(verbs, '*') // consumes a width/precision operand
				i++
				continue
			}
			if strings.ContainsRune("+-# 0123456789.[]", c) {
				i++
				continue
			}
			if c != '%' {
				verbs = append(verbs, c)
			}
			break
		}
	}
	return verbs
}

func isMapType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// formatsAddress reports whether fmt's default %v rendering of t includes a
// runtime address: pointers to scalars print hex addresses, channels and
// funcs always print addresses, and the property recurses through struct
// fields, array/slice elements and map keys/values. A top-level pointer to
// a composite prints &-prefixed contents instead of an address (fmt's
// special case), but a *nested* pointer field prints its address, so the
// top-level flag is dropped on recursion. Types with a String/Error/Format/
// GoString method render themselves and are excluded.
func formatsAddress(t types.Type) bool {
	return formatsAddr(t, make(map[types.Type]bool), true)
}

func formatsAddr(t types.Type, seen map[types.Type]bool, top bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if hasFormatterMethod(t) {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		if top {
			switch u.Elem().Underlying().(type) {
			case *types.Struct, *types.Array, *types.Slice, *types.Map:
				return formatsAddr(u.Elem(), seen, false) // fmt prints &{…}
			}
		}
		return true // hex address
	case *types.Chan, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if formatsAddr(u.Field(i).Type(), seen, false) {
				return true
			}
		}
	case *types.Slice:
		return formatsAddr(u.Elem(), seen, false)
	case *types.Array:
		return formatsAddr(u.Elem(), seen, false)
	case *types.Map:
		return formatsAddr(u.Key(), seen, false) || formatsAddr(u.Elem(), seen, false)
	}
	return false
}

func hasFormatterMethod(t types.Type) bool {
	for _, name := range []string{"String", "Error", "Format", "GoString"} {
		if obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name); obj != nil {
			if _, ok := obj.(*types.Func); ok {
				return true
			}
		}
	}
	return false
}
